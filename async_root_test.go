package autofl

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"autofl/internal/sweep"
	"autofl/internal/sweep/dist"
)

// TestExplicitSyncAggregationMatchesDefault pins the tentpole's
// compatibility bar at the public API: an explicit synchronous
// AggregationSpec routes every round through the virtual-time event
// queue, yet reproduces the pre-refactor default path field for field —
// across every variance environment and every policy.
func TestExplicitSyncAggregationMatchesDefault(t *testing.T) {
	for _, env := range Environments() {
		for _, pol := range Policies() {
			base := Scenario{
				Workload:  CNNMNIST,
				Setting:   S3,
				Data:      NonIID50,
				Env:       env,
				Seed:      9,
				MaxRounds: 30,
			}
			explicit := base
			explicit.Aggregation = &AggregationSpec{Mode: SyncAggregation}

			a, err := base.Run(pol)
			if err != nil {
				t.Fatalf("%s/%s default: %v", env, pol, err)
			}
			b, err := explicit.Run(pol)
			if err != nil {
				t.Fatalf("%s/%s explicit sync: %v", env, pol, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: explicit sync aggregation differs from default", env, pol)
			}
		}
	}
}

// asyncGrid is smallGrid crossed with the aggregation and population
// axes.
func asyncGrid(seed uint64) sweep.Grid {
	g := smallGrid(seed)
	g.Policies = []string{string(PolicyRandom)}
	g.Modes = []string{string(AsyncAggregation), string(SemiAsyncAggregation)}
	g.Alphas = []string{"0.5", "1"}
	g.Devices = []string{"2000"}
	g.Samples = []string{"256"}
	return g
}

// TestAsyncSweepDeterminism extends the sweep acceptance bar to the
// new axes: a parallel sweep over async/semi-async × alpha × population
// cells emits byte-identical JSON to a serial sweep, every cell runs
// clean, and the CSV carries the extension columns.
func TestAsyncSweepDeterminism(t *testing.T) {
	g := asyncGrid(42)
	const rounds = 20
	serial, err := RunSweep(context.Background(), g, rounds, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(context.Background(), g, rounds, sweep.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	var bs, bp bytes.Buffer
	if err := serial.WriteJSON(&bs); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&bp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Error("parallel async sweep JSON differs from serial at the same seed")
	}
	sawStale := false
	for _, r := range serial.Results() {
		if r.Err != "" {
			t.Errorf("cell %s failed: %s", r.Cell.Key(), r.Err)
		}
		if r.Outcome.MeanStaleness > 0 {
			sawStale = true
		}
	}
	if !sawStale {
		t.Error("no async cell reported positive mean staleness")
	}

	var csv bytes.Buffer
	if err := serial.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	for _, col := range []string{"mode", "alpha", "devices", "sample", "mean_staleness_mean"} {
		if !strings.Contains(header, col) {
			t.Errorf("extended CSV header missing %q: %s", col, header)
		}
	}
}

// TestAsyncDistributedSweepMatchesSerial pins placement invariance for
// the async regimes: cells farmed to loopback worker processes produce
// byte-identical output to an in-process serial run of the same grid.
func TestAsyncDistributedSweepMatchesSerial(t *testing.T) {
	g := asyncGrid(77)
	const rounds = 15
	ctx := context.Background()

	serial, err := RunSweep(ctx, g, rounds, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	newWorker := func() *dist.Worker {
		w, werr := dist.NewWorker("127.0.0.1:0", 2, SweepRunners)
		if werr != nil {
			t.Fatal(werr)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		return w
	}
	w1, w2 := newWorker(), newWorker()

	distStore, err := RunSweepWith(ctx, g, SweepOptions{
		MaxRounds: rounds,
		Workers:   []string{w1.Addr(), w2.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range distStore.Results() {
		if r.Err != "" {
			t.Errorf("cell %s errored: %s", r.Cell.Key(), r.Err)
		}
	}

	var sj, dj bytes.Buffer
	if err := serial.WriteJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if err := distStore.WriteJSON(&dj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), dj.Bytes()) {
		t.Error("distributed async sweep JSON differs from serial")
	}
}

// TestSweepCellRejectsBadExtensionValues pins the loud-error contract
// of the extension axes: malformed values become per-cell errors, not
// silent defaults.
func TestSweepCellRejectsBadExtensionValues(t *testing.T) {
	cases := []struct {
		name string
		cell sweep.Cell
	}{
		{"bad alpha", sweep.Cell{Mode: "async", Alpha: "fast"}},
		{"bad devices", sweep.Cell{Devices: "many"}},
		{"sample without devices", sweep.Cell{Sample: "64"}},
		{"bad mode", sweep.Cell{Mode: "turbo"}},
	}
	run := SweepRunner(5)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.cell
			c.Workload = string(CNNMNIST)
			c.Setting = string(S3)
			c.Data = string(IdealIID)
			c.Env = string(EnvIdeal)
			c.Policy = string(PolicyRandom)
			if _, err := run(context.Background(), c, 1); err == nil {
				t.Error("malformed cell accepted")
			}
		})
	}
}
