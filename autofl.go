// Package autofl is the public API of the AutoFL reproduction: a
// heterogeneity-aware, energy-efficient federated-learning simulator
// with the AutoFL reinforcement-learning controller (Kim & Wu, MICRO
// 2021) and every baseline the paper evaluates against.
//
// The entry point is a Scenario — a workload, global parameters, data
// distribution, and runtime-variance environment — on which any of the
// selection policies can be run:
//
//	scenario := autofl.Scenario{
//		Workload: autofl.CNNMNIST,
//		Setting:  autofl.S3,
//		Data:     autofl.NonIID50,
//		Env:      autofl.EnvField,
//		Seed:     42,
//	}
//	report, err := scenario.Run(autofl.PolicyAutoFL)
//
// Reports carry energy, time-to-convergence and accuracy; Compare
// normalizes a set of reports against a baseline the way the paper's
// figures do.
package autofl

import (
	"fmt"

	"autofl/internal/battery"
	"autofl/internal/core"
	"autofl/internal/data"
	"autofl/internal/device"
	"autofl/internal/metrics"
	"autofl/internal/policy"
	"autofl/internal/sim"
	"autofl/internal/workload"
)

// Workload names the training task (§5.2 of the paper).
type Workload string

// The three evaluation workloads.
const (
	CNNMNIST          Workload = "CNN-MNIST"
	LSTMShakespeare   Workload = "LSTM-Shakespeare"
	MobileNetImageNet Workload = "MobileNet-ImageNet"
)

// Workloads lists the available workloads in the paper's order.
func Workloads() []Workload {
	return []Workload{CNNMNIST, LSTMShakespeare, MobileNetImageNet}
}

// Setting names a (B, E, K) global-parameter tuple (Table 5).
type Setting string

// The four Table 5 settings.
const (
	S1 Setting = "S1"
	S2 Setting = "S2"
	S3 Setting = "S3"
	S4 Setting = "S4"
)

// Settings lists S1–S4.
func Settings() []Setting { return []Setting{S1, S2, S3, S4} }

// DataScenario names a data-heterogeneity setting (§5.2).
type DataScenario string

// The four data-distribution scenarios.
const (
	IdealIID  DataScenario = "iid"
	NonIID50  DataScenario = "noniid50"
	NonIID75  DataScenario = "noniid75"
	NonIID100 DataScenario = "noniid100"
)

// DataScenarios lists the four settings in order of increasing
// heterogeneity.
func DataScenarios() []DataScenario {
	return []DataScenario{IdealIID, NonIID50, NonIID75, NonIID100}
}

// Environment names a runtime-variance environment (§3.2).
type Environment string

// The evaluation environments.
const (
	// EnvIdeal has no interference and a stable network (Fig 5a).
	EnvIdeal Environment = "ideal"
	// EnvInterference adds a web-browsing co-runner on a random subset
	// of devices (Fig 5b).
	EnvInterference Environment = "interference"
	// EnvWeakNetwork degrades the wireless link (Fig 5c).
	EnvWeakNetwork Environment = "weak-network"
	// EnvField combines both variance sources — the realistic default.
	EnvField Environment = "field"
)

// Environments lists the variance environments.
func Environments() []Environment {
	return []Environment{EnvIdeal, EnvInterference, EnvWeakNetwork, EnvField}
}

// Policy names a participant-selection policy.
type Policy string

// The selection policies of §5.1 plus the prior-work comparators of
// §6.3.
const (
	PolicyRandom       Policy = "FedAvg-Random"
	PolicyPerformance  Policy = "Performance"
	PolicyPower        Policy = "Power"
	PolicyOParticipant Policy = "Oparticipant"
	PolicyOFL          Policy = "OFL"
	PolicyAutoFL       Policy = "AutoFL"
	PolicyFedNova      Policy = "FedNova"
	PolicyFEDL         Policy = "FEDL"
	// Battery-aware selection baselines (see Scenario.Battery). Not part
	// of Policies(): they exist to baseline the battery subsystem, not
	// the paper's evaluation matrix.
	PolicyBatteryWeighted Policy = "Battery-Weighted"
	PolicyAllAvailable    Policy = "All-Available"
)

// Policies lists every policy of the paper's evaluation matrix. The
// battery-aware baselines (PolicyBatteryWeighted, PolicyAllAvailable)
// are runnable but intentionally excluded — see Selections.
func Policies() []Policy {
	return []Policy{
		PolicyRandom, PolicyPerformance, PolicyPower,
		PolicyOParticipant, PolicyOFL, PolicyAutoFL,
		PolicyFedNova, PolicyFEDL,
	}
}

// Selections lists the battery-aware selection baseline names used by
// the sweep plane's selection axis, in comparison order.
func Selections() []string {
	return []string{"random", "battery_weighted", "all_available"}
}

// SelectionPolicy resolves a selection baseline name (see Selections)
// to the policy implementing it.
func SelectionPolicy(name string) (Policy, error) {
	switch name {
	case "random":
		return PolicyRandom, nil
	case "battery_weighted":
		return PolicyBatteryWeighted, nil
	case "all_available":
		return PolicyAllAvailable, nil
	}
	return "", fmt.Errorf("autofl: unknown selection baseline %q (want random, battery_weighted, or all_available)", name)
}

// Scenario describes one federated-learning deployment to simulate.
// The zero value of optional fields selects the paper's defaults
// (200-device fleet, 1000-round horizon, workload-specific accuracy
// target).
type Scenario struct {
	// Workload is the training task (default CNN-MNIST).
	Workload Workload
	// Setting is the (B, E, K) tuple (default S3).
	Setting Setting
	// Data is the heterogeneity scenario (default Ideal IID).
	Data DataScenario
	// Env is the runtime-variance environment (default field
	// conditions).
	Env Environment
	// Seed makes runs reproducible; equal seeds and scenarios yield
	// identical reports.
	Seed uint64
	// MaxRounds bounds the run (default 1000, the paper's horizon).
	MaxRounds int
	// Fleet overrides the paper's 200-device testbed with a scaled
	// population; nil keeps the default fleet. See FleetSpec for the
	// cohort/sampling semantics.
	Fleet *FleetSpec
	// Aggregation selects the server's aggregation regime; nil keeps
	// the paper's bulk-synchronous FedAvg. See AggregationSpec.
	Aggregation *AggregationSpec
	// Battery attaches a device battery model: charge state, idle drain
	// and per-round training/communication draw, optional energy
	// harvesting, and below-threshold availability gating. Nil — the
	// default — reproduces the batteryless engine byte for byte. See
	// BatterySpec.
	Battery *BatterySpec
	// AutoFL configures the AutoFL controller when it is the policy
	// being run; nil selects the paper's hyperparameters.
	AutoFL *AutoFLOptions
}

// BatteryProfile names an energy-harvesting profile.
type BatteryProfile string

// The harvesting profiles.
const (
	// BatteryNone models a pure battery: devices only drain.
	BatteryNone BatteryProfile = "none"
	// BatteryCharger plugs a keyed-random subset of devices into a
	// constant charger.
	BatteryCharger BatteryProfile = "charger"
	// BatterySolar charges every device on a day/night sine in virtual
	// time, with a keyed per-device phase.
	BatterySolar BatteryProfile = "solar-diurnal"
)

// BatteryProfiles lists the harvesting profiles.
func BatteryProfiles() []BatteryProfile {
	return []BatteryProfile{BatteryNone, BatteryCharger, BatterySolar}
}

// BatterySpec configures the per-device battery model. The zero value
// of every field selects a tuned default, so &BatterySpec{} is a usable
// small-battery deployment; DefaultBattery builds profile presets.
//
// The model costs a few bytes per device and integrates lazily, so it
// composes with million-device populations and sampled rounds; runs
// stay deterministic and independent of shard/worker counts.
type BatterySpec struct {
	// Profile selects the harvesting profile (default none).
	Profile BatteryProfile
	// CapacityJ is the battery capacity (default 2000 J — a deliberately
	// small cell so depletion dynamics are visible within a run).
	CapacityJ float64
	// ThresholdJ is the participation threshold: devices below it are
	// excluded from the candidate set (default 15% of capacity).
	ThresholdJ float64
	// InitialFracLo and InitialFracHi bound the keyed-random initial
	// state of charge (default [0.80, 0.95] — devices enter federated
	// rounds charged and idle).
	InitialFracLo, InitialFracHi float64
	// HarvestW is the harvesting power while charging (default 2.5 W).
	HarvestW float64
	// ChargerFrac is the fraction of devices plugged in under the
	// charger profile (default 0.25).
	ChargerFrac float64
	// DaySec is the solar profile's diurnal period (default 86400 s).
	DaySec float64
}

// DefaultBattery returns the tuned preset for a harvesting profile.
func DefaultBattery(p BatteryProfile) *BatterySpec {
	return &BatterySpec{Profile: p}
}

// batterySpec maps the public spec onto the engine model.
func (b *BatterySpec) batterySpec() (*battery.Spec, error) {
	spec := battery.Spec{
		CapacityJ:     b.CapacityJ,
		ThresholdJ:    b.ThresholdJ,
		InitialFracLo: b.InitialFracLo,
		InitialFracHi: b.InitialFracHi,
		HarvestW:      b.HarvestW,
		ChargerFrac:   b.ChargerFrac,
		DaySec:        b.DaySec,
	}
	if spec.CapacityJ == 0 {
		spec.CapacityJ = 2000
	}
	switch b.Profile {
	case "", BatteryNone:
		spec.Harvest = battery.ProfileNone
	case BatteryCharger:
		spec.Harvest = battery.ProfileCharger
	case BatterySolar:
		spec.Harvest = battery.ProfileSolar
	default:
		return nil, fmt.Errorf("autofl: unknown battery profile %q", b.Profile)
	}
	return &spec, nil
}

// AggregationMode names a server aggregation regime.
type AggregationMode string

// The aggregation regimes.
const (
	// SyncAggregation is the paper's bulk-synchronous FedAvg (the
	// default): each round waits for its cohort or the straggler
	// deadline.
	SyncAggregation AggregationMode = "sync"
	// AsyncAggregation applies every device update the moment it
	// arrives, discounted by staleness — no barrier, no drops.
	AsyncAggregation AggregationMode = "async"
	// SemiAsyncAggregation aggregates at a quorum of arrivals or a
	// deadline; stragglers roll into the next model version.
	SemiAsyncAggregation AggregationMode = "semi-async"
)

// AggregationModes lists the selectable regimes.
func AggregationModes() []AggregationMode {
	return []AggregationMode{SyncAggregation, AsyncAggregation, SemiAsyncAggregation}
}

// AggregationSpec configures the asynchronous aggregation regimes.
// All runs — any mode, any fleet scale, serial or distributed — stay
// deterministic: traces are a pure function of the scenario and seed.
type AggregationSpec struct {
	// Mode selects the regime (default sync).
	Mode AggregationMode
	// StalenessAlpha is the α of the staleness discount 1/(1+s)^α
	// applied to updates dispatched s model versions ago; 0 selects
	// the engine default (0.5). Only meaningful in the async regimes.
	StalenessAlpha float64
	// AggregateK is the semi-async aggregation quorum (0 = ceil(K/2)).
	AggregateK int
	// DeadlineSec bounds how long a semi-async step waits for its
	// quorum (0 = derived from the in-flight cohort per step).
	DeadlineSec float64
}

// FleetSpec sizes a device population beyond the paper's 200-device
// testbed. The population is held in cohort form — an archetype table
// plus packed struct-of-arrays per-device state (~42 bytes/device) —
// so one Scenario scales to millions of devices.
type FleetSpec struct {
	// High, Mid, Low are the per-tier device counts.
	High, Mid, Low int
	// Sample is the per-round candidate-pool size: each round the
	// engine draws Sample candidates from the population and the
	// policy selects K participants among them, making per-round cost
	// O(Sample) instead of O(fleet). Zero runs the population
	// exhaustively (byte-identical to a materialized fleet of the same
	// shape) — fine for thousands of devices, a wall at millions.
	Sample int
	// Shards is the engine's intra-round parallelism (0 = automatic).
	// Results are independent of the shard count.
	Shards int
}

// ScaledFleet builds a FleetSpec with n devices in the paper's tier
// proportions (15% high, 35% mid, 50% low) and the given per-round
// candidate sample.
func ScaledFleet(n, sample int) *FleetSpec {
	high := n * device.DefaultHighCount / 200
	mid := n * device.DefaultMidCount / 200
	return &FleetSpec{High: high, Mid: mid, Low: n - high - mid, Sample: sample}
}

// AutoFLOptions exposes the controller hyperparameters (§5.3).
type AutoFLOptions struct {
	// Epsilon is the exploration probability (default 0.1).
	Epsilon float64
	// LearningRate is γ (default 0.9).
	LearningRate float64
	// Discount is µ (default 0.1).
	Discount float64
	// SharedTables shares Q-tables within a device category (§4
	// Scalability).
	SharedTables bool
	// FairnessWeight adds an energy-fairness term to the reward: each
	// participant is credited with its state of charge, steering the
	// controller toward rotating load across the fleet. Only meaningful
	// when Scenario.Battery is set; 0 keeps the paper's reward.
	FairnessWeight float64
}

// Report is the outcome of one simulated FL run.
type Report struct {
	// Policy that produced the run.
	Policy Policy
	// Converged reports whether the accuracy target was reached.
	Converged bool
	// ConvergedRound is the 1-based round at which the target was
	// reached; 0 means the run never converged.
	ConvergedRound int
	// Rounds executed (equals the convergence round when converged).
	Rounds int
	// TimeToTargetSec and EnergyToTargetJ cover the run until
	// convergence (or the full horizon when stalled).
	TimeToTargetSec float64
	EnergyToTargetJ float64
	// GlobalPPW and LocalPPW are the paper's efficiency metrics:
	// training progress per joule, fleet-wide and participants-only.
	GlobalPPW float64
	LocalPPW  float64
	// FinalAccuracy is the model accuracy at the end of the run.
	FinalAccuracy float64
	// MeanStaleness averages the per-round mean applied-update
	// staleness over the run; 0 for synchronous runs.
	MeanStaleness float64
	// AccuracyTrace holds per-round accuracy (Fig 6a-style curves).
	AccuracyTrace []float64
	// RewardTrace holds AutoFL's per-round mean reward (Fig 15); nil
	// for other policies.
	RewardTrace []float64
	// Battery summarizes the battery subsystem at the end of the run;
	// nil when the scenario has no battery model.
	Battery *BatteryReport
}

// BatteryReport is the end-of-run battery summary of a battery-enabled
// scenario.
type BatteryReport struct {
	// ParticipationJain is Jain's fairness index over cumulative
	// per-device participation counts: 1 when every device carried the
	// same load, 1/n when one device carried everything.
	ParticipationJain float64
	// MeanCharge is the candidate view's mean state of charge in [0, 1]
	// at the final round.
	MeanCharge float64
	// Available and Depleted count final-round candidate devices above
	// the participation threshold and at zero charge.
	Available, Depleted int
}

func (s Scenario) simConfig() (sim.Config, error) {
	cfg := sim.Config{Seed: s.Seed, MaxRounds: s.MaxRounds}

	name := s.Workload
	if name == "" {
		name = CNNMNIST
	}
	w := workload.ByName(string(name))
	if w == nil {
		return cfg, fmt.Errorf("autofl: unknown workload %q", name)
	}
	cfg.Workload = w

	switch s.Setting {
	case "", S3:
		cfg.Params = workload.S3
	case S1:
		cfg.Params = workload.S1
	case S2:
		cfg.Params = workload.S2
	case S4:
		cfg.Params = workload.S4
	default:
		return cfg, fmt.Errorf("autofl: unknown setting %q", s.Setting)
	}

	switch s.Data {
	case "", IdealIID:
		cfg.Data = data.IdealIID
	case NonIID50:
		cfg.Data = data.NonIID50
	case NonIID75:
		cfg.Data = data.NonIID75
	case NonIID100:
		cfg.Data = data.NonIID100
	default:
		return cfg, fmt.Errorf("autofl: unknown data scenario %q", s.Data)
	}

	switch s.Env {
	case "", EnvField:
		cfg.Env = sim.EnvField()
	case EnvIdeal:
		cfg.Env = sim.EnvIdeal()
	case EnvInterference:
		cfg.Env = sim.EnvInterference()
	case EnvWeakNetwork:
		cfg.Env = sim.EnvWeakNetwork()
	default:
		return cfg, fmt.Errorf("autofl: unknown environment %q", s.Env)
	}

	if s.Fleet != nil {
		pop, err := device.NewPopulation(s.Fleet.High, s.Fleet.Mid, s.Fleet.Low)
		if err != nil {
			return cfg, fmt.Errorf("autofl: fleet spec: %w", err)
		}
		cfg.Population = pop
		cfg.Sample = s.Fleet.Sample
		cfg.Shards = s.Fleet.Shards
	}
	if s.Aggregation != nil {
		// sim.NewEngine validates the mode and knob combinations,
		// returning a *sim.ConfigError for bad α/deadline/quorum.
		cfg.Mode = sim.AggregationMode(s.Aggregation.Mode)
		cfg.StalenessAlpha = s.Aggregation.StalenessAlpha
		cfg.AggregateK = s.Aggregation.AggregateK
		cfg.AggregateDeadlineSec = s.Aggregation.DeadlineSec
	}
	if s.Battery != nil {
		// sim.NewEngine validates the numeric ranges, returning a
		// *sim.ConfigError for degenerate capacity/threshold/harvest
		// combinations.
		spec, err := s.Battery.batterySpec()
		if err != nil {
			return cfg, err
		}
		cfg.Battery = spec
	}
	return cfg, nil
}

func (s Scenario) policy(p Policy) (sim.Policy, error) {
	seed := s.Seed ^ 0x5eed
	switch p {
	case PolicyRandom:
		return policy.NewRandom(seed), nil
	case PolicyPerformance:
		return policy.NewPerformance(seed), nil
	case PolicyPower:
		return policy.NewPower(seed), nil
	case PolicyOParticipant:
		return policy.NewOParticipant(), nil
	case PolicyOFL:
		return policy.NewOFL(), nil
	case PolicyFedNova:
		return policy.NewFedNova(seed), nil
	case PolicyFEDL:
		return policy.NewFEDL(seed), nil
	case PolicyBatteryWeighted:
		return policy.NewBatteryWeighted(seed), nil
	case PolicyAllAvailable:
		return policy.NewAllAvailable(), nil
	case PolicyAutoFL:
		opts := core.DefaultOptions(seed)
		if s.AutoFL != nil {
			if s.AutoFL.Epsilon > 0 {
				opts.Epsilon = s.AutoFL.Epsilon
			}
			if s.AutoFL.LearningRate > 0 {
				opts.LearningRate = s.AutoFL.LearningRate
			}
			if s.AutoFL.Discount > 0 {
				opts.Discount = s.AutoFL.Discount
			}
			opts.SharedTables = s.AutoFL.SharedTables
			opts.FairnessWeight = s.AutoFL.FairnessWeight
		}
		if s.Battery != nil {
			// Extend the Table 1 state space with a charge digit so the
			// controller can condition on battery level. Battery-less
			// scenarios keep the published state space exactly.
			b := core.DefaultBuckets()
			b.Battery = []float64{0.25, 0.6}
			opts.Buckets = &b
		}
		return core.New(opts), nil
	default:
		return nil, fmt.Errorf("autofl: unknown policy %q", p)
	}
}

// reportFromResult converts an engine-level result into the public
// report.
func reportFromResult(p Policy, res *sim.Result) *Report {
	out := &Report{
		Policy:          p,
		Converged:       res.Converged,
		ConvergedRound:  res.ConvergedRound,
		Rounds:          res.Rounds,
		TimeToTargetSec: res.TimeToTargetSec,
		EnergyToTargetJ: res.EnergyToTargetJ,
		GlobalPPW:       res.GlobalPPW(),
		LocalPPW:        res.LocalPPW(),
		FinalAccuracy:   res.FinalAccuracy,
		MeanStaleness:   res.MeanStaleness,
		AccuracyTrace:   res.AccuracyTrace,
		RewardTrace:     res.RewardTrace,
	}
	if res.Battery != nil {
		out.Battery = &BatteryReport{
			ParticipationJain: res.Battery.ParticipationJain,
			MeanCharge:        res.Battery.MeanFrac,
			Available:         res.Battery.Available,
			Depleted:          res.Battery.Depleted,
		}
	}
	return out
}

// Run simulates the scenario under the given selection policy. It is
// a Session stepped to completion — Open the scenario instead for
// round-by-round control, observers, and early stopping.
func (s Scenario) Run(p Policy) (*Report, error) {
	sess, err := Open(s, p)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	return sess.Run(), nil
}

// RunAll simulates the scenario under each policy in turn.
func (s Scenario) RunAll(ps ...Policy) ([]*Report, error) {
	if len(ps) == 0 {
		ps = Policies()
	}
	out := make([]*Report, 0, len(ps))
	for _, p := range ps {
		r, err := s.Run(p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Comparison normalizes reports against a baseline, mirroring the
// paper's normalized-PPW figures.
type Comparison struct {
	// Baseline is the policy everything is normalized to.
	Baseline Policy
	// Rows holds one entry per report, in input order.
	Rows []ComparisonRow
}

// ComparisonRow is one policy's improvement factors over the baseline.
type ComparisonRow struct {
	Policy Policy
	// GlobalPPWx, LocalPPWx and ConvTimex are improvement multipliers
	// (1.0 = parity with the baseline).
	GlobalPPWx, LocalPPWx, ConvTimex float64
	Converged                        bool
	FinalAccuracy                    float64
}

// Compare normalizes the reports against the named baseline policy,
// which must be present among them.
func Compare(baseline Policy, reports []*Report) (*Comparison, error) {
	results := make([]*sim.Result, 0, len(reports))
	for _, r := range reports {
		results = append(results, reportToResult(r))
	}
	cmp, err := metrics.Compare(string(baseline), results)
	if err != nil {
		return nil, err
	}
	out := &Comparison{Baseline: baseline}
	for _, row := range cmp.Rows {
		out.Rows = append(out.Rows, ComparisonRow{
			Policy:        Policy(row.Policy),
			GlobalPPWx:    row.GlobalPPWx,
			LocalPPWx:     row.LocalPPWx,
			ConvTimex:     row.ConvTimex,
			Converged:     row.Converged,
			FinalAccuracy: row.FinalAccuracy,
		})
	}
	return out, nil
}

// reportToResult reconstructs the sim.Result fields Compare needs.
func reportToResult(r *Report) *sim.Result {
	res := &sim.Result{
		Policy:          string(r.Policy),
		Converged:       reportConverged(r),
		ConvergedRound:  r.ConvergedRound,
		Rounds:          r.Rounds,
		TimeToTargetSec: r.TimeToTargetSec,
		EnergyToTargetJ: r.EnergyToTargetJ,
		FinalAccuracy:   r.FinalAccuracy,
	}
	// Invert the PPW definitions to recover the progress-normalized
	// energies metrics.Compare expects.
	if r.GlobalPPW > 0 {
		res.EnergyToTargetJ = 1 / r.GlobalPPW * progressOf(r)
	}
	if r.LocalPPW > 0 {
		res.ParticipantEnergyToTargetJ = 1 / r.LocalPPW * progressOf(r)
	}
	// Carry floor/target so Progress() reproduces the original value.
	res.AccuracyFloor = 0
	res.TargetAccuracy = 1
	if res.Converged {
		res.FinalAccuracy = 1
	} else {
		res.FinalAccuracy = progressOf(r)
	}
	return res
}

// reportConverged applies the never-converged guard to a report's
// convergence claim: a report that says Converged while recording
// neither a convergence round nor any executed rounds is the
// never-converged zero value mislabeled. Normalizing it as full
// progress would hand it an infinite efficiency edge in Compare;
// treat it as no progress instead.
func reportConverged(r *Report) bool {
	return r.Converged && !(r.ConvergedRound == 0 && r.Rounds == 0)
}

func progressOf(r *Report) float64 {
	if reportConverged(r) {
		return 1
	}
	if r.EnergyToTargetJ > 0 && r.GlobalPPW > 0 {
		return r.GlobalPPW * r.EnergyToTargetJ
	}
	return 0
}
