package autofl

import (
	"math"
	"testing"
)

func quick(seed uint64) Scenario {
	return Scenario{
		Workload:  CNNMNIST,
		Setting:   S3,
		Data:      IdealIID,
		Env:       EnvIdeal,
		Seed:      seed,
		MaxRounds: 500,
	}
}

func TestScenarioDefaults(t *testing.T) {
	r, err := (Scenario{Seed: 1, MaxRounds: 400}).Run(PolicyRandom)
	if err != nil {
		t.Fatal(err)
	}
	if r.Policy != PolicyRandom {
		t.Errorf("policy = %q", r.Policy)
	}
	if r.Rounds == 0 || r.EnergyToTargetJ <= 0 {
		t.Error("report missing basic measurements")
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []Scenario{
		{Workload: "nope"},
		{Setting: "S9"},
		{Data: "weird"},
		{Env: "lunar"},
	}
	for _, s := range cases {
		if _, err := s.Run(PolicyRandom); err == nil {
			t.Errorf("scenario %+v should fail validation", s)
		}
	}
	if _, err := quick(1).Run("NotAPolicy"); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestRunReproducible(t *testing.T) {
	a, err := quick(7).Run(PolicyAutoFL)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := quick(7).Run(PolicyAutoFL)
	if a.EnergyToTargetJ != b.EnergyToTargetJ || a.Rounds != b.Rounds {
		t.Error("identical scenarios+seeds must produce identical reports")
	}
}

func TestAutoFLReportHasRewardTrace(t *testing.T) {
	r, err := quick(3).Run(PolicyAutoFL)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RewardTrace) == 0 {
		t.Error("AutoFL reports should include the reward trace")
	}
	random, _ := quick(3).Run(PolicyRandom)
	if random.RewardTrace != nil {
		t.Error("non-learning policies should not carry a reward trace")
	}
}

func TestRunAllAndCompare(t *testing.T) {
	s := quick(5)
	s.Env = EnvField
	reports, err := s.RunAll(PolicyRandom, PolicyAutoFL, PolicyOFL)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("RunAll returned %d reports", len(reports))
	}
	cmp, err := Compare(PolicyRandom, reports)
	if err != nil {
		t.Fatal(err)
	}
	var baseRow *ComparisonRow
	for i := range cmp.Rows {
		if cmp.Rows[i].Policy == PolicyRandom {
			baseRow = &cmp.Rows[i]
		}
	}
	if baseRow == nil {
		t.Fatal("baseline row missing")
	}
	if math.Abs(baseRow.GlobalPPWx-1) > 1e-9 {
		t.Errorf("baseline normalizes to %v, want 1.0", baseRow.GlobalPPWx)
	}
	for _, row := range cmp.Rows {
		if row.Policy == PolicyAutoFL && row.GlobalPPWx <= 1 {
			t.Errorf("AutoFL PPW improvement = %v, want > 1 in the field env", row.GlobalPPWx)
		}
	}
}

func TestCompareMissingBaseline(t *testing.T) {
	reports, _ := quick(6).RunAll(PolicyRandom)
	if _, err := Compare(PolicyOFL, reports); err == nil {
		t.Error("missing baseline should error")
	}
}

func TestEnumerations(t *testing.T) {
	if len(Workloads()) != 3 || len(Settings()) != 4 || len(DataScenarios()) != 4 {
		t.Error("enumeration lengths wrong")
	}
	if len(Policies()) != 8 {
		t.Errorf("policies = %d, want 8", len(Policies()))
	}
	if len(Environments()) != 4 {
		t.Error("environments wrong")
	}
}

func TestAutoFLOptionsApplied(t *testing.T) {
	s := quick(8)
	s.AutoFL = &AutoFLOptions{Epsilon: 0.3, SharedTables: true}
	r, err := s.Run(PolicyAutoFL)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rounds == 0 {
		t.Error("run with custom options produced no rounds")
	}
	// Different hyperparameters should change the trajectory.
	base, _ := quick(8).Run(PolicyAutoFL)
	if base.EnergyToTargetJ == r.EnergyToTargetJ {
		t.Error("custom epsilon should alter the run")
	}
}

func TestHeterogeneityScenario(t *testing.T) {
	s := quick(9)
	s.Data = NonIID75
	s.MaxRounds = 800
	random, err := s.Run(PolicyRandom)
	if err != nil {
		t.Fatal(err)
	}
	if random.Converged {
		t.Error("random selection should stall at Non-IID(75%)")
	}
	auto, err := s.Run(PolicyAutoFL)
	if err != nil {
		t.Fatal(err)
	}
	if !auto.Converged {
		t.Error("AutoFL should converge at Non-IID(75%)")
	}
}
