package autofl

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"autofl/internal/metrics"
	"autofl/internal/sim"
	"autofl/internal/sweep"
	"autofl/internal/sweep/dist"
)

// seedFingerprints pins battery-disabled behavior to the pre-battery
// engine: each value is "rounds|converged|accuracy|energy|time"
// (floats at full %.17g precision) captured from the repository state
// before the battery subsystem existed, for the CNN-MNIST/S3/noniid50
// scenario at seed 9 over 30 rounds. The battery seed is derived by
// keyed hashing rather than stream draws, so these must hold exactly.
var seedFingerprints = map[string]string{
	"ideal" + "/" + "FedAvg-Random":        "30|false|0.41145546821784679|44770.352471047394|1006.4385189536788",
	"ideal" + "/" + "Performance":          "30|false|0.45236273339543109|44360.651888738314|623.37008250761778",
	"ideal" + "/" + "Power":                "30|false|0.40634247138522572|44803.538426133717|1032.4042818267255",
	"ideal" + "/" + "Oparticipant":         "30|false|0.44450363080529048|38062.815311618513|842.97750591478871",
	"ideal" + "/" + "OFL":                  "30|false|0.44450363080529048|28672.649417646808|1358.7308360440024",
	"ideal" + "/" + "AutoFL":               "30|false|0.43659046413559977|42703.849469281238|1391.4308073108523",
	"ideal" + "/" + "FedNova":              "30|false|0.43903215500338894|44770.352471047394|1006.4385189536788",
	"ideal" + "/" + "FEDL":                 "30|false|0.446048610334632|44770.352471047394|1006.4385189536788",
	"interference" + "/" + "FedAvg-Random": "30|false|0.38293339841912571|60086.277509756022|1560.8043500559211",
	"interference" + "/" + "Performance":   "30|false|0.45236273339543109|53657.524656568414|935.94589288323004",
	"interference" + "/" + "Power":         "30|false|0.37445248137104004|60701.938765167062|1751.5864803365591",
	"interference" + "/" + "Oparticipant":  "30|false|0.45023752763204838|44960.624069299549|980.34140046347295",
	"interference" + "/" + "OFL":           "30|false|0.4383464029283286|32782.037672625265|1150.0718782776457",
	"interference" + "/" + "AutoFL":        "30|false|0.42138547756171574|46909.813471627793|1377.3647827464083",
	"interference" + "/" + "FedNova":       "30|false|0.4280576876615072|60086.277509756022|1560.8043500559211",
	"interference" + "/" + "FEDL":          "30|false|0.43456747671827139|60086.277509756022|1560.8043500559211",
	"weak-network" + "/" + "FedAvg-Random": "30|false|0.40960978303672696|62147.44250911026|1748.7850916454881",
	"weak-network" + "/" + "Performance":   "30|false|0.44048379745040472|62186.446228695859|1431.4898901620245",
	"weak-network" + "/" + "Power":         "30|false|0.40443473397292479|63302.135959109168|1877.114432137113",
	"weak-network" + "/" + "Oparticipant":  "30|false|0.45265638435111322|47603.700179486776|979.16008156261262",
	"weak-network" + "/" + "OFL":           "30|false|0.45265638435111322|37979.058428512115|1451.8266804382872",
	"weak-network" + "/" + "AutoFL":        "30|false|0.43197443252364287|60962.42640997345|1879.4406601316421",
	"weak-network" + "/" + "FedNova":       "30|false|0.43895336428817999|62147.44250911026|1748.7850916454881",
	"weak-network" + "/" + "FEDL":          "30|false|0.44595582933547162|62147.44250911026|1748.7850916454881",
	"field" + "/" + "FedAvg-Random":        "30|false|0.38331890362240617|62912.512848786631|1637.7462553679411",
	"field" + "/" + "Performance":          "30|false|0.45132596089602622|56202.107005603051|1033.7136625721055",
	"field" + "/" + "Power":                "30|false|0.37445248137104004|63516.161832109836|1833.456901273496",
	"field" + "/" + "Oparticipant":         "30|false|0.44832478225485634|46129.572178293667|1083.0553525867253",
	"field" + "/" + "OFL":                  "30|false|0.43757150004444145|33831.548851526393|1240.8067883764272",
	"field" + "/" + "AutoFL":               "30|false|0.41323894824295232|49479.701333372213|1432.865942510846",
	"field" + "/" + "FedNova":              "30|false|0.42850734119099421|62912.512848786631|1637.7462553679411",
	"field" + "/" + "FEDL":                 "30|false|0.43504146505478963|62912.512848786631|1637.7462553679411",
}

// TestBatteryDisabledPinnedToSeed is the compatibility pin of the
// battery subsystem: with Scenario.Battery nil, every environment ×
// policy combination reproduces the pre-battery engine bit for bit.
// Any stream draw, state-space change, or selection reordering the
// battery wiring leaks into disabled runs breaks this table.
func TestBatteryDisabledPinnedToSeed(t *testing.T) {
	for _, env := range Environments() {
		for _, pol := range Policies() {
			s := Scenario{
				Workload:  CNNMNIST,
				Setting:   S3,
				Data:      NonIID50,
				Env:       env,
				Seed:      9,
				MaxRounds: 30,
			}
			r, err := s.Run(pol)
			if err != nil {
				t.Fatalf("%s/%s: %v", env, pol, err)
			}
			if r.Battery != nil {
				t.Errorf("%s/%s: battery-disabled run carries a battery report", env, pol)
			}
			got := fmt.Sprintf("%d|%t|%.17g|%.17g|%.17g",
				r.Rounds, r.Converged, r.FinalAccuracy, r.EnergyToTargetJ, r.TimeToTargetSec)
			key := string(env) + "/" + string(pol)
			want, ok := seedFingerprints[key]
			if !ok {
				t.Errorf("%s: no pinned fingerprint (new policy? capture one from a battery-disabled build)", key)
				continue
			}
			if got != want {
				t.Errorf("%s: battery-disabled run drifted from the pre-battery seed\n got %s\nwant %s", key, got, want)
			}
		}
	}
}

// TestSimJainMatchesMetrics pins sim's duplicated Jain closed form to
// metrics.JainFromMoments (the duplication exists because
// internal/metrics imports sim). Any edit to one formula without the
// other fails here.
func TestSimJainMatchesMetrics(t *testing.T) {
	cases := [][]float64{
		{},
		{0, 0, 0},
		{1},
		{1, 1, 1, 1},
		{5, 0, 0, 0},
		{3, 1, 4, 1, 5, 9, 2, 6},
		{1e-9, 2e-9, 3e-9},
		{1e12, 7, 0.25},
	}
	for _, xs := range cases {
		var sum, sumSq float64
		for _, x := range xs {
			sum += x
			sumSq += x * x
		}
		a := sim.BatteryJainFromMoments(sum, sumSq, len(xs))
		b := metrics.JainFromMoments(sum, sumSq, len(xs))
		c := metrics.JainFairness(xs)
		if a != b {
			t.Errorf("moments %v: sim=%v metrics=%v", xs, a, b)
		}
		if math.Abs(a-c) > 1e-12 {
			t.Errorf("xs %v: moments form %v vs direct form %v", xs, a, c)
		}
	}
}

// TestBatteryShardInvariance pins shard-count independence for
// battery-enabled sampled populations: the packed engine's battery
// settle pass runs inside the parallel observe pass, and its results
// must not depend on how candidates are partitioned across shards.
func TestBatteryShardInvariance(t *testing.T) {
	run := func(shards int, profile BatteryProfile) *Report {
		fleet := ScaledFleet(20_000, 512)
		fleet.Shards = shards
		s := Scenario{
			Workload:  CNNMNIST,
			Setting:   S3,
			Data:      NonIID50,
			Env:       EnvField,
			Seed:      11,
			MaxRounds: 25,
			Fleet:     fleet,
			Battery:   DefaultBattery(profile),
		}
		r, err := s.Run(PolicyBatteryWeighted)
		if err != nil {
			t.Fatalf("shards=%d profile=%s: %v", shards, profile, err)
		}
		return r
	}
	for _, profile := range BatteryProfiles() {
		base := run(1, profile)
		if base.Battery == nil {
			t.Fatalf("profile %s: battery-enabled run missing battery report", profile)
		}
		for _, shards := range []int{2, 4, 7} {
			if got := run(shards, profile); !reflect.DeepEqual(base, got) {
				t.Errorf("profile %s: shards=%d report differs from shards=1", profile, shards)
			}
		}
	}
}

// batteryGrid crosses a small scenario slice with the battery and
// selection axes.
func batteryGrid(seed uint64) sweep.Grid {
	return sweep.Grid{
		Workloads:  []string{string(CNNMNIST)},
		Settings:   []string{string(S3)},
		Data:       []string{string(IdealIID)},
		Envs:       []string{string(EnvField)},
		Batteries:  []string{string(BatteryNone), string(BatteryCharger)},
		Selections: []string{"random", "battery_weighted"},
		Replicates: 2,
		Seed:       seed,
	}
}

// TestBatterySweepDistributedMatchesSerial pins placement invariance
// for the battery axes: a battery × selection grid farmed to loopback
// worker processes emits byte-identical JSON to an in-process serial
// sweep, and the CSV carries the battery column group.
func TestBatterySweepDistributedMatchesSerial(t *testing.T) {
	g := batteryGrid(101)
	const rounds = 20
	ctx := context.Background()

	serial, err := RunSweep(ctx, g, rounds, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	newWorker := func() *dist.Worker {
		w, werr := dist.NewWorker("127.0.0.1:0", 2, SweepRunners)
		if werr != nil {
			t.Fatal(werr)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		return w
	}
	w1, w2 := newWorker(), newWorker()

	distStore, err := RunSweepWith(ctx, g, SweepOptions{
		MaxRounds: rounds,
		Workers:   []string{w1.Addr(), w2.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range distStore.Results() {
		if r.Err != "" {
			t.Errorf("cell %s errored: %s", r.Cell.Key(), r.Err)
		}
	}

	var sj, dj bytes.Buffer
	if err := serial.WriteJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if err := distStore.WriteJSON(&dj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), dj.Bytes()) {
		t.Error("distributed battery sweep JSON differs from serial")
	}

	var csv bytes.Buffer
	if err := serial.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	for _, col := range []string{"battery", "selection", "participation_jain_mean", "battery_mean_frac_mean"} {
		if !strings.Contains(header, col) {
			t.Errorf("battery CSV header missing %q: %s", col, header)
		}
	}
}

// TestBatteryWeightedRaisesJain is the subsystem's headline smoke: on
// an energy-constrained pure-battery deployment, charge-weighted
// selection shifts early load onto charge-rich devices, keeps the
// charge-poor alive and participating deeper into the run, and so
// spreads cumulative participation measurably more fairly than uniform
// random selection. The effect is a mid-horizon one — it builds while
// devices are depleting and washes out once the whole fleet has
// exhausted its energy — so the smoke runs 90 rounds against the
// small-cell preset, where the margin is ~0.03 across seeds.
func TestBatteryWeightedRaisesJain(t *testing.T) {
	g := sweep.Grid{
		Workloads:  []string{string(CNNMNIST)},
		Settings:   []string{string(S3)},
		Data:       []string{string(IdealIID)},
		Envs:       []string{string(EnvField)},
		Batteries:  []string{string(BatteryNone)},
		Selections: []string{"random", "battery_weighted"},
		Replicates: 3,
		Seed:       7,
	}
	store, err := RunSweep(context.Background(), g, 90, sweep.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	jain := map[string]float64{}
	for _, s := range store.Summaries() {
		if s.Errors > 0 {
			t.Fatalf("selection %s: %d errored replicates", s.Selection, s.Errors)
		}
		if s.ParticipationJain == nil {
			t.Fatalf("selection %s: no participation_jain summary", s.Selection)
		}
		jain[s.Selection] = s.ParticipationJain.Mean
	}
	r, okR := jain["random"]
	b, okB := jain["battery_weighted"]
	if !okR || !okB {
		t.Fatalf("missing selection summaries: %v", jain)
	}
	// "Measurably": a full point of Jain margin, not float noise.
	if b < r+0.01 {
		t.Errorf("battery_weighted Jain %.4f does not measurably beat random %.4f", b, r)
	}
}
