// Benchmarks: one entry point per reproduced table/figure (see the
// per-experiment index in DESIGN.md), plus microbenchmarks for the
// §6.4 overhead analysis. Figure benchmarks exercise the same code
// paths as cmd/autofl-bench at a reduced scale (smaller fleet, shorter
// horizon) so `go test -bench=.` stays fast; the full-scale numbers
// live in EXPERIMENTS.md.
package autofl

import (
	"context"
	"fmt"
	"testing"

	"autofl/internal/core"
	"autofl/internal/data"
	"autofl/internal/device"
	"autofl/internal/fedavg"
	"autofl/internal/policy"
	"autofl/internal/qlearn"
	"autofl/internal/rng"
	"autofl/internal/sim"
	"autofl/internal/sweep"
	"autofl/internal/sweep/cache"
	"autofl/internal/workload"
)

// benchConfig is a reduced-scale run: 40-device fleet, 60 rounds.
func benchConfig(seed uint64) sim.Config {
	return sim.Config{
		Workload:       workload.CNNMNIST(),
		Params:         workload.GlobalParams{B: 16, E: 5, K: 8},
		Fleet:          device.NewFleet(6, 14, 20),
		Data:           data.IdealIID,
		Env:            sim.EnvField(),
		Seed:           seed,
		MaxRounds:      60,
		TargetAccuracy: 1.1, // run the fixed horizon
	}
}

func benchRun(b *testing.B, mk func(i int) sim.Policy, mut func(*sim.Config)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(uint64(i + 1))
		if mut != nil {
			mut(&cfg)
		}
		res := sim.New(cfg).Run(mk(i))
		if res.Rounds == 0 {
			b.Fatal("run produced no rounds")
		}
	}
}

// BenchmarkFig01Headroom — E1: random vs OFL PPW headroom.
func BenchmarkFig01Headroom(b *testing.B) {
	benchRun(b, func(i int) sim.Policy { return policy.NewOFL() }, nil)
}

// BenchmarkFig04GlobalParams — E2: cluster policies across settings.
func BenchmarkFig04GlobalParams(b *testing.B) {
	c3, _ := policy.ClusterByName("C3")
	benchRun(b, func(i int) sim.Policy { return policy.NewStatic("C3", c3, uint64(i)) },
		func(cfg *sim.Config) { cfg.Params = workload.GlobalParams{B: 32, E: 10, K: 8} })
}

// BenchmarkFig05RuntimeVariance — E3: cluster policy under interference.
func BenchmarkFig05RuntimeVariance(b *testing.B) {
	benchRun(b, func(i int) sim.Policy { return policy.NewPerformance(uint64(i)) },
		func(cfg *sim.Config) { cfg.Env = sim.EnvInterference() })
}

// BenchmarkFig06DataHeterogeneity — E4: random selection on non-IID data.
func BenchmarkFig06DataHeterogeneity(b *testing.B) {
	benchRun(b, func(i int) sim.Policy { return policy.NewRandom(uint64(i)) },
		func(cfg *sim.Config) { cfg.Data = data.NonIID75 })
}

// BenchmarkFig08Overview — E5: the AutoFL controller end to end.
func BenchmarkFig08Overview(b *testing.B) {
	benchRun(b, func(i int) sim.Policy { return core.New(core.DefaultOptions(uint64(i))) }, nil)
}

// BenchmarkFig09GlobalParamAdaptability — E6: AutoFL at S1-heavy work.
func BenchmarkFig09GlobalParamAdaptability(b *testing.B) {
	benchRun(b, func(i int) sim.Policy { return core.New(core.DefaultOptions(uint64(i))) },
		func(cfg *sim.Config) { cfg.Params = workload.GlobalParams{B: 32, E: 10, K: 8} })
}

// BenchmarkFig10VarianceAdaptability — E7: AutoFL under interference.
func BenchmarkFig10VarianceAdaptability(b *testing.B) {
	benchRun(b, func(i int) sim.Policy { return core.New(core.DefaultOptions(uint64(i))) },
		func(cfg *sim.Config) { cfg.Env = sim.EnvInterference() })
}

// BenchmarkFig11HeterogeneityAdaptability — E8: AutoFL on non-IID data.
func BenchmarkFig11HeterogeneityAdaptability(b *testing.B) {
	benchRun(b, func(i int) sim.Policy { return core.New(core.DefaultOptions(uint64(i))) },
		func(cfg *sim.Config) { cfg.Data = data.NonIID100 })
}

// BenchmarkFig12PredictionAccuracy — E9: AutoFL + oracle per round.
func BenchmarkFig12PredictionAccuracy(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(3)
	eng := sim.New(cfg)
	auto := core.New(core.DefaultOptions(4))
	oracle := policy.NewOFL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, res := eng.RunRound(auto, i, 0.5)
		auto.Feedback(ctx, res)
		_ = oracle.Select(ctx)
	}
}

// BenchmarkFig13PriorWork — E10: FedNova aggregation traits.
func BenchmarkFig13PriorWork(b *testing.B) {
	benchRun(b, func(i int) sim.Policy { return policy.NewFedNova(uint64(i)) },
		func(cfg *sim.Config) { cfg.Data = data.NonIID50 })
}

// BenchmarkFig14PriorWorkStress — E11: FEDL under weak network.
func BenchmarkFig14PriorWorkStress(b *testing.B) {
	benchRun(b, func(i int) sim.Policy { return policy.NewFEDL(uint64(i)) },
		func(cfg *sim.Config) { cfg.Env = sim.EnvWeakNetwork() })
}

// BenchmarkFig15RewardConvergence — E12: shared-table controller.
func BenchmarkFig15RewardConvergence(b *testing.B) {
	benchRun(b, func(i int) sim.Policy {
		opts := core.DefaultOptions(uint64(i))
		opts.SharedTables = true
		return core.New(opts)
	}, nil)
}

// BenchmarkOverheadQTableOps — E13: the §6.4 controller-step costs.
// The paper reports ~10.5us for selection and ~22.1us for the update
// on 200 devices; per-op means here correspond to those steps.
func BenchmarkOverheadQTableOps(b *testing.B) {
	b.Run("select", func(b *testing.B) {
		b.ReportAllocs()
		cfg := benchConfig(5)
		cfg.Fleet = device.DefaultFleet() // paper-scale 200 devices
		cfg.Params.K = 20
		eng := sim.New(cfg)
		ctrl := core.New(core.DefaultOptions(6))
		ctx, res := eng.RunRound(ctrl, 0, 0.5)
		ctrl.Feedback(ctx, res)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ctrl.Select(ctx)
		}
	})
	b.Run("update", func(b *testing.B) {
		b.ReportAllocs()
		s := rng.New(7)
		table := qlearn.NewTable(core.Actions(), s)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			table.Update("s|u1|m0|n0|d2", "CPU@2", 1.5, "s|u0|m0|n0|d2", "CPU@2", 0.9, 0.1)
		}
	})
	b.Run("update-dense", func(b *testing.B) {
		b.ReportAllocs()
		s := rng.New(7)
		table := qlearn.NewDense(len(core.Actions()), s)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			table.Update(17, 2, 1.5, 23, 2, 0.9, 0.1)
		}
	})
}

// BenchmarkControllerSelect isolates the AutoFL decision step at paper
// scale (200 devices, K=20): packed state encoding, dense-table
// argmax, ranking. Steady state must report 0 allocs/op (pinned by
// TestControllerSteadyStateAllocFree).
func BenchmarkControllerSelect(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(5)
	cfg.Fleet = device.DefaultFleet()
	cfg.Params.K = 20
	eng := sim.New(cfg)
	ctrl := core.New(core.DefaultOptions(6))
	ctx, res := eng.RunRound(ctrl, 0, 0.5)
	ctrl.Feedback(ctx, res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ctrl.Select(ctx)
	}
}

// BenchmarkControllerFeedback isolates the AutoFL measurement step:
// Eq (5)–(7) reward computation and staging for the next update.
func BenchmarkControllerFeedback(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(5)
	cfg.Fleet = device.DefaultFleet()
	cfg.Params.K = 20
	eng := sim.New(cfg)
	ctrl := core.New(core.DefaultOptions(6))
	ctx, res := eng.RunRound(ctrl, 0, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Feedback(ctx, res)
	}
}

// BenchmarkEnergyModelError — E14: the phase-aware energy estimator.
func BenchmarkEnergyModelError(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(8)
	eng := sim.New(cfg)
	ctx, _ := eng.RunRound(policy.NewRandom(9), 0, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ctx.EstimateEnergy(i%40, device.CPU, -1, 60)
	}
}

// BenchmarkTable4Clusters — E15: one static-cluster round at paper
// scale (200 devices).
func BenchmarkTable4Clusters(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(10)
	cfg.Fleet = device.DefaultFleet()
	cfg.Params.K = 20
	eng := sim.New(cfg)
	c3, _ := policy.ClusterByName("C3")
	p := policy.NewStatic("C3", c3, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = eng.RunRound(p, i, 0.5)
	}
}

// BenchmarkHyperparamSensitivity — E16: a low-learning-rate variant.
func BenchmarkHyperparamSensitivity(b *testing.B) {
	benchRun(b, func(i int) sim.Policy {
		opts := core.DefaultOptions(uint64(i))
		opts.LearningRate = 0.1
		return core.New(opts)
	}, nil)
}

// BenchmarkRealFedAvg — E17: one genuine federated round (pure-Go SGD
// across 8 clients).
func BenchmarkRealFedAvg(b *testing.B) {
	b.ReportAllocs()
	cfg := fedavg.DefaultConfig()
	cfg.Devices = 16
	cfg.K = 8
	tr, err := fedavg.NewTrainer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sel := fedavg.RandomSelector(cfg.K, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Round(i, sel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRound is the core round-engine step at paper scale —
// the unit every figure above composes.
func BenchmarkEngineRound(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(13)
	cfg.Fleet = device.DefaultFleet()
	cfg.Params.K = 20
	eng := sim.New(cfg)
	p := policy.NewRandom(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = eng.RunRound(p, i, 0.5)
	}
}

// benchSweepGrid is a policy×environment grid at bench scale: 8 cells
// of 60-round, 40-device runs.
func benchSweepGrid(seed uint64) sweep.Grid {
	return sweep.Grid{
		Envs:     []string{"ideal", "field"},
		Policies: []string{"FedAvg-Random", "Performance", "Power", "AutoFL"},
		Seed:     seed,
	}
}

// benchSweepRunner executes sweep cells at the reduced bench scale
// (the full-scale runner lives in the root package's SweepRunner).
func benchSweepRunner() sweep.Runner {
	return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		cfg := benchConfig(seed)
		switch c.Env {
		case "ideal":
			cfg.Env = sim.EnvIdeal()
		case "field":
			cfg.Env = sim.EnvField()
		default:
			return sweep.Outcome{}, fmt.Errorf("unknown env %q", c.Env)
		}
		var p sim.Policy
		switch c.Policy {
		case "FedAvg-Random":
			p = policy.NewRandom(seed)
		case "Performance":
			p = policy.NewPerformance(seed)
		case "Power":
			p = policy.NewPower(seed)
		case "AutoFL":
			p = core.New(core.DefaultOptions(seed))
		default:
			return sweep.Outcome{}, fmt.Errorf("unknown policy %q", c.Policy)
		}
		res := sim.New(cfg).Run(p)
		return sweep.Outcome{
			Converged:       res.Converged,
			Rounds:          res.Rounds,
			TimeToTargetSec: res.TimeToTargetSec,
			EnergyToTargetJ: res.EnergyToTargetJ,
			GlobalPPW:       res.GlobalPPW(),
			LocalPPW:        res.LocalPPW(),
			FinalAccuracy:   res.FinalAccuracy,
		}, nil
	}
}

func benchSweep(b *testing.B, parallel int) {
	b.Helper()
	b.ReportAllocs()
	run := benchSweepRunner()
	for i := 0; i < b.N; i++ {
		g := benchSweepGrid(uint64(i + 1))
		store, err := sweep.Run(context.Background(), g, run, sweep.Options{Parallel: parallel})
		if err != nil {
			b.Fatal(err)
		}
		if store.Len() != g.Size() {
			b.Fatalf("sweep ran %d of %d cells", store.Len(), g.Size())
		}
	}
	reportCellsPerSec(b, benchSweepGrid(1).Size())
}

// reportCellsPerSec converts elapsed wall-clock into the sweep
// engine's throughput unit, cells completed per second.
func reportCellsPerSec(b *testing.B, cellsPerOp int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(cellsPerOp*b.N)/s, "cells/sec")
	}
}

// BenchmarkSweepSerial — E18: the policy×environment sweep on one
// worker, the -parallel=1 reference the engine must match byte for
// byte.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel — E18: the same sweep on GOMAXPROCS workers;
// the parallel/serial cells-per-second ratio is the engine's speedup
// on this machine.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkSweepWarmCache — E18: the same sweep resumed against a
// fully populated result cache. Each iteration reopens the cache
// (reloading its JSONL store) and runs the grid, executing zero cells;
// the warm/cold cells-per-second ratio is the resume speedup.
func BenchmarkSweepWarmCache(b *testing.B) {
	b.ReportAllocs()
	g := benchSweepGrid(1)
	sig := cache.Signature{GridSeed: g.Seed, Rounds: 60}
	dir := b.TempDir()
	run := benchSweepRunner()

	warm, err := cache.Open(dir, sig)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sweep.Run(context.Background(), g, warm.Runner(run), sweep.Options{}); err != nil {
		b.Fatal(err)
	}
	if err := warm.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := cache.Open(dir, sig)
		if err != nil {
			b.Fatal(err)
		}
		store, err := sweep.Run(context.Background(), g, c.Runner(run), sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if store.Len() != g.Size() {
			b.Fatalf("sweep ran %d of %d cells", store.Len(), g.Size())
		}
		if s := c.Stats(); s.Misses != 0 {
			b.Fatalf("warm cache missed %d cells", s.Misses)
		}
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
	}
	reportCellsPerSec(b, g.Size())
}

// BenchmarkOracleSelect isolates the OFL oracle's per-round search.
func BenchmarkOracleSelect(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(15)
	cfg.Fleet = device.DefaultFleet()
	cfg.Params.K = 20
	eng := sim.New(cfg)
	ctx, _ := eng.RunRound(policy.NewRandom(16), 0, 0.5)
	oracle := policy.NewOFL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = oracle.Select(ctx)
	}
}
