// Command autofl-bench regenerates the paper's evaluation: every
// figure and table of the AutoFL paper (MICRO 2021), printed as text
// tables next to the paper's reported claims. The per-experiment index
// in DESIGN.md maps each identifier to its paper reference.
//
// Examples:
//
//	autofl-bench                 # run everything at full horizons
//	autofl-bench -quick          # 5x shorter horizons (smoke test)
//	autofl-bench -run fig08      # a single experiment
//	autofl-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"autofl/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment id to run, or 'all'")
		quick = flag.Bool("quick", false, "shorter horizons (noisier figures, much faster)")
		seed  = flag.Uint64("seed", 42, "random seed")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick}

	if *run == "all" {
		start := time.Now()
		for _, id := range experiments.IDs() {
			runOne(id, opts)
		}
		fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	runOne(*run, opts)
}

func runOne(id string, opts experiments.Options) {
	runner, ok := experiments.ByID(id)
	if !ok {
		fmt.Fprintf(os.Stderr, "autofl-bench: unknown experiment %q (see -list)\n", id)
		os.Exit(1)
	}
	start := time.Now()
	fig := runner(opts)
	fmt.Print(fig.Render())
	fmt.Printf("(%s)\n\n", time.Since(start).Round(time.Millisecond))
}
