// Command autofl-sweep runs declarative grids of AutoFL scenarios —
// workloads × settings × data scenarios × environments × policies ×
// seed replicates — on a worker pool, and exports per-cell results
// plus mean/stddev replicate summaries as JSON or CSV.
//
// Cell seeds derive deterministically from the grid seed and the cell
// key, so output is byte-identical for any -parallel value; replicate
// the paper's evaluation once, in parallel, instead of figure by
// figure.
//
// Examples:
//
//	autofl-sweep -list                      # show the axis values
//	autofl-sweep                            # full grid, GOMAXPROCS workers
//	autofl-sweep -parallel 1                # serial reference run
//	autofl-sweep -workloads CNN-MNIST -envs field \
//	    -policies FedAvg-Random,AutoFL -replicates 3 \
//	    -rounds 200 -format csv -out sweep.csv
//
// Aggregation regimes and population scale are grid axes too:
// -async-modes crosses synchronous against asynchronous and
// semi-asynchronous aggregation, -alphas spans staleness-weighting
// exponents for the async regimes, and -devices/-samples sweep
// synthetic population sizes with sampled per-round cohorts:
//
//	autofl-sweep -workloads CNN-MNIST -async-modes sync,async -rounds 200
//	autofl-sweep -async-modes async,semi-async -alphas 0.3,0.5,1 \
//	    -devices 100000 -samples 512 -rounds 100
//
// The battery subsystem adds two more axes: -battery-profiles attaches
// the per-device battery model under the named harvesting presets, and
// -selection sweeps battery-aware selection baselines in place of the
// policy axis (the two flags are mutually exclusive with -policies):
//
//	autofl-sweep -workloads CNN-MNIST -battery-profiles none,charger \
//	    -selection random,battery_weighted -rounds 100 -format csv
//
// With -cache-dir, every completed cell is persisted with its
// per-round trace, so an interrupted run resumes where it stopped, an
// extended grid executes only its new cells, and a request at a
// shorter horizon is served by truncating longer cached runs — a grid
// swept at -rounds 1000 answers a later -rounds 200 query without
// executing a single cell, byte-identical to a cold 200-round sweep.
// (A longer horizon than any cached run re-executes only the
// uncached/unserviceable cells.) -resume=false re-runs everything
// while refreshing the cache. -schedule cost claims the costliest
// pending cells first (output is byte-identical either way), and
// -cache-gc compacts the store and exits:
//
//	autofl-sweep -cache-dir sweep.cache -rounds 1000 -out grid.json
//	autofl-sweep -cache-dir sweep.cache -rounds 200 \
//	    -out grid200.json               # served entirely from the cache
//	autofl-sweep -cache-dir sweep.cache -cache-gc
//
// One grid can span machines: -worker turns the process into a cell
// server, and -workers makes it a coordinator farming cells to those
// servers instead of executing in-process. Per-cell seeds derive from
// the grid seed and cell identity — never from placement — so a
// distributed run's JSON/CSV is byte-identical to a local (or serial)
// run of the same grid and seed. Cache, cost scheduling, and
// cross-horizon serving compose unchanged: the coordinator serves
// cached cells locally and commits remote results into -cache-dir by
// digest, and a worker lost mid-grid has its claimed cells re-queued
// to the survivors:
//
//	autofl-sweep -worker :7070                      # on each machine
//	autofl-sweep -workers host-a:7070,host-b:7070 \
//	    -cache-dir sweep.cache -rounds 1000 -out grid.json
//
// -workers also accepts @file — one address per line, '#' comments —
// shared with autofl-sweepd's static-fleet flag.
//
// Grids can also be served by a long-running control plane instead of
// a one-shot coordinator: autofl-sweepd accepts submissions over
// HTTP, executes them on registered workers, and shares one result
// cache across clients, so overlapping grids from different clients
// execute each cell once. -register turns this process into such a
// daemon's worker (re-dialing with backoff when the connection
// drops), and -server submits the grid to a daemon, polls it, and
// fetches the result — byte-identical to a local run:
//
//	autofl-sweepd -listen :7170 -registry :7171 -cache-dir svc.cache
//	autofl-sweep -register host:7171 -name rack1    # on each machine
//	autofl-sweep -server http://host:7170 -rounds 1000 -out grid.json
//
// Every run ends with a stats line on stderr — cells, wall-clock,
// cache hits (incl. prefix replays)/misses, and per-worker cell
// counts — so warm and distributed runs are auditable at a glance.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"autofl"
	"autofl/internal/sweep"
	"autofl/internal/sweep/cache"
	"autofl/internal/sweep/dist"
	"autofl/internal/sweep/svc"
)

func main() {
	var (
		workloads  = flag.String("workloads", "all", "comma-separated workloads, or 'all'")
		settings   = flag.String("settings", "all", "comma-separated (B,E,K) settings, or 'all'")
		dataAxis   = flag.String("data", "all", "comma-separated data scenarios, or 'all'")
		envs       = flag.String("envs", "all", "comma-separated environments, or 'all'")
		policies   = flag.String("policies", "all", "comma-separated policies, or 'all'")
		asyncModes = flag.String("async-modes", "", "comma-separated aggregation regimes (sync, async, semi-async) as a grid axis (empty = sync only)")
		alphas     = flag.String("alphas", "", "comma-separated staleness exponents as a grid axis (requires -async-modes; crossing with 'sync' yields loud per-cell errors — sweep sync separately)")
		devicesAx  = flag.String("devices", "", "comma-separated population sizes as a grid axis (empty = explicit testbed fleet)")
		samplesAx  = flag.String("samples", "", "comma-separated per-round cohort sizes as a grid axis (requires -devices)")
		batteries  = flag.String("battery-profiles", "", "comma-separated battery harvesting presets (none, charger, solar-diurnal) as a grid axis (empty = no battery model)")
		selection  = flag.String("selection", "", "comma-separated battery-aware selection baselines (random, battery_weighted, all_available) as a grid axis replacing -policies (the two are mutually exclusive)")
		replicates = flag.Int("replicates", 1, "seed replicates per cell")
		seed       = flag.Uint64("seed", 42, "grid master seed")
		parallel   = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
		rounds     = flag.Int("rounds", 0, "max rounds per run (0 = the paper's 1000)")
		out        = flag.String("out", "-", "output path ('-' = stdout)")
		format     = flag.String("format", "json", "output format: json or csv")
		progress   = flag.Bool("progress", false, "print per-cell progress to stderr")
		list       = flag.Bool("list", false, "list axis values and exit")
		cacheDir   = flag.String("cache-dir", "", "persistent result cache directory (empty = no cache)")
		resume     = flag.Bool("resume", true, "serve cells already in -cache-dir instead of re-running them")
		cacheGC    = flag.Bool("cache-gc", false, "compact -cache-dir (drop superseded duplicates and mismatched entries) and exit")
		sched      = flag.String("schedule", "cost", "cell claim order: cost (longest predicted first) or fifo")
		worker     = flag.String("worker", "", "serve sweep cells to coordinators on this address (e.g. :7070); grid and output flags are ignored")
		workers    = flag.String("workers", "", "worker addresses to farm cells to instead of executing in-process: a comma-separated list, or @file with one address per line ('#' comments)")
		register   = flag.String("register", "", "register with a sweep daemon's worker registry at this address (see autofl-sweepd -registry) and serve its cells; re-dials with backoff on disconnect")
		name       = flag.String("name", "", "worker label advertised to the daemon's registry (with -register; default: the connection's remote address)")
		server     = flag.String("server", "", "submit the grid to a sweep daemon at this base URL (e.g. http://host:7170) instead of executing locally")
		cellTO     = flag.Duration("cell-timeout", 0, "with -workers: bound one cell's remote execution; a worker holding a cell past it is evicted and the cell re-queued (0 = no bound)")
		budget     = flag.Int("retry-budget", 0, "with -workers: re-queues a faulted cell may consume before being quarantined with a per-cell error (0 = default 3, negative = none)")
	)
	flag.Parse()

	if *list {
		listAxes()
		return
	}
	modes := 0
	for _, m := range []string{*worker, *register, *server} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 || (modes == 1 && *server == "" && *workers != "") {
		fatalf("-worker, -register, and -server are mutually exclusive (and none mixes with -workers)")
	}
	if *worker != "" {
		runWorker(*worker, *parallel)
		return
	}
	if *register != "" {
		runRegisterWorker(*register, *name, *parallel)
		return
	}
	if *cacheGC {
		if *cacheDir == "" {
			fatalf("-cache-gc requires -cache-dir")
		}
		kept, dropped, err := cache.GCDir(*cacheDir)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "autofl-sweep: cache gc: kept %d entries, dropped %d lines\n", kept, dropped)
		return
	}
	if *format != "json" && *format != "csv" {
		fatalf("unknown -format %q (want json or csv)", *format)
	}
	if *sched != "cost" && *sched != "fifo" {
		fatalf("unknown -schedule %q (want cost or fifo)", *sched)
	}

	full := autofl.SweepGrid(*seed, *replicates)
	grid := sweep.Grid{Seed: *seed, Replicates: *replicates}
	grid.Workloads = pickAxis("workloads", *workloads, full.Workloads)
	grid.Settings = pickAxis("settings", *settings, full.Settings)
	grid.Data = pickAxis("data", *dataAxis, full.Data)
	grid.Envs = pickAxis("envs", *envs, full.Envs)
	grid.Policies = pickAxis("policies", *policies, full.Policies)
	if *asyncModes != "" {
		var known []string
		for _, m := range autofl.AggregationModes() {
			known = append(known, string(m))
		}
		grid.Modes = pickAxis("async-modes", *asyncModes, known)
	}
	if *alphas != "" {
		if *asyncModes == "" {
			fatalf("-alphas requires -async-modes (staleness weighting needs an asynchronous regime)")
		}
		grid.Alphas = pickFloatAxis("alphas", *alphas)
	}
	if *devicesAx != "" {
		grid.Devices = pickIntAxis("devices", *devicesAx)
	}
	if *samplesAx != "" {
		if *devicesAx == "" {
			fatalf("-samples requires -devices (a cohort needs a population to sample from)")
		}
		grid.Samples = pickIntAxis("samples", *samplesAx)
	}
	if *batteries != "" {
		var known []string
		for _, p := range autofl.BatteryProfiles() {
			known = append(known, string(p))
		}
		grid.Batteries = pickAxis("battery-profiles", *batteries, known)
	}
	if *selection != "" {
		policiesSet := false
		flag.Visit(func(f *flag.Flag) { policiesSet = policiesSet || f.Name == "policies" })
		if policiesSet {
			fatalf("-selection and -policies are mutually exclusive (the selection axis replaces the policy axis)")
		}
		grid.Selections = pickAxis("selection", *selection, autofl.Selections())
		// Selection cells carry an empty policy axis; the runner maps
		// each selection name to its baseline policy.
		grid.Policies = nil
	}

	// Open the output before running so a bad path fails fast, not
	// after a long sweep.
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The first signal cancels ctx; in-flight cells still run to
	// completion. Restoring the default handler then lets a second
	// Ctrl-C force-quit instead of being swallowed.
	go func() {
		<-ctx.Done()
		stop()
	}()

	if *server != "" {
		if *cacheDir != "" {
			fatalf("-cache-dir is the daemon's concern in -server mode (see autofl-sweepd -cache-dir)")
		}
		runClient(ctx, *server, grid, *rounds, *format, w, *progress)
		return
	}

	runOpts := autofl.SweepOptions{
		MaxRounds:    *rounds,
		CostSchedule: *sched == "cost",
	}
	runOpts.Parallel = *parallel
	if *workers != "" {
		addrs, err := dist.ParseWorkerList(*workers)
		if err != nil {
			fatalf("%v", err)
		}
		if len(addrs) == 0 {
			fatalf("-workers selected no addresses")
		}
		runOpts.Workers = addrs
		runOpts.WorkerCells = make(map[string]int)
		runOpts.CellTimeout = *cellTO
		runOpts.RetryBudget = *budget
		runOpts.Faults = &autofl.SweepFaults{}
	}
	if *progress {
		runOpts.OnProgress = func(p sweep.Progress) {
			status := "ok"
			if p.Result.Err != "" {
				status = "ERR " + p.Result.Err
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%s)\n",
				p.Done, p.Total, p.Result.Cell.Key(), status)
		}
	}
	if *cacheDir != "" {
		c, cerr := cache.Open(*cacheDir, autofl.SweepSignature(grid, *rounds))
		if cerr != nil {
			fatalf("%v", cerr)
		}
		if !*resume {
			if cerr := c.Invalidate(); cerr != nil {
				fatalf("%v", cerr)
			}
		}
		runOpts.Cache = c
	}
	// Closed explicitly, not deferred: the error paths below exit via
	// os.Exit, and a swallowed append error (e.g. disk full) must still
	// reach the user — it means resume will re-execute those cells.
	closeCache := func() {
		if runOpts.Cache == nil {
			return
		}
		if cerr := runOpts.Cache.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "autofl-sweep: cache: %v\n", cerr)
		}
		runOpts.Cache = nil
	}

	start := time.Now()
	store, err := autofl.RunSweepWith(ctx, grid, runOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "autofl-sweep: interrupted after %d of %d cells: %v\n",
			store.Len(), grid.Size(), err)
	}
	// The final stats line is unconditional: warm runs (how much the
	// cache saved) and distributed runs (who executed what) are
	// auditable at a glance without re-running under -progress.
	fmt.Fprintf(os.Stderr, "autofl-sweep: %d cells in %s", store.Len(), time.Since(start).Round(time.Millisecond))
	if runOpts.Cache != nil {
		s := runOpts.Cache.Stats()
		fmt.Fprintf(os.Stderr, " | cache: %d hits (%d prefix), %d misses", s.Hits, s.PrefixHits, s.Misses)
	}
	if runOpts.WorkerCells != nil {
		addrs := make([]string, 0, len(runOpts.WorkerCells))
		for a := range runOpts.WorkerCells {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		fmt.Fprintf(os.Stderr, " | workers:")
		if len(addrs) == 0 {
			fmt.Fprintf(os.Stderr, " none")
		}
		for _, a := range addrs {
			fmt.Fprintf(os.Stderr, " %s=%d", a, runOpts.WorkerCells[a])
		}
	}
	if f := runOpts.Faults; f != nil && (f.Requeues > 0 || f.Quarantined > 0) {
		fmt.Fprintf(os.Stderr, " | faults: %d requeues, %d quarantined", f.Requeues, f.Quarantined)
	}
	fmt.Fprintln(os.Stderr)

	var werr error
	if *format == "csv" {
		werr = store.WriteCSV(w)
	} else {
		werr = store.WriteJSON(w)
	}
	closeCache()
	if werr != nil {
		fatalf("writing %s: %v", *format, werr)
	}
	if err != nil {
		os.Exit(1)
	}
}

// runWorker turns the process into a cell server: it executes jobs
// from coordinating autofl-sweep processes until interrupted, then
// shuts down gracefully (in-flight coordinators see a closed
// connection and re-queue). Traced jobs — sent by cache-backed
// coordinators — run through the traced runner so remote results can
// serve shorter horizons later.
func runWorker(addr string, parallel int) {
	w, err := dist.NewWorker(addr, parallel, autofl.SweepRunners)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "autofl-sweep: worker listening on %s\n", w.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // a second signal force-quits instead of being swallowed
		w.Close()
	}()
	if err := w.Serve(); err != nil && !errors.Is(err, dist.ErrWorkerClosed) {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "autofl-sweep: worker served %d cells\n", w.Served())
}

// runRegisterWorker turns the process into a register-mode cell
// server: it dials the daemon's worker registry and serves its cells,
// re-dialing with backoff whenever the connection drops — joining a
// running sweep picks up its queued cells — until interrupted.
func runRegisterWorker(addr, name string, parallel int) {
	w, err := dist.NewDialWorker(name, parallel, autofl.SweepRunners)
	if err != nil {
		fatalf("%v", err)
	}
	label := name
	if label == "" {
		label = "worker"
	}
	fmt.Fprintf(os.Stderr, "autofl-sweep: %s registering with %s\n", label, addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // a second signal force-quits instead of being swallowed
		w.Close()
	}()
	err = w.Register(ctx, addr, dist.RegisterOptions{
		OnState: func(state string, serr error) {
			if state == "backoff" {
				fmt.Fprintf(os.Stderr, "autofl-sweep: %s: %v (re-dialing)\n", label, serr)
			}
		},
	})
	if err != nil && !errors.Is(err, dist.ErrWorkerClosed) && !errors.Is(err, context.Canceled) {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "autofl-sweep: worker served %d cells\n", w.Served())
}

// runClient submits the grid to a sweep daemon, polls its progress,
// and writes the fetched result — byte-identical to a local run of the
// same grid, whoever executed the cells. Interrupting the wait cancels
// the job server-side before exiting.
func runClient(ctx context.Context, baseURL string, grid sweep.Grid, rounds int, format string, w io.Writer, progress bool) {
	client := &svc.Client{BaseURL: baseURL}
	start := time.Now()
	st, err := client.Submit(ctx, svc.JobSpec{Grid: grid, Rounds: rounds})
	if err != nil {
		fatalf("submit: %v", err)
	}
	fmt.Fprintf(os.Stderr, "autofl-sweep: submitted %s (%d cells) to %s\n", st.ID, st.Total, baseURL)

	var onUpdate func(svc.JobStatus)
	if progress {
		onUpdate = func(s svc.JobStatus) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s\n", s.Done, s.Total, s.ID, s.State)
		}
	}
	final, err := client.Wait(ctx, st.ID, 500*time.Millisecond, onUpdate)
	if err != nil {
		if ctx.Err() != nil {
			// The user interrupted the wait; stop the job rather than
			// leaving it running unattended.
			cancelCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, cerr := client.Cancel(cancelCtx, st.ID); cerr != nil {
				fatalf("interrupted; cancel failed: %v", cerr)
			}
			fatalf("interrupted; canceled %s", st.ID)
		}
		fatalf("waiting for %s: %v", st.ID, err)
	}
	// The client-side stats line mirrors the local coordinator's, fed
	// from the daemon's status instead of local handles.
	fmt.Fprintf(os.Stderr, "autofl-sweep: %d cells in %s | cache: %d hits (%d prefix), %d misses",
		final.Done, time.Since(start).Round(time.Millisecond),
		final.CacheHits, final.CachePrefixHits, final.CacheMisses)
	if len(final.Workers) > 0 {
		labels := make([]string, 0, len(final.Workers))
		for l := range final.Workers {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		fmt.Fprintf(os.Stderr, " | workers:")
		for _, l := range labels {
			fmt.Fprintf(os.Stderr, " %s=%d", l, final.Workers[l])
		}
	}
	if final.Requeues > 0 || final.Quarantined > 0 || final.FailedCells > 0 {
		fmt.Fprintf(os.Stderr, " | faults: %d requeues, %d quarantined, %d failed cells",
			final.Requeues, final.Quarantined, final.FailedCells)
	}
	fmt.Fprintln(os.Stderr)
	if final.State != svc.StateDone {
		fatalf("job %s %s: %s", final.ID, final.State, final.Error)
	}

	raw, err := client.Result(ctx, st.ID, format)
	if err != nil {
		fatalf("fetching result: %v", err)
	}
	if _, err := w.Write(raw); err != nil {
		fatalf("writing %s: %v", format, err)
	}
}

// pickAxis resolves a comma-separated flag against the axis's known
// values ("all" selects every one).
func pickAxis(name, arg string, known []string) []string {
	if arg == "all" || arg == "" {
		return known
	}
	valid := map[string]bool{}
	for _, v := range known {
		valid[v] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, v := range strings.Split(arg, ",") {
		v = strings.TrimSpace(v)
		if v == "" || seen[v] {
			// Duplicate values would repeat cell keys (and so seeds),
			// silently inflating replicate counts.
			continue
		}
		if !valid[v] {
			fatalf("unknown %s value %q (see -list)", name, v)
		}
		seen[v] = true
		out = append(out, v)
	}
	if len(out) == 0 {
		fatalf("-%s selected no values", name)
	}
	return out
}

// pickFloatAxis parses a comma-separated flag of float values, keeping
// the original spellings as axis values (the cell identity is the
// string, so "0.5" and ".5" are distinct cells; pick one spelling).
func pickFloatAxis(name, arg string) []string {
	var out []string
	seen := map[string]bool{}
	for _, v := range strings.Split(arg, ",") {
		v = strings.TrimSpace(v)
		if v == "" || seen[v] {
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			fatalf("bad %s value %q (want a non-negative number)", name, v)
		}
		seen[v] = true
		out = append(out, v)
	}
	if len(out) == 0 {
		fatalf("-%s selected no values", name)
	}
	return out
}

// pickIntAxis parses a comma-separated flag of positive integers,
// keeping the original spellings as axis values.
func pickIntAxis(name, arg string) []string {
	var out []string
	seen := map[string]bool{}
	for _, v := range strings.Split(arg, ",") {
		v = strings.TrimSpace(v)
		if v == "" || seen[v] {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			fatalf("bad %s value %q (want a positive integer)", name, v)
		}
		seen[v] = true
		out = append(out, v)
	}
	if len(out) == 0 {
		fatalf("-%s selected no values", name)
	}
	return out
}

func listAxes() {
	g := autofl.SweepGrid(0, 1)
	var modes []string
	for _, m := range autofl.AggregationModes() {
		modes = append(modes, string(m))
	}
	var profiles []string
	for _, p := range autofl.BatteryProfiles() {
		profiles = append(profiles, string(p))
	}
	axes := []struct {
		name string
		vals []string
	}{
		{"workloads", g.Workloads},
		{"settings", g.Settings},
		{"data", g.Data},
		{"envs", g.Envs},
		{"policies", g.Policies},
		{"async-modes", modes},
		{"battery-profiles", profiles},
		{"selection", autofl.Selections()},
	}
	for _, a := range axes {
		fmt.Printf("%s: %s\n", a.name, strings.Join(a.vals, ", "))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "autofl-sweep: "+format+"\n", args...)
	os.Exit(1)
}
