// Command autofl-sweepd is the sweep control plane: a long-running
// daemon that accepts experiment grids over an HTTP+JSON API, executes
// them on a registry of workers (or an in-process pool with -local),
// and shares one persistent result cache across every client — so
// overlapping grids from concurrent submissions execute each cell
// exactly once, and shorter-horizon requests are served from longer
// cached runs.
//
// Workers join the registry two ways. Register-mode workers dial in
// (autofl-sweep -register <this daemon's -registry address>) and
// re-dial with backoff when the connection drops; a worker that joins
// mid-sweep picks up queued cells, and a worker lost mid-grid has its
// in-flight cells re-queued to the survivors. Listen-mode workers
// (autofl-sweep -worker) are named with -workers — a comma-separated
// list or @file, one address per line with '#' comments — and the
// daemon maintains dial-out connections to them with the same backoff.
//
// The v1 API (see internal/sweep/svc for the envelope details):
//
//	POST   /v1/sweeps             submit {"grid": {...}, "rounds": N}
//	GET    /v1/sweeps             list jobs
//	GET    /v1/sweeps/{id}        status + live progress
//	GET    /v1/sweeps/{id}/result results (?format=csv for CSV)
//	DELETE /v1/sweeps/{id}        cancel
//	GET    /v1/workers            registered workers
//	GET    /v1/healthz            liveness (503 while draining)
//	GET    /v1/metrics            plain-text counters
//
// SIGINT/SIGTERM drains gracefully: intake stops with 503, running
// grids get -drain-timeout to finish before being canceled, and
// still-queued job specs are persisted under -cache-dir for the next
// daemon to resume. A second signal force-quits.
//
// Example:
//
//	autofl-sweepd -listen :7170 -registry :7171 -cache-dir svc.cache
//	autofl-sweep -register host:7171 -name rack1     # on each machine
//	autofl-sweep -server http://host:7170 -rounds 1000 -out grid.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autofl"
	"autofl/internal/sweep/dist"
	"autofl/internal/sweep/svc"
)

func main() {
	var (
		listen        = flag.String("listen", ":7170", "HTTP API listen address")
		registry      = flag.String("registry", ":7171", "worker registration listen address (ignored with -local)")
		workers       = flag.String("workers", "", "static listen-mode workers to dial out to: a comma-separated list, or @file with one address per line ('#' comments)")
		cacheDir      = flag.String("cache-dir", "", "shared result cache root (per-seed subdirectories; empty = no cache, no drain persistence)")
		maxConcurrent = flag.Int("max-concurrent", 1, "grids running at once (1 serializes overlapping submissions onto the cache)")
		queueLimit    = flag.Int("queue-limit", 64, "queued (not yet running) job bound; submissions past it get 429")
		local         = flag.Bool("local", false, "execute cells in-process instead of on workers")
		parallel      = flag.Int("parallel", 0, "in-process pool size with -local (0 = GOMAXPROCS)")
		drainTimeout  = flag.Duration("drain-timeout", time.Minute, "how long a drain lets running grids finish before canceling them")
		hbInterval    = flag.Duration("heartbeat-interval", 0, "worker-link heartbeat ping interval (0 = default 5s, negative = disabled)")
		hbTimeout     = flag.Duration("heartbeat-timeout", 0, "total worker silence tolerated before eviction (0 = 4x the interval)")
		cellTimeout   = flag.Duration("cell-timeout", 0, "bound one cell's remote execution; a worker holding a cell past it is evicted and the cell re-queued (0 = no bound)")
		retryBudget   = flag.Int("retry-budget", 0, "re-queues a faulted cell may consume before quarantine (0 = default 3, negative = none)")
	)
	flag.Parse()

	cfg := svc.Config{
		Runners:       autofl.SweepRunners,
		LocalParallel: *parallel,
		CacheDir:      *cacheDir,
		QueueLimit:    *queueLimit,
		MaxConcurrent: *maxConcurrent,
		CellTimeout:   *cellTimeout,
		RetryBudget:   *retryBudget,
	}
	var reg *svc.Registry
	if !*local {
		reg = svc.NewRegistry()
		reg.Links = dist.LinkOptions{HeartbeatInterval: *hbInterval, HeartbeatTimeout: *hbTimeout}
		addr, err := reg.Listen(*registry)
		if err != nil {
			fatalf("registry: %v", err)
		}
		defer reg.Close()
		fmt.Fprintf(os.Stderr, "autofl-sweepd: worker registry on %s\n", addr)
		if *workers != "" {
			addrs, err := dist.ParseWorkerList(*workers)
			if err != nil {
				fatalf("%v", err)
			}
			for _, a := range addrs {
				reg.Maintain(a)
			}
			fmt.Fprintf(os.Stderr, "autofl-sweepd: maintaining %d static workers\n", len(addrs))
		}
		cfg.Registry = reg
	} else if *workers != "" {
		fatalf("-workers and -local are mutually exclusive")
	}

	service, err := svc.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if n := len(service.Jobs()); n > 0 {
		fmt.Fprintf(os.Stderr, "autofl-sweepd: resumed %d persisted jobs\n", n)
	}
	if n := service.ResumedJobs(); n > 0 {
		fmt.Fprintf(os.Stderr, "autofl-sweepd: journal: recovered %d jobs interrupted by the previous daemon\n", n)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("%v", err)
	}
	srv := &http.Server{Handler: service.Handler()}
	fmt.Fprintf(os.Stderr, "autofl-sweepd: serving v1 API on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatalf("%v", err)
	case <-ctx.Done():
	}
	stop() // a second signal force-quits instead of being swallowed
	fmt.Fprintf(os.Stderr, "autofl-sweepd: draining (running grids get %s)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// The API stays up through the drain so clients can poll their
	// running jobs to completion; submissions are refused with 503.
	if err := service.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "autofl-sweepd: drain: %v\n", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "autofl-sweepd: http shutdown: %v\n", err)
	}
	if reg != nil {
		reg.Close()
	}
	fmt.Fprintln(os.Stderr, "autofl-sweepd: stopped")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "autofl-sweepd: "+format+"\n", args...)
	os.Exit(1)
}
