// Command autoflsim runs one federated-learning scenario under a
// chosen selection policy (or all of them) and prints the measured
// energy efficiency, convergence time, and accuracy.
//
// With -progress the run streams live per-round output to stderr
// through the Session observer API while it executes.
//
// Examples:
//
//	autoflsim -policy AutoFL -workload CNN-MNIST -setting S3 -env field
//	autoflsim -policy AutoFL -progress -rounds 300
//	autoflsim -compare -data noniid75
//	autoflsim -policy FedAvg-Random -devices 1000000 -sample 4096 -rounds 50
//	autoflsim -policy AutoFL -async-mode async -alpha 0.5 -rounds 200
//	autoflsim -async-mode semi-async -agg-k 20 -agg-deadline 30
//	autoflsim -policy Battery-Weighted -battery-profile charger -rounds 200
package main

import (
	"flag"
	"fmt"
	"os"

	"autofl"
	"autofl/internal/metrics"
)

func main() {
	var (
		workloadName = flag.String("workload", string(autofl.CNNMNIST), "workload: CNN-MNIST | LSTM-Shakespeare | MobileNet-ImageNet")
		setting      = flag.String("setting", "S3", "global parameters: S1 | S2 | S3 | S4 (Table 5)")
		dataScenario = flag.String("data", "iid", "data heterogeneity: iid | noniid50 | noniid75 | noniid100")
		env          = flag.String("env", "field", "runtime variance: ideal | interference | weak-network | field")
		policyName   = flag.String("policy", string(autofl.PolicyAutoFL), "selection policy (see -list)")
		seed         = flag.Uint64("seed", 1, "random seed (runs are reproducible per seed)")
		rounds       = flag.Int("rounds", 0, "max aggregation rounds (0 = paper default 1000)")
		compare      = flag.Bool("compare", false, "run every policy and normalize to FedAvg-Random")
		progress     = flag.Bool("progress", false, "stream live per-round progress to stderr")
		every        = flag.Int("progress-every", 25, "with -progress, print every Nth round")
		list         = flag.Bool("list", false, "list available policies and exit")
		devices      = flag.Int("devices", 0, "population size in the paper's tier mix (0 = the 200-device testbed)")
		sample       = flag.Int("sample", 0, "per-round candidate pool for large populations (0 = exhaustive)")
		shards       = flag.Int("shards", 0, "engine parallelism for large populations (0 = automatic)")
		asyncMode    = flag.String("async-mode", "", "aggregation regime: sync | async | semi-async (empty = sync)")
		alpha        = flag.Float64("alpha", 0, "staleness-weighting exponent for async modes (0 = default 0.5)")
		aggK         = flag.Int("agg-k", 0, "semi-async quorum: aggregate at this many arrivals (0 = half the cohort)")
		aggDeadline  = flag.Float64("agg-deadline", 0, "semi-async aggregation deadline in seconds (0 = derived from in-flight completion times)")
		battProfile  = flag.String("battery-profile", "", "attach the battery model with this harvesting profile: none | charger | solar-diurnal (empty = no battery)")
		battCapacity = flag.Float64("battery-capacity", 0, "battery capacity in joules (0 = preset 2000 J; requires -battery-profile)")
		battThresh   = flag.Float64("battery-threshold", 0, "participation threshold in joules — devices below it sit rounds out (0 = 15% of capacity)")
	)
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, p := range autofl.Policies() {
			fmt.Println(p)
		}
		// The battery-aware baselines are runnable but outside the
		// paper's evaluation matrix.
		fmt.Printf("%s (battery baseline)\n", autofl.PolicyBatteryWeighted)
		fmt.Printf("%s (battery baseline)\n", autofl.PolicyAllAvailable)
		return
	}

	scenario := autofl.Scenario{
		Workload:  autofl.Workload(*workloadName),
		Setting:   autofl.Setting(*setting),
		Data:      autofl.DataScenario(*dataScenario),
		Env:       autofl.Environment(*env),
		Seed:      *seed,
		MaxRounds: *rounds,
	}
	if *devices > 0 {
		fleet := autofl.ScaledFleet(*devices, *sample)
		fleet.Shards = *shards
		scenario.Fleet = fleet
	}
	if *asyncMode != "" || *alpha != 0 || *aggK != 0 || *aggDeadline != 0 {
		scenario.Aggregation = &autofl.AggregationSpec{
			Mode:           autofl.AggregationMode(*asyncMode),
			StalenessAlpha: *alpha,
			AggregateK:     *aggK,
			DeadlineSec:    *aggDeadline,
		}
	}
	if *battProfile == "" && (*battCapacity != 0 || *battThresh != 0) {
		fatal(fmt.Errorf("-battery-capacity/-battery-threshold require -battery-profile (use 'none' for a pure battery)"))
	}
	if *battProfile != "" {
		// Degenerate combinations (negative capacity, threshold above
		// capacity, …) surface as typed *sim.ConfigError from Open.
		scenario.Battery = &autofl.BatterySpec{
			Profile:    autofl.BatteryProfile(*battProfile),
			CapacityJ:  *battCapacity,
			ThresholdJ: *battThresh,
		}
	}

	if *compare {
		if err := runComparison(scenario); err != nil {
			fatal(err)
		}
		return
	}

	// Single-policy runs go through the streaming Session API so
	// -progress can observe every round as it completes.
	sess, err := autofl.Open(scenario, autofl.Policy(*policyName))
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	if *progress {
		n := *every
		if n < 1 {
			n = 1
		}
		async := scenario.Aggregation != nil
		battery := scenario.Battery != nil
		sess.Observe(func(ev autofl.RoundEvent) {
			if ev.Round%n != 0 && !ev.Converged {
				return
			}
			fmt.Fprintf(os.Stderr,
				"round %4d: acc=%.3f round=%.0fs energy=%.0fJ kept=%d/%d dropped=%d",
				ev.Round, ev.Accuracy, ev.RoundSec, ev.EnergyJ,
				ev.Kept, ev.Participants, ev.Dropped)
			if async {
				fmt.Fprintf(os.Stderr, " stale=%.2f pending=%d", ev.MeanStaleness, ev.Pending)
			}
			if battery {
				fmt.Fprintf(os.Stderr, " avail=%d depleted=%d charge=%.2f jain=%.3f",
					ev.BatteryAvailable, ev.BatteryDepleted, ev.BatteryMeanCharge, ev.ParticipationJain)
			}
			fmt.Fprintln(os.Stderr)
			if ev.Converged {
				fmt.Fprintf(os.Stderr, "converged at round %d\n", ev.Round)
			}
		})
	}
	rep := sess.Run()
	printReport(rep)
	// Population runs keep packed per-device accumulators, so the fleet
	// energy distribution streams out in one O(1)-memory pass even at a
	// million devices.
	if v, ok := sess.FleetEnergyPercentiles(0.5, 0.95, 0.99); ok {
		fmt.Printf("fleet energy p50/p95/p99: %.3g / %.3g / %.3g J/device\n", v[0], v[1], v[2])
	}
	if scenario.Aggregation != nil {
		fmt.Printf("mean staleness:    %.3f\n", rep.MeanStaleness)
	}
}

func runComparison(s autofl.Scenario) error {
	reports, err := s.RunAll()
	if err != nil {
		return err
	}
	cmp, err := autofl.Compare(autofl.PolicyRandom, reports)
	if err != nil {
		return err
	}
	header := []string{"policy", "global-ppw", "local-ppw", "conv-time", "accuracy", "converged"}
	var rows [][]string
	for _, r := range cmp.Rows {
		conv := "no"
		if r.Converged {
			conv = "yes"
		}
		rows = append(rows, []string{
			string(r.Policy),
			metrics.FormatX(r.GlobalPPWx),
			metrics.FormatX(r.LocalPPWx),
			metrics.FormatX(r.ConvTimex),
			fmt.Sprintf("%.3f", r.FinalAccuracy),
			conv,
		})
	}
	fmt.Printf("scenario: workload=%s setting=%s data=%s env=%s seed=%d\n",
		s.Workload, s.Setting, s.Data, s.Env, s.Seed)
	fmt.Print(metrics.Table(header, rows))
	return nil
}

func printReport(r *autofl.Report) {
	fmt.Printf("policy:            %s\n", r.Policy)
	if r.Converged {
		fmt.Printf("converged:         yes, round %s\n",
			metrics.FormatRound(true, r.ConvergedRound, r.Rounds))
	} else {
		fmt.Printf("converged:         never (%d rounds)\n", r.Rounds)
	}
	fmt.Printf("final accuracy:    %.3f\n", r.FinalAccuracy)
	fmt.Printf("time to target:    %.0f s\n", r.TimeToTargetSec)
	fmt.Printf("fleet energy:      %.0f J\n", r.EnergyToTargetJ)
	fmt.Printf("global PPW:        %.3g progress/J\n", r.GlobalPPW)
	fmt.Printf("local PPW:         %.3g progress/J\n", r.LocalPPW)
	if b := r.Battery; b != nil {
		fmt.Printf("participation jain: %.3f\n", b.ParticipationJain)
		fmt.Printf("mean charge:       %.2f (available %d, depleted %d)\n",
			b.MeanCharge, b.Available, b.Depleted)
	}
}

// usage prints the flags in topic groups so the population, aggregation,
// and battery knobs — which compose — read as one section instead of an
// alphabetical jumble.
func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintf(w, "Usage: autoflsim [flags]\n\nRuns one federated-learning scenario and prints measured efficiency.\n")
	groups := []struct {
		title string
		names []string
	}{
		{"Scenario", []string{"workload", "setting", "data", "env", "policy", "seed", "rounds"}},
		{"Population & fleet", []string{"devices", "sample", "shards"}},
		{"Aggregation regime", []string{"async-mode", "alpha", "agg-k", "agg-deadline"}},
		{"Battery & availability", []string{"battery-profile", "battery-capacity", "battery-threshold"}},
		{"Output", []string{"compare", "progress", "progress-every", "list"}},
	}
	listed := make(map[string]bool)
	printFlag := func(f *flag.Flag) {
		name, u := flag.UnquoteUsage(f)
		if name != "" {
			name = " " + name
		}
		fmt.Fprintf(w, "  -%s%s\n    \t%s", f.Name, name, u)
		if f.DefValue != "" && f.DefValue != "0" && f.DefValue != "false" {
			fmt.Fprintf(w, " (default %s)", f.DefValue)
		}
		fmt.Fprintln(w)
	}
	for _, g := range groups {
		fmt.Fprintf(w, "\n%s:\n", g.title)
		for _, n := range g.names {
			if f := flag.Lookup(n); f != nil {
				listed[n] = true
				printFlag(f)
			}
		}
	}
	// Catch-all so a flag added without a group assignment still shows.
	first := true
	flag.VisitAll(func(f *flag.Flag) {
		if listed[f.Name] {
			return
		}
		if first {
			fmt.Fprintf(w, "\nOther:\n")
			first = false
		}
		printFlag(f)
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autoflsim:", err)
	os.Exit(1)
}
