// Command flcluster runs a real federated-learning cluster on this
// machine: a TCP aggregation server plus N device clients (each its
// own goroutine and socket) training a genuine pure-Go neural network
// on synthetic federated data — the Fig 2 edge-cloud loop end to end.
//
// Example:
//
//	flcluster -devices 16 -k 4 -rounds 20 -data noniid75
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"autofl/internal/data"
	"autofl/internal/fedavg"
	"autofl/internal/flnet"
	"autofl/internal/metrics"
	"autofl/internal/rng"
)

func main() {
	var (
		devices  = flag.Int("devices", 16, "number of device clients")
		k        = flag.Int("k", 4, "participants per round")
		rounds   = flag.Int("rounds", 20, "aggregation rounds")
		scenario = flag.String("data", "iid", "data heterogeneity: iid | noniid50 | noniid75 | noniid100")
		seed     = flag.Uint64("seed", 1, "random seed")
		quality  = flag.Bool("quality-select", false, "select by IID quality (AutoFL-style) instead of rotation")
	)
	flag.Parse()

	sc, err := parseScenario(*scenario)
	if err != nil {
		fatal(err)
	}

	fcfg := fedavg.DefaultConfig()
	fcfg.Devices = *devices
	fcfg.K = *k
	fcfg.Data = sc
	fcfg.Seed = *seed
	trainer, err := fedavg.NewTrainer(fcfg)
	if err != nil {
		fatal(err)
	}

	scfg := flnet.ServerConfig{
		Addr:          "127.0.0.1:0",
		Clients:       fcfg.Devices,
		Rounds:        *rounds,
		K:             fcfg.K,
		Epochs:        fcfg.Epochs,
		Batch:         fcfg.Batch,
		LR:            fcfg.LR,
		InitialParams: trainer.GlobalParams(),
		Evaluate: func(params []float64) float64 {
			if err := trainer.SetGlobalParams(params); err != nil {
				return 0
			}
			return trainer.Accuracy()
		},
	}
	if *quality {
		sel := fedavg.QualitySelector(fcfg.K)
		scfg.Select = func(round int, ids []int) []int {
			return sel(round, trainer.Partition)
		}
	}
	server, err := flnet.NewServer(scfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("aggregation server on %s; %d devices, K=%d, %d rounds, %s data\n",
		server.Addr(), *devices, *k, *rounds, sc.Name)

	var wg sync.WaitGroup
	for id := 0; id < fcfg.Devices; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			model := trainer.Model()
			local := rng.New(*seed ^ uint64(id*2654435761))
			client := &flnet.Client{
				DeviceID: id,
				Train: func(params []float64, epochs, batch int, lr float64) ([]float64, int, error) {
					ds := trainer.ClientDataset(id)
					updated, err := fedavg.LocalTrain(model, params, ds, epochs, batch, lr, local)
					if err != nil {
						return nil, 0, err
					}
					return updated, ds.Len(), nil
				},
			}
			if err := client.Run(server.Addr()); err != nil {
				fmt.Fprintf(os.Stderr, "client %d: %v\n", id, err)
			}
		}(id)
	}

	if err := server.Serve(); err != nil {
		fatal(err)
	}
	wg.Wait()

	header := []string{"round", "updates", "accuracy"}
	var rows [][]string
	for _, rec := range server.History() {
		rows = append(rows, []string{
			fmt.Sprintf("%d", rec.Round+1),
			fmt.Sprintf("%d", rec.Updates),
			fmt.Sprintf("%.3f", rec.Accuracy),
		})
	}
	fmt.Print(metrics.Table(header, rows))
}

func parseScenario(name string) (data.Scenario, error) {
	switch name {
	case "iid":
		return data.IdealIID, nil
	case "noniid50":
		return data.NonIID50, nil
	case "noniid75":
		return data.NonIID75, nil
	case "noniid100":
		return data.NonIID100, nil
	}
	return data.Scenario{}, fmt.Errorf("unknown data scenario %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flcluster:", err)
	os.Exit(1)
}
