// Heterogeneity: sweep the paper's four data-distribution scenarios
// (Ideal IID through Non-IID 100%, §5.2) and show how random selection
// stalls while AutoFL keeps converging — the Fig 6 / Fig 11 story.
package main

import (
	"fmt"
	"log"

	"autofl"
)

func main() {
	for _, sc := range autofl.DataScenarios() {
		scenario := autofl.Scenario{
			Workload: autofl.CNNMNIST,
			Setting:  autofl.S3,
			Data:     sc,
			Env:      autofl.EnvField,
			Seed:     5,
		}
		random, err := scenario.Run(autofl.PolicyRandom)
		if err != nil {
			log.Fatal(err)
		}
		auto, err := scenario.Run(autofl.PolicyAutoFL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s random: %-22s AutoFL: %s\n",
			sc, describe(random), describe(auto))
	}
}

func describe(r *autofl.Report) string {
	if r.Converged {
		return fmt.Sprintf("converged @%d (%.3f)", r.Rounds, r.FinalAccuracy)
	}
	return fmt.Sprintf("stalled at %.3f", r.FinalAccuracy)
}
