// Policies: run every selection policy the paper evaluates (§5.1 and
// §6.3) on the same scenario and print the normalized comparison —
// the Fig 8 experiment at example scale.
package main

import (
	"fmt"
	"log"

	"autofl"
)

func main() {
	scenario := autofl.Scenario{
		Workload: autofl.CNNMNIST,
		Setting:  autofl.S3,
		Data:     autofl.IdealIID,
		Env:      autofl.EnvField,
		Seed:     21,
	}

	reports, err := scenario.RunAll() // all eight policies
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := autofl.Compare(autofl.PolicyRandom, reports)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("policy           global-PPW  conv-time  converged")
	for _, row := range cmp.Rows {
		conv := "no"
		if row.Converged {
			conv = "yes"
		}
		fmt.Printf("%-16s %9.2fx %9.2fx  %s\n",
			row.Policy, row.GlobalPPWx, capped(row.ConvTimex), conv)
	}
}

// capped keeps non-converging baselines printable.
func capped(v float64) float64 {
	if v > 99 {
		return 99
	}
	return v
}
