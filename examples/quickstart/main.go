// Quickstart: simulate one federated-learning deployment with the
// AutoFL controller and print its efficiency against the FedAvg-Random
// baseline. This is the smallest end-to-end use of the public API,
// shown both ways: the one-call batch form (Scenario.Run) and the
// streaming Session form, stepping round by round with a live
// progress callback. The two produce identical reports — Run is a
// Session stepped to completion.
package main

import (
	"fmt"
	"log"

	"autofl"
)

func main() {
	scenario := autofl.Scenario{
		Workload: autofl.CNNMNIST,
		Setting:  autofl.S3,       // B=16, E=5, K=20 (Table 5)
		Data:     autofl.IdealIID, // every device holds all classes
		Env:      autofl.EnvField, // interference + variable network
		Seed:     7,
	}

	// Batch form: run the whole horizon, get one report.
	baseline, err := scenario.Run(autofl.PolicyRandom)
	if err != nil {
		log.Fatal(err)
	}

	// Streaming form: open a session, watch every round as it
	// executes, and step to completion.
	sess, err := autofl.Open(scenario, autofl.PolicyAutoFL)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	sess.Observe(func(ev autofl.RoundEvent) {
		if ev.Round%50 == 0 || ev.Converged {
			fmt.Printf("  round %3d: acc=%.3f reward=%.2f kept=%d/%d\n",
				ev.Round, ev.Accuracy, ev.Reward, ev.Kept, ev.Participants)
		}
	})
	for {
		if _, ok := sess.Step(); !ok {
			break
		}
	}
	auto := sess.Result()

	fmt.Printf("FedAvg-Random: converged=%v rounds=%d energy=%.0fJ\n",
		baseline.Converged, baseline.Rounds, baseline.EnergyToTargetJ)
	fmt.Printf("AutoFL:        converged=%v rounds=%d energy=%.0fJ\n",
		auto.Converged, auto.Rounds, auto.EnergyToTargetJ)
	fmt.Printf("AutoFL energy-efficiency improvement: %.1fx global, %.1fx per-participant\n",
		auto.GlobalPPW/baseline.GlobalPPW, auto.LocalPPW/baseline.LocalPPW)
}
