// Quickstart: simulate one federated-learning deployment with the
// AutoFL controller and print its efficiency against the FedAvg-Random
// baseline. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"autofl"
)

func main() {
	scenario := autofl.Scenario{
		Workload: autofl.CNNMNIST,
		Setting:  autofl.S3,       // B=16, E=5, K=20 (Table 5)
		Data:     autofl.IdealIID, // every device holds all classes
		Env:      autofl.EnvField, // interference + variable network
		Seed:     7,
	}

	baseline, err := scenario.Run(autofl.PolicyRandom)
	if err != nil {
		log.Fatal(err)
	}
	auto, err := scenario.Run(autofl.PolicyAutoFL)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("FedAvg-Random: converged=%v rounds=%d energy=%.0fJ\n",
		baseline.Converged, baseline.Rounds, baseline.EnergyToTargetJ)
	fmt.Printf("AutoFL:        converged=%v rounds=%d energy=%.0fJ\n",
		auto.Converged, auto.Rounds, auto.EnergyToTargetJ)
	fmt.Printf("AutoFL energy-efficiency improvement: %.1fx global, %.1fx per-participant\n",
		auto.GlobalPPW/baseline.GlobalPPW, auto.LocalPPW/baseline.LocalPPW)
}
