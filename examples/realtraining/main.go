// Realtraining: genuine federated learning over TCP — an aggregation
// server and a fleet of device clients on localhost, each training a
// real pure-Go neural network on its own Dirichlet-partitioned data
// shard, with AutoFL-style quality-driven selection against random
// selection under heavy non-IID data.
package main

import (
	"fmt"
	"log"
	"sync"

	"autofl/internal/data"
	"autofl/internal/fedavg"
	"autofl/internal/flnet"
	"autofl/internal/rng"
)

func main() {
	fmt.Println("non-IID(75%) federated training over TCP, 16 devices, K=4")
	random := run(false)
	quality := run(true)
	fmt.Printf("\nfinal accuracy: random selection %.3f, quality selection %.3f\n",
		random, quality)
}

func run(qualitySelect bool) float64 {
	cfg := fedavg.DefaultConfig()
	cfg.Devices = 16
	cfg.K = 4
	cfg.Data = data.NonIID75
	cfg.Seed = 3
	trainer, err := fedavg.NewTrainer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	scfg := flnet.ServerConfig{
		Addr:          "127.0.0.1:0",
		Clients:       cfg.Devices,
		Rounds:        25,
		K:             cfg.K,
		Epochs:        cfg.Epochs,
		Batch:         cfg.Batch,
		LR:            cfg.LR,
		InitialParams: trainer.GlobalParams(),
		Evaluate: func(params []float64) float64 {
			if err := trainer.SetGlobalParams(params); err != nil {
				return 0
			}
			return trainer.Accuracy()
		},
	}
	if qualitySelect {
		sel := fedavg.QualitySelector(cfg.K)
		scfg.Select = func(round int, ids []int) []int {
			return sel(round, trainer.Partition)
		}
	}
	server, err := flnet.NewServer(scfg)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for id := 0; id < cfg.Devices; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			model := trainer.Model()
			local := rng.New(uint64(40 + id))
			client := &flnet.Client{
				DeviceID: id,
				Train: func(params []float64, epochs, batch int, lr float64) ([]float64, int, error) {
					ds := trainer.ClientDataset(id)
					updated, err := fedavg.LocalTrain(model, params, ds, epochs, batch, lr, local)
					if err != nil {
						return nil, 0, err
					}
					return updated, ds.Len(), nil
				},
			}
			if err := client.Run(server.Addr()); err != nil {
				log.Printf("client %d: %v", id, err)
			}
		}(id)
	}
	if err := server.Serve(); err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	hist := server.History()
	mode := "rotation"
	if qualitySelect {
		mode = "quality "
	}
	for _, rec := range hist {
		if (rec.Round+1)%5 == 0 {
			fmt.Printf("  [%s] round %2d: accuracy %.3f\n", mode, rec.Round+1, rec.Accuracy)
		}
	}
	return hist[len(hist)-1].Accuracy
}
