// Straggler: compare the runtime-variance environments of §3.2 —
// ideal, on-device interference, and weak network — and show how much
// energy efficiency AutoFL recovers by adapting its selections (the
// Fig 5 / Fig 10 story).
package main

import (
	"fmt"
	"log"

	"autofl"
)

func main() {
	for _, env := range []autofl.Environment{
		autofl.EnvIdeal, autofl.EnvInterference, autofl.EnvWeakNetwork,
	} {
		scenario := autofl.Scenario{
			Workload: autofl.CNNMNIST,
			Setting:  autofl.S3,
			Data:     autofl.IdealIID,
			Env:      env,
			Seed:     11,
		}
		random, err := scenario.Run(autofl.PolicyRandom)
		if err != nil {
			log.Fatal(err)
		}
		auto, err := scenario.Run(autofl.PolicyAutoFL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s random: %6.0f kJ in %5.1f h | AutoFL: %6.0f kJ in %5.1f h (%.1fx PPW)\n",
			env,
			random.EnergyToTargetJ/1e3, random.TimeToTargetSec/3600,
			auto.EnergyToTargetJ/1e3, auto.TimeToTargetSec/3600,
			auto.GlobalPPW/random.GlobalPPW)
	}
}
