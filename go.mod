module autofl

go 1.24
