// Package battery models per-device energy storage for the simulator:
// a fixed-capacity battery per device that drains by the engine's
// measured round energy, optionally harvests (wall charger or a
// solar-diurnal profile) in virtual time, and gates participation on a
// state-of-charge threshold.
//
// The model is deterministic and shard-independent by construction.
// Every per-device quantity — initial charge, charger membership,
// solar phase — is a pure function of (seed, device index) via
// rng.Mix keyed hashing, never of draw order, so evaluating devices
// from any goroutine or worker produces identical bytes. State is
// 8 bytes per device (float32 charge + float32 settle time), lazily
// settled: a device's idle drain and harvest are integrated only when
// it is next observed, which keeps the steady-state cost of a round
// O(candidates), not O(population).
package battery

import (
	"math"

	"autofl/internal/rng"
)

// Profile names a harvesting profile.
type Profile string

const (
	// ProfileNone disables harvesting: charge only ever drains.
	ProfileNone Profile = ""
	// ProfileCharger plugs a keyed fraction of devices into a wall
	// charger with a constant inflow; the rest never harvest.
	ProfileCharger Profile = "charger"
	// ProfileSolar gives every device a sinusoidal diurnal inflow in
	// virtual time, phase-shifted per device so the fleet spans the
	// whole day/night cycle.
	ProfileSolar Profile = "solar-diurnal"
)

// Spec configures the battery model. The zero value of an optional
// field selects the documented default; CapacityJ is mandatory and
// validated by the engine (sim.Config.validate) before a Model is
// built.
type Spec struct {
	// CapacityJ is the battery capacity in joules.
	CapacityJ float64
	// ThresholdJ is the participation threshold: a device whose
	// charge is below it is unavailable for selection. Default
	// 0.15 * CapacityJ.
	ThresholdJ float64
	// InitialFracLo and InitialFracHi bound the keyed per-device
	// initial state of charge, as fractions of capacity. Defaults
	// 0.80 and 0.95: FL schedulers admit devices into training only
	// while charged and idle, so a fleet enters a run in the upper
	// charge band. A narrow band also makes remaining charge an
	// inverse proxy for cumulative load, which is what lets
	// charge-weighted selection self-balance participation.
	InitialFracLo float64
	InitialFracHi float64
	// Harvest selects the harvesting profile (default ProfileNone).
	Harvest Profile
	// HarvestW is the harvest inflow in watts: the charger rate for
	// ProfileCharger, the peak (noon) rate for ProfileSolar. Default
	// 2.5 W.
	HarvestW float64
	// ChargerFrac is the fraction of devices plugged in under
	// ProfileCharger. Default 0.25.
	ChargerFrac float64
	// DaySec is the diurnal period for ProfileSolar, in virtual
	// seconds. Default 86400 (one day).
	DaySec float64
}

// WithDefaults returns the spec with zero-valued optional fields
// replaced by their defaults. It does not validate; degenerate specs
// are rejected by sim.Config.validate.
func (s Spec) WithDefaults() Spec {
	if s.ThresholdJ == 0 {
		s.ThresholdJ = 0.15 * s.CapacityJ
	}
	if s.InitialFracLo == 0 && s.InitialFracHi == 0 {
		s.InitialFracLo, s.InitialFracHi = 0.80, 0.95
	}
	if s.HarvestW == 0 {
		s.HarvestW = 2.5
	}
	if s.ChargerFrac == 0 {
		s.ChargerFrac = 0.25
	}
	if s.DaySec == 0 {
		s.DaySec = 86400
	}
	return s
}

// Keyed-hash domains, so initial charge, charger membership, and solar
// phase draw from disjoint per-device hash families.
const (
	domainInit    = 0x0ba77e_01
	domainCharger = 0x0ba77e_02
	domainSolar   = 0x0ba77e_03
)

// u01 maps a hash word to a uniform float64 in [0, 1).
func u01(h uint64) float64 { return float64(h>>11) * 0x1p-53 }

// Model holds the packed per-device battery state. Not safe for
// concurrent use on the SAME device index; the engine's sharded
// observation touches disjoint indices, which is safe.
type Model struct {
	spec Spec
	seed uint64

	chargeJ []float32 // current charge, joules
	lastSec []float32 // virtual time of the last settle, seconds
}

// New builds a model for n devices with the given keyed seed. Initial
// charge is a pure function of (seed, index): construction order,
// shard count, and worker placement never change a device's bytes.
func New(spec Spec, seed uint64, n int) *Model {
	m := &Model{
		spec:    spec.WithDefaults(),
		seed:    seed,
		chargeJ: make([]float32, n),
		lastSec: make([]float32, n),
	}
	lo, hi := m.spec.InitialFracLo, m.spec.InitialFracHi
	for i := range m.chargeJ {
		f := lo + (hi-lo)*u01(rng.Mix(seed, domainInit, uint64(i)))
		m.chargeJ[i] = float32(m.spec.CapacityJ * f)
	}
	return m
}

// Spec returns the defaulted spec the model was built with.
func (m *Model) Spec() Spec { return m.spec }

// Len returns the number of devices.
func (m *Model) Len() int { return len(m.chargeJ) }

// MemoryBytes returns the resident per-device state size.
func (m *Model) MemoryBytes() int { return 8 * len(m.chargeJ) }

// ChargeJ returns device i's charge as of its last settle, without
// advancing time.
func (m *Model) ChargeJ(i int) float64 { return float64(m.chargeJ[i]) }

// Frac returns device i's state of charge in [0, 1] as of its last
// settle.
func (m *Model) Frac(i int) float64 { return float64(m.chargeJ[i]) / m.spec.CapacityJ }

// Available reports whether device i's settled charge meets the
// participation threshold.
func (m *Model) Available(i int) bool { return float64(m.chargeJ[i]) >= m.spec.ThresholdJ }

// Depleted reports whether device i's settled charge is exhausted.
func (m *Model) Depleted(i int) bool { return m.chargeJ[i] <= 0 }

// SettleAt integrates device i's idle drain (idleW watts) and harvest
// inflow from its last settle time up to virtual time tSec, clamps to
// [0, capacity], and returns the settled charge in joules. Settling is
// idempotent: a second call at the same tSec returns the same charge.
func (m *Model) SettleAt(i int, idleW, tSec float64) float64 {
	last := float64(m.lastSec[i])
	if tSec > last {
		c := float64(m.chargeJ[i]) - idleW*(tSec-last) + m.harvestJ(i, last, tSec)
		m.chargeJ[i] = float32(math.Min(math.Max(c, 0), m.spec.CapacityJ))
		m.lastSec[i] = float32(tSec)
	}
	return float64(m.chargeJ[i])
}

// Drain subtracts j joules from device i (negative j is ignored),
// clamping at empty. The engine calls it with a participant's round
// energy net of the idle share SettleAt already integrates.
func (m *Model) Drain(i int, j float64) {
	if j <= 0 {
		return
	}
	c := float64(m.chargeJ[i]) - j
	if c < 0 {
		c = 0
	}
	m.chargeJ[i] = float32(c)
}

// harvestJ is the energy device i harvests over virtual (t0, t1].
func (m *Model) harvestJ(i int, t0, t1 float64) float64 {
	switch m.spec.Harvest {
	case ProfileCharger:
		if u01(rng.Mix(m.seed, domainCharger, uint64(i))) < m.spec.ChargerFrac {
			return m.spec.HarvestW * (t1 - t0)
		}
		return 0
	case ProfileSolar:
		// Midpoint evaluation of the per-device phase-shifted
		// half-rectified sinusoid — deterministic and cheap; the
		// approximation error is our model definition, not drift.
		phase := u01(rng.Mix(m.seed, domainSolar, uint64(i)))
		mid := (t0 + t1) / 2
		s := math.Sin(2 * math.Pi * (mid/m.spec.DaySec + phase))
		if s <= 0 {
			return 0
		}
		return m.spec.HarvestW * s * (t1 - t0)
	default:
		return 0
	}
}
