package battery

import (
	"math"
	"testing"
)

func testSpec() Spec {
	return Spec{CapacityJ: 1000}
}

func TestWithDefaults(t *testing.T) {
	s := testSpec().WithDefaults()
	if s.ThresholdJ != 150 {
		t.Errorf("default ThresholdJ = %g, want 150", s.ThresholdJ)
	}
	if s.InitialFracLo != 0.80 || s.InitialFracHi != 0.95 {
		t.Errorf("default initial fracs = [%g, %g], want [0.80, 0.95]", s.InitialFracLo, s.InitialFracHi)
	}
	if s.HarvestW != 2.5 || s.ChargerFrac != 0.25 || s.DaySec != 86400 {
		t.Errorf("default harvest params = %+v", s)
	}
	// Explicit values survive.
	e := Spec{CapacityJ: 10, ThresholdJ: 4, InitialFracLo: 0.1, InitialFracHi: 0.2}.WithDefaults()
	if e.ThresholdJ != 4 || e.InitialFracLo != 0.1 || e.InitialFracHi != 0.2 {
		t.Errorf("explicit fields overwritten: %+v", e)
	}
}

// TestInitialChargeKeyed: a device's initial charge is a pure function
// of (seed, index) — two models of different sizes agree on shared
// indices, two seeds disagree.
func TestInitialChargeKeyed(t *testing.T) {
	small := New(testSpec(), 42, 100)
	big := New(testSpec(), 42, 10000)
	for i := 0; i < 100; i++ {
		if small.ChargeJ(i) != big.ChargeJ(i) {
			t.Fatalf("device %d initial charge depends on population size: %g vs %g",
				i, small.ChargeJ(i), big.ChargeJ(i))
		}
	}
	other := New(testSpec(), 43, 100)
	same := 0
	for i := 0; i < 100; i++ {
		if small.ChargeJ(i) == other.ChargeJ(i) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 initial charges identical across seeds", same)
	}
	// And all within the configured bounds.
	s := small.Spec()
	for i := 0; i < small.Len(); i++ {
		f := small.Frac(i)
		if f < s.InitialFracLo || f >= s.InitialFracHi {
			t.Fatalf("device %d initial frac %g outside [%g, %g)", i, f, s.InitialFracLo, s.InitialFracHi)
		}
	}
}

func TestSettleDrainsIdleAndClamps(t *testing.T) {
	m := New(Spec{CapacityJ: 100, InitialFracLo: 0.5, InitialFracHi: 0.5 + 1e-12}, 1, 4)
	c0 := m.ChargeJ(0)
	got := m.SettleAt(0, 0.5, 60) // 0.5 W for 60 s = 30 J
	if math.Abs((c0-got)-30) > 1e-4 {
		t.Errorf("idle settle drained %g J, want 30", c0-got)
	}
	// Idempotent at the same time.
	if again := m.SettleAt(0, 0.5, 60); again != got {
		t.Errorf("re-settle at same t changed charge: %g vs %g", again, got)
	}
	// Earlier time is a no-op.
	if back := m.SettleAt(0, 100, 10); back != got {
		t.Errorf("settle into the past changed charge: %g vs %g", back, got)
	}
	// Clamps at empty.
	if z := m.SettleAt(1, 1000, 3600); z != 0 {
		t.Errorf("over-drain settled to %g, want 0", z)
	}
	if !m.Depleted(1) || m.Available(1) {
		t.Error("empty device should be depleted and unavailable")
	}
}

func TestDrainClampsAndIgnoresNegative(t *testing.T) {
	m := New(Spec{CapacityJ: 100, InitialFracLo: 0.5, InitialFracHi: 0.5 + 1e-12}, 1, 1)
	c0 := m.ChargeJ(0)
	m.Drain(0, -5)
	if m.ChargeJ(0) != c0 {
		t.Error("negative drain changed charge")
	}
	m.Drain(0, 10)
	if math.Abs(m.ChargeJ(0)-(c0-10)) > 1e-4 {
		t.Errorf("drain(10) left %g, want %g", m.ChargeJ(0), c0-10)
	}
	m.Drain(0, 1e9)
	if m.ChargeJ(0) != 0 {
		t.Errorf("over-drain left %g, want 0", m.ChargeJ(0))
	}
}

// TestChargerHarvest: plugged-in devices recharge at HarvestW net of
// idle and clamp at capacity; unplugged devices only drain. Membership
// is keyed, so the plugged fraction is near ChargerFrac.
func TestChargerHarvest(t *testing.T) {
	spec := Spec{CapacityJ: 100, Harvest: ProfileCharger, HarvestW: 2, ChargerFrac: 0.5}
	m := New(spec, 7, 2000)
	plugged := 0
	for i := 0; i < m.Len(); i++ {
		before := m.ChargeJ(i)
		after := m.SettleAt(i, 0.1, 1000) // net +1.9 W or -0.1 W
		switch {
		case after > before:
			plugged++
			if after > spec.CapacityJ {
				t.Fatalf("device %d charged past capacity: %g", i, after)
			}
		case after < before:
		default:
			// Equal only when clamped at capacity already — impossible
			// here since initial frac < 1 and drain is nonzero.
			t.Fatalf("device %d charge unchanged by 1000 s settle", i)
		}
	}
	frac := float64(plugged) / float64(m.Len())
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("plugged fraction %g, want ~0.5", frac)
	}
}

// TestSolarHarvest: the diurnal profile is nonnegative, peaks at
// HarvestW, and per-device phases spread so some devices are in
// daylight and others are not at any instant.
func TestSolarHarvest(t *testing.T) {
	spec := Spec{CapacityJ: 1e6, Harvest: ProfileSolar, HarvestW: 3, DaySec: 1000}
	m := New(spec, 11, 500)
	day, night := 0, 0
	for i := 0; i < m.Len(); i++ {
		h := m.harvestJ(i, 0, 10)
		if h < 0 || h > spec.HarvestW*10+1e-9 {
			t.Fatalf("device %d harvested %g J over 10 s, want within [0, %g]", i, h, spec.HarvestW*10)
		}
		if h > 0 {
			day++
		} else {
			night++
		}
	}
	if day == 0 || night == 0 {
		t.Errorf("solar phases not spread: %d day, %d night", day, night)
	}
}

func TestMemoryBytes(t *testing.T) {
	m := New(testSpec(), 1, 1000)
	if got := m.MemoryBytes(); got != 8000 {
		t.Errorf("MemoryBytes = %d, want 8000 (8 B/device)", got)
	}
}
