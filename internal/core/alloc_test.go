package core

import (
	"testing"

	"autofl/internal/data"
	"autofl/internal/device"
	"autofl/internal/sim"
	"autofl/internal/workload"
)

// TestControllerSteadyStateAllocFree pins the §6.4 overhead claim at
// the allocation level: once the fleet's agents, rows, and round
// buffers exist, Select and Feedback must not allocate at all. Any
// regression here shows up as a nonzero AllocsPerRun long before it is
// visible in wall-clock benchmarks.
func TestControllerSteadyStateAllocFree(t *testing.T) {
	cfg := sim.Config{
		Workload:       workload.CNNMNIST(),
		Params:         workload.GlobalParams{B: 16, E: 5, K: 8},
		Fleet:          device.NewFleet(6, 14, 20),
		Data:           data.NonIID50,
		Env:            sim.EnvField(),
		Seed:           91,
		MaxRounds:      80,
		TargetAccuracy: 1.1,
	}
	eng := sim.New(cfg)
	ctrl := New(DefaultOptions(92))

	// Warm up: materialize agents, visited-state rows, tie priorities,
	// and every reusable buffer.
	acc := cfg.Workload.AccuracyFloor
	var ctx *sim.RoundContext
	var res *sim.RoundResult
	for round := 0; round < 80; round++ {
		ctx, res = eng.RunRound(ctrl, round, acc)
		ctrl.Feedback(ctx, res)
		acc = res.Accuracy
	}

	// The reward trace legitimately grows one float per round; give it
	// headroom so slice-growth amortization doesn't show up as an
	// allocation inside the measured window.
	const runs = 200
	trace := ctrl.rewardTrace
	grown := make([]float64, len(trace), len(trace)+4*runs)
	copy(grown, trace)
	ctrl.rewardTrace = grown

	if avg := testing.AllocsPerRun(runs, func() { _ = ctrl.Select(ctx) }); avg != 0 {
		t.Errorf("steady-state Select allocated %.2f/run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(runs, func() { ctrl.Feedback(ctx, res) }); avg != 0 {
		t.Errorf("steady-state Feedback allocated %.2f/run, want 0", avg)
	}
	// And the interleaved decision→measure loop, as the engine drives
	// it.
	if avg := testing.AllocsPerRun(runs, func() {
		_ = ctrl.Select(ctx)
		ctrl.Feedback(ctx, res)
	}); avg != 0 {
		t.Errorf("steady-state Select+Feedback allocated %.2f/run, want 0", avg)
	}
}

// TestStepperSteadyStateAllocFree extends the allocation pin to the
// streaming engine API: once warm, each sim.Run.Step — a full round
// through the controller's Select and Feedback plus the run's
// accumulating trace — performs zero allocations. Start preallocates
// the trace buffers to the horizon, so the only growth left is the
// controller's reward trace, given headroom exactly as above.
func TestStepperSteadyStateAllocFree(t *testing.T) {
	cfg := sim.Config{
		Workload:       workload.CNNMNIST(),
		Params:         workload.GlobalParams{B: 16, E: 5, K: 8},
		Fleet:          device.NewFleet(6, 14, 20),
		Data:           data.NonIID50,
		Env:            sim.EnvField(),
		Seed:           91,
		MaxRounds:      600,
		TargetAccuracy: 1.1,
	}
	ctrl := New(DefaultOptions(92))
	run := sim.New(cfg).Start(ctrl)
	for run.Rounds() < 80 {
		if !run.Step() {
			t.Fatal("run ended during warmup")
		}
	}

	const runs = 200
	trace := ctrl.rewardTrace
	grown := make([]float64, len(trace), len(trace)+2*runs)
	copy(grown, trace)
	ctrl.rewardTrace = grown

	if avg := testing.AllocsPerRun(runs, func() { run.Step() }); avg != 0 {
		t.Errorf("steady-state Run.Step allocated %.2f/run, want 0", avg)
	}
}
