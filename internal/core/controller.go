package core

import (
	"autofl/internal/device"
	"autofl/internal/qlearn"
	"autofl/internal/rng"
	"autofl/internal/sim"
)

// DVFS levels exposed as second-level actions. The paper augments the
// execution-target action with the device's V/F steps; three coarse
// levels per target keep the Q-tables compact while spanning the
// energy-relevant range of the ladder (the energy-optimal operating
// point sits in the interior — see internal/device tests).
var dvfsLevels = []float64{0.45, 0.70, 1.00}

// Actions enumerates the 2 targets × 3 DVFS levels. The slice order is
// the controller's action index space; it is lexicographic by action
// name, so index-order argmax tie-breaking matches the legacy
// sorted-name behavior.
func Actions() []qlearn.Action {
	var out []qlearn.Action
	for _, t := range []device.Target{device.CPU, device.GPU} {
		for lvl := range dvfsLevels {
			out = append(out, qlearn.FormatAction(t.String(), lvl))
		}
	}
	return out
}

// DecodeAction maps an action key back to a concrete (target, step)
// for a given device spec.
func DecodeAction(a qlearn.Action, spec *device.Spec) (device.Target, int) {
	target := device.CPU
	s := string(a)
	lvl := 2
	if len(s) > 0 {
		if s[0] == 'G' {
			target = device.GPU
		}
		lvl = int(s[len(s)-1] - '0')
		if lvl < 0 || lvl >= len(dvfsLevels) {
			lvl = len(dvfsLevels) - 1
		}
	}
	proc := spec.Proc(target)
	step := int(dvfsLevels[lvl]*float64(proc.TopStep()) + 0.5)
	return target, step
}

// Options configures the AutoFL controller.
type Options struct {
	// Epsilon is the exploration probability (paper default 0.1).
	Epsilon float64
	// LearningRate is γ of Algorithm 1 (paper default 0.9).
	LearningRate float64
	// Discount is µ of Algorithm 1 (paper default 0.1).
	Discount float64
	// Alpha and Beta weight the accuracy and accuracy-improvement
	// reward terms of Eq (7).
	Alpha, Beta float64
	// FairnessWeight scales an energy-fairness extension to the Eq (7)
	// reward: each participant is additionally credited with its state
	// of charge (sim.DeviceState.Battery), so under a battery model the
	// controller learns to rotate load toward charged devices instead
	// of re-draining the same cohort. Zero — the default — leaves the
	// published reward untouched; without a battery model the term is
	// constant across devices and the advantage baseline cancels it.
	FairnessWeight float64
	// SharedTables keys Q-tables by device performance category
	// instead of device identity (§4 "Scalability", Fig 15): faster
	// reward convergence at a small prediction-accuracy cost.
	SharedTables bool
	// Buckets discretize the continuous state features; zero value
	// selects Table 1 defaults.
	Buckets *Buckets
	// Seed drives exploration and tie-breaking.
	Seed uint64
}

// DefaultOptions returns the paper's hyperparameters.
func DefaultOptions(seed uint64) Options {
	return Options{
		Epsilon:      qlearn.DefaultEpsilon,
		LearningRate: qlearn.DefaultLearningRate,
		Discount:     qlearn.DefaultDiscount,
		Alpha:        0.05,
		Beta:         2.0,
		Seed:         seed,
	}
}

// Controller is the AutoFL policy. It implements sim.FeedbackPolicy.
//
// The decision hot path is allocation-free in steady state: states are
// packed qlearn.StateKeys (StateCoder), Q-tables are dense slices
// (qlearn.Dense), and every per-round structure — state keys, the
// device ranking, the selection list, the pending (S, A, R) record —
// lives in controller-owned buffers reused across rounds.
type Controller struct {
	opts    Options
	buckets Buckets
	coder   StateCoder
	actions []qlearn.Action            // fixed action ordering (index space)
	agents  map[int]*qlearn.DenseAgent // keyed by device ID or category
	explore *rng.Stream

	// Pending round bookkeeping: one round's (S, A) pairs held until
	// the next round's observation provides (S', A') for the Algorithm
	// 1 update. Parallel slices in selection order, reused across
	// rounds.
	pendIdx     []int // selected device indices
	pendKey     []qlearn.StateKey
	pendAct     []int8 // action indices
	pendReward  []float64
	havePending bool
	pendReady   bool // reward computed

	// tiePriority breaks Q-value ties between devices. It is random —
	// avoiding the biased selection §4.2 warns about — but drawn once
	// per controller, so equally-valued devices keep a consistent
	// order: the learned cohort stays stable round over round, which
	// is what lets FedAvg converge on its union data distribution
	// under heavy non-IID populations. Drawn lazily on first use,
	// indexed by device.
	tiePriority []float64
	tieDrawn    []bool

	// Reference energies anchor the Eq (7) energy terms to a unitless
	// scale; initialized from the first observed round.
	refGlobalEnergy float64
	refLocalEnergy  float64

	// deviceValue is an exponential moving average of each device's
	// rewards, used as the initialization prior for its Q-table rows:
	// device-constant traits (data quality, hardware efficiency)
	// generalize across the runtime-variance states, instead of a
	// punished device looking neutral again the moment its co-runner
	// bucket flips. Keyed like agents (device ID or category).
	deviceValue map[int]float64

	// stallStreak counts consecutive rounds without accuracy
	// improvement. Eq (7)'s hard stalled branch applies only once the
	// streak passes stallPatience: a single noisy round must not
	// collapse the learned ranking (which would churn the cohort and
	// prevent the stable selection FedAvg needs under non-IID data),
	// while a genuine plateau still triggers the shake-up the branch
	// exists for.
	stallStreak int

	rewardTrace []float64

	// Reusable round buffers (sized to the fleet on first Select).
	keys    []qlearn.StateKey
	ranked  []ranked
	selBuf  []sim.Selection
	permBuf []int

	// Decision bookkeeping for prediction-accuracy analysis (Fig 12).
	lastExplored bool
}

// New builds an AutoFL controller.
func New(opts Options) *Controller {
	if opts.Epsilon == 0 && opts.LearningRate == 0 && opts.Discount == 0 {
		opts = DefaultOptions(opts.Seed)
	}
	b := DefaultBuckets()
	if opts.Buckets != nil {
		b = *opts.Buckets
	}
	return &Controller{
		opts:        opts,
		buckets:     b,
		coder:       NewStateCoder(b),
		actions:     Actions(),
		agents:      make(map[int]*qlearn.DenseAgent),
		explore:     rng.New(opts.Seed ^ 0xa07f1),
		deviceValue: make(map[int]float64),
	}
}

// Name implements sim.Policy.
func (c *Controller) Name() string { return "AutoFL" }

// RewardTrace returns the mean per-round reward history (Fig 15).
func (c *Controller) RewardTrace() []float64 { return c.rewardTrace }

// Explored reports whether the most recent Select was an exploration
// round.
func (c *Controller) Explored() bool { return c.lastExplored }

// MemoryBytes estimates the controller's Q-table footprint (§6.4).
func (c *Controller) MemoryBytes() int {
	total := 0
	for _, a := range c.agents {
		total += a.Table.MemoryBytes()
	}
	return total
}

// agentFor returns the Q-learning agent for a device, creating it on
// first use. With SharedTables, devices of the same performance
// category share one agent.
func (c *Controller) agentFor(ds *sim.DeviceState) *qlearn.DenseAgent {
	key := c.agentKey(ds)
	if _, ok := c.deviceValue[key]; !ok {
		// Informed prior: the FL protocol reports each device's
		// data-class count to the server (paper footnote 3), and class
		// coverage is the single strongest predictor of a device's
		// usefulness under data heterogeneity (§3.3). Seeding the
		// value prior with it gives the ranking a sensible starting
		// order that reward feedback then corrects for energy,
		// interference and network behaviour. The scale matches a
		// typical improving-round reward.
		c.deviceValue[key] = 0.5 * ds.Data.ClassFraction
	}
	a, ok := c.agents[key]
	if !ok {
		a = qlearn.NewDenseAgent(len(c.actions), c.explore)
		a.Epsilon = c.opts.Epsilon
		a.LearningRate = c.opts.LearningRate
		a.Discount = c.opts.Discount
		a.Table.Init = func() float64 { return c.deviceValue[key] }
		c.agents[key] = a
	}
	return a
}

func (c *Controller) agentKey(ds *sim.DeviceState) int {
	if c.opts.SharedTables {
		return -1 - int(ds.Device.Category())
	}
	return ds.Device.ID
}

// ensureFleet sizes the reusable per-device buffers.
func (c *Controller) ensureFleet(n int) {
	if cap(c.keys) < n {
		c.keys = make([]qlearn.StateKey, n)
		c.ranked = make([]ranked, n)
		c.permBuf = make([]int, n)
		tp := make([]float64, n)
		copy(tp, c.tiePriority)
		td := make([]bool, n)
		copy(td, c.tieDrawn)
		c.tiePriority, c.tieDrawn = tp, td
	}
	c.keys = c.keys[:n]
	c.ranked = c.ranked[:n]
	c.permBuf = c.permBuf[:n]
	c.tiePriority = c.tiePriority[:n]
	c.tieDrawn = c.tieDrawn[:n]
}

// stage records one selected device's (S, A) pair for the next round's
// value update.
func (c *Controller) stage(idx int, key qlearn.StateKey, act int) {
	c.pendIdx = append(c.pendIdx, idx)
	c.pendKey = append(c.pendKey, key)
	c.pendAct = append(c.pendAct, int8(act))
}

// Select implements Algorithm 1's decision step: with probability ε
// pick K random participants and random actions; otherwise sort
// devices by Q(S_global, S_local, A) and take the top K with their
// argmax actions. It also completes the previous round's value update,
// for which this round's states provide (S', A').
//
// The returned slice is a controller-owned buffer, valid until the
// next Select call.
func (c *Controller) Select(ctx *sim.RoundContext) []sim.Selection {
	n := len(ctx.Devices)
	c.ensureFleet(n)

	global := c.coder.GlobalKey(ctx.Workload, ctx.Params)
	for i := range ctx.Devices {
		c.keys[i] = c.coder.Key(global, &ctx.Devices[i])
	}

	c.completePendingUpdate(ctx)

	c.pendIdx = c.pendIdx[:0]
	c.pendKey = c.pendKey[:0]
	c.pendAct = c.pendAct[:0]
	c.pendReward = c.pendReward[:0]
	c.havePending = true
	c.pendReady = false
	selections := c.selBuf[:0]

	c.lastExplored = c.explore.Bool(c.opts.Epsilon)
	if c.lastExplored {
		// Exploration: uniform random participants and actions.
		k := ctx.Params.K
		if k > n {
			k = n
		}
		c.explore.PermInto(c.permBuf)
		for _, i := range c.permBuf[:k] {
			agent := c.agentFor(&ctx.Devices[i])
			action := agent.RandomAction()
			target, step := DecodeAction(c.actions[action], ctx.Devices[i].Device.Spec)
			selections = append(selections, sim.Selection{Index: i, Target: target, Step: step})
			c.stage(i, c.keys[i], action)
		}
		c.selBuf = selections
		return selections
	}

	// Exploitation: rank all devices by their best Q-value. Touch pins
	// each state's row materialization to the decision step, so pure
	// reads elsewhere never perturb the init stream.
	for i := range ctx.Devices {
		agent := c.agentFor(&ctx.Devices[i])
		row := agent.Table.Touch(c.keys[i])
		action, value := agent.Table.BestAt(row)
		c.ranked[i] = ranked{idx: i, value: value, tie: c.tieFor(i), action: int8(action)}
	}
	sortRanked(c.ranked)

	for _, r := range c.ranked[:min(ctx.Params.K, n)] {
		target, step := DecodeAction(c.actions[r.action], ctx.Devices[r.idx].Device.Spec)
		selections = append(selections, sim.Selection{Index: r.idx, Target: target, Step: step})
		c.stage(r.idx, c.keys[r.idx], int(r.action))
	}
	c.selBuf = selections
	return selections
}

// ranked is one device's standing in the exploitation ranking.
type ranked struct {
	idx    int
	value  float64
	tie    float64
	action int8
}

// tieFor returns the device's stable random tie-break priority,
// drawing it on first use.
func (c *Controller) tieFor(idx int) float64 {
	if !c.tieDrawn[idx] {
		c.tiePriority[idx] = c.explore.Float64()
		c.tieDrawn[idx] = true
	}
	return c.tiePriority[idx]
}

// sortRanked sorts descending by (value, tie) with an insertion sort:
// fast for the ~200-device fleets this runs on.
func sortRanked(r []ranked) {
	less := func(a, b ranked) bool {
		if a.value != b.value {
			return a.value > b.value
		}
		return a.tie > b.tie
	}
	for i := 1; i < len(r); i++ {
		for j := i; j > 0 && less(r[j], r[j-1]); j-- {
			r[j], r[j-1] = r[j-1], r[j]
		}
	}
}

// Feedback implements the measurement step: compute the Eq (5)–(7)
// reward for every participant and stage it; the Q update completes at
// the next Select when (S', A') is known.
func (c *Controller) Feedback(ctx *sim.RoundContext, res *sim.RoundResult) {
	if !c.havePending {
		return
	}
	if c.refGlobalEnergy == 0 {
		// Anchor the energy scale to the first observed round.
		c.refGlobalEnergy = res.EnergyTotalJ
		n := 0
		for i := range res.Devices {
			if res.Devices[i].Selected {
				n++
			}
		}
		if n > 0 {
			c.refLocalEnergy = res.EnergyParticipantsJ / float64(n)
		}
		if c.refGlobalEnergy == 0 {
			c.refGlobalEnergy = 1
		}
		if c.refLocalEnergy == 0 {
			c.refLocalEnergy = 1
		}
	}

	accuracy := res.Accuracy * 100
	deltaAcc := (res.Accuracy - res.PrevAccuracy) * 100
	globalTerm := res.EnergyTotalJ / c.refGlobalEnergy

	if deltaAcc <= 0 {
		c.stallStreak++
	} else {
		c.stallStreak = 0
	}
	// stallPatience is the hysteresis on Eq (7)'s stalled branch: see
	// the stallStreak field comment.
	const stallPatience = 3
	plateaued := c.stallStreak >= stallPatience

	c.pendReward = c.pendReward[:0]
	sum, n := 0.0, 0
	for _, idx := range c.pendIdx {
		var r float64
		switch {
		case res.Devices[idx].UpdateFraction == 0:
			// The device missed the straggler deadline: its action
			// contributed nothing to accuracy, so it takes the Eq (7)
			// stalled branch individually.
			r = accuracy - 100
		case deltaAcc <= 0 && plateaued:
			// Eq (7), stalled branch: distance from perfect accuracy,
			// strongly discouraging the actions that produced a
			// sustained plateau. The punishment is skewed by class
			// coverage — concentrated-data devices are the likeliest
			// cause of the drift plateau — so repeated sweeps leave
			// the Q-ranking ordered by coverage and the next cohort
			// is the one that can escape it.
			skew := 1 + 0.5*(1-ctx.Devices[idx].Data.ClassFraction)
			r = (accuracy - 100) * skew
		default:
			local := res.Devices[idx].EnergyJ / c.refLocalEnergy
			// The improvement credit is attributed per device, scaled
			// by its reported class coverage: the FL protocol already
			// ships each device's data-class count to the server
			// (paper footnote 3), and a device holding most classes
			// contributed more to an unbiased aggregate than a
			// single-class one. This is what lets the Q-tables
			// separate high- from low-coverage devices instead of
			// waiting for the (weak) round-composition covariance.
			credit := 0.25 + 0.75*ctx.Devices[idx].Data.ClassFraction
			r = -globalTerm - local + c.opts.Alpha*accuracy + c.opts.Beta*deltaAcc*credit
			if c.opts.FairnessWeight != 0 {
				// Energy-fairness extension: credit charge headroom.
				// Only the per-device differences survive the advantage
				// baseline below, so this steers *which* devices are
				// picked, not the overall reward level.
				r += c.opts.FairnessWeight * ctx.Devices[idx].Battery
			}
		}
		c.pendReward = append(c.pendReward, r)
		sum += r
		n++
	}
	c.pendReady = true
	if n > 0 {
		c.rewardTrace = append(c.rewardTrace, sum/float64(n))
	}

	// Center the stored rewards on the round mean (an advantage
	// baseline): the terms shared by every participant — global
	// energy, absolute accuracy, the improvement level — cancel, so
	// the Q-ranking is driven purely by per-device differentiation
	// (energy draw, drop penalties, class-coverage credit). Without
	// the baseline, merely having participated in a good round lifts a
	// device above everyone idle, and selection degenerates into
	// incumbency.
	if n > 0 {
		mean := sum / float64(n)
		const valueEMA = 0.05
		for j, idx := range c.pendIdx {
			c.pendReward[j] -= mean
			key := c.agentKey(&ctx.Devices[idx])
			// The prior EMA moves slowly: single noisy rounds must
			// not reshuffle the device ranking.
			c.deviceValue[key] = (1-valueEMA)*c.deviceValue[key] + valueEMA*c.pendReward[j]
		}
	}
}

// completePendingUpdate applies the Algorithm 1 update for the
// previous round using this round's states as S' and the greedy
// actions as A'. Touching S' here (before reading its argmax)
// reproduces the legacy row-creation order: S' rows materialize
// before the S row a first Update creates.
func (c *Controller) completePendingUpdate(ctx *sim.RoundContext) {
	if !c.havePending || !c.pendReady {
		return
	}
	for j, idx := range c.pendIdx {
		agent := c.agentFor(&ctx.Devices[idx])
		rowNext := agent.Table.Touch(c.keys[idx])
		aNext, _ := agent.Table.BestAt(rowNext)
		rowS := agent.Table.Touch(c.pendKey[j])
		agent.Table.UpdateAt(rowS, int(c.pendAct[j]), c.pendReward[j],
			rowNext, aNext, agent.LearningRate, agent.Discount)
	}
	c.havePending = false
	c.pendReady = false
}

// Compile-time interface checks.
var (
	_ sim.Policy         = (*Controller)(nil)
	_ sim.FeedbackPolicy = (*Controller)(nil)
)
