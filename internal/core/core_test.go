package core

import (
	"math"
	"testing"

	"autofl/internal/data"
	"autofl/internal/device"
	"autofl/internal/qlearn"
	"autofl/internal/rng"
	"autofl/internal/sim"
	"autofl/internal/workload"
)

func cfg(seed uint64) sim.Config {
	return sim.Config{
		Workload:  workload.CNNMNIST(),
		Params:    workload.S3,
		Data:      data.IdealIID,
		Env:       sim.EnvIdeal(),
		Seed:      seed,
		MaxRounds: 600,
	}
}

func TestGlobalStateKeyBuckets(t *testing.T) {
	cnn := GlobalStateKey(workload.CNNMNIST(), workload.S3)
	lstm := GlobalStateKey(workload.LSTMShakespeare(), workload.S3)
	if cnn == lstm {
		t.Error("different layer mixes must map to different global states")
	}
	s3 := GlobalStateKey(workload.CNNMNIST(), workload.S3)
	s4 := GlobalStateKey(workload.CNNMNIST(), workload.S4)
	if s3 != s4 {
		t.Error("Table 1 puts K=20 and K=10 in the same medium bucket")
	}
	bigK := workload.GlobalParams{B: 16, E: 5, K: 60}
	if GlobalStateKey(workload.CNNMNIST(), bigK) == s3 {
		t.Error("K=60 must land in the large bucket, away from K=20")
	}
	// S2 (B=32) and S3 (B=16) differ only in batch bucket: 32 falls in
	// the large bucket (>=32), 16 in medium.
	if GlobalStateKey(workload.CNNMNIST(), workload.S2) == s3 {
		t.Error("S2 and S3 batch sizes land in different Table 1 buckets")
	}
}

func TestLocalStateKeyBuckets(t *testing.T) {
	b := DefaultBuckets()
	base := sim.DeviceState{
		Device:        device.DefaultFleet()[0],
		BandwidthMbps: 100,
		Data:          &data.DeviceData{ClassFraction: 1},
	}
	quiet := b.LocalStateKey(&base)

	loaded := base
	loaded.Load.CPUUtil = 0.9
	if b.LocalStateKey(&loaded) == quiet {
		t.Error("heavy co-runner CPU must change the local state")
	}
	light := base
	light.Load.CPUUtil = 0.1
	if b.LocalStateKey(&light) == b.LocalStateKey(&loaded) {
		t.Error("small and large co-runner buckets must differ")
	}

	badNet := base
	badNet.BandwidthMbps = 20
	if b.LocalStateKey(&badNet) == quiet {
		t.Error("bad network must change the local state")
	}

	nonIID := base
	nonIID.Data = &data.DeviceData{ClassFraction: 0.2}
	if b.LocalStateKey(&nonIID) == quiet {
		t.Error("small data-class fraction must change the local state")
	}
}

func TestNoneBucketIsExactZero(t *testing.T) {
	if got := bucketWithNone(0, []float64{0.25, 0.75}); got != 0 {
		t.Errorf("zero utilization bucket = %d, want 0 (none)", got)
	}
	if got := bucketWithNone(0.01, []float64{0.25, 0.75}); got != 1 {
		t.Errorf("tiny utilization bucket = %d, want 1 (small)", got)
	}
	if got := bucketWithNone(0.99, []float64{0.25, 0.75}); got != 3 {
		t.Errorf("heavy utilization bucket = %d, want 3 (large)", got)
	}
}

func TestActionsEnumeration(t *testing.T) {
	acts := Actions()
	if len(acts) != device.NumTargets*len(dvfsLevels) {
		t.Fatalf("action space = %d, want %d", len(acts), device.NumTargets*len(dvfsLevels))
	}
	seen := map[qlearn.Action]bool{}
	for _, a := range acts {
		if seen[a] {
			t.Fatalf("duplicate action %s", a)
		}
		seen[a] = true
	}
}

func TestDecodeAction(t *testing.T) {
	spec := device.HighEndSpec()
	target, step := DecodeAction("CPU@2", spec)
	if target != device.CPU || step != spec.CPU.TopStep() {
		t.Errorf("CPU@2 = (%v, %d), want (CPU, top)", target, step)
	}
	target, step = DecodeAction("GPU@0", spec)
	if target != device.GPU {
		t.Errorf("GPU@0 target = %v", target)
	}
	if step >= spec.GPU.TopStep() || step < 0 {
		t.Errorf("GPU@0 step = %d, want interior low step", step)
	}
	// Unknown action decodes to a safe default rather than panicking.
	target, step = DecodeAction("", spec)
	if target != device.CPU || step != spec.CPU.TopStep() {
		t.Error("empty action should decode to CPU top step")
	}
}

func TestControllerSelectsKDevices(t *testing.T) {
	eng := sim.New(cfg(1))
	c := New(DefaultOptions(2))
	_, res := eng.RunRound(c, 0, 0.1)
	selected := 0
	for _, dr := range res.Devices {
		if dr.Selected {
			selected++
		}
	}
	if selected != workload.S3.K {
		t.Errorf("AutoFL selected %d devices, want K=%d", selected, workload.S3.K)
	}
}

func TestControllerConvergesIID(t *testing.T) {
	res := sim.New(cfg(3)).Run(New(DefaultOptions(4)))
	if !res.Converged {
		t.Fatalf("AutoFL should converge under ideal IID: %v", res)
	}
	if len(res.RewardTrace) == 0 {
		t.Error("AutoFL run should produce a reward trace")
	}
}

func TestControllerBeatsRandomInField(t *testing.T) {
	// The headline claim (Fig 8): AutoFL improves energy efficiency
	// over FedAvg-Random under realistic field conditions.
	c := cfg(5)
	c.Env = sim.EnvField()
	autofl := sim.New(c).Run(New(DefaultOptions(6)))
	random := sim.New(c).Run(&randomPolicy{seed: 6})
	if !autofl.Converged {
		t.Fatalf("AutoFL failed to converge in the field env: %v", autofl)
	}
	if autofl.GlobalPPW() <= random.GlobalPPW() {
		t.Errorf("AutoFL PPW %.3g should beat random %.3g",
			autofl.GlobalPPW(), random.GlobalPPW())
	}
}

func TestControllerConvergesUnderHeterogeneity(t *testing.T) {
	// Fig 11(c): random selection stalls at Non-IID(75%); AutoFL's
	// learned, stable selection of IID devices converges.
	c := cfg(7)
	c.Data = data.NonIID75
	c.MaxRounds = 1000
	res := sim.New(c).Run(New(DefaultOptions(8)))
	if !res.Converged {
		t.Errorf("AutoFL should converge at Non-IID(75%%): %v", res)
	}
}

func TestRewardStalledBranch(t *testing.T) {
	c := New(DefaultOptions(9))
	eng := sim.New(cfg(10))

	// The reward trace records the raw (uncentered) round-mean reward.
	// A single non-improving round does NOT trigger the hard branch
	// (hysteresis protects the cohort from reward noise)...
	ctx, res := eng.RunRound(c, 0, 0.5)
	res.Accuracy = res.PrevAccuracy - 0.01
	c.Feedback(ctx, res)
	trace := c.RewardTrace()
	hard := res.Accuracy*100 - 100
	if got := trace[len(trace)-1]; math.Abs(got-hard) < 1 {
		t.Errorf("single stalled round produced hard-branch reward %v", got)
	}

	// ...but a sustained plateau does: after three consecutive stalls
	// the mean raw reward equals acc-100 (all participants hold the
	// full class set under IID data, so the coverage skew is 1).
	var lastRes *sim.RoundResult
	for round := 1; round <= 3; round++ {
		ctx, res = eng.RunRound(c, round, 0.5)
		res.Accuracy = res.PrevAccuracy - 0.01
		c.Feedback(ctx, res)
		lastRes = res
		_ = ctx
	}
	trace = c.RewardTrace()
	hard = lastRes.Accuracy*100 - 100
	if got := trace[len(trace)-1]; math.Abs(got-hard) > 1 {
		t.Errorf("plateau mean reward = %v, want ~%v (acc-100)", got, hard)
	}
}

func TestDroppedDeviceAlwaysPunished(t *testing.T) {
	// A straggler that contributed nothing takes the hard branch even
	// on an improving round.
	c := New(DefaultOptions(31))
	eng := sim.New(cfg(32))
	ctx, res := eng.RunRound(c, 0, 0.5)
	res.Accuracy = res.PrevAccuracy + 0.02
	// Force one on-time participant to look dropped.
	forced := -1
	for i := range res.Devices {
		if res.Devices[i].Selected && res.Devices[i].UpdateFraction > 0 {
			res.Devices[i].UpdateFraction = 0
			forced = i
			break
		}
	}
	if forced < 0 {
		t.Fatal("no on-time participant")
	}
	c.Feedback(ctx, res)
	// Rewards are round-mean-centered, so assert the ordering: the
	// dropped device must sit strictly below every on-time peer.
	rewards := pendingRewards(c)
	dropped := rewards[forced]
	for idx, r := range rewards {
		if idx == forced || res.Devices[idx].UpdateFraction == 0 {
			continue
		}
		if dropped >= r {
			t.Fatalf("dropped device reward %v not below peer reward %v", dropped, r)
		}
	}
}

// pendingRewards exposes the staged per-device rewards for assertions.
func pendingRewards(c *Controller) map[int]float64 {
	out := make(map[int]float64, len(c.pendIdx))
	for j, idx := range c.pendIdx {
		out[idx] = c.pendReward[j]
	}
	return out
}

func TestRewardProgressBranchSign(t *testing.T) {
	c := New(DefaultOptions(11))
	eng := sim.New(cfg(12))
	ctx, res := eng.RunRound(c, 0, 0.5)
	res.Accuracy = res.PrevAccuracy + 0.02 // clear improvement
	c.Feedback(ctx, res)
	for idx, r := range pendingRewards(c) {
		if res.Devices[idx].UpdateFraction == 0 {
			continue
		}
		// -1 (global) - local + alpha*acc + beta*delta: with the
		// first-round anchor, global term is exactly 1.
		if r < -10 || r > 20 {
			t.Errorf("progress-round reward %v out of plausible range", r)
		}
	}
}

func TestRewardTraceStabilizes(t *testing.T) {
	// Fig 15: the reward converges within roughly 50-80 rounds. Verify
	// that late-run reward variance is well below early-run variance.
	c := cfg(13)
	c.MaxRounds = 300
	c.TargetAccuracy = 1.1 // run the full horizon
	ctrl := New(DefaultOptions(14))
	sim.New(c).Run(ctrl)
	trace := ctrl.RewardTrace()
	if len(trace) < 200 {
		t.Fatalf("reward trace too short: %d", len(trace))
	}
	early := variance(trace[5:80])
	late := variance(trace[len(trace)-80:])
	if late > early {
		t.Errorf("late reward variance %.3f should be below early %.3f", late, early)
	}
}

func TestSharedTablesUseFewerAgents(t *testing.T) {
	c := cfg(15)
	c.MaxRounds = 60
	c.TargetAccuracy = 1.1
	perDevice := New(DefaultOptions(16))
	shared := New(func() Options {
		o := DefaultOptions(16)
		o.SharedTables = true
		return o
	}())
	sim.New(c).Run(perDevice)
	sim.New(c).Run(shared)
	if len(shared.agents) > device.NumCategories {
		t.Errorf("shared-table mode created %d agents, want <= %d",
			len(shared.agents), device.NumCategories)
	}
	if len(perDevice.agents) <= device.NumCategories {
		t.Errorf("per-device mode created only %d agents", len(perDevice.agents))
	}
	if shared.MemoryBytes() >= perDevice.MemoryBytes() {
		t.Errorf("shared tables (%dB) should use less memory than per-device (%dB)",
			shared.MemoryBytes(), perDevice.MemoryBytes())
	}
}

func TestSharedTablesStillConverge(t *testing.T) {
	c := cfg(17)
	opts := DefaultOptions(18)
	opts.SharedTables = true
	res := sim.New(c).Run(New(opts))
	if !res.Converged {
		t.Errorf("shared-table AutoFL should still converge: %v", res)
	}
}

func TestControllerDeterminism(t *testing.T) {
	run := func() *sim.Result {
		return sim.New(cfg(19)).Run(New(DefaultOptions(20)))
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.EnergyToTargetJ != b.EnergyToTargetJ {
		t.Error("AutoFL runs with identical seeds must match")
	}
}

func TestExplorationRate(t *testing.T) {
	c := cfg(21)
	c.MaxRounds = 400
	c.TargetAccuracy = 1.1
	ctrl := New(DefaultOptions(22))
	eng := sim.New(c)
	explored := 0
	for round := 0; round < 400; round++ {
		ctx, res := eng.RunRound(ctrl, round, 0.5)
		ctrl.Feedback(ctx, res)
		if ctrl.Explored() {
			explored++
		}
	}
	rate := float64(explored) / 400
	if rate < 0.05 || rate > 0.17 {
		t.Errorf("exploration rate = %.3f, want ~0.10", rate)
	}
}

func TestFeedbackWithNilPendingIsSafe(t *testing.T) {
	c := New(DefaultOptions(23))
	c.Feedback(nil, &sim.RoundResult{}) // must not panic
}

func TestCalibrateCoUtilizationFallsBack(t *testing.T) {
	got := CalibrateCoUtilization(nil)
	want := DefaultBuckets().CoCPU
	if len(got) != len(want) {
		t.Errorf("empty calibration should fall back to Table 1 defaults")
	}
}

func TestStateKeyComposition(t *testing.T) {
	k := StateKey("g", "l")
	if k != "g|l" {
		t.Errorf("StateKey = %q", k)
	}
}

// randomPolicy mirrors the FedAvg-Random baseline without importing
// internal/policy (keeping this package's tests self-contained).
type randomPolicy struct {
	seed uint64
	s    *rng.Stream
}

func (p *randomPolicy) Name() string { return "random" }
func (p *randomPolicy) Select(ctx *sim.RoundContext) []sim.Selection {
	if p.s == nil {
		p.s = rng.New(p.seed)
	}
	var out []sim.Selection
	for _, i := range p.s.Sample(len(ctx.Devices), ctx.Params.K) {
		out = append(out, sim.Selection{Index: i, Target: device.CPU, Step: -1})
	}
	return out
}

func variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return v / float64(len(xs))
}
