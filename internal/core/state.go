// Package core implements AutoFL itself — the paper's contribution: a
// per-device Q-learning controller that, for every FL aggregation
// round, selects the K participant devices and each participant's
// execution target (CPU/GPU + DVFS level), maximizing energy
// efficiency subject to the accuracy requirement (§4).
//
// The controller plugs into the round engine as a sim.FeedbackPolicy:
// Select observes the Table 1 state features and ranks devices by
// their Q-values (Algorithm 1), Feedback computes the Eq (5)–(7)
// reward from the measured round and updates the Q-tables.
package core

import (
	"fmt"

	"autofl/internal/dbscan"
	"autofl/internal/network"
	"autofl/internal/qlearn"
	"autofl/internal/sim"
	"autofl/internal/workload"
)

// Buckets holds the discretization boundaries for the continuous state
// features of Table 1. The defaults reproduce the table; the DBSCAN
// calibration pipeline (Calibrate*) can re-derive them from observed
// feature samples, which is how the paper obtained them.
type Buckets struct {
	// CoCPU and CoMem are boundaries over co-runner utilization in
	// [0, 1]. A zero observation is always the dedicated "none"
	// bucket, per Table 1.
	CoCPU []float64
	CoMem []float64
	// NetworkMbps separates "bad" from "regular" bandwidth.
	NetworkMbps []float64
	// DataFraction buckets the fraction of data classes present.
	DataFraction []float64
	// Staleness buckets the device's last applied-update staleness
	// (sim.DeviceState.Staleness) in the asynchronous aggregation
	// regimes. Nil collapses the feature to a single bucket — hand-built
	// Buckets keep their pre-async state space, and every synchronous
	// observation (staleness 0) lands in bucket 0 either way.
	Staleness []float64
	// Battery buckets the device's state of charge in [0, 1]
	// (sim.DeviceState.Battery) when a battery model is attached. Nil —
	// the default — collapses the feature to a single bucket, keeping
	// the pre-battery state space; battery-less runs observe charge 0
	// and land in bucket 0 either way.
	Battery []float64
}

// DefaultBuckets returns the Table 1 thresholds. S_Data carries one
// extra boundary (0.55) over the published table: Table 1's buckets
// were DBSCAN-derived from the paper's population, and re-running the
// same derivation on Dirichlet(0.1) populations (where most devices
// hold 2–5 of the classes) splits the wide "medium" band — without it
// the controller cannot rank partially-covered devices, which Fig 11's
// Non-IID(100%) result depends on.
func DefaultBuckets() Buckets {
	return Buckets{
		CoCPU:        []float64{0.25, 0.75},
		CoMem:        []float64{0.25, 0.75},
		NetworkMbps:  []float64{network.RegularBandwidthMbps},
		DataFraction: []float64{0.25, 0.55, 1.0},
		// fresh | 1 version | 2–3 versions | ancient. In sync runs
		// every device sits in bucket 0, so the extra digit never
		// splits a synchronous state.
		Staleness: []float64{1, 2, 4},
	}
}

// CalibrateCoUtilization derives co-runner utilization boundaries from
// a sample of observations using DBSCAN, the procedure §4.1 describes
// for converting continuous features into Q-table states.
func CalibrateCoUtilization(samples []float64) []float64 {
	b := dbscan.Discretize(samples, 0.02, 5)
	if len(b) == 0 {
		return DefaultBuckets().CoCPU
	}
	return b
}

// Layer-count boundaries of Table 1 (NN-related features), extended
// with a leading boundary at 1 so that architectures *without* a layer
// kind occupy a dedicated "none" bucket — Table 1's small-bucket floor
// would otherwise merge a pure-recurrent model with a pure-conv one.
var (
	convBoundaries = []float64{1, 10, 20, 40}
	fcBoundaries   = []float64{1, 10}
	rcBoundaries   = []float64{1, 5, 10}
	bBoundaries    = []float64{8, 32}
	eBoundaries    = []float64{5, 10}
	kBoundaries    = []float64{10, 50}
)

// GlobalStateKey encodes the round-invariant state: NN layer mix
// (S_CONV, S_FC, S_RC) and global parameters (S_B, S_E, S_K).
func GlobalStateKey(w *workload.Model, p workload.GlobalParams) qlearn.State {
	conv, fc, rc := w.CountLayers()
	return qlearn.JoinState(
		fmt.Sprintf("c%d", dbscan.Bucket(float64(conv), convBoundaries)),
		fmt.Sprintf("f%d", dbscan.Bucket(float64(fc), fcBoundaries)),
		fmt.Sprintf("r%d", dbscan.Bucket(float64(rc), rcBoundaries)),
		fmt.Sprintf("b%d", dbscan.Bucket(float64(p.B), bBoundaries)),
		fmt.Sprintf("e%d", dbscan.Bucket(float64(p.E), eBoundaries)),
		fmt.Sprintf("k%d", dbscan.Bucket(float64(p.K), kBoundaries)),
	)
}

// LocalStateKey encodes one device's runtime-variance and data state:
// S_Co_CPU, S_Co_MEM, S_Network, S_Data, and the extensions S_Stale
// (last applied-update staleness; always bucket 0 in synchronous runs)
// and S_Batt (state of charge; always bucket 0 without a battery
// model).
func (b Buckets) LocalStateKey(ds *sim.DeviceState) qlearn.State {
	return qlearn.JoinState(
		fmt.Sprintf("u%d", bucketWithNone(ds.Load.CPUUtil, b.CoCPU)),
		fmt.Sprintf("m%d", bucketWithNone(ds.Load.MemUtil, b.CoMem)),
		fmt.Sprintf("n%d", dbscan.Bucket(ds.BandwidthMbps, b.NetworkMbps)),
		fmt.Sprintf("d%d", dbscan.Bucket(ds.Data.ClassFraction, b.DataFraction)),
		fmt.Sprintf("s%d", dbscan.Bucket(float64(ds.Staleness), b.Staleness)),
		fmt.Sprintf("y%d", dbscan.Bucket(ds.Battery, b.Battery)),
	)
}

// bucketWithNone reserves bucket 0 for exact-zero observations ("none"
// in Table 1) and shifts the boundary buckets up by one.
func bucketWithNone(v float64, boundaries []float64) int {
	if v == 0 {
		return 0
	}
	return 1 + dbscan.Bucket(v, boundaries)
}

// StateKey joins the global and local state for Q-table lookup —
// Q(S_global, S_local, A) of Algorithm 1.
func StateKey(global, local qlearn.State) qlearn.State {
	return qlearn.JoinState(string(global), string(local))
}

// StateCoder packs the Table 1 feature buckets into a single
// qlearn.StateKey using a mixed-radix encoding: each feature
// contributes one digit whose radix is its bucket count (static per
// run, since bucket boundaries are fixed at calibration time). Packed
// keys replace the fmt.Sprintf/JoinState string keys on the controller
// hot path — the string forms above remain the debug/serialization
// representation (see Format).
//
// The encoding is injective: every digit is strictly below its radix
// (dbscan.Bucket returns at most len(boundaries), bucketWithNone at
// most len(boundaries)+1), so distinct bucket combinations map to
// distinct keys. TestStateCoderInjective enumerates the full cross
// product to pin this.
type StateCoder struct {
	buckets Buckets
	// Global-feature radices (fixed package-level boundaries).
	nConv, nFC, nRC, nB, nE, nK uint64
	// Local-feature radices (derived from the Buckets in use).
	nU, nM, nN, nD, nS, nY uint64
	// localSpace is the number of distinct local states; the full key
	// is global*localSpace + local.
	localSpace uint64
}

// NewStateCoder derives the packing layout for a bucket configuration.
func NewStateCoder(b Buckets) StateCoder {
	c := StateCoder{
		buckets: b,
		nConv:   uint64(dbscan.NumBuckets(convBoundaries)),
		nFC:     uint64(dbscan.NumBuckets(fcBoundaries)),
		nRC:     uint64(dbscan.NumBuckets(rcBoundaries)),
		nB:      uint64(dbscan.NumBuckets(bBoundaries)),
		nE:      uint64(dbscan.NumBuckets(eBoundaries)),
		nK:      uint64(dbscan.NumBuckets(kBoundaries)),
		// bucketWithNone reserves one extra bucket for exact zero.
		nU: uint64(dbscan.NumBuckets(b.CoCPU)) + 1,
		nM: uint64(dbscan.NumBuckets(b.CoMem)) + 1,
		nN: uint64(dbscan.NumBuckets(b.NetworkMbps)),
		nD: uint64(dbscan.NumBuckets(b.DataFraction)),
		nS: uint64(dbscan.NumBuckets(b.Staleness)),
		nY: uint64(dbscan.NumBuckets(b.Battery)),
	}
	c.localSpace = c.nU * c.nM * c.nN * c.nD * c.nS * c.nY
	return c
}

// StateSpace returns the total number of encodable (global, local)
// states — the key space the interner draws from.
func (c StateCoder) StateSpace() uint64 {
	return c.nConv * c.nFC * c.nRC * c.nB * c.nE * c.nK * c.localSpace
}

// GlobalKey packs the round-invariant state (the packed counterpart of
// GlobalStateKey).
func (c StateCoder) GlobalKey(w *workload.Model, p workload.GlobalParams) qlearn.StateKey {
	conv, fc, rc := w.CountLayers()
	k := uint64(dbscan.Bucket(float64(conv), convBoundaries))
	k = k*c.nFC + uint64(dbscan.Bucket(float64(fc), fcBoundaries))
	k = k*c.nRC + uint64(dbscan.Bucket(float64(rc), rcBoundaries))
	k = k*c.nB + uint64(dbscan.Bucket(float64(p.B), bBoundaries))
	k = k*c.nE + uint64(dbscan.Bucket(float64(p.E), eBoundaries))
	k = k*c.nK + uint64(dbscan.Bucket(float64(p.K), kBoundaries))
	return qlearn.StateKey(k)
}

// LocalKey packs one device's runtime-variance and data state (the
// packed counterpart of LocalStateKey).
func (c StateCoder) LocalKey(ds *sim.DeviceState) qlearn.StateKey {
	k := uint64(bucketWithNone(ds.Load.CPUUtil, c.buckets.CoCPU))
	k = k*c.nM + uint64(bucketWithNone(ds.Load.MemUtil, c.buckets.CoMem))
	k = k*c.nN + uint64(dbscan.Bucket(ds.BandwidthMbps, c.buckets.NetworkMbps))
	k = k*c.nD + uint64(dbscan.Bucket(ds.Data.ClassFraction, c.buckets.DataFraction))
	k = k*c.nS + uint64(dbscan.Bucket(float64(ds.Staleness), c.buckets.Staleness))
	k = k*c.nY + uint64(dbscan.Bucket(ds.Battery, c.buckets.Battery))
	return qlearn.StateKey(k)
}

// Key joins a packed global key with a device's packed local state —
// the packed counterpart of StateKey(GlobalStateKey(…),
// LocalStateKey(…)).
func (c StateCoder) Key(global qlearn.StateKey, ds *sim.DeviceState) qlearn.StateKey {
	return qlearn.StateKey(uint64(global)*c.localSpace) + c.LocalKey(ds)
}

// Format renders a packed key in the legacy string-key layout
// ("c…|f…|r…|b…|e…|k…|u…|m…|n…|d…|s…|y…") by peeling the mixed-radix
// digits back off — the debug/serialization bridge between the two
// forms.
func (c StateCoder) Format(k qlearn.StateKey) string {
	v := uint64(k)
	digits := [12]uint64{}
	radices := [12]uint64{c.nConv, c.nFC, c.nRC, c.nB, c.nE, c.nK, c.nU, c.nM, c.nN, c.nD, c.nS, c.nY}
	for i := len(radices) - 1; i >= 0; i-- {
		digits[i] = v % radices[i]
		v /= radices[i]
	}
	return string(qlearn.JoinState(
		fmt.Sprintf("c%d", digits[0]),
		fmt.Sprintf("f%d", digits[1]),
		fmt.Sprintf("r%d", digits[2]),
		fmt.Sprintf("b%d", digits[3]),
		fmt.Sprintf("e%d", digits[4]),
		fmt.Sprintf("k%d", digits[5]),
		fmt.Sprintf("u%d", digits[6]),
		fmt.Sprintf("m%d", digits[7]),
		fmt.Sprintf("n%d", digits[8]),
		fmt.Sprintf("d%d", digits[9]),
		fmt.Sprintf("s%d", digits[10]),
		fmt.Sprintf("y%d", digits[11]),
	))
}
