package core

import (
	"testing"

	"autofl/internal/data"
	"autofl/internal/dbscan"
	"autofl/internal/device"
	"autofl/internal/interference"
	"autofl/internal/qlearn"
	"autofl/internal/sim"
	"autofl/internal/workload"
)

// bucketSamples returns one representative value per bucket of a
// boundary set: a value strictly inside every interval, plus the
// boundary values themselves (which belong to the bucket above, per
// dbscan.Bucket).
func bucketSamples(boundaries []float64) []float64 {
	out := []float64{boundaries[0] - 1}
	for i, b := range boundaries {
		out = append(out, b)
		if i+1 < len(boundaries) {
			out = append(out, (b+boundaries[i+1])/2)
		} else {
			out = append(out, b+1)
		}
	}
	return out
}

func modelWithLayers(conv, fc, rc int) *workload.Model {
	m := &workload.Model{Name: "synthetic", Dataset: workload.CNNMNIST().Dataset}
	for i := 0; i < conv; i++ {
		m.Layers = append(m.Layers, workload.Layer{Kind: workload.Conv})
	}
	for i := 0; i < fc; i++ {
		m.Layers = append(m.Layers, workload.Layer{Kind: workload.FC})
	}
	for i := 0; i < rc; i++ {
		m.Layers = append(m.Layers, workload.Layer{Kind: workload.RC})
	}
	return m
}

// deviceStateFor builds a DeviceState hitting the given raw feature
// values (staleness 0, the synchronous default).
func deviceStateFor(cpu, mem, bw, frac float64) sim.DeviceState {
	return sim.DeviceState{
		Device:        device.DefaultFleet()[0],
		Load:          interference.Load{CPUUtil: cpu, MemUtil: mem},
		BandwidthMbps: bw,
		Data:          &data.DeviceData{ClassFraction: frac},
	}
}

// TestStateCoderInjective enumerates every reachable bucket
// combination — all global layer/parameter buckets crossed with all
// local runtime/data buckets — and checks that (1) the packed key is
// injective over bucket combinations, and (2) the packed key agrees
// with the legacy string key: two states share a packed key exactly
// when they share the string key.
func TestStateCoderInjective(t *testing.T) {
	b := DefaultBuckets()
	coder := NewStateCoder(b)

	convVals := []int{0, 1, 5, 15, 30, 50}
	fcVals := []int{0, 1, 5, 20}
	rcVals := []int{0, 1, 3, 7, 20}
	bVals := []int{4, 8, 16, 32}
	eVals := []int{1, 5, 8, 10, 20}
	kVals := []int{5, 10, 30, 50, 80}

	globalSeen := map[qlearn.State]qlearn.StateKey{}
	packedSeen := map[qlearn.StateKey]qlearn.State{}
	for _, conv := range convVals {
		for _, fc := range fcVals {
			for _, rc := range rcVals {
				w := modelWithLayers(conv, fc, rc)
				for _, bb := range bVals {
					for _, e := range eVals {
						for _, k := range kVals {
							p := workload.GlobalParams{B: bb, E: e, K: k}
							str := GlobalStateKey(w, p)
							packed := coder.GlobalKey(w, p)
							if prev, ok := globalSeen[str]; ok && prev != packed {
								t.Fatalf("string key %s mapped to two packed keys: %d, %d", str, prev, packed)
							}
							if prev, ok := packedSeen[packed]; ok && prev != str {
								t.Fatalf("packed key %d collides: %s vs %s", packed, prev, str)
							}
							globalSeen[str] = packed
							packedSeen[packed] = str
						}
					}
				}
			}
		}
	}

	// Local cross product: zero plus one value per co-utilization
	// bucket, every bandwidth, data-fraction, and staleness bucket.
	cpuVals := append([]float64{0}, bucketSamplesPositive(b.CoCPU)...)
	memVals := append([]float64{0}, bucketSamplesPositive(b.CoMem)...)
	bwVals := bucketSamples(b.NetworkMbps)
	fracVals := bucketSamplesPositive(b.DataFraction)
	staleVals := []int{0, 1, 2, 3, 4, 9}

	localSeen := map[qlearn.State]qlearn.StateKey{}
	localPacked := map[qlearn.StateKey]qlearn.State{}
	for _, cpu := range cpuVals {
		for _, mem := range memVals {
			for _, bw := range bwVals {
				for _, frac := range fracVals {
					for _, stale := range staleVals {
						ds := deviceStateFor(cpu, mem, bw, frac)
						ds.Staleness = stale
						str := b.LocalStateKey(&ds)
						packed := coder.LocalKey(&ds)
						if prev, ok := localSeen[str]; ok && prev != packed {
							t.Fatalf("local string key %s mapped to two packed keys", str)
						}
						if prev, ok := localPacked[packed]; ok && prev != str {
							t.Fatalf("local packed key %d collides: %s vs %s", packed, prev, str)
						}
						localSeen[str] = packed
						localPacked[packed] = str
					}
				}
			}
		}
	}

	// Joined keys: every (global, local) pair distinct, and the debug
	// Format matches the legacy string form exactly.
	joined := map[qlearn.StateKey]bool{}
	for gStr, gPacked := range globalSeen {
		for lStr, lPacked := range localSeen {
			full := qlearn.StateKey(uint64(gPacked)*coder.localSpace) + lPacked
			// Spot-check Key() agrees via a reconstructed device state
			// below; here check uniqueness and formatting.
			if joined[full] {
				t.Fatalf("joined key %d not unique", full)
			}
			joined[full] = true
			if got, want := coder.Format(full), string(StateKey(gStr, lStr)); got != want {
				t.Fatalf("Format(%d) = %q, want legacy %q", full, got, want)
			}
		}
	}
	if uint64(len(joined)) > coder.StateSpace() {
		t.Fatalf("enumerated %d keys exceeds declared state space %d", len(joined), coder.StateSpace())
	}
}

// bucketSamplesPositive is bucketSamples restricted to positive values
// (utilization and fractions cannot go below zero, and zero is the
// dedicated "none" bucket for co-utilization features).
func bucketSamplesPositive(boundaries []float64) []float64 {
	var out []float64
	for _, v := range bucketSamples(boundaries) {
		if v > 0 {
			out = append(out, v)
		}
	}
	return out
}

// TestStateCoderMatchesControllerKey pins the composed Key() path the
// controller uses to the two-step global+local form.
func TestStateCoderMatchesControllerKey(t *testing.T) {
	b := DefaultBuckets()
	coder := NewStateCoder(b)
	w := workload.CNNMNIST()
	p := workload.S3
	g := coder.GlobalKey(w, p)
	stale := deviceStateFor(0.2, 0.4, 30, 0.8)
	stale.Staleness = 3
	for _, ds := range []sim.DeviceState{
		deviceStateFor(0, 0, 100, 1),
		deviceStateFor(0.5, 0.9, 20, 0.3),
		deviceStateFor(0.1, 0, 50, 0.6),
		stale,
	} {
		full := coder.Key(g, &ds)
		want := string(StateKey(GlobalStateKey(w, p), b.LocalStateKey(&ds)))
		if got := coder.Format(full); got != want {
			t.Errorf("Key/Format = %q, want %q", got, want)
		}
	}
}

// TestStateCoderSpace sanity-checks the declared key-space size for
// the default buckets: small enough that a uint64 never overflows and
// the dense interner stays compact.
func TestStateCoderSpace(t *testing.T) {
	coder := NewStateCoder(DefaultBuckets())
	// 5*3*4*3*3*3 global × 4*4*2*4*4 local = 1620 × 512 (the trailing
	// ×4 is the async staleness digit).
	if got := coder.StateSpace(); got != 1620*512 {
		t.Errorf("StateSpace = %d, want %d", got, 1620*512)
	}
	// A Buckets without staleness boundaries keeps the pre-async local
	// space: the digit collapses to radix 1.
	legacy := DefaultBuckets()
	legacy.Staleness = nil
	if got := NewStateCoder(legacy).StateSpace(); got != 1620*128 {
		t.Errorf("StateSpace without staleness buckets = %d, want %d", got, 1620*128)
	}
	// Battery buckets multiply the local space; the nil default keeps
	// the battery digit at radix 1 (pinned by the 1620*512 check above).
	batt := DefaultBuckets()
	batt.Battery = []float64{0.25, 0.6}
	if got := NewStateCoder(batt).StateSpace(); got != 1620*512*3 {
		t.Errorf("StateSpace with 2 battery boundaries = %d, want %d", got, 1620*512*3)
	}
}

// TestStateCoderBatteryDigit checks the battery state-of-charge digit:
// distinct charge buckets produce distinct packed keys and Format stays
// in lockstep with the legacy string key.
func TestStateCoderBatteryDigit(t *testing.T) {
	b := DefaultBuckets()
	b.Battery = []float64{0.25, 0.6}
	coder := NewStateCoder(b)
	w := workload.CNNMNIST()
	p := workload.S3
	g := coder.GlobalKey(w, p)

	seen := map[qlearn.StateKey]float64{}
	for _, charge := range []float64{0, 0.1, 0.25, 0.4, 0.6, 0.9, 1} {
		ds := deviceStateFor(0.2, 0.4, 30, 0.8)
		ds.Battery = charge
		full := coder.Key(g, &ds)
		want := string(StateKey(GlobalStateKey(w, p), b.LocalStateKey(&ds)))
		if got := coder.Format(full); got != want {
			t.Errorf("charge %g: Format = %q, want legacy %q", charge, got, want)
		}
		for prev, pc := range seen {
			sameBucket := dbscan.Bucket(charge, b.Battery) == dbscan.Bucket(pc, b.Battery)
			if (full == prev) != sameBucket {
				t.Errorf("charges %g and %g: key equality %v, same bucket %v", charge, pc, full == prev, sameBucket)
			}
		}
		seen[full] = charge
	}
}
