// Package data models federated data heterogeneity: how the training
// classes are distributed over the device population. It implements
// the paper's four distribution scenarios (§5.2) — Ideal IID and
// Non-IID (50% / 75% / 100%) — with non-IID devices receiving class
// proportions drawn from a Dirichlet distribution with concentration
// 0.1, exactly the construction the paper uses.
//
// The output of partitioning is, per device: the set of classes
// present, the fraction of all classes held (the S_Data state feature
// of Table 1), the local sample count, and an "IID quality" score that
// the convergence model consumes.
package data

import (
	"fmt"

	"autofl/internal/rng"
)

// DirichletAlpha is the concentration parameter the paper uses for
// non-IID class splits; smaller values concentrate each class on fewer
// devices.
const DirichletAlpha = 0.1

// Scenario names a population-level heterogeneity setting.
type Scenario struct {
	// Name identifies the scenario in experiment output.
	Name string
	// NonIIDFraction is the fraction of devices with non-IID data; the
	// remainder hold samples from all classes.
	NonIIDFraction float64
}

// The paper's four data-distribution scenarios.
var (
	IdealIID  = Scenario{Name: "Ideal IID", NonIIDFraction: 0}
	NonIID50  = Scenario{Name: "Non-IID (50%)", NonIIDFraction: 0.50}
	NonIID75  = Scenario{Name: "Non-IID (75%)", NonIIDFraction: 0.75}
	NonIID100 = Scenario{Name: "Non-IID (100%)", NonIIDFraction: 1.00}
)

// Scenarios lists the paper's four settings in order of increasing
// heterogeneity.
func Scenarios() []Scenario {
	return []Scenario{IdealIID, NonIID50, NonIID75, NonIID100}
}

// NonIID constructs a custom scenario with the given non-IID device
// fraction.
func NonIID(fraction float64) Scenario {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	return Scenario{Name: fmt.Sprintf("Non-IID (%.0f%%)", fraction*100), NonIIDFraction: fraction}
}

// DeviceData is one device's local dataset summary.
type DeviceData struct {
	// Classes lists the label classes present locally.
	Classes []int
	// ClassFraction is len(Classes) / totalClasses — the S_Data
	// feature.
	ClassFraction float64
	// Samples is the local training-sample count.
	Samples int
	// IID reports whether the device was assigned the IID split.
	IID bool
	// Proportions holds the per-class sample proportions for non-IID
	// devices (indexed by class id); nil for IID devices.
	Proportions []float64
	// Quality, when positive, is a precomputed IIDQuality value. The
	// packed population partition stores per-device quality as one
	// float instead of a Proportions slice; legacy partitions leave it
	// zero and IIDQuality derives the score from Proportions as before.
	Quality float64
}

// IIDQuality scores how well this device's update approximates an
// unbiased gradient, in [0, 1]: 1 for IID devices, and for non-IID
// devices a value that shrinks as the local class distribution
// concentrates. It combines class coverage with the effective number
// of classes (inverse Simpson index) of the local distribution, so a
// device holding 3 classes at (0.98, 0.01, 0.01) scores close to a
// single-class device.
func (d *DeviceData) IIDQuality() float64 {
	if d.IID {
		return 1
	}
	if d.Quality > 0 {
		return d.Quality
	}
	if len(d.Proportions) == 0 {
		return d.ClassFraction
	}
	sumSq := 0.0
	for _, p := range d.Proportions {
		sumSq += p * p
	}
	if sumSq == 0 {
		return 0
	}
	effective := 1 / sumSq // effective number of classes
	total := float64(len(d.Proportions))
	q := effective / total
	if q > 1 {
		q = 1
	}
	return q
}

// Partition assigns local datasets to n devices under the scenario.
// classes is the number of label classes; meanSamples the average
// local sample count. Non-IID devices are chosen uniformly at random,
// and their class proportions are drawn from Dirichlet(alpha). Sample
// counts vary ±30% around the mean, reflecting unbalanced federated
// data.
func Partition(s *rng.Stream, scenario Scenario, n, classes, meanSamples int) []DeviceData {
	if n <= 0 {
		return nil
	}
	out := make([]DeviceData, n)
	nonIIDCount := int(float64(n)*scenario.NonIIDFraction + 0.5)
	nonIID := make(map[int]bool, nonIIDCount)
	for _, idx := range s.Sample(n, nonIIDCount) {
		nonIID[idx] = true
	}
	for i := range out {
		samples := int(s.ClampedNormal(float64(meanSamples), 0.15*float64(meanSamples),
			0.7*float64(meanSamples), 1.3*float64(meanSamples)))
		if samples < 1 {
			samples = 1
		}
		if !nonIID[i] {
			all := make([]int, classes)
			for c := range all {
				all[c] = c
			}
			out[i] = DeviceData{Classes: all, ClassFraction: 1, Samples: samples, IID: true}
			continue
		}
		props := s.Dirichlet(DirichletAlpha, classes)
		// A class is "present" if the device would hold at least one
		// sample of it.
		var present []int
		for c, p := range props {
			if p*float64(samples) >= 1 {
				present = append(present, c)
			}
		}
		if len(present) == 0 {
			// Degenerate draw: keep the single largest class.
			best := 0
			for c, p := range props {
				if p > props[best] {
					best = c
				}
			}
			present = []int{best}
		}
		out[i] = DeviceData{
			Classes:       present,
			ClassFraction: float64(len(present)) / float64(classes),
			Samples:       samples,
			IID:           false,
			Proportions:   props,
		}
	}
	return out
}

// MeanIIDQuality averages IIDQuality over a population — a scalar
// summary used by tests and experiment output.
func MeanIIDQuality(devices []DeviceData) float64 {
	if len(devices) == 0 {
		return 0
	}
	total := 0.0
	for i := range devices {
		total += devices[i].IIDQuality()
	}
	return total / float64(len(devices))
}
