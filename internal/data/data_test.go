package data

import (
	"math"
	"testing"
	"testing/quick"

	"autofl/internal/rng"
)

func TestIdealIIDAllDevicesComplete(t *testing.T) {
	s := rng.New(1)
	devices := Partition(s, IdealIID, 50, 10, 300)
	if len(devices) != 50 {
		t.Fatalf("got %d devices, want 50", len(devices))
	}
	for i, d := range devices {
		if !d.IID {
			t.Errorf("device %d not IID under IdealIID", i)
		}
		if len(d.Classes) != 10 || d.ClassFraction != 1 {
			t.Errorf("device %d holds %d classes, want all 10", i, len(d.Classes))
		}
		if d.IIDQuality() != 1 {
			t.Errorf("device %d IID quality = %v, want 1", i, d.IIDQuality())
		}
	}
}

func TestNonIIDFractionRespected(t *testing.T) {
	s := rng.New(2)
	for _, sc := range []Scenario{NonIID50, NonIID75, NonIID100} {
		devices := Partition(s, sc, 200, 10, 300)
		nonIID := 0
		for _, d := range devices {
			if !d.IID {
				nonIID++
			}
		}
		want := int(200*sc.NonIIDFraction + 0.5)
		if nonIID != want {
			t.Errorf("%s: %d non-IID devices, want %d", sc.Name, nonIID, want)
		}
	}
}

func TestDirichletConcentratesClasses(t *testing.T) {
	// With alpha = 0.1 and 10 classes, non-IID devices should hold
	// only a few classes each on average — far fewer than all 10.
	s := rng.New(3)
	devices := Partition(s, NonIID100, 200, 10, 300)
	totalClasses := 0.0
	for _, d := range devices {
		if len(d.Classes) == 0 {
			t.Fatal("device with zero classes")
		}
		totalClasses += float64(len(d.Classes))
	}
	mean := totalClasses / 200
	if mean > 5 {
		t.Errorf("mean classes per non-IID device = %.2f, want strongly concentrated (< 5)", mean)
	}
	if mean < 1 {
		t.Errorf("mean classes per device = %.2f, want >= 1", mean)
	}
}

func TestIIDQualityOrdering(t *testing.T) {
	s := rng.New(4)
	qualities := make([]float64, 0, 4)
	for _, sc := range Scenarios() {
		devices := Partition(s, sc, 200, 10, 300)
		qualities = append(qualities, MeanIIDQuality(devices))
	}
	for i := 1; i < len(qualities); i++ {
		if qualities[i] >= qualities[i-1] {
			t.Errorf("mean IID quality should fall with heterogeneity: %v", qualities)
		}
	}
}

func TestIIDQualityConcentrationSensitive(t *testing.T) {
	// A device with near-uniform proportions over its classes scores
	// higher than one dominated by a single class, even with equal
	// class counts.
	uniform := DeviceData{
		Proportions:   []float64{0.25, 0.25, 0.25, 0.25},
		Classes:       []int{0, 1, 2, 3},
		ClassFraction: 1,
	}
	skewed := DeviceData{
		Proportions:   []float64{0.97, 0.01, 0.01, 0.01},
		Classes:       []int{0, 1, 2, 3},
		ClassFraction: 1,
	}
	if uniform.IIDQuality() <= skewed.IIDQuality() {
		t.Errorf("uniform quality %v should beat skewed %v", uniform.IIDQuality(), skewed.IIDQuality())
	}
	if q := uniform.IIDQuality(); math.Abs(q-1) > 1e-9 {
		t.Errorf("uniform over all classes should score 1, got %v", q)
	}
}

func TestIIDQualityEdgeCases(t *testing.T) {
	d := DeviceData{IID: true}
	if d.IIDQuality() != 1 {
		t.Error("IID device must score 1")
	}
	d = DeviceData{ClassFraction: 0.3}
	if d.IIDQuality() != 0.3 {
		t.Error("missing proportions should fall back to class fraction")
	}
	d = DeviceData{Proportions: []float64{0, 0}}
	if d.IIDQuality() != 0 {
		t.Error("all-zero proportions should score 0")
	}
}

func TestSampleCountsVaryAroundMean(t *testing.T) {
	s := rng.New(5)
	devices := Partition(s, IdealIID, 500, 10, 300)
	lo, hi, total := math.MaxInt, 0, 0
	for _, d := range devices {
		if d.Samples < lo {
			lo = d.Samples
		}
		if d.Samples > hi {
			hi = d.Samples
		}
		total += d.Samples
	}
	mean := float64(total) / 500
	if mean < 270 || mean > 330 {
		t.Errorf("mean samples = %.1f, want ~300", mean)
	}
	if lo < 210 || hi > 390 {
		t.Errorf("sample range [%d, %d] outside the ±30%% clamp", lo, hi)
	}
	if lo == hi {
		t.Error("sample counts should vary across devices")
	}
}

func TestPartitionDeterminism(t *testing.T) {
	a := Partition(rng.New(7), NonIID75, 100, 10, 300)
	b := Partition(rng.New(7), NonIID75, 100, 10, 300)
	for i := range a {
		if a[i].Samples != b[i].Samples || a[i].IID != b[i].IID || len(a[i].Classes) != len(b[i].Classes) {
			t.Fatalf("partition not deterministic at device %d", i)
		}
	}
}

func TestNonIIDConstructorClamps(t *testing.T) {
	if NonIID(-0.5).NonIIDFraction != 0 {
		t.Error("negative fraction should clamp to 0")
	}
	if NonIID(1.5).NonIIDFraction != 1 {
		t.Error("fraction > 1 should clamp to 1")
	}
	if NonIID(0.6).Name != "Non-IID (60%)" {
		t.Errorf("name = %q", NonIID(0.6).Name)
	}
}

func TestPartitionEmpty(t *testing.T) {
	if got := Partition(rng.New(1), IdealIID, 0, 10, 300); got != nil {
		t.Errorf("Partition with n=0 = %v, want nil", got)
	}
}

func TestMeanIIDQualityEmpty(t *testing.T) {
	if MeanIIDQuality(nil) != 0 {
		t.Error("MeanIIDQuality(nil) should be 0")
	}
}

// Property: every partition yields devices whose class fraction is in
// (0, 1], whose quality is in [0, 1], and whose classes are valid ids.
func TestPartitionInvariantsProperty(t *testing.T) {
	s := rng.New(11)
	f := func(fracRaw, classRaw uint8) bool {
		frac := float64(fracRaw) / 255
		classes := int(classRaw)%20 + 2
		devices := Partition(s, NonIID(frac), 40, classes, 100)
		for _, d := range devices {
			if d.ClassFraction <= 0 || d.ClassFraction > 1 {
				return false
			}
			q := d.IIDQuality()
			if q < 0 || q > 1 {
				return false
			}
			for _, c := range d.Classes {
				if c < 0 || c >= classes {
					return false
				}
			}
			if d.Samples < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
