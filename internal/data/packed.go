package data

import (
	"math"
	"math/bits"
	"runtime"
	"sync"

	"autofl/internal/rng"
)

// Packed is the struct-of-arrays form of a data partition, sized for
// million-device populations: 20 bytes of resident state per device
// instead of a DeviceData struct with two heap slices. Class identity
// is kept as a 64-bit coverage mask (see ClassBuckets) — enough for
// the convergence model's class-coverage term — and per-device update
// quality is precomputed into one float32, so the round loop never
// touches a Proportions slice.
//
// Packed is generated with per-device keyed streams (rng.Mix of the
// partition seed and the device index), so the assignment for device i
// is a pure function of (seed, i): independent of generation order,
// worker count, and population size. It is therefore NOT draw-for-draw
// identical to the sequential Partition — the packed population is its
// own sampled realization of the same scenario distribution.
type Packed struct {
	// Classes is the label-class count of the workload.
	Classes int
	// Buckets is the coverage-mask width: min(Classes, 64).
	Buckets int
	// Mask holds per-device class-coverage bitmasks (bit b set when
	// the device holds a class mapping to bucket b).
	Mask []uint64
	// Quality holds per-device IID-quality scores in [0, 1].
	Quality []float32
	// ClassFrac holds per-device class fractions (the S_Data feature).
	ClassFrac []float32
	// Samples holds per-device local sample counts.
	Samples []int32
}

// classBucket maps a class id to its coverage-mask bit: the identity
// for ≤ 64 classes, a range partition above (ImageNet's 1000 classes
// fold into 64 contiguous buckets).
func classBucket(c, classes int) int {
	if classes <= 64 {
		return c
	}
	return c * 64 / classes
}

// PackedPartition assigns local datasets to n devices under the
// scenario, in cohort form. Each device's draws come from its own
// keyed stream; non-IID status is an independent Bernoulli draw per
// device (the sequential Partition picks an exact count — at
// population scale the binomial concentrates to the same fraction).
// workers bounds generation parallelism; 0 selects GOMAXPROCS.
func PackedPartition(seed uint64, scenario Scenario, n, classes, meanSamples, workers int) *Packed {
	buckets := classes
	if buckets > 64 {
		buckets = 64
	}
	p := &Packed{
		Classes:   classes,
		Buckets:   buckets,
		Mask:      make([]uint64, n),
		Quality:   make([]float32, n),
		ClassFrac: make([]float32, n),
		Samples:   make([]int32, n),
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return p
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := rng.NewReseedable()
			props := make([]float64, classes)
			for i := lo; i < hi; i++ {
				p.generate(rs.Seed(rng.Mix(seed, 0, uint64(i))), scenario, i, meanSamples, props)
			}
		}()
	}
	wg.Wait()
	return p
}

// generate draws device i's assignment from its keyed stream. The
// draw order per device mirrors Partition's per-device order (samples,
// then the non-IID decision, then proportions).
func (p *Packed) generate(s *rng.Stream, scenario Scenario, i, meanSamples int, props []float64) {
	samples := int32(s.ClampedNormal(float64(meanSamples), 0.15*float64(meanSamples),
		0.7*float64(meanSamples), 1.3*float64(meanSamples)))
	if samples < 1 {
		samples = 1
	}
	p.Samples[i] = samples
	if !s.Bool(scenario.NonIIDFraction) {
		p.Mask[i] = fullMask(p.Buckets)
		p.Quality[i] = 1
		p.ClassFrac[i] = 1
		return
	}
	// Dirichlet proportions, reduced on the fly to the three scalars
	// the round loop needs: present-class count, coverage mask, and
	// the inverse-Simpson quality score.
	dirichletInto(s, DirichletAlpha, props)
	var mask uint64
	present := 0
	sumSq := 0.0
	best := 0
	for c, pr := range props {
		sumSq += pr * pr
		if pr > props[best] {
			best = c
		}
		if pr*float64(samples) >= 1 {
			present++
			mask |= 1 << classBucket(c, p.Classes)
		}
	}
	if present == 0 {
		// Degenerate draw: keep the single largest class.
		present = 1
		mask = 1 << classBucket(best, p.Classes)
	}
	p.Mask[i] = mask
	p.ClassFrac[i] = float32(present) / float32(p.Classes)
	q := 1.0
	if sumSq > 0 {
		q = 1 / sumSq / float64(len(props)) // effective classes / total
	}
	if q > 1 {
		q = 1
	}
	// A zero quality would read as "unset" (DeviceData.Quality uses 0
	// as the legacy sentinel); the score is strictly positive anyway
	// for any non-degenerate draw, so clamp to a tiny floor.
	if q < 1e-9 {
		q = 1e-9
	}
	p.Quality[i] = float32(q)
}

// dirichletInto is Stream.Dirichlet without the allocation: a
// symmetric Dirichlet draw written into the caller's scratch.
func dirichletInto(s *rng.Stream, alpha float64, out []float64) {
	sum := 0.0
	for i := range out {
		g := s.Gamma(alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		for i := range out {
			out[i] = 0
		}
		out[s.IntN(len(out))] = 1
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

func fullMask(buckets int) uint64 {
	if buckets >= 64 {
		return math.MaxUint64
	}
	return 1<<buckets - 1
}

// Len is the population size.
func (p *Packed) Len() int { return len(p.Samples) }

// Coverage returns the fraction of class buckets covered by the union
// mask m.
func (p *Packed) Coverage(m uint64) float64 {
	return float64(bits.OnesCount64(m)) / float64(p.Buckets)
}

// MemoryBytes is the resident size of the packed arrays.
func (p *Packed) MemoryBytes() int {
	return len(p.Mask)*8 + len(p.Quality)*4 + len(p.ClassFrac)*4 + len(p.Samples)*4
}

// MeanQuality averages the per-device quality — the packed analogue of
// MeanIIDQuality, used by distribution tests.
func (p *Packed) MeanQuality() float64 {
	if p.Len() == 0 {
		return 0
	}
	total := 0.0
	for _, q := range p.Quality {
		total += float64(q)
	}
	return total / float64(p.Len())
}
