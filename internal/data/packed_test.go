package data

import (
	"math/bits"
	"testing"

	"autofl/internal/rng"
)

// TestPackedWorkerInvariance pins the keyed-stream property the
// parallel generator rests on: the assignment for device i is a pure
// function of (seed, i), so the worker count must not change a byte.
func TestPackedWorkerInvariance(t *testing.T) {
	const n = 2000
	a := PackedPartition(42, NonIID75, n, 10, 500, 1)
	b := PackedPartition(42, NonIID75, n, 10, 500, 7)
	for i := 0; i < n; i++ {
		if a.Mask[i] != b.Mask[i] || a.Quality[i] != b.Quality[i] ||
			a.ClassFrac[i] != b.ClassFrac[i] || a.Samples[i] != b.Samples[i] {
			t.Fatalf("device %d differs between 1-worker and 7-worker generation", i)
		}
	}
}

func TestPackedIIDDevices(t *testing.T) {
	p := PackedPartition(1, IdealIID, 100, 10, 500, 0)
	full := uint64(1<<10 - 1)
	for i := 0; i < p.Len(); i++ {
		if p.Mask[i] != full {
			t.Fatalf("IID device %d mask %#x, want full coverage", i, p.Mask[i])
		}
		if p.Quality[i] != 1 || p.ClassFrac[i] != 1 {
			t.Fatalf("IID device %d quality=%v frac=%v, want 1", i, p.Quality[i], p.ClassFrac[i])
		}
		if p.Samples[i] < 350 || p.Samples[i] > 650 {
			t.Fatalf("device %d samples %d outside the clamped normal band", i, p.Samples[i])
		}
	}
	if p.Coverage(full) != 1 {
		t.Errorf("Coverage(full) = %v, want 1", p.Coverage(full))
	}
}

// TestPackedNonIIDStatistics checks the packed realization against the
// sequential Partition's distribution: same scenario, same scale of
// mean quality and sparse per-device coverage. The two are independent
// realizations, so the comparison is statistical, not byte-wise.
func TestPackedNonIIDStatistics(t *testing.T) {
	const n, classes = 5000, 10
	p := PackedPartition(9, NonIID100, n, classes, 500, 0)
	legacy := Partition(rng.New(9), NonIID100, n, classes, 500)

	pq, lq := p.MeanQuality(), MeanIIDQuality(legacy)
	if diff := pq - lq; diff < -0.05 || diff > 0.05 {
		t.Errorf("mean quality: packed %v vs legacy %v", pq, lq)
	}
	// Dirichlet(0.1) concentrates mass on few classes: every device
	// covers at least one class, and mean coverage sits well below full.
	totalBits := 0
	for i := 0; i < n; i++ {
		c := bits.OnesCount64(p.Mask[i])
		if c == 0 {
			t.Fatalf("device %d has an empty mask", i)
		}
		totalBits += c
		if p.Quality[i] <= 0 {
			t.Fatalf("device %d: non-positive quality %v (0 is the unset sentinel)", i, p.Quality[i])
		}
	}
	if mean := float64(totalBits) / n; mean > 0.8*classes {
		t.Errorf("mean class coverage %v of %d classes — not concentrated", mean, classes)
	}
}

// TestPackedBucketFolding pins the >64-class fold: ImageNet's 1000
// classes map onto a 64-bucket mask.
func TestPackedBucketFolding(t *testing.T) {
	p := PackedPartition(3, NonIID100, 200, 1000, 500, 0)
	if p.Buckets != 64 {
		t.Fatalf("Buckets = %d, want 64", p.Buckets)
	}
	for i := 0; i < p.Len(); i++ {
		if p.Mask[i] == 0 {
			t.Fatalf("device %d has an empty mask", i)
		}
	}
	if got, want := classBucket(999, 1000), 63; got != want {
		t.Errorf("classBucket(999, 1000) = %d, want %d", got, want)
	}
	if got := classBucket(5, 10); got != 5 {
		t.Errorf("classBucket identity below 64 classes broken: %d", got)
	}
}

func TestPackedMemoryBytes(t *testing.T) {
	const n = 1234
	p := PackedPartition(1, IdealIID, n, 10, 500, 0)
	if got, want := p.MemoryBytes(), n*20; got != want {
		t.Errorf("MemoryBytes = %d, want %d (20 B/device)", got, want)
	}
}

// TestDeviceDataQualityOverride pins the Quality field the packed
// candidate view feeds through DeviceData: set, it short-circuits
// IIDQuality; zero keeps the legacy proportions path.
func TestDeviceDataQualityOverride(t *testing.T) {
	d := DeviceData{Quality: 0.25}
	if got := d.IIDQuality(); got != 0.25 {
		t.Errorf("explicit quality: IIDQuality = %v, want 0.25", got)
	}
	iid := DeviceData{IID: true}
	if got := iid.IIDQuality(); got != 1 {
		t.Errorf("IID device: IIDQuality = %v, want 1", got)
	}
}
