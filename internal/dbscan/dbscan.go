// Package dbscan implements the DBSCAN density-based clustering
// algorithm. AutoFL (§4.1) uses DBSCAN to convert continuous state
// features — co-runner CPU utilization, memory usage, network
// bandwidth, data-class fraction — into the discrete buckets of its
// Q-learning state space (Table 1 of the paper).
//
// The package provides the general n-dimensional algorithm plus a
// one-dimensional convenience pipeline (Discretize) that turns a sample
// of scalar feature observations into ordered bucket boundaries.
package dbscan

import (
	"math"
	"sort"
)

// Noise is the label assigned to points that belong to no cluster.
const Noise = -1

// Cluster runs DBSCAN over the given points with neighborhood radius
// eps and density threshold minPts. It returns one label per point:
// cluster ids are dense integers starting at 0, and outliers receive
// the Noise label. Distances are Euclidean.
func Cluster(points [][]float64, eps float64, minPts int) []int {
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 || eps <= 0 || minPts <= 0 {
		return labels
	}

	visited := make([]bool, n)
	next := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		neighbors := regionQuery(points, i, eps)
		if len(neighbors) < minPts {
			continue // density too low; stays Noise unless adopted later
		}
		labels[i] = next
		// Expand the cluster with a classic seed-set sweep.
		queue := append([]int(nil), neighbors...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = next // border point adopted by this cluster
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			labels[j] = next
			jn := regionQuery(points, j, eps)
			if len(jn) >= minPts {
				queue = append(queue, jn...)
			}
		}
		next++
	}
	return labels
}

func regionQuery(points [][]float64, idx int, eps float64) []int {
	var out []int
	p := points[idx]
	for j, q := range points {
		if dist(p, q) <= eps {
			out = append(out, j)
		}
	}
	return out
}

func dist(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Cluster1D is a convenience wrapper over Cluster for scalar samples.
func Cluster1D(values []float64, eps float64, minPts int) []int {
	points := make([][]float64, len(values))
	for i, v := range values {
		points[i] = []float64{v}
	}
	return Cluster(points, eps, minPts)
}

// Discretize derives bucket boundaries from a sample of scalar feature
// observations: it clusters the sample with DBSCAN, then places one
// boundary at the midpoint between the extent of each pair of adjacent
// clusters. The returned boundaries are sorted ascending; a value v
// falls in bucket i where i is the number of boundaries <= v, so k
// clusters yield k buckets via k-1 boundaries.
//
// This is the offline calibration step AutoFL uses to build Table 1;
// the resulting boundaries feed core.Buckets.
func Discretize(values []float64, eps float64, minPts int) []float64 {
	labels := Cluster1D(values, eps, minPts)
	type extent struct{ lo, hi float64 }
	extents := map[int]*extent{}
	for i, lab := range labels {
		if lab == Noise {
			continue
		}
		e, ok := extents[lab]
		if !ok {
			extents[lab] = &extent{values[i], values[i]}
			continue
		}
		e.lo = math.Min(e.lo, values[i])
		e.hi = math.Max(e.hi, values[i])
	}
	ordered := make([]extent, 0, len(extents))
	for _, e := range extents {
		ordered = append(ordered, *e)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].lo < ordered[j].lo })

	var boundaries []float64
	for i := 1; i < len(ordered); i++ {
		boundaries = append(boundaries, (ordered[i-1].hi+ordered[i].lo)/2)
	}
	return boundaries
}

// NumBuckets returns the number of distinct buckets a boundary set
// induces: Bucket returns values in [0, len(boundaries)], so k
// boundaries yield k+1 buckets. Packed state encodings use it as the
// radix of each feature digit.
func NumBuckets(boundaries []float64) int { return len(boundaries) + 1 }

// Bucket returns the index of the bucket that v falls into given sorted
// ascending boundaries: the count of boundaries <= v.
func Bucket(v float64, boundaries []float64) int {
	idx := sort.SearchFloat64s(boundaries, v)
	// SearchFloat64s returns the insertion point; values equal to a
	// boundary belong to the bucket above it, matching the paper's
	// ">=" bucket edges.
	for idx < len(boundaries) && boundaries[idx] == v {
		idx++
	}
	return idx
}
