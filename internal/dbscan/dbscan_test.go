package dbscan

import (
	"testing"
	"testing/quick"

	"autofl/internal/rng"
)

func TestClusterTwoBlobs(t *testing.T) {
	var points [][]float64
	s := rng.New(1)
	for i := 0; i < 50; i++ {
		points = append(points, []float64{s.Normal(0, 0.1), s.Normal(0, 0.1)})
	}
	for i := 0; i < 50; i++ {
		points = append(points, []float64{s.Normal(5, 0.1), s.Normal(5, 0.1)})
	}
	labels := Cluster(points, 0.5, 4)
	if labels[0] == Noise || labels[50] == Noise {
		t.Fatal("blob core points labeled as noise")
	}
	if labels[0] == labels[50] {
		t.Fatal("distinct blobs merged into one cluster")
	}
	for i := 1; i < 50; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("point %d split from its blob (label %d vs %d)", i, labels[i], labels[0])
		}
	}
	for i := 51; i < 100; i++ {
		if labels[i] != labels[50] {
			t.Fatalf("point %d split from its blob", i)
		}
	}
}

func TestClusterNoise(t *testing.T) {
	points := [][]float64{{0}, {0.1}, {0.2}, {0.15}, {0.05}, {100}}
	labels := Cluster(points, 0.5, 3)
	if labels[5] != Noise {
		t.Errorf("isolated point labeled %d, want Noise", labels[5])
	}
	for i := 0; i < 5; i++ {
		if labels[i] == Noise {
			t.Errorf("dense point %d labeled Noise", i)
		}
	}
}

func TestClusterEmptyAndDegenerate(t *testing.T) {
	if got := Cluster(nil, 1, 2); len(got) != 0 {
		t.Errorf("Cluster(nil) returned %v", got)
	}
	labels := Cluster([][]float64{{1}, {2}}, 0, 2)
	for _, l := range labels {
		if l != Noise {
			t.Error("eps=0 should label everything Noise")
		}
	}
	labels = Cluster([][]float64{{1}, {2}}, 1, 0)
	for _, l := range labels {
		if l != Noise {
			t.Error("minPts=0 should label everything Noise")
		}
	}
}

func TestClusterLabelsAreDense(t *testing.T) {
	var points [][]float64
	s := rng.New(2)
	for c := 0; c < 4; c++ {
		center := float64(c * 10)
		for i := 0; i < 20; i++ {
			points = append(points, []float64{s.Normal(center, 0.2)})
		}
	}
	labels := Cluster(points, 1.0, 3)
	seen := map[int]bool{}
	maxLabel := -1
	for _, l := range labels {
		if l == Noise {
			continue
		}
		seen[l] = true
		if l > maxLabel {
			maxLabel = l
		}
	}
	if len(seen) != 4 {
		t.Fatalf("found %d clusters, want 4", len(seen))
	}
	for i := 0; i <= maxLabel; i++ {
		if !seen[i] {
			t.Errorf("label %d skipped; labels are not dense", i)
		}
	}
}

func TestDiscretizeRecoversBuckets(t *testing.T) {
	// Synthetic co-runner CPU-utilization observations in the field
	// cluster around "none" (0%), "small" (~15%), "medium" (~50%) and
	// "large" (~90%) — the Table 1 shape. Discretize should recover
	// three boundaries separating them.
	s := rng.New(3)
	var values []float64
	for i := 0; i < 60; i++ {
		values = append(values, 0)
	}
	for i := 0; i < 60; i++ {
		values = append(values, s.ClampedNormal(0.15, 0.03, 0.02, 0.24))
	}
	for i := 0; i < 60; i++ {
		values = append(values, s.ClampedNormal(0.5, 0.05, 0.3, 0.7))
	}
	for i := 0; i < 60; i++ {
		values = append(values, s.ClampedNormal(0.9, 0.03, 0.8, 1.0))
	}
	b := Discretize(values, 0.02, 5)
	if len(b) != 3 {
		t.Fatalf("Discretize found %d boundaries (%v), want 3", len(b), b)
	}
	if !(b[0] > 0 && b[0] < 0.1) {
		t.Errorf("first boundary %v not between none and small", b[0])
	}
	if !(b[1] > 0.2 && b[1] < 0.4) {
		t.Errorf("second boundary %v not between small and medium", b[1])
	}
	if !(b[2] > 0.65 && b[2] < 0.85) {
		t.Errorf("third boundary %v not between medium and large", b[2])
	}
}

func TestBucket(t *testing.T) {
	boundaries := []float64{10, 20, 30}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {9.99, 0}, {10, 1}, {15, 1}, {20, 2}, {25, 2}, {30, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := Bucket(c.v, boundaries); got != c.want {
			t.Errorf("Bucket(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := Bucket(5, nil); got != 0 {
		t.Errorf("Bucket with no boundaries = %d, want 0", got)
	}
}

// Property: every point is either Noise or carries a label in [0, k)
// where k is the number of clusters, and label vectors have one entry
// per point.
func TestClusterProperty(t *testing.T) {
	s := rng.New(5)
	f := func(nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{s.Float64() * 10}
		}
		labels := Cluster(points, 0.5, 3)
		if len(labels) != n {
			return false
		}
		max := -1
		for _, l := range labels {
			if l < Noise {
				return false
			}
			if l > max {
				max = l
			}
		}
		for want := 0; want <= max; want++ {
			found := false
			for _, l := range labels {
				if l == want {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Bucket is monotone — larger values never land in smaller
// buckets.
func TestBucketMonotoneProperty(t *testing.T) {
	boundaries := []float64{0.25, 0.5, 0.75}
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return Bucket(a, boundaries) <= Bucket(b, boundaries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNumBuckets(t *testing.T) {
	cases := []struct {
		boundaries []float64
		want       int
	}{
		{nil, 1},
		{[]float64{0.5}, 2},
		{[]float64{0.25, 0.75}, 3},
		{[]float64{1, 10, 20, 40}, 5},
	}
	for _, c := range cases {
		if got := NumBuckets(c.boundaries); got != c.want {
			t.Errorf("NumBuckets(%v) = %d, want %d", c.boundaries, got, c.want)
		}
		// Consistency with Bucket: every reachable bucket index is
		// strictly below NumBuckets.
		for _, v := range []float64{-1, 0, 0.3, 5, 100} {
			if b := Bucket(v, c.boundaries); b >= NumBuckets(c.boundaries) {
				t.Errorf("Bucket(%v, %v) = %d >= NumBuckets %d", v, c.boundaries, b, NumBuckets(c.boundaries))
			}
		}
	}
}
