// Package device models the heterogeneous mobile devices of the AutoFL
// evaluation: three performance tiers (high / mid / low end, Tables 2–3
// of the paper), each with a CPU and a GPU execution target, per-target
// DVFS frequency ladders with a cubic dynamic-power model, and a
// roofline effective-throughput model that makes compute-bound
// workloads (CNN) tier-sensitive and memory-bound workloads (LSTM)
// tier-insensitive, as characterized in §3.1.
package device

import "fmt"

// Category is a device performance tier.
type Category int

const (
	// High is a flagship device (Mi 8 Pro class).
	High Category = iota
	// Mid is a mainstream device (Galaxy S10e class).
	Mid
	// Low is an entry-level device (Moto X Force class).
	Low
	// NumCategories is the number of tiers.
	NumCategories = 3
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case High:
		return "H"
	case Mid:
		return "M"
	case Low:
		return "L"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Target is an on-device execution target for local training — the
// second-level AutoFL action (§4.1). DSP/NPU targets are out of scope,
// mirroring the paper (footnote 4).
type Target int

const (
	// CPU runs training on the big CPU cluster.
	CPU Target = iota
	// GPU runs training on the mobile GPU.
	GPU
	// NumTargets is the number of execution targets.
	NumTargets = 2
)

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// FreqStep is one DVFS voltage/frequency operating point.
type FreqStep struct {
	// FreqGHz is the clock frequency at this step.
	FreqGHz float64
	// BusyWatts is the full-utilization power draw at this step.
	BusyWatts float64
}

// ProcSpec describes one execution target of a device: its DVFS ladder,
// peak training throughput, and idle power.
type ProcSpec struct {
	// Name of the IP block, e.g. "Cortex A75" or "Adreno 630".
	Name string
	// Steps is the DVFS ladder in ascending frequency order.
	Steps []FreqStep
	// PeakGFLOPS is the training throughput at the top step.
	PeakGFLOPS float64
	// IdleWatts is the power draw while the block idles.
	IdleWatts float64
	// Cores is the number of cores Eq (1) sums over; power in Steps is
	// already aggregated across them.
	Cores int
	// TrainEfficiency is the fraction of theoretical peak throughput
	// that SGD training sustains on this block. Mobile training
	// frameworks reach only a small slice of the marketing GFLOPS
	// (irregular kernels, cache misses, scheduling); the factor applies
	// to both roofline terms so the compute/memory balance of a
	// workload is preserved.
	TrainEfficiency float64
}

// MaxFreq returns the top-step frequency.
func (p *ProcSpec) MaxFreq() float64 { return p.Steps[len(p.Steps)-1].FreqGHz }

// TopStep returns the index of the highest frequency step.
func (p *ProcSpec) TopStep() int { return len(p.Steps) - 1 }

// GFLOPSAt returns the peak throughput at a given step (linear in
// frequency).
func (p *ProcSpec) GFLOPSAt(step int) float64 {
	return p.PeakGFLOPS * p.Steps[clampStep(p, step)].FreqGHz / p.MaxFreq()
}

// PowerAt returns the busy power at a given step.
func (p *ProcSpec) PowerAt(step int) float64 {
	return p.Steps[clampStep(p, step)].BusyWatts
}

func clampStep(p *ProcSpec, step int) int {
	if step < 0 {
		return 0
	}
	if step >= len(p.Steps) {
		return len(p.Steps) - 1
	}
	return step
}

// Spec is the static hardware description of one device model.
type Spec struct {
	Category Category
	// Model is the commercial device name (Table 3).
	Model string
	CPU   ProcSpec
	GPU   ProcSpec
	// MemBWGBps is the sustained LPDDR bandwidth shared by CPU and GPU.
	MemBWGBps float64
	// RAMGB is the installed memory (Table 2).
	RAMGB float64
	// RadioIdleWatts is the network interface idle draw, part of the
	// device idle power in Eq (4). FL-eligible devices sit in deep
	// sleep (screen off, SoC suspended), so whole-device idle power is
	// a few tens of milliwatts.
	RadioIdleWatts float64
	// SetupSec is the fixed per-round local-training overhead
	// (framework initialization, data pipeline). It is what compresses
	// the tier performance gap at light per-round workloads, driving
	// the Fig 4 optimal-cluster shifts.
	SetupSec float64
	// SetupWatts is the power drawn during the setup phase.
	SetupWatts float64
	// InterferenceResilience scales how hard co-runner contention hits
	// this device (applied to both contention terms of the roofline).
	// High-end SoCs absorb a fixed-size co-runner with spare cores and
	// cache, which is why the paper measures the tier performance gap
	// *widening* under interference: 2.0x/3.1x loaded vs 1.7x/2.5x
	// clean (§3.2). Values below 1 dampen contention; zero means 1.
	InterferenceResilience float64
}

// Proc returns the ProcSpec for the requested target.
func (s *Spec) Proc(t Target) *ProcSpec {
	if t == GPU {
		return &s.GPU
	}
	return &s.CPU
}

// IdleWatts is the whole-device idle power: both compute blocks idle
// plus the radio, used for Eq (4) idle energy of non-participants.
func (s *Spec) IdleWatts() float64 {
	return s.CPU.IdleWatts + s.GPU.IdleWatts + s.RadioIdleWatts
}

// EffectiveGFLOPS is the roofline throughput of training on this device
// at the given target and DVFS step:
//
//	TrainEfficiency × min( peak(target, step) × (1 − computeContention),
//	                       intensity × memBW × (1 − memContention) )
//
// intensity is the workload's arithmetic intensity in FLOP/byte
// (workload.Model.Intensity); computeContention and memContention are
// in [0, 1) and come from the interference model. CPU co-runners steal
// CPU time slices but leave the GPU's shader cores alone, which is why
// the optimal execution target shifts CPU→GPU under interference
// (§6.2): only the memory-bandwidth term degrades for the GPU.
func (s *Spec) EffectiveGFLOPS(t Target, step int, intensity, computeContention, memContention float64) float64 {
	proc := s.Proc(t)
	peak := proc.GFLOPSAt(step)
	if r := s.InterferenceResilience; r > 0 {
		computeContention *= r
		memContention *= r
	}
	if t == GPU {
		// GPU compute is isolated from CPU-side co-runners.
		computeContention = 0
	}
	compute := peak * clamp01c(1-computeContention)
	memory := intensity * s.MemBWGBps * clamp01c(1-memContention)
	eff := proc.TrainEfficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	if memory < compute {
		return eff * memory
	}
	return eff * compute
}

func clamp01c(v float64) float64 {
	if v < 0.02 {
		return 0.02 // co-runners never fully starve training
	}
	if v > 1 {
		return 1
	}
	return v
}

// ladder builds a DVFS ladder with `steps` operating points from
// minFrac×maxGHz to maxGHz. Busy power follows the standard
// leakage + cubic dynamic model: P(x) = leak + dyn·x³ with x = f/fmax,
// where leak+dyn equals the measured peak busy power.
func ladder(steps int, maxGHz, peakWatts float64) []FreqStep {
	const (
		minFrac  = 0.35
		leakFrac = 0.15 // static leakage share of peak power
	)
	leak := peakWatts * leakFrac
	dyn := peakWatts - leak
	out := make([]FreqStep, steps)
	for i := 0; i < steps; i++ {
		x := minFrac + (1-minFrac)*float64(i)/float64(steps-1)
		out[i] = FreqStep{
			FreqGHz:   maxGHz * x,
			BusyWatts: leak + dyn*x*x*x,
		}
	}
	return out
}

// Sustained training efficiency relative to theoretical peak. Mobile
// SGD reaches only a small fraction of marketing GFLOPS; GPUs trail
// CPUs further because mobile training kernels are poorly tuned for
// them (the paper notes training's "limited programmability" on
// co-processors). The per-tier CPU values are calibrated so the
// effective tier gaps match the paper's measured 1.7x (H/M) and 2.5x
// (H/L) training-time ratios for compute-bound workloads (§3.1):
// lower tiers lose less to framework overhead than their raw GFLOPS
// gap suggests.
const (
	cpuTrainEfficiencyH = 0.100 // 153.6 -> 15.4 effective GFLOPS
	cpuTrainEfficiencyM = 0.113 // 80    ->  9.0 (H/M = 1.7)
	cpuTrainEfficiencyL = 0.117 // 52.8  ->  6.2 (H/L = 2.5)
	gpuTrainEfficiency  = 0.07
)

// HighEndSpec returns the flagship tier: Mi 8 Pro (Table 3) with the
// m4.large-equivalent 153.6 GFLOPS of Table 2.
func HighEndSpec() *Spec {
	return &Spec{
		Category: High,
		Model:    "Mi 8 Pro",
		CPU: ProcSpec{
			Name:            "Cortex A75",
			Steps:           ladder(23, 2.8, 5.5),
			PeakGFLOPS:      153.6,
			IdleWatts:       0.020,
			Cores:           8,
			TrainEfficiency: cpuTrainEfficiencyH,
		},
		GPU: ProcSpec{
			Name:            "Adreno 630",
			Steps:           ladder(7, 0.7, 2.8),
			PeakGFLOPS:      96, // training throughput; mobile GPUs trail CPUs for SGD
			IdleWatts:       0.008,
			Cores:           2,
			TrainEfficiency: gpuTrainEfficiency,
		},
		MemBWGBps:              25,
		RAMGB:                  8,
		RadioIdleWatts:         0.010,
		SetupSec:               10,
		SetupWatts:             2.6,
		InterferenceResilience: 0.75,
	}
}

// MidEndSpec returns the mainstream tier: Galaxy S10e with the
// t3a.medium-equivalent 80 GFLOPS.
func MidEndSpec() *Spec {
	return &Spec{
		Category: Mid,
		Model:    "Galaxy S10e",
		CPU: ProcSpec{
			Name:            "Mongoose",
			Steps:           ladder(21, 2.7, 3.9),
			PeakGFLOPS:      80,
			IdleWatts:       0.015,
			Cores:           8,
			TrainEfficiency: cpuTrainEfficiencyM,
		},
		GPU: ProcSpec{
			Name:            "Mali-G76",
			Steps:           ladder(9, 0.7, 2.4),
			PeakGFLOPS:      52,
			IdleWatts:       0.006,
			Cores:           2,
			TrainEfficiency: gpuTrainEfficiency,
		},
		MemBWGBps:              17,
		RAMGB:                  4,
		RadioIdleWatts:         0.010,
		SetupSec:               10,
		SetupWatts:             1.5,
		InterferenceResilience: 1.0,
	}
}

// LowEndSpec returns the entry tier: Moto X Force with the
// t2.small-equivalent 52.8 GFLOPS.
func LowEndSpec() *Spec {
	return &Spec{
		Category: Low,
		Model:    "Moto X Force",
		CPU: ProcSpec{
			Name:            "Cortex A57",
			Steps:           ladder(15, 1.9, 2.9),
			PeakGFLOPS:      52.8,
			IdleWatts:       0.012,
			Cores:           6,
			TrainEfficiency: cpuTrainEfficiencyL,
		},
		GPU: ProcSpec{
			Name:            "Adreno 430",
			Steps:           ladder(6, 0.6, 2.0),
			PeakGFLOPS:      34,
			IdleWatts:       0.005,
			Cores:           2,
			TrainEfficiency: gpuTrainEfficiency,
		},
		MemBWGBps:              13,
		RAMGB:                  2,
		RadioIdleWatts:         0.010,
		SetupSec:               10,
		SetupWatts:             1.1,
		InterferenceResilience: 1.1,
	}
}

// SpecFor returns the canonical Spec for a category.
func SpecFor(c Category) *Spec {
	switch c {
	case High:
		return HighEndSpec()
	case Mid:
		return MidEndSpec()
	default:
		return LowEndSpec()
	}
}

// Device is one device instance in the fleet.
type Device struct {
	// ID is the fleet-unique identifier.
	ID int
	// Spec is the hardware description (shared across devices of the
	// same tier).
	Spec *Spec
}

// Category is a convenience accessor for the device tier.
func (d *Device) Category() Category { return d.Spec.Category }

// Fleet is the population of candidate FL devices.
type Fleet []*Device

// Counts per tier in the paper's 200-device testbed (§5.1): 30 high,
// 70 mid, 100 low — "representative of in-the-field system performance
// distribution".
const (
	DefaultHighCount = 30
	DefaultMidCount  = 70
	DefaultLowCount  = 100
)

// NewFleet builds a fleet with the given tier counts. Device IDs are
// assigned densely with high-end devices first; the ordering carries no
// semantic weight (selection policies never rely on it).
func NewFleet(high, mid, low int) Fleet {
	fleet := make(Fleet, 0, high+mid+low)
	specs := [NumCategories]*Spec{HighEndSpec(), MidEndSpec(), LowEndSpec()}
	counts := [NumCategories]int{high, mid, low}
	id := 0
	for c := 0; c < NumCategories; c++ {
		for i := 0; i < counts[c]; i++ {
			fleet = append(fleet, &Device{ID: id, Spec: specs[c]})
			id++
		}
	}
	return fleet
}

// DefaultFleet builds the paper's 200-device fleet.
func DefaultFleet() Fleet {
	return NewFleet(DefaultHighCount, DefaultMidCount, DefaultLowCount)
}

// CountByCategory tallies devices per tier.
func (f Fleet) CountByCategory() [NumCategories]int {
	var counts [NumCategories]int
	for _, d := range f {
		counts[d.Category()]++
	}
	return counts
}

// ByCategory returns the devices of one tier, preserving fleet order.
func (f Fleet) ByCategory(c Category) []*Device {
	var out []*Device
	for _, d := range f {
		if d.Category() == c {
			out = append(out, d)
		}
	}
	return out
}
