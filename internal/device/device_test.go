package device

import (
	"testing"
	"testing/quick"

	"autofl/internal/workload"
)

func TestLadderShape(t *testing.T) {
	for _, spec := range []*Spec{HighEndSpec(), MidEndSpec(), LowEndSpec()} {
		for _, target := range []Target{CPU, GPU} {
			p := spec.Proc(target)
			if len(p.Steps) < 2 {
				t.Fatalf("%s %s has %d steps", spec.Model, target, len(p.Steps))
			}
			for i := 1; i < len(p.Steps); i++ {
				if p.Steps[i].FreqGHz <= p.Steps[i-1].FreqGHz {
					t.Errorf("%s %s ladder not ascending in frequency at %d", spec.Model, target, i)
				}
				if p.Steps[i].BusyWatts <= p.Steps[i-1].BusyWatts {
					t.Errorf("%s %s ladder not ascending in power at %d", spec.Model, target, i)
				}
			}
		}
	}
}

func TestTable3StepCounts(t *testing.T) {
	// V-F step counts from Table 3 of the paper.
	h, m, l := HighEndSpec(), MidEndSpec(), LowEndSpec()
	cases := []struct {
		name  string
		got   int
		want  int
		watts float64
		peakW float64
	}{
		{"H CPU", len(h.CPU.Steps), 23, h.CPU.PowerAt(h.CPU.TopStep()), 5.5},
		{"H GPU", len(h.GPU.Steps), 7, h.GPU.PowerAt(h.GPU.TopStep()), 2.8},
		{"M CPU", len(m.CPU.Steps), 21, 0, 0},
		{"M GPU", len(m.GPU.Steps), 9, 0, 0},
		{"L CPU", len(l.CPU.Steps), 15, 0, 0},
		{"L GPU", len(l.GPU.Steps), 6, l.GPU.PowerAt(l.GPU.TopStep()), 2.0},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s steps = %d, want %d", c.name, c.got, c.want)
		}
		if c.peakW > 0 && !approx(c.watts, c.peakW, 0.01) {
			t.Errorf("%s peak watts = %v, want %v", c.name, c.watts, c.peakW)
		}
	}
}

func TestTable2GFLOPS(t *testing.T) {
	if g := HighEndSpec().CPU.PeakGFLOPS; g != 153.6 {
		t.Errorf("H peak = %v, want 153.6", g)
	}
	if g := MidEndSpec().CPU.PeakGFLOPS; g != 80 {
		t.Errorf("M peak = %v, want 80", g)
	}
	if g := LowEndSpec().CPU.PeakGFLOPS; g != 52.8 {
		t.Errorf("L peak = %v, want 52.8", g)
	}
}

func TestComputeBoundTierGap(t *testing.T) {
	// §3.1: for compute-intensive CNN training, high-end devices are
	// ~1.7x faster than mid-end and ~2.5x faster than low-end.
	intensity := workload.CNNMNIST().Intensity(32)
	h := HighEndSpec().EffectiveGFLOPS(CPU, HighEndSpec().CPU.TopStep(), intensity, 0, 0)
	m := MidEndSpec().EffectiveGFLOPS(CPU, MidEndSpec().CPU.TopStep(), intensity, 0, 0)
	l := LowEndSpec().EffectiveGFLOPS(CPU, LowEndSpec().CPU.TopStep(), intensity, 0, 0)
	if hm := h / m; hm < 1.4 || hm > 2.2 {
		t.Errorf("H/M compute-bound gap = %.2f, want ~1.7-1.9", hm)
	}
	if hl := h / l; hl < 2.0 || hl > 3.3 {
		t.Errorf("H/L compute-bound gap = %.2f, want ~2.5-2.9", hl)
	}
}

func TestMemoryBoundGapShrinks(t *testing.T) {
	// §3.1: for memory-bound LSTM training the average tier gap
	// shrinks (2.1x -> 1.5x in the paper). The roofline model should
	// reproduce a smaller H/L ratio for LSTM than for CNN.
	cnn := workload.CNNMNIST().Intensity(32)
	lstm := workload.LSTMShakespeare().Intensity(32)
	ratio := func(intensity float64) float64 {
		h := HighEndSpec().EffectiveGFLOPS(CPU, HighEndSpec().CPU.TopStep(), intensity, 0, 0)
		l := LowEndSpec().EffectiveGFLOPS(CPU, LowEndSpec().CPU.TopStep(), intensity, 0, 0)
		return h / l
	}
	if ratio(lstm) >= ratio(cnn) {
		t.Errorf("LSTM tier gap (%.2f) should be below CNN tier gap (%.2f)", ratio(lstm), ratio(cnn))
	}
}

func TestGPUImmuneToCPUContention(t *testing.T) {
	spec := HighEndSpec()
	intensity := workload.CNNMNIST().Intensity(32)
	cpuClean := spec.EffectiveGFLOPS(CPU, spec.CPU.TopStep(), intensity, 0, 0)
	cpuLoaded := spec.EffectiveGFLOPS(CPU, spec.CPU.TopStep(), intensity, 0.6, 0)
	gpuClean := spec.EffectiveGFLOPS(GPU, spec.GPU.TopStep(), intensity, 0, 0)
	gpuLoaded := spec.EffectiveGFLOPS(GPU, spec.GPU.TopStep(), intensity, 0.6, 0)
	if cpuLoaded >= cpuClean {
		t.Error("CPU throughput should degrade under compute contention")
	}
	if gpuLoaded != gpuClean {
		t.Error("GPU throughput should be unaffected by CPU-side contention")
	}
}

func TestMemContentionHurtsBothTargets(t *testing.T) {
	spec := LowEndSpec()
	intensity := workload.LSTMShakespeare().Intensity(32) // memory-bound
	for _, target := range []Target{CPU, GPU} {
		clean := spec.EffectiveGFLOPS(target, spec.Proc(target).TopStep(), intensity, 0, 0)
		loaded := spec.EffectiveGFLOPS(target, spec.Proc(target).TopStep(), intensity, 0, 0.5)
		if loaded >= clean {
			t.Errorf("%s throughput should degrade under memory contention", target)
		}
	}
}

func TestEffectiveGFLOPSNeverZero(t *testing.T) {
	spec := LowEndSpec()
	got := spec.EffectiveGFLOPS(CPU, 0, 100, 1.0, 1.0)
	if got <= 0 {
		t.Errorf("throughput must stay positive under full contention, got %v", got)
	}
}

func TestGFLOPSScalesWithFrequency(t *testing.T) {
	spec := MidEndSpec()
	lo := spec.CPU.GFLOPSAt(0)
	hi := spec.CPU.GFLOPSAt(spec.CPU.TopStep())
	if lo >= hi {
		t.Error("throughput should grow with frequency")
	}
	if !approx(hi, spec.CPU.PeakGFLOPS, 1e-9) {
		t.Errorf("top-step throughput %v != peak %v", hi, spec.CPU.PeakGFLOPS)
	}
}

func TestStepClamping(t *testing.T) {
	p := &HighEndSpec().CPU
	if p.GFLOPSAt(-5) != p.GFLOPSAt(0) {
		t.Error("negative step should clamp to 0")
	}
	if p.PowerAt(999) != p.PowerAt(p.TopStep()) {
		t.Error("oversized step should clamp to top")
	}
}

func TestEnergyOptimalStepIsInterior(t *testing.T) {
	// With leakage + cubic dynamic power, energy per unit of
	// compute-bound work P(f)/f is minimized at an interior DVFS step,
	// not at the bottom of the ladder. This slack-driven sweet spot is
	// what AutoFL's DVFS action exploits (§4.1).
	p := &HighEndSpec().CPU
	best, bestVal := -1, 0.0
	for i := range p.Steps {
		v := p.PowerAt(i) / p.GFLOPSAt(i)
		if best == -1 || v < bestVal {
			best, bestVal = i, v
		}
	}
	if best == 0 || best == p.TopStep() {
		t.Errorf("energy-optimal step = %d (of %d); want interior", best, len(p.Steps))
	}
}

func TestFleetComposition(t *testing.T) {
	f := DefaultFleet()
	if len(f) != 200 {
		t.Fatalf("fleet size = %d, want 200", len(f))
	}
	counts := f.CountByCategory()
	if counts[High] != 30 || counts[Mid] != 70 || counts[Low] != 100 {
		t.Errorf("fleet mix = %v, want [30 70 100]", counts)
	}
	seen := map[int]bool{}
	for _, d := range f {
		if seen[d.ID] {
			t.Fatalf("duplicate device ID %d", d.ID)
		}
		seen[d.ID] = true
	}
}

func TestByCategory(t *testing.T) {
	f := NewFleet(2, 3, 4)
	if got := len(f.ByCategory(Mid)); got != 3 {
		t.Errorf("ByCategory(Mid) = %d devices, want 3", got)
	}
	for _, d := range f.ByCategory(Low) {
		if d.Category() != Low {
			t.Error("ByCategory returned a device of the wrong tier")
		}
	}
}

func TestIdleWattsComposition(t *testing.T) {
	s := HighEndSpec()
	want := s.CPU.IdleWatts + s.GPU.IdleWatts + s.RadioIdleWatts
	if got := s.IdleWatts(); !approx(got, want, 1e-12) {
		t.Errorf("IdleWatts = %v, want %v", got, want)
	}
}

func TestStrings(t *testing.T) {
	if High.String() != "H" || Mid.String() != "M" || Low.String() != "L" {
		t.Error("Category strings wrong")
	}
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Error("Target strings wrong")
	}
	if Category(7).String() != "Category(7)" || Target(7).String() != "Target(7)" {
		t.Error("out-of-range strings wrong")
	}
}

// Property: effective throughput is monotone non-decreasing in DVFS
// step and non-increasing in contention, for all tiers and targets.
func TestEffectiveGFLOPSMonotoneProperty(t *testing.T) {
	specs := []*Spec{HighEndSpec(), MidEndSpec(), LowEndSpec()}
	f := func(specIdx, targetIdx, stepRaw uint8, contRaw uint8) bool {
		spec := specs[int(specIdx)%len(specs)]
		target := Target(int(targetIdx) % NumTargets)
		proc := spec.Proc(target)
		step := int(stepRaw) % len(proc.Steps)
		cont := float64(contRaw%90) / 100
		const intensity = 10
		if step > 0 {
			lo := spec.EffectiveGFLOPS(target, step-1, intensity, cont, cont)
			hi := spec.EffectiveGFLOPS(target, step, intensity, cont, cont)
			if hi < lo-1e-9 {
				return false
			}
		}
		clean := spec.EffectiveGFLOPS(target, step, intensity, 0, 0)
		dirty := spec.EffectiveGFLOPS(target, step, intensity, cont, cont)
		return dirty <= clean+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func approx(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}
