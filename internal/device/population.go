package device

import "fmt"

// Population is the cohort form of a device fleet: an archetype table
// (one shared Spec per tier) plus contiguous per-archetype index
// ranges, instead of one heap-allocated Device struct per unit. Device
// i's identity is fully determined by which archetype range contains
// i, so a million-device population holds no per-device state at all —
// the per-device *dynamic* state (data partition, participation
// memory, cumulative energy) lives in the simulator's packed
// struct-of-arrays, keyed by the same dense index space.
//
// Index layout matches NewFleet: dense IDs, archetypes in declaration
// order (high first for the tiered constructor), so materializing a
// Population reproduces the equivalent Fleet device for device.
type Population struct {
	specs   []*Spec
	offsets []int // offsets[a] is the first index of archetype a; offsets[len] = Len
}

// NewPopulation builds a tiered population with the given per-tier
// device counts, the cohort analogue of NewFleet. Unlike NewFleet it
// rejects degenerate shapes: negative counts and the empty population
// are errors rather than silently-empty fleets.
func NewPopulation(high, mid, low int) (*Population, error) {
	counts := [NumCategories]int{high, mid, low}
	for c, n := range counts {
		if n < 0 {
			return nil, fmt.Errorf("device: negative %v tier count %d", Category(c), n)
		}
	}
	if high+mid+low == 0 {
		return nil, fmt.Errorf("device: empty population (all tier counts zero)")
	}
	specs := [NumCategories]*Spec{HighEndSpec(), MidEndSpec(), LowEndSpec()}
	p := &Population{offsets: []int{0}}
	for c := 0; c < NumCategories; c++ {
		if counts[c] == 0 {
			continue
		}
		p.specs = append(p.specs, specs[c])
		p.offsets = append(p.offsets, p.offsets[len(p.offsets)-1]+counts[c])
	}
	return p, nil
}

// Population converts a materialized fleet into cohort form. Runs of
// consecutive devices sharing a *Spec collapse into one archetype; a
// hand-built fleet with per-device specs degenerates gracefully to one
// archetype per run. It returns an error for an empty fleet.
func (f Fleet) Population() (*Population, error) {
	if len(f) == 0 {
		return nil, fmt.Errorf("device: empty fleet has no population form")
	}
	p := &Population{offsets: []int{0}}
	for i, d := range f {
		if len(p.specs) == 0 || d.Spec != p.specs[len(p.specs)-1] {
			p.specs = append(p.specs, d.Spec)
			p.offsets = append(p.offsets, i)
		}
		p.offsets[len(p.offsets)-1] = i + 1
	}
	return p, nil
}

// Len is the number of devices.
func (p *Population) Len() int { return p.offsets[len(p.offsets)-1] }

// Archetypes returns the shared hardware table, in index order.
func (p *Population) Archetypes() []*Spec { return p.specs }

// ArchetypeCount returns the number of devices of archetype a.
func (p *Population) ArchetypeCount(a int) int { return p.offsets[a+1] - p.offsets[a] }

// ArchetypeOf returns the archetype index owning device i. Archetype
// tables are tiny (3 for tiered populations), so a linear scan beats a
// binary search.
func (p *Population) ArchetypeOf(i int) int {
	for a := 1; a < len(p.offsets)-1; a++ {
		if i < p.offsets[a] {
			return a - 1
		}
	}
	return len(p.specs) - 1
}

// Spec returns device i's hardware description.
func (p *Population) Spec(i int) *Spec { return p.specs[p.ArchetypeOf(i)] }

// CountByCategory tallies devices per tier, like Fleet.CountByCategory.
func (p *Population) CountByCategory() [NumCategories]int {
	var counts [NumCategories]int
	for a, s := range p.specs {
		counts[s.Category] += p.ArchetypeCount(a)
	}
	return counts
}

// IdleWatts is the summed idle draw of the whole population, computed
// per archetype in O(archetypes).
func (p *Population) IdleWatts() float64 {
	total := 0.0
	for a, s := range p.specs {
		total += float64(p.ArchetypeCount(a)) * s.IdleWatts()
	}
	return total
}

// Fleet materializes the population into the legacy pointer form, one
// Device per unit with dense IDs in index order. A Population built by
// NewPopulation(h, m, l) materializes the same fleet NewFleet(h, m, l)
// builds, device for device — the equivalence the engine's exhaustive
// mode and the cohort property tests rely on.
func (p *Population) Fleet() Fleet {
	fleet := make(Fleet, 0, p.Len())
	for a, s := range p.specs {
		for i := p.offsets[a]; i < p.offsets[a+1]; i++ {
			fleet = append(fleet, &Device{ID: i, Spec: s})
		}
	}
	return fleet
}
