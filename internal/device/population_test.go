package device

import (
	"reflect"
	"testing"
)

func TestNewPopulationRejectsDegenerateShapes(t *testing.T) {
	if _, err := NewPopulation(-1, 5, 5); err == nil {
		t.Error("negative tier count accepted")
	}
	if _, err := NewPopulation(0, 0, 0); err == nil {
		t.Error("all-zero population accepted")
	}
	if p, err := NewPopulation(0, 0, 7); err != nil || p.Len() != 7 {
		t.Errorf("single-tier population: err=%v len=%d", err, p.Len())
	}
}

// TestPopulationMaterializesNewFleet pins the equivalence the engine's
// exhaustive mode rests on: NewPopulation(h, m, l).Fleet() is
// NewFleet(h, m, l), device for device.
func TestPopulationMaterializesNewFleet(t *testing.T) {
	p, err := NewPopulation(3, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, want := p.Fleet(), NewFleet(3, 7, 10)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("materialized fleet differs from NewFleet:\ngot:  %+v\nwant: %+v", got, want)
	}
}

func TestPopulationIndexing(t *testing.T) {
	p, err := NewPopulation(3, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 20 {
		t.Fatalf("Len = %d, want 20", p.Len())
	}
	wantCounts := [NumCategories]int{3, 7, 10}
	if got := p.CountByCategory(); got != wantCounts {
		t.Errorf("CountByCategory = %v, want %v", got, wantCounts)
	}
	// Boundaries: archetype membership must flip exactly at the offsets.
	cases := []struct{ i, archetype int }{
		{0, 0}, {2, 0}, {3, 1}, {9, 1}, {10, 2}, {19, 2},
	}
	for _, c := range cases {
		if got := p.ArchetypeOf(c.i); got != c.archetype {
			t.Errorf("ArchetypeOf(%d) = %d, want %d", c.i, got, c.archetype)
		}
	}
	for i := 0; i < p.Len(); i++ {
		if p.Spec(i) != p.Archetypes()[p.ArchetypeOf(i)] {
			t.Fatalf("Spec(%d) disagrees with ArchetypeOf", i)
		}
	}
}

func TestPopulationSkipsEmptyTiers(t *testing.T) {
	p, err := NewPopulation(2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Archetypes()) != 2 {
		t.Fatalf("archetype table has %d entries, want 2 (empty tier skipped)", len(p.Archetypes()))
	}
	if got := p.CountByCategory(); got != [NumCategories]int{2, 0, 3} {
		t.Errorf("CountByCategory = %v", got)
	}
}

// TestPopulationIdleWattsMatchesFleetSum pins the O(archetypes) idle
// aggregate against the per-device sum the legacy path computes.
func TestPopulationIdleWattsMatchesFleetSum(t *testing.T) {
	p, err := NewPopulation(6, 14, 20)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, d := range p.Fleet() {
		sum += d.Spec.IdleWatts()
	}
	if got := p.IdleWatts(); got != sum {
		t.Errorf("IdleWatts = %v, fleet sum = %v", got, sum)
	}
}

func TestFleetPopulationRoundTrip(t *testing.T) {
	fleet := NewFleet(4, 5, 6)
	p, err := fleet.Population()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Fleet(), fleet) {
		t.Error("Fleet → Population → Fleet round trip differs")
	}
	if _, err := (Fleet{}).Population(); err == nil {
		t.Error("empty fleet converted without error")
	}
}
