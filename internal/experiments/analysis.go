package experiments

import (
	"fmt"
	"math"
	"time"

	"autofl/internal/core"
	"autofl/internal/data"
	"autofl/internal/fedavg"
	"autofl/internal/sim"
)

// OverheadAnalysis reproduces the §6.4 controller-overhead numbers:
// wall-clock cost of the observe/select and reward/update steps, their
// share of a round, and the Q-table memory footprint.
func OverheadAnalysis(o Options) *Figure {
	f := &Figure{
		ID:         "overhead",
		Title:      "AutoFL controller overhead",
		PaperClaim: "531.5us per round total (observe 496.8 / select 10.5 / reward 2.1 / update 22.1); 80MB for 200 per-device tables; <1% of round time",
	}
	cfg := baseConfig(o)
	cfg.MaxRounds = o.rounds(200)
	cfg.TargetAccuracy = 1.1
	eng := sim.New(cfg)
	ctrl := core.New(core.DefaultOptions(o.Seed))

	var selectDur, feedbackDur time.Duration
	var roundSec float64
	acc := cfg.Workload.AccuracyFloor
	rounds := 0
	for round := 0; round < cfg.MaxRounds; round++ {
		t0 := time.Now()
		ctx, res := eng.RunRound(ctrl, round, acc)
		selectDur += time.Since(t0) // dominated by observe+select
		t1 := time.Now()
		ctrl.Feedback(ctx, res)
		feedbackDur += time.Since(t1)
		acc = res.Accuracy
		roundSec += res.RoundSec
		rounds++
	}
	perSelect := selectDur.Seconds() / float64(rounds) * 1e6
	perFeedback := feedbackDur.Seconds() / float64(rounds) * 1e6
	memMB := float64(ctrl.MemoryBytes()) / 1e6
	share := (selectDur.Seconds() + feedbackDur.Seconds()) / roundSec * 100

	f.Series = []Series{{
		Label: "controller cost",
		Points: []Point{
			{X: "select-us", Y: perSelect},
			{X: "feedback-us", Y: perFeedback},
			{X: "tables-MB", Y: memMB},
			{X: "round-share-%", Y: share},
		},
	}}
	f.Notes = append(f.Notes,
		fmt.Sprintf("select %.0fus + feedback %.0fus per round; tables %.1fMB; %.3f%% of simulated round time",
			perSelect, perFeedback, memMB, share))
	return f
}

// EnergyModelError reproduces the §4.1 estimator-fidelity claim: the
// mean absolute percentage error of the pre-round energy prediction
// (which sees only the observed co-runner state) against the energy
// actually burned (with surprise load changes during execution).
func EnergyModelError(o Options) *Figure {
	f := &Figure{
		ID:         "energy-error",
		Title:      "energy estimator error (predicted vs executed)",
		PaperClaim: "7.3% mean absolute percentage error",
	}
	cfg := baseConfig(o)
	cfg.MaxRounds = o.rounds(150)
	cfg.TargetAccuracy = 1.1
	eng := sim.New(cfg)
	p := core.New(core.DefaultOptions(o.Seed))

	var absErrSum float64
	samples := 0
	acc := cfg.Workload.AccuracyFloor
	for round := 0; round < cfg.MaxRounds; round++ {
		ctx, res := eng.RunRound(p, round, acc)
		p.Feedback(ctx, res)
		for _, dr := range res.Devices {
			if !dr.Selected || dr.EnergyJ <= 0 {
				continue
			}
			predicted := ctx.EstimateEnergy(dr.Index, dr.Target, dr.Step, res.RoundSec)
			absErrSum += math.Abs(predicted-dr.EnergyJ) / dr.EnergyJ
			samples++
		}
		acc = res.Accuracy
	}
	mape := 0.0
	if samples > 0 {
		mape = absErrSum / float64(samples) * 100
	}
	f.Series = []Series{{
		Label:  "estimator",
		Points: []Point{{X: "MAPE-%", Y: mape}},
	}}
	f.Notes = append(f.Notes, fmt.Sprintf("measured MAPE %.1f%% over %d device-rounds", mape, samples))
	return f
}

// HyperparamSensitivity reproduces the §5.3 sweep: learning rate γ and
// discount µ over {0.1, 0.5, 0.9}, scored by the resulting global PPW
// (the paper scores by prediction accuracy; PPW is the downstream
// quantity it exists to serve).
func HyperparamSensitivity(o Options) *Figure {
	f := &Figure{
		ID:         "hyper",
		Title:      "Q-learning hyperparameter sensitivity",
		PaperClaim: "learning rate 0.9 and discount 0.1 perform best",
	}
	values := []float64{0.1, 0.5, 0.9}

	lrSeries := Series{Label: "PPW vs learning-rate (discount 0.1)"}
	bestLR, bestLRv := 0.0, -1.0
	for _, lr := range values {
		opts := core.DefaultOptions(o.Seed)
		opts.LearningRate = lr
		opts.Discount = 0.1
		cfg := baseConfig(o)
		res := runPolicy(cfg, core.New(opts))
		ppw := res.GlobalPPW()
		lrSeries.Points = append(lrSeries.Points, Point{X: fmt.Sprintf("%.1f", lr), Y: ppw * 1e6})
		if ppw > bestLRv {
			bestLRv, bestLR = ppw, lr
		}
	}
	f.Series = append(f.Series, lrSeries)

	muSeries := Series{Label: "PPW vs discount (learning-rate 0.9)"}
	bestMu, bestMuv := 0.0, -1.0
	for _, mu := range values {
		opts := core.DefaultOptions(o.Seed)
		opts.LearningRate = 0.9
		opts.Discount = mu
		cfg := baseConfig(o)
		res := runPolicy(cfg, core.New(opts))
		ppw := res.GlobalPPW()
		muSeries.Points = append(muSeries.Points, Point{X: fmt.Sprintf("%.1f", mu), Y: ppw * 1e6})
		if ppw > bestMuv {
			bestMuv, bestMu = ppw, mu
		}
	}
	f.Series = append(f.Series, muSeries)
	f.Notes = append(f.Notes, fmt.Sprintf("best learning rate %.1f, best discount %.1f (PPW scaled x1e6)", bestLR, bestMu))
	return f
}

// RealFedAvgValidation cross-validates the analytic convergence model
// against genuine federated SGD (internal/fedavg): IID converges high,
// Dirichlet non-IID trails, and a stable quality-driven cohort (what
// AutoFL learns) recovers most of the loss.
func RealFedAvgValidation(o Options) *Figure {
	f := &Figure{
		ID:         "realfl",
		Title:      "real federated SGD cross-validation (pure-Go trainer)",
		PaperClaim: "non-IID clients slow convergence (Fig 6a); learned selection restores it (Fig 11)",
	}
	rounds := 40
	if o.Quick {
		rounds = 15
	}
	run := func(sc data.Scenario, sel fedavg.Selector, label string) float64 {
		cfg := fedavg.DefaultConfig()
		cfg.Data = sc
		cfg.Seed = o.Seed + 1
		tr, err := fedavg.NewTrainer(cfg)
		if err != nil {
			f.Notes = append(f.Notes, err.Error())
			return 0
		}
		trace, err := tr.Run(rounds, sel)
		if err != nil {
			f.Notes = append(f.Notes, err.Error())
			return 0
		}
		series := Series{Label: label}
		step := len(trace) / 8
		if step < 1 {
			step = 1
		}
		for i := step - 1; i < len(trace); i += step {
			series.Points = append(series.Points, Point{X: fmt.Sprintf("r%d", i+1), Y: trace[i]})
		}
		f.Series = append(f.Series, series)
		return trace[len(trace)-1]
	}
	k := fedavg.DefaultConfig().K
	iid := run(data.IdealIID, fedavg.RandomSelector(k, o.Seed+2), "IID random")
	non := run(data.NonIID100, fedavg.RandomSelector(k, o.Seed+2), "NonIID100 random")
	// Quality selection is evaluated at Non-IID(75%), where IID
	// devices exist for the selector to find — the situation AutoFL's
	// S_Data feature exploits. (At 100% non-IID with tiny K, a fixed
	// high-quality cohort trades away data coverage with real SGD;
	// the simulator's stability benefit needs the larger fleets of the
	// main experiments.)
	nr := run(data.NonIID75, fedavg.RandomSelector(k, o.Seed+2), "NonIID75 random")
	qual := run(data.NonIID75, fedavg.QualitySelector(k), "NonIID75 quality-selected")
	f.Notes = append(f.Notes, fmt.Sprintf(
		"final accuracy: IID %.3f, NonIID100 random %.3f, NonIID75 random %.3f, NonIID75 quality-selected %.3f",
		iid, non, nr, qual))
	return f
}
