package experiments

import (
	"fmt"

	"autofl/internal/data"
	"autofl/internal/metrics"
	"autofl/internal/policy"
	"autofl/internal/sim"
	"autofl/internal/workload"
)

// Fig01Headroom reproduces Figure 1: the PPW headroom left on the
// table by random selection, exposed by the Performance policy and the
// full OFL oracle under field conditions.
func Fig01Headroom(o Options) *Figure {
	cfg := baseConfig(o)
	random := runPolicy(cfg, policy.NewRandom(o.Seed))
	perf := runPolicy(cfg, policy.NewPerformance(o.Seed))
	ofl := runPolicy(cfg, policy.NewOFL())

	base := random.GlobalPPW()
	f := &Figure{
		ID:         "fig01",
		Title:      "PPW headroom of judicious participant/target selection",
		PaperClaim: "up to 5.4x PPW over random selection (Performance and OFL); 4.2x convergence headroom",
		Series: []Series{{
			Label: "global PPW vs FedAvg-Random",
			Points: []Point{
				{X: "FedAvg-Random", Y: 1},
				{X: "Performance", Y: ratio0(perf.GlobalPPW(), base)},
				{X: "OFL", Y: ratio0(ofl.GlobalPPW(), base)},
			},
		}},
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("measured OFL headroom %.1fx, Performance %.1fx",
			ratio0(ofl.GlobalPPW(), base), ratio0(perf.GlobalPPW(), base)))
	return f
}

func ratio0(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// clusterPolicies builds C0 (random) plus the Table 4 clusters.
func clusterPolicies(seed uint64) []sim.Policy {
	out := []sim.Policy{policy.NewRandom(seed)}
	for _, c := range policy.Table4() {
		out = append(out, policy.NewStatic(c.Name, c, seed))
	}
	return out
}

// Fig04GlobalParams reproduces Figure 4: PPW of device clusters C0–C7
// across global-parameter settings S1–S4 for CNN-MNIST, normalized to
// C0 per setting. The paper's optimal cluster shifts from high-end-
// heavy (S1) toward mixed/low-power clusters as per-device computation
// shrinks (S3, S4).
func Fig04GlobalParams(o Options) *Figure {
	f := &Figure{
		ID:         "fig04",
		Title:      "optimal cluster vs (B, E, K) global parameters, CNN-MNIST",
		PaperClaim: "optimal cluster shifts C1->C2->C3->C4 across S1->S4",
	}
	for _, params := range workload.Settings() {
		cfg := baseConfig(o)
		cfg.Params = params
		var base float64
		series := Series{Label: workload.SettingName(params)}
		bestName, bestPPW := "", 0.0
		for i, res := range runPolicies(cfg, clusterPolicies(o.Seed)) {
			ppw := res.GlobalPPW()
			if i == 0 {
				base = ppw
			}
			name := "C0"
			if i > 0 {
				name = policy.Table4()[i-1].Name
			}
			norm := ratio0(ppw, base)
			series.Points = append(series.Points, Point{X: name, Y: norm})
			if ppw > bestPPW {
				bestPPW, bestName = ppw, name
			}
		}
		f.Series = append(f.Series, series)
		f.Notes = append(f.Notes, fmt.Sprintf("%s optimal cluster: %s",
			workload.SettingName(params), bestName))
	}
	return f
}

// Fig05RuntimeVariance reproduces Figure 5: PPW of clusters C0–C7
// under (a) no variance, (b) on-device interference, (c) weak network,
// for CNN-MNIST at S3. The paper's optimum shifts C3 -> C1 -> C5.
func Fig05RuntimeVariance(o Options) *Figure {
	f := &Figure{
		ID:         "fig05",
		Title:      "optimal cluster vs runtime variance, CNN-MNIST S3",
		PaperClaim: "optimum shifts from balanced (no variance) to high-end C1 under interference and low-power C5 under weak signal",
	}
	envs := []struct {
		name string
		env  sim.Env
	}{
		{"ideal", sim.EnvIdeal()},
		{"interference", sim.EnvInterference()},
		{"weak-network", sim.EnvWeakNetwork()},
	}
	for _, e := range envs {
		cfg := baseConfig(o)
		cfg.Env = e.env
		var base float64
		series := Series{Label: e.name}
		bestName, bestPPW := "", 0.0
		for i, res := range runPolicies(cfg, clusterPolicies(o.Seed)) {
			ppw := res.GlobalPPW()
			if i == 0 {
				base = ppw
			}
			name := "C0"
			if i > 0 {
				name = policy.Table4()[i-1].Name
			}
			series.Points = append(series.Points, Point{X: name, Y: ratio0(ppw, base)})
			if ppw > bestPPW {
				bestPPW, bestName = ppw, name
			}
		}
		f.Series = append(f.Series, series)
		f.Notes = append(f.Notes, fmt.Sprintf("%s optimal cluster: %s", e.name, bestName))
	}
	return f
}

// Fig06DataHeterogeneity reproduces Figure 6: (a) convergence curves
// and (b) PPW for the four data-distribution scenarios under random
// selection (CNN-MNIST, S3).
func Fig06DataHeterogeneity(o Options) *Figure {
	f := &Figure{
		ID:         "fig06",
		Title:      "model quality and PPW vs data heterogeneity (random selection)",
		PaperClaim: "non-IID devices defer or prevent convergence; >85% PPW gap vs ideal selection",
	}
	ppwSeries := Series{Label: "global PPW vs IID"}
	var iidPPW float64
	scenarios := data.Scenarios()
	cfgs := make([]sim.Config, len(scenarios))
	ps := make([]sim.Policy, len(scenarios))
	for i, sc := range scenarios {
		cfgs[i] = baseConfig(o)
		cfgs[i].Data = sc
		ps[i] = policy.NewRandom(o.Seed)
	}
	results := runConfigs(cfgs, ps)
	for i, sc := range scenarios {
		res := results[i]
		if sc == data.IdealIID {
			iidPPW = res.GlobalPPW()
		}
		ppwSeries.Points = append(ppwSeries.Points, Point{X: sc.Name, Y: ratio0(res.GlobalPPW(), iidPPW)})

		// Downsample the accuracy trace to 10 points per scenario.
		trace := Series{Label: "accuracy " + sc.Name}
		step := len(res.AccuracyTrace) / 10
		if step < 1 {
			step = 1
		}
		for i := step - 1; i < len(res.AccuracyTrace); i += step {
			trace.Points = append(trace.Points, Point{X: fmt.Sprintf("r%d", i+1), Y: res.AccuracyTrace[i]})
		}
		f.Series = append(f.Series, trace)
		conv := "did not converge"
		if res.Converged {
			conv = "converged at round " +
				metrics.FormatRound(true, res.ConvergedRound, res.Rounds)
		}
		f.Notes = append(f.Notes, fmt.Sprintf("%s: final accuracy %.3f, %s", sc.Name, res.FinalAccuracy, conv))
	}
	f.Series = append(f.Series, ppwSeries)
	return f
}

// Table4Characterization reproduces the Table 4 cluster
// characterization at S3 field conditions: per-cluster round time,
// average participant power, and normalized PPW.
func Table4Characterization(o Options) *Figure {
	f := &Figure{
		ID:         "table4",
		Title:      "cluster characterization (round time, power, PPW) at S3",
		PaperClaim: "C1 fastest rounds; C7 lowest power; balanced clusters trade between them",
	}
	timeSeries := Series{Label: "mean round seconds"}
	powerSeries := Series{Label: "mean participant watts"}
	ppwSeries := Series{Label: "global PPW vs C0"}
	var base float64
	for i, res := range runPolicies(baseConfig(o), clusterPolicies(o.Seed)) {
		name := "C0"
		if i > 0 {
			name = policy.Table4()[i-1].Name
		}
		ppw := res.GlobalPPW()
		if i == 0 {
			base = ppw
		}
		watts := 0.0
		if res.TimeToTargetSec > 0 {
			watts = res.ParticipantEnergyToTargetJ / res.TimeToTargetSec
		}
		timeSeries.Points = append(timeSeries.Points, Point{X: name, Y: res.MeanRoundSec})
		powerSeries.Points = append(powerSeries.Points, Point{X: name, Y: watts})
		ppwSeries.Points = append(ppwSeries.Points, Point{X: name, Y: ratio0(ppw, base)})
	}
	f.Series = []Series{timeSeries, powerSeries, ppwSeries}

	c1, _ := f.seriesValue("mean round seconds", "C1")
	c7, _ := f.seriesValue("mean round seconds", "C7")
	f.Notes = append(f.Notes, fmt.Sprintf("C1 rounds %.0fs vs C7 %.0fs", c1, c7))
	p1, _ := f.seriesValue("mean participant watts", "C1")
	p7, _ := f.seriesValue("mean participant watts", "C7")
	f.Notes = append(f.Notes, fmt.Sprintf("C1 participant power %.1fW vs C7 %.1fW", p1, p7))
	return f
}
