package experiments

import (
	"fmt"
	"math"

	"autofl/internal/core"
	"autofl/internal/data"
	"autofl/internal/device"
	"autofl/internal/metrics"
	"autofl/internal/policy"
	"autofl/internal/sim"
	"autofl/internal/workload"
)

// addPolicyComparison runs the §5.1 policy lineup on cfg and appends
// PPW / convergence series to the figure, all normalized to
// FedAvg-Random. Returns the AutoFL improvement.
func addPolicyComparison(f *Figure, label string, cfg sim.Config, seed uint64) float64 {
	results := runPolicies(cfg, policySet(seed))
	cmp, err := metrics.Compare("FedAvg-Random", results)
	if err != nil {
		f.Notes = append(f.Notes, "comparison failed: "+err.Error())
		return 0
	}
	ppw := Series{Label: label + " PPW"}
	conv := Series{Label: label + " conv-time"}
	autoX := 0.0
	for _, row := range cmp.Rows {
		ppw.Points = append(ppw.Points, Point{X: row.Policy, Y: row.GlobalPPWx})
		conv.Points = append(conv.Points, Point{X: row.Policy, Y: finite(row.ConvTimex)})
		if row.Policy == "AutoFL" {
			autoX = row.GlobalPPWx
		}
	}
	f.Series = append(f.Series, ppw, conv)
	return autoX
}

// finite clamps infinities (non-converging baselines) for display.
func finite(v float64) float64 {
	if v > 100 {
		return 100
	}
	return v
}

// Fig08Overview reproduces Figure 8: PPW, convergence time, and
// accuracy for the three workloads across the six §5.1 policies.
func Fig08Overview(o Options) *Figure {
	f := &Figure{
		ID:         "fig08",
		Title:      "headline result: PPW / convergence / accuracy per workload",
		PaperClaim: "AutoFL achieves 4.0x / 3.7x / 5.1x PPW over FedAvg-Random for CNN-MNIST / LSTM-Shakespeare / MobileNet-ImageNet",
	}
	for _, w := range workload.All() {
		cfg := baseConfig(o)
		cfg.Workload = w
		autoX := addPolicyComparison(f, w.Name, cfg, o.Seed)
		f.Notes = append(f.Notes, fmt.Sprintf("%s: AutoFL PPW %.1fx vs random", w.Name, autoX))
	}
	return f
}

// Fig09GlobalParamAdaptability reproduces Figure 9: AutoFL across
// S1–S4 for CNN-MNIST.
func Fig09GlobalParamAdaptability(o Options) *Figure {
	f := &Figure{
		ID:         "fig09",
		Title:      "adaptability to (B, E, K) settings, CNN-MNIST",
		PaperClaim: "AutoFL beats the baselines across S1-S4 and lands within ~16% of Oparticipant+targets",
	}
	for _, params := range workload.Settings() {
		cfg := baseConfig(o)
		cfg.Params = params
		autoX := addPolicyComparison(f, workload.SettingName(params), cfg, o.Seed)
		f.Notes = append(f.Notes, fmt.Sprintf("%s: AutoFL PPW %.1fx vs random",
			workload.SettingName(params), autoX))
	}
	return f
}

// Fig10VarianceAdaptability reproduces Figure 10: AutoFL under (a) no
// variance, (b) interference, (c) network variance.
func Fig10VarianceAdaptability(o Options) *Figure {
	f := &Figure{
		ID:         "fig10",
		Title:      "adaptability to runtime variance, CNN-MNIST S3",
		PaperClaim: "AutoFL improves PPW 5.1x/6.9x/2.6x over Random/Power/Performance under variance and tracks OFL",
	}
	envs := []struct {
		name string
		env  sim.Env
	}{
		{"ideal", sim.EnvIdeal()},
		{"interference", sim.EnvInterference()},
		{"weak-network", sim.EnvWeakNetwork()},
	}
	for _, e := range envs {
		cfg := baseConfig(o)
		cfg.Env = e.env
		autoX := addPolicyComparison(f, e.name, cfg, o.Seed)
		f.Notes = append(f.Notes, fmt.Sprintf("%s: AutoFL PPW %.1fx vs random", e.name, autoX))
	}
	return f
}

// Fig11HeterogeneityAdaptability reproduces Figure 11: AutoFL across
// the four data-distribution scenarios.
func Fig11HeterogeneityAdaptability(o Options) *Figure {
	f := &Figure{
		ID:         "fig11",
		Title:      "adaptability to data heterogeneity, CNN-MNIST S3",
		PaperClaim: "AutoFL achieves 4.0x/5.5x/9.3x/7.3x PPW over random across IID/50%/75%/100%; baselines do not converge at 75%+",
	}
	for _, sc := range data.Scenarios() {
		cfg := baseConfig(o)
		cfg.Data = sc
		autoX := addPolicyComparison(f, sc.Name, cfg, o.Seed)
		f.Notes = append(f.Notes, fmt.Sprintf("%s: AutoFL PPW %.1fx vs random", sc.Name, autoX))
	}
	return f
}

// Fig12PredictionAccuracy reproduces Figure 12: how closely AutoFL's
// selections track the OFL oracle, overall and per device category,
// plus execution-target agreement.
func Fig12PredictionAccuracy(o Options) *Figure {
	f := &Figure{
		ID:         "fig12",
		Title:      "AutoFL decision accuracy vs the OFL oracle",
		PaperClaim: "93.9% participant-selection accuracy, 92.9% execution-target accuracy on average",
	}
	for _, w := range workload.All() {
		cfg := baseConfig(o)
		cfg.Workload = w
		cfg.MaxRounds = o.rounds(400)
		eng := sim.New(cfg)
		auto := core.New(core.DefaultOptions(o.Seed))
		oracle := policy.NewOFL()

		warmup := cfg.MaxRounds / 3 // let the Q-tables converge first
		overlapSum, targetSum, rounds := 0.0, 0.0, 0
		acc := cfg.Workload.AccuracyFloor
		for round := 0; round < cfg.MaxRounds; round++ {
			ctx, res := eng.RunRound(auto, round, acc)
			auto.Feedback(ctx, res)
			if round >= warmup && !auto.Explored() {
				autoSel := selectionsOf(res)
				oracleSel := oracle.Select(ctx)
				overlapSum += mixAgreement(ctx, autoSel, oracleSel)
				targetSum += targetAgreement(ctx, autoSel, res.Deadline)
				rounds++
			}
			acc = res.Accuracy
			if acc >= eng.Config().TargetAccuracy {
				break
			}
		}
		sel, tgt := 0.0, 0.0
		if rounds > 0 {
			sel = overlapSum / float64(rounds)
			tgt = targetSum / float64(rounds)
		}
		f.Series = append(f.Series, Series{
			Label: w.Name,
			Points: []Point{
				{X: "selection-accuracy", Y: sel},
				{X: "target-accuracy", Y: tgt},
			},
		})
		f.Notes = append(f.Notes, fmt.Sprintf("%s: selection %.1f%%, target %.1f%%",
			w.Name, 100*sel, 100*tgt))
	}
	return f
}

// selectionsOf extracts the executed selections from a round result.
func selectionsOf(res *sim.RoundResult) []sim.Selection {
	var out []sim.Selection
	for _, dr := range res.Devices {
		if dr.Selected {
			out = append(out, sim.Selection{Index: dr.Index, Target: dr.Target, Step: dr.Step})
		}
	}
	return out
}

// mixAgreement scores how closely two selections agree on the
// *category composition* of the participant cluster — what Fig 12's
// bars compare (the share of high/mid/low-end devices chosen). It is
// 1 minus half the L1 distance between the two category distributions.
func mixAgreement(ctx *sim.RoundContext, a, b []sim.Selection) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	mix := func(sels []sim.Selection) [device.NumCategories]float64 {
		var out [device.NumCategories]float64
		for _, s := range sels {
			out[ctx.Devices[s.Index].Device.Category()]++
		}
		for i := range out {
			out[i] /= float64(len(sels))
		}
		return out
	}
	ma, mb := mix(a), mix(b)
	l1 := 0.0
	for i := range ma {
		l1 += math.Abs(ma[i] - mb[i])
	}
	return 1 - l1/2
}

// targetAgreement is the fraction of selected devices whose execution
// target matches the oracle-optimal action for the round's deadline.
func targetAgreement(ctx *sim.RoundContext, sels []sim.Selection, deadline float64) float64 {
	if len(sels) == 0 {
		return 0
	}
	agree := 0
	for _, s := range sels {
		bestTarget, _ := policy.BestAction(ctx, s.Index, deadline)
		if s.Target == bestTarget {
			agree++
		}
	}
	return float64(agree) / float64(len(sels))
}

// priorWorkSet builds the §6.3 lineup.
func priorWorkSet(seed uint64) []sim.Policy {
	return []sim.Policy{
		policy.NewRandom(seed),
		policy.NewFedNova(seed),
		policy.NewFEDL(seed),
		core.New(core.DefaultOptions(seed)),
	}
}

// Fig13PriorWork reproduces Figure 13: AutoFL vs FedNova and FEDL
// across the three workloads.
func Fig13PriorWork(o Options) *Figure {
	f := &Figure{
		ID:         "fig13",
		Title:      "comparison with FedNova and FEDL",
		PaperClaim: "AutoFL achieves 49.8% and 39.3% higher PPW than FedNova and FEDL",
	}
	for _, w := range workload.All() {
		cfg := baseConfig(o)
		cfg.Workload = w
		results := runPolicies(cfg, priorWorkSet(o.Seed))
		cmp, err := metrics.Compare("FedAvg-Random", results)
		if err != nil {
			f.Notes = append(f.Notes, err.Error())
			continue
		}
		s := Series{Label: w.Name + " PPW"}
		var fedNovaX, fedlX, autoX float64
		for _, row := range cmp.Rows {
			s.Points = append(s.Points, Point{X: row.Policy, Y: row.GlobalPPWx})
			switch row.Policy {
			case "FedNova":
				fedNovaX = row.GlobalPPWx
			case "FEDL":
				fedlX = row.GlobalPPWx
			case "AutoFL":
				autoX = row.GlobalPPWx
			}
		}
		f.Series = append(f.Series, s)
		f.Notes = append(f.Notes, fmt.Sprintf("%s: AutoFL vs FedNova %+.1f%%, vs FEDL %+.1f%%",
			w.Name, 100*(ratio0(autoX, fedNovaX)-1), 100*(ratio0(autoX, fedlX)-1)))
	}
	return f
}

// Fig14PriorWorkStress reproduces Figure 14: the prior-work comparison
// under interference, network variance, and data heterogeneity.
func Fig14PriorWorkStress(o Options) *Figure {
	f := &Figure{
		ID:         "fig14",
		Title:      "FedNova/FEDL under variance and heterogeneity",
		PaperClaim: "AutoFL outperforms both by 62.7%/48.8% under variance; prior work converges but trails under non-IID data",
	}
	cases := []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"interference", func(c *sim.Config) { c.Env = sim.EnvInterference() }},
		{"weak-network", func(c *sim.Config) { c.Env = sim.EnvWeakNetwork() }},
		{"noniid100", func(c *sim.Config) { c.Data = data.NonIID100 }},
	}
	for _, tc := range cases {
		cfg := baseConfig(o)
		tc.mut(&cfg)
		results := runPolicies(cfg, priorWorkSet(o.Seed))
		cmp, err := metrics.Compare("FedAvg-Random", results)
		if err != nil {
			f.Notes = append(f.Notes, err.Error())
			continue
		}
		s := Series{Label: tc.name + " PPW"}
		for _, row := range cmp.Rows {
			s.Points = append(s.Points, Point{X: row.Policy, Y: row.GlobalPPWx})
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Fig15RewardConvergence reproduces Figure 15: the reward trace of
// per-device vs shared Q-tables, and the rounds each needs to settle.
func Fig15RewardConvergence(o Options) *Figure {
	f := &Figure{
		ID:         "fig15",
		Title:      "RL reward convergence: per-device vs shared Q-tables",
		PaperClaim: "reward converges in 50-80 rounds; sharing Q-tables within a category cuts training overhead ~29% at ~2.7% accuracy cost",
	}
	variants := []struct {
		name   string
		shared bool
	}{
		{"per-device", false},
		{"shared", true},
	}
	for _, v := range variants {
		cfg := baseConfig(o)
		cfg.MaxRounds = o.rounds(400)
		cfg.TargetAccuracy = 1.1 // run the full horizon
		opts := core.DefaultOptions(o.Seed)
		opts.SharedTables = v.shared
		ctrl := core.New(opts)
		// Drive the run through the stepwise engine API — the reward
		// trace grows one entry per executed round, exactly as the
		// closed Run loop would produce it.
		run := sim.New(cfg).Start(ctrl)
		for run.Step() {
		}
		trace := ctrl.RewardTrace()

		settle := settleRound(trace)
		series := Series{Label: "reward " + v.name}
		step := len(trace) / 12
		if step < 1 {
			step = 1
		}
		for i := step - 1; i < len(trace); i += step {
			series.Points = append(series.Points, Point{X: fmt.Sprintf("r%d", i+1), Y: trace[i]})
		}
		f.Series = append(f.Series, series)
		f.Notes = append(f.Notes, fmt.Sprintf("%s tables: reward settles around round %d", v.name, settle))
	}
	return f
}

// settleRound estimates when the reward trace stabilizes: the first
// round after which the rolling mean stays within one late-run
// standard deviation of the final level.
func settleRound(trace []float64) int {
	if len(trace) < 40 {
		return len(trace)
	}
	const window = 20
	tail := trace[len(trace)-window:]
	level := metrics.Mean(tail)
	dev := 0.0
	for _, v := range tail {
		d := v - level
		dev += d * d
	}
	dev = math.Sqrt(dev/window) + 1e-9
	for start := 0; start+window <= len(trace); start++ {
		m := metrics.Mean(trace[start : start+window])
		if m >= level-2*dev && m <= level+2*dev {
			return start + window
		}
	}
	return len(trace)
}
