// Package experiments reproduces every figure and table of the AutoFL
// paper's evaluation (§3 characterization and §6 results): one runner
// per figure, each returning structured series that cmd/autofl-bench
// renders next to the paper's reported numbers.
//
// The DESIGN.md per-experiment index maps each runner to its paper
// reference, workloads, and bench target.
package experiments

import (
	"fmt"
	"strings"

	"autofl/internal/core"
	"autofl/internal/data"
	"autofl/internal/metrics"
	"autofl/internal/policy"
	"autofl/internal/sim"
	"autofl/internal/sweep"
	"autofl/internal/sweep/schedule"
	"autofl/internal/workload"
)

// Options tune an experiment run.
type Options struct {
	// Seed drives all randomness; equal seeds reproduce results.
	Seed uint64
	// Quick shrinks horizons for benchmarks and smoke tests; figures
	// keep their shape but with more noise.
	Quick bool
}

// rounds returns the experiment horizon.
func (o Options) rounds(full int) int {
	if o.Quick {
		q := full / 5
		if q < 40 {
			q = 40
		}
		return q
	}
	return full
}

// Point is one measurement in a series.
type Point struct {
	X string
	Y float64
}

// Series is one labeled line/bar group of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced result with its paper reference.
type Figure struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "fig08").
	ID string
	// Title summarizes the experiment.
	Title string
	// PaperClaim states what the paper reports, for side-by-side
	// comparison in EXPERIMENTS.md.
	PaperClaim string
	// Series holds the measured data.
	Series []Series
	// Notes carries measured headline numbers and caveats.
	Notes []string
}

// Render formats the figure as aligned text.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&b, "paper: %s\n", f.PaperClaim)
	if len(f.Series) > 0 {
		// Build a column per distinct X, a row per series.
		var xs []string
		seen := map[string]bool{}
		for _, s := range f.Series {
			for _, p := range s.Points {
				if !seen[p.X] {
					seen[p.X] = true
					xs = append(xs, p.X)
				}
			}
		}
		header := append([]string{"series"}, xs...)
		var rows [][]string
		for _, s := range f.Series {
			row := make([]string, len(header))
			row[0] = s.Label
			for i := range xs {
				row[i+1] = "-"
			}
			for _, p := range s.Points {
				for i, x := range xs {
					if x == p.X {
						row[i+1] = fmt.Sprintf("%.2f", p.Y)
					}
				}
			}
			rows = append(rows, row)
		}
		b.WriteString(metrics.Table(header, rows))
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// seriesValue fetches a point by label and x.
func (f *Figure) seriesValue(label, x string) (float64, bool) {
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		for _, p := range s.Points {
			if p.X == x {
				return p.Y, true
			}
		}
	}
	return 0, false
}

// baseConfig is the standard evaluation configuration: CNN-MNIST, S3,
// IID, field conditions.
func baseConfig(o Options) sim.Config {
	return sim.Config{
		Workload:  workload.CNNMNIST(),
		Params:    workload.S3,
		Data:      data.IdealIID,
		Env:       sim.EnvField(),
		Seed:      o.Seed,
		MaxRounds: o.rounds(1000),
	}
}

// runPolicy executes one policy on a config.
func runPolicy(cfg sim.Config, p sim.Policy) *sim.Result {
	return sim.New(cfg).Run(p)
}

// runPolicies executes each policy on the config through the sweep
// engine's worker pool. Results come back in policy order, and every
// run constructs its own simulator from its own seed, so the figures
// are identical to the former serial loops.
func runPolicies(cfg sim.Config, ps []sim.Policy) []*sim.Result {
	return sweep.Map(0, len(ps), func(i int) *sim.Result {
		return runPolicy(cfg, ps[i])
	})
}

// runConfigs executes ps[i] on cfgs[i] pairwise on the worker pool,
// claiming the costliest configurations first (workload FLOPs ×
// horizon, via the sweep scheduler's static model) so a mixed-workload
// figure doesn't leave its MobileNet runs for last. Results come back
// in config order regardless of claim order.
func runConfigs(cfgs []sim.Config, ps []sim.Policy) []*sim.Result {
	model := schedule.Static()
	order := schedule.Order(len(cfgs), func(i int) float64 {
		return model.Predict(cfgs[i].Workload.Name, cfgs[i].MaxRounds)
	})
	return sweep.MapOrder(0, len(cfgs), order, func(i int) *sim.Result {
		return runPolicy(cfgs[i], ps[i])
	})
}

// policySet builds the §5.1 policy lineup. AutoFL is constructed fresh
// per call (it learns state).
func policySet(seed uint64) []sim.Policy {
	return []sim.Policy{
		policy.NewRandom(seed),
		policy.NewPower(seed),
		policy.NewPerformance(seed),
		policy.NewOParticipant(),
		policy.NewOFL(),
		core.New(core.DefaultOptions(seed)),
	}
}

// All runs every experiment and returns the figures in paper order.
func All(o Options) []*Figure {
	return []*Figure{
		Fig01Headroom(o),
		Fig04GlobalParams(o),
		Fig05RuntimeVariance(o),
		Fig06DataHeterogeneity(o),
		Fig08Overview(o),
		Fig09GlobalParamAdaptability(o),
		Fig10VarianceAdaptability(o),
		Fig11HeterogeneityAdaptability(o),
		Fig12PredictionAccuracy(o),
		Fig13PriorWork(o),
		Fig14PriorWorkStress(o),
		Fig15RewardConvergence(o),
		OverheadAnalysis(o),
		EnergyModelError(o),
		Table4Characterization(o),
		HyperparamSensitivity(o),
		RealFedAvgValidation(o),
	}
}

// ByID returns the named experiment runner.
func ByID(id string) (func(Options) *Figure, bool) {
	m := map[string]func(Options) *Figure{
		"fig01":        Fig01Headroom,
		"fig04":        Fig04GlobalParams,
		"fig05":        Fig05RuntimeVariance,
		"fig06":        Fig06DataHeterogeneity,
		"fig08":        Fig08Overview,
		"fig09":        Fig09GlobalParamAdaptability,
		"fig10":        Fig10VarianceAdaptability,
		"fig11":        Fig11HeterogeneityAdaptability,
		"fig12":        Fig12PredictionAccuracy,
		"fig13":        Fig13PriorWork,
		"fig14":        Fig14PriorWorkStress,
		"fig15":        Fig15RewardConvergence,
		"overhead":     OverheadAnalysis,
		"energy-error": EnergyModelError,
		"table4":       Table4Characterization,
		"hyper":        HyperparamSensitivity,
		"realfl":       RealFedAvgValidation,
	}
	f, ok := m[id]
	return f, ok
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"fig01", "fig04", "fig05", "fig06", "fig08", "fig09", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "overhead",
		"energy-error", "table4", "hyper", "realfl",
	}
}
