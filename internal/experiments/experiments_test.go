package experiments

import (
	"strings"
	"testing"
)

func opts() Options { return Options{Seed: 42, Quick: true} }

func TestFig01HeadroomShape(t *testing.T) {
	f := Fig01Headroom(opts())
	ofl, ok := f.seriesValue("global PPW vs FedAvg-Random", "OFL")
	if !ok {
		t.Fatal("OFL point missing")
	}
	if ofl <= 1 {
		t.Errorf("OFL headroom = %.2fx, want > 1x (paper: up to 5.4x)", ofl)
	}
}

func TestFig04ShiftsAwayFromHighEnd(t *testing.T) {
	f := Fig04GlobalParams(opts())
	if len(f.Series) != 4 {
		t.Fatalf("fig04 has %d series, want 4 settings", len(f.Series))
	}
	// The paper's shape: at heavy per-device work (S1) high-end-heavy
	// clusters (C1/C2) do comparatively better than they do at light
	// work (S3). Compare C1's normalized PPW across settings.
	s1C1, ok1 := f.seriesValue("S1", "C1")
	s3C1, ok3 := f.seriesValue("S3", "C1")
	s1C7, _ := f.seriesValue("S1", "C7")
	s3C7, _ := f.seriesValue("S3", "C7")
	if !ok1 || !ok3 {
		t.Fatal("missing cluster points")
	}
	// Relative standing of C1 vs C7 must improve with heavier work.
	if s1C1/s1C7 <= s3C1/s3C7 {
		t.Errorf("C1-vs-C7 standing should be better at S1 (%.2f) than S3 (%.2f)",
			s1C1/s1C7, s3C1/s3C7)
	}
}

func TestFig05VarianceShifts(t *testing.T) {
	f := Fig05RuntimeVariance(opts())
	// Under interference, C1 (all high-end) must gain standing versus
	// the low-end C7; under weak network, C7/C5 must gain.
	idealC1, _ := f.seriesValue("ideal", "C1")
	idealC7, _ := f.seriesValue("ideal", "C7")
	interfC1, _ := f.seriesValue("interference", "C1")
	interfC7, _ := f.seriesValue("interference", "C7")
	if interfC1/interfC7 <= idealC1/idealC7 {
		t.Errorf("interference should favor C1 over C7: ideal ratio %.2f, interference %.2f",
			idealC1/idealC7, interfC1/interfC7)
	}
	weakC5, _ := f.seriesValue("weak-network", "C5")
	weakC1, _ := f.seriesValue("weak-network", "C1")
	if weakC5 < weakC1*0.8 {
		t.Errorf("weak network should favor low-power clusters: C5 %.2f vs C1 %.2f", weakC5, weakC1)
	}
}

func TestFig06HeterogeneityDegrades(t *testing.T) {
	f := Fig06DataHeterogeneity(opts())
	iid, ok := f.seriesValue("global PPW vs IID", "Ideal IID")
	if !ok || iid != 1 {
		t.Fatalf("IID baseline = %v", iid)
	}
	non100, _ := f.seriesValue("global PPW vs IID", "Non-IID (100%)")
	if non100 >= 0.6 {
		t.Errorf("Non-IID(100%%) PPW = %.2f of IID, want heavily degraded (paper: >85%% gap at full horizon)", non100)
	}
}

func TestFig08AutoFLWins(t *testing.T) {
	f := Fig08Overview(opts())
	for _, w := range []string{"CNN-MNIST"} {
		auto, ok := f.seriesValue(w+" PPW", "AutoFL")
		if !ok {
			t.Fatalf("missing AutoFL point for %s", w)
		}
		if auto <= 1 {
			t.Errorf("%s: AutoFL PPW %.2fx, want > 1x over random", w, auto)
		}
		power, _ := f.seriesValue(w+" PPW", "Power")
		if auto <= power {
			t.Errorf("%s: AutoFL (%.2fx) should beat Power (%.2fx)", w, auto, power)
		}
	}
}

func TestFig11BaselinesStallAutoFLConverges(t *testing.T) {
	f := Fig11HeterogeneityAdaptability(opts())
	// At Non-IID(75%), AutoFL's PPW advantage should be large because
	// the baseline never converges.
	auto, ok := f.seriesValue("Non-IID (75%) PPW", "AutoFL")
	if !ok {
		t.Fatal("missing AutoFL point")
	}
	// Quick horizons compress the gap; the full-horizon reproduction
	// (EXPERIMENTS.md) shows the multi-x factor of the paper.
	if auto <= 1.2 {
		t.Errorf("AutoFL PPW at Non-IID(75%%) = %.2fx, want a clear win (paper: 9.3x)", auto)
	}
}

func TestFig12PredictionAccuracy(t *testing.T) {
	f := Fig12PredictionAccuracy(opts())
	sel, ok := f.seriesValue("CNN-MNIST", "selection-accuracy")
	if !ok {
		t.Fatal("missing selection accuracy")
	}
	// AutoFL and OFL both avoid stragglers but can settle on different
	// near-optimal tier mixes (the optimum is degenerate in the
	// simulator), so agreement is meaningful but not near-perfect.
	if sel < 0.3 || sel > 1 {
		t.Errorf("selection accuracy = %.2f, want meaningful category-mix agreement with OFL", sel)
	}
	tgt, _ := f.seriesValue("CNN-MNIST", "target-accuracy")
	if tgt < 0.3 || tgt > 1 {
		t.Errorf("target accuracy = %.2f, want meaningful agreement", tgt)
	}
}

func TestFig13AutoFLBeatsPriorWork(t *testing.T) {
	f := Fig13PriorWork(opts())
	auto, _ := f.seriesValue("CNN-MNIST PPW", "AutoFL")
	fednova, _ := f.seriesValue("CNN-MNIST PPW", "FedNova")
	fedl, _ := f.seriesValue("CNN-MNIST PPW", "FEDL")
	if auto <= fednova || auto <= fedl {
		t.Errorf("AutoFL (%.2fx) should beat FedNova (%.2fx) and FEDL (%.2fx)",
			auto, fednova, fedl)
	}
}

func TestFig15RewardSettles(t *testing.T) {
	f := Fig15RewardConvergence(opts())
	if len(f.Series) != 2 {
		t.Fatalf("fig15 has %d series, want per-device and shared", len(f.Series))
	}
	for _, n := range f.Notes {
		if !strings.Contains(n, "settles around round") {
			t.Errorf("unexpected note %q", n)
		}
	}
}

func TestOverheadSmall(t *testing.T) {
	f := OverheadAnalysis(opts())
	share, ok := f.seriesValue("controller cost", "round-share-%")
	if !ok {
		t.Fatal("missing round share")
	}
	// Paper: 0.8% of round time. Our simulated rounds are tens of
	// seconds while controller work is microseconds.
	if share > 1 {
		t.Errorf("controller share of round time = %.3f%%, want < 1%%", share)
	}
}

func TestEnergyModelErrorBounded(t *testing.T) {
	f := EnergyModelError(opts())
	mape, ok := f.seriesValue("estimator", "MAPE-%")
	if !ok {
		t.Fatal("missing MAPE")
	}
	// Paper reports 7.3%; accept the same order of magnitude.
	if mape < 0 || mape > 25 {
		t.Errorf("MAPE = %.1f%%, want single-digit-to-low-double-digit", mape)
	}
}

func TestHyperparamFavorsPaperChoice(t *testing.T) {
	f := HyperparamSensitivity(opts())
	if len(f.Series) != 2 {
		t.Fatal("hyper sweep incomplete")
	}
	// The measured best should not contradict the paper wildly: the
	// high learning rate must not be the worst option.
	lo, _ := f.seriesValue("PPW vs learning-rate (discount 0.1)", "0.1")
	hi, _ := f.seriesValue("PPW vs learning-rate (discount 0.1)", "0.9")
	if hi < lo*0.8 {
		t.Errorf("learning rate 0.9 (%.3f) should not trail 0.1 (%.3f) badly", hi, lo)
	}
}

func TestRealFedAvgShape(t *testing.T) {
	f := RealFedAvgValidation(opts())
	if len(f.Series) != 4 {
		t.Fatalf("realfl has %d series, want 4", len(f.Series))
	}
	last := func(label string) float64 {
		for _, s := range f.Series {
			if s.Label == label && len(s.Points) > 0 {
				return s.Points[len(s.Points)-1].Y
			}
		}
		return -1
	}
	iid := last("IID random")
	non := last("NonIID100 random")
	if iid <= non {
		t.Errorf("real training: IID final %.3f should beat NonIID100 %.3f", iid, non)
	}
}

func TestByIDAndIDs(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not resolvable", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestRenderProducesTable(t *testing.T) {
	f := Fig01Headroom(opts())
	out := f.Render()
	if !strings.Contains(out, "fig01") || !strings.Contains(out, "paper:") {
		t.Errorf("render missing header:\n%s", out)
	}
	if !strings.Contains(out, "OFL") {
		t.Errorf("render missing data:\n%s", out)
	}
}

func TestQuickRoundsFloor(t *testing.T) {
	o := Options{Quick: true}
	if o.rounds(1000) != 200 {
		t.Errorf("quick rounds = %d, want 200", o.rounds(1000))
	}
	if o.rounds(50) != 40 {
		t.Errorf("quick floor = %d, want 40", o.rounds(50))
	}
	full := Options{}
	if full.rounds(1000) != 1000 {
		t.Error("full rounds should pass through")
	}
}
