// Package fedavg runs genuine federated averaging (McMahan et al.) on
// synthetic classification data with the pure-Go trainer of
// internal/nn. It exists to validate the learning-side behaviour the
// paper's evaluation depends on — partial participation, local epochs,
// and Dirichlet non-IID degradation — with real gradients rather than
// the analytic model of internal/sim, and it provides the local
// training step for the TCP edge-cloud protocol (flnet).
package fedavg

import (
	"fmt"
	"math"

	"autofl/internal/data"
	"autofl/internal/nn"
	"autofl/internal/rng"
	"autofl/internal/tensor"
)

// Dataset is a labeled design matrix.
type Dataset struct {
	X      *tensor.Matrix
	Labels []int
}

// Len is the sample count.
func (d *Dataset) Len() int { return len(d.Labels) }

// SyntheticSpec describes the synthetic classification problem: a
// Gaussian mixture with one center per class. It stands in for MNIST
// in the real-training substrate (the substitution preserves what the
// evaluation needs — class structure and per-class separability).
type SyntheticSpec struct {
	Classes int
	// Dim is the feature dimensionality.
	Dim int
	// Spread is the intra-class standard deviation relative to the
	// unit-norm class centers; larger is harder.
	Spread float64
}

// DefaultSynthetic is a 10-class, 24-dimensional problem — learnable
// to high accuracy in tens of federated rounds, like MNIST.
func DefaultSynthetic() SyntheticSpec {
	return SyntheticSpec{Classes: 10, Dim: 24, Spread: 0.28}
}

// Problem holds the generated class centers and samples datasets from
// them.
type Problem struct {
	Spec    SyntheticSpec
	centers *tensor.Matrix
}

// NewProblem draws the class centers.
func NewProblem(spec SyntheticSpec, s *rng.Stream) *Problem {
	centers := tensor.New(spec.Classes, spec.Dim)
	for c := 0; c < spec.Classes; c++ {
		row := centers.Row(c)
		norm := 0.0
		for i := range row {
			row[i] = s.Normal(0, 1)
			norm += row[i] * row[i]
		}
		// Unit-normalize so Spread controls difficulty directly.
		if norm > 0 {
			inv := 1 / math.Sqrt(norm)
			for i := range row {
				row[i] *= inv
			}
		}
	}
	return &Problem{Spec: spec, centers: centers}
}

// Sample draws n labeled samples with the given per-class proportions
// (nil means uniform).
func (p *Problem) Sample(s *rng.Stream, n int, proportions []float64) *Dataset {
	if proportions == nil {
		proportions = make([]float64, p.Spec.Classes)
		for i := range proportions {
			proportions[i] = 1
		}
	}
	x := tensor.New(n, p.Spec.Dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := s.Categorical(proportions)
		labels[i] = c
		center := p.centers.Row(c)
		row := x.Row(i)
		for j := range row {
			row[j] = center[j] + s.Normal(0, p.Spec.Spread)
		}
	}
	return &Dataset{X: x, Labels: labels}
}

// ClientData materializes per-device datasets from a partition
// produced by data.Partition: IID devices sample uniformly, non-IID
// devices sample by their Dirichlet proportions.
func (p *Problem) ClientData(s *rng.Stream, partition []data.DeviceData) []*Dataset {
	out := make([]*Dataset, len(partition))
	for i := range partition {
		out[i] = p.Sample(s, partition[i].Samples, partition[i].Proportions)
	}
	return out
}

// LocalTrain runs E epochs of minibatch SGD on a client dataset
// starting from the given flat parameters, returning the updated
// parameters. It is the client-side step of Fig 2 (step 3), shared by
// the in-process trainer and the TCP clients.
func LocalTrain(model *nn.MLP, params []float64, ds *Dataset, epochs, batch int, lr float64, s *rng.Stream) ([]float64, error) {
	if err := model.SetParams(params); err != nil {
		return nil, err
	}
	n := ds.Len()
	if n == 0 {
		return model.Params(), nil
	}
	if batch < 1 {
		batch = 1
	}
	for e := 0; e < epochs; e++ {
		perm := s.Perm(n)
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			bx := tensor.New(end-start, ds.X.Cols)
			bl := make([]int, end-start)
			for i := start; i < end; i++ {
				copy(bx.Row(i-start), ds.X.Row(perm[i]))
				bl[i-start] = ds.Labels[perm[i]]
			}
			model.TrainBatch(bx, bl, lr)
		}
	}
	return model.Params(), nil
}

// Config drives an in-process federated training run.
type Config struct {
	Spec SyntheticSpec
	// Devices is the client population size.
	Devices int
	// Data is the heterogeneity scenario.
	Data data.Scenario
	// SamplesPerDevice is the mean local dataset size.
	SamplesPerDevice int
	// K, Epochs, Batch are FedAvg's per-round parameters.
	K, Epochs, Batch int
	// LR is the client learning rate.
	LR float64
	// TestSamples sizes the held-out evaluation set.
	TestSamples int
	// Hidden is the MLP hidden width.
	Hidden int
	// Seed drives everything.
	Seed uint64
}

// DefaultConfig returns a laptop-scale configuration that converges in
// tens of rounds.
func DefaultConfig() Config {
	return Config{
		Spec:             DefaultSynthetic(),
		Devices:          40,
		Data:             data.IdealIID,
		SamplesPerDevice: 80,
		K:                8,
		Epochs:           2,
		Batch:            16,
		LR:               0.1,
		TestSamples:      1000,
		Hidden:           32,
		Seed:             1,
	}
}

// Trainer runs FedAvg rounds in process.
type Trainer struct {
	cfg     Config
	problem *Problem
	clients []*Dataset
	// Partition records each client's class assignment.
	Partition []data.DeviceData
	test      *Dataset
	global    *nn.MLP
	scratch   *nn.MLP
	rng       *rng.Stream
}

// NewTrainer partitions data and initializes the global model.
func NewTrainer(cfg Config) (*Trainer, error) {
	if cfg.Devices <= 0 || cfg.K <= 0 {
		return nil, fmt.Errorf("fedavg: need positive Devices and K")
	}
	root := rng.New(cfg.Seed)
	problem := NewProblem(cfg.Spec, root.Fork())
	partition := data.Partition(root.Fork(), cfg.Data, cfg.Devices, cfg.Spec.Classes, cfg.SamplesPerDevice)
	clients := problem.ClientData(root.Fork(), partition)
	test := problem.Sample(root.Fork(), cfg.TestSamples, nil)
	global := nn.NewMLP(root.Fork(), cfg.Spec.Dim, cfg.Hidden, cfg.Spec.Classes)
	return &Trainer{
		cfg:       cfg,
		problem:   problem,
		clients:   clients,
		Partition: partition,
		test:      test,
		global:    global,
		scratch:   global.Clone(),
		rng:       root.Fork(),
	}, nil
}

// GlobalParams exposes the current global model parameters.
func (t *Trainer) GlobalParams() []float64 { return t.global.Params() }

// SetGlobalParams installs parameters (used by the TCP server, which
// owns aggregation).
func (t *Trainer) SetGlobalParams(p []float64) error { return t.global.SetParams(p) }

// Accuracy evaluates the global model on the held-out test set.
func (t *Trainer) Accuracy() float64 { return t.global.Accuracy(t.test.X, t.test.Labels) }

// ClientDataset exposes client i's local data (for the TCP clients).
func (t *Trainer) ClientDataset(i int) *Dataset { return t.clients[i] }

// Model returns a fresh clone of the global model architecture.
func (t *Trainer) Model() *nn.MLP { return t.global.Clone() }

// Selector picks the participant client indices for a round.
type Selector func(round int, partition []data.DeviceData) []int

// RandomSelector is the FedAvg baseline: K uniform clients.
func RandomSelector(k int, seed uint64) Selector {
	s := rng.New(seed)
	return func(round int, partition []data.DeviceData) []int {
		return s.Sample(len(partition), k)
	}
}

// QualitySelector picks the K clients with the highest IID quality —
// the selection a converged AutoFL controller settles on under data
// heterogeneity.
func QualitySelector(k int) Selector {
	return func(round int, partition []data.DeviceData) []int {
		type scored struct {
			idx int
			q   float64
		}
		all := make([]scored, len(partition))
		for i := range partition {
			all[i] = scored{i, partition[i].IIDQuality()}
		}
		for i := 1; i < len(all); i++ { // insertion sort, stable enough
			for j := i; j > 0 && all[j].q > all[j-1].q; j-- {
				all[j], all[j-1] = all[j-1], all[j]
			}
		}
		if k > len(all) {
			k = len(all)
		}
		out := make([]int, k)
		for i := 0; i < k; i++ {
			out[i] = all[i].idx
		}
		return out
	}
}

// Round executes one aggregation round with the given selector and
// returns the post-round test accuracy.
func (t *Trainer) Round(round int, sel Selector) (float64, error) {
	indices := sel(round, t.Partition)
	globalParams := t.global.Params()
	var vectors [][]float64
	var weights []float64
	for _, idx := range indices {
		if idx < 0 || idx >= len(t.clients) {
			return 0, fmt.Errorf("fedavg: selector returned invalid client %d", idx)
		}
		updated, err := LocalTrain(t.scratch, globalParams, t.clients[idx], t.cfg.Epochs, t.cfg.Batch, t.cfg.LR, t.rng)
		if err != nil {
			return 0, err
		}
		vectors = append(vectors, append([]float64(nil), updated...))
		weights = append(weights, float64(t.clients[idx].Len()))
	}
	if len(vectors) == 0 {
		return t.Accuracy(), nil
	}
	avg, err := nn.AverageParams(vectors, weights)
	if err != nil {
		return 0, err
	}
	if err := t.global.SetParams(avg); err != nil {
		return 0, err
	}
	return t.Accuracy(), nil
}

// Run executes rounds and returns the accuracy trace.
func (t *Trainer) Run(rounds int, sel Selector) ([]float64, error) {
	trace := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		acc, err := t.Round(r, sel)
		if err != nil {
			return trace, err
		}
		trace = append(trace, acc)
	}
	return trace, nil
}
