package fedavg

import (
	"testing"

	"autofl/internal/data"
	"autofl/internal/rng"
	"autofl/internal/tensor"
)

func TestIIDFedAvgConverges(t *testing.T) {
	cfg := DefaultConfig()
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := tr.Run(40, RandomSelector(cfg.K, 2))
	if err != nil {
		t.Fatal(err)
	}
	final := trace[len(trace)-1]
	if final < 0.85 {
		t.Errorf("IID FedAvg final accuracy = %.3f, want >= 0.85", final)
	}
	if trace[0] >= final {
		t.Error("accuracy should improve over rounds")
	}
}

func TestNonIIDConvergesSlower(t *testing.T) {
	// The paper's Fig 6(a) with real gradients: Dirichlet non-IID
	// clients slow and degrade convergence relative to IID.
	run := func(sc data.Scenario) []float64 {
		cfg := DefaultConfig()
		cfg.Data = sc
		cfg.Seed = 3
		tr, err := NewTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := tr.Run(40, RandomSelector(cfg.K, 4))
		if err != nil {
			t.Fatal(err)
		}
		return trace
	}
	iid := run(data.IdealIID)
	non := run(data.NonIID100)
	// Compare area under the accuracy curve: non-IID must trail.
	sum := func(xs []float64) float64 {
		total := 0.0
		for _, x := range xs {
			total += x
		}
		return total
	}
	if sum(non) >= sum(iid) {
		t.Errorf("non-IID accuracy curve (area %.1f) should trail IID (%.1f)", sum(non), sum(iid))
	}
}

func TestQualitySelectionBeatsRandomUnderHeterogeneity(t *testing.T) {
	// Cross-validation of the sim's central assumption: under heavy
	// non-IID data, a stable quality-driven cohort (what AutoFL learns)
	// trains better than random selection — with real gradients.
	run := func(sel Selector, seed uint64) float64 {
		cfg := DefaultConfig()
		cfg.Data = data.NonIID75
		cfg.Seed = seed
		tr, err := NewTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := tr.Run(40, sel)
		if err != nil {
			t.Fatal(err)
		}
		// Mean accuracy of the last 10 rounds smooths SGD noise.
		total := 0.0
		for _, a := range trace[len(trace)-10:] {
			total += a
		}
		return total / 10
	}
	cfg := DefaultConfig()
	random := run(RandomSelector(cfg.K, 5), 7)
	quality := run(QualitySelector(cfg.K), 7)
	if quality <= random {
		t.Errorf("quality selection accuracy %.3f should beat random %.3f at Non-IID(75%%)",
			quality, random)
	}
}

func TestTrainerDeterminism(t *testing.T) {
	run := func() []float64 {
		cfg := DefaultConfig()
		cfg.Seed = 9
		tr, _ := NewTrainer(cfg)
		trace, _ := tr.Run(5, RandomSelector(cfg.K, 10))
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("federated training must be deterministic for equal seeds")
		}
	}
}

func TestLocalTrainImprovesLocalFit(t *testing.T) {
	cfg := DefaultConfig()
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := tr.ClientDataset(0)
	model := tr.Model()
	before := model.Accuracy(ds.X, ds.Labels)
	params, err := LocalTrain(model, tr.GlobalParams(), ds, 5, cfg.Batch, cfg.LR, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SetParams(params); err != nil {
		t.Fatal(err)
	}
	after := model.Accuracy(ds.X, ds.Labels)
	if after <= before {
		t.Errorf("local training should improve local accuracy: %.3f -> %.3f", before, after)
	}
}

func TestLocalTrainEmptyDataset(t *testing.T) {
	cfg := DefaultConfig()
	tr, _ := NewTrainer(cfg)
	model := tr.Model()
	empty := &Dataset{X: tensor.New(0, cfg.Spec.Dim), Labels: nil}
	params, err := LocalTrain(model, tr.GlobalParams(), empty, 2, 8, 0.1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != model.NumParams() {
		t.Error("empty dataset should return unchanged parameters")
	}
}

func TestRoundWithBadSelector(t *testing.T) {
	cfg := DefaultConfig()
	tr, _ := NewTrainer(cfg)
	_, err := tr.Round(0, func(round int, p []data.DeviceData) []int { return []int{-1} })
	if err == nil {
		t.Error("invalid client index should error")
	}
	acc, err := tr.Round(0, func(round int, p []data.DeviceData) []int { return nil })
	if err != nil || acc < 0 {
		t.Error("empty selection should be a no-op round")
	}
}

func TestNewTrainerValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Devices = 0
	if _, err := NewTrainer(cfg); err == nil {
		t.Error("zero devices should error")
	}
}

func TestProblemSampleProportions(t *testing.T) {
	p := NewProblem(DefaultSynthetic(), rng.New(13))
	props := make([]float64, 10)
	props[3] = 1 // all mass on class 3
	ds := p.Sample(rng.New(14), 50, props)
	for _, l := range ds.Labels {
		if l != 3 {
			t.Fatalf("sample with concentrated proportions produced class %d", l)
		}
	}
}
