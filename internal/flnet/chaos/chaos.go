// Package chaos is the fault-injection harness for the repo's
// sockets: a net.Conn / net.Listener wrapper that injects failures —
// refused connects, mid-frame drops, indefinite hangs, slow-drip
// reads and writes — from a scriptable, seeded schedule. Tests drive
// the exact failure they mean to pin (connection #2 freezes after its
// first write; connection #0 drops ten bytes into a frame) instead of
// hoping a timing race reproduces it, so the dist/svc hardening paths
// are exercised in ordinary `go test` runs with no sleeps and no real
// flakiness.
//
// A frozen connection honors deadlines: a Read or Write that hangs
// returns os.ErrDeadlineExceeded once the deadline recorded by
// SetDeadline/SetReadDeadline/SetWriteDeadline passes, and unblocks
// with net.ErrClosed when the connection closes. Every blocked
// operation therefore has two deterministic exits, which is what
// makes hangs safe to inject under goroutine-leak checks.
package chaos

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// errDropped surfaces from operations on a connection the schedule
// hard-closed.
var errDropped = errors.New("chaos: connection dropped by schedule")

// Plan scripts the faults of one connection. The zero value is a
// clean connection. Operation counts are 1-based: DropAfterWrites: 3
// means the third Write finds the connection dead.
type Plan struct {
	// Refuse rejects the connection at establishment: a Listener
	// closes it immediately after accept, a Dialer fails the dial
	// without dialing — the partition-on-dial fault.
	Refuse bool
	// Blackhole establishes the connection and then hangs every
	// operation: the peer sees a successful connect that never
	// speaks and never reads.
	Blackhole bool
	// FreezeAfterReads, when > 0, freezes the connection at its Nth
	// Read: that read and every later operation in both directions
	// hang (until a deadline passes or the connection closes) — the
	// frozen-process fault a SIGSTOP'd worker exhibits.
	FreezeAfterReads int
	// FreezeAfterWrites is FreezeAfterReads for the write side.
	FreezeAfterWrites int
	// DropAfterReads, when > 0, hard-closes the connection at its
	// Nth Read.
	DropAfterReads int
	// DropAfterWrites, when > 0, hard-closes the connection at its
	// Nth Write, before any of its bytes are written.
	DropAfterWrites int
	// DropAfterBytes, when > 0, bounds total bytes written: the
	// write that would cross the budget writes only up to it and
	// then hard-closes — a drop mid-frame, the truncation a crashing
	// peer leaves behind.
	DropAfterBytes int
	// ReadDelay/WriteDelay sleep before each operation — the
	// slow-drip fault.
	ReadDelay, WriteDelay time.Duration
	// ChunkBytes, when > 0, splits writes into chunks of at most
	// this many bytes, applying WriteDelay before each, so one frame
	// tears across many small segments.
	ChunkBytes int
}

// clean reports whether the plan injects nothing.
func (p Plan) clean() bool { return p == Plan{} }

// Schedule assigns a Plan to each connection, keyed by establishment
// order (0-based).
type Schedule interface {
	PlanFor(i int) Plan
}

// Script scripts connections directly: connection i gets Script[i];
// connections past the end are clean.
type Script []Plan

// PlanFor implements Schedule.
func (s Script) PlanFor(i int) Plan {
	if i >= 0 && i < len(s) {
		return s[i]
	}
	return Plan{}
}

// Func adapts a function to a Schedule.
type Func func(i int) Plan

// PlanFor implements Schedule.
func (f Func) PlanFor(i int) Plan { return f(i) }

// Seeded derives each connection's plan from a seed: connection i
// draws one of plans with probability faultFrac (staying clean
// otherwise) via a splitmix64 hash of (seed, i). The same (seed, i)
// always yields the same plan, independent of what other connections
// do, so a chaos run is reproducible from its seed alone.
func Seeded(seed uint64, faultFrac float64, plans ...Plan) Schedule {
	return Func(func(i int) Plan {
		if faultFrac <= 0 || len(plans) == 0 {
			return Plan{}
		}
		h := splitmix(seed ^ splitmix(uint64(i)+0x9e3779b97f4a7c15))
		if float64(h>>11)/(1<<53) >= faultFrac {
			return Plan{}
		}
		return plans[int((h>>3)%uint64(len(plans)))]
	})
}

// splitmix is the splitmix64 finalizer — a tiny, dependency-free
// avalanche hash for the seeded schedule.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Conn is one connection under an injection plan.
type Conn struct {
	inner net.Conn
	plan  Plan

	mu      sync.Mutex
	reads   int
	writes  int
	written int
	frozen  bool
	rdl     time.Time
	wdl     time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

// Wrap applies a plan to an established connection.
func Wrap(inner net.Conn, p Plan) *Conn {
	return &Conn{inner: inner, plan: p, closed: make(chan struct{})}
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	c.reads++
	if c.plan.Blackhole || (c.plan.FreezeAfterReads > 0 && c.reads >= c.plan.FreezeAfterReads) {
		c.frozen = true
	}
	frozen := c.frozen
	drop := c.plan.DropAfterReads > 0 && c.reads >= c.plan.DropAfterReads
	dl := c.rdl
	delay := c.plan.ReadDelay
	c.mu.Unlock()
	if frozen {
		return 0, c.stall(dl)
	}
	if drop {
		c.inner.Close()
		return 0, errDropped
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return c.inner.Read(b)
}

// Write implements net.Conn.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	if c.plan.Blackhole || (c.plan.FreezeAfterWrites > 0 && c.writes >= c.plan.FreezeAfterWrites) {
		c.frozen = true
	}
	frozen := c.frozen
	drop := c.plan.DropAfterWrites > 0 && c.writes >= c.plan.DropAfterWrites
	allowed, truncate := len(b), false
	if c.plan.DropAfterBytes > 0 {
		if remaining := c.plan.DropAfterBytes - c.written; remaining < allowed {
			allowed, truncate = max(remaining, 0), true
		}
	}
	c.written += allowed
	dl := c.wdl
	c.mu.Unlock()
	if frozen {
		return 0, c.stall(dl)
	}
	if drop {
		c.inner.Close()
		return 0, errDropped
	}
	n, err := c.write(b[:allowed])
	if err != nil {
		return n, err
	}
	if truncate {
		c.inner.Close()
		return n, errDropped
	}
	return n, nil
}

// write forwards one write, chunked and delayed per the plan.
func (c *Conn) write(b []byte) (int, error) {
	chunk := c.plan.ChunkBytes
	if chunk <= 0 {
		chunk = len(b)
	}
	total := 0
	for {
		if d := c.plan.WriteDelay; d > 0 {
			time.Sleep(d)
		}
		n, err := c.inner.Write(b[:min(chunk, len(b))])
		total += n
		if err != nil {
			return total, err
		}
		if b = b[n:]; len(b) == 0 {
			return total, nil
		}
	}
}

// stall blocks a frozen operation until the connection closes or the
// deadline recorded when the operation began passes. A deadline set
// while the operation is already blocked is not observed — close the
// connection to unblock it, which is what the hardened teardown
// paths do anyway.
func (c *Conn) stall(dl time.Time) error {
	var expire <-chan time.Time
	if !dl.IsZero() {
		d := time.Until(dl)
		if d <= 0 {
			return os.ErrDeadlineExceeded
		}
		t := time.NewTimer(d)
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-c.closed:
		return net.ErrClosed
	case <-expire:
		return os.ErrDeadlineExceeded
	}
}

// Close implements net.Conn, unblocking any stalled operation.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl, c.wdl = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdl = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}

// Listener wraps a net.Listener, applying the schedule to accepted
// connections in accept order. A Refuse plan closes its connection
// immediately (still consuming a schedule slot) and keeps accepting.
type Listener struct {
	net.Listener
	sched Schedule

	mu   sync.Mutex
	next int
}

// NewListener wraps ln under the schedule (nil leaves every
// connection clean).
func NewListener(ln net.Listener, s Schedule) *Listener {
	return &Listener{Listener: ln, sched: s}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		i := l.next
		l.next++
		l.mu.Unlock()
		var p Plan
		if l.sched != nil {
			p = l.sched.PlanFor(i)
		}
		if p.Refuse {
			conn.Close()
			continue
		}
		if p.clean() {
			return conn, nil
		}
		return Wrap(conn, p), nil
	}
}

// Dialer dials with the schedule applied in dial order — the client
// side's fault seam (partition on dial, blackholed connects).
type Dialer struct {
	// Schedule assigns plans by dial order (nil = every dial clean).
	Schedule Schedule
	// Timeout bounds each dial (0 = no bound).
	Timeout time.Duration

	mu   sync.Mutex
	next int
}

// Dial establishes one connection under the next scheduled plan.
func (d *Dialer) Dial(network, addr string) (net.Conn, error) {
	d.mu.Lock()
	i := d.next
	d.next++
	d.mu.Unlock()
	var p Plan
	if d.Schedule != nil {
		p = d.Schedule.PlanFor(i)
	}
	if p.Refuse {
		return nil, fmt.Errorf("chaos: dial %s refused by schedule (conn %d)", addr, i)
	}
	conn, err := net.DialTimeout(network, addr, d.Timeout)
	if err != nil {
		return nil, err
	}
	if p.clean() {
		return conn, nil
	}
	return Wrap(conn, p), nil
}
