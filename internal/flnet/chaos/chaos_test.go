package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// tcpPair returns the two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { client.Close(); a.conn.Close() })
	return client, a.conn
}

func TestScriptSchedule(t *testing.T) {
	s := Script{{Refuse: true}, {DropAfterWrites: 1}}
	if !s.PlanFor(0).Refuse {
		t.Fatal("conn 0 should be refused")
	}
	if got := s.PlanFor(1).DropAfterWrites; got != 1 {
		t.Fatalf("conn 1 DropAfterWrites = %d, want 1", got)
	}
	if !s.PlanFor(2).clean() {
		t.Fatal("connections past the script must be clean")
	}
}

func TestSeededScheduleIsDeterministicAndMixed(t *testing.T) {
	plans := []Plan{{Refuse: true}, {Blackhole: true}, {DropAfterWrites: 2}}
	a := Seeded(777, 0.5, plans...)
	b := Seeded(777, 0.5, plans...)
	faulted, clean := 0, 0
	for i := 0; i < 200; i++ {
		pa, pb := a.PlanFor(i), b.PlanFor(i)
		if pa != pb {
			t.Fatalf("conn %d: same seed produced %+v and %+v", i, pa, pb)
		}
		if pa.clean() {
			clean++
		} else {
			faulted++
		}
	}
	if faulted == 0 || clean == 0 {
		t.Fatalf("seeded schedule degenerate: %d faulted, %d clean", faulted, clean)
	}
	if other := Seeded(778, 0.5, plans...); func() bool {
		for i := 0; i < 200; i++ {
			if other.PlanFor(i) != a.PlanFor(i) {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestFreezeHonorsReadDeadline(t *testing.T) {
	client, server := tcpPair(t)
	defer server.Close()
	c := Wrap(client, Plan{FreezeAfterReads: 1})
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	_, err := c.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("frozen read with deadline: err = %v, want deadline exceeded", err)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("frozen-read error %v must be a net.Error timeout", err)
	}
}

func TestFreezeUnblocksOnClose(t *testing.T) {
	client, server := tcpPair(t)
	defer server.Close()
	c := Wrap(client, Plan{Blackhole: true})
	got := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("hello"))
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("blackholed write returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	c.Close()
	select {
	case err := <-got:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("unblocked write err = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the frozen write")
	}
}

func TestFreezeAfterWritesFreezesBothDirections(t *testing.T) {
	client, server := tcpPair(t)
	defer server.Close()
	c := Wrap(client, Plan{FreezeAfterWrites: 2})
	if _, err := c.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	c.SetDeadline(time.Now().Add(20 * time.Millisecond))
	if _, err := c.Write([]byte("two")); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("write 2 should freeze, got %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read after freeze should hang too, got %v", err)
	}
}

func TestDropAfterBytesTruncatesMidFrame(t *testing.T) {
	client, server := tcpPair(t)
	c := Wrap(client, Plan{DropAfterBytes: 10})
	frame := bytes.Repeat([]byte{0xAB}, 100)
	n, err := c.Write(frame)
	if err == nil {
		t.Fatal("write past the byte budget must error")
	}
	if n != 10 {
		t.Fatalf("wrote %d bytes, want exactly the 10-byte budget", n)
	}
	got, err := io.ReadAll(server)
	if err != nil && !errors.Is(err, io.EOF) {
		// A hard local close surfaces as ECONNRESET on some stacks;
		// the payload bound below is the real assertion.
		t.Logf("peer read ended with %v", err)
	}
	if len(got) > 10 {
		t.Fatalf("peer saw %d bytes, want at most the 10-byte budget", len(got))
	}
}

func TestDropAfterWritesClosesBeforeWriting(t *testing.T) {
	client, server := tcpPair(t)
	c := Wrap(client, Plan{DropAfterWrites: 2})
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := c.Write([]byte("never")); err == nil {
		t.Fatal("write 2 should find the connection dropped")
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(server)
	if string(got) != "ok" {
		t.Fatalf("peer saw %q, want only the first write", got)
	}
}

func TestChunkedSlowDripDelivers(t *testing.T) {
	client, server := tcpPair(t)
	c := Wrap(client, Plan{ChunkBytes: 3, WriteDelay: time.Millisecond})
	payload := []byte("slow drip payload")
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.Write(payload); err != nil {
			t.Errorf("chunked write: %v", err)
		}
		c.Close()
	}()
	got, err := io.ReadAll(server)
	<-done
	if err != nil {
		t.Fatalf("peer read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("peer saw %q, want %q", got, payload)
	}
}

func TestListenerRefusesAndWraps(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewListener(raw, Script{{Refuse: true}, {DropAfterReads: 1}})
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			close(accepted)
			return
		}
		accepted <- c
	}()

	// Dial 0 is refused: the dial itself succeeds (the kernel
	// completes the handshake) but the connection closes immediately.
	c0, err := net.Dial("tcp", raw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c0.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c0.Read(make([]byte, 1)); err == nil {
		t.Fatal("refused connection should be closed by the listener")
	}
	c0.Close()

	// Dial 1 reaches Accept, wrapped under its plan.
	c1, err := net.Dial("tcp", raw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	sc, ok := <-accepted
	if !ok {
		t.Fatal("no accepted connection")
	}
	defer sc.Close()
	if _, ok := sc.(*Conn); !ok {
		t.Fatalf("accepted connection is %T, want *chaos.Conn", sc)
	}
	if _, err := sc.Read(make([]byte, 1)); err == nil {
		t.Fatal("DropAfterReads: 1 should kill the first read")
	}
}

func TestDialerRefuses(t *testing.T) {
	d := &Dialer{Schedule: Script{{Refuse: true}}}
	if _, err := d.Dial("tcp", "127.0.0.1:1"); err == nil {
		t.Fatal("scheduled refusal should fail the dial without dialing")
	}
}
