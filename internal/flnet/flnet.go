// Package flnet implements the edge-cloud FL wire protocol of Fig 2
// over TCP with gob encoding: an aggregation server (model owner) and
// device clients (data owners) exchanging global parameters and
// gradient updates. Combined with internal/fedavg it runs *genuine*
// federated training across real sockets — the system-shaped
// counterpart to the analytic simulator.
//
// Protocol, per aggregation round:
//
//	client → server  hello{deviceID}                   (once, on connect)
//	server → client  assign{round, params, E, B, lr}   (steps 1–2)
//	client           local training                    (step 3)
//	client → server  update{round, params, samples}    (step 4)
//	server           weighted averaging                (step 5)
//	server → client  done{params}                      (after last round)
package flnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrServerClosed is returned by Serve after Close tears the server
// down, mirroring net/http's idiom: a deliberate shutdown is
// distinguishable from a transport failure.
var ErrServerClosed = errors.New("flnet: server closed")

// message is the single wire envelope; Kind discriminates. A flat
// struct keeps gob simple (no interface registration) and the payload
// is dominated by Params anyway.
type message struct {
	Kind     string // "hello", "assign", "update", "done"
	Round    int
	DeviceID int
	Params   []float64
	Epochs   int
	Batch    int
	LR       float64
	Samples  int
}

const (
	kindHello  = "hello"
	kindAssign = "assign"
	kindUpdate = "update"
	kindDone   = "done"
)

// ServerConfig drives an aggregation server.
type ServerConfig struct {
	// Addr to listen on; ":0" picks a free port (see Server.Addr).
	Addr string
	// Clients is the number of devices that must register before
	// training starts (N).
	Clients int
	// Rounds to run.
	Rounds int
	// K participants per round.
	K int
	// Epochs, Batch, LR are the local-training parameters broadcast
	// with every assignment.
	Epochs, Batch int
	LR            float64
	// InitialParams seeds the global model.
	InitialParams []float64
	// Select picks the participant device IDs for a round from the
	// registered IDs. Nil selects the first K.
	Select func(round int, deviceIDs []int) []int
	// Evaluate, if non-nil, is called with the aggregated parameters
	// after every round; its return value is recorded in the history.
	Evaluate func(params []float64) float64
	// RoundTimeout bounds how long the server waits for updates
	// (defaults to 30s).
	RoundTimeout time.Duration
}

// RoundRecord is the server-side outcome of one round.
type RoundRecord struct {
	Round    int
	Updates  int
	Accuracy float64
}

// Server is the FL aggregation server.
type Server struct {
	cfg      ServerConfig
	listener net.Listener

	mu      sync.Mutex
	closed  bool
	pending map[net.Conn]struct{}
	clients map[int]*clientConn
	history []RoundRecord
	params  []float64
}

type clientConn struct {
	id   int
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewServer starts listening. Call Serve to run the training.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Clients <= 0 || cfg.K <= 0 || cfg.K > cfg.Clients {
		return nil, fmt.Errorf("flnet: need 0 < K <= Clients, got K=%d Clients=%d", cfg.K, cfg.Clients)
	}
	if len(cfg.InitialParams) == 0 {
		return nil, fmt.Errorf("flnet: missing initial parameters")
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("flnet: listen: %w", err)
	}
	return &Server{
		cfg:      cfg,
		listener: ln,
		pending:  make(map[net.Conn]struct{}),
		clients:  make(map[int]*clientConn),
		params:   append([]float64(nil), cfg.InitialParams...),
	}, nil
}

// Addr is the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close shuts the server down: the listener stops accepting (waking a
// Serve blocked in its registration loop, which then returns
// ErrServerClosed) and every connection — registered clients and
// accepted-but-unregistered ones still mid-hello — is closed,
// unblocking any in-flight I/O. Close is idempotent and safe to call
// from any goroutine — it is the cancellation path the original accept
// loop lacked.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.clients)+len(s.pending))
	for _, cc := range s.clients {
		conns = append(conns, cc.conn)
	}
	for c := range s.pending {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// closeClients closes every registered client connection. Double
// closes are harmless, so this can run from both Close and Serve's
// exit path: whichever way Serve returns — completion, shutdown, or a
// protocol error like a duplicate device id — no peer is left blocked
// on a read against a half-torn-down server.
func (s *Server) closeClients() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.clients))
	for _, cc := range s.clients {
		conns = append(conns, cc.conn)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// isClosed reports whether Close has been called.
func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// clientCount reports the number of registered devices.
func (s *Server) clientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// History returns the per-round records after Serve completes.
func (s *Server) History() []RoundRecord { return s.history }

// Params returns the current global parameters.
func (s *Server) Params() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.params...)
}

// Serve accepts the configured number of clients, runs all rounds, and
// shuts the cluster down. It blocks until training completes — or
// until Close is called from another goroutine, which aborts the
// accept loop and any in-flight round and makes Serve return
// ErrServerClosed.
func (s *Server) Serve() error {
	defer s.listener.Close()
	// Any exit — normal completion, shutdown, or an error return after
	// some clients already registered (bad hello, duplicate device id,
	// a failed assign) — must release the registered connections, or
	// the peer goroutines blocked reading them leak.
	defer s.closeClients()

	// Registration phase: accept until all devices check in.
	for s.clientCount() < s.cfg.Clients {
		conn, err := s.listener.Accept()
		if err != nil {
			if s.isClosed() {
				return ErrServerClosed
			}
			return fmt.Errorf("flnet: accept: %w", err)
		}
		// Track the connection before the hello read so a concurrent
		// Close can unblock a Serve stuck decoding a silent client's
		// hello (the conn is otherwise invisible to Close until it is
		// registered).
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.pending[conn] = struct{}{}
		s.mu.Unlock()

		cc := &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
		var hello message
		err = cc.dec.Decode(&hello)

		s.mu.Lock()
		delete(s.pending, conn)
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		if err != nil || hello.Kind != kindHello {
			s.mu.Unlock()
			conn.Close()
			return fmt.Errorf("flnet: bad hello: %v", err)
		}
		cc.id = hello.DeviceID
		if _, dup := s.clients[cc.id]; dup {
			s.mu.Unlock()
			conn.Close()
			return fmt.Errorf("flnet: duplicate device id %d", cc.id)
		}
		s.clients[cc.id] = cc
		s.mu.Unlock()
	}

	ids := make([]int, 0, len(s.clients))
	for id := range s.clients {
		ids = append(ids, id)
	}
	sortInts(ids)

	for round := 0; round < s.cfg.Rounds; round++ {
		if s.isClosed() {
			return ErrServerClosed
		}
		selected := s.selectFor(round, ids)
		// Step 2: broadcast the global model to the selected devices.
		for _, id := range selected {
			cc := s.clients[id]
			// A device that stopped reading must fail the round's
			// broadcast within the round budget, not wedge the server
			// behind a full socket buffer for good.
			cc.conn.SetWriteDeadline(time.Now().Add(s.cfg.RoundTimeout))
			err := cc.enc.Encode(message{
				Kind:   kindAssign,
				Round:  round,
				Params: s.params,
				Epochs: s.cfg.Epochs,
				Batch:  s.cfg.Batch,
				LR:     s.cfg.LR,
			})
			if err != nil {
				if s.isClosed() {
					return ErrServerClosed
				}
				return fmt.Errorf("flnet: assign to %d: %w", id, err)
			}
		}
		// Step 4: collect the updates.
		type result struct {
			msg message
			err error
		}
		results := make(chan result, len(selected))
		for _, id := range selected {
			cc := s.clients[id]
			go func(cc *clientConn) {
				cc.conn.SetReadDeadline(time.Now().Add(s.cfg.RoundTimeout))
				var m message
				err := cc.dec.Decode(&m)
				results <- result{m, err}
			}(cc)
		}
		var vectors [][]float64
		var weights []float64
		received := 0
		for range selected {
			r := <-results
			if r.err != nil {
				continue // straggler or failure: FedAvg drops it
			}
			if r.msg.Kind != kindUpdate || r.msg.Round != round {
				continue
			}
			vectors = append(vectors, r.msg.Params)
			weights = append(weights, float64(r.msg.Samples))
			received++
		}
		// A shutdown during the collect phase looks like every device
		// straggling (their conns were closed under us); don't let it
		// masquerade as a real zero-update round in the history.
		if s.isClosed() {
			return ErrServerClosed
		}
		// Step 5: aggregate.
		if len(vectors) > 0 {
			avg, err := averageParams(vectors, weights)
			if err != nil {
				return fmt.Errorf("flnet: aggregate round %d: %w", round, err)
			}
			s.mu.Lock()
			s.params = avg
			s.mu.Unlock()
		}
		rec := RoundRecord{Round: round, Updates: received}
		if s.cfg.Evaluate != nil {
			rec.Accuracy = s.cfg.Evaluate(s.Params())
		}
		s.history = append(s.history, rec)
	}

	// Shut the cluster down with the final model.
	for _, cc := range s.clients {
		cc.conn.SetWriteDeadline(time.Now().Add(s.cfg.RoundTimeout))
		cc.enc.Encode(message{Kind: kindDone, Params: s.params})
		cc.conn.Close()
	}
	return nil
}

func (s *Server) selectFor(round int, ids []int) []int {
	if s.cfg.Select != nil {
		sel := s.cfg.Select(round, ids)
		// Sanitize: valid, registered, at most K.
		valid := make([]int, 0, len(sel))
		for _, id := range sel {
			if _, ok := s.clients[id]; ok && len(valid) < s.cfg.K {
				valid = append(valid, id)
			}
		}
		if len(valid) > 0 {
			return valid
		}
	}
	if s.cfg.K >= len(ids) {
		return ids
	}
	// Deterministic rotation keeps every device in use without an RNG
	// dependency.
	start := (round * s.cfg.K) % len(ids)
	out := make([]int, 0, s.cfg.K)
	for i := 0; i < s.cfg.K; i++ {
		out = append(out, ids[(start+i)%len(ids)])
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// averageParams mirrors nn.AverageParams without importing the trainer
// (the server is model-agnostic: it averages opaque vectors).
func averageParams(vectors [][]float64, weights []float64) ([]float64, error) {
	n := len(vectors[0])
	total := 0.0
	for i, v := range vectors {
		if len(v) != n {
			return nil, fmt.Errorf("update %d has %d params, want %d", i, len(v), n)
		}
		total += weights[i]
	}
	if total <= 0 {
		return nil, fmt.Errorf("no update weight")
	}
	out := make([]float64, n)
	for i, v := range vectors {
		w := weights[i] / total
		for j, x := range v {
			out[j] += w * x
		}
	}
	return out, nil
}

// TrainFunc is the client-side local training step: given the global
// parameters and the round's (E, B, lr), return the locally-updated
// parameters and the local sample count.
type TrainFunc func(params []float64, epochs, batch int, lr float64) ([]float64, int, error)

// Client is one FL device endpoint.
type Client struct {
	// DeviceID identifies the device to the server.
	DeviceID int
	// Train runs the local training step (Fig 2, step 3).
	Train TrainFunc

	// FinalParams holds the global model delivered at shutdown.
	FinalParams []float64
	// RoundsParticipated counts assignments served.
	RoundsParticipated int
}

// Run connects to the server and serves training assignments until the
// server shuts the cluster down.
func (c *Client) Run(addr string) error {
	if c.Train == nil {
		return fmt.Errorf("flnet: client %d has no Train function", c.DeviceID)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("flnet: dial: %w", err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(message{Kind: kindHello, DeviceID: c.DeviceID}); err != nil {
		return fmt.Errorf("flnet: hello: %w", err)
	}
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			return fmt.Errorf("flnet: client %d receive: %w", c.DeviceID, err)
		}
		switch m.Kind {
		case kindAssign:
			c.RoundsParticipated++
			updated, samples, err := c.Train(m.Params, m.Epochs, m.Batch, m.LR)
			if err != nil {
				return fmt.Errorf("flnet: client %d train: %w", c.DeviceID, err)
			}
			err = enc.Encode(message{
				Kind:     kindUpdate,
				Round:    m.Round,
				DeviceID: c.DeviceID,
				Params:   updated,
				Samples:  samples,
			})
			if err != nil {
				return fmt.Errorf("flnet: client %d update: %w", c.DeviceID, err)
			}
		case kindDone:
			c.FinalParams = m.Params
			return nil
		default:
			return fmt.Errorf("flnet: client %d: unexpected message %q", c.DeviceID, m.Kind)
		}
	}
}
