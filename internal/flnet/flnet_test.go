package flnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"autofl/internal/fedavg"
	"autofl/internal/nn"
	"autofl/internal/rng"
)

// startCluster runs a server plus its clients backed by a real FedAvg
// trainer, returning the server after Serve completes.
func startCluster(t *testing.T, cfgMut func(*ServerConfig)) (*Server, *fedavg.Trainer) {
	t.Helper()
	fcfg := fedavg.DefaultConfig()
	fcfg.Devices = 12
	fcfg.K = 4
	tr, err := fedavg.NewTrainer(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	eval := tr.Model()
	scfg := ServerConfig{
		Addr:          "127.0.0.1:0",
		Clients:       fcfg.Devices,
		Rounds:        15,
		K:             fcfg.K,
		Epochs:        fcfg.Epochs,
		Batch:         fcfg.Batch,
		LR:            fcfg.LR,
		InitialParams: tr.GlobalParams(),
		Evaluate: func(params []float64) float64 {
			if err := tr.SetGlobalParams(params); err != nil {
				return 0
			}
			return tr.Accuracy()
		},
		RoundTimeout: 20 * time.Second,
	}
	if cfgMut != nil {
		cfgMut(&scfg)
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for id := 0; id < fcfg.Devices; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			model := eval.Clone()
			local := rng.New(uint64(100 + id))
			client := &Client{
				DeviceID: id,
				Train: func(params []float64, epochs, batch int, lr float64) ([]float64, int, error) {
					ds := tr.ClientDataset(id)
					updated, err := fedavg.LocalTrain(model, params, ds, epochs, batch, lr, local)
					if err != nil {
						return nil, 0, err
					}
					return updated, ds.Len(), nil
				},
			}
			if err := client.Run(srv.Addr()); err != nil {
				t.Errorf("client %d: %v", id, err)
			}
		}(id)
	}
	if err := srv.Serve(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return srv, tr
}

func TestClusterTrainsOverTCP(t *testing.T) {
	srv, _ := startCluster(t, nil)
	hist := srv.History()
	if len(hist) != 15 {
		t.Fatalf("history has %d rounds, want 15", len(hist))
	}
	for _, rec := range hist {
		if rec.Updates != 4 {
			t.Errorf("round %d received %d updates, want 4", rec.Round, rec.Updates)
		}
	}
	first, last := hist[0].Accuracy, hist[len(hist)-1].Accuracy
	if last <= first {
		t.Errorf("accuracy did not improve over TCP training: %.3f -> %.3f", first, last)
	}
	if last < 0.6 {
		t.Errorf("final accuracy %.3f too low for 15 real rounds", last)
	}
}

func TestCustomSelector(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	srv, _ := startCluster(t, func(cfg *ServerConfig) {
		cfg.Rounds = 5
		cfg.Select = func(round int, ids []int) []int {
			mu.Lock()
			defer mu.Unlock()
			// Always pick the first K ids.
			for _, id := range ids[:4] {
				seen[id]++
			}
			return ids[:4]
		}
	})
	if len(srv.History()) != 5 {
		t.Fatal("custom-selector run incomplete")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 4 {
		t.Errorf("selector picked %d distinct devices, want 4", len(seen))
	}
}

func TestRotationCoversAllDevices(t *testing.T) {
	s := &Server{cfg: ServerConfig{K: 3}, clients: map[int]*clientConn{}}
	ids := []int{0, 1, 2, 3, 4, 5, 6}
	seen := map[int]bool{}
	for round := 0; round < 7; round++ {
		for _, id := range s.selectFor(round, ids) {
			seen[id] = true
		}
	}
	if len(seen) != len(ids) {
		t.Errorf("rotation covered %d/%d devices", len(seen), len(ids))
	}
}

// TestServerCloseUnblocksAccept pins the graceful-shutdown path: a
// Serve blocked in its registration accept loop (fewer clients than
// configured ever connect) must return ErrServerClosed promptly when
// Close is called from another goroutine, instead of hanging forever.
func TestServerCloseUnblocksAccept(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: 3, Rounds: 1, K: 1,
		InitialParams: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One client registers and then waits for an assignment that will
	// never come; its connection must be closed by Close too.
	clientDone := make(chan error, 1)
	go func() {
		c := &Client{DeviceID: 0, Train: func(p []float64, e, b int, lr float64) ([]float64, int, error) {
			return p, 1, nil
		}}
		clientDone <- c.Run(srv.Addr())
	}()

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	time.Sleep(50 * time.Millisecond) // let the client register
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-serveDone:
		if !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	select {
	case err := <-clientDone:
		if err == nil {
			t.Error("client must observe the shutdown as an error (no done message was sent)")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not return after Close")
	}
	// Idempotent: a second Close is a no-op.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Clients: 0, K: 1, InitialParams: []float64{1}}); err == nil {
		t.Error("zero clients should fail")
	}
	if _, err := NewServer(ServerConfig{Clients: 2, K: 3, InitialParams: []float64{1}}); err == nil {
		t.Error("K > Clients should fail")
	}
	if _, err := NewServer(ServerConfig{Clients: 2, K: 1}); err == nil {
		t.Error("missing initial params should fail")
	}
}

func TestClientRequiresTrainFunc(t *testing.T) {
	c := &Client{DeviceID: 1}
	if err := c.Run("127.0.0.1:1"); err == nil {
		t.Error("client without Train must error")
	}
}

func TestAverageParamsWeighted(t *testing.T) {
	avg, err := averageParams([][]float64{{0, 0}, {4, 8}}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if avg[0] != 3 || avg[1] != 6 {
		t.Errorf("weighted average = %v", avg)
	}
	if _, err := averageParams([][]float64{{1}, {1, 2}}, []float64{1, 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := averageParams([][]float64{{1}}, []float64{0}); err == nil {
		t.Error("zero weight should error")
	}
}

func TestClientCountsParticipation(t *testing.T) {
	_, tr := startCluster(t, func(cfg *ServerConfig) { cfg.Rounds = 3 })
	_ = tr
	// Participation is verified indirectly through the history checks;
	// this test pins the Serve/Run handshake lifecycle (no hangs, no
	// leaked goroutines by the time startCluster returns).
}

func TestNNParamsInteropWithWire(t *testing.T) {
	// The wire format is the flat vector nn produces; verify a
	// round-trip through averaging preserves model validity.
	s := rng.New(5)
	m := nn.NewMLP(s, 4, 8, 3)
	p := m.Params()
	avg, err := averageParams([][]float64{p, p}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetParams(avg); err != nil {
		t.Fatal(err)
	}
}
