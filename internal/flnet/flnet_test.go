package flnet

import (
	"encoding/gob"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"autofl/internal/fedavg"
	"autofl/internal/nn"
	"autofl/internal/rng"
)

// startCluster runs a server plus its clients backed by a real FedAvg
// trainer, returning the server after Serve completes.
func startCluster(t *testing.T, cfgMut func(*ServerConfig)) (*Server, *fedavg.Trainer) {
	t.Helper()
	fcfg := fedavg.DefaultConfig()
	fcfg.Devices = 12
	fcfg.K = 4
	tr, err := fedavg.NewTrainer(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	eval := tr.Model()
	scfg := ServerConfig{
		Addr:          "127.0.0.1:0",
		Clients:       fcfg.Devices,
		Rounds:        15,
		K:             fcfg.K,
		Epochs:        fcfg.Epochs,
		Batch:         fcfg.Batch,
		LR:            fcfg.LR,
		InitialParams: tr.GlobalParams(),
		Evaluate: func(params []float64) float64 {
			if err := tr.SetGlobalParams(params); err != nil {
				return 0
			}
			return tr.Accuracy()
		},
		RoundTimeout: 20 * time.Second,
	}
	if cfgMut != nil {
		cfgMut(&scfg)
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for id := 0; id < fcfg.Devices; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			model := eval.Clone()
			local := rng.New(uint64(100 + id))
			client := &Client{
				DeviceID: id,
				Train: func(params []float64, epochs, batch int, lr float64) ([]float64, int, error) {
					ds := tr.ClientDataset(id)
					updated, err := fedavg.LocalTrain(model, params, ds, epochs, batch, lr, local)
					if err != nil {
						return nil, 0, err
					}
					return updated, ds.Len(), nil
				},
			}
			if err := client.Run(srv.Addr()); err != nil {
				t.Errorf("client %d: %v", id, err)
			}
		}(id)
	}
	if err := srv.Serve(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return srv, tr
}

func TestClusterTrainsOverTCP(t *testing.T) {
	srv, _ := startCluster(t, nil)
	hist := srv.History()
	if len(hist) != 15 {
		t.Fatalf("history has %d rounds, want 15", len(hist))
	}
	for _, rec := range hist {
		if rec.Updates != 4 {
			t.Errorf("round %d received %d updates, want 4", rec.Round, rec.Updates)
		}
	}
	first, last := hist[0].Accuracy, hist[len(hist)-1].Accuracy
	if last <= first {
		t.Errorf("accuracy did not improve over TCP training: %.3f -> %.3f", first, last)
	}
	if last < 0.6 {
		t.Errorf("final accuracy %.3f too low for 15 real rounds", last)
	}
}

func TestCustomSelector(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	srv, _ := startCluster(t, func(cfg *ServerConfig) {
		cfg.Rounds = 5
		cfg.Select = func(round int, ids []int) []int {
			mu.Lock()
			defer mu.Unlock()
			// Always pick the first K ids.
			for _, id := range ids[:4] {
				seen[id]++
			}
			return ids[:4]
		}
	})
	if len(srv.History()) != 5 {
		t.Fatal("custom-selector run incomplete")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 4 {
		t.Errorf("selector picked %d distinct devices, want 4", len(seen))
	}
}

func TestRotationCoversAllDevices(t *testing.T) {
	s := &Server{cfg: ServerConfig{K: 3}, clients: map[int]*clientConn{}}
	ids := []int{0, 1, 2, 3, 4, 5, 6}
	seen := map[int]bool{}
	for round := 0; round < 7; round++ {
		for _, id := range s.selectFor(round, ids) {
			seen[id] = true
		}
	}
	if len(seen) != len(ids) {
		t.Errorf("rotation covered %d/%d devices", len(seen), len(ids))
	}
}

// TestServerCloseUnblocksAccept pins the graceful-shutdown path: a
// Serve blocked in its registration accept loop (fewer clients than
// configured ever connect) must return ErrServerClosed promptly when
// Close is called from another goroutine, instead of hanging forever.
func TestServerCloseUnblocksAccept(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: 3, Rounds: 1, K: 1,
		InitialParams: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One client registers and then waits for an assignment that will
	// never come; its connection must be closed by Close too.
	clientDone := make(chan error, 1)
	go func() {
		c := &Client{DeviceID: 0, Train: func(p []float64, e, b int, lr float64) ([]float64, int, error) {
			return p, 1, nil
		}}
		clientDone <- c.Run(srv.Addr())
	}()

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	time.Sleep(50 * time.Millisecond) // let the client register
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-serveDone:
		if !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	select {
	case err := <-clientDone:
		if err == nil {
			t.Error("client must observe the shutdown as an error (no done message was sent)")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not return after Close")
	}
	// Idempotent: a second Close is a no-op.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Clients: 0, K: 1, InitialParams: []float64{1}}); err == nil {
		t.Error("zero clients should fail")
	}
	if _, err := NewServer(ServerConfig{Clients: 2, K: 3, InitialParams: []float64{1}}); err == nil {
		t.Error("K > Clients should fail")
	}
	if _, err := NewServer(ServerConfig{Clients: 2, K: 1}); err == nil {
		t.Error("missing initial params should fail")
	}
}

func TestClientRequiresTrainFunc(t *testing.T) {
	c := &Client{DeviceID: 1}
	if err := c.Run("127.0.0.1:1"); err == nil {
		t.Error("client without Train must error")
	}
}

func TestAverageParamsWeighted(t *testing.T) {
	avg, err := averageParams([][]float64{{0, 0}, {4, 8}}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if avg[0] != 3 || avg[1] != 6 {
		t.Errorf("weighted average = %v", avg)
	}
	if _, err := averageParams([][]float64{{1}, {1, 2}}, []float64{1, 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := averageParams([][]float64{{1}}, []float64{0}); err == nil {
		t.Error("zero weight should error")
	}
}

func TestClientCountsParticipation(t *testing.T) {
	_, tr := startCluster(t, func(cfg *ServerConfig) { cfg.Rounds = 3 })
	_ = tr
	// Participation is verified indirectly through the history checks;
	// this test pins the Serve/Run handshake lifecycle (no hangs, no
	// leaked goroutines by the time startCluster returns).
}

// waitFor polls cond until it holds or the deadline passes — the
// bounded alternative to fixed sleeps for cross-goroutine state.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseUnblocksPendingHello pins the second shutdown gap: a client
// that connects but never speaks parks Serve inside the hello decode,
// where the connection used to be invisible to Close (it is not yet in
// the client map). Close must now reach it through the pending set and
// make Serve return ErrServerClosed.
func TestCloseUnblocksPendingHello(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: 1, Rounds: 1, K: 1,
		InitialParams: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	conn, err := net.Dial("tcp", srv.Addr()) // silent: hello never sent
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitFor(t, 5*time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.pending) == 1
	}, "the silent connection to reach the hello decode")

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-serveDone:
		if !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve still blocked in the hello decode after Close")
	}
}

// TestServeErrorClosesRegisteredClients pins the error-return leak: a
// protocol failure mid-registration (here a duplicate device id) made
// Serve return while earlier clients stayed connected, leaving their
// goroutines blocked on reads forever. Serve's exit path must close
// every registered connection.
func TestServeErrorClosesRegisteredClients(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: 2, Rounds: 1, K: 1,
		InitialParams: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	// First client registers, then blocks waiting for an assignment
	// that will never arrive.
	a, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := gob.NewEncoder(a).Encode(message{Kind: kindHello, DeviceID: 7}); err != nil {
		t.Fatal(err)
	}
	aDone := make(chan error, 1)
	go func() {
		var m message
		aDone <- gob.NewDecoder(a).Decode(&m)
	}()
	waitFor(t, 5*time.Second, func() bool { return srv.clientCount() == 1 },
		"the first client to register")

	// Second client reuses the id, poisoning the registration.
	b, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := gob.NewEncoder(b).Encode(message{Kind: kindHello, DeviceID: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if err == nil || !strings.Contains(err.Error(), "duplicate device id") {
			t.Errorf("Serve returned %v, want a duplicate-device-id error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return on the duplicate hello")
	}
	select {
	case <-aDone:
		// The blocked read was released (with an error — no done
		// message was ever sent); the value itself does not matter.
	case <-time.After(5 * time.Second):
		t.Fatal("registered client still blocked after Serve's error return")
	}
}

// TestServerLifecycleNoGoroutineLeaks runs full serve/close cycles —
// completed clusters and aborted registrations alike — and pins the
// goroutine count: long-lived processes (tests, future daemons) must
// be able to cycle servers without accreting blocked readers.
func TestServerLifecycleNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	train := func(p []float64, e, b int, lr float64) ([]float64, int, error) {
		return p, 1, nil
	}
	for cycle := 0; cycle < 3; cycle++ {
		// A cluster that completes normally.
		srv, err := NewServer(ServerConfig{
			Addr: "127.0.0.1:0", Clients: 3, Rounds: 2, K: 2,
			InitialParams: []float64{1, 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for id := 0; id < 3; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				c := &Client{DeviceID: id, Train: train}
				if err := c.Run(srv.Addr()); err != nil {
					t.Errorf("cycle %d client %d: %v", cycle, id, err)
				}
			}(id)
		}
		if err := srv.Serve(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		wg.Wait()
		srv.Close()

		// A registration aborted by Close with a silent client pending.
		srv2, err := NewServer(ServerConfig{
			Addr: "127.0.0.1:0", Clients: 2, Rounds: 1, K: 1,
			InitialParams: []float64{1},
		})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv2.Serve() }()
		conn, err := net.Dial("tcp", srv2.Addr())
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, 5*time.Second, func() bool {
			srv2.mu.Lock()
			defer srv2.mu.Unlock()
			return len(srv2.pending) == 1
		}, "the silent connection to be tracked")
		srv2.Close()
		if err := <-done; !errors.Is(err, ErrServerClosed) {
			t.Fatalf("cycle %d aborted serve returned %v", cycle, err)
		}
		conn.Close()
	}
	// Allow released goroutines to unwind before measuring.
	waitFor(t, 5*time.Second, func() bool {
		return runtime.NumGoroutine() <= baseline+2
	}, "goroutines to drain back to the baseline")
}

func TestNNParamsInteropWithWire(t *testing.T) {
	// The wire format is the flat vector nn produces; verify a
	// round-trip through averaging preserves model validity.
	s := rng.New(5)
	m := nn.NewMLP(s, 4, 8, 3)
	p := m.Params()
	avg, err := averageParams([][]float64{p, p}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetParams(avg); err != nil {
		t.Fatal(err)
	}
}
