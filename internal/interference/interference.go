// Package interference models on-device co-runner interference — the
// stochastic runtime variance source of AutoFL §3.2 and §5.2. The
// paper emulates interference with a synthetic application that
// follows the CPU and memory utilization patterns of web browsing; we
// do the same with a phase-based generator (page load bursts, idle
// reading, scrolling), plus the mapping from observed co-runner
// utilization to training-throughput contention (time-slice and cache
// competition, memory-bandwidth sharing, thermal throttling).
package interference

import "autofl/internal/rng"

// Load is one round's observed co-runner activity on a device: the
// S_Co_CPU and S_Co_MEM state features of Table 1, both in [0, 1].
type Load struct {
	CPUUtil float64
	MemUtil float64
}

// phase is one behavioural mode of the synthetic web-browsing
// co-runner.
type phase struct {
	weight          float64
	cpuMean, cpuStd float64
	memMean, memStd float64
}

// Browsing phases: a page load saturates cores, reading idles,
// scrolling sits in between.
var browsingPhases = []phase{
	{weight: 0.40, cpuMean: 0.90, cpuStd: 0.06, memMean: 0.65, memStd: 0.10}, // page load
	{weight: 0.30, cpuMean: 0.50, cpuStd: 0.10, memMean: 0.45, memStd: 0.10}, // scroll/render
	{weight: 0.30, cpuMean: 0.12, cpuStd: 0.05, memMean: 0.30, memStd: 0.08}, // idle reading
}

// persistence is the probability that the co-runner state observed at
// selection time persists through the round's execution. The
// complement is the "surprise" runtime variance that no selector can
// observe away — a co-runner launched after the round began.
const persistence = 0.6

// WeightedLoad pairs a representative co-runner load with its
// occurrence probability, for analytic risk estimates.
type WeightedLoad struct {
	Weight float64
	Load   Load
}

// phaseWeights and weightedLoads are derived once from the static
// phase table, so per-round sampling and per-candidate risk scoring
// allocate nothing.
var (
	phaseWeights = func() []float64 {
		w := make([]float64, len(browsingPhases))
		for i, p := range browsingPhases {
			w[i] = p.weight
		}
		return w
	}()
	weightedLoads = func() []WeightedLoad {
		out := make([]WeightedLoad, len(browsingPhases))
		for i, p := range browsingPhases {
			out[i] = WeightedLoad{Weight: p.weight, Load: Load{CPUUtil: p.cpuMean, MemUtil: p.memMean}}
		}
		return out
	}()
)

// WeightedLoads returns the phase mixture at its mean utilizations.
// The slice is shared; callers must not mutate it.
func WeightedLoads() []WeightedLoad {
	return weightedLoads
}

// SurpriseProb is the probability that a device's co-runner state
// changes between selection and execution and a co-runner is running.
func (m Model) SurpriseProb() float64 { return (1 - persistence) * m.Prob }

// Actual returns the load in effect during round execution given the
// load observed at selection time: usually the observed load persists,
// otherwise the state is redrawn (a browser opened or closed
// mid-round).
func (m Model) Actual(s *rng.Stream, observed Load) Load {
	if s.Bool(persistence) {
		return observed
	}
	return m.Sample(s)
}

// Model is the fleet-level interference configuration.
type Model struct {
	// Prob is the probability that a given device has a co-running
	// application during a given round. The paper launches the
	// co-runner on a random subset of devices.
	Prob float64
}

// None returns the interference-free environment (Fig 5a / Fig 10a).
func None() Model { return Model{Prob: 0} }

// Default returns the paper's interference environment: a web-browsing
// co-runner appears on a random subset of devices each round.
func Default() Model { return Model{Prob: 0.5} }

// Heavy returns an environment where most devices see a co-runner.
func Heavy() Model { return Model{Prob: 0.85} }

// Sample draws one device's co-runner load for one round.
func (m Model) Sample(s *rng.Stream) Load {
	if !s.Bool(m.Prob) {
		return Load{}
	}
	p := browsingPhases[s.Categorical(phaseWeights)]
	return Load{
		CPUUtil: s.ClampedNormal(p.cpuMean, p.cpuStd, 0, 1),
		MemUtil: s.ClampedNormal(p.memMean, p.memStd, 0, 1),
	}
}

// CPUContention maps co-runner CPU utilization to the fraction of
// training CPU throughput lost: time-slice competition scaled by the
// co-runner's demand, a cache-pollution term, and a thermal-throttling
// penalty once the SoC runs hot (§6.2 names exactly these mechanisms:
// "competition for CPU time slice and cache" and "frequent thermal
// throttling").
func (l Load) CPUContention() float64 {
	c := 0.50*l.CPUUtil + 0.12*l.CPUUtil // time slice + cache pollution
	if l.CPUUtil > 0.75 {
		c += 0.18 // thermal throttling kicks in under sustained load
	}
	if c > 0.9 {
		c = 0.9
	}
	return c
}

// MemContention maps co-runner memory usage to the fraction of memory
// bandwidth lost to the co-runner. Memory interference hits both CPU
// and GPU training since the SoC memory controller is shared.
func (l Load) MemContention() float64 {
	c := 0.45 * l.MemUtil
	if c > 0.8 {
		c = 0.8
	}
	return c
}
