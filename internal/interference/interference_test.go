package interference

import (
	"testing"
	"testing/quick"

	"autofl/internal/rng"
)

func TestNoneIsQuiet(t *testing.T) {
	s := rng.New(1)
	m := None()
	for i := 0; i < 100; i++ {
		l := m.Sample(s)
		if l.CPUUtil != 0 || l.MemUtil != 0 {
			t.Fatal("None model produced co-runner load")
		}
	}
}

func TestDefaultProducesMixOfLoads(t *testing.T) {
	s := rng.New(2)
	m := Default()
	quiet, busy := 0, 0
	for i := 0; i < 2000; i++ {
		l := m.Sample(s)
		if l.CPUUtil == 0 && l.MemUtil == 0 {
			quiet++
		} else {
			busy++
		}
	}
	if quiet < 600 || busy < 600 {
		t.Errorf("default model mix quiet=%d busy=%d; co-runner should appear on a random subset", quiet, busy)
	}
}

func TestHeavyBusierThanDefault(t *testing.T) {
	count := func(m Model, seed uint64) int {
		s := rng.New(seed)
		busy := 0
		for i := 0; i < 2000; i++ {
			if l := m.Sample(s); l.CPUUtil > 0 {
				busy++
			}
		}
		return busy
	}
	if count(Heavy(), 3) <= count(Default(), 3) {
		t.Error("Heavy environment should produce co-runners more often")
	}
}

func TestLoadsInUnitRange(t *testing.T) {
	s := rng.New(4)
	m := Heavy()
	for i := 0; i < 5000; i++ {
		l := m.Sample(s)
		if l.CPUUtil < 0 || l.CPUUtil > 1 || l.MemUtil < 0 || l.MemUtil > 1 {
			t.Fatalf("load out of range: %+v", l)
		}
	}
}

func TestPhasesCoverTable1Buckets(t *testing.T) {
	// The Table 1 S_Co_CPU buckets are none / <25% / <75% / <=100%.
	// The browsing phases should populate all four over many draws.
	s := rng.New(5)
	m := Heavy()
	var buckets [4]int
	for i := 0; i < 5000; i++ {
		l := m.Sample(s)
		switch {
		case l.CPUUtil == 0:
			buckets[0]++
		case l.CPUUtil < 0.25:
			buckets[1]++
		case l.CPUUtil < 0.75:
			buckets[2]++
		default:
			buckets[3]++
		}
	}
	for i, c := range buckets {
		if c == 0 {
			t.Errorf("S_Co_CPU bucket %d never observed", i)
		}
	}
}

func TestCPUContention(t *testing.T) {
	if got := (Load{}).CPUContention(); got != 0 {
		t.Errorf("no co-runner should mean zero contention, got %v", got)
	}
	light := Load{CPUUtil: 0.2}
	heavy := Load{CPUUtil: 0.9}
	if light.CPUContention() >= heavy.CPUContention() {
		t.Error("contention must grow with co-runner utilization")
	}
	if heavy.CPUContention() > 0.9 {
		t.Error("contention must stay below the 0.9 cap")
	}
}

func TestThermalThrottlingKink(t *testing.T) {
	// Just past the throttling threshold contention jumps by the
	// throttling penalty.
	below := Load{CPUUtil: 0.74}.CPUContention()
	above := Load{CPUUtil: 0.76}.CPUContention()
	if above-below < 0.15 {
		t.Errorf("throttling penalty missing: %.3f -> %.3f", below, above)
	}
}

func TestMemContention(t *testing.T) {
	if got := (Load{}).MemContention(); got != 0 {
		t.Errorf("no co-runner should mean zero memory contention, got %v", got)
	}
	if (Load{MemUtil: 1}).MemContention() > 0.8 {
		t.Error("memory contention must respect the 0.8 cap")
	}
}

// Property: contention values are always in [0, 0.9] and monotone in
// the underlying utilization.
func TestContentionProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		if a > b {
			a, b = b, a
		}
		la, lb := Load{CPUUtil: a, MemUtil: a}, Load{CPUUtil: b, MemUtil: b}
		if la.CPUContention() > lb.CPUContention()+1e-12 {
			return false
		}
		if la.MemContention() > lb.MemContention()+1e-12 {
			return false
		}
		return lb.CPUContention() <= 0.9 && lb.MemContention() <= 0.8 &&
			la.CPUContention() >= 0 && la.MemContention() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
