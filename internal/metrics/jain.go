package metrics

// JainFairness returns Jain's fairness index over the given allocation
// — here, per-device participation counts: (Σx)² / (n·Σx²). It is 1
// when every device participated equally, 1/n when a single device
// took every slot, and 0 for an empty or all-zero allocation.
func JainFairness(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	return JainFromMoments(sum, sumSq, len(xs))
}

// JainFromMoments computes Jain's index from the running moments
// Σx and Σx² over n devices. The engine maintains these moments
// incrementally (a count going c→c+1 adds 1 to the sum and 2c+1 to the
// sum of squares), so a per-round fairness value costs O(participants),
// not O(population).
func JainFromMoments(sum, sumSq float64, n int) float64 {
	if n == 0 || sumSq <= 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}
