package metrics

import (
	"math"
	"testing"

	"autofl/internal/rng"
)

func TestJainFairnessUniform(t *testing.T) {
	for _, n := range []int{1, 2, 10, 1000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 7
		}
		if got := JainFairness(xs); math.Abs(got-1) > 1e-12 {
			t.Errorf("uniform n=%d: Jain = %g, want 1", n, got)
		}
	}
}

func TestJainFairnessSingleParticipant(t *testing.T) {
	for _, n := range []int{1, 4, 256} {
		xs := make([]float64, n)
		xs[n/2] = 42
		want := 1 / float64(n)
		if got := JainFairness(xs); math.Abs(got-want) > 1e-12 {
			t.Errorf("single participant n=%d: Jain = %g, want %g", n, got, want)
		}
	}
}

func TestJainFairnessDegenerate(t *testing.T) {
	if got := JainFairness(nil); got != 0 {
		t.Errorf("Jain(nil) = %g, want 0", got)
	}
	if got := JainFairness([]float64{0, 0, 0}); got != 0 {
		t.Errorf("Jain(zeros) = %g, want 0", got)
	}
}

// TestJainFairnessBounds: random allocations stay within [1/n, 1], and
// the incremental-moment form agrees with the direct form exactly when
// the moments are accumulated the way the engine does (integer count
// bumps: sum += 1, sumSq += 2c+1).
func TestJainFairnessBounds(t *testing.T) {
	s := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		n := 1 + s.IntN(300)
		counts := make([]float64, n)
		var sum, sumSq float64
		events := s.IntN(5 * n)
		for e := 0; e < events; e++ {
			i := s.IntN(n)
			c := counts[i]
			counts[i]++
			sum++
			sumSq += 2*c + 1
		}
		direct := JainFairness(counts)
		if events == 0 {
			if direct != 0 {
				t.Fatalf("no events: Jain = %g, want 0", direct)
			}
			continue
		}
		lo := 1 / float64(n)
		if direct < lo-1e-12 || direct > 1+1e-12 {
			t.Fatalf("n=%d events=%d: Jain = %g outside [%g, 1]", n, events, direct, lo)
		}
		if inc := JainFromMoments(sum, sumSq, n); inc != direct {
			t.Fatalf("incremental moments diverge: %g vs %g", inc, direct)
		}
	}
}

// TestJainFairnessMoreEvenIsFairer: shifting a participation from the
// most-loaded device to the least-loaded never lowers the index.
func TestJainFairnessMoreEvenIsFairer(t *testing.T) {
	xs := []float64{10, 3, 1, 0}
	prev := JainFairness(xs)
	for xs[0] > xs[3]+1 {
		xs[0]--
		xs[3]++
		next := JainFairness(xs)
		if next < prev-1e-12 {
			t.Fatalf("evening the allocation lowered Jain: %g -> %g at %v", prev, next, xs)
		}
		prev = next
	}
}
