// Package metrics computes and formats the evaluation metrics the
// AutoFL paper reports: normalized performance-per-watt (global and
// local), convergence-time improvement, and summary statistics, plus
// plain-text table rendering for the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"strings"

	"autofl/internal/sim"
)

// Comparison normalizes a set of runs against a named baseline, the
// way every PPW figure in the paper is presented ("normalized to the
// FedAvg-Random baseline").
type Comparison struct {
	Baseline string
	Rows     []Row
}

// Row is one policy's normalized standing.
type Row struct {
	Policy string
	// GlobalPPWx and LocalPPWx are the PPW improvements over the
	// baseline (1.0 = parity).
	GlobalPPWx float64
	LocalPPWx  float64
	// ConvTimex is the convergence-time improvement over the baseline
	// (>1 means faster).
	ConvTimex float64
	// Converged echoes whether the run reached the accuracy target.
	Converged bool
	// ConvergedRound is the 1-based convergence round; 0 means the
	// run never converged (rendered distinctly, never as "round 0").
	ConvergedRound int
	// FinalAccuracy is the end-of-run model accuracy.
	FinalAccuracy float64
	// Rounds is the number of executed rounds.
	Rounds int
}

// Compare normalizes results against the run whose policy name equals
// baseline (which must be present).
func Compare(baseline string, results []*sim.Result) (Comparison, error) {
	var base *sim.Result
	for _, r := range results {
		if r.Policy == baseline {
			base = r
			break
		}
	}
	if base == nil {
		return Comparison{}, fmt.Errorf("metrics: baseline %q not among results", baseline)
	}
	out := Comparison{Baseline: baseline}
	for _, r := range results {
		out.Rows = append(out.Rows, Row{
			Policy:         r.Policy,
			GlobalPPWx:     ratio(r.GlobalPPW(), base.GlobalPPW()),
			LocalPPWx:      ratio(r.LocalPPW(), base.LocalPPW()),
			ConvTimex:      ratio(effectiveTime(base), effectiveTime(r)),
			Converged:      r.Converged,
			ConvergedRound: r.ConvergedRound,
			FinalAccuracy:  r.FinalAccuracy,
			Rounds:         r.Rounds,
		})
	}
	return out, nil
}

// effectiveTime is time-to-target for converged runs; for stalled runs
// it scales the elapsed time by the inverse progress, approximating
// the time a run *would* need (infinite when progress is zero).
func effectiveTime(r *sim.Result) float64 {
	p := r.Progress()
	if p <= 0 {
		return math.Inf(1)
	}
	return r.TimeToTargetSec / p
}

func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// Geomean returns the geometric mean of positive values; zero if none.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean; zero for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table renders rows as an aligned plain-text table. Each row must
// have the same number of cells as the header.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// FormatX renders a normalized multiplier the way the paper does
// ("4.7x"); infinities become ">100x" (a baseline that never made
// progress).
func FormatX(v float64) string {
	if math.IsInf(v, 1) {
		return ">100x"
	}
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1fx", v)
}

// FormatRound renders a convergence round: the round number for a
// converged run (falling back to the executed count when only that is
// known), "never" for ConvergedRound == 0 on an unconverged run — so
// a never-converged result cannot be misread as round 0.
func FormatRound(converged bool, convergedRound, rounds int) string {
	if !converged {
		return "never"
	}
	if convergedRound == 0 {
		convergedRound = rounds
	}
	return fmt.Sprintf("%d", convergedRound)
}

// String renders the comparison as a table.
func (c Comparison) String() string {
	rows := make([][]string, 0, len(c.Rows))
	for _, r := range c.Rows {
		conv := FormatRound(r.Converged, r.ConvergedRound, r.Rounds)
		rows = append(rows, []string{
			r.Policy,
			FormatX(r.GlobalPPWx),
			FormatX(r.LocalPPWx),
			FormatX(r.ConvTimex),
			fmt.Sprintf("%.3f", r.FinalAccuracy),
			conv,
		})
	}
	return Table(
		[]string{"policy", "global-ppw", "local-ppw", "conv-time", "accuracy", "rounds"},
		rows,
	)
}
