package metrics

import (
	"math"
	"strings"
	"testing"

	"autofl/internal/sim"
)

func result(policy string, energy, time float64, converged bool, acc float64) *sim.Result {
	return &sim.Result{
		Policy:                     policy,
		Converged:                  converged,
		EnergyToTargetJ:            energy,
		ParticipantEnergyToTargetJ: energy / 2,
		TimeToTargetSec:            time,
		TargetAccuracy:             0.9,
		AccuracyFloor:              0.1,
		FinalAccuracy:              acc,
		Rounds:                     100,
	}
}

func TestCompareNormalizesToBaseline(t *testing.T) {
	base := result("base", 1000, 500, true, 0.9)
	twice := result("better", 500, 250, true, 0.9)
	cmp, err := Compare("base", []*sim.Result{base, twice})
	if err != nil {
		t.Fatal(err)
	}
	var baseRow, betterRow *Row
	for i := range cmp.Rows {
		switch cmp.Rows[i].Policy {
		case "base":
			baseRow = &cmp.Rows[i]
		case "better":
			betterRow = &cmp.Rows[i]
		}
	}
	if baseRow == nil || betterRow == nil {
		t.Fatal("missing rows")
	}
	if math.Abs(baseRow.GlobalPPWx-1) > 1e-9 {
		t.Errorf("baseline PPWx = %v, want 1", baseRow.GlobalPPWx)
	}
	if math.Abs(betterRow.GlobalPPWx-2) > 1e-9 {
		t.Errorf("half-energy PPWx = %v, want 2", betterRow.GlobalPPWx)
	}
	if math.Abs(betterRow.ConvTimex-2) > 1e-9 {
		t.Errorf("half-time ConvTimex = %v, want 2", betterRow.ConvTimex)
	}
}

func TestCompareMissingBaseline(t *testing.T) {
	_, err := Compare("nope", []*sim.Result{result("a", 1, 1, true, 0.9)})
	if err == nil {
		t.Error("missing baseline should error")
	}
}

func TestCompareNonConvergedBaseline(t *testing.T) {
	// A stalled baseline (the Fig 11c/d situation) yields large or
	// infinite improvements for converged policies — never a panic.
	base := result("base", 1000, 500, false, 0.1) // zero progress
	good := result("good", 500, 250, true, 0.9)
	cmp, err := Compare("base", []*sim.Result{base, good})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cmp.Rows {
		if r.Policy == "good" && !math.IsInf(r.ConvTimex, 1) {
			t.Errorf("conv-time vs zero-progress baseline = %v, want +Inf", r.ConvTimex)
		}
	}
}

func TestEffectiveTimeScalesWithProgress(t *testing.T) {
	half := result("h", 100, 100, false, 0.5)
	want := 100 / half.Progress()
	if got := effectiveTime(half); math.Abs(got-want) > 1e-9 {
		t.Errorf("effectiveTime at partial progress = %v, want %v", got, want)
	}
	full := result("f", 100, 100, true, 0.9)
	if got := effectiveTime(full); got != 100 {
		t.Errorf("effectiveTime converged = %v, want 100", got)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 4}); math.Abs(got-2) > 1e-9 {
		t.Errorf("Geomean(1,4) = %v, want 2", got)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	if got := Geomean([]float64{-1, 0, 8, 2}); math.Abs(got-4) > 1e-9 {
		t.Errorf("Geomean ignoring non-positives = %v, want 4", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"xxxx", "y"}, {"z", "w"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a   ") {
		t.Errorf("header not padded: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
}

func TestFormatX(t *testing.T) {
	if FormatX(4.72) != "4.7x" {
		t.Errorf("FormatX = %q", FormatX(4.72))
	}
	if FormatX(math.Inf(1)) != ">100x" {
		t.Errorf("FormatX(+Inf) = %q", FormatX(math.Inf(1)))
	}
	if FormatX(math.NaN()) != "n/a" {
		t.Errorf("FormatX(NaN) = %q", FormatX(math.NaN()))
	}
}

func TestComparisonString(t *testing.T) {
	base := result("base", 1000, 500, true, 0.9)
	cmp, _ := Compare("base", []*sim.Result{base})
	s := cmp.String()
	if !strings.Contains(s, "base") || !strings.Contains(s, "global-ppw") {
		t.Errorf("comparison table missing content:\n%s", s)
	}
}

// TestFormatRound pins the never-converged guard: ConvergedRound == 0
// renders as "never" (unconverged) or falls back to the executed
// count (converged without a recorded round), never as round 0.
func TestFormatRound(t *testing.T) {
	if got := FormatRound(false, 0, 500); got != "never" {
		t.Errorf("unconverged = %q, want never", got)
	}
	if got := FormatRound(true, 42, 42); got != "42" {
		t.Errorf("converged = %q, want 42", got)
	}
	if got := FormatRound(true, 0, 100); got != "100" {
		t.Errorf("round-fallback = %q, want 100", got)
	}
}

// TestCompareCarriesConvergedRound checks the round is plumbed into
// rows and rendered distinctly for never-converged runs.
func TestCompareCarriesConvergedRound(t *testing.T) {
	base := result("base", 1000, 500, true, 0.9)
	base.ConvergedRound = 77
	stalled := result("stalled", 1000, 500, false, 0.5)
	cmp, err := Compare("base", []*sim.Result{base, stalled})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Rows[0].ConvergedRound != 77 {
		t.Errorf("base row round = %d, want 77", cmp.Rows[0].ConvergedRound)
	}
	s := cmp.String()
	if !strings.Contains(s, "77") || !strings.Contains(s, "never") {
		t.Errorf("comparison table missing round/never rendering:\n%s", s)
	}
}
