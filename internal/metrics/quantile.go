package metrics

// Streaming quantile estimation for fleet-scale distributions: the P²
// algorithm (Jain & Chlamtac, CACM 1985) tracks one quantile with five
// markers in O(1) memory and O(1) per observation, so per-device
// distributions (e.g. cumulative energy across a million-device
// population) can be summarized without materializing the fleet.
// Estimates are deterministic: a pure function of the observation
// sequence.

import (
	"math"
	"sort"
)

// Quantile estimates a single quantile of a stream. Create with
// NewQuantile, feed with Add, read with Value.
type Quantile struct {
	p   float64
	n   int
	q   [5]float64 // marker heights
	pos [5]float64 // actual marker positions (1-based observation ranks)
	des [5]float64 // desired marker positions
	inc [5]float64 // desired-position increments per observation
}

// NewQuantile returns an estimator for the p-quantile, p in (0, 1).
func NewQuantile(p float64) *Quantile {
	return &Quantile{
		p:   p,
		pos: [5]float64{1, 2, 3, 4, 5},
		des: [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5},
		inc: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// Add feeds one observation.
func (e *Quantile) Add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
		}
		return
	}
	// Locate the marker cell the observation falls into, extending the
	// extreme markers when it lies outside them.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.des {
		e.des[i] += e.inc[i]
	}
	e.n++
	// Adjust the interior markers toward their desired positions with
	// the piecewise-parabolic (P²) height update.
	for i := 1; i <= 3; i++ {
		d := e.des[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			if h := e.parabolic(i, s); e.q[i-1] < h && h < e.q[i+1] {
				e.q[i] = h
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Count reports the number of observations fed so far.
func (e *Quantile) Count() int { return e.n }

// Value returns the current quantile estimate: exact (nearest-rank)
// below five observations, the P² marker estimate from there on. Zero
// before any observation.
func (e *Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		var buf [5]float64
		copy(buf[:], e.q[:e.n])
		sort.Float64s(buf[:e.n])
		idx := int(math.Ceil(e.p*float64(e.n))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= e.n {
			idx = e.n - 1
		}
		return buf[idx]
	}
	return e.q[2]
}

// Quantiles estimates several quantiles of one stream side by side —
// the fleet-energy p50/p95/p99 exporter feeds every observation once.
type Quantiles struct {
	ps []float64
	es []*Quantile
}

// NewQuantiles returns a multi-quantile estimator for the given
// probabilities.
func NewQuantiles(ps ...float64) *Quantiles {
	q := &Quantiles{ps: ps}
	for _, p := range ps {
		q.es = append(q.es, NewQuantile(p))
	}
	return q
}

// Add feeds one observation to every estimator.
func (q *Quantiles) Add(x float64) {
	for _, e := range q.es {
		e.Add(x)
	}
}

// Count reports the number of observations fed so far.
func (q *Quantiles) Count() int {
	if len(q.es) == 0 {
		return 0
	}
	return q.es[0].Count()
}

// Values returns the current estimates, parallel to the construction
// probabilities. The independent P² estimators can cross by small
// margins on spiky multi-modal streams (e.g. tiered fleets), so the
// estimates are isotonically clamped: a higher probability never
// reports a lower value.
func (q *Quantiles) Values() []float64 {
	out := make([]float64, len(q.es))
	for i, e := range q.es {
		out[i] = e.Value()
	}
	// Clamp in probability order without assuming the construction
	// order was sorted.
	order := make([]int, len(q.ps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return q.ps[order[a]] < q.ps[order[b]] })
	for k := 1; k < len(order); k++ {
		if prev, cur := order[k-1], order[k]; out[cur] < out[prev] {
			out[cur] = out[prev]
		}
	}
	return out
}
