package metrics

import (
	"math"
	"sort"
	"testing"

	"autofl/internal/rng"
)

// exactQuantile is the nearest-rank reference the estimator is checked
// against.
func exactQuantile(sorted []float64, p float64) float64 {
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TestQuantileUniform checks P² accuracy on a uniform stream: within a
// small relative error of the exact quantile at 100k observations.
func TestQuantileUniform(t *testing.T) {
	s := rng.New(11)
	const n = 100_000
	qs := NewQuantiles(0.5, 0.95, 0.99)
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		x := 100 * s.Float64()
		qs.Add(x)
		vals = append(vals, x)
	}
	sort.Float64s(vals)
	for i, p := range []float64{0.5, 0.95, 0.99} {
		got := qs.Values()[i]
		want := exactQuantile(vals, p)
		if math.Abs(got-want) > 0.02*100 {
			t.Errorf("p%.0f: estimate %.3f, exact %.3f", p*100, got, want)
		}
	}
	if qs.Count() != n {
		t.Errorf("Count = %d, want %d", qs.Count(), n)
	}
}

// TestQuantileSkewed checks accuracy on a heavy-tailed (exponential)
// stream, the shape fleet-energy distributions take.
func TestQuantileSkewed(t *testing.T) {
	s := rng.New(23)
	const n = 200_000
	est := map[float64]*Quantile{
		0.5:  NewQuantile(0.5),
		0.95: NewQuantile(0.95),
		0.99: NewQuantile(0.99),
	}
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		x := -math.Log(1 - s.Float64())
		for _, e := range est {
			e.Add(x)
		}
		vals = append(vals, x)
	}
	sort.Float64s(vals)
	for p, e := range est {
		want := exactQuantile(vals, p)
		if rel := math.Abs(e.Value()-want) / want; rel > 0.05 {
			t.Errorf("p%.0f: estimate %.4f, exact %.4f (rel err %.3f)", p*100, e.Value(), want, rel)
		}
	}
}

// TestQuantileSmallStreams pins exact behavior below the five-marker
// threshold and sane behavior at it.
func TestQuantileSmallStreams(t *testing.T) {
	e := NewQuantile(0.5)
	if e.Value() != 0 {
		t.Errorf("empty estimator Value = %g, want 0", e.Value())
	}
	e.Add(7)
	if e.Value() != 7 {
		t.Errorf("single observation Value = %g, want 7", e.Value())
	}
	e.Add(1)
	e.Add(9)
	if e.Value() != 7 {
		t.Errorf("3-observation median = %g, want 7", e.Value())
	}
	m := NewQuantile(0.5)
	for _, x := range []float64{5, 1, 4, 2, 3} {
		m.Add(x)
	}
	if m.Value() != 3 {
		t.Errorf("5-observation median = %g, want 3", m.Value())
	}
}

// TestQuantileDeterministic pins that the estimate is a pure function
// of the observation sequence.
func TestQuantileDeterministic(t *testing.T) {
	run := func() []float64 {
		s := rng.New(99)
		qs := NewQuantiles(0.5, 0.9)
		for i := 0; i < 10_000; i++ {
			qs.Add(s.Float64() * float64(1+i%7))
		}
		return qs.Values()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic estimate: %v vs %v", a, b)
		}
	}
}

// TestQuantileMillionStream exercises the exporter's target scale: a
// million observations stream through three estimators with no
// materialization and bounded error.
func TestQuantileMillionStream(t *testing.T) {
	if testing.Short() {
		t.Skip("million-observation stream in -short mode")
	}
	s := rng.New(7)
	qs := NewQuantiles(0.5, 0.95, 0.99)
	const n = 1_000_000
	for i := 0; i < n; i++ {
		qs.Add(10 + 90*s.Float64())
	}
	v := qs.Values()
	// Uniform on [10, 100): the exact quantiles are 55, 95.5, 99.1.
	for i, want := range []float64{55, 95.5, 99.1} {
		if math.Abs(v[i]-want) > 1.0 {
			t.Errorf("quantile %d: %.3f, want ~%.1f", i, v[i], want)
		}
	}
}

// TestQuantilesMonotone: Values never reports a lower estimate for a
// higher probability, even on spiky multi-modal streams where the
// independent P² estimators can cross — and regardless of the order
// the probabilities were requested in.
func TestQuantilesMonotone(t *testing.T) {
	s := rng.New(11)
	qs := NewQuantiles(0.99, 0.5, 0.95) // deliberately unsorted
	// Three narrow spikes (a tiered fleet's energy distribution).
	centers := []float64{1, 10, 100}
	for i := 0; i < 50_000; i++ {
		c := centers[int(s.Uint64()%3)]
		qs.Add(c * (1 + 0.01*s.Float64()))
	}
	v := qs.Values()
	if v[2] < v[1] { // p95 >= p50
		t.Errorf("p95 %.4f below p50 %.4f", v[2], v[1])
	}
	if v[0] < v[2] { // p99 >= p95
		t.Errorf("p99 %.4f below p95 %.4f", v[0], v[2])
	}
}
