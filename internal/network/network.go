// Package network models the wireless link of each FL device: Gaussian
// bandwidth variability (the paper cites Gaussian modeling of real
// network behavior, §5.2), signal-strength tiers that drive the Eq (3)
// transmit-power model, and communication-time accounting for gradient
// payloads.
package network

import (
	"autofl/internal/power"
	"autofl/internal/rng"
)

// RegularBandwidthMbps is the Table 1 threshold separating "regular"
// from "bad" network conditions (S_Network).
const RegularBandwidthMbps = 40.0

// Profile describes the distribution a device's bandwidth is drawn
// from each round.
type Profile struct {
	// Name identifies the profile in experiment output.
	Name string
	// MeanMbps and StdMbps parameterize the Gaussian bandwidth draw.
	MeanMbps, StdMbps float64
	// MinMbps and MaxMbps clamp the draw to physical limits.
	MinMbps, MaxMbps float64
	// BaseLatencySec is the fixed per-transfer protocol overhead
	// (connection setup, aggregation-server queuing).
	BaseLatencySec float64
}

// Stable is a strong Wi-Fi-class link with low variance — the paper's
// "stable network signal strength" environment (Fig 5a).
func Stable() Profile {
	return Profile{Name: "stable", MeanMbps: 110, StdMbps: 8, MinMbps: 60, MaxMbps: 150, BaseLatencySec: 0.5}
}

// Variable is an in-the-field link whose bandwidth fluctuates round to
// round — the default deployment condition.
func Variable() Profile {
	return Profile{Name: "variable", MeanMbps: 70, StdMbps: 30, MinMbps: 8, MaxMbps: 150, BaseLatencySec: 0.8}
}

// Weak is the poor-signal environment of Fig 5c: low mean bandwidth,
// most draws under the Table 1 "bad" threshold.
func Weak() Profile {
	return Profile{Name: "weak", MeanMbps: 18, StdMbps: 9, MinMbps: 3, MaxMbps: 45, BaseLatencySec: 1.5}
}

// Sample draws this round's bandwidth for one device.
func (p Profile) Sample(s *rng.Stream) float64 {
	return s.ClampedNormal(p.MeanMbps, p.StdMbps, p.MinMbps, p.MaxMbps)
}

// SignalFor maps an observed bandwidth to the signal-strength tier
// that determines transmit power (Eq 3). The mapping mirrors Table 1's
// two-bucket S_Network feature with an extra "fair" band so energy
// degrades smoothly.
func SignalFor(mbps float64) power.Signal {
	switch {
	case mbps > 70:
		return power.SignalGood
	case mbps > RegularBandwidthMbps:
		return power.SignalFair
	default:
		return power.SignalPoor
	}
}

// IsRegular reports whether a bandwidth observation falls in Table 1's
// "regular" bucket.
func IsRegular(mbps float64) bool { return mbps > RegularBandwidthMbps }

// CommSeconds returns the time to move payloadBytes over a link of the
// given bandwidth, including the profile's fixed base latency. FL
// rounds move the model down and the gradients up, so callers pass the
// combined payload.
func (p Profile) CommSeconds(payloadBytes, mbps float64) float64 {
	if payloadBytes <= 0 {
		return p.BaseLatencySec
	}
	if mbps < p.MinMbps {
		mbps = p.MinMbps
	}
	bitsPerSec := mbps * 1e6
	return p.BaseLatencySec + (payloadBytes*8)/bitsPerSec
}
