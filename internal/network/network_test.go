package network

import (
	"testing"
	"testing/quick"

	"autofl/internal/power"
	"autofl/internal/rng"
)

func TestProfilesOrdering(t *testing.T) {
	if !(Weak().MeanMbps < Variable().MeanMbps && Variable().MeanMbps < Stable().MeanMbps) {
		t.Error("profile mean bandwidths must order weak < variable < stable")
	}
}

func TestSampleWithinBounds(t *testing.T) {
	s := rng.New(1)
	for _, p := range []Profile{Stable(), Variable(), Weak()} {
		for i := 0; i < 2000; i++ {
			v := p.Sample(s)
			if v < p.MinMbps || v > p.MaxMbps {
				t.Fatalf("%s sample %v outside [%v, %v]", p.Name, v, p.MinMbps, p.MaxMbps)
			}
		}
	}
}

func TestWeakProfileMostlyBad(t *testing.T) {
	s := rng.New(2)
	p := Weak()
	bad := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if !IsRegular(p.Sample(s)) {
			bad++
		}
	}
	if float64(bad)/n < 0.9 {
		t.Errorf("weak profile produced only %d/%d bad-bucket draws", bad, n)
	}
}

func TestStableProfileMostlyRegular(t *testing.T) {
	s := rng.New(3)
	p := Stable()
	regular := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if IsRegular(p.Sample(s)) {
			regular++
		}
	}
	if float64(regular)/n < 0.99 {
		t.Errorf("stable profile produced only %d/%d regular draws", regular, n)
	}
}

func TestSignalFor(t *testing.T) {
	if SignalFor(100) != power.SignalGood {
		t.Error("100 Mbps should map to good signal")
	}
	if SignalFor(50) != power.SignalFair {
		t.Error("50 Mbps should map to fair signal")
	}
	if SignalFor(20) != power.SignalPoor {
		t.Error("20 Mbps should map to poor signal")
	}
	if SignalFor(RegularBandwidthMbps) != power.SignalPoor {
		t.Error("the bad-bucket boundary is inclusive (<= 40)")
	}
}

func TestCommSeconds(t *testing.T) {
	p := Stable()
	// 10 MB at 80 Mbps = 1 second of transfer plus base latency.
	got := p.CommSeconds(10e6, 80)
	want := p.BaseLatencySec + 1.0
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("CommSeconds = %v, want %v", got, want)
	}
}

func TestCommSecondsEdges(t *testing.T) {
	p := Variable()
	if got := p.CommSeconds(0, 100); got != p.BaseLatencySec {
		t.Errorf("zero payload should cost only base latency, got %v", got)
	}
	// Bandwidth below the profile floor is clamped, not divided by ~0.
	slow := p.CommSeconds(1e6, 0.0001)
	floor := p.CommSeconds(1e6, p.MinMbps)
	if slow != floor {
		t.Errorf("sub-floor bandwidth should clamp: %v vs %v", slow, floor)
	}
}

// Property: comm time decreases (weakly) with bandwidth and increases
// with payload.
func TestCommSecondsMonotoneProperty(t *testing.T) {
	p := Variable()
	f := func(bytesRaw uint16, mbpsRaw uint8) bool {
		payload := float64(bytesRaw) * 1000
		mbps := 5 + float64(mbpsRaw)/2
		t1 := p.CommSeconds(payload, mbps)
		t2 := p.CommSeconds(payload, mbps+10)
		t3 := p.CommSeconds(payload+1e6, mbps)
		return t2 <= t1 && t3 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeakLinkCostsMoreEnergyPerByte(t *testing.T) {
	// §3.2: on a weak signal, communication time and energy rise
	// sharply (4.3x on average in the paper). Check the composed
	// model: same payload, weak vs stable link.
	payload := 10e6
	stable, weak := Stable(), Weak()
	tStable := stable.CommSeconds(payload, stable.MeanMbps)
	tWeak := weak.CommSeconds(payload, weak.MeanMbps)
	eStable := power.CommEnergy(SignalFor(stable.MeanMbps), tStable)
	eWeak := power.CommEnergy(SignalFor(weak.MeanMbps), tWeak)
	ratio := eWeak / eStable
	if ratio < 3 {
		t.Errorf("weak/stable comm energy ratio = %.2f, want >= 3 (paper reports ~4.3x time)", ratio)
	}
}
