// Package nn is a small, pure-Go neural-network trainer: dense layers,
// ReLU, softmax cross-entropy, and minibatch SGD, with flat parameter
// (de)serialization so federated averaging (internal/fedavg) can move
// models and gradients as plain []float64 — exactly what FedAvg's wire
// protocol needs.
//
// It is the "real training" substrate of this reproduction: the
// analytic convergence model in internal/sim is cross-validated
// against genuine federated SGD running on this package.
package nn

import (
	"fmt"
	"math"

	"autofl/internal/rng"
	"autofl/internal/tensor"
)

// Dense is a fully-connected layer with bias.
type Dense struct {
	W *tensor.Matrix // in × out
	B []float64      // out

	lastX *tensor.Matrix // cached input for the backward pass
	gradW *tensor.Matrix
	gradB []float64
}

// NewDense builds a layer with He-initialized weights.
func NewDense(in, out int, s *rng.Stream) *Dense {
	d := &Dense{W: tensor.New(in, out), B: make([]float64, out)}
	scale := math.Sqrt(2 / float64(in))
	for i := range d.W.Data {
		d.W.Data[i] = s.Normal(0, scale)
	}
	return d
}

// Forward computes x·W + b.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	d.lastX = x
	out := tensor.MatMul(x, d.W)
	out.AddRow(d.B)
	return out
}

// Backward consumes dY and returns dX, accumulating weight gradients.
func (d *Dense) Backward(dy *tensor.Matrix) *tensor.Matrix {
	d.gradW = tensor.MatMulAT(d.lastX, dy)
	d.gradB = dy.ColSums()
	return tensor.MatMulBT(dy, d.W)
}

// Step applies one SGD update with the given learning rate, averaged
// over the batch size used in the last backward pass.
func (d *Dense) Step(lr float64, batch int) {
	f := -lr / float64(batch)
	d.W.AddScaled(d.gradW, f)
	for i := range d.B {
		d.B[i] += f * d.gradB[i]
	}
}

// ReLU is the rectified-linear activation.
type ReLU struct {
	mask []bool
}

// Forward zeroes negative activations.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	r.mask = make([]bool, len(out.Data))
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward gates the gradient by the forward mask.
func (r *ReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	out := dy.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// MLP is a multi-layer perceptron classifier.
type MLP struct {
	layers []*Dense
	relus  []*ReLU
	// Classes is the output dimensionality.
	Classes int
}

// NewMLP builds a network with the given layer sizes, e.g.
// NewMLP(s, 20, 64, 10) is a 20→64→10 classifier with one hidden ReLU
// layer.
func NewMLP(s *rng.Stream, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	m := &MLP{Classes: sizes[len(sizes)-1]}
	for i := 0; i < len(sizes)-1; i++ {
		m.layers = append(m.layers, NewDense(sizes[i], sizes[i+1], s))
		if i < len(sizes)-2 {
			m.relus = append(m.relus, &ReLU{})
		}
	}
	return m
}

// Forward returns the pre-softmax logits for a batch.
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := x
	for i, l := range m.layers {
		out = l.Forward(out)
		if i < len(m.relus) {
			out = m.relus[i].Forward(out)
		}
	}
	return out
}

// softmax converts logits to probabilities in place, row-wise, with
// the usual max-subtraction for stability.
func softmax(logits *tensor.Matrix) {
	for r := 0; r < logits.Rows; r++ {
		row := logits.Row(r)
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for i, v := range row {
			row[i] = math.Exp(v - max)
			sum += row[i]
		}
		for i := range row {
			row[i] /= sum
		}
	}
}

// TrainBatch runs one forward/backward/update step on a labeled batch
// and returns the mean cross-entropy loss.
func (m *MLP) TrainBatch(x *tensor.Matrix, labels []int, lr float64) float64 {
	logits := m.Forward(x)
	softmax(logits)
	loss := 0.0
	// dLogits = probs - onehot(labels).
	for r := 0; r < logits.Rows; r++ {
		row := logits.Row(r)
		p := row[labels[r]]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		row[labels[r]] -= 1
	}
	loss /= float64(logits.Rows)

	grad := logits
	for i := len(m.layers) - 1; i >= 0; i-- {
		if i < len(m.relus) {
			grad = m.relus[i].Backward(grad)
		}
		grad = m.layers[i].Backward(grad)
		m.layers[i].Step(lr, x.Rows)
	}
	return loss
}

// Predict returns the argmax class per row.
func (m *MLP) Predict(x *tensor.Matrix) []int {
	logits := m.Forward(x)
	out := make([]int, logits.Rows)
	for r := 0; r < logits.Rows; r++ {
		row := logits.Row(r)
		best := 0
		for c, v := range row {
			if v > row[best] {
				best = c
			}
		}
		out[r] = best
	}
	return out
}

// Accuracy evaluates classification accuracy on a labeled set.
func (m *MLP) Accuracy(x *tensor.Matrix, labels []int) float64 {
	if x.Rows == 0 {
		return 0
	}
	pred := m.Predict(x)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// NumParams is the flat parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.layers {
		n += len(l.W.Data) + len(l.B)
	}
	return n
}

// Params flattens all weights and biases into one vector, the FedAvg
// wire format.
func (m *MLP) Params() []float64 {
	out := make([]float64, 0, m.NumParams())
	for _, l := range m.layers {
		out = append(out, l.W.Data...)
		out = append(out, l.B...)
	}
	return out
}

// SetParams loads a flat parameter vector produced by Params.
func (m *MLP) SetParams(p []float64) error {
	if len(p) != m.NumParams() {
		return fmt.Errorf("nn: parameter count %d, model needs %d", len(p), m.NumParams())
	}
	off := 0
	for _, l := range m.layers {
		copy(l.W.Data, p[off:off+len(l.W.Data)])
		off += len(l.W.Data)
		copy(l.B, p[off:off+len(l.B)])
		off += len(l.B)
	}
	return nil
}

// Clone returns a structural copy with identical parameters.
func (m *MLP) Clone() *MLP {
	out := &MLP{Classes: m.Classes}
	for _, l := range m.layers {
		cp := &Dense{W: l.W.Clone(), B: append([]float64(nil), l.B...)}
		out.layers = append(out.layers, cp)
	}
	for range m.relus {
		out.relus = append(out.relus, &ReLU{})
	}
	return out
}

// AverageParams computes the weighted average of parameter vectors —
// the FedAvg aggregation step (Fig 2, step 5). Weights are
// renormalized internally.
func AverageParams(vectors [][]float64, weights []float64) ([]float64, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("nn: nothing to average")
	}
	if len(weights) != len(vectors) {
		return nil, fmt.Errorf("nn: %d weights for %d vectors", len(weights), len(vectors))
	}
	n := len(vectors[0])
	total := 0.0
	for i, v := range vectors {
		if len(v) != n {
			return nil, fmt.Errorf("nn: vector %d has length %d, want %d", i, len(v), n)
		}
		if weights[i] < 0 {
			return nil, fmt.Errorf("nn: negative weight %v", weights[i])
		}
		total += weights[i]
	}
	if total == 0 {
		return nil, fmt.Errorf("nn: all weights zero")
	}
	out := make([]float64, n)
	for i, v := range vectors {
		w := weights[i] / total
		for j, x := range v {
			out[j] += w * x
		}
	}
	return out, nil
}
