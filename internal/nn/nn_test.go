package nn

import (
	"math"
	"testing"

	"autofl/internal/rng"
	"autofl/internal/tensor"
)

func xorData() (*tensor.Matrix, []int) {
	x := tensor.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	return x, []int{0, 1, 1, 0}
}

func TestMLPLearnsXOR(t *testing.T) {
	s := rng.New(1)
	m := NewMLP(s, 2, 16, 2)
	x, labels := xorData()
	var loss float64
	for i := 0; i < 3000; i++ {
		loss = m.TrainBatch(x, labels, 0.5)
	}
	if loss > 0.1 {
		t.Errorf("XOR loss after training = %v, want < 0.1", loss)
	}
	if acc := m.Accuracy(x, labels); acc != 1 {
		t.Errorf("XOR accuracy = %v, want 1", acc)
	}
}

func TestLossDecreases(t *testing.T) {
	s := rng.New(2)
	m := NewMLP(s, 2, 8, 2)
	x, labels := xorData()
	first := m.TrainBatch(x, labels, 0.3)
	var last float64
	for i := 0; i < 500; i++ {
		last = m.TrainBatch(x, labels, 0.3)
	}
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny network: perturb each
	// parameter and compare the analytic gradient against the
	// centered finite difference of the loss.
	s := rng.New(3)
	m := NewMLP(s, 3, 4, 2)
	x := tensor.FromSlice(2, 3, []float64{0.5, -0.2, 0.1, -0.7, 0.3, 0.9})
	labels := []int{0, 1}

	loss := func(params []float64) float64 {
		c := m.Clone()
		if err := c.SetParams(params); err != nil {
			t.Fatal(err)
		}
		logits := c.Forward(x)
		softmax(logits)
		l := 0.0
		for r := 0; r < logits.Rows; r++ {
			l -= math.Log(math.Max(logits.Row(r)[labels[r]], 1e-12))
		}
		return l / float64(logits.Rows)
	}

	params := m.Params()
	// Analytic gradients: replicate one backward pass without the SGD
	// update by training a clone with tiny lr and recovering dP from
	// the parameter delta: p' = p - lr/batch * g  =>  g = (p-p')*batch/lr.
	clone := m.Clone()
	const lr = 1e-6
	clone.TrainBatch(x, labels, lr)
	after := clone.Params()
	batch := float64(x.Rows)
	for i := 0; i < len(params); i += 7 { // sample every 7th parameter
		analytic := (params[i] - after[i]) * batch / lr
		const h = 1e-5
		pp := append([]float64(nil), params...)
		pp[i] += h
		up := loss(pp)
		pp[i] -= 2 * h
		down := loss(pp)
		numeric := (up - down) / (2 * h) * batch
		if math.Abs(analytic-numeric) > 1e-2*(1+math.Abs(numeric)) {
			t.Errorf("param %d: analytic grad %v vs numeric %v", i, analytic, numeric)
		}
	}
}

func TestParamsRoundTrip(t *testing.T) {
	s := rng.New(4)
	m := NewMLP(s, 5, 7, 3)
	p := m.Params()
	if len(p) != m.NumParams() {
		t.Fatalf("Params length %d != NumParams %d", len(p), m.NumParams())
	}
	if want := 5*7 + 7 + 7*3 + 3; m.NumParams() != want {
		t.Errorf("NumParams = %d, want %d", m.NumParams(), want)
	}
	m2 := NewMLP(rng.New(5), 5, 7, 3)
	if err := m2.SetParams(p); err != nil {
		t.Fatal(err)
	}
	p2 := m2.Params()
	for i := range p {
		if p[i] != p2[i] {
			t.Fatal("SetParams/Params roundtrip mismatch")
		}
	}
	if err := m2.SetParams(p[:3]); err == nil {
		t.Error("short parameter vector should error")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := rng.New(6)
	m := NewMLP(s, 2, 4, 2)
	c := m.Clone()
	x, labels := xorData()
	c.TrainBatch(x, labels, 0.5)
	mp, cp := m.Params(), c.Params()
	same := true
	for i := range mp {
		if mp[i] != cp[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("training a clone must not mutate the original")
	}
}

func TestSoftmaxRows(t *testing.T) {
	logits := tensor.FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	softmax(logits)
	for r := 0; r < 2; r++ {
		sum := 0.0
		for _, v := range logits.Row(r) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("softmax row %d sums to %v", r, sum)
		}
	}
}

func TestPredictAndAccuracy(t *testing.T) {
	s := rng.New(7)
	m := NewMLP(s, 2, 8, 2)
	x, labels := xorData()
	for i := 0; i < 2000; i++ {
		m.TrainBatch(x, labels, 0.5)
	}
	pred := m.Predict(x)
	if len(pred) != 4 {
		t.Fatalf("Predict returned %d values", len(pred))
	}
	if m.Accuracy(tensor.New(0, 2), nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestAverageParams(t *testing.T) {
	avg, err := AverageParams([][]float64{{1, 2}, {3, 4}}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if avg[0] != 2 || avg[1] != 3 {
		t.Errorf("uniform average = %v", avg)
	}
	weighted, err := AverageParams([][]float64{{0, 0}, {4, 4}}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if weighted[0] != 1 {
		t.Errorf("weighted average = %v, want 1", weighted[0])
	}
}

func TestAverageParamsErrors(t *testing.T) {
	if _, err := AverageParams(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := AverageParams([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("weight count mismatch should error")
	}
	if _, err := AverageParams([][]float64{{1}, {1, 2}}, []float64{1, 1}); err == nil {
		t.Error("vector length mismatch should error")
	}
	if _, err := AverageParams([][]float64{{1}}, []float64{0}); err == nil {
		t.Error("all-zero weights should error")
	}
	if _, err := AverageParams([][]float64{{1}}, []float64{-1}); err == nil {
		t.Error("negative weight should error")
	}
}

func TestNewMLPPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMLP with one size should panic")
		}
	}()
	NewMLP(rng.New(1), 5)
}
