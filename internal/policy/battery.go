package policy

// Battery-aware selection baselines, modeled on the client managers of
// battery-powered FL frameworks (Arouj et al.): alongside the existing
// FedAvg-Random (which ignores charge and wastes picks on unavailable
// devices — the engine drops them), BatteryWeighted biases selection
// toward charged devices and AllAvailable greedily takes everything
// above the threshold. Both read DeviceState.Battery/Unavailable and
// work — degenerating gracefully to uniform selection — when no
// battery model is attached.

import (
	"autofl/internal/device"
	"autofl/internal/rng"
	"autofl/internal/sim"
)

// BatteryWeighted selects K participants among the available devices
// with probability proportional to their state of charge: charged
// devices work, drained devices rest and recover. The depletion
// feedback (participating drains the weight) spreads participation
// across the fleet, which is what raises Jain's index over uniform
// random selection.
type BatteryWeighted struct {
	s *rng.Stream
	// Reused round buffers so steady-state Select allocates nothing.
	weights []float64
	idxs    []int
	sels    []sim.Selection
}

// NewBatteryWeighted builds the baseline with its own random stream.
func NewBatteryWeighted(seed uint64) *BatteryWeighted {
	return &BatteryWeighted{s: rng.New(seed)}
}

// Name implements sim.Policy.
func (p *BatteryWeighted) Name() string { return "Battery-Weighted" }

// Select implements sim.Policy: K weighted draws without replacement
// over the available candidates (a drawn device's weight is zeroed).
// Without a battery model every weight is zero and Categorical
// degenerates to uniform draws.
func (p *BatteryWeighted) Select(ctx *sim.RoundContext) []sim.Selection {
	n := len(ctx.Devices)
	if cap(p.weights) < n {
		p.weights = make([]float64, n)
		p.idxs = make([]int, n)
	}
	weights, idxs := p.weights[:0], p.idxs[:0]
	for i := range ctx.Devices {
		ds := &ctx.Devices[i]
		if ds.Unavailable {
			continue
		}
		weights = append(weights, ds.Battery)
		idxs = append(idxs, i)
	}
	p.weights, p.idxs = weights, idxs
	k := ctx.Params.K
	if k > len(idxs) {
		k = len(idxs)
	}
	out := p.sels[:0]
	for d := 0; d < k; d++ {
		j := p.s.Categorical(weights)
		out = append(out, sim.Selection{Index: idxs[j], Target: device.CPU, Step: -1})
		// Remove without replacement: swap the tail in. Categorical
		// treats non-positive weights as zero, so order is all that
		// changes.
		last := len(weights) - 1
		weights[j], idxs[j] = weights[last], idxs[last]
		weights, idxs = weights[:last], idxs[:last]
	}
	p.sels = out
	return out
}

// AllAvailable selects every device above the battery participation
// threshold, in candidate order; the engine caps participation at
// Params.K (sync) or the in-flight limit (async). It is the greedy
// baseline: maximum per-round parallelism, no regard for who pays.
type AllAvailable struct {
	sels []sim.Selection
}

// NewAllAvailable builds the baseline. It draws no randomness.
func NewAllAvailable() *AllAvailable { return &AllAvailable{} }

// Name implements sim.Policy.
func (p *AllAvailable) Name() string { return "All-Available" }

// Select implements sim.Policy.
func (p *AllAvailable) Select(ctx *sim.RoundContext) []sim.Selection {
	out := p.sels[:0]
	for i := range ctx.Devices {
		if ctx.Devices[i].Unavailable {
			continue
		}
		out = append(out, sim.Selection{Index: i, Target: device.CPU, Step: -1})
	}
	p.sels = out
	return out
}

// Compile-time interface checks.
var (
	_ sim.Policy = (*BatteryWeighted)(nil)
	_ sim.Policy = (*AllAvailable)(nil)
)
