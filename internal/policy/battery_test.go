package policy

import (
	"testing"

	"autofl/internal/battery"
	"autofl/internal/sim"
	"autofl/internal/workload"
)

// battCtx builds a synthetic candidate view: n devices, the given
// subset unavailable, charge fractions as supplied (default 1.0).
func battCtx(n, k int, unavailable map[int]bool, frac map[int]float64) *sim.RoundContext {
	params := workload.S3
	params.K = k
	ctx := &sim.RoundContext{Params: params, Devices: make([]sim.DeviceState, n)}
	for i := range ctx.Devices {
		ctx.Devices[i].Battery = 1.0
		if f, ok := frac[i]; ok {
			ctx.Devices[i].Battery = f
		}
		ctx.Devices[i].Unavailable = unavailable[i]
	}
	return ctx
}

func TestBatteryWeightedSelectsKAvailable(t *testing.T) {
	unav := map[int]bool{1: true, 4: true, 7: true}
	p := NewBatteryWeighted(11)
	for round := 0; round < 50; round++ {
		ctx := battCtx(20, 6, unav, nil)
		sels := p.Select(ctx)
		if len(sels) != 6 {
			t.Fatalf("round %d: selected %d devices, want K=6", round, len(sels))
		}
		seen := map[int]bool{}
		for _, s := range sels {
			if unav[s.Index] {
				t.Fatalf("round %d: selected unavailable device %d", round, s.Index)
			}
			if seen[s.Index] {
				t.Fatalf("round %d: device %d selected twice", round, s.Index)
			}
			seen[s.Index] = true
		}
	}
}

func TestBatteryWeightedFavorsCharge(t *testing.T) {
	// Devices 0..9 nearly drained, 10..19 full: the charged half should
	// dominate the draws.
	frac := map[int]float64{}
	for i := 0; i < 10; i++ {
		frac[i] = 0.01
	}
	p := NewBatteryWeighted(3)
	charged := 0
	const rounds, k = 200, 4
	for round := 0; round < rounds; round++ {
		for _, s := range p.Select(battCtx(20, k, nil, frac)) {
			if s.Index >= 10 {
				charged++
			}
		}
	}
	if got := float64(charged) / float64(rounds*k); got < 0.9 {
		t.Errorf("charged-half share = %.3f, want > 0.9 under 100:1 weights", got)
	}
}

func TestBatteryWeightedUniformWithoutBattery(t *testing.T) {
	// With no battery model every weight is 0 and Categorical falls
	// back to uniform: every device should get picked eventually.
	frac := map[int]float64{}
	for i := 0; i < 12; i++ {
		frac[i] = 0
	}
	p := NewBatteryWeighted(5)
	picked := map[int]bool{}
	for round := 0; round < 100; round++ {
		for _, s := range p.Select(battCtx(12, 3, nil, frac)) {
			picked[s.Index] = true
		}
	}
	if len(picked) != 12 {
		t.Errorf("uniform fallback picked %d/12 devices over 100 rounds", len(picked))
	}
}

func TestBatteryWeightedFewerAvailableThanK(t *testing.T) {
	unav := map[int]bool{}
	for i := 2; i < 10; i++ {
		unav[i] = true
	}
	p := NewBatteryWeighted(9)
	sels := p.Select(battCtx(10, 5, unav, nil))
	if len(sels) != 2 {
		t.Fatalf("selected %d devices, want the 2 available", len(sels))
	}
}

func TestAllAvailableSelectsEveryAvailable(t *testing.T) {
	unav := map[int]bool{0: true, 3: true}
	p := NewAllAvailable()
	sels := p.Select(battCtx(8, 2, unav, nil))
	if len(sels) != 6 {
		t.Fatalf("selected %d devices, want all 6 available (engine caps at K)", len(sels))
	}
	for _, s := range sels {
		if unav[s.Index] {
			t.Fatalf("selected unavailable device %d", s.Index)
		}
	}
}

func TestBatteryPoliciesRunEndToEnd(t *testing.T) {
	// Full engine smoke with a battery model attached: both baselines
	// must converge under ideal IID and report battery stats.
	spec := battery.Spec{CapacityJ: 50_000}
	for _, p := range []sim.Policy{NewBatteryWeighted(7), NewAllAvailable()} {
		cfg := baseCfg(21)
		cfg.Battery = &spec
		res := sim.New(cfg).Run(p)
		if !res.Converged {
			t.Errorf("%s did not converge under ideal IID with ample battery", p.Name())
		}
		if res.Battery == nil {
			t.Fatalf("%s: battery-enabled run reported no BatteryStats", p.Name())
		}
		if j := res.Battery.ParticipationJain; j <= 0 || j > 1 {
			t.Errorf("%s: ParticipationJain = %g, want (0, 1]", p.Name(), j)
		}
	}
}

func TestBatteryWeightedDeterminism(t *testing.T) {
	spec := battery.Spec{CapacityJ: 2_000}
	cfg := baseCfg(33)
	cfg.Battery = &spec
	a := sim.New(cfg).Run(NewBatteryWeighted(7))
	b := sim.New(cfg).Run(NewBatteryWeighted(7))
	if a.Rounds != b.Rounds || a.FinalAccuracy != b.FinalAccuracy ||
		a.EnergyToTargetJ != b.EnergyToTargetJ ||
		a.Battery.ParticipationJain != b.Battery.ParticipationJain {
		t.Errorf("Battery-Weighted runs diverged under identical seeds:\n%+v\n%+v", a, b)
	}
}
