package policy

import (
	"math"
	"slices"
	"sort"

	"autofl/internal/device"
	"autofl/internal/sim"
)

// The oracle policies have access to the true per-round device states
// (the runtime variance AutoFL can only observe through its
// discretized features) and exhaustively evaluate candidate
// compositions, so they upper-bound what any selector can achieve:
//
//   - Oparticipant picks the Table 4 cluster maximizing predicted
//     progress-per-joule for the round, with every participant on its
//     CPU at top frequency (§5.1: "the optimal cluster of K
//     participants determined by considering heterogeneity and runtime
//     variance").
//
//   - OFL additionally optimizes each participant's execution target
//     and DVFS step, converting straggler slack into energy savings
//     (§5.1: "considers available on-device co-processors").

// memberScore ranks devices within a tier for oracle member selection:
// prefer high IID quality (sharply — selecting biased devices stalls
// convergence), then low energy-time product for this round's observed
// conditions.
func memberScore(ctx *sim.RoundContext, idx int) float64 {
	comp, comm := ctx.Estimate(idx, device.CPU, -1)
	total := comp + comm
	energy := ctx.EstimateEnergy(idx, device.CPU, -1, total)
	q := ctx.Devices[idx].Data.IIDQuality()
	return math.Pow(q, 3) / (energy * total)
}

// oracleScratch holds the candidate-evaluation buffers the oracles
// reuse across rounds and candidate clusters, so the exhaustive
// per-round search does not allocate in steady state. An oracle
// instance (like every stateful policy here) must not be shared by
// concurrently running engines.
type oracleScratch struct {
	times   []float64
	clean   []float64
	pool    []scoredDevice
	members []int
	best    []int
	sels    []sim.Selection
}

// scoredDevice is one candidate in a tier's member-selection pool.
type scoredDevice struct {
	idx   int
	score float64
}

// clusterEval is the oracle's prediction for one candidate
// composition.
type clusterEval struct {
	members  []int
	score    float64
	deadline float64
}

// evaluateCluster projects a full round for the given member set:
// completion times, straggler drops, round duration, fleet energy, and
// a progress proxy; the score is progress per joule — the quantity the
// paper's PPW figures measure.
func evaluateCluster(ctx *sim.RoundContext, members []int, sc *oracleScratch) clusterEval {
	if len(members) == 0 {
		return clusterEval{}
	}
	if cap(sc.times) < len(members) {
		sc.times = make([]float64, len(members))
		sc.clean = make([]float64, len(members))
	}
	times := sc.times[:len(members)]
	clean := sc.clean[:len(members)]
	for i, idx := range members {
		comp, comm := ctx.Estimate(idx, device.CPU, -1)
		times[i] = comp + comm
		cc, cm := ctx.CleanCompletionTime(idx)
		clean[i] = cc + cm
	}
	// The server's deadline derives from expected clean execution, not
	// the (interference-inflated) observed times — mirror the engine.
	// clean is scratch and dead after the median, so sort it in place.
	sort.Float64s(clean)
	med := clean[len(clean)/2]
	if len(clean)%2 == 0 {
		med = (clean[len(clean)/2-1] + clean[len(clean)/2]) / 2
	}
	deadline := ctx.StragglerFactor() * med

	roundSec := 0.0
	mass, qualMass := 0.0, 0.0
	var keptEnergy float64
	for i, idx := range members {
		d := ctx.Devices[idx].Data
		if times[i] <= deadline {
			if times[i] > roundSec {
				roundSec = times[i]
			}
			// A surprise co-runner may still push this device past the
			// deadline; discount its expected contribution and charge
			// the straggler energy it would burn until cut off.
			risk := ctx.DropRisk(idx, device.CPU, -1, deadline)
			w := (1 - risk) * float64(ctx.Params.E) * float64(d.Samples)
			mass += w
			qualMass += w * d.IIDQuality()
			base := ctx.EstimateEnergy(idx, device.CPU, -1, times[i])
			waste := base * (deadline/times[i] - 1)
			keptEnergy += base + risk*waste
			continue
		}
		// Predicted straggler even under the observed load: it burns
		// the whole deadline window and contributes nothing.
		if deadline > roundSec {
			roundSec = deadline
		}
		base := ctx.EstimateEnergy(idx, device.CPU, -1, times[i])
		keptEnergy += base * deadline / times[i]
	}
	if mass == 0 {
		return clusterEval{members: members, score: 0, deadline: deadline}
	}
	meanQ := qualMass / mass
	// Fleet energy: participants plus everyone else idling for the
	// round.
	idleWatts := ctx.FleetIdleWatts()
	for _, idx := range members {
		idleWatts -= ctx.Devices[idx].Device.Spec.IdleWatts()
	}
	fleetEnergy := keptEnergy + idleWatts*roundSec
	// Progress proxy mirrors the convergence model: sublinear in mass,
	// sharply sensitive to update quality.
	refMass := 20.0 * float64(ctx.Params.E) * float64(ctx.Workload.Dataset.SamplesPerDevice)
	progress := math.Pow(mass/refMass, 0.6) * math.Pow(meanQ, 1.5)
	return clusterEval{members: members, score: progress / fleetEnergy, deadline: deadline}
}

// pickMembers fills sc.members with the cluster's members: within each
// tier, the devices with the best current member score.
func pickMembers(ctx *sim.RoundContext, c Cluster, sc *oracleScratch) []int {
	counts := c.Counts()
	members := sc.members[:0]
	for cat := 0; cat < device.NumCategories; cat++ {
		want := counts[cat]
		if want == 0 {
			continue
		}
		pool := sc.pool[:0]
		for i := range ctx.Devices {
			if ctx.Devices[i].Device.Category() == device.Category(cat) {
				pool = append(pool, scoredDevice{i, memberScore(ctx, i)})
			}
		}
		sc.pool = pool
		// The (score desc, idx asc) comparator is a total order, so any
		// sort yields the same result; SortFunc avoids the interface
		// boxing sort.Slice pays per call.
		slices.SortFunc(pool, func(a, b scoredDevice) int {
			switch {
			case a.score > b.score:
				return -1
			case a.score < b.score:
				return 1
			default:
				return a.idx - b.idx
			}
		})
		if want > len(pool) {
			want = len(pool)
		}
		for _, s := range pool[:want] {
			members = append(members, s.idx)
		}
	}
	sc.members = members
	return members
}

// bestCluster evaluates every Table 4 candidate (scaled to K) and
// returns the winner's members (in sc.best, valid until the next call)
// and projected deadline.
// table4 caches the candidate set so the per-round search does not
// rebuild it; Cluster values are copied out, never mutated.
var table4 = Table4()

func bestCluster(ctx *sim.RoundContext, sc *oracleScratch) clusterEval {
	var best clusterEval
	first := true
	for _, c := range table4 {
		members := pickMembers(ctx, c.Scaled(ctx.Params.K), sc)
		eval := evaluateCluster(ctx, members, sc)
		if first || eval.score > best.score {
			// eval.members aliases the reused sc.members buffer; keep
			// the incumbent winner in its own buffer.
			sc.best = append(sc.best[:0], eval.members...)
			best = eval
			best.members = sc.best
			first = false
		}
	}
	return best
}

// OParticipant is the participant-selection oracle.
type OParticipant struct {
	sc oracleScratch
}

// NewOParticipant builds the oracle. It is deterministic (the scratch
// state is reused buffers only), but — like the seeded policies — an
// instance must not be shared by concurrently running engines; build
// one per run.
func NewOParticipant() *OParticipant { return &OParticipant{} }

// Name implements sim.Policy.
func (p *OParticipant) Name() string { return "Oparticipant" }

// Select implements sim.Policy.
func (p *OParticipant) Select(ctx *sim.RoundContext) []sim.Selection {
	eval := bestCluster(ctx, &p.sc)
	out := p.sc.sels[:0]
	for _, idx := range eval.members {
		out = append(out, sim.Selection{Index: idx, Target: device.CPU, Step: -1})
	}
	p.sc.sels = out
	return out
}

// OFL is the full oracle: optimal participants plus optimal execution
// targets and DVFS steps.
type OFL struct {
	sc oracleScratch
}

// NewOFL builds the full oracle. Deterministic, but an instance must
// not be shared by concurrently running engines; build one per run.
func NewOFL() *OFL { return &OFL{} }

// Name implements sim.Policy.
func (p *OFL) Name() string { return "OFL" }

// Select implements sim.Policy.
func (p *OFL) Select(ctx *sim.RoundContext) []sim.Selection {
	eval := bestCluster(ctx, &p.sc)
	out := p.sc.sels[:0]
	for _, idx := range eval.members {
		// Leave headroom below the deadline so a surprise co-runner
		// does not immediately turn a slack-stretched device into a
		// straggler.
		target, step := BestAction(ctx, idx, 0.85*eval.deadline)
		out = append(out, sim.Selection{Index: idx, Target: target, Step: step})
	}
	p.sc.sels = out
	return out
}

// BestAction returns the execution target and DVFS step minimizing the
// device's round energy subject to finishing by the deadline — the
// slack-exploiting second-level decision of OFL and the reference for
// AutoFL's action accuracy (Fig 12). If no action meets the deadline
// it returns the fastest one.
func BestAction(ctx *sim.RoundContext, idx int, deadline float64) (device.Target, int) {
	spec := ctx.Devices[idx].Device.Spec
	bestTarget, bestStep := device.CPU, spec.CPU.TopStep()
	bestEnergy := math.Inf(1)
	feasible := false
	fastestTarget, fastestStep := bestTarget, bestStep
	fastestTime := math.Inf(1)
	for _, target := range []device.Target{device.CPU, device.GPU} {
		proc := spec.Proc(target)
		for step := 0; step <= proc.TopStep(); step++ {
			comp, comm := ctx.Estimate(idx, target, step)
			total := comp + comm
			if total < fastestTime {
				fastestTime = total
				fastestTarget, fastestStep = target, step
			}
			if total > deadline {
				continue
			}
			energy := ctx.EstimateEnergy(idx, target, step, total)
			if energy < bestEnergy {
				bestEnergy = energy
				bestTarget, bestStep = target, step
				feasible = true
			}
		}
	}
	if !feasible {
		return fastestTarget, fastestStep
	}
	return bestTarget, bestStep
}

// Compile-time interface checks.
var (
	_ sim.Policy = (*OParticipant)(nil)
	_ sim.Policy = (*OFL)(nil)
)
