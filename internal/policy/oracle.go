package policy

import (
	"math"
	"sort"

	"autofl/internal/device"
	"autofl/internal/sim"
)

// The oracle policies have access to the true per-round device states
// (the runtime variance AutoFL can only observe through its
// discretized features) and exhaustively evaluate candidate
// compositions, so they upper-bound what any selector can achieve:
//
//   - Oparticipant picks the Table 4 cluster maximizing predicted
//     progress-per-joule for the round, with every participant on its
//     CPU at top frequency (§5.1: "the optimal cluster of K
//     participants determined by considering heterogeneity and runtime
//     variance").
//
//   - OFL additionally optimizes each participant's execution target
//     and DVFS step, converting straggler slack into energy savings
//     (§5.1: "considers available on-device co-processors").

// memberScore ranks devices within a tier for oracle member selection:
// prefer high IID quality (sharply — selecting biased devices stalls
// convergence), then low energy-time product for this round's observed
// conditions.
func memberScore(ctx *sim.RoundContext, idx int) float64 {
	comp, comm := ctx.Estimate(idx, device.CPU, -1)
	total := comp + comm
	energy := ctx.EstimateEnergy(idx, device.CPU, -1, total)
	q := ctx.Devices[idx].Data.IIDQuality()
	return math.Pow(q, 3) / (energy * total)
}

// clusterEval is the oracle's prediction for one candidate
// composition.
type clusterEval struct {
	members  []int
	score    float64
	deadline float64
}

// evaluateCluster projects a full round for the given member set:
// completion times, straggler drops, round duration, fleet energy, and
// a progress proxy; the score is progress per joule — the quantity the
// paper's PPW figures measure.
func evaluateCluster(ctx *sim.RoundContext, members []int) clusterEval {
	if len(members) == 0 {
		return clusterEval{}
	}
	times := make([]float64, len(members))
	clean := make([]float64, len(members))
	for i, idx := range members {
		comp, comm := ctx.Estimate(idx, device.CPU, -1)
		times[i] = comp + comm
		cc, cm := ctx.CleanCompletionTime(idx)
		clean[i] = cc + cm
	}
	// The server's deadline derives from expected clean execution, not
	// the (interference-inflated) observed times — mirror the engine.
	sorted := append([]float64(nil), clean...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	deadline := ctx.StragglerFactor() * med

	roundSec := 0.0
	mass, qualMass := 0.0, 0.0
	var keptEnergy float64
	for i, idx := range members {
		d := ctx.Devices[idx].Data
		if times[i] <= deadline {
			if times[i] > roundSec {
				roundSec = times[i]
			}
			// A surprise co-runner may still push this device past the
			// deadline; discount its expected contribution and charge
			// the straggler energy it would burn until cut off.
			risk := ctx.DropRisk(idx, device.CPU, -1, deadline)
			w := (1 - risk) * float64(ctx.Params.E) * float64(d.Samples)
			mass += w
			qualMass += w * d.IIDQuality()
			base := ctx.EstimateEnergy(idx, device.CPU, -1, times[i])
			waste := base * (deadline/times[i] - 1)
			keptEnergy += base + risk*waste
			continue
		}
		// Predicted straggler even under the observed load: it burns
		// the whole deadline window and contributes nothing.
		if deadline > roundSec {
			roundSec = deadline
		}
		base := ctx.EstimateEnergy(idx, device.CPU, -1, times[i])
		keptEnergy += base * deadline / times[i]
	}
	if mass == 0 {
		return clusterEval{members: members, score: 0, deadline: deadline}
	}
	meanQ := qualMass / mass
	// Fleet energy: participants plus everyone else idling for the
	// round.
	idleWatts := ctx.FleetIdleWatts()
	for _, idx := range members {
		idleWatts -= ctx.Devices[idx].Device.Spec.IdleWatts()
	}
	fleetEnergy := keptEnergy + idleWatts*roundSec
	// Progress proxy mirrors the convergence model: sublinear in mass,
	// sharply sensitive to update quality.
	refMass := 20.0 * float64(ctx.Params.E) * float64(ctx.Workload.Dataset.SamplesPerDevice)
	progress := math.Pow(mass/refMass, 0.6) * math.Pow(meanQ, 1.5)
	return clusterEval{members: members, score: progress / fleetEnergy, deadline: deadline}
}

// pickMembers returns the cluster's members: within each tier, the
// devices with the best current member score.
func pickMembers(ctx *sim.RoundContext, c Cluster) []int {
	counts := c.Counts()
	var members []int
	for cat := 0; cat < device.NumCategories; cat++ {
		want := counts[cat]
		if want == 0 {
			continue
		}
		type scored struct {
			idx   int
			score float64
		}
		var pool []scored
		for i := range ctx.Devices {
			if ctx.Devices[i].Device.Category() == device.Category(cat) {
				pool = append(pool, scored{i, memberScore(ctx, i)})
			}
		}
		sort.Slice(pool, func(a, b int) bool {
			if pool[a].score != pool[b].score {
				return pool[a].score > pool[b].score
			}
			return pool[a].idx < pool[b].idx
		})
		if want > len(pool) {
			want = len(pool)
		}
		for _, s := range pool[:want] {
			members = append(members, s.idx)
		}
	}
	return members
}

// bestCluster evaluates every Table 4 candidate (scaled to K) and
// returns the winner's members and projected deadline.
func bestCluster(ctx *sim.RoundContext) clusterEval {
	var best clusterEval
	first := true
	for _, c := range Table4() {
		members := pickMembers(ctx, c.Scaled(ctx.Params.K))
		eval := evaluateCluster(ctx, members)
		if first || eval.score > best.score {
			best = eval
			first = false
		}
	}
	return best
}

// OParticipant is the participant-selection oracle.
type OParticipant struct{}

// NewOParticipant builds the oracle. It is stateless and
// deterministic.
func NewOParticipant() *OParticipant { return &OParticipant{} }

// Name implements sim.Policy.
func (p *OParticipant) Name() string { return "Oparticipant" }

// Select implements sim.Policy.
func (p *OParticipant) Select(ctx *sim.RoundContext) []sim.Selection {
	return topStepSelections(bestCluster(ctx).members)
}

// OFL is the full oracle: optimal participants plus optimal execution
// targets and DVFS steps.
type OFL struct{}

// NewOFL builds the full oracle.
func NewOFL() *OFL { return &OFL{} }

// Name implements sim.Policy.
func (p *OFL) Name() string { return "OFL" }

// Select implements sim.Policy.
func (p *OFL) Select(ctx *sim.RoundContext) []sim.Selection {
	eval := bestCluster(ctx)
	out := make([]sim.Selection, 0, len(eval.members))
	for _, idx := range eval.members {
		// Leave headroom below the deadline so a surprise co-runner
		// does not immediately turn a slack-stretched device into a
		// straggler.
		target, step := BestAction(ctx, idx, 0.85*eval.deadline)
		out = append(out, sim.Selection{Index: idx, Target: target, Step: step})
	}
	return out
}

// BestAction returns the execution target and DVFS step minimizing the
// device's round energy subject to finishing by the deadline — the
// slack-exploiting second-level decision of OFL and the reference for
// AutoFL's action accuracy (Fig 12). If no action meets the deadline
// it returns the fastest one.
func BestAction(ctx *sim.RoundContext, idx int, deadline float64) (device.Target, int) {
	spec := ctx.Devices[idx].Device.Spec
	bestTarget, bestStep := device.CPU, spec.CPU.TopStep()
	bestEnergy := math.Inf(1)
	feasible := false
	fastestTarget, fastestStep := bestTarget, bestStep
	fastestTime := math.Inf(1)
	for _, target := range []device.Target{device.CPU, device.GPU} {
		proc := spec.Proc(target)
		for step := 0; step <= proc.TopStep(); step++ {
			comp, comm := ctx.Estimate(idx, target, step)
			total := comp + comm
			if total < fastestTime {
				fastestTime = total
				fastestTarget, fastestStep = target, step
			}
			if total > deadline {
				continue
			}
			energy := ctx.EstimateEnergy(idx, target, step, total)
			if energy < bestEnergy {
				bestEnergy = energy
				bestTarget, bestStep = target, step
				feasible = true
			}
		}
	}
	if !feasible {
		return fastestTarget, fastestStep
	}
	return bestTarget, bestStep
}

// Compile-time interface checks.
var (
	_ sim.Policy = (*OParticipant)(nil)
	_ sim.Policy = (*OFL)(nil)
)
