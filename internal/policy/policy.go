// Package policy implements the participant-selection policies the
// AutoFL paper evaluates against (§5.1):
//
//   - FedAvg-Random — the de-facto baseline, uniform random K.
//   - Performance — cluster C1 of Table 4 (high-end devices only).
//   - Power — cluster C7 (lowest-power devices only).
//   - the full C0–C7 characterization clusters of Table 4.
//   - Oparticipant — an oracle that, each round, evaluates every
//     candidate cluster against the true observed device states and
//     picks the one maximizing predicted progress-per-joule.
//   - OFL — Oparticipant plus per-device execution-target and DVFS
//     optimization (the paper's upper bound for AutoFL).
//   - FedNova and FEDL — prior-work comparators (§6.3): random
//     selection with partial updates and update normalization /
//     gradient correction.
//
// The AutoFL controller itself lives in internal/core.
package policy

import (
	"autofl/internal/device"
	"autofl/internal/rng"
	"autofl/internal/sim"
)

// Cluster is a Table 4 row: how many devices of each tier participate.
type Cluster struct {
	Name    string
	H, M, L int
}

// Total is the cluster's participant count.
func (c Cluster) Total() int { return c.H + c.M + c.L }

// Counts returns the per-tier counts indexed by device.Category.
func (c Cluster) Counts() [device.NumCategories]int {
	return [device.NumCategories]int{c.H, c.M, c.L}
}

// Scaled proportionally rescales the cluster to k total participants
// using largest-remainder rounding, preserving the tier mix. Table 4
// is specified for K = 20; settings like S4 use K = 10.
func (c Cluster) Scaled(k int) Cluster {
	total := c.Total()
	if total == 0 || k == total {
		return c
	}
	counts := [3]int{c.H, c.M, c.L}
	type rem struct {
		idx  int
		frac float64
	}
	var out [3]int
	var rems [3]rem
	assigned := 0
	for i, n := range counts {
		exact := float64(n) * float64(k) / float64(total)
		out[i] = int(exact)
		assigned += out[i]
		rems[i] = rem{i, exact - float64(out[i])}
	}
	// Largest remainder first, index as the deterministic tie-break;
	// three elements, sorted in place without the sort package.
	less := func(a, b rem) bool {
		if a.frac != b.frac {
			return a.frac > b.frac
		}
		return a.idx < b.idx
	}
	for i := 1; i < len(rems); i++ {
		for j := i; j > 0 && less(rems[j], rems[j-1]); j-- {
			rems[j], rems[j-1] = rems[j-1], rems[j]
		}
	}
	for i := 0; assigned < k; i = (i + 1) % len(rems) {
		out[rems[i].idx]++
		assigned++
	}
	return Cluster{Name: c.Name, H: out[0], M: out[1], L: out[2]}
}

// Table4 returns the characterization clusters C1–C7 (C0, random
// selection, is the Random policy). Counts are the paper's for K=20.
func Table4() []Cluster {
	return []Cluster{
		{Name: "C1", H: 20, M: 0, L: 0},
		{Name: "C2", H: 15, M: 5, L: 0},
		{Name: "C3", H: 10, M: 5, L: 5},
		{Name: "C4", H: 5, M: 10, L: 5},
		{Name: "C5", H: 5, M: 5, L: 10},
		{Name: "C6", H: 0, M: 5, L: 15},
		{Name: "C7", H: 0, M: 0, L: 20},
	}
}

// ClusterByName returns the Table 4 cluster with the given name.
func ClusterByName(name string) (Cluster, bool) {
	for _, c := range Table4() {
		if c.Name == name {
			return c, true
		}
	}
	return Cluster{}, false
}

// topStepSelections builds selections running every device on its CPU
// at the top DVFS step — the execution target every non-OFL policy
// uses.
func topStepSelections(indices []int) []sim.Selection {
	out := make([]sim.Selection, 0, len(indices))
	for _, i := range indices {
		out = append(out, sim.Selection{Index: i, Target: device.CPU, Step: -1})
	}
	return out
}

// Random is the FedAvg-Random baseline (C0): uniform random K
// participants, CPU at top frequency.
type Random struct {
	s *rng.Stream
	// perm and sels are reused across rounds so Select allocates
	// nothing in steady state — at population scale the candidate view
	// is thousands of devices per round, and a fresh Perm per round
	// was the policy-side allocation hot spot. PermInto consumes
	// exactly the variates Sample did, so draws are unchanged.
	perm []int
	sels []sim.Selection
}

// NewRandom builds the baseline with its own random stream.
func NewRandom(seed uint64) *Random { return &Random{s: rng.New(seed)} }

// Name implements sim.Policy.
func (p *Random) Name() string { return "FedAvg-Random" }

// Select implements sim.Policy.
func (p *Random) Select(ctx *sim.RoundContext) []sim.Selection {
	n, k := len(ctx.Devices), ctx.Params.K
	if cap(p.perm) < n {
		p.perm = make([]int, n)
	}
	perm := p.perm[:n]
	p.s.PermInto(perm)
	if k > n {
		k = n
	}
	out := p.sels[:0]
	for _, i := range perm[:k] {
		out = append(out, sim.Selection{Index: i, Target: device.CPU, Step: -1})
	}
	p.sels = out
	return out
}

// Static selects a fixed Table 4 cluster every round, with members
// drawn randomly within each tier (the cluster fixes counts, not
// identities).
type Static struct {
	name    string
	cluster Cluster
	s       *rng.Stream
}

// NewStatic builds a fixed-cluster policy.
func NewStatic(name string, c Cluster, seed uint64) *Static {
	return &Static{name: name, cluster: c, s: rng.New(seed)}
}

// NewPerformance returns the Performance policy: Table 4's C1, the
// best-execution-time cluster.
func NewPerformance(seed uint64) *Static {
	c, _ := ClusterByName("C1")
	return NewStatic("Performance", c, seed)
}

// NewPower returns the Power policy: Table 4's C7, the minimum power
// draw cluster.
func NewPower(seed uint64) *Static {
	c, _ := ClusterByName("C7")
	return NewStatic("Power", c, seed)
}

// Name implements sim.Policy.
func (p *Static) Name() string { return p.name }

// Select implements sim.Policy.
func (p *Static) Select(ctx *sim.RoundContext) []sim.Selection {
	cluster := p.cluster.Scaled(ctx.Params.K)
	counts := cluster.Counts()
	var indices []int
	for cat := 0; cat < device.NumCategories; cat++ {
		want := counts[cat]
		if want == 0 {
			continue
		}
		var pool []int
		for i := range ctx.Devices {
			if ctx.Devices[i].Device.Category() == device.Category(cat) {
				pool = append(pool, i)
			}
		}
		for _, j := range p.s.Sample(len(pool), want) {
			indices = append(indices, pool[j])
		}
	}
	return topStepSelections(indices)
}

// FedNova is the prior-work comparator of Wang et al. (NeurIPS 2020):
// random selection, partial updates from stragglers, and normalized
// averaging that removes objective inconsistency from heterogeneous
// local steps.
type FedNova struct{ Random }

// NewFedNova builds the comparator.
func NewFedNova(seed uint64) *FedNova { return &FedNova{Random{s: rng.New(seed)}} }

// Name implements sim.Policy.
func (p *FedNova) Name() string { return "FedNova" }

// Traits implements sim.TraitsPolicy.
func (p *FedNova) Traits() sim.AggregationTraits {
	return sim.AggregationTraits{
		PartialUpdates:    true,
		DivergenceDamping: 0.35,
		NormalizedWeights: true,
	}
}

// FEDL is the comparator of Dinh et al. (ToN 2021): random selection
// with client-side approximate gradient correction against the global
// weights.
type FEDL struct{ Random }

// NewFEDL builds the comparator.
func NewFEDL(seed uint64) *FEDL { return &FEDL{Random{s: rng.New(seed)}} }

// Name implements sim.Policy.
func (p *FEDL) Name() string { return "FEDL" }

// Traits implements sim.TraitsPolicy.
func (p *FEDL) Traits() sim.AggregationTraits {
	return sim.AggregationTraits{
		PartialUpdates:    true,
		DivergenceDamping: 0.45,
	}
}

// Compile-time interface checks.
var (
	_ sim.Policy       = (*Random)(nil)
	_ sim.Policy       = (*Static)(nil)
	_ sim.TraitsPolicy = (*FedNova)(nil)
	_ sim.TraitsPolicy = (*FEDL)(nil)
)
