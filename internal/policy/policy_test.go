package policy

import (
	"testing"

	"autofl/internal/data"
	"autofl/internal/device"
	"autofl/internal/sim"
	"autofl/internal/workload"
)

func baseCfg(seed uint64) sim.Config {
	return sim.Config{
		Workload:  workload.CNNMNIST(),
		Params:    workload.S3,
		Data:      data.IdealIID,
		Env:       sim.EnvIdeal(),
		Seed:      seed,
		MaxRounds: 600,
	}
}

func TestTable4Clusters(t *testing.T) {
	clusters := Table4()
	if len(clusters) != 7 {
		t.Fatalf("Table4 has %d clusters, want 7 (C1..C7)", len(clusters))
	}
	for _, c := range clusters {
		if c.Total() != 20 {
			t.Errorf("%s totals %d devices, want 20", c.Name, c.Total())
		}
	}
	c1, _ := ClusterByName("C1")
	if c1.H != 20 || c1.M != 0 || c1.L != 0 {
		t.Errorf("C1 = %+v, want all high-end (Performance)", c1)
	}
	c7, _ := ClusterByName("C7")
	if c7.L != 20 || c7.H != 0 {
		t.Errorf("C7 = %+v, want all low-end (Power)", c7)
	}
	if _, ok := ClusterByName("C9"); ok {
		t.Error("unknown cluster name should not resolve")
	}
}

func TestClusterScaled(t *testing.T) {
	c, _ := ClusterByName("C3") // 10/5/5
	s := c.Scaled(10)
	if s.Total() != 10 {
		t.Fatalf("scaled total = %d, want 10", s.Total())
	}
	if s.H != 5 || s.M < 2 || s.L < 2 {
		t.Errorf("C3 scaled to 10 = %+v, want ~(5,2..3,2..3)", s)
	}
	same := c.Scaled(20)
	if same != c {
		t.Error("scaling to the same total should be identity")
	}
	up := c.Scaled(40)
	if up.Total() != 40 || up.H != 20 {
		t.Errorf("C3 scaled to 40 = %+v", up)
	}
}

func TestClusterScaledProperty(t *testing.T) {
	for _, c := range Table4() {
		for k := 1; k <= 40; k++ {
			s := c.Scaled(k)
			if s.Total() != k {
				t.Fatalf("%s scaled to %d totals %d", c.Name, k, s.Total())
			}
			if s.H < 0 || s.M < 0 || s.L < 0 {
				t.Fatalf("%s scaled to %d has negative tier count", c.Name, k)
			}
			// Tiers absent from the original stay absent.
			if c.H == 0 && s.H != 0 || c.M == 0 && s.M != 0 || c.L == 0 && s.L != 0 {
				t.Fatalf("%s scaled to %d invented a tier: %+v", c.Name, k, s)
			}
		}
	}
}

func TestRandomSelectsK(t *testing.T) {
	eng := sim.New(baseCfg(1))
	p := NewRandom(7)
	res := eng.Run(p)
	if !res.Converged {
		t.Errorf("random baseline should converge under ideal IID: %v", res)
	}
}

func TestStaticClusterComposition(t *testing.T) {
	eng := sim.New(baseCfg(2))
	fleet := eng.Config().Fleet
	c, _ := ClusterByName("C3")
	p := NewStatic("C3", c, 3)
	_, res := eng.RunRound(p, 0, 0.1)
	var counts [device.NumCategories]int
	for _, dr := range res.Devices {
		if dr.Selected {
			counts[fleet[dr.Index].Category()]++
		}
	}
	if counts[device.High] != 10 || counts[device.Mid] != 5 || counts[device.Low] != 5 {
		t.Errorf("C3 selection mix = %v, want [10 5 5]", counts)
	}
}

func TestPerformanceAndPowerPolicies(t *testing.T) {
	eng := sim.New(baseCfg(3))
	fleet := eng.Config().Fleet
	perf := NewPerformance(4)
	pow := NewPower(4)
	if perf.Name() != "Performance" || pow.Name() != "Power" {
		t.Error("policy names wrong")
	}
	_, resPerf := eng.RunRound(perf, 0, 0.1)
	_, resPow := eng.RunRound(pow, 0, 0.1)
	for _, dr := range resPerf.Devices {
		if dr.Selected && fleet[dr.Index].Category() != device.High {
			t.Error("Performance must select only high-end devices")
		}
	}
	for _, dr := range resPow.Devices {
		if dr.Selected && fleet[dr.Index].Category() != device.Low {
			t.Error("Power must select only low-end devices")
		}
	}
	// Performance rounds are faster; Power rounds draw less
	// participant power on average.
	if resPerf.RoundSec >= resPow.RoundSec {
		t.Errorf("Performance round (%.1fs) should beat Power round (%.1fs)",
			resPerf.RoundSec, resPow.RoundSec)
	}
	perfPower := resPerf.EnergyParticipantsJ / resPerf.RoundSec
	powPower := resPow.EnergyParticipantsJ / resPow.RoundSec
	if powPower >= perfPower {
		t.Errorf("Power draw %.1fW should be below Performance %.1fW", powPower, perfPower)
	}
}

func TestOraclesBeatRandomPPW(t *testing.T) {
	// Fig 1: judicious selection improves PPW substantially over
	// random selection under realistic field conditions.
	cfg := baseCfg(5)
	cfg.Env = sim.EnvField()
	random := sim.New(cfg).Run(NewRandom(7))
	op := sim.New(cfg).Run(NewOParticipant())
	ofl := sim.New(cfg).Run(NewOFL())
	if op.GlobalPPW() <= random.GlobalPPW() {
		t.Errorf("Oparticipant PPW %.3g should beat random %.3g", op.GlobalPPW(), random.GlobalPPW())
	}
	if ofl.GlobalPPW() <= random.GlobalPPW() {
		t.Errorf("OFL PPW %.3g should beat random %.3g", ofl.GlobalPPW(), random.GlobalPPW())
	}
}

func TestOFLBeatsOParticipant(t *testing.T) {
	// §6.1: execution-target optimization buys OFL additional energy
	// efficiency over participant selection alone (~19.8% in the
	// paper).
	cfg := baseCfg(6)
	cfg.Env = sim.EnvIdeal()
	op := sim.New(cfg).Run(NewOParticipant())
	ofl := sim.New(cfg).Run(NewOFL())
	if ofl.GlobalPPW() <= op.GlobalPPW() {
		t.Errorf("OFL PPW %.3g should beat Oparticipant %.3g via DVFS/target slack",
			ofl.GlobalPPW(), op.GlobalPPW())
	}
}

func TestOracleAvoidsNonIIDDevices(t *testing.T) {
	// Fig 11: under Non-IID(75%), 25% of devices hold IID data; the
	// oracle must favor them heavily and still converge.
	cfg := baseCfg(7)
	cfg.Data = data.NonIID75
	cfg.MaxRounds = 1000
	eng := sim.New(cfg)
	res := eng.Run(NewOParticipant())
	if !res.Converged {
		t.Errorf("oracle should converge at Non-IID(75%%): %v", res)
	}
}

func TestOracleConvergesAtFullNonIID(t *testing.T) {
	cfg := baseCfg(8)
	cfg.Data = data.NonIID100
	cfg.MaxRounds = 1000
	res := sim.New(cfg).Run(NewOParticipant())
	if !res.Converged {
		t.Errorf("oracle's stable high-quality cohort should converge at Non-IID(100%%): %v", res)
	}
}

func TestOracleShiftsTowardHighEndUnderInterference(t *testing.T) {
	// Fig 5(b): with on-device interference the optimal cluster moves
	// toward high-end devices (C1-like) because their absolute
	// throughput under contention stays above the straggler deadline.
	highShare := func(env sim.Env, seed uint64) float64 {
		cfg := baseCfg(seed)
		cfg.Env = env
		eng := sim.New(cfg)
		fleet := eng.Config().Fleet
		p := NewOParticipant()
		high, total := 0, 0
		for round := 0; round < 30; round++ {
			_, res := eng.RunRound(p, round, 0.5)
			for _, dr := range res.Devices {
				if dr.Selected {
					total++
					if fleet[dr.Index].Category() == device.High {
						high++
					}
				}
			}
		}
		return float64(high) / float64(total)
	}
	ideal := highShare(sim.EnvIdeal(), 9)
	interf := highShare(sim.EnvInterference(), 9)
	if interf <= ideal {
		t.Errorf("high-end share under interference (%.2f) should exceed ideal (%.2f)", interf, ideal)
	}
}

func TestOracleShiftsTowardLowEndUnderWeakNetwork(t *testing.T) {
	// Fig 5(c): with weak signal, communication dominates and
	// low-power devices win PPW, so the optimal cluster moves toward
	// low-end (C5-like).
	lowShare := func(env sim.Env, seed uint64) float64 {
		cfg := baseCfg(seed)
		cfg.Env = env
		eng := sim.New(cfg)
		fleet := eng.Config().Fleet
		p := NewOParticipant()
		low, total := 0, 0
		for round := 0; round < 30; round++ {
			_, res := eng.RunRound(p, round, 0.5)
			for _, dr := range res.Devices {
				if dr.Selected {
					total++
					if fleet[dr.Index].Category() == device.Low {
						low++
					}
				}
			}
		}
		return float64(low) / float64(total)
	}
	// Compare against the interference environment, where the oracle
	// retreats to high-end devices: weak networks push it back toward
	// low-power hardware.
	interf := lowShare(sim.EnvInterference(), 10)
	weak := lowShare(sim.EnvWeakNetwork(), 10)
	if weak <= interf {
		t.Errorf("low-end share under weak network (%.2f) should exceed interference (%.2f)", weak, interf)
	}
	// The paper's weak-network optimum is C5 (10 of 20 low-end); allow
	// seed-to-seed variation around that mix.
	if weak < 0.35 {
		t.Errorf("low-end share under weak network = %.2f, want C5-like (~0.5)", weak)
	}
}

func TestHeavyWorkFavorsHighEnd(t *testing.T) {
	// Fig 4: moving from S1 (heavy per-device work) to S3 (light)
	// shifts the optimal cluster away from high-end devices.
	highShare := func(params workload.GlobalParams, seed uint64) float64 {
		cfg := baseCfg(seed)
		cfg.Params = params
		eng := sim.New(cfg)
		fleet := eng.Config().Fleet
		p := NewOParticipant()
		high, total := 0, 0
		for round := 0; round < 20; round++ {
			_, res := eng.RunRound(p, round, 0.5)
			for _, dr := range res.Devices {
				if dr.Selected {
					total++
					if fleet[dr.Index].Category() == device.High {
						high++
					}
				}
			}
		}
		return float64(high) / float64(total)
	}
	s1 := highShare(workload.S1, 11)
	s3 := highShare(workload.S3, 11)
	if s1 < s3 {
		t.Errorf("S1 high-end share (%.2f) should be at least S3's (%.2f)", s1, s3)
	}
}

func TestLSTMFavorsLowerTiersThanCNN(t *testing.T) {
	// §3.1: for memory-bound LSTM the tier gap shrinks, so the oracle
	// includes more mid/low-end devices than for compute-bound CNN.
	highShare := func(w *workload.Model, seed uint64) float64 {
		cfg := baseCfg(seed)
		cfg.Workload = w
		eng := sim.New(cfg)
		fleet := eng.Config().Fleet
		p := NewOParticipant()
		high, total := 0, 0
		for round := 0; round < 20; round++ {
			_, res := eng.RunRound(p, round, 0.3)
			for _, dr := range res.Devices {
				if dr.Selected {
					total++
					if fleet[dr.Index].Category() == device.High {
						high++
					}
				}
			}
		}
		return float64(high) / float64(total)
	}
	cnn := highShare(workload.CNNMNIST(), 12)
	lstm := highShare(workload.LSTMShakespeare(), 12)
	if lstm > cnn {
		t.Errorf("LSTM high-end share (%.2f) should not exceed CNN's (%.2f)", lstm, cnn)
	}
}

func TestFedNovaAndFEDLTraits(t *testing.T) {
	fn := NewFedNova(1)
	fe := NewFEDL(1)
	if fn.Name() != "FedNova" || fe.Name() != "FEDL" {
		t.Error("comparator names wrong")
	}
	ft := fn.Traits()
	if !ft.PartialUpdates || !ft.NormalizedWeights || ft.DivergenceDamping <= 0 {
		t.Errorf("FedNova traits = %+v", ft)
	}
	et := fe.Traits()
	if !et.PartialUpdates || et.NormalizedWeights || et.DivergenceDamping <= ft.DivergenceDamping {
		t.Errorf("FEDL traits = %+v; should damp more than FedNova without normalization", et)
	}
}

func TestPriorWorkBeatsPlainRandomUnderHeterogeneity(t *testing.T) {
	// §6.3: FedNova and FEDL are robust to data heterogeneity relative
	// to plain FedAvg-Random.
	cfg := baseCfg(13)
	cfg.Data = data.NonIID75
	cfg.MaxRounds = 800
	random := sim.New(cfg).Run(NewRandom(7))
	fednova := sim.New(cfg).Run(NewFedNova(7))
	if fednova.FinalAccuracy <= random.FinalAccuracy {
		t.Errorf("FedNova final accuracy %.3f should beat random %.3f under Non-IID(75%%)",
			fednova.FinalAccuracy, random.FinalAccuracy)
	}
}

func TestBestActionRespectsDeadline(t *testing.T) {
	cfg := baseCfg(14)
	eng := sim.New(cfg)
	ctx, _ := eng.RunRound(NewRandom(3), 0, 0.1)
	// Generous deadline: the chosen action should be cheaper than
	// top-step CPU.
	comp, comm := ctx.Estimate(0, device.CPU, -1)
	deadline := 3 * (comp + comm)
	target, step := BestAction(ctx, 0, deadline)
	c2, m2 := ctx.Estimate(0, target, step)
	if c2+m2 > deadline {
		t.Errorf("chosen action misses the deadline: %.1f > %.1f", c2+m2, deadline)
	}
	eBest := ctx.EstimateEnergy(0, target, step, c2+m2)
	eTop := ctx.EstimateEnergy(0, device.CPU, ctx.TopStep(0, device.CPU), comp+comm)
	if eBest > eTop {
		t.Errorf("slack-optimized action energy %.1fJ should not exceed top-step %.1fJ", eBest, eTop)
	}
	// Impossible deadline: falls back to the fastest action.
	target, step = BestAction(ctx, 0, 0.001)
	cf, mf := ctx.Estimate(0, target, step)
	if cf+mf > comp+comm+1e-9 {
		t.Error("with an impossible deadline, BestAction should return the fastest option")
	}
}

func TestOracleDeterminism(t *testing.T) {
	cfg := baseCfg(15)
	eng1, eng2 := sim.New(cfg), sim.New(cfg)
	r1 := eng1.Run(NewOFL())
	r2 := eng2.Run(NewOFL())
	if r1.EnergyToTargetJ != r2.EnergyToTargetJ || r1.Rounds != r2.Rounds {
		t.Error("oracle runs with equal seeds must be identical")
	}
}

func TestOracleSelectSteadyStateAllocFree(t *testing.T) {
	// The oracles' exhaustive per-round candidate search runs entirely
	// in reused scratch: once warmed, Select must not allocate.
	eng := sim.New(sim.Config{Seed: 15})
	ofl := NewOFL()
	ctx, _ := eng.RunRound(ofl, 0, 0.5)
	if avg := testing.AllocsPerRun(50, func() { _ = ofl.Select(ctx) }); avg != 0 {
		t.Errorf("steady-state OFL.Select allocated %.2f/run, want 0", avg)
	}
	op := NewOParticipant()
	if avg := testing.AllocsPerRun(50, func() { _ = op.Select(ctx) }); avg != 0 {
		t.Errorf("steady-state OParticipant.Select allocated %.2f/run, want 0", avg)
	}
}
