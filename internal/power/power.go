// Package power implements the energy models of AutoFL §4.1,
// equations (1) through (4): utilization-based CPU energy, frequency-
// indexed GPU energy, signal-strength-based communication energy, and
// idle energy for non-participants.
//
// The per-frequency busy/idle power values come from the device DVFS
// ladders (internal/device), which are seeded from the paper's Monsoon
// measurements (Table 3). In the paper these values live in a lookup
// table inside AutoFL; here the lookup table is the ProcSpec ladder.
package power

import "autofl/internal/device"

// Signal is the wireless signal-strength tier used by the
// communication energy model (Eq 3). Weaker signals force the radio
// to transmit at higher power, which is why poor networks both slow FL
// down and make it more expensive per byte (§3.2).
type Signal int

const (
	// SignalGood is a strong link (short TX bursts, low TX power).
	SignalGood Signal = iota
	// SignalFair is a mid-strength link.
	SignalFair
	// SignalPoor is a weak link (high TX power, long TX times).
	SignalPoor
)

// String implements fmt.Stringer.
func (s Signal) String() string {
	switch s {
	case SignalGood:
		return "good"
	case SignalFair:
		return "fair"
	default:
		return "poor"
	}
}

// TXWatts returns the wireless interface transmit power P^S_TX at the
// given signal strength — the measured-per-signal-strength table of
// Eq (3). Values follow the signal-strength-aware offloading
// literature the paper builds on: radios spend several times more
// power per second when the link is weak.
func TXWatts(s Signal) float64 {
	switch s {
	case SignalGood:
		return 0.9
	case SignalFair:
		return 1.4
	default:
		return 2.3
	}
}

// ComputeEnergy implements Eq (1)/(2): the energy of running the
// training computation on one execution target pinned at a single DVFS
// step for busySec seconds, then idling for idleSec seconds.
//
//	E = P_busy(f) × t_busy + P_idle × t_idle
//
// Eq (1) sums this per core; ProcSpec power ladders are already
// aggregated across the block's cores, so the sum is folded in.
func ComputeEnergy(proc *device.ProcSpec, step int, busySec, idleSec float64) float64 {
	if busySec < 0 {
		busySec = 0
	}
	if idleSec < 0 {
		idleSec = 0
	}
	return proc.PowerAt(step)*busySec + proc.IdleWatts*idleSec
}

// CommEnergy implements Eq (3): E_comm = P^S_TX × t_TX. txSec is the
// measured time spent transmitting (and receiving) the gradient
// payload.
func CommEnergy(s Signal, txSec float64) float64 {
	if txSec < 0 {
		txSec = 0
	}
	return TXWatts(s) * txSec
}

// IdleEnergy implements Eq (4): the energy a non-selected device burns
// sitting idle for the duration of the round.
func IdleEnergy(idleWatts, roundSec float64) float64 {
	if roundSec < 0 {
		roundSec = 0
	}
	return idleWatts * roundSec
}

// DeviceRoundEnergy aggregates the three models for one selected
// participant over one aggregation round: computation at (target,
// step), transmission at the observed signal strength, and idle power
// for the remainder of the round (a device that finishes early waits
// for the global aggregation, burning idle power — the performance
// slack AutoFL's DVFS action converts into savings).
func DeviceRoundEnergy(spec *device.Spec, target device.Target, step int, sig Signal, compSec, commSec, roundSec float64) float64 {
	slack := roundSec - compSec - commSec
	if slack < 0 {
		slack = 0
	}
	proc := spec.Proc(target)
	e := ComputeEnergy(proc, step, compSec, slack)
	e += CommEnergy(sig, commSec)
	// The other compute block and the radio idle throughout the busy
	// part of the round.
	other := spec.Proc(otherTarget(target))
	e += other.IdleWatts * roundSec
	e += spec.RadioIdleWatts * (roundSec - commSec)
	return e
}

// Phases breaks a participant's round into its energy-relevant parts.
// RoundSec must be at least SetupSec+CrunchSec+CommSec; the remainder
// is idle waiting for the global aggregation.
type Phases struct {
	// SetupSec is the fixed local-training overhead (framework
	// initialization, data pipeline) billed at Spec.SetupWatts.
	SetupSec float64
	// CrunchSec is the gradient-computation time billed at the
	// execution target's busy power.
	CrunchSec float64
	// CommSec is the payload transfer time billed at the TX power.
	CommSec float64
	// RoundSec is the full aggregation-round duration.
	RoundSec float64
}

// ParticipantRoundEnergy is the phase-aware participant energy model
// used by the round engine: setup + crunch + transmit + idle slack,
// plus the idle draw of the inactive compute block and radio.
func ParticipantRoundEnergy(spec *device.Spec, target device.Target, step int, sig Signal, ph Phases) float64 {
	busy := ph.SetupSec + ph.CrunchSec + ph.CommSec
	slack := ph.RoundSec - busy
	if slack < 0 {
		slack = 0
	}
	proc := spec.Proc(target)
	e := spec.SetupWatts * ph.SetupSec
	e += ComputeEnergy(proc, step, ph.CrunchSec, slack)
	e += CommEnergy(sig, ph.CommSec)
	other := spec.Proc(otherTarget(target))
	e += other.IdleWatts * ph.RoundSec
	radioIdle := ph.RoundSec - ph.CommSec
	if radioIdle < 0 {
		radioIdle = 0
	}
	e += spec.RadioIdleWatts * radioIdle
	return e
}

func otherTarget(t device.Target) device.Target {
	if t == device.CPU {
		return device.GPU
	}
	return device.CPU
}
