package power

import (
	"testing"
	"testing/quick"

	"autofl/internal/device"
)

func TestTXWattsOrdering(t *testing.T) {
	if !(TXWatts(SignalGood) < TXWatts(SignalFair) && TXWatts(SignalFair) < TXWatts(SignalPoor)) {
		t.Error("TX power must increase as signal degrades")
	}
}

func TestSignalStrings(t *testing.T) {
	if SignalGood.String() != "good" || SignalFair.String() != "fair" || SignalPoor.String() != "poor" {
		t.Error("Signal strings wrong")
	}
}

func TestComputeEnergyEq1(t *testing.T) {
	proc := &device.HighEndSpec().CPU
	step := proc.TopStep()
	got := ComputeEnergy(proc, step, 10, 5)
	want := proc.PowerAt(step)*10 + proc.IdleWatts*5
	if got != want {
		t.Errorf("ComputeEnergy = %v, want %v", got, want)
	}
}

func TestComputeEnergyNegativeDurationsClamp(t *testing.T) {
	proc := &device.LowEndSpec().GPU
	if got := ComputeEnergy(proc, 0, -1, -1); got != 0 {
		t.Errorf("negative durations should clamp to zero energy, got %v", got)
	}
}

func TestCommEnergyEq3(t *testing.T) {
	if got, want := CommEnergy(SignalPoor, 4), TXWatts(SignalPoor)*4; got != want {
		t.Errorf("CommEnergy = %v, want %v", got, want)
	}
	if CommEnergy(SignalGood, -3) != 0 {
		t.Error("negative TX time should clamp to zero")
	}
}

func TestIdleEnergyEq4(t *testing.T) {
	if got := IdleEnergy(0.5, 60); got != 30 {
		t.Errorf("IdleEnergy = %v, want 30", got)
	}
	if IdleEnergy(0.5, -1) != 0 {
		t.Error("negative round time should clamp to zero")
	}
}

func TestDVFSEnergyTradeoff(t *testing.T) {
	// Running the same compute-bound work at a lower DVFS step takes
	// longer but can cost less energy: the cubic dynamic power drops
	// faster than the runtime grows. Verify the ladder exposes that
	// trade-off (this is the slack AutoFL's second-level action
	// exploits).
	proc := &device.HighEndSpec().CPU
	const workGFLOP = 500.0
	top := proc.TopStep()
	eTop := ComputeEnergy(proc, top, workGFLOP/proc.GFLOPSAt(top), 0)
	better := false
	for s := 0; s < top; s++ {
		e := ComputeEnergy(proc, s, workGFLOP/proc.GFLOPSAt(s), 0)
		if e < eTop {
			better = true
			break
		}
	}
	if !better {
		t.Error("no DVFS step beats the top step in energy for fixed work")
	}
}

func TestDeviceRoundEnergySlackIsIdle(t *testing.T) {
	spec := device.MidEndSpec()
	// A round twice as long as the busy time should cost more than a
	// tight round: the extra time is idle but not free.
	tight := DeviceRoundEnergy(spec, device.CPU, spec.CPU.TopStep(), SignalGood, 10, 2, 12)
	slack := DeviceRoundEnergy(spec, device.CPU, spec.CPU.TopStep(), SignalGood, 10, 2, 24)
	if slack <= tight {
		t.Error("longer rounds must cost at least the extra idle energy")
	}
}

func TestDeviceRoundEnergyGPUCheaperAtSameDuration(t *testing.T) {
	// At identical durations, running on the lower-power GPU block
	// must cost less than the CPU block at top frequency.
	spec := device.HighEndSpec()
	cpu := DeviceRoundEnergy(spec, device.CPU, spec.CPU.TopStep(), SignalGood, 10, 2, 12)
	gpu := DeviceRoundEnergy(spec, device.GPU, spec.GPU.TopStep(), SignalGood, 10, 2, 12)
	if gpu >= cpu {
		t.Errorf("GPU round energy %v should be below CPU %v for equal durations", gpu, cpu)
	}
}

// Property: round energy is non-negative, and monotone in each of
// compSec / commSec / roundSec.
func TestDeviceRoundEnergyProperty(t *testing.T) {
	spec := device.LowEndSpec()
	f := func(compRaw, commRaw, extraRaw uint8) bool {
		comp := float64(compRaw) / 4
		comm := float64(commRaw) / 8
		round := comp + comm + float64(extraRaw)/4
		e := DeviceRoundEnergy(spec, device.CPU, 3, SignalFair, comp, comm, round)
		if e < 0 {
			return false
		}
		e2 := DeviceRoundEnergy(spec, device.CPU, 3, SignalFair, comp, comm, round+10)
		return e2 >= e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
