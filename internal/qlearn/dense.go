package qlearn

import (
	"autofl/internal/rng"
)

// StateKey is a packed integer state: every Table 1 feature bucket
// occupies one digit of a mixed-radix encoding (see internal/core's
// StateCoder). A StateKey compares, hashes, and copies as a single
// machine word, which is what lets the dense table's hot path run
// without allocating — the string form built by JoinState is kept only
// for debugging and serialization.
type StateKey uint64

// Dense is a slice-backed Q-table over packed StateKeys: a compact
// interner maps each *visited* state to a dense row number, and all
// action values live in one flat []float64 indexed by
// row*numActions+action. Compared to the string-keyed Table this
// removes per-read key construction, per-row map allocation, and the
// sort inside argmax; steady-state reads and updates are
// allocation-free.
//
// The write/read contract matches Table: rows are created only by
// Touch, Set, and Update; Q, Best, BestAt, and BestValue are
// side-effect free and report the Init prior for never-visited states.
type Dense struct {
	numActions int
	index      map[StateKey]int32 // visited-state interner: state → row
	values     []float64          // row-major action values
	initRng    *rng.Stream

	// Init, when set, supplies the base value for lazily-created rows
	// (a small random jitter is still added per entry for
	// tie-breaking), exactly as on Table.
	Init func() float64
}

// NewDense creates a dense Q-table over numActions actions. The rng
// stream drives random initialization of lazily-created rows with the
// same draw sequence as Table (one Float64 per action, in action
// order), so a Dense and a Table seeded alike produce identical
// values.
func NewDense(numActions int, s *rng.Stream) *Dense {
	if numActions <= 0 {
		panic("qlearn: NewDense requires at least one action")
	}
	return &Dense{
		numActions: numActions,
		index:      make(map[StateKey]int32),
		initRng:    s,
	}
}

// NumActions returns the size of the action index space.
func (t *Dense) NumActions() int { return t.numActions }

// base returns the prior value for entries of not-yet-created rows.
func (t *Dense) base() float64 {
	if t.Init != nil {
		return t.Init()
	}
	return 0
}

// Touch materializes the row for s (drawing its random initialization
// now) and returns its row handle. Decision paths call it to pin
// exactly when a state's init values are drawn; the returned handle
// feeds the *At accessors without a second interner lookup.
func (t *Dense) Touch(s StateKey) int32 {
	if row, ok := t.index[s]; ok {
		return row
	}
	row := int32(len(t.values) / t.numActions)
	base := t.base()
	for i := 0; i < t.numActions; i++ {
		// Small random init breaks ties during early exploration.
		t.values = append(t.values, base+t.initRng.Float64()*1e-3)
	}
	t.index[s] = row
	return row
}

// Row returns the row handle for s and whether s has been visited. It
// is a pure read.
func (t *Dense) Row(s StateKey) (int32, bool) {
	row, ok := t.index[s]
	return row, ok
}

// Q returns the current value estimate for (s, a). Pure read: a
// never-visited state reports the Init prior without jitter.
func (t *Dense) Q(s StateKey, a int) float64 {
	if row, ok := t.index[s]; ok {
		return t.values[int(row)*t.numActions+a]
	}
	return t.base()
}

// QAt reads an entry through a row handle obtained from Touch or Row.
func (t *Dense) QAt(row int32, a int) float64 {
	return t.values[int(row)*t.numActions+a]
}

// Set overwrites the value for (s, a), creating the row if absent.
func (t *Dense) Set(s StateKey, a int, v float64) {
	row := t.Touch(s)
	t.values[int(row)*t.numActions+a] = v
}

// BestAt returns the argmax action index and value of a materialized
// row: a linear scan over the row's contiguous values, no allocation,
// no sort. Ties break to the lowest action index — with actions
// registered in name order this matches Table's sorted-name
// tie-breaking.
func (t *Dense) BestAt(row int32) (int, float64) {
	off := int(row) * t.numActions
	best, bestV := 0, t.values[off]
	for a := 1; a < t.numActions; a++ {
		if v := t.values[off+a]; v > bestV {
			best, bestV = a, v
		}
	}
	return best, bestV
}

// Best returns the argmax action index and value for s. Pure read: a
// never-visited state reports action 0 at the Init prior.
func (t *Dense) Best(s StateKey) (int, float64) {
	if row, ok := t.index[s]; ok {
		return t.BestAt(row)
	}
	return 0, t.base()
}

// BestValue returns max_a Q(s, a) — the device-ranking score Algorithm
// 1 sorts by.
func (t *Dense) BestValue(s StateKey) float64 {
	_, v := t.Best(s)
	return v
}

// Update applies the Algorithm 1 value update for the transition
// (s, a) → (s', a') with reward r. As a write, it creates the row for
// s; the (s', a') operand is a pure read.
func (t *Dense) Update(s StateKey, a int, reward float64, sNext StateKey, aNext int, learningRate, discount float64) {
	row := t.Touch(s)
	i := int(row)*t.numActions + a
	cur := t.values[i]
	target := reward + discount*t.Q(sNext, aNext)
	t.values[i] = cur + learningRate*(target-cur)
}

// UpdateAt is Update through row handles, for callers that already
// hold both rows: no interner lookups at all.
func (t *Dense) UpdateAt(row int32, a int, reward float64, rowNext int32, aNext int, learningRate, discount float64) {
	i := int(row)*t.numActions + a
	cur := t.values[i]
	target := reward + discount*t.values[int(rowNext)*t.numActions+aNext]
	t.values[i] = cur + learningRate*(target-cur)
}

// States returns the number of distinct states the table has visited.
func (t *Dense) States() int { return len(t.index) }

// MemoryBytes estimates the table's resident size for the §6.4
// footprint analysis: the flat value array (8 bytes per entry, counted
// at capacity since append over-allocates) plus the interner map
// (12 bytes of key+value per entry plus Go map bucket overhead,
// ~48 bytes per entry in total) and the struct itself.
func (t *Dense) MemoryBytes() int {
	return cap(t.values)*8 + len(t.index)*48 + 96
}

// DenseAgent couples a Dense Q-table with the epsilon-greedy policy
// and the paper's hyperparameters, mirroring Agent over the packed
// representation. Actions are integer indices into a caller-held
// action ordering.
type DenseAgent struct {
	Table *Dense
	// LearningRate is γ in the paper's Algorithm 1.
	LearningRate float64
	// Discount is µ.
	Discount float64
	// Epsilon is the exploration probability.
	Epsilon float64

	explore *rng.Stream
}

// NewDenseAgent builds an agent with the paper's default
// hyperparameters. It forks the parent stream in the same order as
// NewAgent (table init first, exploration second), so a DenseAgent and
// an Agent built from identical streams stay draw-for-draw aligned.
func NewDenseAgent(numActions int, s *rng.Stream) *DenseAgent {
	return &DenseAgent{
		Table:        NewDense(numActions, s.Fork()),
		LearningRate: DefaultLearningRate,
		Discount:     DefaultDiscount,
		Epsilon:      DefaultEpsilon,
		explore:      s.Fork(),
	}
}

// Explore reports whether this decision should be exploratory (a
// uniform-random draw below epsilon), per Algorithm 1.
func (a *DenseAgent) Explore() bool { return a.explore.Bool(a.Epsilon) }

// RandomAction returns a uniformly random action index, used on
// exploration steps.
func (a *DenseAgent) RandomAction() int { return a.explore.IntN(a.Table.numActions) }

// Learn applies the update rule with the agent's hyperparameters.
func (a *DenseAgent) Learn(s StateKey, act int, reward float64, sNext StateKey, aNext int) {
	a.Table.Update(s, act, reward, sNext, aNext, a.LearningRate, a.Discount)
}
