package qlearn

import (
	"runtime"
	"runtime/debug"
	"testing"

	"autofl/internal/rng"
)

// TestDenseMatchesTable pins the dense table to the legacy string
// table draw for draw: identically seeded instances must produce
// identical init values, argmax decisions, and update trajectories.
// This is the equivalence that lets the controller swap representations
// without changing any simulated number.
func TestDenseMatchesTable(t *testing.T) {
	acts := actions() // name-sorted, so index order == sorted-name order
	legacy := NewTable(acts, rng.New(42))
	dense := NewDense(len(acts), rng.New(42))

	states := []State{"s0", "s1", "s2", "s3"}
	keys := []StateKey{10, 11, 12, 13}

	// Same materialization order → same init draws.
	for i := range states {
		legacy.Touch(states[i])
		dense.Touch(keys[i])
	}
	for i := range states {
		for ai, a := range acts {
			if lv, dv := legacy.Q(states[i], a), dense.Q(keys[i], ai); lv != dv {
				t.Fatalf("init mismatch at (%s,%s): %v vs %v", states[i], a, lv, dv)
			}
		}
		la, lv := legacy.Best(states[i])
		da, dv := dense.Best(keys[i])
		if string(la) != string(acts[da]) || lv != dv {
			t.Fatalf("argmax mismatch at %s: (%s,%v) vs (%s,%v)", states[i], la, lv, acts[da], dv)
		}
	}

	// Identical update sequences stay identical.
	seq := []struct {
		s, sn  int
		a, an  int
		reward float64
	}{
		{0, 1, 0, 2, 1.5}, {1, 2, 2, 1, -0.7}, {2, 0, 1, 0, 3.2}, {0, 3, 2, 2, 0.05},
	}
	for _, u := range seq {
		legacy.Update(states[u.s], acts[u.a], u.reward, states[u.sn], acts[u.an], 0.9, 0.1)
		dense.Update(keys[u.s], u.a, u.reward, keys[u.sn], u.an, 0.9, 0.1)
	}
	for i := range states {
		for ai, a := range acts {
			if lv, dv := legacy.Q(states[i], a), dense.Q(keys[i], ai); lv != dv {
				t.Fatalf("post-update mismatch at (%s,%s): %v vs %v", states[i], a, lv, dv)
			}
		}
	}
}

func TestDenseReadsAreSideEffectFree(t *testing.T) {
	a := NewDense(3, rng.New(5))
	b := NewDense(3, rng.New(5))
	for i := 0; i < 100; i++ {
		_ = a.Q(StateKey(1000+i), 0)
		_, _ = a.Best(StateKey(2000 + i))
		_ = a.BestValue(StateKey(3000 + i))
		if _, ok := a.Row(StateKey(4000 + i)); ok {
			t.Fatal("Row reported an unvisited state as present")
		}
	}
	if a.States() != 0 {
		t.Fatalf("pure reads created %d states", a.States())
	}
	// The init stream must be untouched: both tables draw the same row.
	ra, rb := a.Touch(7), b.Touch(7)
	for i := 0; i < 3; i++ {
		if a.QAt(ra, i) != b.QAt(rb, i) {
			t.Fatal("reads advanced the init stream")
		}
	}
}

func TestDenseUnseenReadsReportPrior(t *testing.T) {
	d := NewDense(4, rng.New(6))
	d.Init = func() float64 { return -1.5 }
	if got := d.Q(99, 2); got != -1.5 {
		t.Errorf("unseen Q = %v, want prior", got)
	}
	if a, v := d.Best(99); a != 0 || v != -1.5 {
		t.Errorf("unseen Best = (%d, %v), want (0, prior)", a, v)
	}
	if d.States() != 0 {
		t.Error("prior reads must not intern states")
	}
}

func TestDenseBestTieBreaksToLowestIndex(t *testing.T) {
	d := NewDense(3, rng.New(7))
	d.Set(1, 0, 2)
	d.Set(1, 1, 2)
	d.Set(1, 2, 2)
	if a, _ := d.Best(1); a != 0 {
		t.Errorf("tie broke to %d, want lowest index 0", a)
	}
	d.Set(2, 0, 1)
	d.Set(2, 1, 5)
	d.Set(2, 2, 5)
	if a, v := d.Best(2); a != 1 || v != 5 {
		t.Errorf("Best = (%d, %v), want (1, 5)", a, v)
	}
}

func TestDenseSteadyStateOpsAllocFree(t *testing.T) {
	d := NewDense(6, rng.New(8))
	for s := 0; s < 64; s++ {
		d.Touch(StateKey(s))
	}
	ops := func() {
		row := d.Touch(17)
		_, _ = d.BestAt(row)
		_ = d.Q(23, 3)
		d.Update(23, 1, 0.7, 17, 2, 0.9, 0.1)
		_ = d.BestValue(48)
	}
	if avg := testing.AllocsPerRun(200, ops); avg != 0 {
		t.Errorf("steady-state dense ops allocated %.2f/run, want 0", avg)
	}
}

// TestDenseMemoryBytesAgainstMeasuredBaseline keeps the §6.4 footprint
// accounting honest: MemoryBytes must track the actually measured heap
// growth of a populated table within a factor of two in both
// directions.
func TestDenseMemoryBytesAgainstMeasuredBaseline(t *testing.T) {
	const states, acts = 4096, 6
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	d := NewDense(acts, rng.New(9))
	for s := 0; s < states; s++ {
		d.Touch(StateKey(s))
	}
	// Collect the append-growth garbage so only live structures count.
	runtime.GC()
	runtime.ReadMemStats(&after)
	measured := int(after.HeapAlloc - before.HeapAlloc)

	got := d.MemoryBytes()
	if got < measured/2 || got > measured*2 {
		t.Errorf("MemoryBytes = %d, measured heap growth = %d; accounting drifted beyond 2x", got, measured)
	}
	// And the dense form must undercut the legacy map accounting for
	// the same content — the point of the representation change.
	legacy := NewTable(actions6(), rng.New(9))
	for s := 0; s < states; s++ {
		legacy.Touch(State(rune('a'+s%26)) + State(rune('a'+(s/26)%26)) + State(rune('a'+s/676)))
	}
	if got >= legacy.MemoryBytes() {
		t.Errorf("dense MemoryBytes %d not below legacy %d", got, legacy.MemoryBytes())
	}
}

func actions6() []Action {
	return []Action{"CPU@0", "CPU@1", "CPU@2", "GPU@0", "GPU@1", "GPU@2"}
}

// TestDenseAgentMatchesAgent verifies the two agent flavours stay
// draw-for-draw aligned: same parent stream, same exploration and
// random-action sequences.
func TestDenseAgentMatchesAgent(t *testing.T) {
	acts := actions()
	s1, s2 := rng.New(77), rng.New(77)
	legacy := NewAgent(acts, s1)
	dense := NewDenseAgent(len(acts), s2)
	for i := 0; i < 500; i++ {
		if legacy.Explore() != dense.Explore() {
			t.Fatalf("explore draw %d diverged", i)
		}
		la := legacy.RandomAction()
		da := dense.RandomAction()
		if string(la) != string(acts[da]) {
			t.Fatalf("random action draw %d diverged: %s vs %s", i, la, acts[da])
		}
	}
}

func TestNewDensePanicsWithoutActions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDense with no actions should panic")
		}
	}()
	NewDense(0, rng.New(1))
}

func TestDenseUpdateAtMatchesUpdate(t *testing.T) {
	a := NewDense(3, rng.New(55))
	b := NewDense(3, rng.New(55))
	a.Touch(1)
	a.Touch(2)
	rb1, rb2 := b.Touch(1), b.Touch(2)
	a.Update(1, 2, 0.8, 2, 0, 0.9, 0.1)
	b.UpdateAt(rb1, 2, 0.8, rb2, 0, 0.9, 0.1)
	for s := StateKey(1); s <= 2; s++ {
		for act := 0; act < 3; act++ {
			if a.Q(s, act) != b.Q(s, act) {
				t.Fatalf("UpdateAt diverged from Update at (%d,%d)", s, act)
			}
		}
	}
}
