package qlearn

import (
	"testing"

	"autofl/internal/rng"
)

func TestInitPriorSeedsFreshRows(t *testing.T) {
	tb := NewTable([]Action{"a", "b"}, rng.New(1))
	prior := 5.0
	tb.Init = func() float64 { return prior }
	tb.Touch("fresh")
	v := tb.Q("fresh", "a")
	if v < 5 || v >= 5.001 {
		t.Errorf("fresh row value = %v, want prior 5 plus tiny jitter", v)
	}
	// Changing the prior affects only rows created afterwards.
	prior = -3
	if got := tb.Q("fresh", "a"); got != v {
		t.Error("existing rows must not move when the prior changes")
	}
	tb.Touch("fresh2")
	v2 := tb.Q("fresh2", "b")
	if v2 > -2.99 || v2 < -3 {
		t.Errorf("second fresh row = %v, want prior -3 plus jitter", v2)
	}
}

func TestInitPriorPreservesOrdering(t *testing.T) {
	// Two tables with different priors: their unvisited states must
	// rank in prior order — the mechanism AutoFL uses to generalize
	// device-constant knowledge across runtime-variance states.
	s := rng.New(2)
	good := NewTable([]Action{"a"}, s.Fork())
	bad := NewTable([]Action{"a"}, s.Fork())
	good.Init = func() float64 { return 1.0 }
	bad.Init = func() float64 { return 0.1 }
	for _, state := range []State{"s1", "s2", "s3"} {
		if good.BestValue(state) <= bad.BestValue(state) {
			t.Errorf("state %s: good prior %v not above bad prior %v",
				state, good.BestValue(state), bad.BestValue(state))
		}
	}
}

func TestNoInitDefaultsToSmallRandom(t *testing.T) {
	tb := NewTable([]Action{"a"}, rng.New(3))
	tb.Touch("s")
	if v := tb.Q("s", "a"); v <= 0 || v >= 1e-3 {
		t.Errorf("default init = %v, want (0, 1e-3)", v)
	}
}
