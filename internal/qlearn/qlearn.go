// Package qlearn implements the tabular Q-learning machinery behind
// AutoFL (§4.2, Algorithm 1): lookup-table value functions keyed by
// (state, action), epsilon-greedy exploration, and the SARSA-style
// update rule
//
//	Q(S,A) ← Q(S,A) + γ [ R + µ·Q(S',A') − Q(S,A) ]
//
// where γ is the learning rate and µ the discount factor (the paper's
// notation; note γ is *not* the discount here). The paper selects
// γ = 0.9 and µ = 0.1 by sensitivity analysis (§5.3); those are the
// defaults.
package qlearn

import (
	"fmt"
	"sort"

	"autofl/internal/rng"
)

// Default hyperparameters from the paper's sensitivity study (§5.3)
// and epsilon from footnote 6.
const (
	DefaultLearningRate = 0.9
	DefaultDiscount     = 0.1
	DefaultEpsilon      = 0.1
)

// State is a discrete state key. AutoFL builds it from the Table 1
// features; this package only requires comparability.
type State string

// Action is a discrete action key.
type Action string

// Table is one Q-table: accumulated rewards per (state, action) pair.
// Rows are initialized lazily with small random values, matching
// Algorithm 1's "initialize Q with random values" without allocating
// the full (huge) cross product up front. Rows are created only by the
// write path (Touch, Set, Update); reads (Q, Best, BestValue) are
// side-effect free and report the Init prior for never-visited states.
//
// Table keys states by string and is kept for debugging,
// serialization, and tests; the controller hot path uses the packed
// Dense table instead.
type Table struct {
	q       map[State]map[Action]float64
	actions []Action // caller-supplied order (the action index space)
	ordered []Action // sorted by name, for deterministic argmax
	initRng *rng.Stream

	// Init, when set, supplies the base value for lazily-created
	// entries (a small random jitter is still added on top for
	// tie-breaking). AutoFL uses it to seed fresh state rows with a
	// per-device value prior, so that device-constant knowledge (for
	// example, its data quality) generalizes to runtime-variance
	// states the device has not been observed in yet.
	Init func() float64
}

// NewTable creates a Q-table over a fixed action set. The rng stream
// drives random initialization of lazily-created entries.
func NewTable(actions []Action, s *rng.Stream) *Table {
	if len(actions) == 0 {
		panic("qlearn: NewTable requires at least one action")
	}
	cp := append([]Action(nil), actions...)
	ordered := append([]Action(nil), actions...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	return &Table{
		q:       make(map[State]map[Action]float64),
		actions: cp,
		ordered: ordered,
		initRng: s,
	}
}

// Actions returns the table's action set (shared slice; callers must
// not mutate).
func (t *Table) Actions() []Action { return t.actions }

// base returns the prior value for entries of not-yet-created rows.
func (t *Table) base() float64 {
	if t.Init != nil {
		return t.Init()
	}
	return 0
}

// row returns (creating if needed) the action-value row for a state.
// Only the write path calls it: row creation draws from initRng, and
// letting reads do that made results depend on read order.
func (t *Table) row(s State) map[Action]float64 {
	r, ok := t.q[s]
	if !ok {
		base := t.base()
		r = make(map[Action]float64, len(t.actions))
		for _, a := range t.actions {
			// Small random init breaks ties during early exploration.
			r[a] = base + t.initRng.Float64()*1e-3
		}
		t.q[s] = r
	}
	return r
}

// Touch materializes the row for s, drawing its random initialization
// now. Decision paths call it to pin exactly when a state's init
// values are drawn; subsequent reads are then stable.
func (t *Table) Touch(s State) { t.row(s) }

// Q returns the current value estimate for (s, a). It is side-effect
// free: reading a never-visited state reports the Init prior (with no
// jitter) and neither creates the row nor advances the init stream.
func (t *Table) Q(s State, a Action) float64 {
	if r, ok := t.q[s]; ok {
		return r[a]
	}
	return t.base()
}

// Set overwrites the value for (s, a); primarily for tests and
// deserialization. Creates the row if absent.
func (t *Table) Set(s State, a Action, v float64) { t.row(s)[a] = v }

// Best returns the action with the highest value in state s, and that
// value. Ties break deterministically by action name so runs are
// reproducible. Like Q, it is a pure read: a never-visited state
// reports the name-first action at the Init prior.
func (t *Table) Best(s State) (Action, float64) {
	r, ok := t.q[s]
	if !ok {
		return t.ordered[0], t.base()
	}
	best, bestV := Action(""), 0.0
	first := true
	for _, a := range t.ordered {
		if v, seen := r[a]; seen && (first || v > bestV) {
			best, bestV, first = a, v, false
		}
	}
	return best, bestV
}

// BestValue returns max_a Q(s, a) — the device-ranking score Algorithm
// 1 sorts by.
func (t *Table) BestValue(s State) float64 {
	_, v := t.Best(s)
	return v
}

// Update applies the Algorithm 1 value update for the transition
// (s, a) → (s', a') with reward r. As a write, it creates the row for
// s; the (s', a') operand is a pure read.
func (t *Table) Update(s State, a Action, reward float64, sNext State, aNext Action, learningRate, discount float64) {
	r := t.row(s)
	cur := r[a]
	target := reward + discount*t.Q(sNext, aNext)
	r[a] = cur + learningRate*(target-cur)
}

// States returns the number of distinct states the table has touched.
func (t *Table) States() int { return len(t.q) }

// MemoryBytes estimates the table's resident size: useful for the
// §6.4 footprint analysis (the paper reports 80 MB for 200 per-device
// tables).
func (t *Table) MemoryBytes() int {
	// Rough accounting: each entry stores a float64 plus map overhead
	// (~48 bytes per entry including keys), each state row ~64 bytes.
	entries := 0
	for _, r := range t.q {
		entries += len(r)
	}
	return entries*48 + len(t.q)*64
}

// Agent couples a Q-table with the epsilon-greedy policy and the
// paper's hyperparameters.
type Agent struct {
	Table *Table
	// LearningRate is γ in the paper's Algorithm 1.
	LearningRate float64
	// Discount is µ.
	Discount float64
	// Epsilon is the exploration probability.
	Epsilon float64

	explore *rng.Stream
}

// NewAgent builds an agent with the paper's default hyperparameters.
func NewAgent(actions []Action, s *rng.Stream) *Agent {
	return &Agent{
		Table:        NewTable(actions, s.Fork()),
		LearningRate: DefaultLearningRate,
		Discount:     DefaultDiscount,
		Epsilon:      DefaultEpsilon,
		explore:      s.Fork(),
	}
}

// Explore reports whether this decision should be exploratory (a
// uniform-random draw below epsilon), per Algorithm 1.
func (a *Agent) Explore() bool { return a.explore.Bool(a.Epsilon) }

// RandomAction returns a uniformly random action, used on exploration
// steps.
func (a *Agent) RandomAction() Action {
	acts := a.Table.Actions()
	return acts[a.explore.IntN(len(acts))]
}

// ChooseGreedy returns the best-known action for s.
func (a *Agent) ChooseGreedy(s State) Action {
	act, _ := a.Table.Best(s)
	return act
}

// Choose picks an action with epsilon-greedy exploration.
func (a *Agent) Choose(s State) Action {
	if a.Explore() {
		return a.RandomAction()
	}
	return a.ChooseGreedy(s)
}

// Learn applies the update rule with the agent's hyperparameters.
func (a *Agent) Learn(s State, act Action, reward float64, sNext State, aNext Action) {
	a.Table.Update(s, act, reward, sNext, aNext, a.LearningRate, a.Discount)
}

// JoinState builds a composite state key from parts. It exists so the
// caller never has to worry about separator collisions.
func JoinState(parts ...string) State {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "|"
		}
		out += p
	}
	return State(out)
}

// FormatAction builds an action key from a target name and a discrete
// level.
func FormatAction(target string, level int) Action {
	return Action(fmt.Sprintf("%s@%d", target, level))
}
