package qlearn

import (
	"math"
	"testing"
	"testing/quick"

	"autofl/internal/rng"
)

func actions() []Action { return []Action{"cpu@0", "cpu@1", "gpu@0"} }

func TestLazyInitSmallRandom(t *testing.T) {
	tb := NewTable(actions(), rng.New(1))
	tb.Touch("s0")
	v := tb.Q("s0", "cpu@0")
	if v <= 0 || v >= 1e-3 {
		t.Errorf("initial Q = %v, want small random in (0, 1e-3)", v)
	}
	if tb.Q("s0", "cpu@0") != v {
		t.Error("repeated reads must return the same initialized value")
	}
}

func TestReadsAreSideEffectFree(t *testing.T) {
	// Q/Best/BestValue on never-visited states must not create rows or
	// advance the init stream: two identically seeded tables must draw
	// identical init values for a state regardless of how many unseen
	// states were read in between (the old create-on-read behavior made
	// results depend on read order).
	a := NewTable(actions(), rng.New(21))
	b := NewTable(actions(), rng.New(21))
	for i := 0; i < 50; i++ {
		_ = a.Q(State(JoinState("unseen", string(rune('a'+i)))), "cpu@0")
		_, _ = a.Best("another-unseen")
		_ = a.BestValue("yet-another")
	}
	if a.States() != 0 {
		t.Fatalf("pure reads created %d states", a.States())
	}
	a.Touch("s")
	b.Touch("s")
	for _, act := range actions() {
		if a.Q("s", act) != b.Q("s", act) {
			t.Fatalf("reads advanced the init stream: %v vs %v", a.Q("s", act), b.Q("s", act))
		}
	}
}

func TestUnseenStateReadsReportPrior(t *testing.T) {
	tb := NewTable(actions(), rng.New(22))
	tb.Init = func() float64 { return 2.5 }
	if got := tb.Q("unseen", "cpu@1"); got != 2.5 {
		t.Errorf("unseen Q = %v, want Init prior 2.5", got)
	}
	a, v := tb.Best("unseen")
	if a != "cpu@0" || v != 2.5 {
		t.Errorf("unseen Best = (%s, %v), want name-first action at the prior", a, v)
	}
}

func TestBestPrefersHighest(t *testing.T) {
	tb := NewTable(actions(), rng.New(2))
	tb.Set("s", "cpu@0", 1)
	tb.Set("s", "cpu@1", 5)
	tb.Set("s", "gpu@0", 3)
	a, v := tb.Best("s")
	if a != "cpu@1" || v != 5 {
		t.Errorf("Best = (%s, %v), want (cpu@1, 5)", a, v)
	}
	if tb.BestValue("s") != 5 {
		t.Error("BestValue mismatch")
	}
}

func TestBestTieBreaksDeterministically(t *testing.T) {
	tb := NewTable(actions(), rng.New(3))
	tb.Set("s", "cpu@0", 2)
	tb.Set("s", "cpu@1", 2)
	tb.Set("s", "gpu@0", 2)
	a1, _ := tb.Best("s")
	a2, _ := tb.Best("s")
	if a1 != a2 {
		t.Error("tie-breaking must be deterministic")
	}
	if a1 != "cpu@0" {
		t.Errorf("tie should break to lexicographically first action, got %s", a1)
	}
}

func TestUpdateMovesTowardTarget(t *testing.T) {
	tb := NewTable(actions(), rng.New(4))
	tb.Set("s", "cpu@0", 0)
	tb.Set("s2", "cpu@1", 10)
	tb.Update("s", "cpu@0", 5, "s2", "cpu@1", 0.5, 0.1)
	// target = 5 + 0.1*10 = 6; new Q = 0 + 0.5*(6-0) = 3.
	if got := tb.Q("s", "cpu@0"); math.Abs(got-3) > 1e-12 {
		t.Errorf("Q after update = %v, want 3", got)
	}
}

func TestUpdateConvergesToConstantReward(t *testing.T) {
	tb := NewTable(actions(), rng.New(5))
	// Repeatedly receiving reward 4 in an absorbing state with
	// discount 0 should drive Q to 4.
	for i := 0; i < 200; i++ {
		tb.Update("s", "cpu@0", 4, "s", "cpu@0", 0.9, 0)
	}
	if got := tb.Q("s", "cpu@0"); math.Abs(got-4) > 1e-6 {
		t.Errorf("Q = %v, want 4", got)
	}
}

func TestAgentLearnsBandit(t *testing.T) {
	// Three-armed bandit: gpu@0 pays 10, others pay 1. The agent must
	// identify the best arm.
	s := rng.New(6)
	ag := NewAgent(actions(), s)
	payout := map[Action]float64{"cpu@0": 1, "cpu@1": 1, "gpu@0": 10}
	const state = State("bandit")
	for i := 0; i < 500; i++ {
		a := ag.Choose(state)
		ag.Learn(state, a, payout[a], state, ag.ChooseGreedy(state))
	}
	if got := ag.ChooseGreedy(state); got != "gpu@0" {
		t.Errorf("greedy action after training = %s, want gpu@0", got)
	}
}

func TestAgentAdaptsToChange(t *testing.T) {
	// The high learning rate the paper selects (γ = 0.9) exists to
	// adapt quickly when the environment shifts; verify the agent
	// re-learns after the best arm changes.
	s := rng.New(7)
	ag := NewAgent(actions(), s)
	const state = State("shift")
	pay := map[Action]float64{"cpu@0": 10, "cpu@1": 1, "gpu@0": 1}
	for i := 0; i < 300; i++ {
		a := ag.Choose(state)
		ag.Learn(state, a, pay[a], state, ag.ChooseGreedy(state))
	}
	if got := ag.ChooseGreedy(state); got != "cpu@0" {
		t.Fatalf("phase 1 best = %s, want cpu@0", got)
	}
	pay = map[Action]float64{"cpu@0": 1, "cpu@1": 1, "gpu@0": 10}
	for i := 0; i < 300; i++ {
		a := ag.Choose(state)
		ag.Learn(state, a, pay[a], state, ag.ChooseGreedy(state))
	}
	if got := ag.ChooseGreedy(state); got != "gpu@0" {
		t.Errorf("agent failed to adapt; greedy = %s, want gpu@0", got)
	}
}

func TestExplorationRate(t *testing.T) {
	s := rng.New(8)
	ag := NewAgent(actions(), s)
	ag.Epsilon = 0.25
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if ag.Explore() {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("exploration rate = %.3f, want ~0.25", rate)
	}
}

func TestEpsilonZeroNeverExplores(t *testing.T) {
	s := rng.New(9)
	ag := NewAgent(actions(), s)
	ag.Epsilon = 0
	for i := 0; i < 1000; i++ {
		if ag.Explore() {
			t.Fatal("epsilon=0 agent explored")
		}
	}
}

func TestDefaults(t *testing.T) {
	ag := NewAgent(actions(), rng.New(10))
	if ag.LearningRate != 0.9 || ag.Discount != 0.1 || ag.Epsilon != 0.1 {
		t.Errorf("defaults = (%v, %v, %v), want paper's (0.9, 0.1, 0.1)",
			ag.LearningRate, ag.Discount, ag.Epsilon)
	}
}

func TestStatesAndMemoryAccounting(t *testing.T) {
	tb := NewTable(actions(), rng.New(11))
	if tb.States() != 0 {
		t.Error("fresh table should have no states")
	}
	tb.Touch("a")
	tb.Touch("b")
	if tb.States() != 2 {
		t.Errorf("States = %d, want 2", tb.States())
	}
	if tb.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive for a non-empty table")
	}
	grown := tb.MemoryBytes()
	tb.Touch("c")
	if tb.MemoryBytes() <= grown {
		t.Error("MemoryBytes should grow with states")
	}
}

func TestJoinStateAndFormatAction(t *testing.T) {
	if JoinState("a", "b", "c") != "a|b|c" {
		t.Errorf("JoinState = %q", JoinState("a", "b", "c"))
	}
	if JoinState() != "" {
		t.Error("empty JoinState should be empty")
	}
	if FormatAction("CPU", 2) != "CPU@2" {
		t.Errorf("FormatAction = %q", FormatAction("CPU", 2))
	}
}

func TestNewTablePanicsWithoutActions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTable with no actions should panic")
		}
	}()
	NewTable(nil, rng.New(1))
}

func TestRandomActionCoversActionSet(t *testing.T) {
	s := rng.New(12)
	ag := NewAgent(actions(), s)
	seen := map[Action]bool{}
	for i := 0; i < 300; i++ {
		seen[ag.RandomAction()] = true
	}
	if len(seen) != len(actions()) {
		t.Errorf("random actions covered %d/%d arms", len(seen), len(actions()))
	}
}

// Property: the update rule is a contraction toward the target — the
// post-update value always lies between the old value and the target
// for learning rates in (0, 1].
func TestUpdateContractionProperty(t *testing.T) {
	tb := NewTable(actions(), rng.New(13))
	f := func(q0Raw, rewardRaw int8, lrRaw uint8) bool {
		q0 := float64(q0Raw)
		reward := float64(rewardRaw)
		lr := (float64(lrRaw%100) + 1) / 100
		tb.Set("p", "cpu@0", q0)
		tb.Set("pn", "cpu@0", 0)
		tb.Update("p", "cpu@0", reward, "pn", "cpu@0", lr, 0)
		got := tb.Q("p", "cpu@0")
		lo, hi := math.Min(q0, reward), math.Max(q0, reward)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
