// Package rng provides the deterministic random-number streams used by
// every stochastic component of the AutoFL simulator.
//
// All randomness in the repository flows through a *Stream seeded from a
// single experiment seed, so that any run — a full figure reproduction,
// a unit test, a property test — is reproducible bit-for-bit. Streams
// may be forked (see Fork) to give independent subsystems their own
// sequence without coupling their draw counts.
package rng

import (
	"math"
	"math/rand/v2"
)

// Stream is a deterministic source of random variates. It wraps a PCG
// generator from math/rand/v2 and layers on the distributions the
// simulator needs (Gaussian, Gamma, Dirichlet, categorical).
type Stream struct {
	r *rand.Rand
}

// New returns a Stream seeded with the given seed. Two Streams created
// with the same seed produce identical sequences.
func New(seed uint64) *Stream {
	return &Stream{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent child stream. The child's sequence is a
// pure function of the parent's state at the time of the call, so
// forking at the same point in two identical runs yields identical
// children.
func (s *Stream) Fork() *Stream {
	return &Stream{r: rand.New(rand.NewPCG(s.r.Uint64(), s.r.Uint64()))}
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Stream) Uint64() uint64 { return s.r.Uint64() }

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Normal returns a Gaussian variate with the given mean and standard
// deviation. A non-positive sigma returns the mean.
func (s *Stream) Normal(mean, sigma float64) float64 {
	if sigma <= 0 {
		return mean
	}
	return mean + sigma*s.r.NormFloat64()
}

// ClampedNormal returns a Gaussian variate truncated (by clamping) to
// [lo, hi]. It is used for physical quantities such as bandwidth that
// are Gaussian in the field but cannot be negative.
func (s *Stream) ClampedNormal(mean, sigma, lo, hi float64) float64 {
	v := s.Normal(mean, sigma)
	return math.Min(hi, math.Max(lo, v))
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia–Tsang
// squeeze method, with the standard boost for shape < 1.
func (s *Stream) Gamma(shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a).
		u := s.r.Float64()
		for u == 0 {
			u = s.r.Float64()
		}
		return s.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := s.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet returns a draw from a symmetric Dirichlet distribution with
// n components and concentration alpha. Smaller alpha concentrates the
// mass in fewer components — the paper uses alpha = 0.1 to model
// strongly non-IID class distributions.
func (s *Stream) Dirichlet(alpha float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	p := make([]float64, n)
	sum := 0.0
	for i := range p {
		g := s.Gamma(alpha)
		p[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw: put all mass on one random component.
		p[s.IntN(n)] = 1
		return p
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// Categorical returns an index drawn with probability proportional to
// weights[i]. Non-positive weights are treated as zero. If all weights
// are zero the draw is uniform.
func (s *Stream) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.IntN(len(weights))
	}
	x := s.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// PermInto fills p with a random permutation of [0, len(p)) without
// allocating. It consumes exactly the same variates as Perm(len(p)),
// so the two are interchangeable in reproducibility-sensitive code.
func (s *Stream) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	// Mirror of math/rand/v2's Shuffle (which Perm delegates to): one
	// IntN(i+1) draw per position, descending.
	for i := len(p) - 1; i > 0; i-- {
		j := s.r.IntN(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle randomizes the order of n elements using the provided swap
// function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Sample returns k distinct indices drawn uniformly from [0, n). If
// k >= n all indices are returned (in random order).
func (s *Stream) Sample(n, k int) []int {
	perm := s.r.Perm(n)
	if k > n {
		k = n
	}
	return perm[:k]
}
