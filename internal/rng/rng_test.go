package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestForkDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	fa, fb := a.Fork(), b.Fork()
	for i := 0; i < 100; i++ {
		if fa.Float64() != fb.Float64() {
			t.Fatalf("forked streams diverged at draw %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(7)
	f := a.Fork()
	// Drawing from the parent must not affect the child's sequence
	// relative to an identical run that does not touch the parent.
	b := New(7)
	g := b.Fork()
	_ = b.Float64() // extra parent draw after forking
	for i := 0; i < 50; i++ {
		if f.Float64() != g.Float64() {
			t.Fatalf("child stream affected by parent draws at %d", i)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(3)
	const n = 200000
	mean, m2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		mean += v
		m2 += v * v
	}
	mean /= n
	variance := m2/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal mean = %.4f, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %.4f, want ~4", variance)
	}
}

func TestNormalZeroSigma(t *testing.T) {
	s := New(3)
	if got := s.Normal(1.5, 0); got != 1.5 {
		t.Errorf("Normal(1.5, 0) = %v, want 1.5", got)
	}
	if got := s.Normal(1.5, -1); got != 1.5 {
		t.Errorf("Normal(1.5, -1) = %v, want 1.5", got)
	}
}

func TestClampedNormalBounds(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.ClampedNormal(50, 40, 10, 90)
		if v < 10 || v > 90 {
			t.Fatalf("ClampedNormal out of bounds: %v", v)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	s := New(11)
	for _, shape := range []float64{0.1, 0.5, 1, 2.5, 9} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += s.Gamma(shape)
		}
		mean := sum / n
		// Gamma(shape, 1) has mean = shape.
		if math.Abs(mean-shape)/shape > 0.05 {
			t.Errorf("Gamma(%v) mean = %.4f, want ~%v", shape, mean, shape)
		}
	}
}

func TestGammaNonPositiveShape(t *testing.T) {
	s := New(11)
	if got := s.Gamma(0); got != 0 {
		t.Errorf("Gamma(0) = %v, want 0", got)
	}
	if got := s.Gamma(-1); got != 0 {
		t.Errorf("Gamma(-1) = %v, want 0", got)
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	s := New(13)
	for i := 0; i < 100; i++ {
		p := s.Dirichlet(0.1, 10)
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				t.Fatalf("negative Dirichlet component %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sum = %v, want 1", sum)
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	s := New(17)
	// With alpha = 0.1 most draws concentrate mass in very few
	// components; with alpha = 100 the mass is near-uniform. Compare
	// the average maximum component.
	avgMax := func(alpha float64) float64 {
		total := 0.0
		for i := 0; i < 500; i++ {
			p := s.Dirichlet(alpha, 10)
			mx := 0.0
			for _, v := range p {
				mx = math.Max(mx, v)
			}
			total += mx
		}
		return total / 500
	}
	sparse, dense := avgMax(0.1), avgMax(100)
	if sparse < 2*dense {
		t.Errorf("alpha=0.1 max component %.3f not clearly larger than alpha=100 %.3f", sparse, dense)
	}
}

func TestDirichletEdgeCases(t *testing.T) {
	s := New(19)
	if got := s.Dirichlet(0.1, 0); got != nil {
		t.Errorf("Dirichlet with n=0 = %v, want nil", got)
	}
	p := s.Dirichlet(0.1, 1)
	if len(p) != 1 || math.Abs(p[0]-1) > 1e-9 {
		t.Errorf("Dirichlet with n=1 = %v, want [1]", p)
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	s := New(23)
	counts := make([]int, 3)
	weights := []float64{1, 0, 3}
	for i := 0; i < 40000; i++ {
		counts[s.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight component drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight-3 / weight-1 ratio = %.3f, want ~3", ratio)
	}
}

func TestCategoricalAllZeroWeightsUniform(t *testing.T) {
	s := New(29)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[s.Categorical([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("component %d drawn %d/4000 times, want ~1000", i, c)
		}
	}
}

func TestSample(t *testing.T) {
	s := New(31)
	got := s.Sample(10, 4)
	if len(got) != 4 {
		t.Fatalf("Sample(10,4) returned %d items", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("sample value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample value %d", v)
		}
		seen[v] = true
	}
	if len(s.Sample(3, 10)) != 3 {
		t.Error("Sample with k > n should return n items")
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(37)
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	if hits < 2200 || hits > 2800 {
		t.Errorf("Bool(0.25) hit %d/10000 times", hits)
	}
}

// Property: Dirichlet draws always form a probability vector regardless
// of concentration and dimension.
func TestDirichletProperty(t *testing.T) {
	s := New(41)
	f := func(alphaRaw uint8, nRaw uint8) bool {
		alpha := 0.05 + float64(alphaRaw)/32.0
		n := 1 + int(nRaw)%32
		p := s.Dirichlet(alpha, n)
		if len(p) != n {
			return false
		}
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Categorical never returns an out-of-range index and never
// selects a strictly-zero-weight component when positive weights exist.
func TestCategoricalProperty(t *testing.T) {
	s := New(43)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		anyPositive := false
		for i, r := range raw {
			weights[i] = float64(r % 8)
			if weights[i] > 0 {
				anyPositive = true
			}
		}
		idx := s.Categorical(weights)
		if idx < 0 || idx >= len(weights) {
			return false
		}
		if anyPositive && weights[idx] == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	// PermInto must consume exactly the same variates as Perm, so code
	// switching between them for allocation reasons cannot perturb
	// reproducibility-sensitive draw sequences.
	for _, n := range []int{0, 1, 2, 5, 40, 200} {
		a, b := New(uint64(n)+101), New(uint64(n)+101)
		want := a.Perm(n)
		buf := make([]int, n)
		b.PermInto(buf)
		for i := range want {
			if want[i] != buf[i] {
				t.Fatalf("n=%d: PermInto diverged from Perm at %d: %v vs %v", n, i, buf, want)
			}
		}
		// And the streams must be in identical states afterwards.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: stream states diverged after Perm vs PermInto", n)
		}
	}
}

func TestPermIntoAllocFree(t *testing.T) {
	s := New(77)
	buf := make([]int, 64)
	if avg := testing.AllocsPerRun(100, func() { s.PermInto(buf) }); avg != 0 {
		t.Errorf("PermInto allocated %.1f times per run, want 0", avg)
	}
}
