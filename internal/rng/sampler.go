package rng

import "math/rand/v2"

// splitMix64 is the SplitMix64 finalizer: a cheap, well-mixed bijection
// on 64-bit words. It is the standard seed-spreading hash (Steele et
// al., OOPSLA 2014) and the basis of Mix.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mix hashes three words into one well-spread 64-bit seed. The
// population engine uses it to derive per-item streams — for example
// Mix(envSeed, round, deviceIndex) — so that each (round, device)
// pair's draws are a pure function of identity, independent of which
// shard or goroutine evaluates them.
func Mix(a, b, c uint64) uint64 {
	h := splitMix64(a)
	h = splitMix64(h ^ b)
	h = splitMix64(h ^ c)
	return h
}

// Reseedable is a Stream whose generator can be re-seeded in place,
// with no per-seed allocation. One Reseedable per shard lets a
// parallel loop give every item its own deterministic sequence —
// Seed(Mix(base, round, item)) — while the engine's steady state
// allocates nothing.
type Reseedable struct {
	pcg rand.PCG
	s   Stream
}

// NewReseedable returns an unseeded reseedable stream. Call Seed
// before drawing.
func NewReseedable() *Reseedable {
	r := &Reseedable{}
	r.s = Stream{r: rand.New(&r.pcg)}
	return r
}

// Seed resets the generator and returns the stream. Seed(x) yields the
// exact sequence New(x) would, so keyed streams and forked streams are
// interchangeable in tests.
func (r *Reseedable) Seed(seed uint64) *Stream {
	r.pcg.Seed(seed, seed^0x9e3779b97f4a7c15)
	return &r.s
}

// Sampler draws k distinct indices from [0, n) in O(k) per draw
// without materializing permutations — the population engine's
// replacement for Sample, whose Perm(n) allocation and O(n) shuffle
// are a wall at n = 10⁶ devices per round.
//
// It keeps one persistent index array and runs a partial Fisher–Yates
// shuffle over the first k positions, then undoes the swaps so the
// array is ready for the next draw. The marginal distribution is
// identical to taking the first k elements of a full Fisher–Yates
// permutation. A Sampler is not safe for concurrent use.
type Sampler struct {
	idx  []int32 // identity permutation between draws
	swap []int32 // the j of each swap, for the undo pass
}

// NewSampler returns a sampler over [0, n). Resident state is 4 bytes
// per element.
func NewSampler(n int) *Sampler {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return &Sampler{idx: idx}
}

// Len returns the population size n.
func (sp *Sampler) Len() int { return len(sp.idx) }

// SampleInto fills out with len(out) distinct indices drawn uniformly
// from [0, n), using draws from s. It panics if len(out) > n.
func (sp *Sampler) SampleInto(s *Stream, out []int32) {
	k, n := len(out), len(sp.idx)
	if k > n {
		panic("rng: SampleInto with k > n")
	}
	if cap(sp.swap) < k {
		sp.swap = make([]int32, k)
	}
	swap := sp.swap[:k]
	for i := 0; i < k; i++ {
		j := i + s.IntN(n-i)
		swap[i] = int32(j)
		sp.idx[i], sp.idx[j] = sp.idx[j], sp.idx[i]
		out[i] = sp.idx[i]
	}
	// Undo in reverse order: the array is the identity again, so the
	// next draw is position-independent.
	for i := k - 1; i >= 0; i-- {
		j := swap[i]
		sp.idx[i], sp.idx[j] = sp.idx[j], sp.idx[i]
	}
}
