package rng

import "testing"

func TestMixSpreadsEveryArgument(t *testing.T) {
	base := Mix(1, 2, 3)
	if Mix(1, 2, 3) != base {
		t.Fatal("Mix is not deterministic")
	}
	for _, other := range []uint64{Mix(2, 2, 3), Mix(1, 3, 3), Mix(1, 2, 4), Mix(0, 0, 0)} {
		if other == base {
			t.Fatalf("Mix collision with base %#x", base)
		}
	}
	// Adjacent keys — the (round, device) pattern the population engine
	// feeds it — must not produce adjacent seeds.
	if Mix(7, 1, 100)^Mix(7, 1, 101) < 1<<16 {
		t.Error("adjacent device indices yield near-identical seeds")
	}
}

// TestReseedableMatchesNew pins the interchange contract: Seed(x)
// yields exactly the sequence New(x) would, so keyed per-device
// streams reproduce what a dedicated stream per device would draw.
func TestReseedableMatchesNew(t *testing.T) {
	rs := NewReseedable()
	for _, seed := range []uint64{0, 1, 42, 1 << 60} {
		fresh := New(seed)
		keyed := rs.Seed(seed)
		for i := 0; i < 32; i++ {
			if f, k := fresh.Uint64(), keyed.Uint64(); f != k {
				t.Fatalf("seed %d draw %d: New=%#x Reseedable=%#x", seed, i, f, k)
			}
		}
		// Interleave a float draw to cover the non-integer path too.
		if f, k := fresh.Float64(), keyed.Float64(); f != k {
			t.Fatalf("seed %d: Float64 diverges: %v vs %v", seed, f, k)
		}
	}
}

func TestSamplerDrawsDistinctInRange(t *testing.T) {
	const n, k = 100, 10
	sp := NewSampler(n)
	if sp.Len() != n {
		t.Fatalf("Len = %d, want %d", sp.Len(), n)
	}
	out := make([]int32, k)
	s := New(7)
	for draw := 0; draw < 200; draw++ {
		sp.SampleInto(s, out)
		seen := make(map[int32]bool, k)
		for _, v := range out {
			if v < 0 || v >= n {
				t.Fatalf("draw %d: index %d out of range", draw, v)
			}
			if seen[v] {
				t.Fatalf("draw %d: duplicate index %d", draw, v)
			}
			seen[v] = true
		}
	}
}

// TestSamplerUndoRestoresIdentity pins the undo pass: one Sampler
// drawing twice from identically seeded streams must produce identical
// samples, which only holds if each draw starts from the identity
// array.
func TestSamplerUndoRestoresIdentity(t *testing.T) {
	sp := NewSampler(500)
	a, b := make([]int32, 64), make([]int32, 64)
	rs := NewReseedable()
	sp.SampleInto(rs.Seed(99), a)
	sp.SampleInto(rs.Seed(99), b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("position %d: %d vs %d — identity array not restored between draws", i, a[i], b[i])
		}
	}
}

func TestSamplerFullDrawIsPermutation(t *testing.T) {
	const n = 64
	sp := NewSampler(n)
	out := make([]int32, n)
	sp.SampleInto(New(3), out)
	var seen [n]bool
	for _, v := range out {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("full draw is not a permutation: %d missing", i)
		}
	}
}

// TestSamplerMarginalsRoughlyUniform is a coarse distribution sanity
// check: over many draws every element's inclusion rate concentrates
// around k/n.
func TestSamplerMarginalsRoughlyUniform(t *testing.T) {
	const n, k, draws = 50, 5, 2000
	sp := NewSampler(n)
	out := make([]int32, k)
	s := New(11)
	var hits [n]int
	for d := 0; d < draws; d++ {
		sp.SampleInto(s, out)
		for _, v := range out {
			hits[v]++
		}
	}
	want := float64(draws) * k / n // 200
	for i, h := range hits {
		if f := float64(h); f < want/2 || f > want*1.5 {
			t.Errorf("element %d drawn %d times, want ≈ %.0f", i, h, want)
		}
	}
}

func TestSamplerPanicsOnOversizedDraw(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleInto with k > n did not panic")
		}
	}()
	NewSampler(3).SampleInto(New(1), make([]int32, 4))
}
