package sim

// This file is the asynchronous half of the engine: the ModeAsync and
// ModeSemiAsync aggregation regimes. Where the synchronous path runs a
// barrier — every round waits for its cohort or the straggler deadline
// — the async path dispatches selected devices and lets their
// completions become events on the virtual-time queue (vtime). Each
// Step is one *aggregation*: ModeAsync applies the single next arrival
// (FedAsync-style), ModeSemiAsync waits for a quorum of AggregateK
// arrivals or a deadline (APPFL-style). Nothing is dropped: a device
// that misses a semi-async deadline keeps computing and its update
// rolls into a later model version with higher staleness, discounted
// by 1/(1+s)^α in the convergence model.
//
// Determinism mirrors the population engine's contract: all stochastic
// draws come from the same sequential (legacy) or identity-keyed
// (population) streams the synchronous path uses, and event ordering
// is total via the queue's (time, push-order) comparison — so async
// traces are a pure function of the config, independent of Shards,
// GOMAXPROCS, and distributed execution.

import (
	"math"

	"autofl/internal/interference"
	"autofl/internal/power"
	"autofl/internal/rng"
	"autofl/internal/sim/vtime"
)

// maxTrackedStaleness caps the per-device staleness memory fed back to
// policies (the packed int8 array); the discount weight still uses the
// exact staleness.
const maxTrackedStaleness = 127

// flight is one in-transit model update: a dispatched device whose
// completion event is pending on the queue.
type flight struct {
	used     bool
	dev      int32
	dispatch int32
	target   int8
	step     int16
	compSec  float64
	commSec  float64
	cleanSec float64
}

// asyncState is the engine's asynchronous-aggregation state: the event
// queue, the in-flight update table, and the per-device staleness
// memory.
type asyncState struct {
	q vtime.Queue
	// flights is a slot table of in-flight updates; event payloads are
	// slot indices. Slots are reused scan-first-free, so the table
	// never exceeds the in-flight cap (Params.K).
	flights []flight
	// busy marks devices with an update in flight; they are skipped at
	// dispatch (a device trains one update at a time).
	busy []bool
	// lastStale records each device's most recent applied-update
	// staleness, surfaced to policies via DeviceState.Staleness.
	lastStale []int8
	inFlight  int
	now       float64
	// arrivals is the reused per-round applied-updates buffer.
	arrivals []ArrivalUpdate
	// clean is scratch for deriving the semi-async deadline from the
	// in-flight cohort.
	clean []float64
}

func newAsyncState(n int) *asyncState {
	return &asyncState{
		busy:      make([]bool, n),
		lastStale: make([]int8, n),
	}
}

// alloc places a flight in the first free slot and returns its index.
func (a *asyncState) alloc(f flight) int {
	f.used = true
	for i := range a.flights {
		if !a.flights[i].used {
			a.flights[i] = f
			return i
		}
	}
	a.flights = append(a.flights, f)
	return len(a.flights) - 1
}

// runRoundAsync executes one asynchronous aggregation step: observe,
// dispatch selected idle devices (their completions become events),
// then pop this step's arrivals from the queue and apply them with
// staleness-discounted weights. It serves both the legacy-fleet and
// the sampled-population paths.
func (e *Engine) runRoundAsync(pol Policy, round int, accuracy float64, sc *roundScratch) (*RoundContext, *RoundResult) {
	a := e.async
	p := e.pop

	var ctx *RoundContext
	if p != nil {
		ctx = e.observePop(sc, round, accuracy)
	} else {
		ctx = e.observe(sc, round, accuracy)
	}
	selections := sanitize(sc, ctx, pol.Select(ctx))

	traits := AggregationTraits{}
	if tp, ok := pol.(TraitsPolicy); ok {
		traits = tp.Traits()
	}

	k := len(ctx.Devices)
	res := &sc.res
	devRounds := res.Devices
	if cap(devRounds) < k {
		devRounds = make([]DeviceRound, k)
	}
	devRounds = devRounds[:k]
	*res = RoundResult{
		Round:        round,
		PrevAccuracy: accuracy,
		Devices:      devRounds,
	}
	for v := range res.Devices {
		g := v
		if p != nil {
			g = int(sc.cand[v])
		}
		res.Devices[v] = DeviceRound{Index: g}
	}
	if e.batt != nil {
		res.BatteryAvailable, res.BatteryDepleted, res.BatteryMeanFrac = battViewStats(ctx.Devices)
	}

	// Dispatch: every selected device that is not already training
	// starts now, up to Params.K updates in flight. Its completion is
	// pushed as an event; its energy is charged at dispatch (the whole
	// busy window belongs to this model version's work).
	dispatched := 0
	for _, sel := range selections {
		dr := &res.Devices[sel.Index]
		g := dr.Index
		if a.busy[g] || a.inFlight >= ctx.Params.K {
			continue
		}
		var actual interference.Load
		if p != nil {
			st := p.actRng.Seed(rng.Mix(p.actSeed, uint64(round), uint64(g)))
			actual = e.cfg.Env.Interference.Actual(st, ctx.Devices[sel.Index].Load)
		} else {
			actual = e.cfg.Env.Interference.Actual(e.envRng, ctx.Devices[sel.Index].Load)
		}
		comp, comm := ctx.estimateWithLoad(sel.Index, sel.Target, sel.Step, actual)
		cleanComp, cleanComm := ctx.CleanCompletionTime(sel.Index)
		dr.Selected = true
		dr.Target = sel.Target
		dr.Step = sel.Step
		dr.CompSec, dr.CommSec = comp, comm
		// The update always reaches the server eventually — async
		// regimes drop nothing — so learning policies see a kept
		// (possibly stale) contribution, not a straggler punishment.
		dr.UpdateFraction = 1

		spec := ctx.Devices[sel.Index].Device.Spec
		busySec := comp + comm
		activeJ := power.ParticipantRoundEnergy(spec, sel.Target, sel.Step, ctx.Devices[sel.Index].Signal, power.Phases{
			SetupSec:  spec.SetupSec,
			CrunchSec: comp - spec.SetupSec,
			CommSec:   comm,
			RoundSec:  busySec,
		})
		dr.EnergyJ = activeJ
		res.EnergyParticipantsJ += activeJ
		// Fleet energy counts the whole population idle for the round
		// (added once roundSec is known) plus each dispatched device's
		// energy above its own idle draw over its busy window.
		res.EnergyTotalJ += activeJ - spec.IdleWatts()*busySec

		slot := a.alloc(flight{
			dev:      int32(g),
			dispatch: int32(round),
			target:   int8(sel.Target),
			step:     int16(sel.Step),
			compSec:  comp,
			commSec:  comm,
			cleanSec: cleanComp + cleanComm,
		})
		a.q.Push(a.now+busySec, int64(slot))
		a.busy[g] = true
		a.inFlight++
		dispatched++

		if p != nil {
			p.extraJ[g] += activeJ - spec.IdleWatts()*busySec
			p.lastStep[g] = int8(sel.Step)
			p.lastTarget[g] = int8(sel.Target)
		}
		if e.batt != nil {
			// The whole busy window's extra draw is charged at dispatch,
			// mirroring the energy accounting above; the idle share
			// arrives lazily via the next settle.
			e.batt.model.Drain(g, activeJ-spec.IdleWatts()*busySec)
			e.batt.participate(g)
		}
	}
	res.Participants = dispatched

	// Aggregate: pop this step's arrivals from the queue.
	arrivals := a.arrivals[:0]
	roundSec := 0.0
	switch e.cfg.Mode {
	case ModeAsync:
		// One aggregation per arrival: virtual time jumps to the next
		// completion.
		res.Deadline = math.Inf(1)
		if ev, ok := a.q.Pop(); ok {
			roundSec = ev.Time - a.now
			arrivals = append(arrivals, e.takeFlight(ev.Payload, round))
		} else {
			roundSec = e.cfg.Env.Network.BaseLatencySec
		}
	case ModeSemiAsync:
		// Aggregate at AggregateK arrivals or the deadline, whichever
		// first; later completions stay queued for the next version.
		deadline := e.cfg.AggregateDeadlineSec
		if deadline <= 0 {
			clean := a.clean[:0]
			for i := range a.flights {
				if a.flights[i].used {
					clean = append(clean, a.flights[i].cleanSec)
				}
			}
			a.clean = clean
			if len(clean) > 0 {
				deadline = e.cfg.StragglerFactor * median(clean)
			} else {
				deadline = e.cfg.Env.Network.BaseLatencySec
			}
		}
		res.Deadline = deadline
		cutoff := a.now + deadline
		last := a.now
		for len(arrivals) < e.cfg.AggregateK {
			ev, ok := a.q.Peek()
			if !ok || ev.Time > cutoff {
				break
			}
			a.q.Pop()
			last = ev.Time
			arrivals = append(arrivals, e.takeFlight(ev.Payload, round))
		}
		if len(arrivals) >= e.cfg.AggregateK {
			roundSec = last - a.now
		} else {
			roundSec = deadline
		}
	}
	a.arrivals = arrivals
	res.Arrivals = arrivals
	res.Kept = len(arrivals)
	res.PendingUpdates = a.inFlight
	res.RoundSec = roundSec
	a.now += roundSec
	e.vnow = a.now
	res.VirtualSec = a.now

	staleSum := 0
	for i := range arrivals {
		staleSum += arrivals[i].Staleness
		if arrivals[i].Staleness > res.MaxStaleness {
			res.MaxStaleness = arrivals[i].Staleness
		}
	}
	if len(arrivals) > 0 {
		res.MeanStaleness = float64(staleSum) / float64(len(arrivals))
	}

	// Fleet-wide idle energy for the step's duration, plus idle
	// records for undispatched view rows (observability only; totals
	// are accounted above).
	res.EnergyTotalJ += ctx.FleetIdleWatts() * roundSec
	for v := range res.Devices {
		dr := &res.Devices[v]
		if !dr.Selected {
			dr.EnergyJ = power.IdleEnergy(ctx.Devices[v].Device.Spec.IdleWatts(), roundSec)
		}
	}
	if p != nil {
		p.idleSec += roundSec
	}
	if e.batt != nil {
		res.ParticipationJain = e.batt.jain()
	}

	res.Accuracy = e.advanceAsync(ctx, res, traits)
	return ctx, res
}

// takeFlight retires the flight in the given slot as an applied
// arrival at the given aggregation round, computing its staleness
// discount and releasing the device.
func (e *Engine) takeFlight(slot int64, round int) ArrivalUpdate {
	a := e.async
	f := &a.flights[slot]
	s := round - int(f.dispatch)
	f.used = false
	a.inFlight--
	a.busy[f.dev] = false
	tracked := s
	if tracked > maxTrackedStaleness {
		tracked = maxTrackedStaleness
	}
	a.lastStale[f.dev] = int8(tracked)
	return ArrivalUpdate{
		Index:         int(f.dev),
		DispatchRound: int(f.dispatch),
		Staleness:     s,
		Weight:        1 / math.Pow(1+float64(s), e.cfg.StalenessAlpha),
		CompSec:       f.compSec,
		CommSec:       f.commSec,
	}
}

// advanceAsync is the convergence step over this round's arrivals: the
// synchronous accuracy dynamics with each update's mass discounted by
// its staleness weight — stale gradients both contribute less and slow
// effective progress, the staleness penalty of async FedAvg.
func (e *Engine) advanceAsync(ctx *RoundContext, res *RoundResult, traits AggregationTraits) float64 {
	m := e.conv
	p := e.pop
	acc := res.PrevAccuracy

	mass, qualMass, stability := 0.0, 0.0, 0.0
	keptCount := 0
	var orMask uint64
	classCount := 0
	if p == nil {
		classSeen := m.classSeen
		for i := range classSeen {
			classSeen[i] = false
		}
		kept := m.kept
		for i := range kept {
			kept[i] = false
		}
	}
	for i := range res.Arrivals {
		ar := &res.Arrivals[i]
		g := ar.Index
		var samples, q float64
		if p != nil {
			samples = float64(p.part.Samples[g])
			q = float64(p.part.Quality[g])
			if traits.DivergenceDamping > 0 {
				q += traits.DivergenceDamping * (1 - q)
				if q > 1 {
					q = 1
				}
			}
			orMask |= p.part.Mask[g]
			stability += p.emaAt(g, res.Round)
			p.emaBump(g, res.Round)
		} else {
			d := &e.partition[g]
			samples = float64(d.Samples)
			q = quality(d, traits)
			for _, c := range d.Classes {
				if !m.classSeen[c] {
					m.classSeen[c] = true
					classCount++
				}
			}
			m.kept[g] = true
			stability += m.emaPart[g]
		}
		if traits.NormalizedWeights {
			samples = float64(ctx.Workload.Dataset.SamplesPerDevice)
		}
		w := ar.Weight * float64(ctx.Params.E) * samples
		mass += w
		qualMass += w * q
		keptCount++
	}
	if p == nil {
		// Legacy participation memory: the eager decay sweep of the
		// synchronous model, with this step's arrivals as the cohort.
		for i := range m.emaPart {
			w := m.emaPart[i] * emaDecay
			if m.kept[i] {
				w += 1 - emaDecay
			}
			if w < 1e-6 {
				w = 0
			}
			m.emaPart[i] = w
		}
	}
	if mass <= 0 {
		return acc
	}
	meanQ := qualMass / mass
	var coverage float64
	if p != nil {
		coverage = p.part.Coverage(orMask)
	} else {
		coverage = float64(classCount) / float64(m.classes)
	}
	stability /= float64(keptCount)
	if stability > 1 {
		stability = 1
	}
	roundQ := meanQ + (1-meanQ)*stabilityWeight*stability*coverage
	effCeiling := m.floor + plateau(roundQ)*(m.ceiling-m.floor)
	rate := m.baseRate * math.Pow(mass/m.referenceMass, massExponent)
	rate *= math.Pow(roundQ, qualityRateExp)
	rate *= 1 + e.accRng.Normal(0, m.noiseSigma)
	if rate < 0 {
		rate = 0
	}
	if rate > 0.5 {
		rate = 0.5
	}
	if effCeiling > acc {
		acc += rate * (effCeiling - acc)
	} else {
		acc -= regressFraction * rate * (acc - effCeiling)
	}
	if acc < m.floor {
		acc = m.floor
	}
	if acc > m.ceiling {
		acc = m.ceiling
	}
	return acc
}
