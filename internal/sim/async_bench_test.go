package sim_test

import (
	"testing"

	"autofl/internal/data"
	"autofl/internal/policy"
	"autofl/internal/sim"
)

// benchmarkAsyncRound measures steady-state asynchronous aggregation
// steps over an n-device population — the async subsystem's headline
// throughput. Construction and partition generation are excluded.
func benchmarkAsyncRound(b *testing.B, mode sim.AggregationMode, n int) {
	sample := 2048
	if sample > n {
		sample = n
	}
	cfg := popConfig(b, n, sample, 0, 1)
	cfg.Mode = mode
	cfg.Data = data.IdealIID
	cfg.MaxRounds = 1 << 20
	cfg.TargetAccuracy = 1 // unreachable: rounds never stop early
	eng := mustEngine(b, cfg)
	run := eng.Start(policy.NewRandom(2))
	if !run.Step() {
		b.Fatal("run ended immediately")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !run.Step() {
			b.StopTimer()
			run = eng.Start(policy.NewRandom(2))
			b.StartTimer()
			if !run.Step() {
				b.Fatal("fresh run ended immediately")
			}
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/sec, "devices/sec")
	}
}

func BenchmarkAsyncRound100k(b *testing.B) { benchmarkAsyncRound(b, sim.ModeAsync, 100_000) }
func BenchmarkAsyncRound1M(b *testing.B)   { benchmarkAsyncRound(b, sim.ModeAsync, 1_000_000) }
func BenchmarkSemiAsyncRound1M(b *testing.B) {
	benchmarkAsyncRound(b, sim.ModeSemiAsync, 1_000_000)
}

// benchmarkStragglerWallClock runs a fixed horizon under heavy
// interference and reports the simulated (virtual) wall-clock per
// executed round — the paper-facing comparison of how asynchronous
// aggregation hides stragglers that stall a synchronous barrier.
func benchmarkStragglerWallClock(b *testing.B, mode sim.AggregationMode) {
	const rounds = 200
	virtual := 0.0
	executed := 0
	for i := 0; i < b.N; i++ {
		cfg := stepperConfig(uint64(31+i), rounds)
		cfg.Mode = mode
		cfg.Env = sim.EnvInterference()
		cfg.TargetAccuracy = 1 // run the whole horizon
		run := sim.New(cfg).Start(policy.NewRandom(3))
		for run.Step() {
		}
		last := run.Last()
		virtual += last.VirtualSec
		executed += run.Rounds()
	}
	if executed > 0 {
		b.ReportMetric(virtual/float64(executed), "virtual-sec/round")
	}
}

func BenchmarkStragglerWallClockSync(b *testing.B) {
	benchmarkStragglerWallClock(b, sim.ModeSync)
}
func BenchmarkStragglerWallClockAsync(b *testing.B) {
	benchmarkStragglerWallClock(b, sim.ModeAsync)
}
func BenchmarkStragglerWallClockSemiAsync(b *testing.B) {
	benchmarkStragglerWallClock(b, sim.ModeSemiAsync)
}
