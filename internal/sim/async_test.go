package sim_test

import (
	"errors"
	"reflect"
	"testing"

	"autofl/internal/device"
	"autofl/internal/policy"
	"autofl/internal/sim"
	"autofl/internal/workload"
)

// asyncPopConfig is popConfig with an asynchronous aggregation mode.
func asyncPopConfig(tb testing.TB, mode sim.AggregationMode, n, sample, shards int, seed uint64) sim.Config {
	tb.Helper()
	cfg := popConfig(tb, n, sample, shards, seed)
	cfg.Mode = mode
	return cfg
}

// TestSyncModeExplicitMatchesDefault pins that Mode "sync" is the
// zero-value regime, not a third code path: an explicit ModeSync run is
// field-for-field identical to a default-config run.
func TestSyncModeExplicitMatchesDefault(t *testing.T) {
	base := stepperConfig(31, 80)
	explicit := base
	explicit.Mode = sim.ModeSync
	a := sim.New(base).Run(policy.NewRandom(5))
	b := sim.New(explicit).Run(policy.NewRandom(5))
	if !reflect.DeepEqual(a, b) {
		t.Error("explicit ModeSync run differs from default-mode run")
	}
}

// TestAsyncDeterminism pins that asynchronous runs are pure functions
// of the config: same config, same bytes, for both async regimes and
// both engine paths (legacy fleet and sampled population).
func TestAsyncDeterminism(t *testing.T) {
	for _, mode := range []sim.AggregationMode{sim.ModeAsync, sim.ModeSemiAsync} {
		t.Run(string(mode), func(t *testing.T) {
			legacy := stepperConfig(13, 60)
			legacy.Mode = mode
			a := sim.New(legacy).Run(policy.NewRandom(3))
			b := sim.New(legacy).Run(policy.NewRandom(3))
			if !reflect.DeepEqual(a, b) {
				t.Error("same-seed legacy async runs differ")
			}

			pop := asyncPopConfig(t, mode, 3000, 600, 0, 17)
			c := mustEngine(t, pop).Run(policy.NewRandom(3))
			d := mustEngine(t, pop).Run(policy.NewRandom(3))
			if !reflect.DeepEqual(c, d) {
				t.Error("same-seed population async runs differ")
			}
		})
	}
}

// TestAsyncShardInvariance is the async arm of the keyed-stream
// contract: the event-queue ordering is total over (time, push order),
// and every stochastic draw is identity-keyed, so the shard count can
// never change an async trace — serial, 4-way, and an uneven 13-way
// partition all produce identical results.
func TestAsyncShardInvariance(t *testing.T) {
	for _, mode := range []sim.AggregationMode{sim.ModeAsync, sim.ModeSemiAsync} {
		t.Run(string(mode), func(t *testing.T) {
			serial := asyncPopConfig(t, mode, 5000, 2048, 1, 29)
			ref := mustEngine(t, serial).Run(policy.NewRandom(3))
			for _, shards := range []int{4, 13} {
				cfg := serial
				cfg.Shards = shards
				got := mustEngine(t, cfg).Run(policy.NewRandom(3))
				if !reflect.DeepEqual(ref, got) {
					t.Errorf("Shards=%d async run differs from serial", shards)
				}
			}
		})
	}
}

// TestAsyncStalenessObserved pins that the async regime actually
// produces stale arrivals and reports them: the run-level mean is
// positive, and per-round traces carry the staleness signal the sweep
// layer exports.
func TestAsyncStalenessObserved(t *testing.T) {
	cfg := stepperConfig(7, 60)
	cfg.Mode = sim.ModeAsync
	res := sim.New(cfg).Run(policy.NewRandom(3))
	if res.MeanStaleness <= 0 {
		t.Errorf("async run mean staleness = %g, want > 0", res.MeanStaleness)
	}
	stale := 0
	for _, r := range res.Trace {
		if r.MeanStale > 0 {
			stale++
		}
	}
	if stale == 0 {
		t.Error("no round trace recorded a positive mean staleness")
	}
}

// TestSyncStalenessZero: synchronous runs never report staleness, so
// their results (and exported bytes) are unchanged by the async fields.
func TestSyncStalenessZero(t *testing.T) {
	res := sim.New(stepperConfig(7, 60)).Run(policy.NewRandom(3))
	if res.MeanStaleness != 0 {
		t.Errorf("sync run mean staleness = %g, want 0", res.MeanStaleness)
	}
	for i, r := range res.Trace {
		if r.MeanStale != 0 {
			t.Fatalf("sync round %d traced staleness %g", i+1, r.MeanStale)
		}
	}
}

// TestSemiAsyncQuorumBounds pins the semi-async contract per step:
// arrivals never exceed the quorum, virtual time strictly advances
// (no livelock), and nothing is ever dropped.
func TestSemiAsyncQuorumBounds(t *testing.T) {
	cfg := stepperConfig(11, 80)
	cfg.Mode = sim.ModeSemiAsync
	cfg.AggregateK = 5
	cfg.AggregateDeadlineSec = 20

	run := sim.New(cfg).Start(policy.NewRandom(3))
	prevVirtual := 0.0
	for run.Step() {
		info := run.Last()
		if info.VirtualSec <= prevVirtual {
			t.Fatalf("round %d: virtual clock did not advance (%g -> %g)",
				info.Round, prevVirtual, info.VirtualSec)
		}
		if info.Dropped != 0 {
			t.Fatalf("round %d dropped %d stragglers, want 0 (late updates roll forward)",
				info.Round, info.Dropped)
		}
		if info.Kept > cfg.AggregateK {
			t.Fatalf("round %d applied %d arrivals, quorum is %d", info.Round, info.Kept, cfg.AggregateK)
		}
		prevVirtual = info.VirtualSec
	}
}

// TestAsyncConfigErrors pins the typed-error surface of the aggregation
// knobs: each degenerate combination fails with a ConfigError naming
// the offending field.
func TestAsyncConfigErrors(t *testing.T) {
	base := func() sim.Config {
		return sim.Config{
			Workload: workload.CNNMNIST(),
			Params:   workload.S3,
			Fleet:    device.DefaultFleet(),
		}
	}
	cases := []struct {
		name  string
		mut   func(*sim.Config)
		field string
	}{
		{"unknown mode", func(c *sim.Config) { c.Mode = "turbo" }, "Mode"},
		{"negative alpha", func(c *sim.Config) { c.Mode = sim.ModeAsync; c.StalenessAlpha = -0.5 }, "StalenessAlpha"},
		{"alpha with sync", func(c *sim.Config) { c.StalenessAlpha = 0.5 }, "StalenessAlpha"},
		{"quorum with sync", func(c *sim.Config) { c.AggregateK = 3 }, "AggregateK"},
		{"quorum with async", func(c *sim.Config) { c.Mode = sim.ModeAsync; c.AggregateK = 3 }, "AggregateK"},
		{"negative quorum", func(c *sim.Config) { c.Mode = sim.ModeSemiAsync; c.AggregateK = -1 }, "AggregateK"},
		{"quorum beyond cohort", func(c *sim.Config) { c.Mode = sim.ModeSemiAsync; c.AggregateK = c.Params.K + 1 }, "AggregateK"},
		{"deadline with sync", func(c *sim.Config) { c.AggregateDeadlineSec = 10 }, "AggregateDeadlineSec"},
		{"negative deadline", func(c *sim.Config) { c.Mode = sim.ModeSemiAsync; c.AggregateDeadlineSec = -1 }, "AggregateDeadlineSec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			_, err := sim.NewEngine(cfg)
			var ce *sim.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("NewEngine error = %v, want ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Errorf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
		})
	}
}

// TestAsyncRoundAllocs pins the zero-alloc steady state of the async
// population round (serial shards, as in TestPopulationRoundAllocs).
func TestAsyncRoundAllocs(t *testing.T) {
	cfg := asyncPopConfig(t, sim.ModeAsync, 2000, 512, 1, 3)
	cfg.MaxRounds = 1000
	cfg.TargetAccuracy = 1 // unreachable: the run never ends early
	run := mustEngine(t, cfg).Start(policy.NewRandom(9))
	// Long warmup: the flight table and arrival buffer grow to their
	// steady-state capacity during the first rounds.
	for i := 0; i < 20; i++ {
		if !run.Step() {
			t.Fatal("run ended during warmup")
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if !run.Step() {
			t.Fatal("run ended mid-measurement")
		}
	})
	if avg != 0 {
		t.Errorf("steady-state async round allocates %v objects, want 0", avg)
	}
}
