package sim

// This file wires the battery subsystem (internal/battery) into the
// round engine. The model itself — keyed initial charge, lazy
// virtual-time settling, harvesting profiles — lives in the battery
// package; here the engine decides *when* devices settle (at
// observation), *what* they drain (the measured round energy net of
// the idle share the settle pass integrates), and *who* is excluded
// from selection (sanitize skips below-threshold devices). All battery
// state is nil when Config.Battery is nil, and the battery seed is
// derived by keyed hashing rather than stream draws, so a
// battery-disabled run is byte-identical to the pre-battery engine by
// construction.

import (
	"autofl/internal/battery"
	"autofl/internal/rng"
)

// batterySeed derives the battery model's hash-family seed from the
// run seed without consuming any RNG stream draws: enabling the
// battery perturbs no other subsystem's sequence.
func batterySeed(runSeed uint64) uint64 { return rng.Mix(runSeed, 0xba77e, 0x5eed) }

// battState is the engine's battery-mode state: the per-device model
// plus the cumulative participation counts behind the Jain fairness
// index, maintained as running moments so the per-round index is O(1)
// to read and O(participants) to update.
type battState struct {
	model *battery.Model
	// partCount is each device's cumulative selection count; partSum
	// and partSumSq are its running Σx and Σx² moments.
	partCount []uint32
	partSum   float64
	partSumSq float64
}

func newBattState(spec battery.Spec, runSeed uint64, n int) *battState {
	return &battState{
		model:     battery.New(spec, batterySeed(runSeed), n),
		partCount: make([]uint32, n),
	}
}

// participate folds one selection of device g into the participation
// counts and the Jain moments (a count going c→c+1 adds 1 to Σx and
// 2c+1 to Σx²).
func (b *battState) participate(g int) {
	c := b.partCount[g]
	b.partCount[g] = c + 1
	b.partSum++
	b.partSumSq += float64(2*c + 1)
}

// jain is Jain's fairness index over the cumulative per-device
// participation counts, 0 before any selection.
func (b *battState) jain() float64 {
	return BatteryJainFromMoments(b.partSum, b.partSumSq, len(b.partCount))
}

// BatteryJainFromMoments is Jain's fairness index (Σx)²/(n·Σx²) from
// running moments. The closed form matches metrics.JainFromMoments
// exactly (pinned by a root-level test); sim carries its own three
// lines because internal/metrics imports sim. Exported so that pin can
// compare the two implementations directly.
func BatteryJainFromMoments(sum, sumSq float64, n int) float64 {
	if n == 0 || sumSq <= 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// observeBattery settles device g's idle drain and harvest up to the
// engine's virtual clock and fills the view row's battery fields. It
// is called from the (possibly parallel) observe pass: device indices
// are disjoint across shards, so the per-device mutation never races.
func (e *Engine) observeBattery(ds *DeviceState, g int, idleW float64) {
	m := e.batt.model
	m.SettleAt(g, idleW, e.vnow)
	ds.Battery = m.Frac(g)
	ds.Unavailable = !m.Available(g)
}

// battViewStats summarizes a candidate view's battery state at
// observation time: how many devices meet the participation threshold,
// how many are fully depleted, and the mean state of charge.
func battViewStats(devices []DeviceState) (available, depleted int, meanFrac float64) {
	for i := range devices {
		ds := &devices[i]
		if !ds.Unavailable {
			available++
		}
		if ds.Battery <= 0 {
			depleted++
		}
		meanFrac += ds.Battery
	}
	if len(devices) > 0 {
		meanFrac /= float64(len(devices))
	}
	return available, depleted, meanFrac
}

// BatteryStats is the end-of-run battery summary on Result.
type BatteryStats struct {
	// ParticipationJain is Jain's fairness index over cumulative
	// per-device participation counts at the end of the run.
	ParticipationJain float64
	// MeanFrac is the final round's mean candidate state of charge.
	MeanFrac float64
	// Available and Depleted count the final round's candidate view.
	Available int
	Depleted  int
}
