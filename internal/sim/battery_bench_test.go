package sim_test

import (
	"testing"

	"autofl/internal/battery"
	"autofl/internal/data"
	"autofl/internal/policy"
	"autofl/internal/sim"
)

// benchmarkBatteryRound measures steady-state sampled rounds with the
// battery subsystem attached — lazy settle, availability gating, and
// the incremental Jain moments all inside the timed loop — and reports
// devices/sec so the overhead over the batteryless population round is
// directly comparable. A solar harvest keeps the fleet cycling rather
// than draining to a gated steady state.
func benchmarkBatteryRound(b *testing.B, n int) {
	sample := 4096
	if sample > n {
		sample = n
	}
	cfg := popConfig(b, n, sample, 0, 1)
	cfg.Data = data.IdealIID
	cfg.MaxRounds = 1 << 16
	cfg.TargetAccuracy = 1 // unreachable: rounds never stop early
	cfg.Battery = &battery.Spec{CapacityJ: 1e6, Harvest: battery.ProfileSolar}
	eng := mustEngine(b, cfg)
	run := eng.Start(policy.NewBatteryWeighted(2))
	if !run.Step() {
		b.Fatal("run ended immediately")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !run.Step() {
			b.StopTimer()
			run = eng.Start(policy.NewBatteryWeighted(2))
			b.StartTimer()
			if !run.Step() {
				b.Fatal("fresh run ended immediately")
			}
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/sec, "devices/sec")
		b.ReportMetric(float64(sample)*float64(b.N)/sec, "candidates/sec")
	}
}

func BenchmarkBatteryRound100k(b *testing.B) { benchmarkBatteryRound(b, 100_000) }
func BenchmarkBatteryRound1M(b *testing.B)   { benchmarkBatteryRound(b, 1_000_000) }

// BenchmarkBatteryModelSettle isolates the battery model itself: one
// settle + drain + availability check per device, no engine around it.
func BenchmarkBatteryModelSettle(b *testing.B) {
	const n = 4096
	m := battery.New(battery.Spec{CapacityJ: 1e6, Harvest: battery.ProfileSolar}, 7, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := i % n
		m.SettleAt(g, 0.1, float64(i))
		m.Drain(g, 1.0)
		if m.Available(g) {
			m.Frac(g)
		}
	}
}

// BenchmarkLegacyFleetBatteryRound is the materialized-fleet arm: the
// exhaustive 200-device round with the battery subsystem attached.
func BenchmarkLegacyFleetBatteryRound(b *testing.B) {
	cfg := stepperConfig(1, 1<<16)
	cfg.Data = data.IdealIID
	cfg.TargetAccuracy = 1
	cfg.Battery = &battery.Spec{CapacityJ: 1e6, Harvest: battery.ProfileSolar}
	run := sim.New(cfg).Start(policy.NewBatteryWeighted(2))
	if !run.Step() {
		b.Fatal("run ended immediately")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !run.Step() {
			b.StopTimer()
			run = sim.New(cfg).Start(policy.NewBatteryWeighted(2))
			b.StartTimer()
			if !run.Step() {
				b.Fatal("fresh run ended immediately")
			}
		}
	}
}
