package sim_test

import (
	"runtime"
	"testing"

	"autofl/internal/battery"
	"autofl/internal/data"
	"autofl/internal/policy"
	"autofl/internal/sim"
)

// battPopConfig is popConfig with the battery subsystem attached.
func battPopConfig(tb testing.TB, n, sample, shards int, seed uint64) sim.Config {
	tb.Helper()
	cfg := popConfig(tb, n, sample, shards, seed)
	cfg.Battery = &battery.Spec{CapacityJ: 2000}
	return cfg
}

// TestBatteryRoundAllocs pins the zero-alloc steady state of the
// battery-enabled sampled round path: the lazy settle pass, the
// availability gate, and the incremental Jain moments must all run on
// preallocated state (serial shards — the parallel observe pass spawns
// goroutines by design, which the benchmark covers instead).
func TestBatteryRoundAllocs(t *testing.T) {
	cfg := battPopConfig(t, 2000, 512, 1, 3)
	// A large cell so depletion never empties the candidate set during
	// the measurement window.
	cfg.Battery = &battery.Spec{CapacityJ: 1e7, Harvest: battery.ProfileSolar}
	cfg.MaxRounds = 1000
	cfg.TargetAccuracy = 1 // unreachable: the run never ends early
	run := mustEngine(t, cfg).Start(policy.NewRandom(9))
	for i := 0; i < 3; i++ {
		if !run.Step() {
			t.Fatal("run ended during warmup")
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if !run.Step() {
			t.Fatal("run ended mid-measurement")
		}
	})
	if avg != 0 {
		t.Errorf("steady-state battery round allocates %v objects, want 0", avg)
	}
}

// TestBatteryMillionDeviceMemoryBudget extends the resident-state pin
// to battery-enabled populations: the subsystem adds 12 bytes per
// device (packed charge + settle time + participation count), so one
// million devices stay within 60 accounted bytes each.
func TestBatteryMillionDeviceMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-device smoke skipped in -short")
	}
	const n = 1_000_000
	cfg := battPopConfig(t, n, 4096, 0, 5)
	cfg.Data = data.IdealIID // partition generation dominates otherwise
	cfg.MaxRounds = 3

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	eng := mustEngine(t, cfg)
	res := eng.Run(policy.NewRandom(1))
	runtime.GC()
	runtime.ReadMemStats(&after)

	if res.Rounds != 3 {
		t.Fatalf("executed %d rounds, want 3", res.Rounds)
	}
	if res.Battery == nil {
		t.Fatal("battery-enabled run reported no battery stats")
	}
	if got := eng.PopulationMemoryBytes(); got > 60*n {
		t.Errorf("accounted resident state %d B = %.1f B/device, budget 60", got, float64(got)/n)
	}
	if delta := int64(after.HeapAlloc) - int64(before.HeapAlloc); delta > 80*n {
		t.Errorf("heap grew %d B = %.1f B/device, budget 80", delta, float64(delta)/n)
	}
	runtime.KeepAlive(eng)
}

// TestBatteryGatesEveryAggregationMode pins availability gating across
// the three regimes: under a small battery cell, every mode eventually
// drops devices below the participation threshold, reports them
// unavailable in the round trace, and never exceeds the available
// count with its participant count.
func TestBatteryGatesEveryAggregationMode(t *testing.T) {
	for _, mode := range []sim.AggregationMode{sim.ModeSync, sim.ModeAsync, sim.ModeSemiAsync} {
		t.Run(string(mode), func(t *testing.T) {
			cfg := battPopConfig(t, 600, 200, 1, 21)
			// A cell small enough that the candidate pool visibly thins
			// over the horizon.
			cfg.Battery = &battery.Spec{CapacityJ: 500}
			cfg.Mode = mode
			cfg.MaxRounds = 80
			cfg.TargetAccuracy = 1
			run := mustEngine(t, cfg).Start(policy.NewRandom(7))
			gated := false
			for run.Step() {
				info := run.Last()
				if info.BatteryAvailable > 200 {
					t.Fatalf("round %d reports %d available of a 200-candidate view", info.Round, info.BatteryAvailable)
				}
				if info.Participants > info.BatteryAvailable {
					t.Fatalf("round %d selected %d participants with only %d available",
						info.Round, info.Participants, info.BatteryAvailable)
				}
				if info.BatteryAvailable < 200 {
					gated = true
				}
			}
			res := run.Result()
			if res.Battery == nil {
				t.Fatal("battery-enabled run reported no battery stats")
			}
			if !gated {
				t.Error("no round saw an unavailable device; gating never engaged")
			}
			if j := res.Battery.ParticipationJain; j <= 0 || j > 1 {
				t.Errorf("participation Jain %v outside (0, 1]", j)
			}
		})
	}
}
