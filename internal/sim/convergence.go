package sim

import (
	"math"

	"autofl/internal/data"
	"autofl/internal/rng"
)

// convergenceModel advances global-model accuracy round by round. It
// is an analytic stand-in for real federated SGD, built to reproduce
// the convergence *shapes* of the paper's figures (and cross-validated
// against the genuine pure-Go trainer in internal/fedavg):
//
//   - Accuracy approaches a ceiling along a saturating exponential
//     whose per-round rate grows (sublinearly) with the mass of
//     gradient updates that reached the aggregator — so dropping
//     stragglers or shrinking K slows convergence.
//
//   - Data heterogeneity lowers the *reachable* ceiling: FedAvg under
//     client drift plateaus below the IID optimum. The plateau is a
//     logistic function of the round's effective update quality,
//     calibrated so that random selection converges for Ideal IID and
//     Non-IID(50%) but stalls below the accuracy target for
//     Non-IID(75%) and Non-IID(100%) — the Fig 11 outcome.
//
//   - Effective quality combines three ingredients: (1) the
//     mass-weighted mean IID quality of kept updates; (2) selection
//     stability — re-selecting a similar cohort round after round
//     makes the effective training distribution stationary, so FedAvg
//     converges on the cohort's union distribution instead of chasing
//     a different biased subset every round (this is what a learned
//     selector provides and random selection cannot); and (3) class
//     coverage of the cohort's union. The stability bonus is how
//     AutoFL and the oracles converge even when every device is
//     non-IID, matching Fig 11(d).
//
//   - FedNova/FEDL-style update normalization (AggregationTraits.
//     DivergenceDamping) recovers part of the per-device quality loss;
//     partial updates contribute proportional mass.
type convergenceModel struct {
	floor, ceiling float64
	baseRate       float64
	classes        int
	// referenceMass is the update mass of a full-K, mean-sample,
	// on-time round; rates are relative to it.
	referenceMass float64
	// noiseSigma jitters per-round progress, reproducing the noisy
	// accuracy traces of Fig 6(a).
	noiseSigma float64
	// emaPart tracks each device's exponentially-weighted recent
	// participation for the selection-stability term. Rotating within
	// a stable pool (what a learned selector does while dodging
	// interference) keeps the effective training distribution
	// stationary, like block-cyclic sampling; resampling the whole
	// population does not. Indexed by device; a zero entry means no
	// recent participation.
	emaPart []float64
	// kept and classSeen are per-round scratch, reused across rounds
	// so advance allocates nothing in steady state.
	kept      []bool
	classSeen []bool
}

// Convergence-model calibration. plateauMid/plateauScale place the
// logistic so that the round-quality values produced by the paper's
// four data scenarios under random selection land on the right side of
// the default accuracy target (see data_heterogeneity tests).
const (
	plateauMid      = 0.42
	plateauScale    = 0.045
	plateauBase     = 0.55
	plateauRange    = 0.45
	progressNoise   = 0.04 // relative jitter on per-round progress
	regressFraction = 0.25 // how fast accuracy decays toward a lower plateau
	massExponent    = 0.6  // diminishing returns of extra update mass
	stabilityWeight = 0.90 // quality recovered by a stationary cohort
	qualityRateExp  = 0.5  // drift also slows per-round progress
	emaDecay        = 0.9  // participation memory for the stability term
)

// referenceK anchors the update-mass normalization: one "reference
// round" is K=20 on-time devices (the Table 5 standard) training E
// epochs on mean-sized local datasets. Smaller cohorts make less
// progress per round.
const referenceK = 20

func newConvergenceModel(cfg *Config) *convergenceModel {
	w := cfg.Workload
	ref := referenceK * float64(cfg.Params.E) * float64(w.Dataset.SamplesPerDevice)
	n := len(cfg.Fleet)
	return &convergenceModel{
		floor:         w.AccuracyFloor,
		ceiling:       w.AccuracyCeiling,
		baseRate:      w.BaseProgressRate,
		classes:       w.Dataset.Classes,
		referenceMass: ref,
		noiseSigma:    progressNoise,
		emaPart:       make([]float64, n),
		kept:          make([]bool, n),
		classSeen:     make([]bool, w.Dataset.Classes),
	}
}

// quality returns the effective IID quality of one device's update
// after aggregation-level damping.
func quality(d *data.DeviceData, traits AggregationTraits) float64 {
	q := d.IIDQuality()
	if traits.DivergenceDamping > 0 {
		q += traits.DivergenceDamping * (1 - q)
	}
	if q > 1 {
		return 1
	}
	return q
}

// plateau maps a round's effective update quality to the fraction of
// the floor→ceiling gap that FedAvg can asymptotically reach.
func plateau(roundQuality float64) float64 {
	return plateauBase + plateauRange/(1+math.Exp(-(roundQuality-plateauMid)/plateauScale))
}

// advance computes the post-round accuracy.
func (m *convergenceModel) advance(s *rng.Stream, ctx *RoundContext, res *RoundResult, traits AggregationTraits) float64 {
	acc := res.PrevAccuracy

	// Aggregate kept update mass, quality, coverage and stability.
	mass, qualMass := 0.0, 0.0
	kept := m.kept
	for i := range kept {
		kept[i] = false
	}
	classSeen := m.classSeen
	for i := range classSeen {
		classSeen[i] = false
	}
	keptCount, classCount := 0, 0
	stability := 0.0
	for i := range res.Devices {
		dr := &res.Devices[i]
		if dr.UpdateFraction <= 0 {
			continue
		}
		d := ctx.Devices[i].Data
		samples := float64(d.Samples)
		if traits.NormalizedWeights {
			samples = float64(ctx.Workload.Dataset.SamplesPerDevice)
		}
		w := dr.UpdateFraction * float64(ctx.Params.E) * samples
		mass += w
		qualMass += w * quality(d, traits)
		kept[i] = true
		keptCount++
		stability += m.emaPart[i]
		for _, c := range d.Classes {
			if !classSeen[c] {
				classSeen[c] = true
				classCount++
			}
		}
	}
	// Update the participation memory for every device. Weights that
	// decay below the floor reset to zero (no recent participation).
	for i := range res.Devices {
		w := m.emaPart[i] * emaDecay
		if kept[i] {
			w += 1 - emaDecay
		}
		if w < 1e-6 {
			w = 0
		}
		m.emaPart[i] = w
	}
	if mass <= 0 {
		return acc // nothing aggregated; the model is unchanged
	}
	meanQ := qualMass / mass
	coverage := float64(classCount) / float64(m.classes)
	// stability is the mean recent-participation weight of today's
	// cohort: ~1 for a fixed cohort, ~K/N for population resampling,
	// and in between for rotation within a stable pool.
	stability /= float64(keptCount)
	if stability > 1 {
		stability = 1
	}

	// Stationary cohorts recover quality: the model fits the cohort's
	// union distribution rather than oscillating between biased
	// subsets.
	roundQ := meanQ + (1-meanQ)*stabilityWeight*stability*coverage

	// Reachable ceiling for this round's update distribution.
	effCeiling := m.floor + plateau(roundQ)*(m.ceiling-m.floor)

	// Per-round progress rate: diminishing returns in mass, slowed by
	// client drift, jittered by SGD noise.
	rate := m.baseRate * math.Pow(mass/m.referenceMass, massExponent)
	rate *= math.Pow(roundQ, qualityRateExp)
	rate *= 1 + s.Normal(0, m.noiseSigma)
	if rate < 0 {
		rate = 0
	}
	if rate > 0.5 {
		rate = 0.5
	}

	if effCeiling > acc {
		acc += rate * (effCeiling - acc)
	} else {
		// Heavily non-IID rounds pull an already-good model down
		// toward their own plateau (the oscillation of Fig 6a).
		acc -= regressFraction * rate * (acc - effCeiling)
	}
	if acc < m.floor {
		acc = m.floor
	}
	if acc > m.ceiling {
		acc = m.ceiling
	}
	return acc
}
