package sim

import (
	"fmt"

	"autofl/internal/battery"
)

// ConfigError reports a degenerate Config rejected by NewEngine: an
// empty fleet, a participant count no fleet of that size can satisfy,
// a sampled population smaller than K, and so on. The legacy New
// constructor panics with the same error; callers that can receive
// untrusted configurations should use NewEngine and branch on
// errors.As.
type ConfigError struct {
	// Field names the offending Config field.
	Field string
	// Reason explains the rejection.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid config: %s: %s", e.Field, e.Reason)
}

func configErrf(field, format string, args ...any) error {
	return &ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// validate rejects degenerate configurations. It runs on the defaulted
// config (so zero-value fields have already been filled in), except
// for the Fleet/Population exclusivity check, which NewEngine applies
// to the caller's config before defaulting.
func (c *Config) validate() error {
	n := len(c.Fleet)
	if c.Population != nil {
		n = c.Population.Len()
	}
	if n == 0 {
		return configErrf("Fleet", "empty fleet: the round engine needs at least one device")
	}
	if c.Params.K <= 0 {
		return configErrf("Params.K", "participant count %d is not positive", c.Params.K)
	}
	if c.Params.B < 0 || c.Params.E < 0 {
		return configErrf("Params", "negative batch size or epoch count (B=%d, E=%d)", c.Params.B, c.Params.E)
	}
	if c.Sample < 0 {
		return configErrf("Sample", "negative candidate-sample size %d", c.Sample)
	}
	if c.Shards < 0 {
		return configErrf("Shards", "negative shard count %d", c.Shards)
	}
	if c.Sample > 0 && c.Population == nil {
		return configErrf("Sample", "candidate sampling requires a Population fleet")
	}
	if c.Population != nil && c.Sample > 0 {
		if c.Sample < c.Params.K {
			return configErrf("Sample", "candidate sample %d is smaller than Params.K=%d", c.Sample, c.Params.K)
		}
	} else if c.Params.K > n {
		return configErrf("Params.K", "participant count %d exceeds the %d-device fleet", c.Params.K, n)
	}
	switch c.Mode {
	case ModeSync, ModeAsync, ModeSemiAsync:
	default:
		return configErrf("Mode", "unknown aggregation mode %q (want sync, async, or semi-async)", c.Mode)
	}
	if c.StalenessAlpha < 0 {
		return configErrf("StalenessAlpha", "negative staleness exponent %g", c.StalenessAlpha)
	}
	if c.Mode == ModeSync && c.StalenessAlpha != 0 {
		return configErrf("StalenessAlpha", "staleness weighting requires an asynchronous Mode")
	}
	if c.Mode != ModeSemiAsync {
		if c.AggregateK != 0 {
			return configErrf("AggregateK", "aggregation quorum requires Mode semi-async")
		}
		if c.AggregateDeadlineSec != 0 {
			return configErrf("AggregateDeadlineSec", "aggregation deadline requires Mode semi-async")
		}
	} else {
		if c.AggregateK < 0 {
			return configErrf("AggregateK", "negative aggregation quorum %d", c.AggregateK)
		}
		if c.AggregateK > c.Params.K {
			return configErrf("AggregateK", "aggregation quorum %d exceeds the in-flight cap Params.K=%d", c.AggregateK, c.Params.K)
		}
		if c.AggregateDeadlineSec < 0 {
			return configErrf("AggregateDeadlineSec", "negative aggregation deadline %gs", c.AggregateDeadlineSec)
		}
	}
	if b := c.Battery; b != nil {
		if b.Harvest != battery.ProfileNone && b.CapacityJ <= 0 {
			return configErrf("Battery.Harvest", "harvesting requires a battery: CapacityJ is %g J", b.CapacityJ)
		}
		if b.CapacityJ <= 0 {
			return configErrf("Battery.CapacityJ", "battery capacity %g J is not positive", b.CapacityJ)
		}
		switch b.Harvest {
		case battery.ProfileNone, battery.ProfileCharger, battery.ProfileSolar:
		default:
			return configErrf("Battery.Harvest", "unknown harvesting profile %q (want charger or solar-diurnal)", b.Harvest)
		}
		if b.ThresholdJ < 0 {
			return configErrf("Battery.ThresholdJ", "negative participation threshold %g J", b.ThresholdJ)
		}
		if b.ThresholdJ > b.CapacityJ {
			return configErrf("Battery.ThresholdJ", "participation threshold %g J exceeds the %g J capacity: no device could ever participate", b.ThresholdJ, b.CapacityJ)
		}
		if b.InitialFracLo < 0 || b.InitialFracHi > 1 || b.InitialFracLo > b.InitialFracHi {
			return configErrf("Battery.InitialFrac", "initial state-of-charge range [%g, %g] is not within [0, 1]", b.InitialFracLo, b.InitialFracHi)
		}
		if b.HarvestW < 0 {
			return configErrf("Battery.HarvestW", "negative harvest rate %g W", b.HarvestW)
		}
		if b.ChargerFrac < 0 || b.ChargerFrac > 1 {
			return configErrf("Battery.ChargerFrac", "charger fraction %g outside [0, 1]", b.ChargerFrac)
		}
		if b.DaySec <= 0 {
			return configErrf("Battery.DaySec", "diurnal period %g s is not positive", b.DaySec)
		}
	}
	return nil
}
