package sim

import (
	"testing"
	"testing/quick"

	"autofl/internal/data"
	"autofl/internal/device"
	"autofl/internal/rng"
	"autofl/internal/workload"
)

// arbitraryPolicy emits randomized (sometimes invalid) selections to
// stress the engine's sanitization and accounting.
type arbitraryPolicy struct{ s *rng.Stream }

func (p *arbitraryPolicy) Name() string { return "arbitrary" }
func (p *arbitraryPolicy) Select(ctx *RoundContext) []Selection {
	n := p.s.IntN(2*ctx.Params.K + 1)
	out := make([]Selection, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Selection{
			Index:  p.s.IntN(len(ctx.Devices)+4) - 2, // may be invalid
			Target: device.Target(p.s.IntN(2)),
			Step:   p.s.IntN(30) - 5, // may be out of range
		})
	}
	return out
}

// Property: for any seed, environment, and arbitrary (even malformed)
// policy output, every round satisfies the engine's accounting
// invariants.
func TestRoundInvariantsProperty(t *testing.T) {
	envs := []Env{EnvIdeal(), EnvInterference(), EnvWeakNetwork(), EnvField()}
	scenarios := data.Scenarios()
	f := func(seedRaw uint16, envIdx, scIdx uint8) bool {
		cfg := Config{
			Workload:  workload.CNNMNIST(),
			Params:    workload.GlobalParams{B: 16, E: 5, K: 10},
			Fleet:     device.NewFleet(3, 7, 10),
			Data:      scenarios[int(scIdx)%len(scenarios)],
			Env:       envs[int(envIdx)%len(envs)],
			Seed:      uint64(seedRaw),
			MaxRounds: 5,
		}
		eng := New(cfg)
		p := &arbitraryPolicy{s: rng.New(uint64(seedRaw) + 1)}
		acc := 0.1
		for round := 0; round < 5; round++ {
			_, res := eng.RunRound(p, round, acc)
			if res.Accuracy < 0 || res.Accuracy > 1 {
				return false
			}
			if res.RoundSec < 0 || res.EnergyTotalJ < 0 {
				return false
			}
			if res.EnergyParticipantsJ > res.EnergyTotalJ+1e-9 {
				return false
			}
			selected, sum := 0, 0.0
			for _, dr := range res.Devices {
				if dr.EnergyJ < 0 || dr.UpdateFraction < 0 || dr.UpdateFraction > 1 {
					return false
				}
				if dr.Dropped && !dr.Selected {
					return false
				}
				if dr.Selected {
					selected++
				}
				sum += dr.EnergyJ
			}
			if selected > cfg.Params.K {
				return false
			}
			if diff := sum - res.EnergyTotalJ; diff > 1e-6 || diff < -1e-6 {
				return false
			}
			acc = res.Accuracy
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: convergence-model accuracy is invariant to device energy
// accounting — two configs differing only in straggler factor beyond
// any drop threshold yield identical accuracy traces.
func TestAccuracyIndependentOfGenerousDeadlines(t *testing.T) {
	run := func(factor float64) []float64 {
		cfg := Config{
			Workload:        workload.CNNMNIST(),
			Params:          workload.GlobalParams{B: 16, E: 5, K: 10},
			Fleet:           device.NewFleet(3, 7, 10),
			Data:            data.IdealIID,
			Env:             EnvIdeal(),
			Seed:            77,
			MaxRounds:       30,
			StragglerFactor: factor,
		}
		p := &arbitraryPolicy{s: rng.New(5)}
		return New(cfg).Run(p).AccuracyTrace
	}
	// Both factors are generous enough that nobody drops in the ideal
	// environment, so the learning trajectory must match exactly.
	a, b := run(50), run(500)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("accuracy depends on a non-binding deadline at round %d", i)
		}
	}
}
