package sim

// This file is the population half of the engine: the million-device
// round path used when Config.Population is set with a positive
// Sample. Where the legacy path walks a []*Device fleet exhaustively —
// two RNG draws and a DeviceState per device per round — the
// population path keeps the fleet as an archetype table plus packed
// struct-of-arrays per-device state (~42 bytes/device resident), draws
// a K'-candidate pool per round with an O(K') partial Fisher–Yates
// sampler, and presents policies a candidate-sized RoundContext view,
// so the whole round is O(Sample + participants), not O(fleet).
//
// Determinism is by construction: every per-device draw comes from a
// stream keyed by rng.Mix(seedBase, round, deviceIndex), so results
// are a pure function of the config — independent of shard count,
// goroutine scheduling, and the Shards setting. The parallel observe
// pass just partitions the candidate range.

import (
	"math"
	"runtime"
	"slices"
	"sync"

	"autofl/internal/data"
	"autofl/internal/device"
	"autofl/internal/network"
	"autofl/internal/power"
	"autofl/internal/rng"
)

// popShardMin is the candidate-pool size below which the observe pass
// stays serial: spawning shard goroutines costs more than the loop.
const popShardMin = 1024

// popState is the engine's population-mode state: the cohort fleet,
// the packed partition, the per-device dynamic arrays, and the keyed
// RNG machinery. All per-device arrays are struct-of-arrays, indexed
// by the population's dense device index.
type popState struct {
	pop    *device.Population
	part   *data.Packed
	n      int
	sample int
	shards int
	// fleetIdle is the population-wide idle draw, O(archetypes) once.
	fleetIdle float64

	// sampler draws the per-round candidate pool; sampleRng feeds it.
	sampler   *rng.Sampler
	sampleRng *rng.Stream
	// envSeed/actSeed key the per-(round, device) observation and
	// post-selection ("actual" co-runner) streams.
	envSeed, actSeed uint64
	shardRng         []*rng.Reseedable // one per shard, reseeded per device
	actRng           *rng.Reseedable

	// Packed per-device dynamic state.
	// emaW/emaRound are the lazily-decayed participation memory of the
	// convergence model's stability term: the stored weight as of the
	// round it was last updated, decayed on read (O(participants) per
	// round instead of the legacy O(fleet) decay sweep).
	emaW     []float32
	emaRound []int32
	// lastStep/lastTarget record each device's most recent executed
	// DVFS action (-1 step = never selected).
	lastStep   []int8
	lastTarget []int8
	// extraJ accumulates each device's energy above the always-idle
	// baseline; idleSec integrates round time so DeviceSnapshot can
	// reconstruct exact cumulative energy in O(1) per device.
	extraJ  []float64
	idleSec float64
}

func newPopState(c *Config, partRng, envRng, root *rng.Stream) *popState {
	n := c.Population.Len()
	shards := c.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards > 16 {
			shards = 16
		}
	}
	p := &popState{
		pop:        c.Population,
		n:          n,
		sample:     c.Sample,
		shards:     shards,
		fleetIdle:  c.Population.IdleWatts(),
		sampler:    rng.NewSampler(n),
		sampleRng:  root.Fork(),
		envSeed:    envRng.Uint64(),
		actSeed:    envRng.Uint64(),
		actRng:     rng.NewReseedable(),
		emaW:       make([]float32, n),
		emaRound:   make([]int32, n),
		lastStep:   make([]int8, n),
		lastTarget: make([]int8, n),
		extraJ:     make([]float64, n),
	}
	for i := range p.lastStep {
		p.lastStep[i] = -1
	}
	for i := 0; i < shards; i++ {
		p.shardRng = append(p.shardRng, rng.NewReseedable())
	}
	p.part = data.PackedPartition(partRng.Uint64(), c.Data, n,
		c.Workload.Dataset.Classes, c.Workload.Dataset.SamplesPerDevice, shards)
	return p
}

// emaAt returns the device's participation weight as the legacy eager
// sweep would read it at round t: the stored weight decayed once per
// elapsed round since its last update.
func (p *popState) emaAt(g, t int) float64 {
	v := float64(p.emaW[g])
	if v == 0 {
		return 0
	}
	d := t - 1 - int(p.emaRound[g])
	if d > 0 {
		v *= math.Pow(emaDecay, float64(d))
	}
	if v < 1e-6 {
		return 0
	}
	return v
}

// emaBump folds round t's participation into the device's stored
// weight (decay-to-t plus the participation increment).
func (p *popState) emaBump(g, t int) {
	v := p.emaAt(g, t)*emaDecay + (1 - emaDecay)
	p.emaW[g] = float32(v)
	p.emaRound[g] = int32(t)
}

// observePop samples this round's candidate pool and fills the scratch
// context with a candidate-sized view: ctx.Devices[v] describes global
// device sc.cand[v]. Policies run unchanged against the view — their
// selection indices are view positions; DeviceRound.Index carries the
// global index.
func (e *Engine) observePop(sc *roundScratch, round int, accuracy float64) *RoundContext {
	p := e.pop
	k := p.sample

	cand := sc.cand
	if cap(cand) < k {
		cand = make([]int32, k)
	}
	cand = cand[:k]
	p.sampler.SampleInto(p.sampleRng, cand)
	// Ascending global order: deterministic, cache-friendly, and
	// stable for positional policy state (tie priorities, pools).
	slices.Sort(cand)
	sc.cand = cand

	devices := sc.ctx.Devices
	if cap(devices) < k {
		devices = make([]DeviceState, k)
	}
	devices = devices[:k]
	if cap(sc.devs) < k {
		sc.devs = make([]device.Device, k)
		sc.dd = make([]data.DeviceData, k)
	}
	devs, dd := sc.devs[:k], sc.dd[:k]
	sc.ctx = RoundContext{
		Round:     round,
		Accuracy:  accuracy,
		Workload:  e.cfg.Workload,
		Params:    e.cfg.Params,
		Devices:   devices,
		cfg:       &e.cfg,
		fleetIdle: p.fleetIdle,
	}
	// Serial below the threshold — and through a named method, not a
	// closure, so the steady-state round stays allocation-free.
	if p.shards <= 1 || k < popShardMin {
		e.fillView(0, 0, k, round, cand, devs, dd, devices)
	} else {
		var wg sync.WaitGroup
		for i := 0; i < p.shards; i++ {
			lo, hi := k*i/p.shards, k*(i+1)/p.shards
			if lo == hi {
				continue
			}
			wg.Add(1)
			// Everything but wg and e rides in as arguments: a captured
			// local would heap-escape on the serial path too.
			go func(shard, lo, hi, round int, cand []int32, devs []device.Device, dd []data.DeviceData, devices []DeviceState) {
				defer wg.Done()
				e.fillView(shard, lo, hi, round, cand, devs, dd, devices)
			}(i, lo, hi, round, cand, devs, dd, devices)
		}
		wg.Wait()
	}
	return &sc.ctx
}

// fillView fills candidate-view rows [lo, hi) of the round's context,
// drawing each device's observation from its (round, device)-keyed
// stream via the shard's reseedable generator. Rows are index-disjoint
// across shards, so parallel fills never race.
func (e *Engine) fillView(shard, lo, hi, round int, cand []int32, devs []device.Device, dd []data.DeviceData, devices []DeviceState) {
	p := e.pop
	rs := p.shardRng[shard]
	for v := lo; v < hi; v++ {
		g := int(cand[v])
		st := rs.Seed(rng.Mix(p.envSeed, uint64(round), uint64(g)))
		bw := e.cfg.Env.Network.Sample(st)
		load := e.cfg.Env.Interference.Sample(st)
		devs[v] = device.Device{ID: g, Spec: p.pop.Spec(g)}
		dd[v] = data.DeviceData{
			ClassFraction: float64(p.part.ClassFrac[g]),
			Samples:       int(p.part.Samples[g]),
			Quality:       float64(p.part.Quality[g]),
		}
		devices[v] = DeviceState{
			Device:        &devs[v],
			Load:          load,
			BandwidthMbps: bw,
			Signal:        network.SignalFor(bw),
			Data:          &dd[v],
		}
		if e.async != nil {
			// Reads only: async bookkeeping mutates lastStale during
			// aggregation, never during the parallel observe pass.
			devices[v].Staleness = int(e.async.lastStale[g])
		}
		if e.batt != nil {
			// Candidate indices are distinct and shard-partitioned, so
			// the per-device settle mutation never races.
			e.observeBattery(&devices[v], g, devs[v].Spec.IdleWatts())
		}
	}
}

// runRoundPop is the population-mode round engine: the legacy round
// logic specialized to a sampled candidate view with O(archetypes)
// fleet-wide energy aggregation.
func (e *Engine) runRoundPop(pol Policy, round int, accuracy float64, sc *roundScratch) (*RoundContext, *RoundResult) {
	p := e.pop
	ctx := e.observePop(sc, round, accuracy)
	selections := sanitize(sc, ctx, pol.Select(ctx))
	participants := len(selections)

	traits := AggregationTraits{}
	if tp, ok := pol.(TraitsPolicy); ok {
		traits = tp.Traits()
	}

	k := len(ctx.Devices)
	res := &sc.res
	devRounds := res.Devices
	if cap(devRounds) < k {
		devRounds = make([]DeviceRound, k)
	}
	devRounds = devRounds[:k]
	*res = RoundResult{
		Round:        round,
		Participants: participants,
		PrevAccuracy: accuracy,
		Devices:      devRounds,
	}
	for v := range res.Devices {
		res.Devices[v] = DeviceRound{Index: int(sc.cand[v])}
	}
	if e.batt != nil {
		res.BatteryAvailable, res.BatteryDepleted, res.BatteryMeanFrac = battViewStats(ctx.Devices)
	}

	// Post-selection actual loads, from per-(round, device) keyed
	// streams: the surprise co-runner draw is a function of device
	// identity, not of selection order.
	for _, sel := range selections {
		dr := &res.Devices[sel.Index]
		dr.Selected = true
		dr.Target = sel.Target
		dr.Step = sel.Step
		g := dr.Index
		st := p.actRng.Seed(rng.Mix(p.actSeed, uint64(round), uint64(g)))
		actual := e.cfg.Env.Interference.Actual(st, ctx.Devices[sel.Index].Load)
		dr.CompSec, dr.CommSec = ctx.estimateWithLoad(sel.Index, sel.Target, sel.Step, actual)
	}

	// Straggler deadline from expected clean completion, as in the
	// legacy path.
	deadline := math.Inf(1)
	if len(selections) > 0 {
		clean := sc.clean[:0]
		for _, sel := range selections {
			comp, comm := ctx.CleanCompletionTime(sel.Index)
			clean = append(clean, comp+comm)
		}
		sc.clean = clean
		deadline = e.cfg.StragglerFactor * median(clean)
	}
	res.Deadline = deadline

	roundSec := e.resolveBarrier(selections, res, deadline, traits)
	if len(selections) == 0 {
		roundSec = e.cfg.Env.Network.BaseLatencySec
	}
	res.RoundSec = roundSec
	e.vnow += roundSec
	res.VirtualSec = e.vnow

	// Fleet-wide energy in O(participants): the idle baseline is the
	// population idle draw for the round, minus the participants' own
	// idle share, plus their measured round energy. Unselected
	// candidates get their idle record filled for observability.
	idleBase := p.fleetIdle * roundSec
	for v := range res.Devices {
		dr := &res.Devices[v]
		if !dr.Selected {
			dr.EnergyJ = power.IdleEnergy(ctx.Devices[v].Device.Spec.IdleWatts(), roundSec)
		}
	}
	participantIdle := 0.0
	for _, sel := range selections {
		dr := &res.Devices[sel.Index]
		ds := &ctx.Devices[sel.Index]
		comp, comm := dr.CompSec, dr.CommSec
		if dr.Dropped {
			budget := math.Max(0, deadline-dr.CommSec)
			comp = math.Min(comp, budget)
			if !traits.PartialUpdates {
				comm = math.Min(comm, deadline)
			}
		}
		spec := ds.Device.Spec
		setup := math.Min(spec.SetupSec, comp)
		dr.EnergyJ = power.ParticipantRoundEnergy(spec, dr.Target, dr.Step, ds.Signal, power.Phases{
			SetupSec:  setup,
			CrunchSec: comp - setup,
			CommSec:   comm,
			RoundSec:  roundSec,
		})
		res.EnergyParticipantsJ += dr.EnergyJ
		idle := spec.IdleWatts() * roundSec
		participantIdle += idle
		g := dr.Index
		p.extraJ[g] += dr.EnergyJ - idle
		p.lastStep[g] = int8(dr.Step)
		p.lastTarget[g] = int8(dr.Target)
		if e.batt != nil {
			e.batt.model.Drain(g, dr.EnergyJ-idle)
			e.batt.participate(g)
		}
	}
	res.EnergyTotalJ = idleBase - participantIdle + res.EnergyParticipantsJ
	p.idleSec += roundSec
	if e.batt != nil {
		res.ParticipationJain = e.batt.jain()
	}

	res.Accuracy = e.advancePop(ctx, res, traits)
	return ctx, res
}

// advancePop is the convergence step over the candidate view: the same
// accuracy dynamics as convergenceModel.advance, with class coverage
// from OR-ed packed masks and selection stability from the lazy
// participation memory — O(kept updates) instead of O(fleet).
func (e *Engine) advancePop(ctx *RoundContext, res *RoundResult, traits AggregationTraits) float64 {
	m := e.conv
	p := e.pop
	acc := res.PrevAccuracy

	mass, qualMass, stability := 0.0, 0.0, 0.0
	var orMask uint64
	keptCount := 0
	for v := range res.Devices {
		dr := &res.Devices[v]
		if dr.UpdateFraction <= 0 {
			continue
		}
		g := dr.Index
		samples := float64(p.part.Samples[g])
		if traits.NormalizedWeights {
			samples = float64(ctx.Workload.Dataset.SamplesPerDevice)
		}
		w := dr.UpdateFraction * float64(ctx.Params.E) * samples
		mass += w
		q := float64(p.part.Quality[g])
		if traits.DivergenceDamping > 0 {
			q += traits.DivergenceDamping * (1 - q)
			if q > 1 {
				q = 1
			}
		}
		qualMass += w * q
		keptCount++
		orMask |= p.part.Mask[g]
		stability += p.emaAt(g, res.Round)
		p.emaBump(g, res.Round)
	}
	if mass <= 0 {
		return acc
	}
	meanQ := qualMass / mass
	coverage := p.part.Coverage(orMask)
	stability /= float64(keptCount)
	if stability > 1 {
		stability = 1
	}
	roundQ := meanQ + (1-meanQ)*stabilityWeight*stability*coverage
	effCeiling := m.floor + plateau(roundQ)*(m.ceiling-m.floor)
	rate := m.baseRate * math.Pow(mass/m.referenceMass, massExponent)
	rate *= math.Pow(roundQ, qualityRateExp)
	rate *= 1 + e.accRng.Normal(0, m.noiseSigma)
	if rate < 0 {
		rate = 0
	}
	if rate > 0.5 {
		rate = 0.5
	}
	if effCeiling > acc {
		acc += rate * (effCeiling - acc)
	} else {
		acc -= regressFraction * rate * (acc - effCeiling)
	}
	if acc < m.floor {
		acc = m.floor
	}
	if acc > m.ceiling {
		acc = m.ceiling
	}
	return acc
}

// PackedData exposes the population-mode data partition (nil for
// legacy fleet configs), the cohort counterpart of Partition.
func (e *Engine) PackedData() *data.Packed {
	if e.pop == nil {
		return nil
	}
	return e.pop.part
}

// PopulationMemoryBytes is the resident per-device state of the
// population engine: the packed partition, the participation memory,
// the last-action record, the cumulative-energy accumulator, and the
// sampler's index array. Zero for legacy fleet configs.
func (e *Engine) PopulationMemoryBytes() int {
	p := e.pop
	if p == nil {
		return 0
	}
	perDevice := len(p.emaW)*4 + len(p.emaRound)*4 + len(p.lastStep) +
		len(p.lastTarget) + len(p.extraJ)*8 + p.sampler.Len()*4
	if e.async != nil {
		// Asynchronous regimes add two packed bytes per device: the
		// busy flag and the last-staleness record.
		perDevice += len(e.async.busy) + len(e.async.lastStale)
	}
	if e.batt != nil {
		// The battery subsystem adds 12 bytes per device: the packed
		// charge/settle-time pair plus the participation count.
		perDevice += e.batt.model.MemoryBytes() + len(e.batt.partCount)*4
	}
	return p.part.MemoryBytes() + perDevice
}

// DeviceSnapshot reports population-mode per-device dynamic state: the
// last executed action (step -1 if the device was never selected) and
// the device's exact cumulative energy over all executed rounds,
// reconstructed in O(1) from the packed accumulators. ok is false for
// legacy fleet configs or out-of-range indices.
func (e *Engine) DeviceSnapshot(i int) (step int, target device.Target, energyJ float64, ok bool) {
	p := e.pop
	if p == nil || i < 0 || i >= p.n {
		return 0, 0, 0, false
	}
	idle := p.pop.Spec(i).IdleWatts() * p.idleSec
	return int(p.lastStep[i]), device.Target(p.lastTarget[i]), p.extraJ[i] + idle, true
}
