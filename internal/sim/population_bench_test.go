package sim_test

import (
	"testing"

	"autofl/internal/data"
	"autofl/internal/policy"
	"autofl/internal/sim"
)

// benchmarkPopulationRound measures steady-state sampled rounds over
// an n-device population and reports devices/sec of round throughput —
// the population engine's headline number. Partition generation and
// engine construction are excluded from the timer.
func benchmarkPopulationRound(b *testing.B, n int) {
	sample := 4096
	if sample > n {
		sample = n
	}
	cfg := popConfig(b, n, sample, 0, 1)
	cfg.Data = data.IdealIID
	cfg.MaxRounds = 1 << 16
	cfg.TargetAccuracy = 1 // unreachable: rounds never stop early
	eng := mustEngine(b, cfg)
	run := eng.Start(policy.NewRandom(2))
	if !run.Step() {
		b.Fatal("run ended immediately")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !run.Step() {
			b.StopTimer()
			run = eng.Start(policy.NewRandom(2))
			b.StartTimer()
			if !run.Step() {
				b.Fatal("fresh run ended immediately")
			}
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/sec, "devices/sec")
		b.ReportMetric(float64(sample)*float64(b.N)/sec, "candidates/sec")
	}
}

func BenchmarkPopulationRound1k(b *testing.B)   { benchmarkPopulationRound(b, 1_000) }
func BenchmarkPopulationRound100k(b *testing.B) { benchmarkPopulationRound(b, 100_000) }
func BenchmarkPopulationRound1M(b *testing.B)   { benchmarkPopulationRound(b, 1_000_000) }

// BenchmarkLegacyFleetRound is the baseline the cohort path is
// measured against: the exhaustive 200-device pointer-fleet round.
func BenchmarkLegacyFleetRound(b *testing.B) {
	cfg := stepperConfig(1, 1<<16)
	cfg.Data = data.IdealIID
	cfg.TargetAccuracy = 1
	run := sim.New(cfg).Start(policy.NewRandom(2))
	if !run.Step() {
		b.Fatal("run ended immediately")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !run.Step() {
			b.StopTimer()
			run = sim.New(cfg).Start(policy.NewRandom(2))
			b.StartTimer()
			if !run.Step() {
				b.Fatal("fresh run ended immediately")
			}
		}
	}
}
