package sim

import (
	"math"
	"testing"

	"autofl/internal/rng"
)

func TestMedianEmpty(t *testing.T) {
	if got := median(nil); got != 0 {
		t.Errorf("median(nil) = %v, want 0", got)
	}
	if got := median([]float64{3}); got != 3 {
		t.Errorf("median of one = %v, want 3", got)
	}
}

// TestLazyEMAMatchesEagerSweep pins the population path's lazy
// participation memory against the legacy eager decay sweep: for any
// participation pattern, the weight read at round t (before that
// round's update) must match, and so must the floor-to-zero behavior.
func TestLazyEMAMatchesEagerSweep(t *testing.T) {
	const devices, rounds = 10, 200
	p := &popState{
		emaW:     make([]float32, devices),
		emaRound: make([]int32, devices),
	}
	eager := make([]float64, devices)
	s := rng.New(99)

	for round := 1; round <= rounds; round++ {
		// A sparse, shifting cohort: long gaps exercise the pow-decay
		// path and the 1e-6 floor.
		participating := make(map[int]bool)
		for i := 0; i < devices; i++ {
			if s.Bool(0.15) {
				participating[i] = true
			}
		}
		for g := range participating {
			lazy := p.emaAt(g, round)
			want := eager[g]
			// float32 storage plus pow-vs-repeated-multiply rounding.
			if math.Abs(lazy-want) > 1e-5*(1+want) {
				t.Fatalf("round %d device %d: lazy %v, eager %v", round, g, lazy, want)
			}
			p.emaBump(g, round)
		}
		// The legacy sweep: decay everyone, bump participants, floor.
		for i := range eager {
			w := eager[i] * emaDecay
			if participating[i] {
				w += 1 - emaDecay
			}
			if w < 1e-6 {
				w = 0
			}
			eager[i] = w
		}
	}
}
