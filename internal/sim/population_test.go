package sim_test

import (
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"

	"autofl/internal/data"
	"autofl/internal/device"
	"autofl/internal/policy"
	"autofl/internal/sim"
	"autofl/internal/workload"
)

func mustPopulation(tb testing.TB, high, mid, low int) *device.Population {
	tb.Helper()
	p, err := device.NewPopulation(high, mid, low)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// tieredPopulation builds an n-device population in the paper's
// 15/35/50 tier mix.
func tieredPopulation(tb testing.TB, n int) *device.Population {
	tb.Helper()
	high, mid := n*15/100, n*35/100
	return mustPopulation(tb, high, mid, n-high-mid)
}

func popConfig(tb testing.TB, n, sample, shards int, seed uint64) sim.Config {
	tb.Helper()
	return sim.Config{
		Workload:   workload.CNNMNIST(),
		Params:     workload.S3,
		Population: tieredPopulation(tb, n),
		Sample:     sample,
		Shards:     shards,
		Data:       data.NonIID50,
		Env:        sim.EnvField(),
		Seed:       seed,
		MaxRounds:  60,
	}
}

func mustEngine(tb testing.TB, cfg sim.Config) *sim.Engine {
	tb.Helper()
	e, err := sim.NewEngine(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// TestExhaustivePopulationMatchesFleet pins the tentpole's
// byte-identity contract: a Population config with Sample == 0
// materializes the fleet and reproduces the legacy path exactly.
func TestExhaustivePopulationMatchesFleet(t *testing.T) {
	base := stepperConfig(17, 80)
	base.Fleet = device.NewFleet(6, 14, 20)
	legacy := sim.New(base).Run(policy.NewRandom(5))

	cohort := base
	cohort.Fleet = nil
	cohort.Population = mustPopulation(t, 6, 14, 20)
	packed := sim.New(cohort).Run(policy.NewRandom(5))

	if !reflect.DeepEqual(legacy, packed) {
		t.Errorf("exhaustive population run differs from fleet run:\nfleet: %+v\npop:   %+v", legacy, packed)
	}
}

func TestSampledPopulationDeterminism(t *testing.T) {
	cfg := popConfig(t, 3000, 600, 0, 11)
	a := mustEngine(t, cfg).Run(policy.NewRandom(3))
	b := mustEngine(t, cfg).Run(policy.NewRandom(3))
	if !reflect.DeepEqual(a, b) {
		t.Error("same-seed sampled runs differ")
	}
}

// TestSampledShardInvariance pins the keyed-stream design: the shard
// count is a throughput knob, never an output knob. The pool exceeds
// the serial threshold so the 4-shard run really runs parallel.
func TestSampledShardInvariance(t *testing.T) {
	serial := popConfig(t, 5000, 2048, 1, 23)
	sharded := serial
	sharded.Shards = 4
	a := mustEngine(t, serial).Run(policy.NewRandom(3))
	b := mustEngine(t, sharded).Run(policy.NewRandom(3))
	if !reflect.DeepEqual(a, b) {
		t.Error("Shards=1 and Shards=4 runs differ")
	}
}

// TestSampleClampsToPopulation: a Sample beyond the population size
// behaves exactly as Sample == n.
func TestSampleClampsToPopulation(t *testing.T) {
	over := popConfig(t, 500, 10_000, 1, 7)
	exact := popConfig(t, 500, 500, 1, 7)
	a := mustEngine(t, over).Run(policy.NewRandom(3))
	b := mustEngine(t, exact).Run(policy.NewRandom(3))
	if !reflect.DeepEqual(a, b) {
		t.Error("clamped oversized Sample differs from Sample == n")
	}
}

// TestConfigValidation pins the typed-error surface of NewEngine: each
// degenerate config fails with a ConfigError naming the field, instead
// of an index panic rounds later.
func TestConfigValidation(t *testing.T) {
	pop := mustPopulation(t, 3, 7, 10)
	cases := []struct {
		name  string
		cfg   sim.Config
		field string
	}{
		{"empty fleet", sim.Config{Fleet: device.Fleet{}}, "Fleet"},
		{"K exceeds fleet", sim.Config{
			Fleet:  device.NewFleet(1, 1, 1),
			Params: workload.GlobalParams{B: 20, E: 5, K: 5},
		}, "Params.K"},
		{"non-positive K", sim.Config{
			Params: workload.GlobalParams{B: 20, E: 5, K: -1},
		}, "Params.K"},
		{"negative B", sim.Config{
			Params: workload.GlobalParams{B: -1, E: 5, K: 5},
		}, "Params"},
		{"negative Sample", sim.Config{Population: pop, Sample: -1}, "Sample"},
		{"negative Shards", sim.Config{Population: pop, Shards: -1}, "Shards"},
		{"Sample without Population", sim.Config{Sample: 64}, "Sample"},
		{"Sample below K", sim.Config{
			Population: pop,
			Params:     workload.GlobalParams{B: 20, E: 5, K: 10},
			Sample:     5,
		}, "Sample"},
		{"K exceeds population", sim.Config{
			Population: pop,
			Params:     workload.GlobalParams{B: 20, E: 5, K: 50},
		}, "Params.K"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := sim.NewEngine(tc.cfg)
			if err == nil {
				t.Fatal("degenerate config accepted")
			}
			var ce *sim.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Errorf("error names field %q, want %q (%v)", ce.Field, tc.field, err)
			}
		})
	}

	if _, err := sim.NewEngine(sim.Config{
		Fleet:      device.NewFleet(1, 1, 1),
		Population: pop,
	}); err == nil {
		t.Error("Fleet+Population accepted; they are mutually exclusive")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with an invalid config did not panic")
		}
	}()
	sim.New(sim.Config{Fleet: device.Fleet{}})
}

// TestDeviceSnapshotConservesEnergy pins the O(1) cumulative-energy
// reconstruction: summing DeviceSnapshot over the whole population
// must equal the summed per-round fleet energy the trace reports.
func TestDeviceSnapshotConservesEnergy(t *testing.T) {
	cfg := popConfig(t, 400, 128, 1, 31)
	cfg.MaxRounds = 40
	eng := mustEngine(t, cfg)
	res := eng.Run(policy.NewRandom(9))

	var traced float64
	for _, rt := range res.Trace {
		traced += rt.EnergyJ
	}
	var snap float64
	for i := 0; i < 400; i++ {
		_, _, e, ok := eng.DeviceSnapshot(i)
		if !ok {
			t.Fatalf("DeviceSnapshot(%d) not ok", i)
		}
		snap += e
	}
	if diff := math.Abs(snap-traced) / traced; diff > 1e-9 {
		t.Errorf("snapshot energy %v vs traced %v (rel diff %v)", snap, traced, diff)
	}

	if _, _, _, ok := eng.DeviceSnapshot(-1); ok {
		t.Error("negative index reported ok")
	}
	if _, _, _, ok := eng.DeviceSnapshot(400); ok {
		t.Error("out-of-range index reported ok")
	}
	legacy := sim.New(stepperConfig(1, 5))
	if _, _, _, ok := legacy.DeviceSnapshot(0); ok {
		t.Error("legacy fleet engine reported a population snapshot")
	}
}

// TestPopulationRoundAllocs pins the zero-alloc steady state of the
// sampled round path (serial shards: the parallel observe pass spawns
// goroutines by design, which the benchmark covers instead).
func TestPopulationRoundAllocs(t *testing.T) {
	cfg := popConfig(t, 2000, 512, 1, 3)
	cfg.MaxRounds = 1000
	cfg.TargetAccuracy = 1 // unreachable: the run never ends early
	run := mustEngine(t, cfg).Start(policy.NewRandom(9))
	for i := 0; i < 3; i++ {
		if !run.Step() {
			t.Fatal("run ended during warmup")
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if !run.Step() {
			t.Fatal("run ended mid-measurement")
		}
	})
	if avg != 0 {
		t.Errorf("steady-state population round allocates %v objects, want 0", avg)
	}
}

// TestMillionDeviceMemoryBudget is the tentpole's resident-state pin:
// one million devices within 64 bytes each, measured both by the
// engine's own accounting and by the heap.
func TestMillionDeviceMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-device smoke skipped in -short")
	}
	const n = 1_000_000
	cfg := popConfig(t, n, 4096, 0, 5)
	cfg.Data = data.IdealIID // partition generation dominates otherwise
	cfg.MaxRounds = 3

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	eng := mustEngine(t, cfg)
	res := eng.Run(policy.NewRandom(1))
	runtime.GC()
	runtime.ReadMemStats(&after)

	if res.Rounds != 3 {
		t.Fatalf("executed %d rounds, want 3", res.Rounds)
	}
	if got := eng.PopulationMemoryBytes(); got > 48*n {
		t.Errorf("accounted resident state %d B = %.1f B/device, budget 48", got, float64(got)/n)
	}
	if delta := int64(after.HeapAlloc) - int64(before.HeapAlloc); delta > 64*n {
		t.Errorf("heap grew %d B = %.1f B/device, budget 64", delta, float64(delta)/n)
	}
	runtime.KeepAlive(eng)
}
