package sim

// This file is the stepwise half of the engine: Engine.Run inverted
// into an iterator-style Run that callers drive one aggregation round
// at a time. The public autofl.Session, the live -progress output of
// cmd/autoflsim, and the traced sweep runner are all built on it;
// Engine.Run itself is a Start/Step/Result loop.

import "autofl/internal/device"

// RoundInfo summarizes the most recently stepped round of a Run — the
// per-round view an observer sees, assembled from engine-owned scratch
// without allocating.
type RoundInfo struct {
	// Round is the 1-based index of the round that just completed.
	Round int
	// Accuracy is the global-model accuracy after the round.
	Accuracy float64
	// RoundSec is the round's wall-clock duration.
	RoundSec float64
	// EnergyJ and ParticipantEnergyJ are the round's fleet-wide and
	// participants-only energies.
	EnergyJ            float64
	ParticipantEnergyJ float64
	// Participants counts selected devices; Kept the updates that
	// reached aggregation; Dropped the deadline-missing stragglers.
	Participants, Kept, Dropped int
	// VirtualSec is the virtual clock after the round (cumulative
	// round seconds).
	VirtualSec float64
	// Pending counts updates still in flight after the round's
	// aggregation; MeanStaleness averages the staleness of the
	// updates it applied. Both are 0 in synchronous runs.
	Pending       int
	MeanStaleness float64
	// BatteryAvailable, BatteryDepleted, and BatteryMeanCharge
	// summarize the candidate view's battery state at observation:
	// devices meeting the participation threshold, devices at zero
	// charge, and the mean state of charge in [0, 1].
	// ParticipationJain is Jain's fairness index over cumulative
	// per-device participation counts. All zero without a battery
	// model.
	BatteryAvailable  int
	BatteryDepleted   int
	BatteryMeanCharge float64
	ParticipationJain float64
	// Converged reports whether this round reached the accuracy
	// target (and therefore ended the run).
	Converged bool
}

// Run is an in-progress, stepwise execution of one policy on an
// Engine: the open-loop form of Engine.Run. Create one with
// Engine.Start, advance it with Step, inspect progress with Last and
// Snapshot, and finish with Result.
//
// A Run owns its engine's RNG streams and round scratch: use one Run
// per Engine, and do not interleave it with Engine.Run or RunRound
// calls on the same engine.
type Run struct {
	e     *Engine
	p     Policy
	fb    FeedbackPolicy
	hasFb bool
	acc   float64
	last  RoundInfo
	out   Result
	// staleSum accumulates per-round mean staleness for the run-level
	// average.
	staleSum float64
	done     bool
}

// Start opens a stepwise run of the policy. The result buffers are
// preallocated to the full horizon so steady-state Step performs no
// allocation.
func (e *Engine) Start(p Policy) *Run {
	r := &Run{
		e:   e,
		p:   p,
		acc: e.cfg.Workload.AccuracyFloor,
		out: Result{
			Policy:         p.Name(),
			TargetAccuracy: e.cfg.TargetAccuracy,
			AccuracyFloor:  e.cfg.Workload.AccuracyFloor,
			AccuracyTrace:  make([]float64, 0, e.cfg.MaxRounds),
			Trace:          make([]RoundTrace, 0, e.cfg.MaxRounds),
		},
	}
	r.fb, r.hasFb = p.(FeedbackPolicy)
	return r
}

// Step executes one aggregation round, feeds learning policies their
// feedback, and folds the round into the accumulating result. It
// reports false — executing nothing — once the run has finished:
// target reached, horizon exhausted, or Result already called.
func (r *Run) Step() bool {
	if r.done {
		return false
	}
	round := r.out.Rounds
	ctx, res := r.e.runRound(r.p, round, r.acc, &r.e.scratch)
	if r.hasFb {
		r.fb.Feedback(ctx, res)
	}
	r.acc = res.Accuracy
	r.out.Rounds++
	r.out.AccuracyTrace = append(r.out.AccuracyTrace, r.acc)
	r.out.Trace = append(r.out.Trace, RoundTrace{
		Sec:                res.RoundSec,
		EnergyJ:            res.EnergyTotalJ,
		ParticipantEnergyJ: res.EnergyParticipantsJ,
		MeanStale:          res.MeanStaleness,
		Jain:               res.ParticipationJain,
		BatteryFrac:        res.BatteryMeanFrac,
	})
	r.staleSum += res.MeanStaleness
	r.out.TimeToTargetSec += res.RoundSec
	r.out.EnergyToTargetJ += res.EnergyTotalJ
	r.out.ParticipantEnergyToTargetJ += res.EnergyParticipantsJ
	converged := false
	if !r.out.Converged && r.acc >= r.e.cfg.TargetAccuracy {
		r.out.Converged = true
		r.out.ConvergedRound = round + 1
		converged = true
		r.done = true
	}
	if r.out.Rounds >= r.e.cfg.MaxRounds {
		r.done = true
	}
	r.last = RoundInfo{
		Round:              round + 1,
		Accuracy:           r.acc,
		RoundSec:           res.RoundSec,
		EnergyJ:            res.EnergyTotalJ,
		ParticipantEnergyJ: res.EnergyParticipantsJ,
		Participants:       res.Participants,
		Kept:               res.Kept,
		Dropped:            res.DroppedStragglers,
		VirtualSec:         res.VirtualSec,
		Pending:            res.PendingUpdates,
		MeanStaleness:      res.MeanStaleness,
		BatteryAvailable:   res.BatteryAvailable,
		BatteryDepleted:    res.BatteryDepleted,
		BatteryMeanCharge:  res.BatteryMeanFrac,
		ParticipationJain:  res.ParticipationJain,
		Converged:          converged,
	}
	return true
}

// Done reports whether the run has finished (no further Step will
// execute a round).
func (r *Run) Done() bool { return r.done }

// Rounds is the number of rounds executed so far.
func (r *Run) Rounds() int { return r.out.Rounds }

// Last returns the most recently stepped round's summary; the zero
// value before the first Step.
func (r *Run) Last() RoundInfo { return r.last }

// finalizeInto completes the derived fields of an accumulated result.
func (r *Run) finalizeInto(out *Result) {
	out.FinalAccuracy = r.acc
	if out.Rounds > 0 {
		out.MeanRoundSec = out.TimeToTargetSec / float64(out.Rounds)
		out.MeanRoundEnergyJ = out.EnergyToTargetJ / float64(out.Rounds)
		out.MeanStaleness = r.staleSum / float64(out.Rounds)
	}
	if rt, ok := r.p.(interface{ RewardTrace() []float64 }); ok {
		out.RewardTrace = rt.RewardTrace()
	}
	if r.e.batt != nil {
		out.Battery = &BatteryStats{
			ParticipationJain: r.last.ParticipationJain,
			MeanFrac:          r.last.BatteryMeanCharge,
			Available:         r.last.BatteryAvailable,
			Depleted:          r.last.BatteryDepleted,
		}
	}
}

// Snapshot returns the run's result as of the rounds executed so far,
// without ending it: exactly what Result would report for a horizon
// bounded here. The trace slices share backing arrays with the live
// run (their lengths are fixed; later rounds append past them).
func (r *Run) Snapshot() Result {
	out := r.out
	r.finalizeInto(&out)
	return out
}

// Result ends the run — subsequent Step calls execute nothing — and
// returns the finalized result. Stepping to completion first and then
// calling Result reproduces Engine.Run exactly.
func (r *Run) Result() *Result {
	r.done = true
	r.finalizeInto(&r.out)
	return &r.out
}

// PopulationLen is the sampled population's device count, 0 for legacy
// fleet runs. Together with DeviceSnapshot it lets callers stream
// fleet-wide per-device distributions without materializing the fleet.
func (r *Run) PopulationLen() int {
	if r.e.pop == nil {
		return 0
	}
	return r.e.pop.n
}

// DeviceSnapshot exposes the engine's O(1) population-mode per-device
// snapshot (see Engine.DeviceSnapshot) for the run's current state.
func (r *Run) DeviceSnapshot(i int) (step int, target device.Target, energyJ float64, ok bool) {
	return r.e.DeviceSnapshot(i)
}
