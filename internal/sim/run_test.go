package sim_test

import (
	"reflect"
	"testing"

	"autofl/internal/data"
	"autofl/internal/policy"
	"autofl/internal/sim"
	"autofl/internal/workload"
)

func stepperConfig(seed uint64, maxRounds int) sim.Config {
	return sim.Config{
		Workload:  workload.CNNMNIST(),
		Params:    workload.S3,
		Data:      data.NonIID50,
		Env:       sim.EnvField(),
		Seed:      seed,
		MaxRounds: maxRounds,
	}
}

// TestStepperReproducesRun pins the tentpole equivalence at the engine
// level: Start + Step-to-completion + Result is Run, field for field.
func TestStepperReproducesRun(t *testing.T) {
	cfg := stepperConfig(21, 150)
	closed := sim.New(cfg).Run(policy.NewRandom(5))

	run := sim.New(cfg).Start(policy.NewRandom(5))
	steps := 0
	for run.Step() {
		steps++
	}
	stepped := run.Result()

	if steps != closed.Rounds {
		t.Errorf("stepper executed %d rounds, Run executed %d", steps, closed.Rounds)
	}
	if !reflect.DeepEqual(closed, stepped) {
		t.Errorf("stepped result differs from closed-loop Run:\nrun:  %+v\nstep: %+v", closed, stepped)
	}
}

// TestRunPrefixIndependentOfHorizon pins the property the sweep
// cache's horizon-prefix serving rests on: a round depends only on the
// rounds before it, never on MaxRounds, so a short-horizon run is
// exactly the prefix of a long one.
func TestRunPrefixIndependentOfHorizon(t *testing.T) {
	long := sim.New(stepperConfig(33, 300)).Run(policy.NewRandom(7))
	short := sim.New(stepperConfig(33, 120)).Run(policy.NewRandom(7))

	if len(long.Trace) < len(short.Trace) {
		t.Fatalf("long trace (%d) shorter than short trace (%d)", len(long.Trace), len(short.Trace))
	}
	if !reflect.DeepEqual(long.Trace[:len(short.Trace)], short.Trace) {
		t.Error("short-horizon trace is not a prefix of the long-horizon trace")
	}
	if !reflect.DeepEqual(long.AccuracyTrace[:short.Rounds], short.AccuracyTrace) {
		t.Error("short-horizon accuracy trace is not a prefix of the long one")
	}
	// Replaying the prefix sums reproduces the short run's aggregates
	// exactly (same float additions in the same order).
	var sec, energy, part float64
	for _, r := range long.Trace[:short.Rounds] {
		sec += r.Sec
		energy += r.EnergyJ
		part += r.ParticipantEnergyJ
	}
	if sec != short.TimeToTargetSec || energy != short.EnergyToTargetJ || part != short.ParticipantEnergyToTargetJ {
		t.Error("prefix sums do not reproduce the short run's aggregates bit-for-bit")
	}
}

// TestRunTraceRecordsEveryRound checks the per-round trace lines up
// with the accuracy trace and the summed aggregates.
func TestRunTraceRecordsEveryRound(t *testing.T) {
	res := sim.New(stepperConfig(4, 80)).Run(policy.NewRandom(9))
	if len(res.Trace) != res.Rounds || len(res.AccuracyTrace) != res.Rounds {
		t.Fatalf("trace lengths %d/%d, want %d", len(res.Trace), len(res.AccuracyTrace), res.Rounds)
	}
	for i, r := range res.Trace {
		if r.Sec < 0 || r.EnergyJ <= 0 || r.ParticipantEnergyJ < 0 {
			t.Fatalf("round %d: implausible trace record %+v", i, r)
		}
	}
}

// TestSnapshotMatchesBoundedRun checks a mid-run Snapshot equals a
// fresh run bounded at that horizon.
func TestSnapshotMatchesBoundedRun(t *testing.T) {
	run := sim.New(stepperConfig(8, 200)).Start(policy.NewRandom(3))
	for run.Rounds() < 60 {
		if !run.Step() {
			break
		}
	}
	snap := run.Snapshot()
	bounded := sim.New(stepperConfig(8, 60)).Run(policy.NewRandom(3))

	// The snapshot's slices share backing with the live run; compare
	// contents.
	if snap.Rounds != bounded.Rounds ||
		snap.TimeToTargetSec != bounded.TimeToTargetSec ||
		snap.EnergyToTargetJ != bounded.EnergyToTargetJ ||
		snap.FinalAccuracy != bounded.FinalAccuracy ||
		snap.MeanRoundSec != bounded.MeanRoundSec {
		t.Errorf("snapshot at round 60 differs from a 60-round bounded run:\nsnap:    %+v\nbounded: %+v", &snap, bounded)
	}
	if !reflect.DeepEqual(snap.Trace, bounded.Trace) {
		t.Error("snapshot trace differs from the bounded run's")
	}

	// Snapshot must not end the run.
	if run.Done() {
		t.Fatal("run reports done after Snapshot")
	}
	if !run.Step() {
		t.Error("Step after Snapshot executed nothing")
	}
}

// TestRunLastAndDone checks the per-round info and termination
// behavior of the stepper.
func TestRunLastAndDone(t *testing.T) {
	run := sim.New(stepperConfig(2, 30)).Start(policy.NewRandom(1))
	if run.Last() != (sim.RoundInfo{}) {
		t.Error("Last before the first Step should be zero")
	}
	rounds := 0
	for run.Step() {
		rounds++
		info := run.Last()
		if info.Round != rounds {
			t.Fatalf("Last().Round = %d after %d steps", info.Round, rounds)
		}
		if info.Participants == 0 || info.Kept > info.Participants {
			t.Fatalf("implausible participation: %+v", info)
		}
		if info.EnergyJ <= 0 {
			t.Fatalf("round %d reports no energy", rounds)
		}
	}
	if !run.Done() {
		t.Error("run not done after Step returned false")
	}
	if run.Step() {
		t.Error("Step after done executed a round")
	}
	res := run.Result()
	if res.Rounds != rounds {
		t.Errorf("result rounds %d, stepped %d", res.Rounds, rounds)
	}

	// Result ends a run early: no further steps execute.
	early := sim.New(stepperConfig(2, 30)).Start(policy.NewRandom(1))
	early.Step()
	r := early.Result()
	if r.Rounds != 1 {
		t.Errorf("early Result rounds = %d, want 1", r.Rounds)
	}
	if early.Step() {
		t.Error("Step after Result executed a round")
	}
}

// TestResultStringNeverConverged pins the distinct never-converged
// rendering: round 0 must not appear as a convergence round.
func TestResultStringNeverConverged(t *testing.T) {
	stalled := &sim.Result{Policy: "p", Rounds: 40}
	if s := stalled.String(); s != "p: acc=0.000 converged=never (40 rounds) time=0s energy=0J" {
		t.Errorf("stalled rendering = %q", s)
	}
	converged := &sim.Result{Policy: "p", Converged: true, ConvergedRound: 7, Rounds: 7}
	if s := converged.String(); s != "p: acc=0.000 converged=round 7 time=0s energy=0J" {
		t.Errorf("converged rendering = %q", s)
	}
	// Converged with no recorded round (a reconstructed result) falls
	// back to the executed count instead of claiming round 0.
	odd := &sim.Result{Policy: "p", Converged: true, Rounds: 12}
	if s := odd.String(); s != "p: acc=0.000 converged=round 12 time=0s energy=0J" {
		t.Errorf("round-fallback rendering = %q", s)
	}
}
