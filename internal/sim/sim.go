// Package sim is the federated-learning round engine: it orchestrates
// the FedAvg aggregation loop of Fig 2 (select → broadcast → local
// train → upload → aggregate) over a heterogeneous device fleet with
// stochastic runtime variance, accounting time and energy with the
// models of internal/device, internal/power, internal/network and
// internal/interference, and advancing model accuracy with an analytic
// FedAvg convergence model (convergence.go).
//
// Selection policies — the paper's baselines, the oracles, and the
// AutoFL controller — plug in through the Policy interface.
package sim

import (
	"fmt"
	"math"

	"autofl/internal/battery"
	"autofl/internal/data"
	"autofl/internal/device"
	"autofl/internal/interference"
	"autofl/internal/network"
	"autofl/internal/power"
	"autofl/internal/rng"
	"autofl/internal/sim/vtime"
	"autofl/internal/workload"
)

// AggregationMode selects the server's aggregation regime.
type AggregationMode string

const (
	// ModeSync is the paper's bulk-synchronous FedAvg: every round
	// waits for its cohort (or the straggler deadline) before
	// aggregating. The empty string defaults to it.
	ModeSync AggregationMode = "sync"
	// ModeAsync applies each device update the moment it arrives,
	// discounted by staleness (APPFL/FedAsync-style): one aggregation
	// step per arrival, no barrier, no drops.
	ModeAsync AggregationMode = "async"
	// ModeSemiAsync aggregates when AggregateK updates have arrived or
	// the aggregation deadline expires; stragglers are not dropped —
	// their updates roll into the next model version with higher
	// staleness.
	ModeSemiAsync AggregationMode = "semi-async"
)

// Env bundles the runtime-variance sources of one execution
// environment (§3.2): on-device interference and network conditions.
type Env struct {
	Interference interference.Model
	Network      network.Profile
}

// EnvIdeal is the no-variance environment of Fig 5(a)/Fig 10(a).
func EnvIdeal() Env {
	return Env{Interference: interference.None(), Network: network.Stable()}
}

// EnvInterference adds the web-browsing co-runner (Fig 5b / Fig 10b).
func EnvInterference() Env {
	return Env{Interference: interference.Default(), Network: network.Stable()}
}

// EnvWeakNetwork degrades the wireless link (Fig 5c / Fig 10c).
func EnvWeakNetwork() Env {
	return Env{Interference: interference.None(), Network: network.Weak()}
}

// EnvField combines both variance sources — the default deployment.
func EnvField() Env {
	return Env{Interference: interference.Default(), Network: network.Variable()}
}

// Config fully describes one FL run.
type Config struct {
	// Workload is the model being trained.
	Workload *workload.Model
	// Params is the (B, E, K) tuple of Table 5.
	Params workload.GlobalParams
	// Fleet is the candidate device population (defaults to the
	// paper's 200-device fleet). Mutually exclusive with Population.
	Fleet device.Fleet
	// Population is the cohort form of the fleet: an archetype table
	// plus packed per-device state, sized for million-device
	// populations. With Sample == 0 the engine materializes it into a
	// Fleet and runs the exhaustive path — byte-identical to the
	// equivalent Fleet config; with Sample > 0 it runs the sampled
	// population path (see population.go).
	Population *device.Population
	// Sample is the per-round candidate-pool size in population mode:
	// each round the engine draws Sample candidates uniformly from the
	// population and policies select K participants among them, so
	// candidate scoring is O(Sample) rather than O(fleet). It must be
	// at least Params.K; values above the population size are clamped.
	// Zero selects the exhaustive path.
	Sample int
	// Shards is the population path's observe-pass parallelism; 0
	// selects min(GOMAXPROCS, 16). Results are independent of the
	// shard count (all per-device draws are keyed by identity), so
	// Shards is purely a throughput knob.
	Shards int
	// Data is the data-heterogeneity scenario.
	Data data.Scenario
	// Env is the runtime-variance environment.
	Env Env
	// Seed drives all stochastic draws; equal seeds reproduce runs
	// exactly.
	Seed uint64
	// MaxRounds bounds the run (the paper uses 1000 as the
	// does-not-converge horizon).
	MaxRounds int
	// TargetAccuracy ends the run when reached; 0 selects the
	// workload's default target (TargetFraction of the way from floor
	// to ceiling).
	TargetAccuracy float64
	// StragglerFactor sets the reporting deadline as a multiple of the
	// median expected completion time among participants; slower
	// devices are dropped from the aggregation (§3.2). Zero selects
	// DefaultStragglerFactor.
	StragglerFactor float64
	// Mode selects the aggregation regime: ModeSync (default),
	// ModeAsync, or ModeSemiAsync. The asynchronous regimes resolve
	// device completions through the virtual-time event queue
	// (internal/sim/vtime) instead of a round barrier.
	Mode AggregationMode
	// StalenessAlpha is the α of the asynchronous staleness discount
	// 1/(1+s)^α applied to an update dispatched s model versions ago.
	// Zero selects DefaultStalenessAlpha in the async regimes; setting
	// it with ModeSync is a ConfigError.
	StalenessAlpha float64
	// AggregateK is the semi-async aggregation quorum: the server
	// aggregates as soon as this many updates have arrived. Zero
	// selects ceil(K/2). Only valid with ModeSemiAsync.
	AggregateK int
	// AggregateDeadlineSec bounds how long a semi-async aggregation
	// step waits for its quorum; on expiry the server aggregates
	// whatever arrived and stragglers roll into the next version. Zero
	// derives a deadline per step from the in-flight cohort's clean
	// completion times (StragglerFactor × median). Only valid with
	// ModeSemiAsync.
	AggregateDeadlineSec float64
	// Battery attaches the per-device battery model (internal/battery):
	// devices drain by their measured round energy plus idle draw,
	// optionally harvest in virtual time, and fall out of the candidate
	// set while below the participation threshold. Nil disables the
	// subsystem entirely and reproduces the pre-battery engine byte for
	// byte.
	Battery *battery.Spec
}

// Defaults used when Config fields are zero.
const (
	DefaultMaxRounds       = 1000
	DefaultStragglerFactor = 2.0
	// DefaultStalenessAlpha is the async staleness-discount exponent
	// when Config.StalenessAlpha is zero: stale updates still help, at
	// 1/sqrt-ish decaying weight.
	DefaultStalenessAlpha = 0.5
	// TargetFraction positions the default accuracy target between the
	// workload's floor and ceiling. It sits high enough that heavily
	// non-IID populations under random selection plateau below it
	// (Fig 11c/d) while learned stable cohorts clear it.
	TargetFraction = 0.94
)

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workload == nil {
		out.Workload = workload.CNNMNIST()
	}
	if out.Params == (workload.GlobalParams{}) {
		out.Params = workload.S3
	}
	if out.Fleet == nil && out.Population == nil {
		out.Fleet = device.DefaultFleet()
	}
	if out.Population != nil && out.Sample > out.Population.Len() {
		out.Sample = out.Population.Len()
	}
	if out.Data.Name == "" {
		out.Data = data.IdealIID
	}
	if out.Env.Network.Name == "" {
		out.Env = EnvField()
	}
	if out.MaxRounds <= 0 {
		out.MaxRounds = DefaultMaxRounds
	}
	if out.TargetAccuracy <= 0 {
		w := out.Workload
		out.TargetAccuracy = w.AccuracyFloor + TargetFraction*(w.AccuracyCeiling-w.AccuracyFloor)
	}
	if out.StragglerFactor <= 0 {
		out.StragglerFactor = DefaultStragglerFactor
	}
	if out.Mode == "" {
		out.Mode = ModeSync
	}
	if out.Mode != ModeSync && out.StalenessAlpha == 0 {
		out.StalenessAlpha = DefaultStalenessAlpha
	}
	if out.Mode == ModeSemiAsync && out.AggregateK == 0 {
		out.AggregateK = (out.Params.K + 1) / 2
	}
	if out.Battery != nil {
		// Copy before defaulting: the caller's spec stays untouched.
		b := out.Battery.WithDefaults()
		out.Battery = &b
	}
	return out
}

// DeviceState is the per-round observed condition of one device — what
// the de-facto FL protocol reports to the server (§4 footnote 3) and
// what selection policies may inspect.
type DeviceState struct {
	// Device is the fleet entry.
	Device *device.Device
	// Load is the co-runner activity this round.
	Load interference.Load
	// BandwidthMbps is this round's sampled link bandwidth.
	BandwidthMbps float64
	// Signal is the corresponding signal-strength tier.
	Signal power.Signal
	// Data summarizes the local dataset (static across rounds).
	Data *data.DeviceData
	// Staleness is the model-version staleness of the device's most
	// recently applied update (0 before any arrival and in ModeSync).
	// The AutoFL controller buckets it into its packed state, so the
	// Q-table can learn the async regime's in-flight dynamics.
	Staleness int
	// Battery is the device's battery state of charge in [0, 1] at
	// observation time; 0 when the run has no battery model.
	Battery float64
	// Unavailable marks a device whose charge is below the battery
	// participation threshold: sanitize excludes it from selection, so
	// policies may skip it but cannot force it in. Always false without
	// a battery model.
	Unavailable bool
}

// RoundContext is everything a policy sees when selecting participants
// for one aggregation round.
type RoundContext struct {
	// Round is the zero-based aggregation round index.
	Round int
	// Accuracy is the current global-model test accuracy.
	Accuracy float64
	// Workload and Params echo the run configuration.
	Workload *workload.Model
	Params   workload.GlobalParams
	// Devices holds one state per candidate device. On the exhaustive
	// path it is indexed like the fleet; on the sampled population
	// path it is the round's candidate view — Devices[i].Device.ID is
	// the global device index — and selection indices address the
	// view.
	Devices []DeviceState

	cfg *Config
	// fleetIdle caches the fleet-wide idle draw for the round (see
	// FleetIdleWatts); 0 means not yet computed.
	fleetIdle float64
}

// Selection is one participant choice: a device plus its execution
// target and DVFS step (the two-level AutoFL action). Step -1 selects
// the target's top step.
type Selection struct {
	Index  int
	Target device.Target
	Step   int
}

// Policy selects the participants (and their execution targets) for
// each round. Implementations must be deterministic given their own
// seeded randomness so runs reproduce.
//
// The engine treats the returned slice as borrowed: it copies what it
// needs before the next Select call, so policies may return an
// internal buffer they reuse across rounds.
type Policy interface {
	// Name identifies the policy in results and experiment output.
	Name() string
	// Select returns up to Params.K selections for this round.
	Select(ctx *RoundContext) []Selection
}

// FeedbackPolicy is implemented by learning policies (AutoFL) that
// consume the measured outcome of each round.
//
// Inside Engine.Run the context and result passed to Feedback live in
// engine-owned buffers that the next round reuses; policies must not
// retain them past the callback.
type FeedbackPolicy interface {
	Policy
	// Feedback delivers the completed round's results: the paper's
	// Step 5 measurement that drives the Q-table update.
	Feedback(ctx *RoundContext, result *RoundResult)
}

// AggregationTraits modify how the server treats straggler and
// non-IID updates — how FedNova and FEDL differ from plain FedAvg
// (§6.3).
type AggregationTraits struct {
	// PartialUpdates lets devices that miss the deadline contribute a
	// partial update instead of being dropped.
	PartialUpdates bool
	// DivergenceDamping in [0, 1] shrinks the quality loss of non-IID
	// updates (update normalization / gradient correction). 0 is plain
	// FedAvg.
	DivergenceDamping float64
	// NormalizedWeights aggregates every kept update with equal weight
	// (FedNova's normalized averaging) instead of sample-proportional
	// FedAvg weights.
	NormalizedWeights bool
}

// TraitsPolicy is implemented by policies that carry aggregation
// traits.
type TraitsPolicy interface {
	Policy
	Traits() AggregationTraits
}

// DeviceRound is the measured outcome for one device in one round.
type DeviceRound struct {
	// Index into the fleet.
	Index int
	// Selected reports whether the device participated.
	Selected bool
	// Dropped reports whether a participant missed the straggler
	// deadline and was excluded from aggregation.
	Dropped bool
	// Target and Step echo the executed action.
	Target device.Target
	Step   int
	// CompSec and CommSec are the computation and communication times.
	CompSec, CommSec float64
	// EnergyJ is the device's total energy this round (compute +
	// communication + idle slack for participants; pure idle
	// otherwise).
	EnergyJ float64
	// UpdateFraction is the share of the local update that reached the
	// aggregator: 1 for on-time participants, (0, 1) for partial
	// updates, 0 for dropped or idle devices.
	UpdateFraction float64
}

// RoundResult is the measured outcome of one aggregation round.
type RoundResult struct {
	Round int
	// Participants counts the devices selected this round (kept or
	// dropped).
	Participants int
	// RoundSec is the wall-clock duration: gated by the slowest kept
	// participant, or the deadline when stragglers were cut.
	RoundSec float64
	// Deadline is the straggler deadline that applied.
	Deadline float64
	// Accuracy and PrevAccuracy bracket the round's model-quality
	// change.
	Accuracy, PrevAccuracy float64
	// EnergyTotalJ is fleet-wide energy, including idle devices
	// (Eq 6 over all N devices).
	EnergyTotalJ float64
	// EnergyParticipantsJ is the energy of selected devices only.
	EnergyParticipantsJ float64
	// Devices holds per-device outcomes, indexed like the fleet.
	Devices []DeviceRound
	// Kept counts updates that reached aggregation (full or partial).
	Kept int
	// DroppedStragglers counts deadline-missing participants.
	DroppedStragglers int
	// VirtualSec is the virtual clock after this round: the cumulative
	// RoundSec over the run, which the async regimes advance through
	// the event queue.
	VirtualSec float64
	// PendingUpdates counts updates still in flight after this round's
	// aggregation (0 in ModeSync).
	PendingUpdates int
	// MeanStaleness and MaxStaleness summarize the model-version
	// staleness of the updates applied this round (0 in ModeSync,
	// where every kept update is fresh).
	MeanStaleness float64
	MaxStaleness  int
	// Arrivals lists the updates an asynchronous round applied, in
	// virtual-time arrival order; nil in ModeSync. Like Devices, it is
	// an engine-owned buffer reused across rounds.
	Arrivals []ArrivalUpdate
	// BatteryAvailable, BatteryDepleted, and BatteryMeanFrac summarize
	// the candidate view's battery state at observation time: devices
	// meeting the participation threshold, devices at zero charge, and
	// the mean state of charge. All zero without a battery model.
	BatteryAvailable int
	BatteryDepleted  int
	BatteryMeanFrac  float64
	// ParticipationJain is Jain's fairness index over cumulative
	// per-device participation counts through this round; 0 without a
	// battery model.
	ParticipationJain float64
}

// ArrivalUpdate is one device update applied by an asynchronous
// aggregation step.
type ArrivalUpdate struct {
	// Index is the global device index.
	Index int
	// DispatchRound is the model version the update trained on;
	// Staleness = aggregation round − DispatchRound.
	DispatchRound int
	Staleness     int
	// Weight is the staleness discount 1/(1+s)^α the aggregator
	// applied.
	Weight float64
	// CompSec and CommSec echo the completed execution times.
	CompSec, CommSec float64
}

// RoundTrace is the compact per-round record a run accumulates —
// together with the parallel AccuracyTrace, just enough to replay the
// run's headline metrics at any shorter horizon (see Result.Trace and
// the sweep cache's horizon-prefix serving). Per-round accuracy lives
// only in AccuracyTrace; duplicating it here would create a second
// source of truth.
type RoundTrace struct {
	// Sec is the round's wall-clock duration.
	Sec float64
	// EnergyJ and ParticipantEnergyJ are the round's fleet-wide and
	// participants-only energies.
	EnergyJ            float64
	ParticipantEnergyJ float64
	// MeanStale is the round's mean applied-update staleness (always 0
	// in ModeSync); replaying a trace prefix reproduces the horizon's
	// staleness summary exactly.
	MeanStale float64
	// Jain and BatteryFrac carry the battery subsystem's per-round
	// fairness index and mean candidate state of charge (both 0
	// without a battery model), so horizon-prefix replay reproduces
	// the battery summary at any shorter horizon.
	Jain        float64
	BatteryFrac float64
}

// Result summarizes a full FL run.
type Result struct {
	Policy string
	// Converged reports whether TargetAccuracy was reached within
	// MaxRounds.
	Converged bool
	// ConvergedRound is the 1-based round at which the target was
	// reached (0 if never).
	ConvergedRound int
	// TimeToTargetSec is wall-clock time until convergence, or total
	// run time if the run never converged.
	TimeToTargetSec float64
	// EnergyToTargetJ is fleet energy over the same horizon.
	EnergyToTargetJ float64
	// ParticipantEnergyToTargetJ is the participants-only energy over
	// the same horizon.
	ParticipantEnergyToTargetJ float64
	// FinalAccuracy is the accuracy when the run ended.
	FinalAccuracy float64
	// AccuracyTrace holds accuracy after every round (Fig 6a).
	AccuracyTrace []float64
	// Trace holds the compact per-round record of every executed
	// round. Because each round depends only on the rounds before it —
	// never on MaxRounds — the first h entries replay exactly what a
	// run bounded at h rounds would have measured; the sweep cache
	// exploits this to serve short horizons from long cached runs.
	Trace []RoundTrace
	// RewardTrace is filled by learning policies via feedback hooks
	// (Fig 15); nil otherwise.
	RewardTrace []float64
	// Rounds is the number of rounds executed.
	Rounds int
	// Battery summarizes the battery subsystem at the end of the run
	// (see battery.go); nil without a battery model.
	Battery *BatteryStats
	// MeanStaleness averages the per-round mean applied-update
	// staleness over the executed horizon (0 for ModeSync runs).
	MeanStaleness float64
	// MeanRoundSec and MeanRoundEnergyJ are per-round averages over
	// the executed horizon.
	MeanRoundSec     float64
	MeanRoundEnergyJ float64
	// TargetAccuracy echoes the configured target.
	TargetAccuracy float64
	// AccuracyFloor echoes the workload floor, for normalization.
	AccuracyFloor float64
}

// Progress returns how far the run got toward the target, in [0, 1]:
// 1 when converged, 0 at the untrained floor. For unconverged runs it
// measures *log-gap closure* — the fraction of ln(gap₀/gap_target)
// covered — because saturating training spends equal time per
// equal gap ratio: a run stalled just below the target has still
// consumed only part of the (diverging) effort to reach it. This is
// what makes the PPW of never-converging baselines collapse, as in the
// paper's Fig 11(c)/(d).
func (r *Result) Progress() float64 {
	if r.Converged {
		return 1
	}
	span := r.TargetAccuracy - r.AccuracyFloor
	if span <= 0 {
		return 0
	}
	// Margin keeps the target gap finite: reaching the target means
	// closing all but 5% of the span.
	margin := 0.05 * span
	gap0 := span + margin
	gapNow := r.TargetAccuracy + margin - r.FinalAccuracy
	if gapNow >= gap0 {
		return 0
	}
	if gapNow < margin {
		gapNow = margin
	}
	p := math.Log(gap0/gapNow) / math.Log(gap0/margin)
	return math.Max(0, math.Min(1, p))
}

// GlobalPPW is the cluster-level performance-per-watt figure of merit:
// training progress per joule of fleet energy. For converged runs it
// reduces to 1 / (energy to convergence), the quantity the paper's
// normalized PPW bars compare.
func (r *Result) GlobalPPW() float64 {
	if r.EnergyToTargetJ <= 0 {
		return 0
	}
	return r.Progress() / r.EnergyToTargetJ
}

// LocalPPW is the participant-level efficiency: progress per joule
// spent by selected devices (the paper's "energy efficiency of
// individual participants").
func (r *Result) LocalPPW() float64 {
	if r.ParticipantEnergyToTargetJ <= 0 {
		return 0
	}
	return r.Progress() / r.ParticipantEnergyToTargetJ
}

// String renders a one-line summary. A never-converged run
// (ConvergedRound == 0) is rendered distinctly — "never (N rounds)" —
// so it cannot be misread as convergence at round 0; a result that
// claims convergence without a recorded round (hand-built or
// reconstructed) falls back to the executed round count.
func (r *Result) String() string {
	conv := fmt.Sprintf("never (%d rounds)", r.Rounds)
	if r.Converged {
		round := r.ConvergedRound
		if round == 0 {
			round = r.Rounds
		}
		conv = fmt.Sprintf("round %d", round)
	}
	return fmt.Sprintf("%s: acc=%.3f converged=%s time=%.0fs energy=%.0fJ",
		r.Policy, r.FinalAccuracy, conv, r.TimeToTargetSec, r.EnergyToTargetJ)
}

// Estimate predicts computation and communication seconds for running
// the round's workload on device idx with the given action, using the
// observed state in the context. Computation time includes the fixed
// setup phase (Spec.SetupSec). Oracles plan with it; the engine uses
// the same arithmetic for the actual execution, so oracle projections
// are exact.
func (ctx *RoundContext) Estimate(idx int, target device.Target, step int) (compSec, commSec float64) {
	return ctx.estimateWithLoad(idx, target, step, ctx.Devices[idx].Load)
}

// estimateWithLoad is Estimate with an explicit co-runner load; the
// engine uses it with the actual (post-selection) load, policies with
// the observed one.
func (ctx *RoundContext) estimateWithLoad(idx int, target device.Target, step int, load interference.Load) (compSec, commSec float64) {
	ds := &ctx.Devices[idx]
	spec := ds.Device.Spec
	if step < 0 {
		step = spec.Proc(target).TopStep() // -1 selects the top step
	}
	intensity := ctx.Workload.Intensity(ctx.Params.B)
	tput := spec.EffectiveGFLOPS(target, step, intensity, load.CPUContention(), load.MemContention())
	work := float64(ctx.Params.E) * float64(ds.Data.Samples) * ctx.Workload.TrainFLOPsPerSample()
	compSec = spec.SetupSec + work/(tput*1e9)
	payload := 2 * ctx.Workload.GradientBytes() // model down + gradients up
	commSec = ctx.cfg.Env.Network.CommSeconds(payload, ds.BandwidthMbps)
	return compSec, commSec
}

// DropRisk estimates the probability that device idx, executing the
// given action, misses the deadline because a co-runner appears after
// selection (the surprise component of runtime variance). Oracle
// policies fold it into cluster scoring; AutoFL learns the same effect
// from reward feedback instead.
func (ctx *RoundContext) DropRisk(idx int, target device.Target, step int, deadline float64) float64 {
	surprise := ctx.cfg.Env.Interference.SurpriseProb()
	if surprise <= 0 {
		return 0
	}
	risk := 0.0
	for _, wl := range interference.WeightedLoads() {
		comp, comm := ctx.estimateWithLoad(idx, target, step, wl.Load)
		if comp+comm > deadline {
			risk += wl.Weight
		}
	}
	return surprise * risk
}

// StragglerFactor exposes the run's deadline multiplier to planning
// policies.
func (ctx *RoundContext) StragglerFactor() float64 { return ctx.cfg.StragglerFactor }

// CleanCompletionTime is the completion time the server expects of
// device idx: CPU at top frequency, no co-runner, this round's
// bandwidth. The straggler deadline derives from it.
func (ctx *RoundContext) CleanCompletionTime(idx int) (compSec, commSec float64) {
	return ctx.estimateWithLoad(idx, device.CPU, -1, interference.Load{})
}

// FleetIdleWatts is the summed idle draw of all devices, used by
// oracle policies to weigh round duration against participant energy.
// The engine caches it per round (the sum is loop-order identical to
// computing it on demand, so cached and uncached reads agree to the
// bit); on the sampled population path the cached value covers the
// whole population, not just the candidate view.
func (ctx *RoundContext) FleetIdleWatts() float64 {
	if ctx.fleetIdle > 0 {
		return ctx.fleetIdle
	}
	total := 0.0
	for i := range ctx.Devices {
		total += ctx.Devices[i].Device.Spec.IdleWatts()
	}
	return total
}

// EstimateEnergy predicts the round energy of device idx under the
// given action and an assumed round duration.
func (ctx *RoundContext) EstimateEnergy(idx int, target device.Target, step int, roundSec float64) float64 {
	comp, comm := ctx.Estimate(idx, target, step)
	ds := &ctx.Devices[idx]
	if comp+comm > roundSec {
		roundSec = comp + comm
	}
	spec := ds.Device.Spec
	if step < 0 {
		step = spec.Proc(target).TopStep()
	}
	return power.ParticipantRoundEnergy(spec, target, step, ds.Signal, power.Phases{
		SetupSec:  spec.SetupSec,
		CrunchSec: comp - spec.SetupSec,
		CommSec:   comm,
		RoundSec:  roundSec,
	})
}

// TopStep returns the top DVFS step for a device/target pair in this
// context.
func (ctx *RoundContext) TopStep(idx int, target device.Target) int {
	return ctx.Devices[idx].Device.Spec.Proc(target).TopStep()
}

// Engine runs FL rounds under a Config.
type Engine struct {
	cfg       Config
	streams   *rng.Stream
	envRng    *rng.Stream
	accRng    *rng.Stream
	partition []data.DeviceData
	conv      *convergenceModel
	// pop holds the sampled-population state; nil on the exhaustive
	// path (see population.go).
	pop *popState
	// async holds the asynchronous-aggregation state; nil in ModeSync
	// (see async.go).
	async *asyncState
	// batt holds the battery-subsystem state; nil when Config.Battery
	// is nil (see battery.go).
	batt *battState
	// barrier is the virtual-time queue the synchronous path resolves
	// its round barrier through; reused across rounds.
	barrier vtime.Queue
	// vnow is the engine's virtual clock: cumulative round seconds.
	vnow float64

	// scratch holds the Run loop's reusable round buffers; the
	// exported RunRound allocates fresh ones per call so its returned
	// snapshots stay independent.
	scratch roundScratch
}

// roundScratch is one round's worth of engine-owned buffers, reused
// across rounds so the steady-state loop performs no per-round
// allocation for contexts, device states, or outcome records.
type roundScratch struct {
	ctx   RoundContext
	res   RoundResult
	clean []float64   // per-participant clean completion times
	seen  []bool      // sanitize dedup, indexed by device
	sels  []Selection // sanitized selections

	// Population-mode buffers: the candidate pool and the backing
	// arrays the candidate view's Device/Data pointers point into.
	cand []int32
	devs []device.Device
	dd   []data.DeviceData
}

// New builds an engine. The device data partition is drawn once (local
// datasets are static across rounds, as in the paper). It panics on a
// degenerate config; NewEngine returns the *ConfigError instead.
func New(cfg Config) *Engine {
	e, err := NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// NewEngine builds an engine, rejecting degenerate configurations
// (empty fleet, K larger than the fleet, negative sample or shard
// counts, a candidate sample smaller than K) with a *ConfigError.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Fleet != nil && cfg.Population != nil {
		return nil, configErrf("Population", "Fleet and Population are mutually exclusive; set one")
	}
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.Population != nil && c.Sample == 0 {
		// Exhaustive population: materialize the cohort fleet and run
		// the legacy path — byte-identical to the equivalent Fleet
		// config.
		c.Fleet = c.Population.Fleet()
	}
	// The fork order (partition, environment, accuracy) is part of the
	// reproducibility contract: it fixes every stream's sequence for a
	// given seed.
	root := rng.New(c.Seed)
	partRng := root.Fork()
	e := &Engine{
		cfg:     c,
		streams: root,
		envRng:  root.Fork(),
		accRng:  root.Fork(),
	}
	if c.Population != nil && c.Sample > 0 {
		e.pop = newPopState(&e.cfg, partRng, e.envRng, root)
	} else {
		e.partition = data.Partition(partRng, c.Data, len(c.Fleet),
			c.Workload.Dataset.Classes, c.Workload.Dataset.SamplesPerDevice)
	}
	e.conv = newConvergenceModel(&e.cfg)
	if e.cfg.Mode != ModeSync {
		n := len(e.cfg.Fleet)
		if e.pop != nil {
			n = e.pop.n
		}
		e.async = newAsyncState(n)
	}
	if e.cfg.Battery != nil {
		n := len(e.cfg.Fleet)
		if e.pop != nil {
			n = e.pop.n
		}
		e.batt = newBattState(*e.cfg.Battery, e.cfg.Seed, n)
	}
	return e, nil
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Partition exposes the static device data assignment.
func (e *Engine) Partition() []data.DeviceData { return e.partition }

// observe samples the round's runtime variance for every device into
// the scratch context.
func (e *Engine) observe(sc *roundScratch, round int, accuracy float64) *RoundContext {
	n := len(e.cfg.Fleet)
	devices := sc.ctx.Devices
	if cap(devices) < n {
		devices = make([]DeviceState, n)
	}
	devices = devices[:n]
	sc.ctx = RoundContext{
		Round:    round,
		Accuracy: accuracy,
		Workload: e.cfg.Workload,
		Params:   e.cfg.Params,
		Devices:  devices,
		cfg:      &e.cfg,
	}
	for i, d := range e.cfg.Fleet {
		bw := e.cfg.Env.Network.Sample(e.envRng)
		devices[i] = DeviceState{
			Device:        d,
			Load:          e.cfg.Env.Interference.Sample(e.envRng),
			BandwidthMbps: bw,
			Signal:        network.SignalFor(bw),
			Data:          &e.partition[i],
		}
		if e.async != nil {
			devices[i].Staleness = int(e.async.lastStale[i])
		}
		if e.batt != nil {
			e.observeBattery(&devices[i], i, d.Spec.IdleWatts())
		}
	}
	// Cache the fleet idle draw once per round. The loop order matches
	// the on-demand FleetIdleWatts sum, so the cached value is
	// bit-identical to what per-call recomputation produced before.
	idle := 0.0
	for i := range devices {
		idle += devices[i].Device.Spec.IdleWatts()
	}
	sc.ctx.fleetIdle = idle
	return &sc.ctx
}

// RunRound executes one aggregation round with the given policy and
// current accuracy, returning the context it observed and the measured
// result. It is exported for step-by-step callers (the TCP server and
// the experiment harness); each call returns freshly allocated
// snapshots. Run loops the same logic over the engine's reusable
// buffers instead.
func (e *Engine) RunRound(p Policy, round int, accuracy float64) (*RoundContext, *RoundResult) {
	return e.runRound(p, round, accuracy, new(roundScratch))
}

// runRound is the round engine proper, operating on caller-provided
// scratch buffers.
func (e *Engine) runRound(p Policy, round int, accuracy float64, sc *roundScratch) (*RoundContext, *RoundResult) {
	if e.async != nil {
		return e.runRoundAsync(p, round, accuracy, sc)
	}
	if e.pop != nil {
		return e.runRoundPop(p, round, accuracy, sc)
	}
	ctx := e.observe(sc, round, accuracy)
	selections := sanitize(sc, ctx, p.Select(ctx))
	participants := len(selections)

	traits := AggregationTraits{}
	if tp, ok := p.(TraitsPolicy); ok {
		traits = tp.Traits()
	}

	res := &sc.res
	devRounds := res.Devices
	if cap(devRounds) < len(ctx.Devices) {
		devRounds = make([]DeviceRound, len(ctx.Devices))
	}
	devRounds = devRounds[:len(ctx.Devices)]
	*res = RoundResult{
		Round:        round,
		Participants: participants,
		PrevAccuracy: accuracy,
		Devices:      devRounds,
	}
	for i := range res.Devices {
		res.Devices[i] = DeviceRound{Index: i}
	}
	if e.batt != nil {
		res.BatteryAvailable, res.BatteryDepleted, res.BatteryMeanFrac = battViewStats(ctx.Devices)
	}

	// Per-participant completion times, under the loads actually in
	// effect during execution: a co-runner can appear (or quit) after
	// selection — the surprise variance no selector can observe away.
	for _, sel := range selections {
		dr := &res.Devices[sel.Index]
		dr.Selected = true
		dr.Target = sel.Target
		dr.Step = sel.Step
		actual := e.cfg.Env.Interference.Actual(e.envRng, ctx.Devices[sel.Index].Load)
		dr.CompSec, dr.CommSec = ctx.estimateWithLoad(sel.Index, sel.Target, sel.Step, actual)
		if e.batt != nil {
			e.batt.participate(sel.Index)
		}
	}

	// Straggler deadline: the server fixes a reporting deadline from
	// the *expected clean* execution time of the selected cohort
	// (standard CPU configuration, no co-runner) — it cannot observe
	// on-device interference, so devices slowed by co-runners blow
	// through it and are excluded, the §3.2 straggler problem.
	deadline := math.Inf(1)
	if len(selections) > 0 {
		clean := sc.clean[:0]
		for _, sel := range selections {
			comp, comm := ctx.CleanCompletionTime(sel.Index)
			clean = append(clean, comp+comm)
		}
		sc.clean = clean
		deadline = e.cfg.StragglerFactor * median(clean)
	}
	res.Deadline = deadline

	// Resolve the round barrier through the virtual-time event queue:
	// every participant's completion is an event, popped in completion
	// order.
	roundSec := e.resolveBarrier(selections, res, deadline, traits)
	if len(selections) == 0 {
		roundSec = e.cfg.Env.Network.BaseLatencySec
	}
	res.RoundSec = roundSec
	e.vnow += roundSec
	res.VirtualSec = e.vnow

	// Energy accounting for the whole fleet.
	for i := range ctx.Devices {
		dr := &res.Devices[i]
		ds := &ctx.Devices[i]
		if !dr.Selected {
			dr.EnergyJ = power.IdleEnergy(ds.Device.Spec.IdleWatts(), roundSec)
			res.EnergyTotalJ += dr.EnergyJ
			continue
		}
		comp, comm := dr.CompSec, dr.CommSec
		if dr.Dropped {
			// Work stops at the deadline; communication of whatever
			// was produced still happens for partial updates.
			budget := math.Max(0, deadline-dr.CommSec)
			comp = math.Min(comp, budget)
			if !traits.PartialUpdates {
				comm = math.Min(comm, deadline)
			}
		}
		spec := ds.Device.Spec
		setup := math.Min(spec.SetupSec, comp)
		dr.EnergyJ = power.ParticipantRoundEnergy(spec, dr.Target, dr.Step, ds.Signal, power.Phases{
			SetupSec:  setup,
			CrunchSec: comp - setup,
			CommSec:   comm,
			RoundSec:  roundSec,
		})
		res.EnergyTotalJ += dr.EnergyJ
		res.EnergyParticipantsJ += dr.EnergyJ
		if e.batt != nil {
			// Drain the participant's energy above its idle draw: the
			// idle share is integrated lazily at the next settle, so
			// the two together drain exactly EnergyJ.
			e.batt.model.Drain(i, dr.EnergyJ-ds.Device.Spec.IdleWatts()*roundSec)
		}
	}
	if e.batt != nil {
		res.ParticipationJain = e.batt.jain()
	}

	// Advance the global model.
	res.Accuracy = e.conv.advance(e.accRng, ctx, res, traits)
	return ctx, res
}

// resolveBarrier resolves one bulk-synchronous aggregation barrier
// through the virtual-time event queue: each selection's completion
// time is pushed as an event and popped in (time, dispatch-order)
// order, classifying on-time participants versus deadline-missing
// stragglers and returning the round duration. The classification and
// the resulting floats are identical to the pre-queue selection-order
// loop — kept/dropped is per-event, and the duration is a max over the
// same values — so routing the barrier through the queue changes no
// output bytes; it exists so sync and async share one event substrate.
func (e *Engine) resolveBarrier(selections []Selection, res *RoundResult, deadline float64, traits AggregationTraits) float64 {
	q := &e.barrier
	q.Reset()
	for _, sel := range selections {
		dr := &res.Devices[sel.Index]
		q.Push(dr.CompSec+dr.CommSec, int64(sel.Index))
	}
	roundSec := 0.0
	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		dr := &res.Devices[ev.Payload]
		total := ev.Time
		if total <= deadline {
			dr.UpdateFraction = 1
			res.Kept++
			if total > roundSec {
				roundSec = total
			}
			continue
		}
		dr.Dropped = true
		res.DroppedStragglers++
		if traits.PartialUpdates {
			// FedProx/FedNova-style partial work proportional to the
			// share of local training finished by the deadline.
			dr.UpdateFraction = deadline / total
			res.Kept++
		}
		// A straggler burns the deadline window regardless.
		if deadline > roundSec {
			roundSec = deadline
		}
	}
	return roundSec
}

// Run executes rounds until the accuracy target or MaxRounds, feeding
// learning policies their per-round results. It is a thin wrapper over
// the stepwise Run API (Start/Step/Result in run.go).
func (e *Engine) Run(p Policy) *Result {
	r := e.Start(p)
	for r.Step() {
	}
	return r.Result()
}

// sanitize deduplicates selections, clamps indices/steps, and truncates
// to K participants, writing into the scratch selection buffer.
func sanitize(sc *roundScratch, ctx *RoundContext, sels []Selection) []Selection {
	n := len(ctx.Devices)
	if cap(sc.seen) < n {
		sc.seen = make([]bool, n)
	}
	seen := sc.seen[:n]
	for i := range seen {
		seen[i] = false
	}
	out := sc.sels[:0]
	for _, s := range sels {
		if s.Index < 0 || s.Index >= n || seen[s.Index] {
			continue
		}
		if ctx.Devices[s.Index].Unavailable {
			// Below the battery participation threshold: excluded from
			// the candidate set regardless of what the policy returned.
			continue
		}
		seen[s.Index] = true
		proc := ctx.Devices[s.Index].Device.Spec.Proc(s.Target)
		if s.Step < 0 || s.Step > proc.TopStep() {
			s.Step = proc.TopStep()
		}
		out = append(out, s)
		if len(out) == ctx.Params.K {
			break
		}
	}
	sc.sels = out
	return out
}

// median sorts vals in place (callers pass scratch that is dead after
// this) and returns the middle value.
func median(vals []float64) float64 {
	// Insertion sort: participant counts are small (K <= ~50).
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
