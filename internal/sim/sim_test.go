package sim

import (
	"math"
	"testing"

	"autofl/internal/data"
	"autofl/internal/device"
	"autofl/internal/rng"
	"autofl/internal/workload"
)

// randomPolicy is a minimal FedAvg-Random stand-in for engine tests
// (the real policy set lives in internal/policy).
type randomPolicy struct{ s *rng.Stream }

func newRandomPolicy(seed uint64) *randomPolicy { return &randomPolicy{s: rng.New(seed)} }

func (p *randomPolicy) Name() string { return "test-random" }

func (p *randomPolicy) Select(ctx *RoundContext) []Selection {
	idx := p.s.Sample(len(ctx.Devices), ctx.Params.K)
	out := make([]Selection, 0, len(idx))
	for _, i := range idx {
		out = append(out, Selection{Index: i, Target: device.CPU, Step: -1})
	}
	return out
}

func quickCfg(seed uint64) Config {
	return Config{
		Workload:  workload.CNNMNIST(),
		Params:    workload.S3,
		Data:      data.IdealIID,
		Env:       EnvIdeal(),
		Seed:      seed,
		MaxRounds: 600,
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		return New(quickCfg(42)).Run(newRandomPolicy(7))
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.FinalAccuracy != b.FinalAccuracy ||
		a.EnergyToTargetJ != b.EnergyToTargetJ || a.TimeToTargetSec != b.TimeToTargetSec {
		t.Fatalf("runs with identical seeds diverged:\n%v\n%v", a, b)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(quickCfg(1)).Run(newRandomPolicy(7))
	b := New(quickCfg(2)).Run(newRandomPolicy(7))
	if a.EnergyToTargetJ == b.EnergyToTargetJ && a.TimeToTargetSec == b.TimeToTargetSec {
		t.Error("different engine seeds produced identical results")
	}
}

func TestIIDRandomConverges(t *testing.T) {
	res := New(quickCfg(3)).Run(newRandomPolicy(7))
	if !res.Converged {
		t.Fatalf("IID random selection failed to converge: %v", res)
	}
	// The paper notes FL convergence usually takes > 200 rounds; the
	// calibrated model should land in the low hundreds.
	if res.ConvergedRound < 100 || res.ConvergedRound > 500 {
		t.Errorf("converged at round %d, want O(200)", res.ConvergedRound)
	}
}

func TestNonIID50Converges(t *testing.T) {
	cfg := quickCfg(4)
	cfg.Data = data.NonIID50
	res := New(cfg).Run(newRandomPolicy(7))
	if !res.Converged {
		t.Fatalf("Non-IID(50%%) random selection should still converge: %v", res)
	}
}

func TestNonIID50SlowerThanIID(t *testing.T) {
	iid := New(quickCfg(5)).Run(newRandomPolicy(7))
	cfg := quickCfg(5)
	cfg.Data = data.NonIID50
	nonIID := New(cfg).Run(newRandomPolicy(7))
	if !iid.Converged || !nonIID.Converged {
		t.Fatal("both runs should converge")
	}
	if nonIID.ConvergedRound <= iid.ConvergedRound {
		t.Errorf("Non-IID(50%%) converged at %d, IID at %d; heterogeneity must slow convergence",
			nonIID.ConvergedRound, iid.ConvergedRound)
	}
}

func TestHeavyNonIIDDoesNotConverge(t *testing.T) {
	// Fig 11(c)/(d): with Non-IID(75%) and Non-IID(100%), random
	// selection does not converge within 1000 rounds.
	for _, sc := range []data.Scenario{data.NonIID75, data.NonIID100} {
		cfg := quickCfg(6)
		cfg.Data = sc
		cfg.MaxRounds = 1000
		res := New(cfg).Run(newRandomPolicy(7))
		if res.Converged {
			t.Errorf("%s: random selection converged at round %d; paper reports no convergence in 1000 rounds",
				sc.Name, res.ConvergedRound)
		}
		if res.FinalAccuracy >= res.TargetAccuracy {
			t.Errorf("%s: final accuracy %v above target", sc.Name, res.FinalAccuracy)
		}
	}
}

func TestNonIID100PlateausLowerThan75(t *testing.T) {
	run := func(sc data.Scenario) float64 {
		cfg := quickCfg(7)
		cfg.Data = sc
		cfg.MaxRounds = 600
		return New(cfg).Run(newRandomPolicy(7)).FinalAccuracy
	}
	a75, a100 := run(data.NonIID75), run(data.NonIID100)
	if a100 >= a75 {
		t.Errorf("Non-IID(100%%) plateau %.3f should sit below Non-IID(75%%) %.3f", a100, a75)
	}
}

// stablePolicy always selects the same device set: the model for a
// learned selector's stationary cohort.
type stablePolicy struct{ devices []int }

func (p *stablePolicy) Name() string { return "test-stable" }
func (p *stablePolicy) Select(ctx *RoundContext) []Selection {
	out := make([]Selection, 0, len(p.devices))
	for _, i := range p.devices {
		out = append(out, Selection{Index: i, Target: device.CPU, Step: -1})
	}
	return out
}

func TestStableCohortConvergesAtFullNonIID(t *testing.T) {
	// The selection-stability mechanism: a fixed, high-quality cohort
	// converges even when 100% of devices are non-IID (Fig 11d,
	// AutoFL bar), while random selection does not (tested above).
	cfg := quickCfg(8)
	cfg.Data = data.NonIID100
	cfg.MaxRounds = 1000
	eng := New(cfg)
	// Pick the K highest-quality devices, as a converged selector
	// would.
	part := eng.Partition()
	type dq struct {
		idx int
		q   float64
	}
	best := make([]dq, len(part))
	for i := range part {
		best[i] = dq{i, part[i].IIDQuality()}
	}
	for i := 1; i < len(best); i++ { // insertion sort by quality desc
		for j := i; j > 0 && best[j].q > best[j-1].q; j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
	}
	sel := make([]int, cfg.Params.K)
	for i := range sel {
		sel[i] = best[i].idx
	}
	res := eng.Run(&stablePolicy{devices: sel})
	if !res.Converged {
		t.Errorf("stable high-quality cohort should converge at Non-IID(100%%): %v", res)
	}
}

func TestStragglerDeadlineDropsSlowDevices(t *testing.T) {
	// Force one low-end device into a selection of high-end devices
	// with an aggressive straggler factor: it must be dropped.
	fleet := device.NewFleet(19, 0, 1)
	cfg := Config{
		Workload:        workload.CNNMNIST(),
		Params:          workload.GlobalParams{B: 16, E: 5, K: 20},
		Fleet:           fleet,
		Data:            data.IdealIID,
		Env:             EnvIdeal(),
		Seed:            9,
		MaxRounds:       5,
		StragglerFactor: 1.2,
	}
	eng := New(cfg)
	all := make([]int, 20)
	for i := range all {
		all[i] = i
	}
	_, res := eng.RunRound(&stablePolicy{devices: all}, 0, 0.1)
	lowIdx := 19 // the single low-end device
	if !res.Devices[lowIdx].Dropped {
		t.Error("low-end straggler should miss the deadline among high-end peers")
	}
	if res.DroppedStragglers < 1 {
		t.Error("round should report dropped stragglers")
	}
	if res.Devices[lowIdx].UpdateFraction != 0 {
		t.Error("plain FedAvg drops straggler updates entirely")
	}
	if res.RoundSec > res.Deadline+1e-9 {
		t.Error("round duration must not exceed the deadline when stragglers are cut")
	}
}

// partialPolicy wraps stablePolicy with FedNova-style traits.
type partialPolicy struct {
	stablePolicy
	traits AggregationTraits
}

func (p *partialPolicy) Traits() AggregationTraits { return p.traits }

func TestPartialUpdatesKeepStragglerMass(t *testing.T) {
	fleet := device.NewFleet(19, 0, 1)
	cfg := Config{
		Workload:        workload.CNNMNIST(),
		Params:          workload.GlobalParams{B: 16, E: 5, K: 20},
		Fleet:           fleet,
		Data:            data.IdealIID,
		Env:             EnvIdeal(),
		Seed:            9,
		MaxRounds:       5,
		StragglerFactor: 1.2,
	}
	eng := New(cfg)
	all := make([]int, 20)
	for i := range all {
		all[i] = i
	}
	p := &partialPolicy{
		stablePolicy: stablePolicy{devices: all},
		traits:       AggregationTraits{PartialUpdates: true},
	}
	_, res := eng.RunRound(p, 0, 0.1)
	frac := res.Devices[19].UpdateFraction
	if frac <= 0 || frac >= 1 {
		t.Errorf("partial-update straggler fraction = %v, want in (0, 1)", frac)
	}
}

func TestEnergyAccounting(t *testing.T) {
	eng := New(quickCfg(10))
	_, res := eng.RunRound(newRandomPolicy(3), 0, 0.1)
	if res.EnergyTotalJ <= 0 || res.EnergyParticipantsJ <= 0 {
		t.Fatal("round energies must be positive")
	}
	if res.EnergyParticipantsJ >= res.EnergyTotalJ {
		t.Error("fleet energy must exceed participant energy (idle devices burn power)")
	}
	sum := 0.0
	selected := 0
	for _, dr := range res.Devices {
		if dr.EnergyJ < 0 {
			t.Fatal("negative device energy")
		}
		sum += dr.EnergyJ
		if dr.Selected {
			selected++
		}
	}
	if math.Abs(sum-res.EnergyTotalJ)/res.EnergyTotalJ > 1e-9 {
		t.Errorf("device energies sum to %v, total says %v", sum, res.EnergyTotalJ)
	}
	if selected != eng.Config().Params.K {
		t.Errorf("selected %d devices, want K=%d", selected, eng.Config().Params.K)
	}
}

func TestIdleDevicesCheaperThanParticipants(t *testing.T) {
	eng := New(quickCfg(11))
	_, res := eng.RunRound(newRandomPolicy(3), 0, 0.1)
	var maxIdle, minActive float64 = 0, math.Inf(1)
	for _, dr := range res.Devices {
		if dr.Selected {
			if dr.EnergyJ < minActive {
				minActive = dr.EnergyJ
			}
		} else if dr.EnergyJ > maxIdle {
			maxIdle = dr.EnergyJ
		}
	}
	if maxIdle >= minActive {
		t.Errorf("idle energy (max %v) should be below participant energy (min %v)", maxIdle, minActive)
	}
}

func TestSanitizeClampsAndDedupes(t *testing.T) {
	eng := New(quickCfg(12))
	ctx := eng.observe(new(roundScratch), 0, 0.1)
	raw := []Selection{
		{Index: 5, Target: device.CPU, Step: 9999},
		{Index: 5, Target: device.CPU, Step: 0}, // duplicate
		{Index: -1, Target: device.CPU, Step: 0},
		{Index: len(ctx.Devices), Target: device.CPU, Step: 0},
		{Index: 6, Target: device.GPU, Step: -1},
	}
	out := sanitize(new(roundScratch), ctx, raw)
	if len(out) != 2 {
		t.Fatalf("sanitize kept %d selections, want 2", len(out))
	}
	if out[0].Index != 5 || out[1].Index != 6 {
		t.Errorf("sanitize kept wrong devices: %+v", out)
	}
	top := ctx.Devices[5].Device.Spec.CPU.TopStep()
	if out[0].Step != top {
		t.Errorf("oversized step should clamp to top (%d), got %d", top, out[0].Step)
	}
}

func TestSanitizeTruncatesToK(t *testing.T) {
	eng := New(quickCfg(13))
	ctx := eng.observe(new(roundScratch), 0, 0.1)
	var raw []Selection
	for i := 0; i < 50; i++ {
		raw = append(raw, Selection{Index: i, Target: device.CPU, Step: -1})
	}
	out := sanitize(new(roundScratch), ctx, raw)
	if len(out) != ctx.Params.K {
		t.Errorf("sanitize kept %d, want K=%d", len(out), ctx.Params.K)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 2, 3}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{nil, 0},
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestEstimateMatchesExecution(t *testing.T) {
	eng := New(quickCfg(14))
	p := newRandomPolicy(5)
	ctx, res := eng.RunRound(p, 0, 0.1)
	for _, dr := range res.Devices {
		if !dr.Selected {
			continue
		}
		comp, comm := ctx.Estimate(dr.Index, dr.Target, dr.Step)
		if math.Abs(comp-dr.CompSec) > 1e-9 || math.Abs(comm-dr.CommSec) > 1e-9 {
			t.Fatalf("estimate (%v, %v) disagrees with execution (%v, %v)",
				comp, comm, dr.CompSec, dr.CommSec)
		}
	}
}

func TestInterferenceSlowsRounds(t *testing.T) {
	mean := func(env Env, seed uint64) float64 {
		cfg := quickCfg(seed)
		cfg.Env = env
		cfg.MaxRounds = 60
		cfg.TargetAccuracy = 1.1 // never converge; measure steady-state rounds
		res := New(cfg).Run(newRandomPolicy(3))
		return res.MeanRoundSec
	}
	ideal := mean(EnvIdeal(), 15)
	interf := mean(EnvInterference(), 15)
	if interf <= ideal {
		t.Errorf("interference rounds (%.1fs) should be slower than ideal (%.1fs)", interf, ideal)
	}
}

func TestWeakNetworkSlowsRounds(t *testing.T) {
	mean := func(env Env, seed uint64) float64 {
		cfg := quickCfg(seed)
		cfg.Env = env
		cfg.MaxRounds = 60
		cfg.TargetAccuracy = 1.1
		res := New(cfg).Run(newRandomPolicy(3))
		return res.MeanRoundSec
	}
	ideal := mean(EnvIdeal(), 16)
	weak := mean(EnvWeakNetwork(), 16)
	if weak <= ideal {
		t.Errorf("weak-network rounds (%.1fs) should be slower than ideal (%.1fs)", weak, ideal)
	}
}

func TestSmallerKSlowsConvergence(t *testing.T) {
	runRounds := func(k int, seed uint64) int {
		cfg := quickCfg(seed)
		cfg.Params.K = k
		res := New(cfg).Run(newRandomPolicy(3))
		if !res.Converged {
			return cfg.MaxRounds + 1
		}
		return res.ConvergedRound
	}
	// Fewer participants per round → less update mass → slower.
	if runRounds(5, 17) <= runRounds(20, 17) {
		t.Error("K=5 should need more rounds than K=20")
	}
}

func TestProgressAndPPW(t *testing.T) {
	r := &Result{
		Converged:                  true,
		EnergyToTargetJ:            100,
		ParticipantEnergyToTargetJ: 50,
		TargetAccuracy:             0.9,
		AccuracyFloor:              0.1,
		FinalAccuracy:              0.9,
	}
	if r.Progress() != 1 {
		t.Error("converged run progress should be 1")
	}
	if r.GlobalPPW() != 0.01 || r.LocalPPW() != 0.02 {
		t.Errorf("PPW = (%v, %v), want (0.01, 0.02)", r.GlobalPPW(), r.LocalPPW())
	}
	// Unconverged progress: zero at the floor, monotone in accuracy,
	// capped below 1, and strongly penalizing plateaus far from the
	// target (log-gap closure).
	prog := func(acc float64) float64 {
		return (&Result{TargetAccuracy: 0.9, AccuracyFloor: 0.1, FinalAccuracy: acc}).Progress()
	}
	if got := prog(0.1); got != 0 {
		t.Errorf("progress at floor = %v, want 0", got)
	}
	if !(prog(0.3) < prog(0.5) && prog(0.5) < prog(0.8) && prog(0.8) < prog(0.89)) {
		t.Error("progress must be monotone in accuracy")
	}
	if got := prog(0.89); got >= 1 {
		t.Errorf("just-below-target progress = %v, want < 1", got)
	}
	// Log-gap: the last stretch toward the target carries much of the
	// effort, so mid-range accuracy maps to well under its linear
	// share.
	if got := prog(0.5); got >= 0.5 {
		t.Errorf("half-accuracy progress = %v, want < 0.5 under log-gap closure", got)
	}
	empty := &Result{}
	if empty.GlobalPPW() != 0 || empty.LocalPPW() != 0 {
		t.Error("zero-energy results should report zero PPW")
	}
}

func TestDefaultsApplied(t *testing.T) {
	eng := New(Config{})
	cfg := eng.Config()
	if cfg.Workload == nil || cfg.Fleet == nil {
		t.Fatal("defaults not applied")
	}
	if cfg.MaxRounds != DefaultMaxRounds {
		t.Errorf("MaxRounds = %d", cfg.MaxRounds)
	}
	if cfg.StragglerFactor != DefaultStragglerFactor {
		t.Errorf("StragglerFactor = %v", cfg.StragglerFactor)
	}
	if len(cfg.Fleet) != 200 {
		t.Errorf("default fleet = %d devices", len(cfg.Fleet))
	}
	if cfg.TargetAccuracy <= cfg.Workload.AccuracyFloor || cfg.TargetAccuracy >= cfg.Workload.AccuracyCeiling {
		t.Errorf("default target %v outside (floor, ceiling)", cfg.TargetAccuracy)
	}
}

func TestEmptySelectionRound(t *testing.T) {
	eng := New(quickCfg(18))
	_, res := eng.RunRound(&stablePolicy{}, 0, 0.25)
	if res.Accuracy != 0.25 {
		t.Error("round with no participants must leave accuracy unchanged")
	}
	if res.Kept != 0 {
		t.Error("no updates should be kept")
	}
	if res.EnergyTotalJ <= 0 {
		t.Error("idle fleet still burns energy")
	}
}

func TestPlateauShape(t *testing.T) {
	if plateau(1) < 0.99 {
		t.Errorf("plateau(1) = %v, want ~1", plateau(1))
	}
	if plateau(0.18) > 0.75 {
		t.Errorf("plateau(0.18) = %v, want visibly degraded", plateau(0.18))
	}
	for q := 0.0; q < 1; q += 0.05 {
		if plateau(q) > plateau(q+0.05)+1e-12 {
			t.Fatal("plateau must be monotone in round quality")
		}
	}
}

func TestAccuracyTraceMonotonicEnvelope(t *testing.T) {
	res := New(quickCfg(19)).Run(newRandomPolicy(3))
	// Individual rounds may regress slightly, but the running max
	// must approach the target.
	runMax := 0.0
	for _, a := range res.AccuracyTrace {
		if a > runMax {
			runMax = a
		}
		if a < 0 || a > 1 {
			t.Fatalf("accuracy %v out of range", a)
		}
	}
	if runMax < res.TargetAccuracy {
		t.Error("trace never reached the target despite convergence")
	}
}
