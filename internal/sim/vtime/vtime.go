// Package vtime is the engine's deterministic virtual-time event
// queue: a binary min-heap of (time, sequence) pairs whose pop order
// is a pure function of the push sequence — events at equal times pop
// in push order, never in heap-internal or map-iteration order. Both
// the bulk-synchronous barrier and the asynchronous aggregation
// regimes of internal/sim resolve device completions through it, so
// identical configs replay byte-identically regardless of GOMAXPROCS,
// shard count, or scheduling.
//
// The queue allocates only when its backing array grows; Reset keeps
// the array for reuse, so steady-state rounds push and pop with zero
// allocation.
package vtime

// Event is one scheduled occurrence on the virtual clock.
type Event struct {
	// Time is the virtual timestamp, in simulated seconds.
	Time float64
	// Seq is the queue-assigned push sequence number; it breaks ties
	// between events at equal times (earlier push pops first), making
	// the pop order total and deterministic.
	Seq uint64
	// Payload identifies the event for the caller (the engine stores a
	// flight-slot or view index here).
	Payload int64
}

// before is the heap ordering: strictly earlier time, or equal time
// and earlier push.
func (e Event) before(o Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	return e.Seq < o.Seq
}

// Queue is a deterministic virtual-time event queue. The zero value is
// ready to use.
type Queue struct {
	h   []Event
	seq uint64
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Push schedules an event at the given virtual time. Push order is
// remembered: among events with equal times, the earliest push pops
// first.
func (q *Queue) Push(t float64, payload int64) {
	ev := Event{Time: t, Seq: q.seq, Payload: payload}
	q.seq++
	q.h = append(q.h, ev)
	q.up(len(q.h) - 1)
}

// Peek returns the next event without removing it; ok is false when
// the queue is empty.
func (q *Queue) Peek() (ev Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// Pop removes and returns the next event in (time, push-order) order;
// ok is false when the queue is empty.
func (q *Queue) Pop() (ev Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	ev = q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	return ev, true
}

// Reset drops all pending events and restarts the push sequence,
// keeping the backing array for allocation-free reuse.
func (q *Queue) Reset() {
	q.h = q.h[:0]
	q.seq = 0
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].before(q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		next := l
		if r < n && q.h[r].before(q.h[l]) {
			next = r
		}
		if !q.h[next].before(q.h[i]) {
			return
		}
		q.h[i], q.h[next] = q.h[next], q.h[i]
		i = next
	}
}
