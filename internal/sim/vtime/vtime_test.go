package vtime

import (
	"math"
	"sort"
	"testing"

	"autofl/internal/rng"
)

// TestPopOrder pins the ordering contract: events pop by time, and
// equal-time events pop in push order.
func TestPopOrder(t *testing.T) {
	var q Queue
	q.Push(3.0, 0)
	q.Push(1.0, 1)
	q.Push(2.0, 2)
	q.Push(1.0, 3) // ties with payload 1; pushed later, pops later
	q.Push(2.0, 4)

	want := []int64{1, 3, 2, 4, 0}
	for i, w := range want {
		ev, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d: queue empty", i)
		}
		if ev.Payload != w {
			t.Fatalf("pop %d: payload = %d, want %d", i, ev.Payload, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue reported ok")
	}
}

// TestPopMatchesStableSort cross-checks the heap against a stable sort
// of random events: the pop sequence must equal sorting by (time, push
// order).
func TestPopMatchesStableSort(t *testing.T) {
	s := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		var q Queue
		n := 1 + s.IntN(200)
		events := make([]Event, n)
		for i := 0; i < n; i++ {
			// Coarse times force plenty of exact ties.
			tm := float64(s.IntN(10))
			q.Push(tm, int64(i))
			events[i] = Event{Time: tm, Seq: uint64(i), Payload: int64(i)}
		}
		sort.SliceStable(events, func(a, b int) bool {
			return events[a].Time < events[b].Time
		})
		for i, want := range events {
			ev, ok := q.Pop()
			if !ok {
				t.Fatalf("trial %d pop %d: queue empty", trial, i)
			}
			if ev.Payload != want.Payload || ev.Time != want.Time {
				t.Fatalf("trial %d pop %d: got (%.0f, %d), want (%.0f, %d)",
					trial, i, ev.Time, ev.Payload, want.Time, want.Payload)
			}
		}
	}
}

// TestInterleavedPushPop exercises pushes between pops: the queue must
// stay a min-heap and never return a time earlier than one already
// popped when all later pushes are in the future.
func TestInterleavedPushPop(t *testing.T) {
	var q Queue
	s := rng.New(7)
	now := 0.0
	for i := 0; i < 1000; i++ {
		q.Push(now+s.Float64()*10, int64(i))
		if i%3 == 2 {
			ev, ok := q.Pop()
			if !ok {
				t.Fatal("unexpected empty queue")
			}
			if ev.Time < now {
				t.Fatalf("time went backwards: %.3f after %.3f", ev.Time, now)
			}
			now = ev.Time
		}
	}
	prev := now
	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		if ev.Time < prev {
			t.Fatalf("drain out of order: %.3f after %.3f", ev.Time, prev)
		}
		prev = ev.Time
	}
}

// TestPeek pins Peek as a non-destructive Pop preview.
func TestPeek(t *testing.T) {
	var q Queue
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue reported ok")
	}
	q.Push(2, 20)
	q.Push(1, 10)
	pk, _ := q.Peek()
	ev, _ := q.Pop()
	if pk != ev {
		t.Fatalf("peek %+v != pop %+v", pk, ev)
	}
	if q.Len() != 1 {
		t.Fatalf("len after one pop = %d, want 1", q.Len())
	}
}

// TestResetReuse pins that Reset restarts the tie-break sequence (so a
// reused queue orders a new round exactly like a fresh one) and keeps
// capacity.
func TestResetReuse(t *testing.T) {
	var q Queue
	for i := 0; i < 64; i++ {
		q.Push(1, int64(i))
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("len after reset = %d", q.Len())
	}
	q.Push(5, 100)
	q.Push(5, 200)
	ev, _ := q.Pop()
	if ev.Seq != 0 || ev.Payload != 100 {
		t.Fatalf("first event after reset = %+v, want seq 0 payload 100", ev)
	}
}

// TestSteadyStateAllocs pins the allocation contract: a warmed queue
// pushes and pops without allocating.
func TestSteadyStateAllocs(t *testing.T) {
	var q Queue
	for i := 0; i < 128; i++ {
		q.Push(float64(i), int64(i))
	}
	q.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			q.Push(math.Sqrt(float64(i)), int64(i))
		}
		for q.Len() > 0 {
			q.Pop()
		}
		q.Reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs = %.1f, want 0", allocs)
	}
}
