package sweep

import (
	"bytes"
	"strings"
	"testing"
)

// TestWriteIdentityBatteryBytes pins the tagged append-only encoding of
// the battery axes: tagged segments after the population tags, absent
// entirely at the axes' defaults so every pre-battery seed and cache
// digest survives.
func TestWriteIdentityBatteryBytes(t *testing.T) {
	var b strings.Builder
	Cell{
		Workload: "w", Setting: "s", Data: "d", Env: "e", Policy: "p",
		Replicate: 0, Battery: "charger", Selection: "battery_weighted",
	}.WriteIdentity(&b)
	want := "1:w|1:s|1:d|1:e|1:p|#0|battery=7:charger|selection=16:battery_weighted"
	if b.String() != want {
		t.Errorf("battery identity = %q, want %q", b.String(), want)
	}

	// Battery axes at their defaults contribute no bytes, even when the
	// earlier extension axes are in play.
	var ext, extBatt strings.Builder
	base := Cell{
		Workload: "w", Setting: "s", Data: "d", Env: "e", Policy: "p",
		Mode: "async", Alpha: "0.5",
	}
	base.WriteIdentity(&ext)
	withDefaults := base
	withDefaults.Battery, withDefaults.Selection = "", ""
	withDefaults.WriteIdentity(&extBatt)
	if ext.String() != extBatt.String() {
		t.Errorf("default battery axes changed the identity: %q vs %q", ext.String(), extBatt.String())
	}

	// And after the population tags when both groups are set.
	var full strings.Builder
	full2 := base
	full2.Sample = "64"
	full2.Devices = "1000"
	full2.Battery = "none"
	full2.WriteIdentity(&full)
	want = "1:w|1:s|1:d|1:e|1:p|#0|mode=5:async|alpha=3:0.5|devices=4:1000|sample=2:64|battery=4:none"
	if full.String() != want {
		t.Errorf("combined identity = %q, want %q", full.String(), want)
	}
}

// TestCellSeedInjectiveAcrossBatteryAxes: battery values must not
// collide with each other, with their absence, or with the earlier
// extension tags.
func TestCellSeedInjectiveAcrossBatteryAxes(t *testing.T) {
	g := Grid{Seed: 7}
	cells := []Cell{
		{Policy: "p"},
		{Policy: "p", Battery: "none"},
		{Policy: "p", Battery: "charger"},
		{Policy: "p", Selection: "random"},
		{Policy: "p", Battery: "none", Selection: "random"},
		{Policy: "p", Mode: "async", Battery: "none"},
		// Crafted values embedding the tag syntax stay distinct thanks to
		// the length prefixes.
		{Policy: "p|battery=4:none"},
		{Policy: "p", Battery: "none|selection=6:random"},
	}
	seen := map[uint64]string{}
	for _, c := range cells {
		s := g.CellSeed(c)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %q and %q", prev, c.Key())
		}
		seen[s] = c.Key()
	}
}

// TestGridBatteryExpansion: the battery axes multiply into Size and
// expand innermost of the value axes (selection inside battery, both
// outside only the replicate index).
func TestGridBatteryExpansion(t *testing.T) {
	g := Grid{
		Workloads: []string{"w"}, Settings: []string{"s"},
		Data: []string{"d"}, Envs: []string{"e"},
		Batteries:  []string{"none", "charger"},
		Selections: []string{"random", "battery_weighted"},
		Replicates: 3,
		Seed:       1,
	}
	want := 2 * 2 * 3
	if g.Size() != want {
		t.Fatalf("Size = %d, want %d", g.Size(), want)
	}
	cells := g.Cells()
	if len(cells) != want {
		t.Fatalf("len(Cells) = %d, want %d", len(cells), want)
	}
	if cells[0].Replicate != 0 || cells[1].Replicate != 1 {
		t.Errorf("replicates not innermost: %+v %+v", cells[0], cells[1])
	}
	if cells[0].Selection != "random" || cells[3].Selection != "battery_weighted" {
		t.Errorf("selection not second-innermost: %+v %+v", cells[0], cells[3])
	}
	if cells[0].Battery != "none" || cells[6].Battery != "charger" {
		t.Errorf("battery not outside selection: %+v %+v", cells[0], cells[6])
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Key()] {
			t.Fatalf("duplicate cell key %q", c.Key())
		}
		seen[c.Key()] = true
	}
}

// TestCellOrderingBatteryAxes: the battery axes order after the
// population axes and before the replicate index.
func TestCellOrderingBatteryAxes(t *testing.T) {
	a := Cell{Policy: "p", Battery: "charger", Replicate: 5}
	b := Cell{Policy: "p", Battery: "none", Replicate: 0}
	if !a.less(b) || b.less(a) {
		t.Error("battery must order before replicate")
	}
	c := Cell{Policy: "p", Battery: "none", Selection: "battery_weighted"}
	d := Cell{Policy: "p", Battery: "none", Selection: "random"}
	if !c.less(d) || d.less(c) {
		t.Error("selection must order within a battery value")
	}
	e := Cell{Policy: "p", Sample: "64", Battery: "z"}
	f := Cell{Policy: "p", Sample: "65", Battery: "a"}
	if !e.less(f) || f.less(e) {
		t.Error("population axes must order before battery axes")
	}
}

// TestSameGroupSeparatesBatteryAxes: replicate groups never mix battery
// or selection configurations.
func TestSameGroupSeparatesBatteryAxes(t *testing.T) {
	base := Cell{Workload: "w", Policy: "p", Replicate: 0}
	for _, mut := range []func(*Cell){
		func(c *Cell) { c.Battery = "none" },
		func(c *Cell) { c.Selection = "random" },
	} {
		other := base
		mut(&other)
		if sameGroup(base, other) {
			t.Errorf("battery axis did not separate groups: %+v vs %+v", base, other)
		}
	}
}

// TestWriteCSVBatteryColumnsGated pins the two-tier CSV contract: the
// battery column group appears only when some summary sits on a battery
// axis, so pre-battery sweeps — including extended mode-axis sweeps —
// keep their exact CSV bytes.
func TestWriteCSVBatteryColumnsGated(t *testing.T) {
	outcome := Outcome{Rounds: 1, FinalAccuracy: 0.5}
	baseCell := Cell{Workload: "w", Setting: "s", Data: "d", Env: "e", Policy: "p"}

	write := func(cells ...Cell) string {
		st := NewStore()
		for _, c := range cells {
			st.Add(Result{Cell: c, Outcome: outcome})
		}
		var buf bytes.Buffer
		if err := st.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	legacy := write(baseCell)
	if strings.Contains(legacy, "battery") || strings.Contains(legacy, "mode") {
		t.Errorf("legacy CSV grew extension columns: %q", legacy)
	}

	modeCell := baseCell
	modeCell.Mode = "async"
	extended := write(modeCell)
	if !strings.Contains(extended, "mean_staleness_mean") {
		t.Errorf("mode-axis CSV missing staleness columns: %q", extended)
	}
	if strings.Contains(extended, "battery") {
		t.Errorf("mode-axis CSV grew battery columns: %q", extended)
	}

	battCell := baseCell
	battCell.Battery = "charger"
	battOut := outcome
	battOut.ParticipationJain = 0.9
	st := NewStore()
	st.Add(Result{Cell: battCell, Outcome: battOut})
	var buf bytes.Buffer
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, col := range []string{"battery", "selection", "participation_jain_mean", "battery_mean_frac_stddev"} {
		if !strings.Contains(got, col) {
			t.Errorf("battery CSV missing %q: %q", col, got)
		}
	}
	// The battery group rides with, not instead of, the mode group when
	// both are present.
	both := write(modeCell, battCell)
	header := strings.SplitN(both, "\n", 2)[0]
	if !strings.Contains(header, "mean_staleness_mean") || !strings.Contains(header, "participation_jain_mean") {
		t.Errorf("combined CSV header missing a group: %q", header)
	}
}

// TestSummaryBatteryStatsGated: the battery Stats pointers are emitted
// only for groups on an explicit battery preset, so legacy summaries
// marshal byte-identically.
func TestSummaryBatteryStatsGated(t *testing.T) {
	st := NewStore()
	plain := Cell{Workload: "w", Setting: "s", Data: "d", Env: "e", Policy: "p"}
	batt := plain
	batt.Battery = "none"
	batt.Selection = "random"
	st.Add(
		Result{Cell: plain, Outcome: Outcome{Rounds: 1}},
		Result{Cell: batt, Outcome: Outcome{Rounds: 1, ParticipationJain: 0.8, BatteryMeanFrac: 0.4}},
	)
	sums := st.Summaries()
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	for _, s := range sums {
		if s.Battery == "" {
			if s.ParticipationJain != nil || s.BatteryMeanFrac != nil {
				t.Errorf("batteryless summary carries battery stats: %+v", s)
			}
			continue
		}
		if s.ParticipationJain == nil || s.ParticipationJain.Mean != 0.8 {
			t.Errorf("battery summary jain = %+v, want mean 0.8", s.ParticipationJain)
		}
		if s.BatteryMeanFrac == nil || s.BatteryMeanFrac.Mean != 0.4 {
			t.Errorf("battery summary mean frac = %+v, want mean 0.4", s.BatteryMeanFrac)
		}
	}
}
