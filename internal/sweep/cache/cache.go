// Package cache is the persistent result store of the sweep engine: a
// content-addressed, on-disk cache that lets an interrupted or extended
// grid resume without re-running finished cells, and serves
// shorter-horizon requests from longer cached runs.
//
// Every completed cell is keyed by an injective digest of the grid
// master seed and the cell's identity (axis values plus replicate
// index), so a cache populated by one grid serves any later grid that
// shares those — a rerun of a finished grid executes nothing, and
// extending an axis by one value executes only the new cells. The
// round horizon is deliberately NOT part of the digest: each entry
// records the horizon it ran under plus an optional per-round trace
// payload (sweep.RunTrace), and a request at a different horizon is
// answered by replaying the trace's prefix — a cell cached at 1000
// rounds serves a 200-round request byte-identically to a cold
// 200-round run, because per-cell seeds and every round's draws are
// independent of the horizon. A longer request than any cached run
// can witness is simply a miss and re-executes.
//
// Changing the grid seed or any axis value of a cell changes its
// digest, which is the cache's invalidation rule: stale entries are
// simply never looked up, and a manifest mismatch on open truncates
// the store outright.
//
// The on-disk format is a manifest (format version + grid seed) plus
// append-only JSONL, one entry per completed cell. Appends are single
// O_APPEND writes, so concurrent Cache handles on one directory
// interleave whole lines; a torn final line from a crash is skipped on
// the next load, and GC compacts superseded duplicates. Because
// encoding/json round-trips float64 exactly, a Result served from the
// cache is byte-identical in exported JSON/CSV to the fresh run that
// produced it.
//
// Entries also record the cell's measured wall-clock, which
// internal/sweep/schedule consumes to calibrate its cost model.
package cache

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"autofl/internal/sweep"
)

// formatVersion gates the on-disk layout; bump it to orphan old
// caches. v2 removed the horizon from the digest identity and added
// per-entry horizons and trace payloads.
const formatVersion = 2

const (
	manifestName = "manifest.json"
	resultsName  = "results.jsonl"
)

// Signature identifies one sweep request against the cache: the grid
// master seed every cell digest derives from, plus the round horizon
// the caller wants results at. Only the seed is part of entry
// identity; the horizon selects how entries are *served* — exactly,
// or by trace-prefix replay. Callers should normalize Rounds to the
// effective horizon (the root package maps 0 to the paper's 1000) so
// "default" and "explicit 1000" behave identically.
type Signature struct {
	GridSeed uint64 `json:"grid_seed"`
	Rounds   int    `json:"rounds"`
}

// CellDigest is the injective content address of one cell under the
// grid seed: SHA-256 over the seed header plus the cell's
// WriteIdentity encoding (the same bytes Grid.CellSeed hashes), so no
// two distinct (seed, cell) pairs collide whatever their axis values
// contain. The horizon is intentionally absent — one entry per cell
// serves every horizon its recorded run can witness.
func (s Signature) CellDigest(c sweep.Cell) string {
	h := sha256.New()
	fmt.Fprintf(h, "autofl-sweep-cache/v%d\n%d\n", formatVersion, s.GridSeed)
	c.WriteIdentity(h)
	return hex.EncodeToString(h.Sum(nil))
}

// manifest is the on-disk header pinning a cache directory to one
// format version and grid seed.
type manifest struct {
	Version  int    `json:"version"`
	GridSeed uint64 `json:"grid_seed"`
}

// Entry is one cached cell: its digest, the horizon it ran under, the
// result it produced, the wall-clock the execution took (the
// scheduler's calibration signal), and the optional per-round trace
// that lets the entry serve shorter horizons.
type Entry struct {
	Digest string `json:"digest"`
	// Rounds is the horizon the entry answers exactly. For traced
	// entries it is the trace length — the rounds the run actually
	// executed, first-hand evidence that stays honest even if a
	// caller opens the cache at one horizon and bounds the runner at
	// another. (A converged run's trace ends at its convergence
	// round; serveAt's convergence rule covers every longer horizon.)
	// Untraced entries have no such witness and record the signature
	// horizon they were stored under.
	Rounds      int             `json:"rounds"`
	Result      sweep.Result    `json:"result"`
	WallSeconds float64         `json:"wall_seconds"`
	Trace       *sweep.RunTrace `json:"trace,omitempty"`
}

// serveAt returns the entry's outcome under a horizon of h rounds, if
// the recorded run can witness it: exactly (same horizon), as-is (the
// run converged within h rounds, so a longer horizon changes
// nothing), or by replaying the trace prefix. replayed reports
// whether the last path — an actual truncation of a longer run — was
// taken.
func (e *Entry) serveAt(h int) (out sweep.Outcome, replayed, ok bool) {
	out = e.Result.Outcome
	if e.Rounds == h {
		return out, false, true
	}
	if out.Converged && out.Rounds <= h {
		return out, false, true
	}
	if h < e.Rounds {
		if o, ok := e.Trace.OutcomeAt(h); ok {
			return o, true, true
		}
	}
	return sweep.Outcome{}, false, false
}

// dominates reports whether entry a can serve every horizon entry b
// can (see serveAt). The servable sets, by entry shape:
//
//	converged + traced:    every horizon (replay below the convergence
//	                       round, converged rule at or above it)
//	converged, untraced:   every horizon ≥ the convergence round
//	unconverged + traced:  every horizon ≤ the witnessed rounds
//	unconverged, untraced: exactly the recorded horizon
func dominates(a, b Entry) bool {
	aConv, bConv := a.Result.Outcome.Converged, b.Result.Outcome.Converged
	aTraced, bTraced := a.Trace.Valid(), b.Trace.Valid()
	switch {
	case aConv && aTraced:
		return true
	case aConv:
		// a serves h ≥ its convergence round.
		switch {
		case bConv && bTraced:
			return false
		case bConv:
			return a.Result.Outcome.Rounds <= b.Result.Outcome.Rounds
		case bTraced:
			return false
		default:
			return a.Result.Outcome.Rounds <= b.Rounds
		}
	case aTraced:
		// a serves h ≤ its witnessed rounds.
		return !bConv && b.Rounds <= a.Rounds
	default:
		// a serves only its recorded horizon.
		return !bConv && !bTraced && a.Rounds == b.Rounds
	}
}

// prefer resolves two entries sharing a digest: an entry that can
// serve every horizon the other can wins outright. For incomparable
// pairs (neither range contains the other — only possible when
// traced and untraced runs were mixed in one directory) the longer
// horizon wins — it preserves the costlier recording, e.g. an
// untraced 1000-round entry survives a traced 200-round re-execution
// so 1000-round queries keep hitting — then traced, then converged,
// then the later write. A deterministic runner never produces
// genuinely conflicting duplicates; this just picks the dominant
// entry among redundant ones.
func prefer(old, new Entry) Entry {
	if dominates(new, old) {
		return new
	}
	if dominates(old, new) {
		return old
	}
	if old.Rounds != new.Rounds {
		if new.Rounds > old.Rounds {
			return new
		}
		return old
	}
	oldTraced, newTraced := old.Trace.Valid(), new.Trace.Valid()
	if oldTraced != newTraced {
		if newTraced {
			return new
		}
		return old
	}
	oldConv, newConv := old.Result.Outcome.Converged, new.Result.Outcome.Converged
	if oldConv != newConv {
		if newConv {
			return new
		}
		return old
	}
	return new
}

// Stats counts how a sweep interacted with the cache.
type Stats struct {
	// Hits is the number of cells served from the cache; Misses the
	// number executed (and, when successful, recorded).
	Hits, Misses int
	// PrefixHits counts the subset of Hits answered by replaying a
	// longer cached run's trace prefix (a genuinely shorter-horizon
	// request; converged entries served as-is at any horizon do not
	// count).
	PrefixHits int
}

// Cache is a persistent cell-result store bound to one directory and
// signature. It is safe for concurrent use by the engine's worker
// pool, and multiple Cache handles (even in different processes) may
// share a directory: appends are whole-line atomic, and a handle that
// misses a cell another handle wrote merely re-executes it — with
// identical output, by the engine's determinism guarantee.
type Cache struct {
	dir string
	sig Signature

	mu       sync.Mutex
	entries  map[string]Entry
	f        *os.File
	stats    Stats
	loadSkip int // disk lines not represented in entries (GC's debt)
	writeErr error
}

// Open binds a cache directory to the signature, creating it if
// needed. An existing directory whose manifest matches the format
// version and grid seed keeps its entries — the signature's horizon
// never invalidates, it only selects how entries are served. A
// version or seed mismatch invalidates the store (the manifest is
// rewritten and all entries dropped). Torn or corrupt JSONL lines —
// e.g. from a crash mid-append — and entries whose digest does not
// recompute from their recorded cell are skipped, not fatal.
func Open(dir string, sig Signature) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c := &Cache{dir: dir, sig: sig, entries: make(map[string]Entry)}

	keep := false
	if raw, err := os.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		var m manifest
		if json.Unmarshal(raw, &m) == nil && m.Version == formatVersion && m.GridSeed == sig.GridSeed {
			keep = true
		}
	}
	if keep {
		if err := c.load(); err != nil {
			return nil, err
		}
	} else if err := c.reset(); err != nil {
		return nil, err
	}

	f, err := os.OpenFile(filepath.Join(dir, resultsName), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c.f = f
	return c, nil
}

// load reads the JSONL store into memory, skipping unreadable lines
// and digest mismatches. Duplicates of a digest resolve by prefer, so
// a superseding long-horizon entry wins over the runs it subsumes.
func (c *Cache) load() error {
	f, err := os.Open(filepath.Join(c.dir, resultsName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("cache: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lines := 0
	for sc.Scan() {
		lines++
		var e Entry
		if json.Unmarshal(sc.Bytes(), &e) != nil {
			continue // torn or corrupt line
		}
		if e.Digest != c.sig.CellDigest(e.Result.Cell) {
			continue // foreign signature or tampered entry
		}
		if e.Trace != nil && !e.Trace.Valid() {
			e.Trace = nil // unknown payload version: keep the scalars
		}
		if e.Trace != nil {
			e.Rounds = e.Trace.Rounds() // the trace witnesses the horizon
		}
		if old, ok := c.entries[e.Digest]; ok {
			e = prefer(old, e)
		}
		c.entries[e.Digest] = e
	}
	c.loadSkip = lines - len(c.entries)
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// A newline-free garbage run (e.g. disk corruption) past the
			// line budget: keep what loaded — the missing cells simply
			// re-execute — rather than bricking the cache.
			return nil
		}
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// reset writes a fresh manifest for the signature (atomically, via
// temp file + rename) and truncates the entry store.
func (c *Cache) reset() error {
	raw, err := json.Marshal(manifest{Version: formatVersion, GridSeed: c.sig.GridSeed})
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, manifestName+".tmp*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, manifestName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.WriteFile(filepath.Join(c.dir, resultsName), nil, 0o644); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Invalidate drops every entry, on disk and in memory. The handle
// stays usable; cmd/autofl-sweep uses it for -resume=false, which
// re-executes the whole grid while refreshing the cache.
func (c *Cache) Invalidate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]Entry)
	c.loadSkip = 0
	if c.f != nil {
		if err := c.f.Truncate(0); err != nil {
			return fmt.Errorf("cache: %w", err)
		}
	}
	return nil
}

// Signature returns the signature the cache was opened with.
func (c *Cache) Signature() Signature { return c.sig }

// Len reports the number of cached cells.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Has reports whether the cache can serve the cell at the signature's
// horizon (exactly or via trace-prefix replay). It does not count
// toward Stats — only Runner lookups do.
func (c *Cache) Has(cell sweep.Cell) bool {
	d := c.sig.CellDigest(cell)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[d]
	if !ok {
		return false
	}
	_, _, ok = e.serveAt(c.sig.Rounds)
	return ok
}

// Get returns the cell's raw cached entry result, if present. The
// entry's native horizon may differ from the signature's; use Runner
// (or Has) for horizon-aware serving.
func (c *Cache) Get(cell sweep.Cell) (sweep.Result, bool) {
	d := c.sig.CellDigest(cell)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[d]
	return e.Result, ok
}

// Put records a completed cell and its measured wall-clock, appending
// one JSONL line. An Outcome.Trace payload is split off into the
// entry's trace (it never reaches the stored scalar result). Errored
// results are not cached — a failed cell is re-executed on resume so
// transient faults don't stick. A duplicate digest keeps whichever
// entry serves the wider horizon range (prefer).
func (c *Cache) Put(r sweep.Result, wallSeconds float64) error {
	if r.Err != "" {
		return nil
	}
	e := Entry{
		Digest:      c.sig.CellDigest(r.Cell),
		Rounds:      c.sig.Rounds,
		Result:      r,
		WallSeconds: wallSeconds,
		Trace:       r.Outcome.Trace,
	}
	// A trace is the run's own evidence of the horizon it witnessed
	// (see the Entry.Rounds doc); prefer it over the signature, which
	// a caller could have opened inconsistently with the runner's
	// round bound.
	if e.Trace.Valid() {
		e.Rounds = e.Trace.Rounds()
	}
	e.Result.Outcome.Trace = nil
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	// One write call under O_APPEND keeps concurrent handles whole-line
	// atomic on POSIX filesystems.
	if _, err := c.f.Write(line); err != nil {
		c.writeErr = fmt.Errorf("cache: %w", err)
		return c.writeErr
	}
	if old, ok := c.entries[e.Digest]; ok {
		e = prefer(old, e)
		c.loadSkip++ // one of the duplicate lines is now superseded
	}
	c.entries[e.Digest] = e
	return nil
}

// serve answers one Runner lookup at the signature horizon, updating
// stats.
func (c *Cache) serve(cell sweep.Cell, seed uint64) (sweep.Outcome, bool) {
	d := c.sig.CellDigest(cell)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[d]; ok && e.Result.Seed == seed {
		if out, replayed, ok := e.serveAt(c.sig.Rounds); ok {
			c.stats.Hits++
			if replayed {
				c.stats.PrefixHits++
			}
			return out, true
		}
	}
	c.stats.Misses++
	return sweep.Outcome{}, false
}

// Serve answers one cell lookup at the signature horizon — exactly,
// as-is for a run converged within the request, or by trace-prefix
// replay — updating Stats like a Runner lookup (a hit counts toward
// Hits/PrefixHits, a miss toward Misses). It is the coordinator-side
// half of the distributed execution path: internal/sweep/dist serves
// hits locally through it before shipping the missing cells to
// workers, and commits their results back with Put, so a shared cache
// dedups cells across machines by digest exactly as it does across
// goroutines.
func (c *Cache) Serve(cell sweep.Cell, seed uint64) (sweep.Outcome, bool) {
	return c.serve(cell, seed)
}

// Runner wraps a sweep.Runner with the cache: hits — including
// requests a longer-horizon entry can answer by trace-prefix replay —
// are served without executing; misses execute and record the result
// with its wall-clock and any trace payload the runner attached.
// Outcomes returned downstream never carry traces, so sweep output is
// identical with or without caching. The wrapped runner inherits the
// inner runner's concurrency safety. A failed append does not fail
// the cell (the computed outcome is still correct); the first such
// error is surfaced by Close.
func (c *Cache) Runner(run sweep.Runner) sweep.Runner {
	return func(ctx context.Context, cell sweep.Cell, seed uint64) (sweep.Outcome, error) {
		if out, ok := c.serve(cell, seed); ok {
			return out, nil
		}
		start := time.Now()
		out, err := run(ctx, cell, seed)
		if err != nil {
			return out, err
		}
		_ = c.Put(sweep.Result{Cell: cell, Seed: seed, Outcome: out}, time.Since(start).Seconds())
		out.Trace = nil
		return out, nil
	}
}

// Stats returns the hit/miss counts accumulated by Runner lookups.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Entries returns the cached entries sorted by cell key, a
// deterministic view for calibration and inspection.
func (c *Cache) Entries() []Entry {
	c.mu.Lock()
	out := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return out[i].Result.Cell.Key() < out[j].Result.Cell.Key()
	})
	return out
}

// GC compacts the JSONL store down to the live entry set: superseded
// duplicate digests, torn or corrupt lines, and entries whose digest
// no longer matches the manifest's grid seed are dropped; the
// surviving entries are rewritten sorted by cell key (atomically, via
// temp file + rename) and the append handle reopened on the compact
// file. It returns the surviving entry count and the number of disk
// lines dropped. GC is a maintenance operation for a quiescent
// directory: concurrent handles appending to the old file lose those
// appends (their cells simply re-execute later).
func (c *Cache) GC() (kept, dropped int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	entries := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Result.Cell.Key() < entries[j].Result.Cell.Key()
	})

	tmp, err := os.CreateTemp(c.dir, resultsName+".tmp*")
	if err != nil {
		return 0, 0, fmt.Errorf("cache: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, e := range entries {
		line, merr := json.Marshal(e)
		if merr != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return 0, 0, fmt.Errorf("cache: %w", merr)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, 0, fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, 0, fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, resultsName)); err != nil {
		os.Remove(tmp.Name())
		return 0, 0, fmt.Errorf("cache: %w", err)
	}
	// Reopen the append handle on the compacted file; the old handle
	// points at the unlinked inode.
	if c.f != nil {
		c.f.Close()
	}
	f, err := os.OpenFile(filepath.Join(c.dir, resultsName), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		c.f = nil
		return 0, 0, fmt.Errorf("cache: %w", err)
	}
	c.f = f
	dropped = c.loadSkip
	c.loadSkip = 0
	return len(entries), dropped, nil
}

// GCDir compacts an existing cache directory in place, keyed by the
// grid seed its own manifest records — unlike Open, it never resets
// the store, so it is safe to run without knowing the seed the cache
// was built with. It fails if the directory holds no manifest of the
// current format version.
func GCDir(dir string) (kept, dropped int, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, 0, fmt.Errorf("cache: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0, 0, fmt.Errorf("cache: bad manifest: %w", err)
	}
	if m.Version != formatVersion {
		return 0, 0, fmt.Errorf("cache: manifest version %d, want %d (re-populate the cache)", m.Version, formatVersion)
	}
	c, err := Open(dir, Signature{GridSeed: m.GridSeed})
	if err != nil {
		return 0, 0, err
	}
	kept, dropped, err = c.GC()
	if cerr := c.Close(); err == nil {
		err = cerr
	}
	return kept, dropped, err
}

// Close releases the append handle and reports the first write error
// Runner swallowed, if any.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	werr := c.writeErr
	if c.f != nil {
		if err := c.f.Close(); err != nil && werr == nil {
			werr = fmt.Errorf("cache: %w", err)
		}
		c.f = nil
	}
	return werr
}
