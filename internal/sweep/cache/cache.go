// Package cache is the persistent result store of the sweep engine: a
// content-addressed, on-disk cache that lets an interrupted or extended
// grid resume without re-running finished cells.
//
// Every completed cell is keyed by an injective digest of the run
// signature (grid master seed, round horizon) and the cell's identity
// (axis values plus replicate index), so a cache populated by one grid
// serves any later grid that shares those — a rerun of a finished grid
// executes nothing, and extending an axis by one value executes only
// the new cells. Changing the grid seed, the round horizon, or any
// axis value of a cell changes its digest, which is the cache's
// invalidation rule: stale entries are simply never looked up, and a
// manifest mismatch on open truncates the store outright.
//
// The on-disk format is a manifest (format version + signature) plus
// append-only JSONL, one entry per completed cell. Appends are single
// O_APPEND writes, so concurrent Cache handles on one directory
// interleave whole lines; a torn final line from a crash is skipped on
// the next load. Because encoding/json round-trips float64 exactly, a
// Result served from the cache is byte-identical in exported JSON/CSV
// to the fresh run that produced it.
//
// Entries also record the cell's measured wall-clock, which
// internal/sweep/schedule consumes to calibrate its cost model.
package cache

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"autofl/internal/sweep"
)

// formatVersion gates the on-disk layout; bump it to orphan old caches.
const formatVersion = 1

const (
	manifestName = "manifest.json"
	resultsName  = "results.jsonl"
)

// Signature identifies one reproducible sweep configuration: every
// cell digest is derived from it, so caches never serve results across
// grid seeds or round horizons. Callers should normalize Rounds to the
// effective horizon (the root package maps 0 to the paper's 1000)
// before opening, so "default" and "explicit 1000" share entries.
type Signature struct {
	GridSeed uint64 `json:"grid_seed"`
	Rounds   int    `json:"rounds"`
}

// CellDigest is the injective content address of one cell under the
// signature: SHA-256 over the signature header plus the cell's
// WriteIdentity encoding (the same bytes Grid.CellSeed hashes), so no
// two distinct (signature, cell) pairs collide whatever their axis
// values contain.
func (s Signature) CellDigest(c sweep.Cell) string {
	h := sha256.New()
	fmt.Fprintf(h, "autofl-sweep-cache/v%d\n%d\n%d\n", formatVersion, s.GridSeed, s.Rounds)
	c.WriteIdentity(h)
	return hex.EncodeToString(h.Sum(nil))
}

// manifest is the on-disk header pinning a cache directory to one
// format version and signature.
type manifest struct {
	Version   int       `json:"version"`
	Signature Signature `json:"signature"`
}

// Entry is one cached cell: its digest, the result it produced, and
// the wall-clock the execution took (the scheduler's calibration
// signal).
type Entry struct {
	Digest      string       `json:"digest"`
	Result      sweep.Result `json:"result"`
	WallSeconds float64      `json:"wall_seconds"`
}

// Stats counts how a sweep interacted with the cache.
type Stats struct {
	// Hits is the number of cells served from the cache; Misses the
	// number executed (and, when successful, recorded).
	Hits, Misses int
}

// Cache is a persistent cell-result store bound to one directory and
// signature. It is safe for concurrent use by the engine's worker
// pool, and multiple Cache handles (even in different processes) may
// share a directory: appends are whole-line atomic, and a handle that
// misses a cell another handle wrote merely re-executes it — with
// identical output, by the engine's determinism guarantee.
type Cache struct {
	dir string
	sig Signature

	mu       sync.Mutex
	entries  map[string]Entry
	f        *os.File
	stats    Stats
	writeErr error
}

// Open binds a cache directory to the signature, creating it if
// needed. An existing directory whose manifest matches the signature
// keeps its entries; a version or signature mismatch invalidates the
// store (the manifest is rewritten and all entries dropped). Torn or
// corrupt JSONL lines — e.g. from a crash mid-append — and entries
// whose digest does not recompute from their recorded cell are
// skipped, not fatal.
func Open(dir string, sig Signature) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c := &Cache{dir: dir, sig: sig, entries: make(map[string]Entry)}

	keep := false
	if raw, err := os.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		var m manifest
		if json.Unmarshal(raw, &m) == nil && m.Version == formatVersion && m.Signature == sig {
			keep = true
		}
	}
	if keep {
		if err := c.load(); err != nil {
			return nil, err
		}
	} else if err := c.reset(); err != nil {
		return nil, err
	}

	f, err := os.OpenFile(filepath.Join(dir, resultsName), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c.f = f
	return c, nil
}

// load reads the JSONL store into memory, skipping unreadable lines
// and digest mismatches. Later duplicates of a digest win, matching
// append order.
func (c *Cache) load() error {
	f, err := os.Open(filepath.Join(c.dir, resultsName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("cache: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var e Entry
		if json.Unmarshal(sc.Bytes(), &e) != nil {
			continue // torn or corrupt line
		}
		if e.Digest != c.sig.CellDigest(e.Result.Cell) {
			continue // foreign signature or tampered entry
		}
		c.entries[e.Digest] = e
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// A newline-free garbage run (e.g. disk corruption) past the
			// line budget: keep what loaded — the missing cells simply
			// re-execute — rather than bricking the cache.
			return nil
		}
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// reset writes a fresh manifest for the signature (atomically, via
// temp file + rename) and truncates the entry store.
func (c *Cache) reset() error {
	raw, err := json.Marshal(manifest{Version: formatVersion, Signature: c.sig})
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, manifestName+".tmp*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, manifestName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.WriteFile(filepath.Join(c.dir, resultsName), nil, 0o644); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Invalidate drops every entry, on disk and in memory. The handle
// stays usable; cmd/autofl-sweep uses it for -resume=false, which
// re-executes the whole grid while refreshing the cache.
func (c *Cache) Invalidate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]Entry)
	if c.f != nil {
		if err := c.f.Truncate(0); err != nil {
			return fmt.Errorf("cache: %w", err)
		}
	}
	return nil
}

// Signature returns the signature the cache was opened with.
func (c *Cache) Signature() Signature { return c.sig }

// Len reports the number of cached cells.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Has reports whether the cell's result is cached. It does not count
// toward Stats — only Runner lookups do.
func (c *Cache) Has(cell sweep.Cell) bool {
	d := c.sig.CellDigest(cell)
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[d]
	return ok
}

// Get returns the cached result for the cell, if present.
func (c *Cache) Get(cell sweep.Cell) (sweep.Result, bool) {
	d := c.sig.CellDigest(cell)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[d]
	return e.Result, ok
}

// Put records a completed cell and its measured wall-clock, appending
// one JSONL line. Errored results are not cached — a failed cell is
// re-executed on resume so transient faults don't stick. Put is
// idempotent per digest (a duplicate overwrites with equal content).
func (c *Cache) Put(r sweep.Result, wallSeconds float64) error {
	if r.Err != "" {
		return nil
	}
	e := Entry{Digest: c.sig.CellDigest(r.Cell), Result: r, WallSeconds: wallSeconds}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	// One write call under O_APPEND keeps concurrent handles whole-line
	// atomic on POSIX filesystems.
	if _, err := c.f.Write(line); err != nil {
		c.writeErr = fmt.Errorf("cache: %w", err)
		return c.writeErr
	}
	c.entries[e.Digest] = e
	return nil
}

// Runner wraps a sweep.Runner with the cache: hits are served without
// executing, misses execute and record the result with its wall-clock.
// The wrapped runner inherits the inner runner's concurrency safety. A
// failed append does not fail the cell (the computed outcome is still
// correct); the first such error is surfaced by Close.
func (c *Cache) Runner(run sweep.Runner) sweep.Runner {
	return func(ctx context.Context, cell sweep.Cell, seed uint64) (sweep.Outcome, error) {
		if r, ok := c.Get(cell); ok && r.Seed == seed {
			c.mu.Lock()
			c.stats.Hits++
			c.mu.Unlock()
			return r.Outcome, nil
		}
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
		start := time.Now()
		out, err := run(ctx, cell, seed)
		if err != nil {
			return out, err
		}
		_ = c.Put(sweep.Result{Cell: cell, Seed: seed, Outcome: out}, time.Since(start).Seconds())
		return out, nil
	}
}

// Stats returns the hit/miss counts accumulated by Runner lookups.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Entries returns the cached entries sorted by cell key, a
// deterministic view for calibration and inspection.
func (c *Cache) Entries() []Entry {
	c.mu.Lock()
	out := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return out[i].Result.Cell.Key() < out[j].Result.Cell.Key()
	})
	return out
}

// Close releases the append handle and reports the first write error
// Runner swallowed, if any.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	werr := c.writeErr
	if c.f != nil {
		if err := c.f.Close(); err != nil && werr == nil {
			werr = fmt.Errorf("cache: %w", err)
		}
		c.f = nil
	}
	return werr
}
