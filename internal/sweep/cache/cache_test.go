package cache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"autofl/internal/rng"
	"autofl/internal/sweep"
)

// testGrid is a 16-cell grid: 2 data × 2 envs × 2 policies × 2
// replicates.
func testGrid() sweep.Grid {
	return sweep.Grid{
		Workloads:  []string{"CNN-MNIST"},
		Settings:   []string{"S3"},
		Data:       []string{"iid", "noniid50"},
		Envs:       []string{"ideal", "field"},
		Policies:   []string{"FedAvg-Random", "AutoFL"},
		Replicates: 2,
		Seed:       42,
	}
}

func testSig() Signature { return Signature{GridSeed: 42, Rounds: 100} }

// fakeRunner derives a deterministic outcome from the cell seed alone,
// standing in for a Scenario run.
func fakeRunner(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
	s := rng.New(seed)
	return sweep.Outcome{
		Converged:       s.Bool(0.5),
		Rounds:          1 + s.IntN(100),
		TimeToTargetSec: 10 * s.Float64(),
		EnergyToTargetJ: 100 * s.Float64(),
		GlobalPPW:       s.Float64(),
		LocalPPW:        s.Float64(),
		FinalAccuracy:   s.Float64(),
	}, nil
}

// countingRunner wraps a runner and counts executions per cell key.
type countingRunner struct {
	mu    sync.Mutex
	calls map[string]int
	inner sweep.Runner
}

func newCounting(inner sweep.Runner) *countingRunner {
	return &countingRunner{calls: map[string]int{}, inner: inner}
}

func (c *countingRunner) run(ctx context.Context, cell sweep.Cell, seed uint64) (sweep.Outcome, error) {
	c.mu.Lock()
	c.calls[cell.Key()]++
	c.mu.Unlock()
	return c.inner(ctx, cell, seed)
}

func (c *countingRunner) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.calls {
		n += v
	}
	return n
}

func mustJSON(t *testing.T, s *sweep.ResultStore) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func mustCSV(t *testing.T, s *sweep.ResultStore) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func mustOpen(t *testing.T, dir string, sig Signature) *Cache {
	t.Helper()
	c, err := Open(dir, sig)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServeMatchesRunnerLookups pins the exported Serve path the
// distributed coordinator uses: same answers, same stats accounting,
// as the Runner wrapper's internal lookups.
func TestServeMatchesRunnerLookups(t *testing.T) {
	g := testGrid()
	c := mustOpen(t, t.TempDir(), testSig())

	cells := g.Cells()
	// Misses on an empty cache count toward Stats.Misses, like the
	// Runner's execute path.
	if _, ok := c.Serve(cells[0], g.CellSeed(cells[0])); ok {
		t.Fatal("empty cache served a cell")
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats after miss = %+v", st)
	}

	// Commit one cell the way the coordinator does, then Serve must
	// hit with the identical outcome — and a wrong seed must not.
	seed := g.CellSeed(cells[0])
	out, err := fakeRunner(context.Background(), cells[0], seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(sweep.Result{Cell: cells[0], Seed: seed, Outcome: out}, 0.5); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Serve(cells[0], seed)
	if !ok || got != out {
		t.Fatalf("Serve = %+v ok=%v, want the committed outcome", got, ok)
	}
	if _, ok := c.Serve(cells[0], seed+1); ok {
		t.Error("Serve hit with a mismatched seed")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats after hit+bad-seed = %+v", st)
	}
}

// TestWarmRerunExecutesNothing is the headline acceptance bar: a rerun
// of a finished grid against its cache executes zero cells and emits
// byte-identical JSON and CSV to the cold run.
func TestWarmRerunExecutesNothing(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()

	cold := mustOpen(t, dir, testSig())
	cr := newCounting(fakeRunner)
	coldStore, err := sweep.Run(context.Background(), g, cold.Runner(cr.run), sweep.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cr.total() != g.Size() {
		t.Fatalf("cold run executed %d cells, want %d", cr.total(), g.Size())
	}
	if st := cold.Stats(); st.Hits != 0 || st.Misses != g.Size() {
		t.Fatalf("cold stats = %+v", st)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm := mustOpen(t, dir, testSig())
	if warm.Len() != g.Size() {
		t.Fatalf("reloaded cache holds %d entries, want %d", warm.Len(), g.Size())
	}
	wr := newCounting(fakeRunner)
	warmStore, err := sweep.Run(context.Background(), g, warm.Runner(wr.run), sweep.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if wr.total() != 0 {
		t.Errorf("warm rerun executed %d cells, want 0: %v", wr.total(), wr.calls)
	}
	if st := warm.Stats(); st.Hits != g.Size() || st.Misses != 0 {
		t.Errorf("warm stats = %+v", st)
	}
	if !bytes.Equal(mustJSON(t, coldStore), mustJSON(t, warmStore)) {
		t.Error("warm JSON differs from cold JSON")
	}
	if !bytes.Equal(mustCSV(t, coldStore), mustCSV(t, warmStore)) {
		t.Error("warm CSV differs from cold CSV")
	}
}

// TestExtendedGridExecutesOnlyNewCells extends a finished grid by one
// axis value and one replicate and checks that exactly the new cells
// run.
func TestExtendedGridExecutesOnlyNewCells(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()

	c := mustOpen(t, dir, testSig())
	if _, err := sweep.Run(context.Background(), g, c.Runner(fakeRunner), sweep.Options{}); err != nil {
		t.Fatal(err)
	}

	// One new policy and one new replicate: the extended grid has
	// 2×2×3×3 = 36 cells, 16 of which are cached.
	ext := g
	ext.Policies = append(append([]string{}, g.Policies...), "Power")
	ext.Replicates = 3

	cached := map[string]bool{}
	for _, cell := range g.Cells() {
		cached[cell.Key()] = true
	}
	cr := newCounting(fakeRunner)
	store, err := sweep.Run(context.Background(), ext, c.Runner(cr.run), sweep.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != ext.Size() {
		t.Fatalf("extended run stored %d cells, want %d", store.Len(), ext.Size())
	}
	wantNew := ext.Size() - g.Size()
	if cr.total() != wantNew {
		t.Errorf("extended run executed %d cells, want %d", cr.total(), wantNew)
	}
	for key, n := range cr.calls {
		if cached[key] {
			t.Errorf("cached cell %s was re-executed", key)
		}
		if n != 1 {
			t.Errorf("cell %s executed %d times", key, n)
		}
	}

	// The extended output matches a cache-free run of the same grid.
	fresh, err := sweep.Run(context.Background(), ext, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, store), mustJSON(t, fresh)) {
		t.Error("extended cached JSON differs from a cache-free run")
	}
}

// TestCrashResume cancels a sweep mid-grid, then resumes it and checks
// that exactly the missing cells run and no cached cell executes
// twice.
func TestCrashResume(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	crash := mustOpen(t, dir, testSig())
	var mu sync.Mutex
	ran := 0
	crashRunner := func(ctx context.Context, cell sweep.Cell, seed uint64) (sweep.Outcome, error) {
		mu.Lock()
		ran++
		if ran == 5 {
			cancel()
		}
		mu.Unlock()
		return fakeRunner(ctx, cell, seed)
	}
	_, err := sweep.Run(ctx, g, crash.Runner(crashRunner), sweep.Options{Parallel: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := crash.Close(); err != nil {
		t.Fatal(err)
	}

	resume := mustOpen(t, dir, testSig())
	survived := resume.Len()
	if survived == 0 || survived >= g.Size() {
		t.Fatalf("crash left %d cached cells, want a strict partial of %d", survived, g.Size())
	}
	cachedKeys := map[string]bool{}
	for _, e := range resume.Entries() {
		cachedKeys[e.Result.Cell.Key()] = true
	}

	cr := newCounting(fakeRunner)
	store, err := sweep.Run(context.Background(), g, resume.Runner(cr.run), sweep.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := g.Size() - survived; cr.total() != want {
		t.Errorf("resume executed %d cells, want exactly the %d missing", cr.total(), want)
	}
	for key := range cr.calls {
		if cachedKeys[key] {
			t.Errorf("resume re-executed cached cell %s", key)
		}
	}

	// The resumed output matches an uninterrupted cache-free run.
	fresh, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, store), mustJSON(t, fresh)) {
		t.Error("resumed JSON differs from an uninterrupted run")
	}
}

// TestSeedMismatchInvalidates reopens a populated cache under a
// different grid seed, which must drop every entry; a changed horizon
// alone keeps the store (entries are served per-horizon instead).
func TestSeedMismatchInvalidates(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()
	c := mustOpen(t, dir, testSig())
	if _, err := sweep.Run(context.Background(), g, c.Runner(fakeRunner), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	roundsChanged := mustOpen(t, dir, Signature{GridSeed: 42, Rounds: 200})
	if roundsChanged.Len() != g.Size() {
		t.Errorf("horizon change kept %d entries, want all %d", roundsChanged.Len(), g.Size())
	}
	roundsChanged.Close()

	seedChanged := mustOpen(t, dir, Signature{GridSeed: 43, Rounds: 100})
	if seedChanged.Len() != 0 {
		t.Errorf("grid-seed change kept %d entries, want 0", seedChanged.Len())
	}
}

// TestAxisValueChangesDigest is the axis-definition invalidation rule:
// renaming any axis value of a cell changes its digest, including
// values crafted to collide under naive string joining.
func TestAxisValueChangesDigest(t *testing.T) {
	sig := testSig()
	base := sweep.Cell{Workload: "w", Setting: "s", Data: "d", Env: "e", Policy: "p"}
	variants := []sweep.Cell{
		{Workload: "w2", Setting: "s", Data: "d", Env: "e", Policy: "p"},
		{Workload: "w", Setting: "s2", Data: "d", Env: "e", Policy: "p"},
		{Workload: "w", Setting: "s", Data: "d2", Env: "e", Policy: "p"},
		{Workload: "w", Setting: "s", Data: "d", Env: "e2", Policy: "p"},
		{Workload: "w", Setting: "s", Data: "d", Env: "e", Policy: "p2"},
		{Workload: "w", Setting: "s", Data: "d", Env: "e", Policy: "p", Replicate: 1},
		// Separator-stuffing collisions under a naive "w|s" join.
		{Workload: "w|s", Setting: "", Data: "d", Env: "e", Policy: "p"},
		{Workload: "w|", Setting: "s", Data: "d", Env: "e", Policy: "p"},
	}
	seen := map[string]int{sig.CellDigest(base): -1}
	for i, v := range variants {
		d := sig.CellDigest(v)
		if j, dup := seen[d]; dup {
			t.Errorf("digest collision between variants %d and %d", i, j)
		}
		seen[d] = i
	}
}

// TestErroredCellsNotCached checks that failures are re-executed on
// resume rather than served stale.
func TestErroredCellsNotCached(t *testing.T) {
	g := sweep.Grid{Policies: []string{"ok", "bad"}, Seed: 7}
	dir := t.TempDir()
	run := func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		if c.Policy == "bad" {
			return sweep.Outcome{}, errors.New("transient")
		}
		return fakeRunner(ctx, c, seed)
	}
	c := mustOpen(t, dir, Signature{GridSeed: 7, Rounds: 10})
	if _, err := sweep.Run(context.Background(), g, c.Runner(run), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want only the successful cell", c.Len())
	}
	cr := newCounting(run)
	if _, err := sweep.Run(context.Background(), g, c.Runner(cr.run), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if cr.total() != 1 {
		t.Errorf("rerun executed %d cells, want 1 (the errored one)", cr.total())
	}
	if _, bad := cr.calls[sweep.Cell{Policy: "bad"}.Key()]; !bad {
		t.Error("the errored cell was not re-executed")
	}
}

// TestCorruptLinesSkipped simulates a crash-torn tail and foreign
// garbage in the JSONL store; valid entries must survive the reload.
func TestCorruptLinesSkipped(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()
	c := mustOpen(t, dir, testSig())
	if _, err := sweep.Run(context.Background(), g, c.Runner(fakeRunner), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	path := filepath.Join(dir, "results.jsonl")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Garbage, a wrong-digest entry, and a torn final line.
	fmt.Fprintln(f, "not json at all")
	fmt.Fprintln(f, `{"digest":"deadbeef","result":{"cell":{"workload":"x","setting":"","data":"","env":"","policy":"","replicate":0},"seed":1,"outcome":{"converged":false,"rounds":1,"time_to_target_sec":0,"energy_to_target_j":0,"global_ppw":0,"local_ppw":0,"final_accuracy":0}},"wall_seconds":0}`)
	fmt.Fprint(f, `{"digest":"tr`)
	f.Close()

	re := mustOpen(t, dir, testSig())
	if re.Len() != g.Size() {
		t.Errorf("reload kept %d entries, want %d valid ones", re.Len(), g.Size())
	}
	cr := newCounting(fakeRunner)
	if _, err := sweep.Run(context.Background(), g, re.Runner(cr.run), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if cr.total() != 0 {
		t.Errorf("corruption caused %d re-executions, want 0", cr.total())
	}
}

// TestOversizedGarbageTailTolerated writes a newline-free garbage run
// past the scanner's line budget; Open must keep the valid entries
// instead of failing, so the cache never bricks its directory.
func TestOversizedGarbageTailTolerated(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()
	c := mustOpen(t, dir, testSig())
	if _, err := sweep.Run(context.Background(), g, c.Runner(fakeRunner), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	f, err := os.OpenFile(filepath.Join(dir, "results.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{'x'}, 5<<20)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := mustOpen(t, dir, testSig())
	if re.Len() != g.Size() {
		t.Errorf("reload kept %d entries, want %d despite the garbage tail", re.Len(), g.Size())
	}
}

// TestConcurrentWriters drives two handles on one directory from
// overlapping sweeps (run under -race in CI) and checks the merged
// store reloads complete and uncorrupted.
func TestConcurrentWriters(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()
	a := mustOpen(t, dir, testSig())
	b := mustOpen(t, dir, testSig())

	var wg sync.WaitGroup
	for _, c := range []*Cache{a, b} {
		wg.Add(1)
		go func(c *Cache) {
			defer wg.Done()
			if _, err := sweep.Run(context.Background(), g, c.Runner(fakeRunner), sweep.Options{Parallel: 4}); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir, testSig())
	if re.Len() != g.Size() {
		t.Fatalf("merged cache holds %d entries, want %d", re.Len(), g.Size())
	}
	for _, e := range re.Entries() {
		if e.Digest != testSig().CellDigest(e.Result.Cell) {
			t.Errorf("entry %s has a mismatched digest", e.Result.Cell.Key())
		}
	}
	cr := newCounting(fakeRunner)
	store, err := sweep.Run(context.Background(), g, re.Runner(cr.run), sweep.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cr.total() != 0 {
		t.Errorf("merged cache missed %d cells", cr.total())
	}
	fresh, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, store), mustJSON(t, fresh)) {
		t.Error("merged-cache JSON differs from a cache-free run")
	}
}

// TestInvalidate drops entries for -resume=false semantics: the next
// run re-executes everything while refreshing the store.
func TestInvalidate(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()
	c := mustOpen(t, dir, testSig())
	if _, err := sweep.Run(context.Background(), g, c.Runner(fakeRunner), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("Invalidate kept %d entries", c.Len())
	}
	cr := newCounting(fakeRunner)
	if _, err := sweep.Run(context.Background(), g, c.Runner(cr.run), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if cr.total() != g.Size() {
		t.Errorf("post-invalidate run executed %d cells, want %d", cr.total(), g.Size())
	}
	c.Close()
	re := mustOpen(t, dir, testSig())
	if re.Len() != g.Size() {
		t.Errorf("refreshed cache holds %d entries, want %d", re.Len(), g.Size())
	}
}

// TestEntriesSortedAndObservable pins the calibration view: entries
// come back sorted by cell key with positive wall-clock.
func TestEntriesSortedAndObservable(t *testing.T) {
	g := testGrid()
	c := mustOpen(t, t.TempDir(), testSig())
	if _, err := sweep.Run(context.Background(), g, c.Runner(fakeRunner), sweep.Options{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	entries := c.Entries()
	if len(entries) != g.Size() {
		t.Fatalf("Entries() = %d, want %d", len(entries), g.Size())
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Result.Cell.Key() >= entries[i].Result.Cell.Key() {
			t.Errorf("entries not sorted at %d", i)
		}
		if entries[i].WallSeconds < 0 {
			t.Errorf("negative wall-clock at %d", i)
		}
	}
}

// tracedFakeRunner stands in for the real traced Scenario runner: a
// horizon-bounded deterministic "simulator" whose per-round draws
// depend only on the seed and round index (never the horizon), whose
// run stops at the first round crossing the accuracy target, and
// whose outcome is the replay of its own trace — so a trace recorded
// at one horizon reproduces the runner's output at any shorter one,
// exactly like the engine.
func tracedFakeRunner(horizon int) sweep.Runner {
	return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		s := rng.New(seed)
		tr := &sweep.RunTrace{V: sweep.TraceVersion, TargetAccuracy: 0.9, AccuracyFloor: 0.1}
		acc := 0.1
		for i := 0; i < horizon; i++ {
			acc += s.Float64() * 0.08 // upward walk; cells cross 0.9 at varied rounds
			tr.Sec = append(tr.Sec, 1+s.Float64())
			tr.EnergyJ = append(tr.EnergyJ, 10+s.Float64())
			tr.ParticipantEnergyJ = append(tr.ParticipantEnergyJ, 4+s.Float64())
			tr.Accuracy = append(tr.Accuracy, acc)
			if acc >= 0.9 {
				break // converged: the run stops, like the engine
			}
		}
		out, ok := tr.OutcomeAt(horizon)
		if !ok {
			return sweep.Outcome{}, errors.New("tracedFakeRunner: self-replay failed")
		}
		out.Trace = tr
		return out, nil
	}
}

// stripTrace adapts a traced runner into one whose outcomes carry no
// payload, for cache-free reference runs.
func stripTrace(run sweep.Runner) sweep.Runner {
	return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		out, err := run(ctx, c, seed)
		out.Trace = nil
		return out, err
	}
}

// TestHorizonPrefixServing is the cross-horizon acceptance bar at the
// cache level: a grid cached at 100 rounds serves a 25-round request
// without executing a single cell, byte-identical to a cold 25-round
// sweep.
func TestHorizonPrefixServing(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()

	long := mustOpen(t, dir, Signature{GridSeed: 42, Rounds: 100})
	if _, err := sweep.Run(context.Background(), g, long.Runner(tracedFakeRunner(100)), sweep.Options{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if err := long.Close(); err != nil {
		t.Fatal(err)
	}

	short := mustOpen(t, dir, Signature{GridSeed: 42, Rounds: 25})
	cr := newCounting(tracedFakeRunner(25))
	served, err := sweep.Run(context.Background(), g, short.Runner(cr.run), sweep.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cr.total() != 0 {
		t.Errorf("short-horizon query executed %d cells, want 0", cr.total())
	}
	st := short.Stats()
	if st.Hits != g.Size() || st.Misses != 0 {
		t.Errorf("short-horizon stats = %+v, want all hits", st)
	}
	// PrefixHits counts exactly the serves that required truncating a
	// longer run: neither an exact-horizon entry nor a run that
	// converged within the request.
	wantPrefix := 0
	for _, e := range short.Entries() {
		out := e.Result.Outcome
		if e.Rounds != 25 && !(out.Converged && out.Rounds <= 25) {
			wantPrefix++
		}
	}
	if wantPrefix == 0 {
		t.Error("test grid produced no trace-replay serves")
	}
	if st.PrefixHits != wantPrefix {
		t.Errorf("PrefixHits = %d, want %d", st.PrefixHits, wantPrefix)
	}

	fresh, err := sweep.Run(context.Background(), g, stripTrace(tracedFakeRunner(25)), sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, served), mustJSON(t, fresh)) {
		t.Error("trace-served 25-round JSON differs from a cold 25-round sweep")
	}
	if !bytes.Equal(mustCSV(t, served), mustCSV(t, fresh)) {
		t.Error("trace-served 25-round CSV differs from a cold 25-round sweep")
	}
}

// TestLongerHorizonReRunsOnlyUnconverged checks the upgrade path: a
// cache built at 25 rounds answers a 100-round request from entries
// whose runs converged within 25 rounds (a longer horizon changes
// nothing for them) and re-executes exactly the rest.
func TestLongerHorizonReRunsOnlyUnconverged(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()

	short := mustOpen(t, dir, Signature{GridSeed: 42, Rounds: 25})
	if _, err := sweep.Run(context.Background(), g, short.Runner(tracedFakeRunner(25)), sweep.Options{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	unconverged := 0
	for _, e := range short.Entries() {
		if !e.Result.Outcome.Converged {
			unconverged++
		}
	}
	if unconverged == 0 || unconverged == g.Size() {
		t.Fatalf("test wants a mix, got %d/%d unconverged", unconverged, g.Size())
	}
	if err := short.Close(); err != nil {
		t.Fatal(err)
	}

	long := mustOpen(t, dir, Signature{GridSeed: 42, Rounds: 100})
	cr := newCounting(tracedFakeRunner(100))
	upgraded, err := sweep.Run(context.Background(), g, long.Runner(cr.run), sweep.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cr.total() != unconverged {
		t.Errorf("upgrade executed %d cells, want the %d unconverged ones", cr.total(), unconverged)
	}
	fresh, err := sweep.Run(context.Background(), g, stripTrace(tracedFakeRunner(100)), sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, upgraded), mustJSON(t, fresh)) {
		t.Error("upgraded JSON differs from a cold 100-round sweep")
	}
}

// TestUntracedEntriesServeOnlyTheirHorizon pins the conservative
// fallback: an entry without a trace that did not converge can answer
// only its own horizon.
func TestUntracedEntriesServeOnlyTheirHorizon(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()
	stalled := func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		out, err := fakeRunner(ctx, c, seed)
		out.Converged = false
		return out, err
	}

	c := mustOpen(t, dir, Signature{GridSeed: 42, Rounds: 100})
	if _, err := sweep.Run(context.Background(), g, c.Runner(stalled), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir, Signature{GridSeed: 42, Rounds: 25})
	cr := newCounting(stalled)
	if _, err := sweep.Run(context.Background(), g, re.Runner(cr.run), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if cr.total() != g.Size() {
		t.Errorf("untraced unconverged entries served %d cells across horizons", g.Size()-cr.total())
	}
}

// TestGCCompactsStore builds a store with superseded duplicates (a
// horizon upgrade) plus corrupt garbage, GCs it, and checks the
// compacted file keeps exactly the live entries and still serves.
func TestGCCompactsStore(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()

	short := mustOpen(t, dir, Signature{GridSeed: 42, Rounds: 25})
	if _, err := sweep.Run(context.Background(), g, short.Runner(tracedFakeRunner(25)), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := short.Close(); err != nil {
		t.Fatal(err)
	}

	// The upgrade appends replacement lines for every unconverged cell.
	long := mustOpen(t, dir, Signature{GridSeed: 42, Rounds: 100})
	if _, err := sweep.Run(context.Background(), g, long.Runner(tracedFakeRunner(100)), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := long.Close(); err != nil {
		t.Fatal(err)
	}

	// Plus garbage: a corrupt trailing line.
	f, err := os.OpenFile(filepath.Join(dir, "results.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "corrupt garbage")
	f.Close()

	gc := mustOpen(t, dir, Signature{GridSeed: 42, Rounds: 100})
	kept, dropped, err := gc.GC()
	if err != nil {
		t.Fatal(err)
	}
	if kept != g.Size() {
		t.Errorf("GC kept %d entries, want %d", kept, g.Size())
	}
	if dropped == 0 {
		t.Error("GC dropped nothing despite duplicates and garbage")
	}
	// The compacted file holds exactly one line per cell.
	raw, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(raw, []byte("\n")); lines != g.Size() {
		t.Errorf("compacted store has %d lines, want %d", lines, g.Size())
	}
	// The handle still appends and serves after GC.
	cr := newCounting(tracedFakeRunner(100))
	if _, err := sweep.Run(context.Background(), g, gc.Runner(cr.run), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if cr.total() != 0 {
		t.Errorf("post-GC run executed %d cells, want 0", cr.total())
	}
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}

	// A reload of the compacted store is complete, and a second GC is
	// a no-op.
	kept2, dropped2, err := GCDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if kept2 != g.Size() || dropped2 != 0 {
		t.Errorf("idempotent GC = (%d kept, %d dropped), want (%d, 0)", kept2, dropped2, g.Size())
	}
}

// TestGCDirRefusesForeignStores checks GCDir never resets a directory
// it cannot identify.
func TestGCDirRefusesForeignStores(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := GCDir(dir); err == nil {
		t.Error("GCDir of an empty directory should fail, not create a store")
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"version":1,"signature":{"grid_seed":1,"rounds":10}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := GCDir(dir); err == nil {
		t.Error("GCDir of an old-format store should fail rather than drop it")
	}
}

// TestMismatchedOpenHorizonCannotPoison pins the Put-side honesty
// rule: entries record the horizon their run actually witnessed, not
// the horizon the cache was opened with — so a caller that opens a
// cache at one horizon but bounds the runner at another cannot poison
// later queries with short runs served as long ones.
func TestMismatchedOpenHorizonCannotPoison(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()

	// Open claiming 100 rounds, but the runner only executes 25.
	lying := mustOpen(t, dir, Signature{GridSeed: 42, Rounds: 100})
	if _, err := sweep.Run(context.Background(), g, lying.Runner(tracedFakeRunner(25)), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, e := range lying.Entries() {
		if e.Rounds > 25 {
			t.Fatalf("entry claims %d rounds, runner executed at most 25", e.Rounds)
		}
	}
	if err := lying.Close(); err != nil {
		t.Fatal(err)
	}

	// An honest 100-round query re-executes every cell the short runs
	// cannot witness (the unconverged ones) instead of serving them.
	honest := mustOpen(t, dir, Signature{GridSeed: 42, Rounds: 100})
	cr := newCounting(tracedFakeRunner(100))
	store, err := sweep.Run(context.Background(), g, honest.Runner(cr.run), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sweep.Run(context.Background(), g, stripTrace(tracedFakeRunner(100)), sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, store), mustJSON(t, fresh)) {
		t.Error("mismatched-open cache corrupted an honest 100-round sweep")
	}
}

// TestPreferKeepsWiderServingEntry pins duplicate resolution: a
// traced re-execution at a shorter horizon must not evict an untraced
// long-horizon entry that still serves queries the new entry cannot
// (the long exact hit survives), while a dominant entry replaces a
// subsumed one.
func TestPreferKeepsWiderServingEntry(t *testing.T) {
	g := sweep.Grid{Policies: []string{"p"}, Seed: 9}
	cell := g.Cells()[0]
	seed := g.CellSeed(cell)
	dir := t.TempDir()
	stalled := func(ctx context.Context, c sweep.Cell, s uint64) (sweep.Outcome, error) {
		out, err := fakeRunner(ctx, c, s)
		out.Converged = false
		return out, err
	}

	// Untraced 1000-round entry...
	long := mustOpen(t, dir, Signature{GridSeed: 9, Rounds: 1000})
	if _, err := sweep.Run(context.Background(), g, long.Runner(stalled), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := long.Close(); err != nil {
		t.Fatal(err)
	}

	// ...then a traced 200-round re-execution of the same cell.
	short := mustOpen(t, dir, Signature{GridSeed: 9, Rounds: 200})
	if _, err := sweep.Run(context.Background(), g, short.Runner(tracedFakeRunner(200)), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := short.Close(); err != nil {
		t.Fatal(err)
	}

	// The 1000-round exact hit must survive the reload merge.
	re := mustOpen(t, dir, Signature{GridSeed: 9, Rounds: 1000})
	if _, ok := re.serve(cell, seed); !ok {
		t.Error("traced short re-execution evicted the untraced long entry")
	}
	re.Close()

	// A dominant traced long entry does replace everything.
	upgrade := mustOpen(t, dir, Signature{GridSeed: 9, Rounds: 1000})
	if _, err := sweep.Run(context.Background(), g, upgrade.Runner(tracedFakeRunner(1000)), sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{50, 200, 1000} {
		upgrade.sig.Rounds = h
		if !upgrade.Has(cell) {
			t.Errorf("dominant traced entry cannot serve horizon %d", h)
		}
	}
}
