package cache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeStore lays down a cache directory whose manifest matches sig —
// so Open takes the load path — with raw as the JSONL entry store.
func writeStore(tb testing.TB, sig Signature, raw []byte) string {
	tb.Helper()
	dir := tb.TempDir()
	m, err := json.Marshal(manifest{Version: formatVersion, GridSeed: sig.GridSeed})
	if err != nil {
		tb.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), append(m, '\n'), 0o644); err != nil {
		tb.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, resultsName), raw, 0o644); err != nil {
		tb.Fatal(err)
	}
	return dir
}

// FuzzLoad feeds arbitrary bytes to the JSONL entry loader. Open's
// contract is that a corrupt store never panics and never fails the
// open — torn lines, foreign digests, and newline-free garbage runs
// all degrade to skipped entries.
func FuzzLoad(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("{}\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte(`{"digest":"00","rounds":5,"result":{}}` + "\n"))
	f.Add([]byte(`{"digest":`)) // torn final line
	f.Add([]byte(`{"digest":"00","trace":{"v":99}}` + "\n"))
	f.Add([]byte(strings.Repeat("x", 1<<16)))                 // newline-free garbage
	f.Add([]byte("{}\n{}\n" + `{"rounds":-1,"result":{}}\n`)) // duplicate digests, bad horizon
	f.Add([]byte("\x00\xff\xfe\n"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		sig := Signature{GridSeed: 42, Rounds: 100}
		dir := writeStore(t, sig, raw)
		c, err := Open(dir, sig)
		if err != nil {
			t.Fatalf("Open on corrupt store: %v", err)
		}
		if c.Len() < 0 {
			t.Fatalf("negative Len %d", c.Len())
		}
		if err := c.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

// FuzzManifest feeds arbitrary bytes to the manifest check. A corrupt
// or mismatched manifest must reset the store, never panic or error.
func FuzzManifest(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":2,"grid_seed":42}`))
	f.Add([]byte(`{"version":1,"grid_seed":42}`))
	f.Add([]byte(`{"version":2,"grid_seed":7}`))
	f.Add([]byte(`{"version":"2"}`))
	f.Add([]byte("\xff\xfe"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := Open(dir, Signature{GridSeed: 42, Rounds: 100})
		if err != nil {
			t.Fatalf("Open with corrupt manifest: %v", err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}
