package dist

// The fault-injection suite: every test drives a scripted failure
// through the chaos harness (or a misbehaving runner) against real
// workers and asserts the hardened coordinator behavior — eviction,
// re-queue, quarantine — with byte-identity against a serial run
// wherever the sweep is expected to complete cleanly. No test sleeps:
// timing enters only through configured heartbeat/deadline bounds.

import (
	"bytes"
	"context"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"autofl/internal/flnet/chaos"
	"autofl/internal/sweep"
)

// startChaosWorker runs a real worker behind a chaos listener, so the
// scripted faults hit the genuine serve path.
func startChaosWorker(t *testing.T, parallel int, runners RunnerFor, sched chaos.Schedule) *Worker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkerOn(chaos.NewListener(ln, sched), parallel, runners)
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve()
	t.Cleanup(func() { w.Close() })
	return w
}

// waitGoroutines polls the goroutine count back down to the baseline —
// the leak check every injected fault must pass once the workers are
// closed.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked under injected faults: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// enteringRunners is the fake runner plus a one-shot gate closed the
// first time the faulty worker actually claims a cell — the
// synchronization that makes "the faulty worker had work in flight
// when it failed" a guarantee instead of a race.
func enteringRunners(entered chan struct{}) RunnerFor {
	var once sync.Once
	return func(rounds int, traced bool) sweep.Runner {
		return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
			once.Do(func() { close(entered) })
			return fakeRunner(ctx, c, seed)
		}
	}
}

// waitingRunners holds the healthy worker's cells until the faulty
// worker has claimed work, so the queue cannot drain before the fault
// fires.
func waitingRunners(entered chan struct{}) RunnerFor {
	return func(rounds int, traced bool) sweep.Runner {
		return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
			select {
			case <-entered:
			case <-ctx.Done():
				return sweep.Outcome{}, ctx.Err()
			}
			return fakeRunner(ctx, c, seed)
		}
	}
}

// chaosCtx bounds a chaos sweep so a regression hangs the test for
// seconds, not the full go test timeout.
func chaosCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestHungWorkerEvictedByHeartbeat is the frozen-process acceptance
// criterion: a worker whose connection freezes mid-sweep (the SIGSTOP
// fault — established, never speaks again) is evicted by the link
// heartbeat within the configured bound, its in-flight cells re-queue
// to the survivor, and the completed sweep is byte-identical to a
// serial run.
func TestHungWorkerEvictedByHeartbeat(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g := testGrid()
	serial, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Write 1 is the worker's hello; write 2 — its first result —
	// freezes the connection in both directions.
	entered := make(chan struct{})
	frozen := startChaosWorker(t, 2, enteringRunners(entered), chaos.Script{{FreezeAfterWrites: 2}})
	clean := startWorker(t, 2, waitingRunners(entered))

	re := &RemoteExecutor{
		Addrs:  []string{frozen.Addr(), clean.Addr()},
		Rounds: 100,
		Link:   LinkOptions{HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: 200 * time.Millisecond},
	}
	dist, err := sweep.Run(chaosCtx(t), g, noLocal(t), sweep.Options{Executor: re})
	if err != nil {
		t.Fatalf("sweep must survive a frozen worker: %v", err)
	}
	if !bytes.Equal(storeJSON(t, serial), storeJSON(t, dist)) {
		t.Error("post-eviction distributed JSON differs from serial local JSON")
	}
	if re.Requeues() == 0 {
		t.Error("frozen worker evicted with no re-queues recorded")
	}
	if re.Quarantined() != 0 {
		t.Errorf("requeued cells quarantined spuriously: %d", re.Quarantined())
	}

	frozen.Close()
	clean.Close()
	waitGoroutines(t, baseline)
}

// TestCellDeadlineEvictsStuckWorker pins the per-cell execution bound
// as a mechanism independent of the heartbeat: the stuck worker stays
// fully live on the wire (its read loop would answer pings), but a
// cell held past CellTimeout condemns the link anyway.
func TestCellDeadlineEvictsStuckWorker(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g := testGrid()
	serial, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	var once sync.Once
	stuckRunners := func(rounds int, traced bool) sweep.Runner {
		return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
			once.Do(func() { close(entered) })
			<-ctx.Done() // alive on the wire, never finishes the cell
			return sweep.Outcome{}, ctx.Err()
		}
	}
	stuck := startWorker(t, 2, stuckRunners)
	clean := startWorker(t, 2, waitingRunners(entered))

	re := &RemoteExecutor{
		Addrs:       []string{stuck.Addr(), clean.Addr()},
		Rounds:      100,
		CellTimeout: 50 * time.Millisecond,
		// Heartbeats off: only the execution deadline may evict here.
		Link: LinkOptions{HeartbeatInterval: -1},
	}
	dist, err := sweep.Run(chaosCtx(t), g, noLocal(t), sweep.Options{Executor: re})
	if err != nil {
		t.Fatalf("sweep must survive a stuck worker: %v", err)
	}
	if !bytes.Equal(storeJSON(t, serial), storeJSON(t, dist)) {
		t.Error("post-deadline distributed JSON differs from serial local JSON")
	}
	if re.Requeues() == 0 {
		t.Error("stuck worker condemned with no re-queues recorded")
	}
	if re.Quarantined() != 0 {
		t.Errorf("requeued cells quarantined spuriously: %d", re.Quarantined())
	}

	stuck.Close()
	clean.Close()
	waitGoroutines(t, baseline)
}

// TestPoisonCellQuarantinedAfterBudget is the livelock acceptance
// criterion: a cell that kills every worker it lands on exhausts its
// retry budget and lands in the output as an explicit quarantine
// error — the sweep completes with a visible hole instead of spinning.
func TestPoisonCellQuarantinedAfterBudget(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g := testGrid()
	poison := g.Cells()[0].Key()

	// Each worker runs parallel=1 so the poison cell is the only thing
	// in flight when it takes its worker down — no innocent cells burn
	// budget alongside it.
	mk := func() *Worker {
		var w *Worker
		runners := func(rounds int, traced bool) sweep.Runner {
			return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
				if c.Key() == poison {
					go w.Close() // the poison cell kills every worker it lands on
					<-ctx.Done()
					return sweep.Outcome{}, ctx.Err()
				}
				return fakeRunner(ctx, c, seed)
			}
		}
		w, err := NewWorker("127.0.0.1:0", 1, runners)
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		return w
	}
	w1, w2, w3 := mk(), mk(), mk()

	re := &RemoteExecutor{
		Addrs:       []string{w1.Addr(), w2.Addr(), w3.Addr()},
		Rounds:      100,
		RetryBudget: 1, // one re-queue, then quarantine: two workers die, one survives
	}
	store, err := sweep.Run(chaosCtx(t), g, noLocal(t), sweep.Options{Executor: re})
	if err != nil {
		t.Fatalf("sweep must complete around a poison cell: %v", err)
	}
	if store.Len() != g.Size() {
		t.Fatalf("completed %d of %d cells", store.Len(), g.Size())
	}
	out := string(storeJSON(t, store))
	if n := strings.Count(out, "dist: quarantined after"); n != 1 {
		t.Errorf("quarantine errors in output = %d, want exactly 1", n)
	}
	if !strings.Contains(out, "retry budget 1") {
		t.Error("quarantine error does not name the exhausted budget")
	}
	if got := re.Quarantined(); got != 1 {
		t.Errorf("Quarantined() = %d, want 1", got)
	}
	if got := re.Requeues(); got != 1 {
		t.Errorf("Requeues() = %d, want exactly 1 (first fault re-queues, second quarantines)", got)
	}

	w1.Close()
	w2.Close()
	w3.Close()
	waitGoroutines(t, baseline)
}

// TestDropMidFrameRequeues injects the crash-shaped truncation: the
// worker's connection hard-closes partway through its first result
// frame. The coordinator must treat the torn frame as a link death and
// re-queue, never deliver a partial result.
func TestDropMidFrameRequeues(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g := testGrid()
	serial, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	// The hello frame is ~52 bytes; the first result frame is hundreds.
	// An 80-byte budget lets the handshake through and tears the first
	// result mid-frame.
	entered := make(chan struct{})
	torn := startChaosWorker(t, 2, enteringRunners(entered), chaos.Script{{DropAfterBytes: 80}})
	clean := startWorker(t, 2, waitingRunners(entered))

	re := &RemoteExecutor{Addrs: []string{torn.Addr(), clean.Addr()}, Rounds: 100}
	dist, err := sweep.Run(chaosCtx(t), g, noLocal(t), sweep.Options{Executor: re})
	if err != nil {
		t.Fatalf("sweep must survive a mid-frame drop: %v", err)
	}
	if !bytes.Equal(storeJSON(t, serial), storeJSON(t, dist)) {
		t.Error("post-drop distributed JSON differs from serial local JSON")
	}
	if re.Requeues() == 0 {
		t.Error("mid-frame drop recorded no re-queues")
	}

	torn.Close()
	clean.Close()
	waitGoroutines(t, baseline)
}

// TestRefusedWorkerSweepSurvives is the partition-on-dial fault: one
// address accepts and immediately drops every connection. The sweep
// completes on the reachable worker alone.
func TestRefusedWorkerSweepSurvives(t *testing.T) {
	g := testGrid()
	serial, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	refusing := startChaosWorker(t, 2, fakeRunners, chaos.Func(func(int) chaos.Plan {
		return chaos.Plan{Refuse: true} // every dial partitioned
	}))
	clean := startWorker(t, 2, fakeRunners)

	re := &RemoteExecutor{Addrs: []string{refusing.Addr(), clean.Addr()}, Rounds: 100}
	dist, err := sweep.Run(chaosCtx(t), g, noLocal(t), sweep.Options{Executor: re})
	if err != nil {
		t.Fatalf("sweep must survive a partitioned worker: %v", err)
	}
	if !bytes.Equal(storeJSON(t, serial), storeJSON(t, dist)) {
		t.Error("post-partition distributed JSON differs from serial local JSON")
	}
	if refusing.Served() != 0 {
		t.Errorf("partitioned worker served %d cells", refusing.Served())
	}
}
