package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"autofl/internal/sweep"
	"autofl/internal/sweep/cache"
)

// RemoteExecutor is the one-shot distributed execution strategy: a
// sweep.Executor that dials Worker processes and farms tasks to them,
// pipelining up to each worker's advertised capacity. Delivery is
// at-least-once — a lost worker's in-flight cells are re-queued to the
// survivors — and idempotent end to end: the engine keeps the first
// result per cell index, and cache commits dedup by cell digest, so a
// re-executed cell (whose outcome is identical anyway, by the per-cell
// seed derivation) changes nothing.
//
// With a Cache attached, the coordinator serves cached cells locally —
// including shorter-horizon requests answered by trace-prefix replay —
// and ships only the misses, committing every remote result back into
// the cache with its worker-measured wall-clock. A fully cached grid
// never dials at all. The same directory can back local and
// distributed sweeps interchangeably.
//
// A RemoteExecutor is single-flight: one Execute call at a time. For a
// long-running control plane serving many grids over a dynamic worker
// fleet, see PoolExecutor.
type RemoteExecutor struct {
	// Addrs are the worker addresses to dial. At least one must accept
	// and complete the version handshake, or Execute fails.
	Addrs []string
	// Rounds is the horizon bound stamped on every job, normalized by
	// the caller (the root package maps 0 to the paper's 1000; a zero
	// value here defers to the workers' RunnerFor default).
	Rounds int
	// Traced requests per-round trace payloads from workers so cache
	// commits can serve shorter horizons later. Set it when (and only
	// when) Cache is set: traces ride the wire only to be stripped
	// before results reach the store.
	Traced bool
	// Cache, when non-nil, serves hits locally and commits remote
	// results. It must be open under the sweep's signature.
	Cache *cache.Cache
	// DialTimeout bounds the dial and version handshake per worker
	// (default 10s).
	DialTimeout time.Duration

	counts workerCounts
}

// workerCounts is the per-worker completed-cell audit trail shared by
// both executors.
type workerCounts struct {
	mu sync.Mutex
	m  map[string]int
}

func (c *workerCounts) reset() {
	c.mu.Lock()
	c.m = make(map[string]int)
	c.mu.Unlock()
}

func (c *workerCounts) add(label string) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]int)
	}
	c.m[label]++
	c.mu.Unlock()
}

func (c *workerCounts) snapshot() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.m))
	for a, n := range c.m {
		out[a] = n
	}
	return out
}

// Counts reports completed cells per worker address for the most
// recent Execute call — the audit trail cmd/autofl-sweep prints in its
// final stats line. Cells served from the cache are not counted here
// (they appear in the cache's own Stats).
func (e *RemoteExecutor) Counts() map[string]int { return e.counts.snapshot() }

func (e *RemoteExecutor) dialTimeout() time.Duration {
	if e.DialTimeout > 0 {
		return e.DialTimeout
	}
	return 10 * time.Second
}

// servePass serves every task the cache can witness directly through
// emit and returns the rest — the shared first step of both executors,
// which is what makes a fully cached grid never dial (RemoteExecutor)
// and overlapping grids from concurrent control-plane clients execute
// only their non-overlapping cells (PoolExecutor).
func servePass(c *cache.Cache, tasks []sweep.Task, emit func(int, sweep.Result)) []sweep.Task {
	if c == nil {
		return tasks
	}
	pending := make([]sweep.Task, 0, len(tasks))
	for _, t := range tasks {
		if out, ok := c.Serve(t.Cell, t.Seed); ok {
			emit(t.Index, sweep.Result{Cell: t.Cell, Seed: t.Seed, Outcome: out})
			continue
		}
		pending = append(pending, t)
	}
	return pending
}

// stampJob renders one task into its wire form under the executor's
// horizon/trace/cache configuration.
func stampJob(t sweep.Task, rounds int, traced bool, c *cache.Cache) Job {
	j := Job{ID: t.Index, Cell: t.Cell, Seed: t.Seed, Rounds: rounds, Traced: traced}
	if c != nil {
		j.Digest = c.Signature().CellDigest(t.Cell)
	}
	return j
}

// commitResult commits one remote result (cache first, by digest; then
// the engine's emit). The trace payload, if any, stops at the cache —
// exactly like the local cache.Runner path, so distributed output is
// byte-identical to local.
func commitResult(c *cache.Cache, t sweep.Task, res JobResult, emit func(int, sweep.Result)) {
	out := res.Outcome
	if c != nil && res.Err == "" {
		_ = c.Put(sweep.Result{Cell: t.Cell, Seed: t.Seed, Outcome: out}, res.WallSeconds)
	}
	out.Trace = nil
	emit(t.Index, sweep.Result{Cell: t.Cell, Seed: t.Seed, Outcome: out, Err: res.Err})
}

// taskQueue builds the shared claim queue and completion plumbing for
// a set of pending tasks: the queue holds every task not yet claimed
// by a lease (its capacity is the invariant that makes re-queuing
// never block), and done closes when the last task is delivered.
func taskQueue(pending []sweep.Task) (queue chan sweep.Task, done chan struct{}, finish func(), remaining *int64) {
	queue = make(chan sweep.Task, len(pending))
	for _, t := range pending {
		queue <- t
	}
	remaining = new(int64)
	*remaining = int64(len(pending))
	done = make(chan struct{})
	var closeOnce sync.Once
	finish = func() {
		if atomic.AddInt64(remaining, -1) == 0 {
			closeOnce.Do(func() { close(done) })
		}
	}
	return queue, done, finish, remaining
}

// Execute implements sweep.Executor. The local Runner is deliberately
// ignored: every non-cached cell executes on a worker, which is what
// makes "0 local executions" checkable — the engine's runner can be a
// guard that fails the cell if it ever runs.
func (e *RemoteExecutor) Execute(ctx context.Context, tasks []sweep.Task, _ sweep.Runner, emit func(int, sweep.Result)) error {
	if len(e.Addrs) == 0 {
		return errors.New("dist: no worker addresses")
	}
	e.counts.reset()

	pending := servePass(e.Cache, tasks, emit)
	if len(pending) == 0 {
		return nil // fully served; never dial
	}
	queue, done, finish, remaining := taskQueue(pending)

	errs := make([]error, len(e.Addrs))
	var wg sync.WaitGroup
	for i, addr := range e.Addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			errs[i] = e.runWorker(ctx, addr, queue, done, emit, finish)
		}(i, addr)
	}
	wg.Wait()

	select {
	case <-done:
		// Every pending cell was delivered; individual worker failures
		// along the way were absorbed by re-queuing.
		return ctx.Err()
	default:
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("dist: %d cells unfinished, all workers gone (first failure: %w)", atomic.LoadInt64(remaining), err)
		}
	}
	return fmt.Errorf("dist: %d cells unfinished, all workers gone", atomic.LoadInt64(remaining))
}

// runWorker drives one dialed worker connection: dial, handshake into
// a Link, then the shared driveLink lease. On any connection failure
// the worker's in-flight tasks go back on the queue and the error is
// returned; the sweep survives as long as one worker does.
func (e *RemoteExecutor) runWorker(ctx context.Context, addr string, queue chan sweep.Task, done <-chan struct{}, emit func(int, sweep.Result), finish func()) error {
	d := net.Dialer{Timeout: e.dialTimeout()}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	l, err := NewLink(conn, e.dialTimeout())
	if err != nil {
		conn.Close()
		return fmt.Errorf("dist: %s: %w", addr, err)
	}
	defer l.Close()
	err = driveLink(ctx, l, queue, done,
		func(t sweep.Task) Job { return stampJob(t, e.Rounds, e.Traced, e.Cache) },
		func(t sweep.Task, res JobResult) {
			commitResult(e.Cache, t, res, emit)
			e.counts.add(addr)
		},
		finish)
	if err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("dist: %s: %w", addr, err)
	}
	return err
}

// Source supplies worker links to a PoolExecutor. Acquire blocks until
// a worker is available (a newly registered worker joining mid-sweep
// satisfies a waiting Acquire, which is how late joiners pick up
// queued cells) or ctx is done. A link handed out by Acquire is leased
// exclusively until returned: Release puts a healthy link back in the
// pool, Evict discards one whose connection died. The control plane's
// worker registry is the canonical implementation.
type Source interface {
	Acquire(ctx context.Context) (*Link, error)
	Release(l *Link)
	Evict(l *Link, err error)
}

// PoolExecutor is the control-plane execution strategy: a
// sweep.Executor over a dynamic pool of established worker links.
// Unlike RemoteExecutor — which dials a fixed address list and fails
// when every worker is gone — a PoolExecutor acquires workers as the
// Source produces them, lets workers join mid-sweep to claim queued
// cells, re-queues a dead worker's in-flight cells, and simply waits
// (until ctx cancels) when no worker is currently available: in a
// long-running service, worker absence is a transient condition, not
// a sweep failure.
//
// Rounds/Traced/Cache behave exactly as on RemoteExecutor. Safe for
// one Execute call at a time.
type PoolExecutor struct {
	Source Source
	Rounds int
	Traced bool
	Cache  *cache.Cache

	counts workerCounts
}

// Counts reports completed cells per worker label for the most recent
// Execute call.
func (e *PoolExecutor) Counts() map[string]int { return e.counts.snapshot() }

// Execute implements sweep.Executor (the local Runner is ignored, as
// on RemoteExecutor).
func (e *PoolExecutor) Execute(ctx context.Context, tasks []sweep.Task, _ sweep.Runner, emit func(int, sweep.Result)) error {
	if e.Source == nil {
		return errors.New("dist: pool executor needs a Source")
	}
	e.counts.reset()

	pending := servePass(e.Cache, tasks, emit)
	if len(pending) == 0 {
		return nil
	}
	queue, done, finish, _ := taskQueue(pending)

	// The acquirer keeps leasing workers while the sweep runs; each
	// lease drives the shared claim loop on its own goroutine. Extra
	// workers beyond the remaining cells just block on the empty queue
	// until done closes — cheap, and it keeps join racing simple.
	acqCtx, stopAcq := context.WithCancel(ctx)
	defer stopAcq()
	var leases sync.WaitGroup
	acqDone := make(chan struct{})
	go func() {
		defer close(acqDone)
		for {
			l, err := e.Source.Acquire(acqCtx)
			if err != nil {
				return
			}
			leases.Add(1)
			go func(l *Link) {
				defer leases.Done()
				err := driveLink(acqCtx, l, queue, done,
					func(t sweep.Task) Job { return stampJob(t, e.Rounds, e.Traced, e.Cache) },
					func(t sweep.Task, res JobResult) {
						commitResult(e.Cache, t, res, emit)
						e.counts.add(l.Label())
					},
					finish)
				if err == nil || errors.Is(err, context.Canceled) {
					// Sweep finished or was canceled with the link intact.
					e.Source.Release(l)
					return
				}
				e.Source.Evict(l, err)
			}(l)
		}
	}()

	select {
	case <-done:
	case <-ctx.Done():
	}
	stopAcq()
	<-acqDone // no further leases.Add after this
	leases.Wait()
	return ctx.Err()
}
