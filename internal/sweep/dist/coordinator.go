package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"autofl/internal/sweep"
	"autofl/internal/sweep/cache"
)

// DefaultRetryBudget is the number of re-queues a single cell may
// consume before being quarantined (see dispatch.fault). Three
// re-queues tolerate a rolling restart of a small fleet while still
// containing a poison cell — one that crashes or hangs every worker
// it lands on — after four attempts.
const DefaultRetryBudget = 3

// defaultRequeueBackoff is the base of the exponential re-queue
// backoff; maxRequeueBackoff caps it so a deep budget never strands a
// cell for minutes.
const (
	defaultRequeueBackoff = 100 * time.Millisecond
	maxRequeueBackoff     = 5 * time.Second
)

// RemoteExecutor is the one-shot distributed execution strategy: a
// sweep.Executor that dials Worker processes and farms tasks to them,
// pipelining up to each worker's advertised capacity. Delivery is
// at-least-once — a lost worker's in-flight cells are re-queued to the
// survivors — and idempotent end to end: the engine keeps the first
// result per cell index, and cache commits dedup by cell digest, so a
// re-executed cell (whose outcome is identical anyway, by the per-cell
// seed derivation) changes nothing.
//
// Failure containment: a hung worker is evicted by the link's
// heartbeat (and, when CellTimeout is set, by the per-cell execution
// deadline) exactly like a dead one. A cell that keeps killing its
// workers is re-queued with exponential backoff until its retry
// budget runs out, then quarantined — the sweep completes with an
// explicit per-cell error instead of livelocking. See Requeues and
// Quarantined for the audit counters.
//
// With a Cache attached, the coordinator serves cached cells locally —
// including shorter-horizon requests answered by trace-prefix replay —
// and ships only the misses, committing every remote result back into
// the cache with its worker-measured wall-clock. A fully cached grid
// never dials at all. The same directory can back local and
// distributed sweeps interchangeably.
//
// A RemoteExecutor is single-flight: one Execute call at a time. For a
// long-running control plane serving many grids over a dynamic worker
// fleet, see PoolExecutor.
type RemoteExecutor struct {
	// Addrs are the worker addresses to dial. At least one must accept
	// and complete the version handshake, or Execute fails.
	Addrs []string
	// Rounds is the horizon bound stamped on every job, normalized by
	// the caller (the root package maps 0 to the paper's 1000; a zero
	// value here defers to the workers' RunnerFor default).
	Rounds int
	// Traced requests per-round trace payloads from workers so cache
	// commits can serve shorter horizons later. Set it when (and only
	// when) Cache is set: traces ride the wire only to be stripped
	// before results reach the store.
	Traced bool
	// Cache, when non-nil, serves hits locally and commits remote
	// results. It must be open under the sweep's signature.
	Cache *cache.Cache
	// DialTimeout bounds the dial and version handshake per worker
	// (default 10s).
	DialTimeout time.Duration
	// Link tunes each worker connection's liveness machinery — frame
	// write deadlines, heartbeat interval and timeout. The zero value
	// selects the LinkOptions defaults, with DialTimeout doubling as
	// the handshake bound.
	Link LinkOptions
	// RetryBudget is the number of re-queues a single cell may consume
	// — across all workers — before it is quarantined with an explicit
	// error instead of retried (0 selects DefaultRetryBudget; negative
	// quarantines on the first fault).
	RetryBudget int
	// RequeueBackoff is the base of the exponential backoff applied
	// from a cell's second re-queue on (default 100ms, capped at 5s).
	// The first re-queue is immediate: a lone fault is overwhelmingly
	// a worker death, not a poison cell.
	RequeueBackoff time.Duration
	// CellTimeout bounds one cell's remote execution. A link holding a
	// cell past the bound is torn down — the worker is hung or
	// drowning — and its in-flight cells re-queue like a death's.
	// 0 means no bound: cells legitimately run long.
	CellTimeout time.Duration

	counts workerCounts
	faults faultTally
}

// workerCounts is the per-worker completed-cell audit trail shared by
// both executors.
type workerCounts struct {
	mu sync.Mutex
	m  map[string]int
}

func (c *workerCounts) reset() {
	c.mu.Lock()
	c.m = make(map[string]int)
	c.mu.Unlock()
}

func (c *workerCounts) add(label string) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]int)
	}
	c.m[label]++
	c.mu.Unlock()
}

func (c *workerCounts) snapshot() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.m))
	for a, n := range c.m {
		out[a] = n
	}
	return out
}

// faultTally is the fault audit trail shared by both executors:
// re-queues consumed and cells quarantined during the most recent
// Execute call.
type faultTally struct {
	requeues    atomic.Int64
	quarantined atomic.Int64
}

func (f *faultTally) reset() {
	f.requeues.Store(0)
	f.quarantined.Store(0)
}

// Counts reports completed cells per worker address for the most
// recent Execute call — the audit trail cmd/autofl-sweep prints in its
// final stats line. Cells served from the cache are not counted here
// (they appear in the cache's own Stats).
func (e *RemoteExecutor) Counts() map[string]int { return e.counts.snapshot() }

// Requeues reports how many times a cell went back on the queue after
// a worker fault during the most recent Execute call.
func (e *RemoteExecutor) Requeues() int { return int(e.faults.requeues.Load()) }

// Quarantined reports cells abandoned with an explicit error after
// exhausting the retry budget during the most recent Execute call.
func (e *RemoteExecutor) Quarantined() int { return int(e.faults.quarantined.Load()) }

func (e *RemoteExecutor) dialTimeout() time.Duration {
	if e.DialTimeout > 0 {
		return e.DialTimeout
	}
	return 10 * time.Second
}

// normalizeBudget maps an executor's RetryBudget field to the
// effective bound: 0 selects the default, negative means no retries.
func normalizeBudget(budget int) int {
	switch {
	case budget == 0:
		return DefaultRetryBudget
	case budget < 0:
		return 0
	}
	return budget
}

// normalizeBackoff maps an executor's RequeueBackoff field to the
// effective base.
func normalizeBackoff(backoff time.Duration) time.Duration {
	if backoff <= 0 {
		return defaultRequeueBackoff
	}
	return backoff
}

// servePass serves every task the cache can witness directly through
// emit and returns the rest — the shared first step of both executors,
// which is what makes a fully cached grid never dial (RemoteExecutor)
// and overlapping grids from concurrent control-plane clients execute
// only their non-overlapping cells (PoolExecutor).
func servePass(c *cache.Cache, tasks []sweep.Task, emit func(int, sweep.Result)) []sweep.Task {
	if c == nil {
		return tasks
	}
	pending := make([]sweep.Task, 0, len(tasks))
	for _, t := range tasks {
		if out, ok := c.Serve(t.Cell, t.Seed); ok {
			emit(t.Index, sweep.Result{Cell: t.Cell, Seed: t.Seed, Outcome: out})
			continue
		}
		pending = append(pending, t)
	}
	return pending
}

// stampJob renders one task into its wire form under the executor's
// horizon/trace/cache configuration.
func stampJob(t sweep.Task, rounds int, traced bool, c *cache.Cache) Job {
	j := Job{ID: t.Index, Cell: t.Cell, Seed: t.Seed, Rounds: rounds, Traced: traced}
	if c != nil {
		j.Digest = c.Signature().CellDigest(t.Cell)
	}
	return j
}

// commitResult commits one remote result (cache first, by digest; then
// the engine's emit). The trace payload, if any, stops at the cache —
// exactly like the local cache.Runner path, so distributed output is
// byte-identical to local.
func commitResult(c *cache.Cache, t sweep.Task, res JobResult, emit func(int, sweep.Result)) {
	out := res.Outcome
	if c != nil && res.Err == "" {
		_ = c.Put(sweep.Result{Cell: t.Cell, Seed: t.Seed, Outcome: out}, res.WallSeconds)
	}
	out.Trace = nil
	emit(t.Index, sweep.Result{Cell: t.Cell, Seed: t.Seed, Outcome: out, Err: res.Err})
}

// dispatch is the shared task-flow state of one Execute call: the
// claim queue every lease pulls from, the completion latch, and the
// fault path — per-cell retry accounting, exponential re-queue
// backoff, and quarantine past the budget. The queue's capacity is
// the invariant that makes every re-queue non-blocking: a task is
// always either queued, in exactly one lease's in-flight set, on one
// backoff timer, or finished (delivered or quarantined).
type dispatch struct {
	queue chan sweep.Task
	done  chan struct{} // closed when every task is finished
	stop  chan struct{} // closed by shutdown; frees backoff timers

	remaining atomic.Int64
	closeOnce sync.Once

	emit        func(int, sweep.Result)
	budget      int
	backoff     time.Duration
	cellTimeout time.Duration
	tally       *faultTally

	mu       sync.Mutex
	failures map[int]int // task index → faults so far

	timers sync.WaitGroup
}

// newDispatch loads the pending tasks into a fresh dispatcher. budget
// and backoff are the normalized values (see normalizeBudget).
func newDispatch(pending []sweep.Task, emit func(int, sweep.Result),
	budget int, backoff, cellTimeout time.Duration, tally *faultTally) *dispatch {
	d := &dispatch{
		queue:       make(chan sweep.Task, len(pending)),
		done:        make(chan struct{}),
		stop:        make(chan struct{}),
		emit:        emit,
		budget:      budget,
		backoff:     backoff,
		cellTimeout: cellTimeout,
		tally:       tally,
		failures:    make(map[int]int),
	}
	for _, t := range pending {
		d.queue <- t
	}
	d.remaining.Store(int64(len(pending)))
	return d
}

// finish marks one task delivered or quarantined; the last one closes
// done.
func (d *dispatch) finish() {
	if d.remaining.Add(-1) == 0 {
		d.closeOnce.Do(func() { close(d.done) })
	}
}

// fault routes one undelivered task after a worker failure: back on
// the queue (immediately on its first fault, with exponential backoff
// from the second on — a cell collecting faults is suspect, and
// hammering it across the fleet is how livelock starts), or into
// quarantine once it exceeds the retry budget. A quarantined cell is
// emitted as an explicit per-cell error and counted finished, so the
// sweep completes with a visible hole instead of spinning forever.
func (d *dispatch) fault(t sweep.Task, cause error) {
	d.mu.Lock()
	d.failures[t.Index]++
	n := d.failures[t.Index]
	d.mu.Unlock()
	if n > d.budget {
		d.tally.quarantined.Add(1)
		d.emit(t.Index, sweep.Result{Cell: t.Cell, Seed: t.Seed,
			Err: fmt.Sprintf("dist: quarantined after %d failed attempts (retry budget %d): %v", n, d.budget, cause)})
		d.finish()
		return
	}
	d.tally.requeues.Add(1)
	if n == 1 {
		d.queue <- t
		return
	}
	delay := min(d.backoff<<(n-2), maxRequeueBackoff)
	d.timers.Add(1)
	go func() {
		defer d.timers.Done()
		tm := time.NewTimer(delay)
		defer tm.Stop()
		select {
		case <-tm.C:
			d.queue <- t
		case <-d.stop:
		}
	}()
}

// shutdown releases every pending backoff timer and waits them out —
// the Execute-return barrier that keeps goroutine-leak checks honest.
func (d *dispatch) shutdown() {
	close(d.stop)
	d.timers.Wait()
}

// Execute implements sweep.Executor. The local Runner is deliberately
// ignored: every non-cached cell executes on a worker, which is what
// makes "0 local executions" checkable — the engine's runner can be a
// guard that fails the cell if it ever runs.
func (e *RemoteExecutor) Execute(ctx context.Context, tasks []sweep.Task, _ sweep.Runner, emit func(int, sweep.Result)) error {
	if len(e.Addrs) == 0 {
		return errors.New("dist: no worker addresses")
	}
	e.counts.reset()
	e.faults.reset()

	pending := servePass(e.Cache, tasks, emit)
	if len(pending) == 0 {
		return nil // fully served; never dial
	}
	d := newDispatch(pending, emit,
		normalizeBudget(e.RetryBudget), normalizeBackoff(e.RequeueBackoff), e.CellTimeout, &e.faults)
	defer d.shutdown()

	errs := make([]error, len(e.Addrs))
	var wg sync.WaitGroup
	for i, addr := range e.Addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			errs[i] = e.runWorker(ctx, addr, d, emit)
		}(i, addr)
	}
	wg.Wait()

	select {
	case <-d.done:
		// Every pending cell was delivered (or quarantined with an
		// explicit error); individual worker failures along the way
		// were absorbed by re-queuing.
		return ctx.Err()
	default:
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("dist: %d cells unfinished, all workers gone (first failure: %w)", d.remaining.Load(), err)
		}
	}
	return fmt.Errorf("dist: %d cells unfinished, all workers gone", d.remaining.Load())
}

// runWorker drives one dialed worker connection: dial, handshake into
// a Link, then the shared driveLink lease. On any connection failure
// the worker's in-flight tasks go back through the dispatcher's fault
// path and the error is returned; the sweep survives as long as one
// worker does.
func (e *RemoteExecutor) runWorker(ctx context.Context, addr string, d *dispatch, emit func(int, sweep.Result)) error {
	dialer := net.Dialer{Timeout: e.dialTimeout()}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	opts := e.Link
	if opts.HandshakeTimeout == 0 {
		opts.HandshakeTimeout = e.dialTimeout()
	}
	l, err := NewLink(conn, opts)
	if err != nil {
		conn.Close()
		return fmt.Errorf("dist: %s: %w", addr, err)
	}
	defer l.Close()
	err = driveLink(ctx, l, d,
		func(t sweep.Task) Job { return stampJob(t, e.Rounds, e.Traced, e.Cache) },
		func(t sweep.Task, res JobResult) {
			commitResult(e.Cache, t, res, emit)
			e.counts.add(addr)
		})
	if err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("dist: %s: %w", addr, err)
	}
	return err
}

// Source supplies worker links to a PoolExecutor. Acquire blocks until
// a worker is available (a newly registered worker joining mid-sweep
// satisfies a waiting Acquire, which is how late joiners pick up
// queued cells) or ctx is done. A link handed out by Acquire is leased
// exclusively until returned: Release puts a healthy link back in the
// pool, Evict discards one whose connection died. The control plane's
// worker registry is the canonical implementation.
type Source interface {
	Acquire(ctx context.Context) (*Link, error)
	Release(l *Link)
	Evict(l *Link, err error)
}

// PoolExecutor is the control-plane execution strategy: a
// sweep.Executor over a dynamic pool of established worker links.
// Unlike RemoteExecutor — which dials a fixed address list and fails
// when every worker is gone — a PoolExecutor acquires workers as the
// Source produces them, lets workers join mid-sweep to claim queued
// cells, re-queues a dead worker's in-flight cells, and simply waits
// (until ctx cancels) when no worker is currently available: in a
// long-running service, worker absence is a transient condition, not
// a sweep failure.
//
// Rounds/Traced/Cache and the RetryBudget/RequeueBackoff/CellTimeout
// containment knobs behave exactly as on RemoteExecutor. Heartbeat
// configuration lives with whoever creates the links (the registry).
// Safe for one Execute call at a time.
type PoolExecutor struct {
	Source Source
	Rounds int
	Traced bool
	Cache  *cache.Cache
	// RetryBudget, RequeueBackoff, CellTimeout: see RemoteExecutor.
	RetryBudget    int
	RequeueBackoff time.Duration
	CellTimeout    time.Duration

	counts workerCounts
	faults faultTally
}

// Counts reports completed cells per worker label for the most recent
// Execute call.
func (e *PoolExecutor) Counts() map[string]int { return e.counts.snapshot() }

// Requeues reports how many times a cell went back on the queue after
// a worker fault during the most recent Execute call.
func (e *PoolExecutor) Requeues() int { return int(e.faults.requeues.Load()) }

// Quarantined reports cells abandoned with an explicit error after
// exhausting the retry budget during the most recent Execute call.
func (e *PoolExecutor) Quarantined() int { return int(e.faults.quarantined.Load()) }

// Execute implements sweep.Executor (the local Runner is ignored, as
// on RemoteExecutor).
func (e *PoolExecutor) Execute(ctx context.Context, tasks []sweep.Task, _ sweep.Runner, emit func(int, sweep.Result)) error {
	if e.Source == nil {
		return errors.New("dist: pool executor needs a Source")
	}
	e.counts.reset()
	e.faults.reset()

	pending := servePass(e.Cache, tasks, emit)
	if len(pending) == 0 {
		return nil
	}
	d := newDispatch(pending, emit,
		normalizeBudget(e.RetryBudget), normalizeBackoff(e.RequeueBackoff), e.CellTimeout, &e.faults)
	defer d.shutdown()

	// The acquirer keeps leasing workers while the sweep runs; each
	// lease drives the shared claim loop on its own goroutine. Extra
	// workers beyond the remaining cells just block on the empty queue
	// until done closes — cheap, and it keeps join racing simple.
	acqCtx, stopAcq := context.WithCancel(ctx)
	defer stopAcq()
	var leases sync.WaitGroup
	acqDone := make(chan struct{})
	go func() {
		defer close(acqDone)
		for {
			l, err := e.Source.Acquire(acqCtx)
			if err != nil {
				return
			}
			leases.Add(1)
			go func(l *Link) {
				defer leases.Done()
				err := driveLink(acqCtx, l, d,
					func(t sweep.Task) Job { return stampJob(t, e.Rounds, e.Traced, e.Cache) },
					func(t sweep.Task, res JobResult) {
						commitResult(e.Cache, t, res, emit)
						e.counts.add(l.Label())
					})
				if err == nil || errors.Is(err, context.Canceled) {
					// Sweep finished or was canceled with the link intact.
					e.Source.Release(l)
					return
				}
				e.Source.Evict(l, err)
			}(l)
		}
	}()

	select {
	case <-d.done:
	case <-ctx.Done():
	}
	stopAcq()
	<-acqDone // no further leases.Add after this
	leases.Wait()
	return ctx.Err()
}
