package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"autofl/internal/sweep"
	"autofl/internal/sweep/cache"
)

// RemoteExecutor is the distributed execution strategy: a
// sweep.Executor that dials Worker processes and farms tasks to them,
// pipelining up to each worker's advertised capacity. Delivery is
// at-least-once — a lost worker's in-flight cells are re-queued to the
// survivors — and idempotent end to end: the engine keeps the first
// result per cell index, and cache commits dedup by cell digest, so a
// re-executed cell (whose outcome is identical anyway, by the per-cell
// seed derivation) changes nothing.
//
// With a Cache attached, the coordinator serves cached cells locally —
// including shorter-horizon requests answered by trace-prefix replay —
// and ships only the misses, committing every remote result back into
// the cache with its worker-measured wall-clock. A fully cached grid
// never dials at all. The same directory can back local and
// distributed sweeps interchangeably.
//
// A RemoteExecutor is single-flight: one Execute call at a time.
type RemoteExecutor struct {
	// Addrs are the worker addresses to dial. At least one must accept
	// and complete the version handshake, or Execute fails.
	Addrs []string
	// Rounds is the horizon bound stamped on every job, normalized by
	// the caller (the root package maps 0 to the paper's 1000; a zero
	// value here defers to the workers' RunnerFor default).
	Rounds int
	// Traced requests per-round trace payloads from workers so cache
	// commits can serve shorter horizons later. Set it when (and only
	// when) Cache is set: traces ride the wire only to be stripped
	// before results reach the store.
	Traced bool
	// Cache, when non-nil, serves hits locally and commits remote
	// results. It must be open under the sweep's signature.
	Cache *cache.Cache
	// DialTimeout bounds the dial and version handshake per worker
	// (default 10s).
	DialTimeout time.Duration

	mu     sync.Mutex
	counts map[string]int
}

// Counts reports completed cells per worker address for the most
// recent Execute call — the audit trail cmd/autofl-sweep prints in its
// final stats line. Cells served from the cache are not counted here
// (they appear in the cache's own Stats).
func (e *RemoteExecutor) Counts() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int, len(e.counts))
	for a, n := range e.counts {
		out[a] = n
	}
	return out
}

func (e *RemoteExecutor) dialTimeout() time.Duration {
	if e.DialTimeout > 0 {
		return e.DialTimeout
	}
	return 10 * time.Second
}

// Execute implements sweep.Executor. The local Runner is deliberately
// ignored: every non-cached cell executes on a worker, which is what
// makes "0 local executions" checkable — the engine's runner can be a
// guard that fails the cell if it ever runs.
func (e *RemoteExecutor) Execute(ctx context.Context, tasks []sweep.Task, _ sweep.Runner, emit func(int, sweep.Result)) error {
	if len(e.Addrs) == 0 {
		return errors.New("dist: no worker addresses")
	}
	e.mu.Lock()
	e.counts = make(map[string]int, len(e.Addrs))
	e.mu.Unlock()

	// Cache pass: serve what the cache can witness, queue the rest.
	pending := make([]sweep.Task, 0, len(tasks))
	for _, t := range tasks {
		if e.Cache != nil {
			if out, ok := e.Cache.Serve(t.Cell, t.Seed); ok {
				emit(t.Index, sweep.Result{Cell: t.Cell, Seed: t.Seed, Outcome: out})
				continue
			}
		}
		pending = append(pending, t)
	}
	if len(pending) == 0 {
		return nil // fully served; never dial
	}

	// The queue holds every task not yet claimed by a connection. Its
	// capacity is an invariant, not a guess: a task is always either
	// queued or in exactly one worker's in-flight set, so re-queuing a
	// dead worker's claims can never block.
	queue := make(chan sweep.Task, len(pending))
	for _, t := range pending {
		queue <- t
	}
	var (
		remaining = int64(len(pending))
		done      = make(chan struct{}) // closed when remaining hits 0
		closeOnce sync.Once
	)
	finish := func() {
		if atomic.AddInt64(&remaining, -1) == 0 {
			closeOnce.Do(func() { close(done) })
		}
	}

	errs := make([]error, len(e.Addrs))
	var wg sync.WaitGroup
	for i, addr := range e.Addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			errs[i] = e.runWorker(ctx, addr, queue, done, emit, finish)
		}(i, addr)
	}
	wg.Wait()

	select {
	case <-done:
		// Every pending cell was delivered; individual worker failures
		// along the way were absorbed by re-queuing.
		return ctx.Err()
	default:
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("dist: %d cells unfinished, all workers gone (first failure: %w)", atomic.LoadInt64(&remaining), err)
		}
	}
	return fmt.Errorf("dist: %d cells unfinished, all workers gone", atomic.LoadInt64(&remaining))
}

// runWorker drives one worker connection: dial, version handshake,
// then a claim/submit loop pipelining up to the advertised capacity,
// with a reader goroutine delivering results as they stream back. On
// any connection failure the worker's in-flight tasks go back on the
// queue and the error is returned; the sweep survives as long as one
// worker does.
func (e *RemoteExecutor) runWorker(ctx context.Context, addr string, queue chan sweep.Task, done <-chan struct{}, emit func(int, sweep.Result), finish func()) error {
	d := net.Dialer{Timeout: e.dialTimeout()}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	defer conn.Close()

	// Banner under a deadline so an endpoint that is not a worker (or
	// speaks another version) cannot hang the sweep.
	conn.SetReadDeadline(time.Now().Add(e.dialTimeout()))
	m, err := readMessage(conn)
	if err != nil {
		return fmt.Errorf("dist: %s: reading hello: %w", addr, err)
	}
	if m.Kind != kindHello || m.Hello == nil {
		return fmt.Errorf("dist: %s: expected hello, got %q", addr, m.Kind)
	}
	if m.Hello.Version != ProtocolVersion {
		return fmt.Errorf("dist: %s: protocol version %d, want %d", addr, m.Hello.Version, ProtocolVersion)
	}
	capacity := m.Hello.Capacity
	if capacity < 1 {
		capacity = 1
	}
	conn.SetReadDeadline(time.Time{})

	var (
		imu      sync.Mutex
		inflight = make(map[int]sweep.Task, capacity)
		slots    = make(chan struct{}, capacity)
	)
	// requeue returns every undelivered claim to the shared queue for
	// the surviving workers (at-least-once delivery).
	requeue := func() {
		imu.Lock()
		for _, t := range inflight {
			queue <- t
		}
		inflight = make(map[int]sweep.Task)
		imu.Unlock()
	}

	readerErr := make(chan error, 1)
	go func() {
		for {
			m, err := readMessage(conn)
			if err != nil {
				readerErr <- err
				return
			}
			if m.Kind != kindResult || m.Result == nil {
				readerErr <- fmt.Errorf("dist: %s: unexpected %q frame", addr, m.Kind)
				return
			}
			res := *m.Result
			imu.Lock()
			t, ok := inflight[res.ID]
			delete(inflight, res.ID)
			imu.Unlock()
			if !ok {
				continue // not ours (already re-queued elsewhere): drop
			}
			e.deliver(addr, t, res, emit)
			<-slots
			finish()
		}
	}()

	for {
		// A free pipeline slot first, then a task to fill it.
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case err := <-readerErr:
			requeue()
			return fmt.Errorf("dist: %s: %w", addr, err)
		case slots <- struct{}{}:
		}
		var t sweep.Task
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case err := <-readerErr:
			requeue()
			return fmt.Errorf("dist: %s: %w", addr, err)
		case t = <-queue:
		}
		imu.Lock()
		inflight[t.Index] = t
		imu.Unlock()
		job := e.jobFor(t)
		if err := writeMessage(conn, message{Kind: kindJob, Job: &job}); err != nil {
			requeue()
			return err
		}
	}
}

// jobFor stamps one task into its wire form.
func (e *RemoteExecutor) jobFor(t sweep.Task) Job {
	j := Job{ID: t.Index, Cell: t.Cell, Seed: t.Seed, Rounds: e.Rounds, Traced: e.Traced}
	if e.Cache != nil {
		j.Digest = e.Cache.Signature().CellDigest(t.Cell)
	}
	return j
}

// deliver commits one remote result (cache first, by digest; then the
// engine's emit) and charges it to the worker's count. The trace
// payload, if any, stops at the cache — exactly like the local
// cache.Runner path, so distributed output is byte-identical to local.
func (e *RemoteExecutor) deliver(addr string, t sweep.Task, res JobResult, emit func(int, sweep.Result)) {
	out := res.Outcome
	if e.Cache != nil && res.Err == "" {
		_ = e.Cache.Put(sweep.Result{Cell: t.Cell, Seed: t.Seed, Outcome: out}, res.WallSeconds)
	}
	out.Trace = nil
	emit(t.Index, sweep.Result{Cell: t.Cell, Seed: t.Seed, Outcome: out, Err: res.Err})
	e.mu.Lock()
	e.counts[addr]++
	e.mu.Unlock()
}
