package dist

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autofl/internal/rng"
	"autofl/internal/sweep"
	"autofl/internal/sweep/cache"
)

// testGrid is a 24-cell grid matching the engine tests' shape: enough
// cells for both workers to claim real work.
func testGrid() sweep.Grid {
	return sweep.Grid{
		Workloads:  []string{"CNN-MNIST"},
		Settings:   []string{"S3"},
		Data:       []string{"iid", "noniid50"},
		Envs:       []string{"ideal", "field"},
		Policies:   []string{"FedAvg-Random", "AutoFL", "Power"},
		Replicates: 1,
		Seed:       777,
	}
}

// fakeRunner is a pure function of the cell seed, standing in for a
// Scenario run on either side of the wire.
func fakeRunner(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
	s := rng.New(seed)
	return sweep.Outcome{
		Converged:       s.Bool(0.5),
		Rounds:          1 + s.IntN(100),
		TimeToTargetSec: 10 * s.Float64(),
		EnergyToTargetJ: 100 * s.Float64(),
		GlobalPPW:       s.Float64(),
		LocalPPW:        s.Float64(),
		FinalAccuracy:   s.Float64(),
	}, nil
}

func fakeRunners(rounds int, traced bool) sweep.Runner { return fakeRunner }

// noLocal is the engine-side runner for distributed runs: any local
// execution is a test failure (and an errored cell, which would also
// break byte-identity).
func noLocal(t *testing.T) sweep.Runner {
	return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		t.Errorf("cell %s executed locally in distributed mode", c.Key())
		return sweep.Outcome{}, errors.New("local execution in distributed mode")
	}
}

// startWorker spins up a loopback worker on its own goroutine.
func startWorker(t *testing.T, parallel int, runners RunnerFor) *Worker {
	t.Helper()
	w, err := NewWorker("127.0.0.1:0", parallel, runners)
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve()
	t.Cleanup(func() { w.Close() })
	return w
}

func storeJSON(t *testing.T, s *sweep.ResultStore) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	job := Job{ID: 7, Cell: sweep.Cell{Workload: "CNN-MNIST", Policy: "AutoFL"}, Seed: 42, Rounds: 100, Traced: true, Digest: "abc"}
	if err := writeMessage(&buf, message{Kind: kindJob, Job: &job}); err != nil {
		t.Fatal(err)
	}
	m, err := readMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != kindJob || m.Job == nil || *m.Job != job {
		t.Fatalf("round-trip mismatch: %+v", m)
	}

	// A corrupt length prefix must be rejected, not allocated.
	bad := bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0})
	if _, err := readMessage(bad); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized frame accepted: %v", err)
	}
}

// TestLoopbackDistributedSweep is the core distributed guarantee: a
// coordinator plus two in-process workers produce byte-identical
// output to a serial local run, with every cell executed remotely.
func TestLoopbackDistributedSweep(t *testing.T) {
	g := testGrid()
	serial, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	w1 := startWorker(t, 2, fakeRunners)
	w2 := startWorker(t, 2, fakeRunners)
	re := &RemoteExecutor{Addrs: []string{w1.Addr(), w2.Addr()}, Rounds: 100}
	dist, err := sweep.Run(context.Background(), g, noLocal(t), sweep.Options{Executor: re})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(storeJSON(t, serial), storeJSON(t, dist)) {
		t.Error("distributed JSON differs from serial local JSON")
	}

	counts := re.Counts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != g.Size() {
		t.Errorf("per-worker counts sum to %d, want %d (counts: %v)", total, g.Size(), counts)
	}
	if w1.Served()+w2.Served() != g.Size() {
		t.Errorf("workers served %d+%d cells, want %d", w1.Served(), w2.Served(), g.Size())
	}
	if len(counts) != 2 || counts[w1.Addr()] == 0 || counts[w2.Addr()] == 0 {
		t.Errorf("both workers should claim cells on a 24-cell grid: %v", counts)
	}
}

// TestWorkerDeathRequeues kills one of two workers mid-grid: its
// claimed cells must be re-queued to the survivor, the sweep must
// complete every cell, and the bytes must still match a serial run.
func TestWorkerDeathRequeues(t *testing.T) {
	g := testGrid()
	serial, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	w1 := startWorker(t, 2, fakeRunners)
	var w2 *Worker
	var executed int32
	dying := func(rounds int, traced bool) sweep.Runner {
		return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
			if atomic.AddInt32(&executed, 1) == 4 {
				go w2.Close() // async: Close waits for handlers, so a synchronous call would deadlock
			}
			return fakeRunner(ctx, c, seed)
		}
	}
	w2 = startWorker(t, 1, dying)

	re := &RemoteExecutor{Addrs: []string{w1.Addr(), w2.Addr()}, Rounds: 100}
	dist, err := sweep.Run(context.Background(), g, noLocal(t), sweep.Options{Executor: re})
	if err != nil {
		t.Fatalf("sweep must survive a worker death: %v", err)
	}
	if dist.Len() != g.Size() {
		t.Fatalf("completed %d of %d cells after worker death", dist.Len(), g.Size())
	}
	if !bytes.Equal(storeJSON(t, serial), storeJSON(t, dist)) {
		t.Error("post-death distributed JSON differs from serial local JSON")
	}
}

// TestDistributedCacheCommit pins the shared-cache path: a cold
// distributed run misses and commits every cell by digest; a second
// distributed run against the same cache serves everything locally
// without dialing a single worker (the addresses are unroutable on
// purpose).
func TestDistributedCacheCommit(t *testing.T) {
	g := testGrid()
	sig := cache.Signature{GridSeed: g.Seed, Rounds: 100}
	dir := t.TempDir()

	cold, err := cache.Open(dir, sig)
	if err != nil {
		t.Fatal(err)
	}
	w := startWorker(t, 0, fakeRunners)
	re := &RemoteExecutor{Addrs: []string{w.Addr()}, Rounds: sig.Rounds, Cache: cold}
	coldStore, err := sweep.Run(context.Background(), g, noLocal(t), sweep.Options{Executor: re})
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Hits != 0 || st.Misses != g.Size() {
		t.Errorf("cold distributed stats = %+v, want %d misses", st, g.Size())
	}
	if cold.Len() != g.Size() {
		t.Errorf("cache committed %d of %d remote results", cold.Len(), g.Size())
	}
	for _, r := range coldStore.Results() {
		if !cold.Has(r.Cell) {
			t.Errorf("cell %s missing from cache after remote commit", r.Cell.Key())
		}
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := cache.Open(dir, sig)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	// Unroutable workers: if the warm run dials at all, it fails loudly.
	reWarm := &RemoteExecutor{Addrs: []string{"127.0.0.1:1"}, Rounds: sig.Rounds, Cache: warm, DialTimeout: time.Second}
	warmStore, err := sweep.Run(context.Background(), g, noLocal(t), sweep.Options{Executor: reWarm})
	if err != nil {
		t.Fatalf("fully cached distributed run must not dial: %v", err)
	}
	if st := warm.Stats(); st.Hits != g.Size() || st.Misses != 0 {
		t.Errorf("warm distributed stats = %+v", st)
	}
	if !bytes.Equal(storeJSON(t, coldStore), storeJSON(t, warmStore)) {
		t.Error("warm distributed JSON differs from cold distributed JSON")
	}
}

func TestAllWorkersUnreachable(t *testing.T) {
	g := testGrid()
	re := &RemoteExecutor{Addrs: []string{"127.0.0.1:1"}, Rounds: 10, DialTimeout: time.Second}
	store, err := sweep.Run(context.Background(), g, noLocal(t), sweep.Options{Executor: re})
	if err == nil {
		t.Fatal("sweep with no reachable workers must fail")
	}
	if store.Len() != 0 {
		t.Errorf("no cells should complete, got %d", store.Len())
	}
}

func TestNoAddresses(t *testing.T) {
	re := &RemoteExecutor{}
	if _, err := sweep.Run(context.Background(), testGrid(), noLocal(t), sweep.Options{Executor: re}); err == nil {
		t.Fatal("empty address list must fail")
	}
}

// TestHandshakeRejectsVersionMismatch dials an endpoint speaking a
// future protocol version; the coordinator must refuse it.
func TestHandshakeRejectsVersionMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		writeMessage(conn, message{Kind: kindHello, Hello: &Hello{Version: ProtocolVersion + 1, Capacity: 1}})
		time.Sleep(2 * time.Second)
		conn.Close()
	}()

	re := &RemoteExecutor{Addrs: []string{ln.Addr().String()}, Rounds: 10, DialTimeout: 2 * time.Second}
	_, err = sweep.Run(context.Background(), testGrid(), noLocal(t), sweep.Options{Executor: re})
	if err == nil || !strings.Contains(err.Error(), "protocol version") {
		t.Fatalf("version mismatch not rejected: %v", err)
	}
}

// TestDistributedCancellation cancels mid-sweep: the coordinator
// returns the context error with the partial results intact, and the
// worker survives for the next sweep.
func TestDistributedCancellation(t *testing.T) {
	g := testGrid()
	ctx, cancel := context.WithCancel(context.Background())
	var executed int32
	slow := func(rounds int, traced bool) sweep.Runner {
		return func(c context.Context, cell sweep.Cell, seed uint64) (sweep.Outcome, error) {
			if atomic.AddInt32(&executed, 1) == 3 {
				cancel()
			}
			time.Sleep(10 * time.Millisecond)
			return fakeRunner(c, cell, seed)
		}
	}
	w := startWorker(t, 1, slow)
	re := &RemoteExecutor{Addrs: []string{w.Addr()}, Rounds: 10}
	store, err := sweep.Run(ctx, g, noLocal(t), sweep.Options{Executor: re})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if store.Len() >= g.Size() {
		t.Errorf("cancellation did not stop the sweep: %d cells", store.Len())
	}

	// The worker is still usable after the canceled coordinator left.
	re2 := &RemoteExecutor{Addrs: []string{w.Addr()}, Rounds: 10}
	again, err := sweep.Run(context.Background(), g, noLocal(t), sweep.Options{Executor: re2})
	if err != nil {
		t.Fatalf("worker unusable after canceled sweep: %v", err)
	}
	if again.Len() != g.Size() {
		t.Errorf("second sweep completed %d of %d cells", again.Len(), g.Size())
	}
}

// TestUndeliverableResultFailsLoudly pins the no-hang guarantee: a
// result the worker cannot frame (NaN is unrepresentable in JSON, so
// the marshal fails) must break the connection — re-queuing the cell
// and, with no surviving worker able to deliver it either, failing the
// sweep — rather than silently dropping the job and deadlocking the
// coordinator.
func TestUndeliverableResultFailsLoudly(t *testing.T) {
	nan := func(rounds int, traced bool) sweep.Runner {
		return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
			return sweep.Outcome{FinalAccuracy: math.NaN()}, nil
		}
	}
	w := startWorker(t, 1, nan)
	re := &RemoteExecutor{Addrs: []string{w.Addr()}, Rounds: 10, DialTimeout: time.Second}

	type res struct {
		store *sweep.ResultStore
		err   error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := sweep.Run(context.Background(), testGrid(), noLocal(t), sweep.Options{Executor: re})
		ch <- res{s, err}
	}()
	select {
	case r := <-ch:
		if r.err == nil {
			t.Error("a sweep whose results can never be delivered must fail, not succeed")
		}
		if r.store.Len() != 0 {
			t.Errorf("%d cells completed despite undeliverable results", r.store.Len())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep hung on an undeliverable result")
	}
}

// TestWorkerCloseUnblocksServe pins the worker's graceful-shutdown
// idiom (mirroring flnet.Server.Close).
func TestWorkerCloseUnblocksServe(t *testing.T) {
	w, err := NewWorker("127.0.0.1:0", 1, fakeRunners)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- w.Serve() }()
	time.Sleep(20 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-served:
		if !errors.Is(err, ErrWorkerClosed) {
			t.Errorf("Serve returned %v, want ErrWorkerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// ---- control-plane primitives (PR 6) ----

// chanSource is a minimal Source: a buffered pool of links, eviction
// recorded for assertions.
type chanSource struct {
	pool    chan *Link
	mu      sync.Mutex
	evicted []error
}

func newChanSource() *chanSource { return &chanSource{pool: make(chan *Link, 16)} }

func (s *chanSource) Acquire(ctx context.Context) (*Link, error) {
	select {
	case l := <-s.pool:
		return l, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
func (s *chanSource) Release(l *Link) { s.pool <- l }
func (s *chanSource) Evict(l *Link, err error) {
	l.Close()
	s.mu.Lock()
	s.evicted = append(s.evicted, err)
	s.mu.Unlock()
}
func (s *chanSource) evictions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.evicted)
}

// acceptLink is the daemon side of one worker registration: accept the
// dial-in, handshake, return the established link.
func acceptLink(t *testing.T, ln net.Listener) *Link {
	t.Helper()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	l, err := NewLink(conn, LinkOptions{HandshakeTimeout: 5 * time.Second})
	if err != nil {
		conn.Close()
		t.Fatalf("handshake: %v", err)
	}
	return l
}

// registerWorker spins up a dial-out worker registering against ln's
// address and hands back the accepted link.
func registerWorker(t *testing.T, ln net.Listener, name string, parallel int, runners RunnerFor) (*Worker, *Link) {
	t.Helper()
	w, err := NewDialWorker(name, parallel, runners)
	if err != nil {
		t.Fatal(err)
	}
	go w.Register(context.Background(), ln.Addr().String(), RegisterOptions{
		MinBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	})
	t.Cleanup(func() { w.Close() })
	return w, acceptLink(t, ln)
}

func TestParseWorkerList(t *testing.T) {
	got, err := ParseWorkerList(" a:1, ,b:2 ")
	if err != nil || len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("inline list = %v, %v", got, err)
	}
	f := filepath.Join(t.TempDir(), "fleet")
	body := "# fleet file\nhost-a:7070\n\nhost-b:7070  # rack 2\n"
	if err := os.WriteFile(f, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ParseWorkerList("@" + f)
	if err != nil || len(got) != 2 || got[0] != "host-a:7070" || got[1] != "host-b:7070" {
		t.Fatalf("file list = %v, %v", got, err)
	}
	if _, err := ParseWorkerList("@" + f + ".missing"); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestRegisteredWorkerSweep is the registration-direction counterpart
// of TestLoopbackDistributedSweep: workers dial in, the control plane
// accepts them into a pool, and a PoolExecutor sweep over the pool is
// byte-identical to a serial local run.
func TestRegisteredWorkerSweep(t *testing.T) {
	g := testGrid()
	serial, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	src := newChanSource()
	_, l1 := registerWorker(t, ln, "w1", 2, fakeRunners)
	_, l2 := registerWorker(t, ln, "w2", 2, fakeRunners)
	if l1.Name() != "w1" || l2.Name() != "w2" {
		t.Fatalf("advertised names = %q, %q", l1.Name(), l2.Name())
	}
	src.pool <- l1
	src.pool <- l2

	pe := &PoolExecutor{Source: src, Rounds: 100}
	store, err := sweep.Run(context.Background(), g, noLocal(t), sweep.Options{Executor: pe})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(storeJSON(t, serial), storeJSON(t, store)) {
		t.Error("registered-worker sweep JSON differs from serial")
	}
	counts := pe.Counts()
	if counts["w1"]+counts["w2"] != g.Size() {
		t.Errorf("counts %v do not sum to %d", counts, g.Size())
	}
	if len(src.pool) != 2 {
		t.Errorf("links not released back to the pool: %d", len(src.pool))
	}
	if src.evictions() != 0 {
		t.Errorf("healthy links evicted: %v", src.evicted)
	}
}

// TestPoolExecutorMidSweepJoin starts the sweep with an empty pool —
// it must wait, not fail — and registers a worker afterwards, which
// picks up the queued cells.
func TestPoolExecutorMidSweepJoin(t *testing.T) {
	g := testGrid()
	serial, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	src := newChanSource()
	pe := &PoolExecutor{Source: src, Rounds: 100}

	type res struct {
		store *sweep.ResultStore
		err   error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := sweep.Run(context.Background(), g, noLocal(t), sweep.Options{Executor: pe})
		ch <- res{s, err}
	}()
	// Late join: the sweep is already executing (blocked on Acquire).
	_, l := registerWorker(t, ln, "late", 2, fakeRunners)
	src.pool <- l

	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if !bytes.Equal(storeJSON(t, serial), storeJSON(t, r.store)) {
			t.Error("mid-sweep-join JSON differs from serial")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not complete after mid-sweep join")
	}
}

// TestPoolExecutorWorkerDeathRequeues kills one of two registered
// workers mid-grid: its in-flight cells re-queue to the survivor and
// the dead link is evicted, not released.
func TestPoolExecutorWorkerDeathRequeues(t *testing.T) {
	g := testGrid()
	serial, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	src := newChanSource()
	_, l1 := registerWorker(t, ln, "survivor", 2, fakeRunners)
	var dying *Worker
	var executed int32
	dyingRunners := func(rounds int, traced bool) sweep.Runner {
		return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
			if atomic.AddInt32(&executed, 1) == 3 {
				go dying.Close()
			}
			return fakeRunner(ctx, c, seed)
		}
	}
	var l2 *Link
	dying, l2 = registerWorker(t, ln, "dying", 1, dyingRunners)
	src.pool <- l1
	src.pool <- l2

	pe := &PoolExecutor{Source: src, Rounds: 100}
	store, err := sweep.Run(context.Background(), g, noLocal(t), sweep.Options{Executor: pe})
	if err != nil {
		t.Fatalf("sweep must survive a worker death: %v", err)
	}
	if store.Len() != g.Size() {
		t.Fatalf("completed %d of %d cells", store.Len(), g.Size())
	}
	if !bytes.Equal(storeJSON(t, serial), storeJSON(t, store)) {
		t.Error("post-death pool JSON differs from serial")
	}
	// The dying worker re-registers (its Register loop is still
	// running), so the registry-side listener sees a fresh dial-in.
	if src.evictions() == 0 {
		t.Error("dead link was not evicted")
	}
}

// TestRegisterRedialsAfterDrop pins the worker side of the
// registration lifecycle: when the daemon drops the connection, the
// worker re-dials with backoff and serves jobs on the new connection.
func TestRegisterRedialsAfterDrop(t *testing.T) {
	g := testGrid()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	_, l := registerWorker(t, ln, "w", 2, fakeRunners)
	l.Close() // daemon-side drop: worker must come back

	l2 := acceptLink(t, ln) // the re-dial
	src := newChanSource()
	src.pool <- l2
	pe := &PoolExecutor{Source: src, Rounds: 100}
	store, err := sweep.Run(context.Background(), g, noLocal(t), sweep.Options{Executor: pe})
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != g.Size() {
		t.Errorf("re-registered worker completed %d of %d cells", store.Len(), g.Size())
	}
}

// TestLeaseGuardDropsStraggler pins the lease nonce: a result computed
// for a canceled sweep, arriving while a later sweep is running on the
// same connection with a colliding job ID, must be dropped — not
// delivered as the later sweep's cell.
func TestLeaseGuardDropsStraggler(t *testing.T) {
	oneCell := sweep.Grid{Workloads: []string{"CNN-MNIST"}, Policies: []string{"AutoFL"}, Replicates: 1, Seed: 9}
	gate := make(chan struct{})
	var calls int32
	gated := func(rounds int, traced bool) sweep.Runner {
		return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
			if atomic.AddInt32(&calls, 1) == 1 {
				<-gate // the first sweep's cell stalls until after its lease dies
			}
			return fakeRunner(ctx, c, seed)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_, l := registerWorker(t, ln, "w", 2, gated)
	src := newChanSource()
	src.pool <- l

	// Sweep 1: cancel while its only cell is stalled in the worker.
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		for atomic.LoadInt32(&calls) == 0 {
			time.Sleep(time.Millisecond)
		}
		close(started)
	}()
	pe1 := &PoolExecutor{Source: src, Rounds: 100}
	go func() {
		<-started
		cancel()
	}()
	if _, err := sweep.Run(ctx, oneCell, noLocal(t), sweep.Options{Executor: pe1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep 1: err = %v, want canceled", err)
	}

	// Sweep 2 on the released link, same task index 0. Unblock the
	// straggler mid-sweep; its stale lease tag must make driveLink
	// drop it rather than deliver it as sweep 2's cell 0.
	grid2 := sweep.Grid{Workloads: []string{"MobileNet"}, Policies: []string{"AutoFL"}, Replicates: 1, Seed: 10}
	serial2, err := sweep.Run(context.Background(), grid2, fakeRunner, sweep.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	pe2 := &PoolExecutor{Source: src, Rounds: 100}
	store2, err := sweep.Run(context.Background(), grid2, noLocal(t), sweep.Options{Executor: pe2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(storeJSON(t, serial2), storeJSON(t, store2)) {
		t.Error("straggler of the canceled sweep leaked into the next sweep's results")
	}
}

// TestWorkerLifecycleNoGoroutineLeaks runs repeated serve/register/
// close cycles and checks the goroutine count returns to baseline —
// the long-lived-connection hygiene the control plane depends on.
func TestWorkerLifecycleNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		// Listener worker served by a coordinator.
		w := startWorker(t, 2, fakeRunners)
		re := &RemoteExecutor{Addrs: []string{w.Addr()}, Rounds: 100}
		if _, err := sweep.Run(context.Background(), testGrid(), noLocal(t), sweep.Options{Executor: re}); err != nil {
			t.Fatal(err)
		}
		w.Close()

		// Register-mode worker with its link driven and dropped.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dw, l := registerWorker(t, ln, "cycle", 1, fakeRunners)
		l.Close()
		dw.Close()
		ln.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked across serve/close cycles: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
