package dist

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"

	"autofl/internal/sweep"
)

// frame builds a raw wire frame from an explicit length prefix and
// body, so seeds can lie about the length.
func frame(n uint32, body []byte) []byte {
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, n)
	copy(buf[4:], body)
	return buf
}

// validFrame encodes a message through the real writer.
func validFrame(tb testing.TB, m message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := writeMessage(&buf, m); err != nil {
		tb.Fatalf("writeMessage: %v", err)
	}
	return buf.Bytes()
}

// FuzzReadMessage throws arbitrary byte streams at the frame decoder.
// The decoder must never panic and must never trust the advertised
// length for more than the bytes that actually arrive; any frame it
// does accept must survive a write/read round trip.
func FuzzReadMessage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})         // truncated header
	f.Add(frame(0, nil))              // zero-length body
	f.Add(frame(5, []byte("hello")))  // length right, body not JSON
	f.Add(frame(64<<20, nil))         // hostile max-length claim, no body
	f.Add(frame(^uint32(0), nil))     // length beyond the bound
	f.Add(frame(1<<20, []byte("{}"))) // big claim, tiny body
	f.Add(frame(2, []byte("{}x")))    // trailing junk after the frame
	f.Add(validFrame(f, message{Kind: kindHello, Hello: &Hello{Version: ProtocolVersion, Capacity: 4}}))
	f.Add(validFrame(f, message{Kind: kindJob, Job: &Job{ID: 7, Seed: 11, Rounds: 100, Cell: sweep.Cell{}}}))
	f.Add(validFrame(f, message{Kind: kindResult, Result: &JobResult{ID: 7, Err: "boom"}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := readMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := writeMessage(&buf, m); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if _, err := readMessage(&buf); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
	})
}

// TestReadMessageHostileLength pins the progressive-allocation fix: a
// frame whose prefix claims the full 64 MB bound but delivers almost
// no body must fail fast without committing the advertised allocation.
func TestReadMessageHostileLength(t *testing.T) {
	hostile := frame(maxFrame, []byte("{}"))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, err := readMessage(bytes.NewReader(hostile))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated hostile frame decoded without error")
	}
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 4*frameAllocChunk {
		t.Fatalf("hostile length prefix allocated %d bytes; want bounded by the %d-byte chunk", delta, frameAllocChunk)
	}
}

// TestReadMessageOverMaxFrame pins the existing bound: a length prefix
// past maxFrame is rejected on the header alone.
func TestReadMessageOverMaxFrame(t *testing.T) {
	if _, err := readMessage(bytes.NewReader(frame(maxFrame+1, nil))); err == nil {
		t.Fatal("over-bound frame decoded without error")
	}
}
