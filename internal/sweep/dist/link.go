package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"autofl/internal/sweep"
)

// ErrLinkClosed is the Err of a Link torn down by a deliberate Close,
// distinguishable from a transport failure (the flnet/Worker idiom).
var ErrLinkClosed = errors.New("dist: link closed")

// leaseIDs numbers driveLink leases process-wide (see the lease nonce
// in driveLink).
var leaseIDs atomic.Uint64

// Link is one established, handshaken connection to a worker, owned by
// the coordinating side — whether the coordinator dialed a listening
// worker (the PR 5 flow) or a register-mode worker dialed in and the
// connection was accepted (the control-plane flow). Either way the
// worker speaks first (hello), so both directions share one handshake.
//
// A Link owns all reads on the connection: a single persistent reader
// goroutine routes result frames to the attached channel (or discards
// them when none is attached), and its exit — transport failure,
// protocol violation, or Close — closes Dead. That single-reader
// design is what lets a long-lived registry hold idle connections and
// lease them to one sweep after another without read handoffs: a
// worker's death is observed the moment it happens, and a stale result
// from a canceled lease is dropped instead of corrupting the next.
//
// At most one sweep drives a Link at a time (job IDs are per-sweep
// task indexes); the registry's lease discipline enforces that.
type Link struct {
	conn     net.Conn
	name     string
	capacity int

	wmu sync.Mutex // serializes job frames

	mu     sync.Mutex
	dst    chan<- JobResult
	closed bool
	err    error

	dead   chan struct{}
	served atomic.Int64
}

// NewLink performs the coordinator-side handshake on an established
// connection — the worker's hello under the timeout, version check —
// and starts the reader. On error the connection is left to the
// caller; on success the Link owns it (Close it through the Link).
func NewLink(conn net.Conn, timeout time.Duration) (*Link, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	m, err := readMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("reading hello: %w", err)
	}
	if m.Kind != kindHello || m.Hello == nil {
		return nil, fmt.Errorf("expected hello, got %q", m.Kind)
	}
	if m.Hello.Version != ProtocolVersion {
		return nil, fmt.Errorf("protocol version %d, want %d", m.Hello.Version, ProtocolVersion)
	}
	capacity := m.Hello.Capacity
	if capacity < 1 {
		capacity = 1
	}
	conn.SetReadDeadline(time.Time{})
	l := &Link{
		conn:     conn,
		name:     m.Hello.Name,
		capacity: capacity,
		dead:     make(chan struct{}),
	}
	go l.read()
	return l, nil
}

// Name is the worker's self-advertised label ("" when it sent none).
func (l *Link) Name() string { return l.name }

// RemoteAddr is the connection's remote endpoint.
func (l *Link) RemoteAddr() string { return l.conn.RemoteAddr().String() }

// Label names the link for counts and status views: the advertised
// name when there is one, the remote address otherwise.
func (l *Link) Label() string {
	if l.name != "" {
		return l.name
	}
	return l.RemoteAddr()
}

// Capacity is the worker's advertised concurrent-job capacity.
func (l *Link) Capacity() int { return l.capacity }

// Served reports results delivered over the link's lifetime.
func (l *Link) Served() int { return int(l.served.Load()) }

// Attach routes subsequent result frames to ch. The channel must have
// capacity for every in-flight job of the lease (the reader blocks on
// a full channel, which is safe only while the lease drains it).
func (l *Link) Attach(ch chan<- JobResult) {
	l.mu.Lock()
	l.dst = ch
	l.mu.Unlock()
}

// Detach stops routing results; frames arriving with no destination —
// stragglers of a canceled lease — are counted and dropped, exactly
// as the PR 5 coordinator dropped results for re-queued cells.
func (l *Link) Detach() {
	l.mu.Lock()
	l.dst = nil
	l.mu.Unlock()
}

// Send writes one job frame. Safe for concurrent use.
func (l *Link) Send(j Job) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	return writeMessage(l.conn, message{Kind: kindJob, Job: &j})
}

// Dead is closed when the reader exits: transport failure, protocol
// violation, or Close. After Dead, Err reports why.
func (l *Link) Dead() <-chan struct{} { return l.dead }

// Err returns the reader's exit cause once Dead is closed
// (ErrLinkClosed for a deliberate Close), nil before.
func (l *Link) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close tears the link down: the connection closes, the reader exits
// (closing Dead with ErrLinkClosed), and any lease observes the death
// and re-queues its in-flight cells. Idempotent.
func (l *Link) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	return l.conn.Close()
}

// read is the link's single reader: it routes result frames until the
// connection dies.
func (l *Link) read() {
	for {
		m, err := readMessage(l.conn)
		if err != nil {
			l.fail(err)
			return
		}
		if m.Kind != kindResult || m.Result == nil {
			l.fail(fmt.Errorf("dist: unexpected %q frame", m.Kind))
			l.conn.Close()
			return
		}
		l.mu.Lock()
		dst := l.dst
		l.mu.Unlock()
		if dst != nil {
			dst <- *m.Result
		}
		l.served.Add(1)
	}
}

// fail records the reader's exit cause and closes Dead.
func (l *Link) fail(err error) {
	l.mu.Lock()
	if l.closed {
		err = ErrLinkClosed
	}
	l.err = err
	l.mu.Unlock()
	close(l.dead)
}

// driveLink runs one lease: the claim/pipeline loop of a sweep over an
// established link. It claims tasks from the shared queue, keeps up to
// the link's capacity in flight, and delivers completed results — all
// on the calling goroutine, with the link's reader feeding the results
// channel. It returns nil once the sweep is done (done closed), or
// ctx.Err() on cancellation; if the link dies it re-queues every
// in-flight task for the surviving workers (at-least-once delivery)
// and returns the link's Err. In every case the link is detached on
// return, so a straggler result can never leak into a later lease.
func driveLink(ctx context.Context, l *Link, queue chan sweep.Task, done <-chan struct{},
	jobFor func(sweep.Task) Job, deliver func(sweep.Task, JobResult), finish func()) error {
	capacity := l.Capacity()
	// Buffer headroom: up to capacity in-flight results of this lease,
	// plus up to capacity stragglers of a previous lease the worker was
	// still finishing — the reader must never block long enough to
	// stall the connection.
	results := make(chan JobResult, 2*capacity)
	l.Attach(results)
	defer l.Detach()

	// The lease nonce guards against ID collisions across leases: job
	// IDs are per-sweep task indexes, and a straggler from a canceled
	// earlier sweep could otherwise be mistaken for this sweep's cell
	// of the same index. Workers echo it verbatim.
	lease := leaseIDs.Add(1)
	inflight := make(map[int]sweep.Task, capacity)
	// requeue returns every undelivered claim to the shared queue. The
	// queue's capacity is an invariant, not a guess: a task is always
	// either queued or in exactly one lease's in-flight set, so this
	// can never block.
	requeue := func() {
		for _, t := range inflight {
			queue <- t
		}
		clear(inflight)
	}
	handle := func(res JobResult) {
		if res.Lease != lease {
			return // a previous lease's straggler: drop
		}
		t, ok := inflight[res.ID]
		if !ok {
			return // already re-queued elsewhere: drop
		}
		delete(inflight, res.ID)
		deliver(t, res)
		finish()
	}

	for {
		// Drain results until a pipeline slot frees up.
		for len(inflight) >= capacity {
			select {
			case <-done:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			case <-l.Dead():
				requeue()
				return l.Err()
			case res := <-results:
				handle(res)
			}
		}
		// A task to fill it — while staying ready to deliver.
		var t sweep.Task
		claimed := false
		for !claimed {
			select {
			case <-done:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			case <-l.Dead():
				requeue()
				return l.Err()
			case res := <-results:
				handle(res)
			case t = <-queue:
				claimed = true
			}
		}
		inflight[t.Index] = t
		j := jobFor(t)
		j.Lease = lease
		if err := l.Send(j); err != nil {
			// The write failed but the reader may not have noticed yet;
			// force the teardown so Dead closes and Err is set.
			l.conn.Close()
			requeue()
			return err
		}
	}
}
