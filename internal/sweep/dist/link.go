package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"autofl/internal/sweep"
)

// ErrLinkClosed is the Err of a Link torn down by a deliberate Close,
// distinguishable from a transport failure (the flnet/Worker idiom).
var ErrLinkClosed = errors.New("dist: link closed")

// leaseIDs numbers driveLink leases process-wide (see the lease nonce
// in driveLink).
var leaseIDs atomic.Uint64

// LinkOptions tune a Link's liveness machinery. The zero value
// selects the defaults; negative durations disable the corresponding
// mechanism.
type LinkOptions struct {
	// HandshakeTimeout bounds the hello read (default 10s).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds every frame write — job sends and
	// heartbeat pings — so a stalled peer surfaces as a link failure
	// instead of wedging the sending goroutine forever (default 30s;
	// < 0 disables).
	WriteTimeout time.Duration
	// HeartbeatInterval is how often the coordinator pings an
	// otherwise-quiet link (default 5s; < 0 disables heartbeats).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long the link tolerates total silence —
	// no results, no pongs — before declaring the worker hung and
	// failing the link (default 4× the interval). A hung-but-connected
	// worker is thereby evicted just like a dead one: Dead closes, the
	// lease re-queues its in-flight cells, and the registry drops it.
	HeartbeatTimeout time.Duration
}

func (o LinkOptions) withDefaults() LinkOptions {
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 5 * time.Second
	}
	if o.HeartbeatTimeout == 0 {
		o.HeartbeatTimeout = 4 * o.HeartbeatInterval
	}
	return o
}

// Link is one established, handshaken connection to a worker, owned by
// the coordinating side — whether the coordinator dialed a listening
// worker (the PR 5 flow) or a register-mode worker dialed in and the
// connection was accepted (the control-plane flow). Either way the
// worker speaks first (hello), so both directions share one handshake.
//
// A Link owns all reads on the connection: a single persistent reader
// goroutine routes result frames to the attached channel (or discards
// them when none is attached), and its exit — transport failure,
// protocol violation, heartbeat timeout, or Close — closes Dead. That
// single-reader design is what lets a long-lived registry hold idle
// connections and lease them to one sweep after another without read
// handoffs: a worker's death is observed the moment it happens, and a
// stale result from a canceled lease is dropped instead of corrupting
// the next.
//
// Liveness: every received frame (results and pongs alike) refreshes
// the link's last-heard clock; a background heartbeat pings on the
// configured interval and fails the link when the silence exceeds the
// heartbeat timeout. Workers answer pings from their read loop even
// while cells execute, so a long-running cell never looks like a hang
// — only a genuinely frozen or partitioned peer does.
//
// At most one sweep drives a Link at a time (job IDs are per-sweep
// task indexes); the registry's lease discipline enforces that.
type Link struct {
	conn     net.Conn
	name     string
	capacity int
	opts     LinkOptions

	wmu sync.Mutex // serializes frame writes (jobs and pings)

	mu     sync.Mutex
	dst    chan<- JobResult
	closed bool
	failed bool
	err    error

	dead     chan struct{}
	served   atomic.Int64
	lastRecv atomic.Int64 // UnixNano of the last received frame
}

// NewLink performs the coordinator-side handshake on an established
// connection — the worker's hello under the handshake timeout, version
// check — and starts the reader and heartbeat. On error the connection
// is left to the caller; on success the Link owns it (Close it through
// the Link).
func NewLink(conn net.Conn, opts LinkOptions) (*Link, error) {
	opts = opts.withDefaults()
	conn.SetReadDeadline(time.Now().Add(opts.HandshakeTimeout))
	m, err := readMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("reading hello: %w", err)
	}
	if m.Kind != kindHello || m.Hello == nil {
		return nil, fmt.Errorf("expected hello, got %q", m.Kind)
	}
	if m.Hello.Version != ProtocolVersion {
		return nil, fmt.Errorf("protocol version %d, want %d", m.Hello.Version, ProtocolVersion)
	}
	capacity := m.Hello.Capacity
	if capacity < 1 {
		capacity = 1
	}
	conn.SetReadDeadline(time.Time{})
	l := &Link{
		conn:     conn,
		name:     m.Hello.Name,
		capacity: capacity,
		opts:     opts,
		dead:     make(chan struct{}),
	}
	l.lastRecv.Store(time.Now().UnixNano())
	go l.read()
	if opts.HeartbeatInterval > 0 {
		go l.heartbeat()
	}
	return l, nil
}

// Name is the worker's self-advertised label ("" when it sent none).
func (l *Link) Name() string { return l.name }

// RemoteAddr is the connection's remote endpoint.
func (l *Link) RemoteAddr() string { return l.conn.RemoteAddr().String() }

// Label names the link for counts and status views: the advertised
// name when there is one, the remote address otherwise.
func (l *Link) Label() string {
	if l.name != "" {
		return l.name
	}
	return l.RemoteAddr()
}

// Capacity is the worker's advertised concurrent-job capacity.
func (l *Link) Capacity() int { return l.capacity }

// Served reports results delivered over the link's lifetime.
func (l *Link) Served() int { return int(l.served.Load()) }

// Attach routes subsequent result frames to ch. The channel must have
// capacity for every in-flight job of the lease (the reader blocks on
// a full channel, which is safe only while the lease drains it).
func (l *Link) Attach(ch chan<- JobResult) {
	l.mu.Lock()
	l.dst = ch
	l.mu.Unlock()
}

// Detach stops routing results; frames arriving with no destination —
// stragglers of a canceled lease — are counted and dropped, exactly
// as the PR 5 coordinator dropped results for re-queued cells.
func (l *Link) Detach() {
	l.mu.Lock()
	l.dst = nil
	l.mu.Unlock()
}

// Send writes one job frame. Safe for concurrent use.
func (l *Link) Send(j Job) error {
	return l.send(message{Kind: kindJob, Job: &j})
}

// send frames one message under the write mutex and the configured
// write deadline, so a peer that stops reading fails the write
// instead of wedging the caller.
func (l *Link) send(m message) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if wt := l.opts.WriteTimeout; wt > 0 {
		l.conn.SetWriteDeadline(time.Now().Add(wt))
	}
	return writeMessage(l.conn, m)
}

// Dead is closed when the link fails: transport failure, protocol
// violation, heartbeat timeout, or Close. After Dead, Err reports why.
func (l *Link) Dead() <-chan struct{} { return l.dead }

// Err returns the link's failure cause once Dead is closed
// (ErrLinkClosed for a deliberate Close), nil before.
func (l *Link) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close tears the link down: the connection closes, the reader exits
// (closing Dead with ErrLinkClosed), and any lease observes the death
// and re-queues its in-flight cells. Idempotent.
func (l *Link) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	return l.conn.Close()
}

// read is the link's single reader: it routes result frames (and
// swallows pongs, which only refresh the liveness clock) until the
// connection dies.
func (l *Link) read() {
	for {
		m, err := readMessage(l.conn)
		if err != nil {
			l.fail(err)
			return
		}
		l.lastRecv.Store(time.Now().UnixNano())
		switch {
		case m.Kind == kindPong:
			continue
		case m.Kind != kindResult || m.Result == nil:
			l.fail(fmt.Errorf("dist: unexpected %q frame", m.Kind))
			l.conn.Close()
			return
		}
		l.mu.Lock()
		dst := l.dst
		l.mu.Unlock()
		if dst != nil {
			dst <- *m.Result
		}
		l.served.Add(1)
	}
}

// heartbeat pings the worker on the configured interval and fails the
// link once total silence — no results, no pongs — exceeds the
// heartbeat timeout. It closes the connection on failure so the
// reader exits too.
func (l *Link) heartbeat() {
	t := time.NewTicker(l.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-l.dead:
			return
		case <-t.C:
			quiet := time.Since(time.Unix(0, l.lastRecv.Load()))
			if quiet > l.opts.HeartbeatTimeout {
				l.fail(fmt.Errorf("dist: heartbeat timeout: worker silent for %s (bound %s)",
					quiet.Round(time.Millisecond), l.opts.HeartbeatTimeout))
				l.conn.Close()
				return
			}
			if err := l.send(message{Kind: kindPing}); err != nil {
				l.fail(fmt.Errorf("dist: heartbeat send: %w", err))
				l.conn.Close()
				return
			}
		}
	}
}

// fail records the link's failure cause and closes Dead. First cause
// wins: the reader, the heartbeat, and a lease teardown can all race
// to report, and only one closes the channel.
func (l *Link) fail(err error) {
	l.mu.Lock()
	if l.failed {
		l.mu.Unlock()
		return
	}
	l.failed = true
	if l.closed {
		err = ErrLinkClosed
	}
	l.err = err
	l.mu.Unlock()
	close(l.dead)
}

// inflightJob is one claimed, undelivered task of a lease, stamped
// with its send time for the per-cell execution deadline.
type inflightJob struct {
	task   sweep.Task
	sentAt time.Time
}

// driveLink runs one lease: the claim/pipeline loop of a sweep over an
// established link. It claims tasks from the dispatcher's shared
// queue, keeps up to the link's capacity in flight, and delivers
// completed results — all on the calling goroutine, with the link's
// reader feeding the results channel. It returns nil once the sweep is
// done (every cell delivered or quarantined), or ctx.Err() on
// cancellation; if the link dies — transport failure, heartbeat
// timeout, or a cell exceeding the dispatcher's execution deadline —
// every in-flight task goes back through the dispatcher's fault path
// (re-queue with backoff, or quarantine past the retry budget) and the
// link's failure is returned. In every case the link is detached on
// return, so a straggler result can never leak into a later lease.
func driveLink(ctx context.Context, l *Link, d *dispatch,
	jobFor func(sweep.Task) Job, deliver func(sweep.Task, JobResult)) error {
	capacity := l.Capacity()
	// Buffer headroom: up to capacity in-flight results of this lease,
	// plus up to capacity stragglers of a previous lease the worker was
	// still finishing — the reader must never block long enough to
	// stall the connection.
	results := make(chan JobResult, 2*capacity)
	l.Attach(results)
	defer l.Detach()

	// The lease nonce guards against ID collisions across leases: job
	// IDs are per-sweep task indexes, and a straggler from a canceled
	// earlier sweep could otherwise be mistaken for this sweep's cell
	// of the same index. Workers echo it verbatim.
	lease := leaseIDs.Add(1)
	inflight := make(map[int]inflightJob, capacity)
	// fault routes every undelivered claim through the dispatcher:
	// back on the shared queue (with backoff for repeat offenders) or
	// into quarantine past the retry budget.
	fault := func(cause error) {
		for _, in := range inflight {
			d.fault(in.task, cause)
		}
		clear(inflight)
	}
	// requeue returns claims without charging their retry budgets —
	// the cancellation path, where the sweep (not the cell) stopped.
	// The queue's capacity is an invariant, not a guess: a task is
	// always either queued, in exactly one lease's in-flight set, or
	// on one backoff timer, so this can never block.
	requeue := func() {
		for _, in := range inflight {
			d.queue <- in.task
		}
		clear(inflight)
	}
	handle := func(res JobResult) {
		if res.Lease != lease {
			return // a previous lease's straggler: drop
		}
		in, ok := inflight[res.ID]
		if !ok {
			return // already re-queued elsewhere: drop
		}
		delete(inflight, res.ID)
		deliver(in.task, res)
		d.finish()
	}
	// The per-cell execution deadline: a ticker at a quarter of the
	// bound (so overshoot stays small) checks the oldest in-flight
	// job; one over the bound condemns the whole link — the worker is
	// hung or drowning, and its healthy in-flight cells re-queue along
	// with the culprit, exactly like a death.
	var overdue <-chan time.Time
	if d.cellTimeout > 0 {
		t := time.NewTicker(max(d.cellTimeout/4, time.Millisecond))
		defer t.Stop()
		overdue = t.C
	}
	checkDeadline := func() error {
		for _, in := range inflight {
			if age := time.Since(in.sentAt); age > d.cellTimeout {
				err := fmt.Errorf("dist: cell %d exceeded the %s execution deadline (in flight %s)",
					in.task.Index, d.cellTimeout, age.Round(time.Millisecond))
				fault(err)
				l.fail(err)
				l.conn.Close()
				return err
			}
		}
		return nil
	}

	for {
		// Drain results until a pipeline slot frees up.
		for len(inflight) >= capacity {
			select {
			case <-d.done:
				return nil
			case <-ctx.Done():
				requeue()
				return ctx.Err()
			case <-l.Dead():
				fault(l.Err())
				return l.Err()
			case <-overdue:
				if err := checkDeadline(); err != nil {
					return err
				}
			case res := <-results:
				handle(res)
			}
		}
		// A task to fill it — while staying ready to deliver.
		var t sweep.Task
		claimed := false
		for !claimed {
			select {
			case <-d.done:
				return nil
			case <-ctx.Done():
				requeue()
				return ctx.Err()
			case <-l.Dead():
				fault(l.Err())
				return l.Err()
			case <-overdue:
				if err := checkDeadline(); err != nil {
					return err
				}
			case res := <-results:
				handle(res)
			case t = <-d.queue:
				claimed = true
			}
		}
		inflight[t.Index] = inflightJob{task: t, sentAt: time.Now()}
		j := jobFor(t)
		j.Lease = lease
		if err := l.Send(j); err != nil {
			// The write failed but the reader may not have noticed yet;
			// force the teardown so Dead closes and Err is set.
			l.conn.Close()
			fault(err)
			return err
		}
	}
}
