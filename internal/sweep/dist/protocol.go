// Package dist distributes sweep execution across machines: a
// RemoteExecutor (the sweep.Executor a coordinating process plugs into
// sweep.Options) farms cells to Worker processes over a length-prefixed
// JSON wire protocol, and commits their results straight into the v2
// result cache by cell digest.
//
// The design leans on two invariants the rest of the stack already
// guarantees. First, cell outcomes are pure functions of (cell, seed,
// horizon) — per-cell seeds derive from the grid seed and the cell's
// identity, never from placement — so executing a cell on another
// machine cannot change a single output byte. Second, the cache's
// CellDigest is an injective content address of (grid seed, cell), so
// remote results have a natural dedup/commit key: delivery is
// at-least-once (a lost worker's claimed cells are re-queued), and both
// the engine's emit path and the cache's duplicate-digest resolution
// make redundant deliveries harmless.
//
// Wire protocol, per coordinator↔worker connection (the worker speaks
// first whichever side dialed, so a coordinator dialing a listening
// worker and a register-mode worker dialing a control-plane daemon
// share one handshake):
//
//	worker → coordinator   hello{version, capacity, name}  (once, on connect)
//	coordinator → worker   job{id, cell, seed, rounds, traced, digest, lease}
//	worker → coordinator   result{id, digest, lease, outcome, err, wall_seconds}
//	coordinator → worker   ping                            (liveness probe)
//	worker → coordinator   pong
//
// The coordinator pipelines up to the advertised capacity of jobs per
// worker; the worker executes them on a local pool and streams results
// back in completion order. Framing is a 4-byte big-endian length
// prefix followed by a JSON body (the framing idiom of
// internal/flnet's message envelope, with JSON instead of gob so
// payloads round-trip float64 exactly the way the exporters and the
// cache already rely on).
package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"autofl/internal/sweep"
)

// ProtocolVersion gates the wire format. A coordinator refuses a
// worker that advertises a different version rather than misreading
// its frames. Version 2 added the ping/pong heartbeat frames — a v1
// worker would treat a ping as a protocol violation and drop the
// connection, so the handshake refuses the mix outright.
const ProtocolVersion = 2

// maxFrame bounds a single frame's body. Job and result payloads are
// small (a traced 1000-round outcome is ~100 KB of JSON); the bound
// exists so a corrupt or hostile length prefix cannot trigger an
// absurd allocation.
const maxFrame = 64 << 20

// Frame kinds, discriminating the message envelope like
// internal/flnet's Kind field.
const (
	kindHello  = "hello"
	kindJob    = "job"
	kindResult = "result"
	kindPing   = "ping"
	kindPong   = "pong"
)

// Hello is the worker's banner, sent once per connection before any
// jobs flow.
type Hello struct {
	// Version must equal ProtocolVersion.
	Version int `json:"version"`
	// Capacity is the number of jobs the worker executes concurrently;
	// the coordinator keeps at most this many in flight on the
	// connection.
	Capacity int `json:"capacity"`
	// Name is the worker's optional self-advertised label, shown in
	// the control plane's worker registry instead of the (ephemeral)
	// remote address of a dialed-in registration.
	Name string `json:"name,omitempty"`
}

// Job is one cell execution request. It is self-contained — cell,
// derived seed, round horizon, and trace flag — so workers are
// stateless between jobs and one worker can serve sweeps at different
// horizons back to back.
type Job struct {
	// ID echoes sweep.Task.Index: the coordinator's result key.
	ID   int        `json:"id"`
	Cell sweep.Cell `json:"cell"`
	Seed uint64     `json:"seed"`
	// Rounds is the horizon bound for the run (already normalized by
	// the coordinator; never 0).
	Rounds int `json:"rounds"`
	// Traced requests a per-round sweep.RunTrace payload on the
	// outcome, for the coordinator's cache commit.
	Traced bool `json:"traced"`
	// Digest is the cell's cache content address under the sweep's
	// grid seed, carried for auditability (logs on either end can key
	// by it); the coordinator never trusts the echo, it recomputes
	// commits from its own signature.
	Digest string `json:"digest,omitempty"`
	// Lease tags the job with the coordinator lease that sent it; the
	// worker echoes it on the result. Job IDs are per-sweep task
	// indexes, so on a long-lived connection serving one sweep after
	// another the lease tag is what keeps a straggler result of a
	// canceled sweep from being mistaken for the current sweep's cell
	// of the same index.
	Lease uint64 `json:"lease,omitempty"`
}

// JobResult is one completed cell, streamed back in completion order.
type JobResult struct {
	ID     int    `json:"id"`
	Digest string `json:"digest,omitempty"`
	// Lease echoes the job's lease tag (see Job.Lease).
	Lease uint64 `json:"lease,omitempty"`
	// Outcome carries the trace payload when the job requested one.
	Outcome sweep.Outcome `json:"outcome"`
	// Err is the cell's error (or recovered panic), exactly as
	// sweep.ExecuteTask isolates it locally.
	Err string `json:"err,omitempty"`
	// WallSeconds is the worker-measured execution time, the
	// scheduler-calibration signal the cache records.
	WallSeconds float64 `json:"wall_seconds"`
}

// message is the single wire envelope (the flnet idiom: one flat
// struct, Kind discriminates).
type message struct {
	Kind   string     `json:"kind"`
	Hello  *Hello     `json:"hello,omitempty"`
	Job    *Job       `json:"job,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// writeMessage frames and writes one message: 4-byte big-endian body
// length, then the JSON body, as a single Write so concurrent writers
// need only serialize the call, not the bytes.
func writeMessage(w io.Writer, m message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: marshal %s: %w", m.Kind, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("dist: %s frame of %d bytes exceeds the %d-byte bound", m.Kind, len(body), maxFrame)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("dist: write %s: %w", m.Kind, err)
	}
	return nil
}

// ParseWorkerList resolves a worker-address flag value: either a
// comma-separated list of addresses, or "@path" naming a file with
// one address per line ('#' starts a comment; blank lines are
// ignored). Both cmd/autofl-sweep's -workers coordinator flag and
// cmd/autofl-sweepd's static-fleet bootstrap share it, so one fleet
// file drives either entry point.
func ParseWorkerList(arg string) ([]string, error) {
	var fields []string
	if path, ok := strings.CutPrefix(arg, "@"); ok {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("dist: workers file: %w", err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			fields = append(fields, line)
		}
	} else {
		fields = strings.Split(arg, ",")
	}
	var out []string
	for _, f := range fields {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out, nil
}

// frameAllocChunk bounds the body buffer's up-front allocation. The
// advertised length is untrusted until the bytes actually arrive: a
// corrupt or hostile prefix claiming the full 64 MB bound on a
// short-lived connection must not commit a 64 MB allocation before a
// single body byte is read, so the buffer starts at one chunk and
// grows only as data flows.
const frameAllocChunk = 1 << 20

// readMessage reads one length-prefixed frame and decodes it.
func readMessage(r io.Reader) (message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return message{}, fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte bound", n, maxFrame)
	}
	var buf bytes.Buffer
	buf.Grow(int(min(n, frameAllocChunk)))
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // ReadFull's contract for a truncated body
		}
		return message{}, fmt.Errorf("dist: short frame: %w", err)
	}
	var m message
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		return message{}, fmt.Errorf("dist: decode frame: %w", err)
	}
	return m, nil
}
