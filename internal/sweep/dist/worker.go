package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autofl/internal/sweep"
)

// ErrWorkerClosed is returned by Worker.Serve after Close tears the
// worker down (the flnet Server.Close idiom: a deliberate shutdown is
// distinguishable from a transport failure).
var ErrWorkerClosed = errors.New("dist: worker closed")

// RunnerFor maps a job's execution parameters — the round horizon and
// whether a per-round trace is requested — to the sweep.Runner that
// executes it. The indirection keeps workers horizon-agnostic: one
// long-lived worker process serves coordinators sweeping at any
// -rounds value, traced (cache-backed) or not.
type RunnerFor func(rounds int, traced bool) sweep.Runner

// Worker serves sweep cells to coordinators: it accepts connections,
// reads job frames, executes each cell in-process through the runner
// RunnerFor selects (with sweep.ExecuteTask's panic isolation), and
// streams results back. Multiple coordinator connections are served
// concurrently; each gets its own job pool of the advertised capacity.
type Worker struct {
	ln       net.Listener
	runners  RunnerFor
	parallel int

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}

	handlers sync.WaitGroup
	served   atomic.Int64
}

// NewWorker listens on addr (":0" picks a free port; see Addr) and
// returns a worker executing up to parallel jobs concurrently per
// connection (values < 1 select GOMAXPROCS). Call Serve to accept
// coordinators.
func NewWorker(addr string, parallel int, runners RunnerFor) (*Worker, error) {
	if runners == nil {
		return nil, fmt.Errorf("dist: worker needs a RunnerFor")
	}
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{
		ln:       ln,
		runners:  runners,
		parallel: parallel,
		ctx:      ctx,
		cancel:   cancel,
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Addr is the bound listen address (useful with ":0").
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Served reports the number of jobs executed to completion since the
// worker started.
func (w *Worker) Served() int { return int(w.served.Load()) }

// Serve accepts coordinator connections until Close, then returns
// ErrWorkerClosed. Each connection is handled on its own goroutine;
// Serve itself only accepts.
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			if w.isClosed() {
				return ErrWorkerClosed
			}
			return fmt.Errorf("dist: accept: %w", err)
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return ErrWorkerClosed
		}
		w.conns[conn] = struct{}{}
		w.handlers.Add(1)
		w.mu.Unlock()
		go func() {
			defer w.handlers.Done()
			w.handle(conn)
		}()
	}
}

// Close shuts the worker down: the listener stops accepting (waking a
// blocked Serve, which returns ErrWorkerClosed), every coordinator
// connection is closed (unblocking their reads), in-flight cell
// executions are canceled through the worker context, and Close waits
// for the connection handlers to drain. Idempotent.
//
// Connections close before the context cancels, deliberately: a job
// interrupted by shutdown must surface to its coordinator as a broken
// connection (→ re-queue to a surviving worker), never as a
// successfully delivered "context canceled" cell error — the engine's
// first-result-wins dedup would pin that bogus result permanently.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()

	err := w.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	w.cancel()
	w.handlers.Wait()
	return err
}

// isClosed reports whether Close has been called.
func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// handle serves one coordinator connection: banner, then a
// read-jobs/write-results loop with at most w.parallel cells executing
// at once. A broken connection ends the handler; the coordinator
// re-queues whatever it had in flight.
func (w *Worker) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()

	var wmu sync.Mutex // serializes result frames from the job pool
	write := func(m message) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeMessage(conn, m)
	}
	if err := write(message{Kind: kindHello, Hello: &Hello{Version: ProtocolVersion, Capacity: w.parallel}}); err != nil {
		return
	}

	slots := make(chan struct{}, w.parallel)
	var jobs sync.WaitGroup
	defer jobs.Wait() // don't tear the write mutex out from under the pool
	for {
		m, err := readMessage(conn)
		if err != nil {
			return // coordinator done (or gone); either way this session is over
		}
		if m.Kind != kindJob || m.Job == nil {
			return // protocol violation: drop the connection, not the process
		}
		job := *m.Job
		slots <- struct{}{}
		jobs.Add(1)
		go func() {
			defer func() { <-slots; jobs.Done() }()
			res := w.execute(job)
			if w.ctx.Err() != nil {
				// Shutdown raced the execution: the outcome may be a
				// cancellation artifact. Drop it and break the
				// connection so the coordinator re-queues the cell.
				conn.Close()
				return
			}
			if write(message{Kind: kindResult, Result: &res}) != nil {
				// An undeliverable result (marshal failure, frame over
				// the bound, dead socket) must not strand the job: a
				// silently dropped ID would leave the coordinator
				// waiting forever. Break the connection so its reader
				// fails and re-queues every in-flight cell.
				conn.Close()
				return
			}
			w.served.Add(1)
		}()
	}
}

// execute runs one job through the runner its parameters select,
// measuring wall-clock the same way the cache's local Runner wrapper
// does.
func (w *Worker) execute(job Job) JobResult {
	run := w.runners(job.Rounds, job.Traced)
	start := time.Now()
	r := sweep.ExecuteTask(w.ctx, sweep.Task{Index: job.ID, Cell: job.Cell, Seed: job.Seed}, run)
	return JobResult{
		ID:          job.ID,
		Digest:      job.Digest,
		Outcome:     r.Outcome,
		Err:         r.Err,
		WallSeconds: time.Since(start).Seconds(),
	}
}
