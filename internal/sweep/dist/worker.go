package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autofl/internal/sweep"
)

// ErrWorkerClosed is returned by Worker.Serve and Worker.Register
// after Close tears the worker down (the flnet Server.Close idiom: a
// deliberate shutdown is distinguishable from a transport failure).
var ErrWorkerClosed = errors.New("dist: worker closed")

// workerWriteTimeout bounds every worker-side frame write (hello,
// pong, result) — the mirror of LinkOptions.WriteTimeout on the
// coordinator side.
const workerWriteTimeout = 30 * time.Second

// RunnerFor maps a job's execution parameters — the round horizon and
// whether a per-round trace is requested — to the sweep.Runner that
// executes it. The indirection keeps workers horizon-agnostic: one
// long-lived worker process serves coordinators sweeping at any
// -rounds value, traced (cache-backed) or not.
type RunnerFor func(rounds int, traced bool) sweep.Runner

// Worker serves sweep cells to coordinators over either transport
// direction: Serve accepts coordinator connections on a listener (the
// PR 5 dial-out-fleet flow), and Register dials a control-plane
// daemon's registry and serves jobs over that connection, re-dialing
// with backoff whenever it drops. Both paths speak the same protocol —
// the worker sends hello, then executes job frames through the runner
// RunnerFor selects (with sweep.ExecuteTask's panic isolation) and
// streams results back. Multiple connections are served concurrently;
// each gets its own job pool of the advertised capacity.
type Worker struct {
	ln       net.Listener // nil for a register-only worker
	name     string
	runners  RunnerFor
	parallel int

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	closed bool
	done   chan struct{} // closed by Close; wakes Register's backoff sleep
	conns  map[net.Conn]struct{}

	handlers sync.WaitGroup
	served   atomic.Int64
}

// NewWorker listens on addr (":0" picks a free port; see Addr) and
// returns a worker executing up to parallel jobs concurrently per
// connection (values < 1 select GOMAXPROCS). Call Serve to accept
// coordinators.
func NewWorker(addr string, parallel int, runners RunnerFor) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	w, err := NewWorkerOn(ln, parallel, runners)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return w, nil
}

// NewWorkerOn is NewWorker over an already-established listener — the
// seam the fault-injection tests use to put a chaos.Listener under a
// real worker, so scripted connection faults (freeze after the hello,
// drop mid-frame) exercise the genuine serve path. The worker owns ln
// from here on (Close closes it).
func NewWorkerOn(ln net.Listener, parallel int, runners RunnerFor) (*Worker, error) {
	w, err := newWorker("", parallel, runners)
	if err != nil {
		return nil, err
	}
	w.ln = ln
	return w, nil
}

// NewDialWorker returns a register-only worker: it holds no listener
// and serves jobs exclusively over connections Register dials out to a
// control-plane daemon. name is the label advertised in the hello
// banner (shown by the daemon's worker registry; "" falls back to the
// connection's remote address there).
func NewDialWorker(name string, parallel int, runners RunnerFor) (*Worker, error) {
	return newWorker(name, parallel, runners)
}

func newWorker(name string, parallel int, runners RunnerFor) (*Worker, error) {
	if runners == nil {
		return nil, fmt.Errorf("dist: worker needs a RunnerFor")
	}
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{
		name:     name,
		runners:  runners,
		parallel: parallel,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Addr is the bound listen address (useful with ":0"); "" for a
// register-only worker.
func (w *Worker) Addr() string {
	if w.ln == nil {
		return ""
	}
	return w.ln.Addr().String()
}

// Served reports the number of jobs executed to completion since the
// worker started.
func (w *Worker) Served() int { return int(w.served.Load()) }

// Serve accepts coordinator connections until Close, then returns
// ErrWorkerClosed. Each connection is handled on its own goroutine;
// Serve itself only accepts.
func (w *Worker) Serve() error {
	if w.ln == nil {
		return fmt.Errorf("dist: register-only worker has no listener (use Register)")
	}
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			if w.isClosed() {
				return ErrWorkerClosed
			}
			return fmt.Errorf("dist: accept: %w", err)
		}
		if !w.track(conn) {
			conn.Close()
			return ErrWorkerClosed
		}
		go func() {
			defer w.handlers.Done()
			w.handle(conn)
		}()
	}
}

// RegisterOptions tune Register's re-dial loop. The zero value selects
// the defaults.
type RegisterOptions struct {
	// DialTimeout bounds each dial attempt (default 5s).
	DialTimeout time.Duration
	// MinBackoff and MaxBackoff bound the exponential re-dial backoff
	// after a failed dial or a dropped connection (defaults 100ms, 5s).
	// A connection that served jobs resets the backoff.
	MinBackoff, MaxBackoff time.Duration
	// OnState, when set, observes connection lifecycle transitions
	// ("dialing", "serving", "backoff") — the worker CLI's logging
	// hook.
	OnState func(state string, err error)
}

func (o RegisterOptions) withDefaults() RegisterOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MinBackoff <= 0 {
		o.MinBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	return o
}

// Register dials the control-plane daemon's worker registry at addr
// and serves jobs over the connection until it drops, then re-dials
// with exponential backoff — the worker side of the registration
// lifecycle. A worker that registers while a sweep is running picks up
// that sweep's queued cells (mid-sweep join); a worker whose daemon
// restarts finds it again without operator action. Register blocks
// until ctx is done (returning ctx.Err()) or Close is called
// (returning ErrWorkerClosed). Serve and Register may run
// concurrently: one process can accept a static fleet's coordinator
// dials and register with a daemon at once.
func (w *Worker) Register(ctx context.Context, addr string, opts RegisterOptions) error {
	opts = opts.withDefaults()
	backoff := opts.MinBackoff
	notify := func(state string, err error) {
		if opts.OnState != nil {
			opts.OnState(state, err)
		}
	}
	for {
		if w.isClosed() {
			return ErrWorkerClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		notify("dialing", nil)
		d := net.Dialer{Timeout: opts.DialTimeout}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			if !w.track(conn) {
				conn.Close()
				return ErrWorkerClosed
			}
			notify("serving", nil)
			served := w.served.Load()
			func() {
				defer w.handlers.Done()
				w.handle(conn)
			}()
			if w.served.Load() > served {
				backoff = opts.MinBackoff // the link did real work; reset
			}
			err = fmt.Errorf("connection to %s closed", addr)
		}
		if w.isClosed() {
			return ErrWorkerClosed
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		notify("backoff", err)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		case <-w.done:
			return ErrWorkerClosed
		}
		if backoff *= 2; backoff > opts.MaxBackoff {
			backoff = opts.MaxBackoff
		}
	}
}

// track registers a live connection for Close to tear down, claiming a
// handler slot. It reports false when the worker is already closed.
func (w *Worker) track(conn net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.conns[conn] = struct{}{}
	w.handlers.Add(1)
	return true
}

// Close shuts the worker down: the listener (if any) stops accepting
// (waking a blocked Serve, which returns ErrWorkerClosed), Register's
// re-dial loop is woken and stopped, every coordinator connection is
// closed (unblocking their reads), in-flight cell executions are
// canceled through the worker context, and Close waits for the
// connection handlers to drain. Idempotent.
//
// Connections close before the context cancels, deliberately: a job
// interrupted by shutdown must surface to its coordinator as a broken
// connection (→ re-queue to a surviving worker), never as a
// successfully delivered "context canceled" cell error — the engine's
// first-result-wins dedup would pin that bogus result permanently.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.done)
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()

	var err error
	if w.ln != nil {
		err = w.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	w.cancel()
	w.handlers.Wait()
	return err
}

// isClosed reports whether Close has been called.
func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// handle serves one coordinator connection: banner, then a
// read-jobs/write-results loop with at most w.parallel cells executing
// at once. A broken connection ends the handler; the coordinator
// re-queues whatever it had in flight.
func (w *Worker) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()

	var wmu sync.Mutex // serializes result frames from the job pool
	write := func(m message) error {
		wmu.Lock()
		defer wmu.Unlock()
		// Deadline every frame: a coordinator that stopped reading must
		// fail the handler (→ connection drop → re-queue on its side)
		// rather than wedge the job pool behind a full socket buffer.
		conn.SetWriteDeadline(time.Now().Add(workerWriteTimeout))
		return writeMessage(conn, m)
	}
	if err := write(message{Kind: kindHello, Hello: &Hello{Version: ProtocolVersion, Capacity: w.parallel, Name: w.name}}); err != nil {
		return
	}

	slots := make(chan struct{}, w.parallel)
	var jobs sync.WaitGroup
	defer jobs.Wait() // don't tear the write mutex out from under the pool
	for {
		m, err := readMessage(conn)
		if err != nil {
			return // coordinator done (or gone); either way this session is over
		}
		if m.Kind == kindPing {
			// Liveness probe: answer from the read loop, never from the
			// job pool, so a worker saturated with long cells still
			// proves it is alive (only a frozen process goes silent).
			if write(message{Kind: kindPong}) != nil {
				return
			}
			continue
		}
		if m.Kind != kindJob || m.Job == nil {
			return // protocol violation: drop the connection, not the process
		}
		job := *m.Job
		slots <- struct{}{}
		jobs.Add(1)
		go func() {
			defer func() { <-slots; jobs.Done() }()
			res := w.execute(job)
			if w.ctx.Err() != nil {
				// Shutdown raced the execution: the outcome may be a
				// cancellation artifact. Drop it and break the
				// connection so the coordinator re-queues the cell.
				conn.Close()
				return
			}
			if write(message{Kind: kindResult, Result: &res}) != nil {
				// An undeliverable result (marshal failure, frame over
				// the bound, dead socket) must not strand the job: a
				// silently dropped ID would leave the coordinator
				// waiting forever. Break the connection so its reader
				// fails and re-queues every in-flight cell.
				conn.Close()
				return
			}
			w.served.Add(1)
		}()
	}
}

// execute runs one job through the runner its parameters select,
// measuring wall-clock the same way the cache's local Runner wrapper
// does.
func (w *Worker) execute(job Job) JobResult {
	run := w.runners(job.Rounds, job.Traced)
	start := time.Now()
	r := sweep.ExecuteTask(w.ctx, sweep.Task{Index: job.ID, Cell: job.Cell, Seed: job.Seed}, run)
	return JobResult{
		ID:          job.ID,
		Digest:      job.Digest,
		Lease:       job.Lease,
		Outcome:     r.Outcome,
		Err:         r.Err,
		WallSeconds: time.Since(start).Seconds(),
	}
}
