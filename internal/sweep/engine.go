package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Outcome is the measurement a Runner produces for one cell. It
// mirrors the headline fields of an autofl.Report (the accuracy and
// reward traces are dropped: sweeps aggregate scalars).
type Outcome struct {
	Converged       bool    `json:"converged"`
	Rounds          int     `json:"rounds"`
	TimeToTargetSec float64 `json:"time_to_target_sec"`
	EnergyToTargetJ float64 `json:"energy_to_target_j"`
	GlobalPPW       float64 `json:"global_ppw"`
	LocalPPW        float64 `json:"local_ppw"`
	FinalAccuracy   float64 `json:"final_accuracy"`
	// Trace is the optional per-round payload a tracing runner
	// attaches for the persistent cache's horizon-prefix serving
	// (trace.go). It rides the runner chain only: the cache strips it
	// before outcomes reach the ResultStore, so exported JSON/CSV
	// never carries traces.
	Trace *RunTrace `json:"trace,omitempty"`
}

// Result is one executed cell: the cell, the seed it ran with, and
// either its outcome or the error (or recovered panic) that stopped it.
type Result struct {
	Cell    Cell    `json:"cell"`
	Seed    uint64  `json:"seed"`
	Outcome Outcome `json:"outcome"`
	Err     string  `json:"err,omitempty"`
}

// Runner executes one cell with its derived seed. Implementations must
// be safe for concurrent use: the engine invokes one call per cell from
// many goroutines.
type Runner func(ctx context.Context, cell Cell, seed uint64) (Outcome, error)

// Progress reports one completed cell to an Options.OnProgress
// callback.
type Progress struct {
	// Done counts completed cells (including errored ones); Total is
	// the grid size.
	Done, Total int
	// Result is the cell that just finished.
	Result Result
}

// Options tune a sweep run.
type Options struct {
	// Parallel is the worker-pool size; values < 1 select GOMAXPROCS.
	Parallel int
	// OnProgress, when set, is invoked after each cell completes. Calls
	// are serialized; completion order is nondeterministic under
	// parallelism (the result *contents* are not).
	OnProgress func(Progress)
	// Order, when non-nil, is the claim order of the expanded cells:
	// workers execute cells[Order[0]], cells[Order[1]], … instead of
	// expansion (FIFO) order. It must be a permutation of
	// [0, grid.Size()); Run rejects anything else. Claim order never
	// affects output — results are keyed by cell identity and every
	// exported view sorts — it only shapes the pool's tail latency
	// (see internal/sweep/schedule).
	Order []int
}

// validOrder reports whether order is a permutation of [0, n).
func validOrder(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return false
		}
		seen[i] = true
	}
	return true
}

// workers resolves the effective pool size.
func (o Options) workers() int {
	if o.Parallel < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallel
}

// Run expands the grid and executes every cell through the runner on a
// worker pool. It returns a store holding the results of all cells
// that ran (all of them, unless ctx was canceled — then the partial
// set — and the context's error is returned alongside).
//
// A panicking cell is isolated: the panic is recovered into that
// cell's Result.Err and the sweep continues. Results are keyed by the
// cell's position in the deterministic expansion, so the store's
// sorted views are identical for any Parallel value.
func Run(ctx context.Context, g Grid, run Runner, opts Options) (*ResultStore, error) {
	cells := g.Cells()
	if opts.Order != nil && !validOrder(opts.Order, len(cells)) {
		return NewStore(), fmt.Errorf("sweep: Order is not a permutation of [0, %d)", len(cells))
	}
	results := make([]Result, len(cells))
	executed := make([]bool, len(cells))
	workers := opts.workers()
	if workers > len(cells) {
		workers = len(cells)
	}

	var (
		next int64 = -1
		done int
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes OnProgress and guards done
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(cells) || ctx.Err() != nil {
					return
				}
				if opts.Order != nil {
					i = opts.Order[i]
				}
				results[i] = runCell(ctx, g, cells[i], run)
				executed[i] = true
				if opts.OnProgress != nil {
					mu.Lock()
					done++
					opts.OnProgress(Progress{Done: done, Total: len(cells), Result: results[i]})
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	store := NewStore()
	for i := range results {
		if executed[i] {
			store.Add(results[i])
		}
	}
	return store, ctx.Err()
}

// runCell executes one cell, converting an error return or a panic
// into the Result's Err field.
func runCell(ctx context.Context, g Grid, c Cell, run Runner) (r Result) {
	r = Result{Cell: c, Seed: g.CellSeed(c)}
	defer func() {
		if p := recover(); p != nil {
			r.Outcome = Outcome{}
			r.Err = fmt.Sprintf("panic: %v", p)
		}
	}()
	out, err := run(ctx, c, r.Seed)
	if err != nil {
		r.Err = err.Error()
		return r
	}
	r.Outcome = out
	return r
}

// Map runs fn over the index range [0, n) on a worker pool of the
// given size (values < 1 select GOMAXPROCS) and returns the results in
// index order, so output is independent of scheduling. It is the
// primitive the per-figure sweeps of internal/experiments submit their
// cells through. A panic in fn aborts the remaining unclaimed work and
// is re-raised on the caller's goroutine once in-flight calls drain.
func Map[T any](parallel, n int, fn func(i int) T) []T {
	return MapOrder(parallel, n, nil, fn)
}

// MapOrder is Map with an explicit claim order: workers execute
// fn(order[0]), fn(order[1]), … while results stay in index order. A
// nil order is FIFO; anything that is not a permutation of [0, n)
// panics (a programmer error, like an out-of-range index). The figure
// runners of internal/experiments use it to start their costliest
// configurations first.
func MapOrder[T any](parallel, n int, order []int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if order != nil && !validOrder(order, n) {
		panic(fmt.Sprintf("sweep: MapOrder order is not a permutation of [0, %d)", n))
	}
	workers := parallel
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	out := make([]T, n)
	var (
		next    int64 = -1
		aborted atomic.Bool
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || aborted.Load() {
					return
				}
				if order != nil {
					i = order[i]
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							aborted.Store(true)
							panicMu.Lock()
							if panicV == nil {
								panicV = p
							}
							panicMu.Unlock()
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	return out
}
