package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Outcome is the measurement a Runner produces for one cell. It
// mirrors the headline fields of an autofl.Report (the accuracy and
// reward traces are dropped: sweeps aggregate scalars).
type Outcome struct {
	Converged       bool    `json:"converged"`
	Rounds          int     `json:"rounds"`
	TimeToTargetSec float64 `json:"time_to_target_sec"`
	EnergyToTargetJ float64 `json:"energy_to_target_j"`
	GlobalPPW       float64 `json:"global_ppw"`
	LocalPPW        float64 `json:"local_ppw"`
	FinalAccuracy   float64 `json:"final_accuracy"`
	// MeanStaleness is the run-level mean update staleness; always 0
	// (and omitted) under synchronous aggregation, so legacy outcomes
	// keep their exact JSON bytes.
	MeanStaleness float64 `json:"mean_staleness,omitempty"`
	// ParticipationJain and BatteryMeanFrac summarize the battery
	// subsystem at the end of the run: Jain's fairness index over
	// cumulative per-device participation and the final-round mean
	// state of charge. Always 0 (and omitted) for cells without a
	// battery model, keeping legacy outcomes byte-identical.
	ParticipationJain float64 `json:"participation_jain,omitempty"`
	BatteryMeanFrac   float64 `json:"battery_mean_frac,omitempty"`
	// Trace is the optional per-round payload a tracing runner
	// attaches for the persistent cache's horizon-prefix serving
	// (trace.go). It rides the runner chain only: the cache strips it
	// before outcomes reach the ResultStore, so exported JSON/CSV
	// never carries traces.
	Trace *RunTrace `json:"trace,omitempty"`
}

// Result is one executed cell: the cell, the seed it ran with, and
// either its outcome or the error (or recovered panic) that stopped it.
type Result struct {
	Cell    Cell    `json:"cell"`
	Seed    uint64  `json:"seed"`
	Outcome Outcome `json:"outcome"`
	Err     string  `json:"err,omitempty"`
}

// Runner executes one cell with its derived seed. Implementations must
// be safe for concurrent use: the engine invokes one call per cell from
// many goroutines.
type Runner func(ctx context.Context, cell Cell, seed uint64) (Outcome, error)

// Task is one schedulable unit of a sweep: a cell, its derived seed,
// and its index in the grid's deterministic expansion. The index is
// the result key — executors may complete tasks in any order, on any
// machine, and the output is still keyed by cell identity.
type Task struct {
	Index int    `json:"index"`
	Cell  Cell   `json:"cell"`
	Seed  uint64 `json:"seed"`
}

// Executor is the execution strategy of a sweep: it runs every task
// and delivers each completed Result through emit, keyed by the task's
// Index. Run hands tasks in claim order (Options.Order already
// applied) and serializes emit, which tolerates duplicate deliveries
// of an index (first wins) — so an at-least-once executor, like a
// distributed coordinator re-queuing a lost worker's cells, needs no
// dedup of its own. Execute returns once every task has been emitted,
// or earlier with an error when ctx is canceled or the executor can
// make no further progress; results emitted before the error are kept.
//
// The Runner is the local execution path. LocalExecutor invokes it
// per task; a remote executor may ignore it and execute cells
// elsewhere, as long as the produced results are identical — cell
// outcomes are pure functions of (cell, seed, horizon), so placement
// can never change output.
type Executor interface {
	Execute(ctx context.Context, tasks []Task, run Runner, emit func(index int, r Result)) error
}

// Progress reports one completed cell to an Options.OnProgress
// callback.
type Progress struct {
	// Done counts completed cells (including errored ones); Total is
	// the grid size.
	Done, Total int
	// Result is the cell that just finished.
	Result Result
}

// Options tune a sweep run.
type Options struct {
	// Parallel is the worker-pool size of the default in-process
	// executor; values < 1 select GOMAXPROCS. Ignored when Executor is
	// set (an explicit LocalExecutor carries its own pool size).
	Parallel int
	// Executor, when non-nil, replaces the default in-process pool as
	// the execution strategy (e.g. internal/sweep/dist's
	// RemoteExecutor, which farms cells to worker processes). Nil
	// selects &LocalExecutor{Parallel: Parallel}. The choice of
	// executor never affects output, only where and how fast cells run.
	Executor Executor
	// OnProgress, when set, is invoked after each cell completes. Calls
	// are serialized; completion order is nondeterministic under
	// parallelism (the result *contents* are not).
	OnProgress func(Progress)
	// Order, when non-nil, is the claim order of the expanded cells:
	// workers execute cells[Order[0]], cells[Order[1]], … instead of
	// expansion (FIFO) order. It must be a permutation of
	// [0, grid.Size()); Run rejects anything else. Claim order never
	// affects output — results are keyed by cell identity and every
	// exported view sorts — it only shapes the pool's tail latency
	// (see internal/sweep/schedule).
	Order []int
}

// validOrder reports whether order is a permutation of [0, n).
func validOrder(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return false
		}
		seen[i] = true
	}
	return true
}

// Run expands the grid and executes every cell through the runner on
// the configured executor (the in-process pool by default). It returns
// a store holding the results of all cells that ran (all of them,
// unless ctx was canceled or the executor failed — then the partial
// set — with the executor's error returned alongside).
//
// A panicking cell is isolated: the panic is recovered into that
// cell's Result.Err and the sweep continues. Results are keyed by the
// cell's position in the deterministic expansion, so the store's
// sorted views are identical for any Parallel value — and for any
// Executor.
func Run(ctx context.Context, g Grid, run Runner, opts Options) (*ResultStore, error) {
	cells := g.Cells()
	if opts.Order != nil && !validOrder(opts.Order, len(cells)) {
		return NewStore(), fmt.Errorf("sweep: Order is not a permutation of [0, %d)", len(cells))
	}
	// Tasks in claim order, each carrying its expansion index (the
	// result key) and derived seed, so executors need neither the grid
	// nor the claim permutation.
	tasks := make([]Task, len(cells))
	for i := range tasks {
		j := i
		if opts.Order != nil {
			j = opts.Order[i]
		}
		tasks[i] = Task{Index: j, Cell: cells[j], Seed: g.CellSeed(cells[j])}
	}

	var (
		results  = make([]Result, len(cells))
		executed = make([]bool, len(cells))
		done     int
		mu       sync.Mutex // guards results/executed/done, serializes OnProgress
	)
	emit := func(i int, r Result) {
		mu.Lock()
		defer mu.Unlock()
		if i < 0 || i >= len(results) || executed[i] {
			// Out-of-contract index or a duplicate delivery from an
			// at-least-once executor: first result wins. Duplicates are
			// identical by the determinism guarantee anyway.
			return
		}
		results[i] = r
		executed[i] = true
		done++
		if opts.OnProgress != nil {
			opts.OnProgress(Progress{Done: done, Total: len(cells), Result: r})
		}
	}

	exec := opts.Executor
	if exec == nil {
		exec = &LocalExecutor{Parallel: opts.Parallel}
	}
	err := exec.Execute(ctx, tasks, run, emit)

	store := NewStore()
	mu.Lock()
	for i := range results {
		if executed[i] {
			store.Add(results[i])
		}
	}
	mu.Unlock()
	return store, err
}

// LocalExecutor is the default execution strategy: a pool of
// goroutines claiming tasks in order from a shared counter, each cell
// executed in-process through the runner. It is the extracted form of
// the engine's original hard-wired pool and produces byte-identical
// output to it.
type LocalExecutor struct {
	// Parallel is the pool size; values < 1 select GOMAXPROCS.
	Parallel int
}

// Execute implements Executor.
func (e *LocalExecutor) Execute(ctx context.Context, tasks []Task, run Runner, emit func(int, Result)) error {
	workers := e.Parallel
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(tasks) || ctx.Err() != nil {
					return
				}
				emit(tasks[i].Index, ExecuteTask(ctx, tasks[i], run))
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ExecuteTask runs one task through the runner, converting an error
// return or a panic into the Result's Err field. It is the shared
// per-cell execution step of every executor — the local pool here and
// the worker processes of internal/sweep/dist — so panic isolation
// behaves identically wherever a cell runs.
func ExecuteTask(ctx context.Context, t Task, run Runner) (r Result) {
	r = Result{Cell: t.Cell, Seed: t.Seed}
	defer func() {
		if p := recover(); p != nil {
			r.Outcome = Outcome{}
			r.Err = fmt.Sprintf("panic: %v", p)
		}
	}()
	out, err := run(ctx, t.Cell, t.Seed)
	if err != nil {
		r.Err = err.Error()
		return r
	}
	r.Outcome = out
	return r
}

// Map runs fn over the index range [0, n) on a worker pool of the
// given size (values < 1 select GOMAXPROCS) and returns the results in
// index order, so output is independent of scheduling. It is the
// primitive the per-figure sweeps of internal/experiments submit their
// cells through. A panic in fn aborts the remaining unclaimed work and
// is re-raised on the caller's goroutine once in-flight calls drain.
func Map[T any](parallel, n int, fn func(i int) T) []T {
	return MapOrder(parallel, n, nil, fn)
}

// MapOrder is Map with an explicit claim order: workers execute
// fn(order[0]), fn(order[1]), … while results stay in index order. A
// nil order is FIFO; anything that is not a permutation of [0, n)
// panics (a programmer error, like an out-of-range index). The figure
// runners of internal/experiments use it to start their costliest
// configurations first.
func MapOrder[T any](parallel, n int, order []int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if order != nil && !validOrder(order, n) {
		panic(fmt.Sprintf("sweep: MapOrder order is not a permutation of [0, %d)", n))
	}
	workers := parallel
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	out := make([]T, n)
	var (
		next    int64 = -1
		aborted atomic.Bool
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || aborted.Load() {
					return
				}
				if order != nil {
					i = order[i]
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							aborted.Store(true)
							panicMu.Lock()
							if panicV == nil {
								panicV = p
							}
							panicMu.Unlock()
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	return out
}
