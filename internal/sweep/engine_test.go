package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"autofl/internal/rng"
)

// fakeRunner produces a deterministic outcome from the cell seed alone,
// standing in for a Scenario run.
func fakeRunner(ctx context.Context, c Cell, seed uint64) (Outcome, error) {
	s := rng.New(seed)
	return Outcome{
		Converged:       s.Bool(0.5),
		Rounds:          1 + s.IntN(100),
		TimeToTargetSec: 10 * s.Float64(),
		EnergyToTargetJ: 100 * s.Float64(),
		GlobalPPW:       s.Float64(),
		LocalPPW:        s.Float64(),
		FinalAccuracy:   s.Float64(),
	}, nil
}

// TestRunParallelMatchesSerial is the engine's core guarantee: the
// parallel run of a grid equals a -parallel=1 run cell for cell at the
// same seed, down to identical exported bytes.
func TestRunParallelMatchesSerial(t *testing.T) {
	g := testGrid()
	serial, err := Run(context.Background(), g, fakeRunner, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), g, fakeRunner, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() != g.Size() || parallel.Len() != g.Size() {
		t.Fatalf("lengths: serial %d, parallel %d, want %d", serial.Len(), parallel.Len(), g.Size())
	}
	var bs, bp bytes.Buffer
	if err := serial.WriteJSON(&bs); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&bp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Error("parallel JSON differs from serial JSON at the same grid seed")
	}

	var cs, cp bytes.Buffer
	if err := serial.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteCSV(&cp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cs.Bytes(), cp.Bytes()) {
		t.Error("parallel CSV differs from serial CSV at the same grid seed")
	}
}

func TestRunPanicIsolation(t *testing.T) {
	g := testGrid()
	run := func(ctx context.Context, c Cell, seed uint64) (Outcome, error) {
		if c.Policy == "AutoFL" && c.Replicate == 1 {
			panic("cell exploded")
		}
		return fakeRunner(ctx, c, seed)
	}
	store, err := Run(context.Background(), g, run, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != g.Size() {
		t.Fatalf("panicking cells must still be recorded: got %d of %d", store.Len(), g.Size())
	}
	panicked := 0
	for _, r := range store.Results() {
		if r.Err != "" {
			panicked++
			if r.Err != "panic: cell exploded" {
				t.Errorf("unexpected Err %q", r.Err)
			}
		}
	}
	if panicked != 4 { // 2 data × 2 envs hit the panicking (policy, replicate)
		t.Errorf("panicked cells = %d, want 4", panicked)
	}
}

func TestRunErrorRecorded(t *testing.T) {
	g := Grid{Policies: []string{"nope"}, Seed: 1}
	run := func(ctx context.Context, c Cell, seed uint64) (Outcome, error) {
		return Outcome{}, errors.New("unknown policy")
	}
	store, err := Run(context.Background(), g, run, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs := store.Results()
	if len(rs) != 1 || rs[0].Err != "unknown policy" {
		t.Fatalf("error not recorded: %+v", rs)
	}
}

func TestRunCancellation(t *testing.T) {
	g := testGrid() // 24 cells
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	var mu sync.Mutex
	run := func(ctx context.Context, c Cell, seed uint64) (Outcome, error) {
		mu.Lock()
		ran++
		if ran == 3 {
			cancel()
		}
		mu.Unlock()
		return fakeRunner(ctx, c, seed)
	}
	store, err := Run(ctx, g, run, Options{Parallel: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if store.Len() >= g.Size() {
		t.Errorf("cancellation did not stop the sweep: %d cells ran", store.Len())
	}
	if store.Len() == 0 {
		t.Error("cells completed before cancellation must be kept")
	}
}

func TestRunProgress(t *testing.T) {
	g := testGrid()
	var calls []Progress
	_, err := Run(context.Background(), g, fakeRunner, Options{
		Parallel:   4,
		OnProgress: func(p Progress) { calls = append(calls, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != g.Size() {
		t.Fatalf("progress calls = %d, want %d", len(calls), g.Size())
	}
	for i, p := range calls {
		if p.Total != g.Size() {
			t.Errorf("Total = %d, want %d", p.Total, g.Size())
		}
		if p.Done != i+1 {
			t.Errorf("Done must increase monotonically across callbacks: call %d reported %d", i, p.Done)
		}
	}
}

// recordingExecutor captures the tasks Run hands it and emits
// synthetic results, standing in for a remote execution strategy. It
// delivers every task twice to exercise the engine's at-least-once
// tolerance.
type recordingExecutor struct {
	tasks []Task
}

func (e *recordingExecutor) Execute(ctx context.Context, tasks []Task, run Runner, emit func(int, Result)) error {
	e.tasks = append([]Task(nil), tasks...)
	for _, t := range tasks {
		r := ExecuteTask(ctx, t, run)
		emit(t.Index, r)
		emit(t.Index, r) // duplicate delivery: first must win, second is dropped
	}
	return nil
}

// TestRunUsesCustomExecutor pins the engine inversion: a non-nil
// Options.Executor replaces the in-process pool, receives tasks in
// claim order with expansion indices and derived seeds, and duplicate
// emissions (an at-least-once executor re-delivering) change nothing —
// bytes match the default executor's run, and progress fires once per
// cell.
func TestRunUsesCustomExecutor(t *testing.T) {
	g := testGrid()
	rev := make([]int, g.Size())
	for i := range rev {
		rev[i] = g.Size() - 1 - i
	}
	var progress int
	rec := &recordingExecutor{}
	got, err := Run(context.Background(), g, fakeRunner, Options{
		Executor:   rec,
		Order:      rev,
		OnProgress: func(Progress) { progress++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if progress != g.Size() {
		t.Errorf("progress fired %d times, want %d (duplicate emissions must not count)", progress, g.Size())
	}
	if got.Len() != g.Size() {
		t.Fatalf("stored %d of %d cells", got.Len(), g.Size())
	}

	cells := g.Cells()
	if len(rec.tasks) != len(cells) {
		t.Fatalf("executor saw %d tasks, want %d", len(rec.tasks), len(cells))
	}
	for i, task := range rec.tasks {
		want := cells[rev[i]]
		if task.Cell != want || task.Index != rev[i] || task.Seed != g.CellSeed(want) {
			t.Fatalf("task %d = %+v, want cell %v at index %d", i, task, want, rev[i])
		}
	}

	ref, err := Run(context.Background(), g, fakeRunner, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	var bg, br bytes.Buffer
	if err := got.WriteJSON(&bg); err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteJSON(&br); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bg.Bytes(), br.Bytes()) {
		t.Error("custom-executor JSON differs from the default pool's")
	}
}

// TestRunOrderRejectsNonPermutations pins the Options.Order contract.
func TestRunOrderRejectsNonPermutations(t *testing.T) {
	g := testGrid()
	n := g.Size()
	bad := [][]int{
		make([]int, n-1),         // wrong length
		append(identity(n-1), n), // out of range
		append(identity(n-1), 0), // duplicate
		{-1},
	}
	for i, order := range bad {
		if _, err := Run(context.Background(), g, fakeRunner, Options{Order: order}); err == nil {
			t.Errorf("case %d: invalid order was accepted", i)
		}
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestRunOrderMatchesFIFO executes the grid in reverse claim order and
// checks the exported bytes are unchanged.
func TestRunOrderMatchesFIFO(t *testing.T) {
	g := testGrid()
	rev := make([]int, g.Size())
	for i := range rev {
		rev[i] = g.Size() - 1 - i
	}
	fifo, err := Run(context.Background(), g, fakeRunner, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	rord, err := Run(context.Background(), g, fakeRunner, Options{Parallel: 4, Order: rev})
	if err != nil {
		t.Fatal(err)
	}
	var bf, br bytes.Buffer
	if err := fifo.WriteJSON(&bf); err != nil {
		t.Fatal(err)
	}
	if err := rord.WriteJSON(&br); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bf.Bytes(), br.Bytes()) {
		t.Error("reverse claim order changed exported JSON")
	}
	// Serial + reverse order lets claim order be observed directly.
	var seen []Cell
	var mu sync.Mutex
	obs := func(ctx context.Context, c Cell, seed uint64) (Outcome, error) {
		mu.Lock()
		seen = append(seen, c)
		mu.Unlock()
		return fakeRunner(ctx, c, seed)
	}
	if _, err := Run(context.Background(), g, obs, Options{Parallel: 1, Order: rev}); err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	for i, c := range seen {
		if want := cells[len(cells)-1-i]; c != want {
			t.Fatalf("claim %d = %v, want %v", i, c, want)
		}
	}
}

func TestMapOrderExecutesInOrder(t *testing.T) {
	rev := []int{4, 3, 2, 1, 0}
	var seen []int
	out := MapOrder(1, 5, rev, func(i int) int {
		seen = append(seen, i)
		return i * 10
	})
	for i, v := range out {
		if v != i*10 {
			t.Errorf("out[%d] = %d, want %d", i, v, i*10)
		}
	}
	for i, v := range seen {
		if v != 4-i {
			t.Fatalf("claim order %v did not follow the permutation", seen)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid MapOrder order must panic")
		}
	}()
	MapOrder(1, 3, []int{0, 0, 1}, func(i int) int { return i })
}

func TestMapOrderAndParallelism(t *testing.T) {
	for _, par := range []int{1, 4, 0} {
		got := Map(par, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
	if Map(4, 0, func(i int) int { return i }) != nil {
		t.Error("Map over an empty range must return nil")
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("Map swallowed the panic")
		} else if fmt.Sprint(p) != "boom" {
			t.Fatalf("unexpected panic %v", p)
		}
	}()
	Map(4, 10, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

func TestMapPanicAbortsRemainingWork(t *testing.T) {
	calls := 0
	func() {
		defer func() { recover() }()
		Map(1, 100, func(i int) int {
			calls++
			if i == 3 {
				panic("boom")
			}
			return i
		})
	}()
	if calls != 4 {
		t.Errorf("work after the panic must be abandoned: %d calls, want 4", calls)
	}
}
