package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"autofl/internal/rng"
)

// fakeRunner produces a deterministic outcome from the cell seed alone,
// standing in for a Scenario run.
func fakeRunner(ctx context.Context, c Cell, seed uint64) (Outcome, error) {
	s := rng.New(seed)
	return Outcome{
		Converged:       s.Bool(0.5),
		Rounds:          1 + s.IntN(100),
		TimeToTargetSec: 10 * s.Float64(),
		EnergyToTargetJ: 100 * s.Float64(),
		GlobalPPW:       s.Float64(),
		LocalPPW:        s.Float64(),
		FinalAccuracy:   s.Float64(),
	}, nil
}

// TestRunParallelMatchesSerial is the engine's core guarantee: the
// parallel run of a grid equals a -parallel=1 run cell for cell at the
// same seed, down to identical exported bytes.
func TestRunParallelMatchesSerial(t *testing.T) {
	g := testGrid()
	serial, err := Run(context.Background(), g, fakeRunner, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), g, fakeRunner, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() != g.Size() || parallel.Len() != g.Size() {
		t.Fatalf("lengths: serial %d, parallel %d, want %d", serial.Len(), parallel.Len(), g.Size())
	}
	var bs, bp bytes.Buffer
	if err := serial.WriteJSON(&bs); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&bp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Error("parallel JSON differs from serial JSON at the same grid seed")
	}

	var cs, cp bytes.Buffer
	if err := serial.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteCSV(&cp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cs.Bytes(), cp.Bytes()) {
		t.Error("parallel CSV differs from serial CSV at the same grid seed")
	}
}

func TestRunPanicIsolation(t *testing.T) {
	g := testGrid()
	run := func(ctx context.Context, c Cell, seed uint64) (Outcome, error) {
		if c.Policy == "AutoFL" && c.Replicate == 1 {
			panic("cell exploded")
		}
		return fakeRunner(ctx, c, seed)
	}
	store, err := Run(context.Background(), g, run, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != g.Size() {
		t.Fatalf("panicking cells must still be recorded: got %d of %d", store.Len(), g.Size())
	}
	panicked := 0
	for _, r := range store.Results() {
		if r.Err != "" {
			panicked++
			if r.Err != "panic: cell exploded" {
				t.Errorf("unexpected Err %q", r.Err)
			}
		}
	}
	if panicked != 4 { // 2 data × 2 envs hit the panicking (policy, replicate)
		t.Errorf("panicked cells = %d, want 4", panicked)
	}
}

func TestRunErrorRecorded(t *testing.T) {
	g := Grid{Policies: []string{"nope"}, Seed: 1}
	run := func(ctx context.Context, c Cell, seed uint64) (Outcome, error) {
		return Outcome{}, errors.New("unknown policy")
	}
	store, err := Run(context.Background(), g, run, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs := store.Results()
	if len(rs) != 1 || rs[0].Err != "unknown policy" {
		t.Fatalf("error not recorded: %+v", rs)
	}
}

func TestRunCancellation(t *testing.T) {
	g := testGrid() // 24 cells
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	var mu sync.Mutex
	run := func(ctx context.Context, c Cell, seed uint64) (Outcome, error) {
		mu.Lock()
		ran++
		if ran == 3 {
			cancel()
		}
		mu.Unlock()
		return fakeRunner(ctx, c, seed)
	}
	store, err := Run(ctx, g, run, Options{Parallel: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if store.Len() >= g.Size() {
		t.Errorf("cancellation did not stop the sweep: %d cells ran", store.Len())
	}
	if store.Len() == 0 {
		t.Error("cells completed before cancellation must be kept")
	}
}

func TestRunProgress(t *testing.T) {
	g := testGrid()
	var calls []Progress
	_, err := Run(context.Background(), g, fakeRunner, Options{
		Parallel:   4,
		OnProgress: func(p Progress) { calls = append(calls, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != g.Size() {
		t.Fatalf("progress calls = %d, want %d", len(calls), g.Size())
	}
	for i, p := range calls {
		if p.Total != g.Size() {
			t.Errorf("Total = %d, want %d", p.Total, g.Size())
		}
		if p.Done != i+1 {
			t.Errorf("Done must increase monotonically across callbacks: call %d reported %d", i, p.Done)
		}
	}
}

func TestMapOrderAndParallelism(t *testing.T) {
	for _, par := range []int{1, 4, 0} {
		got := Map(par, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
	if Map(4, 0, func(i int) int { return i }) != nil {
		t.Error("Map over an empty range must return nil")
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("Map swallowed the panic")
		} else if fmt.Sprint(p) != "boom" {
			t.Fatalf("unexpected panic %v", p)
		}
	}()
	Map(4, 10, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

func TestMapPanicAbortsRemainingWork(t *testing.T) {
	calls := 0
	func() {
		defer func() { recover() }()
		Map(1, 100, func(i int) int {
			calls++
			if i == 3 {
				panic("boom")
			}
			return i
		})
	}()
	if calls != 4 {
		t.Errorf("work after the panic must be abandoned: %d calls, want 4", calls)
	}
}
