package sweep_test

// The golden-file determinism suite: a small reference grid's sorted
// JSON is committed under testdata/, and serial, parallel, cold-cache,
// warm-cache (resumed), cost-scheduled, and distributed (loopback
// workers, with and without a mid-grid worker death) runs must all
// reproduce it byte for byte. Any engine, store, cache, scheduler, or
// wire-protocol change that perturbs output — float formatting, sort
// order, seed derivation, cache or JSON round-tripping — fails here
// first. Regenerate deliberately with:
//
//	go test ./internal/sweep/ -run TestGolden -update-golden

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"autofl/internal/rng"
	"autofl/internal/sweep"
	"autofl/internal/sweep/cache"
	"autofl/internal/sweep/dist"
	"autofl/internal/sweep/schedule"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

const goldenPath = "testdata/golden_sweep.json"

// goldenGrid is the committed reference grid: 24 cells across two
// workloads so the cost scheduler has real work to reorder.
func goldenGrid() sweep.Grid {
	return sweep.Grid{
		Workloads:  []string{"CNN-MNIST", "MobileNet-ImageNet"},
		Settings:   []string{"S3"},
		Data:       []string{"iid", "noniid50"},
		Envs:       []string{"field"},
		Policies:   []string{"FedAvg-Random", "AutoFL", "Power"},
		Replicates: 2,
		Seed:       1234,
	}
}

// goldenRunner is a pure function of the derived cell seed, so the
// committed bytes are stable across machines and parallelism.
func goldenRunner(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
	s := rng.New(seed)
	return sweep.Outcome{
		Converged:       s.Bool(0.7),
		Rounds:          1 + s.IntN(500),
		TimeToTargetSec: 1000 * s.Float64(),
		EnergyToTargetJ: 1e6 * s.Float64(),
		GlobalPPW:       s.Float64(),
		LocalPPW:        s.Float64(),
		FinalAccuracy:   s.Float64(),
	}, nil
}

func runJSON(t *testing.T, g sweep.Grid, run sweep.Runner, opts sweep.Options) []byte {
	t.Helper()
	store, err := sweep.Run(context.Background(), g, run, opts)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != g.Size() {
		t.Fatalf("ran %d of %d cells", store.Len(), g.Size())
	}
	var b bytes.Buffer
	if err := store.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestGoldenDeterminism(t *testing.T) {
	g := goldenGrid()
	sig := cache.Signature{GridSeed: g.Seed, Rounds: 100}
	serial := runJSON(t, g, goldenRunner, sweep.Options{Parallel: 1})

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, serial, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update-golden): %v", err)
	}

	check := func(name string, got []byte) {
		if !bytes.Equal(got, golden) {
			t.Errorf("%s run diverged from %s (regenerate only if the change is intended)", name, goldenPath)
		}
	}
	check("serial", serial)
	check("parallel", runJSON(t, g, goldenRunner, sweep.Options{Parallel: 8}))

	order := schedule.Static().OrderCells(g.Cells(), sig.Rounds)
	check("cost-scheduled", runJSON(t, g, goldenRunner, sweep.Options{Parallel: 8, Order: order}))

	dir := t.TempDir()
	cold, err := cache.Open(dir, sig)
	if err != nil {
		t.Fatal(err)
	}
	check("cold-cache", runJSON(t, g, cold.Runner(goldenRunner), sweep.Options{Parallel: 8}))
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := cache.Open(dir, sig)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	noRun := func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		t.Errorf("warm-cache run executed cell %s", c.Key())
		return goldenRunner(ctx, c, seed)
	}
	check("warm-cache", runJSON(t, g, warm.Runner(noRun), sweep.Options{Parallel: 8}))

	// And warm-cache under the cost schedule with cached cells priced
	// at zero — the full resume configuration of cmd/autofl-sweep.
	cells := g.Cells()
	resumeOrder := schedule.Order(len(cells), func(i int) float64 {
		if warm.Has(cells[i]) {
			return 0
		}
		return schedule.Static().Predict(cells[i].Workload, sig.Rounds)
	})
	check("warm-cache-scheduled", runJSON(t, g, warm.Runner(goldenRunner), sweep.Options{Parallel: 8, Order: resumeOrder}))

	// Distributed: a loopback coordinator farming the grid to two
	// in-process workers must reproduce the same bytes, with every
	// cell executed remotely — the local runner is a tripwire.
	noLocal := func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
		t.Errorf("distributed run executed cell %s locally", c.Key())
		return sweep.Outcome{}, errors.New("local execution in distributed mode")
	}
	runners := func(rounds int, traced bool) sweep.Runner { return goldenRunner }
	w1 := startGoldenWorker(t, runners)
	w2 := startGoldenWorker(t, runners)
	re := &dist.RemoteExecutor{Addrs: []string{w1.Addr(), w2.Addr()}, Rounds: sig.Rounds}
	check("distributed", runJSON(t, g, noLocal, sweep.Options{Executor: re}))

	// Distributed with a worker death mid-grid: the dying worker's
	// claimed cells are re-queued to the survivor (at-least-once,
	// idempotent by cell identity) and the output is still identical.
	var w3 *dist.Worker
	var executed int32
	dying := func(rounds int, traced bool) sweep.Runner {
		return func(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
			if atomic.AddInt32(&executed, 1) == 4 {
				go w3.Close()
			}
			return goldenRunner(ctx, c, seed)
		}
	}
	w3 = startGoldenWorker(t, dying)
	reDeath := &dist.RemoteExecutor{Addrs: []string{w1.Addr(), w3.Addr()}, Rounds: sig.Rounds}
	check("distributed-worker-death", runJSON(t, g, noLocal, sweep.Options{Executor: reDeath}))
}

// startGoldenWorker runs a loopback dist.Worker for the distributed
// golden checks.
func startGoldenWorker(t *testing.T, runners dist.RunnerFor) *dist.Worker {
	t.Helper()
	w, err := dist.NewWorker("127.0.0.1:0", 2, runners)
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve()
	t.Cleanup(func() { w.Close() })
	return w
}
