package sweep

import (
	"strings"
	"testing"
)

// TestWriteIdentityLegacyBytesPinned pins the exact identity encoding
// of cells that predate the extension axes. These bytes feed every
// cell seed and cache digest: changing them would silently re-seed
// every historical sweep and orphan every cache entry, so this test
// must never need updating for cells without extension axes.
func TestWriteIdentityLegacyBytesPinned(t *testing.T) {
	var b strings.Builder
	Cell{
		Workload: "CNN-MNIST", Setting: "S3", Data: "iid",
		Env: "field", Policy: "AutoFL", Replicate: 2,
	}.WriteIdentity(&b)
	want := "9:CNN-MNIST|2:S3|3:iid|5:field|6:AutoFL|#2"
	if b.String() != want {
		t.Errorf("legacy identity = %q, want %q", b.String(), want)
	}

	// Extension axes at their defaults contribute no bytes at all.
	var ext strings.Builder
	Cell{
		Workload: "CNN-MNIST", Setting: "S3", Data: "iid",
		Env: "field", Policy: "AutoFL", Replicate: 2,
		Mode: "", Alpha: "", Devices: "", Sample: "",
	}.WriteIdentity(&ext)
	if ext.String() != want {
		t.Errorf("default extension axes changed the identity: %q", ext.String())
	}
}

// TestWriteIdentityExtensionBytes pins the tagged append-only encoding
// of the extension axes.
func TestWriteIdentityExtensionBytes(t *testing.T) {
	var b strings.Builder
	Cell{
		Workload: "w", Setting: "s", Data: "d", Env: "e", Policy: "p",
		Replicate: 0, Mode: "async", Alpha: "0.5",
		Devices: "100000", Sample: "512",
	}.WriteIdentity(&b)
	want := "1:w|1:s|1:d|1:e|1:p|#0|mode=5:async|alpha=3:0.5|devices=6:100000|sample=3:512"
	if b.String() != want {
		t.Errorf("extended identity = %q, want %q", b.String(), want)
	}
}

// TestCellSeedInjectiveAcrossExtensionAxes: extension values must not
// collide with each other, with their absence, or across tag
// boundaries.
func TestCellSeedInjectiveAcrossExtensionAxes(t *testing.T) {
	g := Grid{Seed: 7}
	cells := []Cell{
		{Policy: "p"},
		{Policy: "p", Mode: "async"},
		{Policy: "p", Mode: "async", Alpha: "0.5"},
		{Policy: "p", Alpha: "0.5"},
		{Policy: "p", Mode: "semi-async"},
		{Policy: "p", Devices: "1000"},
		{Policy: "p", Devices: "1000", Sample: "64"},
		{Policy: "p", Sample: "64"},
		// A crafted axis value that embeds the tag syntax must still be
		// distinct from the real tagged field (length prefixes see to it).
		{Policy: "p|mode=5:async"},
	}
	seen := map[uint64]string{}
	for _, c := range cells {
		s := g.CellSeed(c)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %q and %q", prev, c.Key())
		}
		seen[s] = c.Key()
	}
}

// TestGridExtensionExpansion: the new axes multiply into Size and
// expand innermost (before replicates), with empty axes contributing
// the single default value.
func TestGridExtensionExpansion(t *testing.T) {
	g := testGrid()
	g.Modes = []string{"sync", "async"}
	g.Alphas = []string{"0.5"}
	g.Devices = []string{"1000", "2000"}
	want := 1 * 1 * 2 * 2 * 2 * 2 * 1 * 2 * 1 * 3
	if g.Size() != want {
		t.Fatalf("Size = %d, want %d", g.Size(), want)
	}
	cells := g.Cells()
	if len(cells) != want {
		t.Fatalf("len(Cells) = %d, want %d", len(cells), want)
	}
	// Replicates innermost, devices next, then modes outside alphas.
	if cells[0].Devices != "1000" || cells[3].Devices != "2000" {
		t.Errorf("devices not third-innermost: %+v %+v", cells[0], cells[3])
	}
	if cells[0].Mode != "sync" || cells[6].Mode != "async" {
		t.Errorf("modes not outermost of the extension axes: %+v %+v", cells[0], cells[6])
	}
	seen := map[string]bool{}
	for _, c := range cells {
		k := c.Key()
		if seen[k] {
			t.Fatalf("duplicate cell key %q", k)
		}
		seen[k] = true
	}

	// A grid without extension axes expands to extension-free cells.
	for _, c := range testGrid().Cells() {
		if c.Mode != "" || c.Alpha != "" || c.Devices != "" || c.Sample != "" {
			t.Fatalf("legacy grid produced an extended cell: %+v", c)
		}
	}
}

// TestCellOrderingExtensionAxes: the extension axes order after policy
// and before the replicate index.
func TestCellOrderingExtensionAxes(t *testing.T) {
	a := Cell{Policy: "p", Mode: "async", Replicate: 5}
	b := Cell{Policy: "p", Mode: "semi-async", Replicate: 0}
	if !a.less(b) || b.less(a) {
		t.Error("mode must order before replicate")
	}
	c := Cell{Policy: "p", Mode: "async", Alpha: "0.5"}
	d := Cell{Policy: "p", Mode: "async", Alpha: "1"}
	if !c.less(d) || d.less(c) {
		t.Error("alpha must order within a mode")
	}
}

// TestSameGroupSeparatesExtensionAxes: replicate groups never mix
// different aggregation or population configurations.
func TestSameGroupSeparatesExtensionAxes(t *testing.T) {
	base := Cell{Workload: "w", Policy: "p", Replicate: 0}
	rep := base
	rep.Replicate = 1
	if !sameGroup(base, rep) {
		t.Error("replicates of one cell must share a group")
	}
	for _, mut := range []func(*Cell){
		func(c *Cell) { c.Mode = "async" },
		func(c *Cell) { c.Alpha = "0.5" },
		func(c *Cell) { c.Devices = "1000" },
		func(c *Cell) { c.Sample = "64" },
	} {
		other := base
		mut(&other)
		if sameGroup(base, other) {
			t.Errorf("extension axis did not separate groups: %+v vs %+v", base, other)
		}
	}
}
