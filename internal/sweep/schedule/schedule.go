// Package schedule orders sweep cells by predicted execution cost so
// the worker pool drains the long poles first. With a FIFO claim
// order, a grid's slowest cells (MobileNet at the full horizon) can
// land on the last workers and stretch the tail of the run; claiming
// them first keeps the pool busy end to end. Ordering never changes
// output — the engine keys results by cell identity and every exported
// view sorts — so a cost-scheduled run is byte-identical to FIFO.
//
// The cost model is deliberately simple: a cell's cost is its
// workload's per-round weight times the round horizon (replicates are
// separate cells, so replication multiplies cell count, not per-cell
// cost). Static() weights workloads by their training FLOPs per
// sample; Calibrate() replaces those priors with measured
// seconds-per-round from cached wall-clock observations, falling back
// to FLOPs-scaled estimates for workloads never observed.
package schedule

import (
	"sort"

	"autofl/internal/sweep"
	"autofl/internal/workload"
)

// Observation is one measured cell execution: the workload it ran, the
// round horizon it ran to, and the wall-clock it took. The sweep cache
// records one per executed cell.
type Observation struct {
	Workload string
	Rounds   int
	Seconds  float64
}

// Model predicts per-cell execution cost. The zero value predicts a
// uniform cost of zero for every cell; use Static or Calibrate.
type Model struct {
	// secPerRound maps a workload name to its per-round cost. Units are
	// seconds for calibrated models and arbitrary (FLOPs-proportional)
	// for static ones; predictions are comparable within one model only.
	secPerRound map[string]float64
	// fallback prices workloads absent from secPerRound.
	fallback float64
}

// staticWeight is the prior per-round weight of a workload: its
// training FLOPs per sample, normalized so an unknown workload weighs
// 1. Only ratios matter for ordering.
func staticWeight(name string) float64 {
	m := workload.ByName(name)
	if m == nil {
		return 1
	}
	ref := workload.CNNMNIST().TrainFLOPsPerSample()
	return m.TrainFLOPsPerSample() / ref
}

// Static returns the prior model: workloads weighted by training FLOPs
// per sample, relative to CNN-MNIST. An empty or unknown workload name
// (a default-axis cell) weighs 1.
func Static() Model {
	m := Model{secPerRound: map[string]float64{}, fallback: 1}
	for _, w := range workload.All() {
		m.secPerRound[w.Name] = staticWeight(w.Name)
	}
	return m
}

// Calibrate fits a model to measured executions: each observed
// workload's cost is its mean seconds-per-round, and unobserved
// workloads are priced by scaling their static FLOPs weight with the
// mean observed seconds-per-weight (so a calibrated model stays in one
// unit system). With no usable observations it degrades to Static.
func Calibrate(obs []Observation) Model {
	sum := map[string]float64{}
	n := map[string]int{}
	for _, o := range obs {
		if o.Rounds <= 0 || o.Seconds <= 0 {
			continue
		}
		sum[o.Workload] += o.Seconds / float64(o.Rounds)
		n[o.Workload]++
	}
	if len(sum) == 0 {
		return Static()
	}
	m := Model{secPerRound: map[string]float64{}}
	// scale converts static weights to observed seconds-per-round.
	var scaleSum float64
	for w, s := range sum {
		mean := s / float64(n[w])
		m.secPerRound[w] = mean
		scaleSum += mean / staticWeight(w)
	}
	scale := scaleSum / float64(len(sum))
	for _, w := range workload.All() {
		if _, ok := m.secPerRound[w.Name]; !ok {
			m.secPerRound[w.Name] = scale * staticWeight(w.Name)
		}
	}
	m.fallback = scale
	return m
}

// Predict returns the model's cost for one cell of the given workload
// run to the given horizon. Costs are non-negative and comparable
// within one model.
func (m Model) Predict(workloadName string, rounds int) float64 {
	if rounds < 1 {
		rounds = 1
	}
	w, ok := m.secPerRound[workloadName]
	if !ok {
		w = m.fallback
	}
	return w * float64(rounds)
}

// OrderCells returns the execution order for the cells at the given
// horizon: a permutation of [0, len(cells)) sorted by descending
// predicted cost, ties keeping expansion order. Pass it to
// sweep.Options.Order.
func (m Model) OrderCells(cells []sweep.Cell, rounds int) []int {
	return Order(len(cells), func(i int) float64 {
		return m.Predict(cells[i].Workload, rounds)
	})
}

// Order is the generic primitive under OrderCells: a permutation of
// [0, n) sorted by descending cost(i), stable under equal costs (tied
// indices keep their relative order). Callers compose arbitrary cost
// functions — e.g. pricing already-cached cells at zero so real work
// drains first.
func Order(n int, cost func(i int) float64) []int {
	if n <= 0 {
		return nil
	}
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = cost(i)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return costs[order[a]] > costs[order[b]]
	})
	return order
}
