package schedule

import (
	"bytes"
	"context"
	"math"
	"testing"

	"autofl/internal/rng"
	"autofl/internal/sweep"
)

// propertyGrid is a mixed-workload grid whose cells have genuinely
// different predicted costs.
func propertyGrid() sweep.Grid {
	return sweep.Grid{
		Workloads:  []string{"CNN-MNIST", "LSTM-Shakespeare", "MobileNet-ImageNet"},
		Data:       []string{"iid", "noniid50"},
		Policies:   []string{"FedAvg-Random", "AutoFL"},
		Replicates: 2,
		Seed:       9,
	}
}

func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return false
		}
		seen[i] = true
	}
	return true
}

// TestOrderIsPermutation fuzzes Order with random cost functions and
// checks every output is a permutation sorted by descending cost.
func TestOrderIsPermutation(t *testing.T) {
	s := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		n := 1 + s.IntN(64)
		costs := make([]float64, n)
		for i := range costs {
			// Coarse quantization forces plenty of ties.
			costs[i] = float64(s.IntN(5))
		}
		order := Order(n, func(i int) float64 { return costs[i] })
		if !isPermutation(order, n) {
			t.Fatalf("trial %d: order %v is not a permutation of [0, %d)", trial, order, n)
		}
		for i := 1; i < n; i++ {
			a, b := costs[order[i-1]], costs[order[i]]
			if a < b {
				t.Fatalf("trial %d: costs out of order at %d: %v < %v", trial, i, a, b)
			}
			if a == b && order[i-1] > order[i] {
				t.Fatalf("trial %d: tie at %d broke expansion order: %d before %d",
					trial, i, order[i-1], order[i])
			}
		}
	}
}

// TestOrderStableUnderEqualCosts pins the degenerate case: a constant
// cost function must yield the identity (FIFO) order.
func TestOrderStableUnderEqualCosts(t *testing.T) {
	order := Order(40, func(i int) float64 { return 7 })
	for i, v := range order {
		if v != i {
			t.Fatalf("equal costs must keep FIFO order: order[%d] = %d", i, v)
		}
	}
	if Order(0, func(i int) float64 { return 0 }) != nil {
		t.Error("Order of an empty range must be nil")
	}
}

// TestOrderCellsIsPermutation checks the cell-level wrapper on a real
// mixed-workload grid.
func TestOrderCellsIsPermutation(t *testing.T) {
	g := propertyGrid()
	cells := g.Cells()
	order := Static().OrderCells(cells, 100)
	if !isPermutation(order, len(cells)) {
		t.Fatalf("OrderCells is not a permutation of the grid")
	}
	// The heaviest workload must be claimed before the lightest.
	first := cells[order[0]].Workload
	if first != "MobileNet-ImageNet" {
		t.Errorf("first claimed workload = %s, want the heaviest (MobileNet-ImageNet)", first)
	}
	last := cells[order[len(order)-1]].Workload
	if last != "CNN-MNIST" {
		t.Errorf("last claimed workload = %s, want the lightest (CNN-MNIST)", last)
	}
}

// fakeRunner derives a deterministic outcome from the cell seed.
func fakeRunner(ctx context.Context, c sweep.Cell, seed uint64) (sweep.Outcome, error) {
	s := rng.New(seed)
	return sweep.Outcome{
		Rounds:        1 + s.IntN(100),
		GlobalPPW:     s.Float64(),
		FinalAccuracy: s.Float64(),
	}, nil
}

// TestCostOrderMatchesFIFOOutput is the scheduler's safety property:
// claim order never changes exported bytes.
func TestCostOrderMatchesFIFOOutput(t *testing.T) {
	g := propertyGrid()
	fifo, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	order := Static().OrderCells(g.Cells(), 100)
	cost, err := sweep.Run(context.Background(), g, fakeRunner, sweep.Options{Parallel: 4, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	var bf, bc bytes.Buffer
	if err := fifo.WriteJSON(&bf); err != nil {
		t.Fatal(err)
	}
	if err := cost.WriteJSON(&bc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bf.Bytes(), bc.Bytes()) {
		t.Error("cost-ordered JSON differs from FIFO JSON")
	}
}

// TestStaticModelWeights pins the prior: heavier workloads predict
// higher cost, horizon scales linearly, unknown workloads get the
// fallback.
func TestStaticModelWeights(t *testing.T) {
	m := Static()
	cnn := m.Predict("CNN-MNIST", 100)
	mob := m.Predict("MobileNet-ImageNet", 100)
	lstm := m.Predict("LSTM-Shakespeare", 100)
	if cnn <= 0 || mob <= 0 || lstm <= 0 {
		t.Fatalf("non-positive predictions: cnn=%v lstm=%v mob=%v", cnn, lstm, mob)
	}
	if mob <= cnn {
		t.Errorf("MobileNet (%v) must out-cost CNN-MNIST (%v)", mob, cnn)
	}
	if got := m.Predict("CNN-MNIST", 200); math.Abs(got-2*cnn) > 1e-9 {
		t.Errorf("doubling the horizon must double cost: %v vs %v", got, 2*cnn)
	}
	if got := m.Predict("no-such-workload", 100); got != 100 {
		t.Errorf("unknown workload fallback = %v, want 100 (weight 1)", got)
	}
	if got := m.Predict("CNN-MNIST", 0); got != m.Predict("CNN-MNIST", 1) {
		t.Errorf("rounds < 1 must clamp to 1: %v", got)
	}
}

// TestCalibrate checks measured seconds-per-round replace the priors
// and unseen workloads scale from them.
func TestCalibrate(t *testing.T) {
	obs := []Observation{
		{Workload: "CNN-MNIST", Rounds: 100, Seconds: 10},        // 0.1 s/round
		{Workload: "CNN-MNIST", Rounds: 100, Seconds: 30},        // 0.3 s/round
		{Workload: "LSTM-Shakespeare", Rounds: 50, Seconds: 100}, // 2 s/round
		{Workload: "ignored", Rounds: 0, Seconds: 5},
		{Workload: "ignored", Rounds: 10, Seconds: 0},
	}
	m := Calibrate(obs)
	if got := m.Predict("CNN-MNIST", 10); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("calibrated CNN cost = %v, want mean 0.2 s/round × 10 = 2", got)
	}
	if got := m.Predict("LSTM-Shakespeare", 10); math.Abs(got-20.0) > 1e-9 {
		t.Errorf("calibrated LSTM cost = %v, want 20", got)
	}
	// MobileNet was never observed: it must still be priced, and above
	// the observed CNN (its FLOPs weight is far larger).
	mob := m.Predict("MobileNet-ImageNet", 10)
	if mob <= m.Predict("CNN-MNIST", 10) {
		t.Errorf("unseen MobileNet (%v) must out-cost observed CNN", mob)
	}

	// No usable observations degrade to the static prior.
	empty := Calibrate([]Observation{{Workload: "x", Rounds: 0, Seconds: 0}})
	static := Static()
	for _, w := range []string{"CNN-MNIST", "LSTM-Shakespeare", "MobileNet-ImageNet"} {
		if empty.Predict(w, 10) != static.Predict(w, 10) {
			t.Errorf("empty calibration must equal Static for %s", w)
		}
	}
}
