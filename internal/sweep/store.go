package sweep

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"

	"autofl/internal/metrics"
)

// ResultStore collects cell results and aggregates replicate groups
// into mean/stddev summaries. It is safe for concurrent Add calls; the
// read-side views sort, so their output is independent of insertion
// order (and therefore of worker scheduling).
type ResultStore struct {
	mu      sync.Mutex
	results []Result
}

// NewStore returns an empty store.
func NewStore() *ResultStore { return &ResultStore{} }

// Add appends results to the store.
func (s *ResultStore) Add(rs ...Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results = append(s.results, rs...)
}

// Len reports the number of stored results.
func (s *ResultStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}

// Failed reports the number of stored results carrying a per-cell
// error — cells that panicked, errored, or were quarantined by a
// distributed executor's retry budget. A sweep with Failed() > 0
// completed with explicit holes rather than silently thin summaries.
func (s *ResultStore) Failed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, r := range s.results {
		if r.Err != "" {
			n++
		}
	}
	return n
}

// Results returns the stored results sorted by cell (axes, then
// replicate index).
func (s *ResultStore) Results() []Result {
	s.mu.Lock()
	out := append([]Result(nil), s.results...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Cell.less(out[j].Cell) })
	return out
}

// Stats is a mean/standard-deviation pair over a replicate group. The
// deviation is the sample standard deviation (n-1 denominator); it is
// zero for groups of one.
type Stats struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
}

// statsOf computes Stats over xs.
func statsOf(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	m := metrics.Mean(xs)
	if len(xs) == 1 {
		return Stats{Mean: m}
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return Stats{Mean: m, Stddev: math.Sqrt(ss / float64(len(xs)-1))}
}

// Summary aggregates one replicate group (a cell minus its replicate
// index): per-metric mean/stddev over the group's non-errored runs.
type Summary struct {
	Workload string `json:"workload"`
	Setting  string `json:"setting"`
	Data     string `json:"data"`
	Env      string `json:"env"`
	Policy   string `json:"policy"`
	// The extension axes mirror Cell's: empty for groups at the
	// default (synchronous, explicit-fleet) configuration, so legacy
	// grids summarize to byte-identical JSON.
	Mode      string `json:"mode,omitempty"`
	Alpha     string `json:"alpha,omitempty"`
	Devices   string `json:"devices,omitempty"`
	Sample    string `json:"sample,omitempty"`
	Battery   string `json:"battery,omitempty"`
	Selection string `json:"selection,omitempty"`
	// Replicates counts the group's successful runs; Errors the
	// failed (or panicked) ones.
	Replicates int `json:"replicates"`
	Errors     int `json:"errors,omitempty"`
	// ConvergedFrac is the fraction of successful runs that reached
	// the accuracy target.
	ConvergedFrac   float64 `json:"converged_frac"`
	Rounds          Stats   `json:"rounds"`
	TimeToTargetSec Stats   `json:"time_to_target_sec"`
	EnergyToTargetJ Stats   `json:"energy_to_target_j"`
	GlobalPPW       Stats   `json:"global_ppw"`
	LocalPPW        Stats   `json:"local_ppw"`
	FinalAccuracy   Stats   `json:"final_accuracy"`
	// MeanStaleness aggregates the runs' mean update staleness. It is
	// emitted only for groups on an explicit aggregation mode (a
	// pointer because struct omitempty never fires), keeping legacy
	// output byte-identical.
	MeanStaleness *Stats `json:"mean_staleness,omitempty"`
	// ParticipationJain and BatteryMeanFrac aggregate the battery
	// subsystem's fairness index and final mean state of charge,
	// emitted only for groups on an explicit battery preset — same
	// pointer convention as MeanStaleness.
	ParticipationJain *Stats `json:"participation_jain,omitempty"`
	BatteryMeanFrac   *Stats `json:"battery_mean_frac,omitempty"`
}

// Summaries aggregates the store's results by replicate group, sorted
// by cell axes.
func (s *ResultStore) Summaries() []Summary {
	results := s.Results()
	var out []Summary
	for i := 0; i < len(results); {
		j := i
		for j < len(results) && sameGroup(results[j].Cell, results[i].Cell) {
			j++
		}
		out = append(out, summarize(results[i:j]))
		i = j
	}
	return out
}

// summarize folds one sorted replicate group into a Summary.
func summarize(group []Result) Summary {
	c := group[0].Cell
	sum := Summary{
		Workload: c.Workload, Setting: c.Setting, Data: c.Data,
		Env: c.Env, Policy: c.Policy,
		Mode: c.Mode, Alpha: c.Alpha, Devices: c.Devices, Sample: c.Sample,
		Battery: c.Battery, Selection: c.Selection,
	}
	var rounds, timeTo, energy, gppw, lppw, acc, stale, jain, batt []float64
	converged := 0
	for _, r := range group {
		if r.Err != "" {
			sum.Errors++
			continue
		}
		sum.Replicates++
		if r.Outcome.Converged {
			converged++
		}
		rounds = append(rounds, float64(r.Outcome.Rounds))
		timeTo = append(timeTo, r.Outcome.TimeToTargetSec)
		energy = append(energy, r.Outcome.EnergyToTargetJ)
		gppw = append(gppw, r.Outcome.GlobalPPW)
		lppw = append(lppw, r.Outcome.LocalPPW)
		acc = append(acc, r.Outcome.FinalAccuracy)
		stale = append(stale, r.Outcome.MeanStaleness)
		jain = append(jain, r.Outcome.ParticipationJain)
		batt = append(batt, r.Outcome.BatteryMeanFrac)
	}
	if sum.Replicates > 0 {
		sum.ConvergedFrac = float64(converged) / float64(sum.Replicates)
	}
	sum.Rounds = statsOf(rounds)
	sum.TimeToTargetSec = statsOf(timeTo)
	sum.EnergyToTargetJ = statsOf(energy)
	sum.GlobalPPW = statsOf(gppw)
	sum.LocalPPW = statsOf(lppw)
	sum.FinalAccuracy = statsOf(acc)
	if c.Mode != "" {
		st := statsOf(stale)
		sum.MeanStaleness = &st
	}
	if c.Battery != "" {
		j, b := statsOf(jain), statsOf(batt)
		sum.ParticipationJain = &j
		sum.BatteryMeanFrac = &b
	}
	return sum
}

// export is the JSON document WriteJSON emits.
type export struct {
	Results   []Result  `json:"results"`
	Summaries []Summary `json:"summaries"`
}

// WriteJSON writes the sorted results and their summaries as indented
// JSON. The bytes are a pure function of the stored results: two
// sweeps of the same grid and seed produce identical output whatever
// their parallelism.
func (s *ResultStore) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(export{Results: s.Results(), Summaries: s.Summaries()})
}

// csvHeader names the base WriteCSV columns. Summaries on an
// extension axis add csvHeaderExt; grids that never touch those axes
// emit the legacy header and rows byte-identically.
var csvHeader = []string{
	"workload", "setting", "data", "env", "policy",
	"replicates", "errors", "converged_frac",
	"rounds_mean", "rounds_stddev",
	"time_to_target_sec_mean", "time_to_target_sec_stddev",
	"energy_to_target_j_mean", "energy_to_target_j_stddev",
	"global_ppw_mean", "global_ppw_stddev",
	"local_ppw_mean", "local_ppw_stddev",
	"final_accuracy_mean", "final_accuracy_stddev",
}

// csvHeaderExt names the extension columns appended when any summary
// group sits on a non-default aggregation or population axis.
var csvHeaderExt = []string{
	"mode", "alpha", "devices", "sample",
	"mean_staleness_mean", "mean_staleness_stddev",
}

// csvHeaderBattery names the battery columns appended — after the
// aggregation/population group — when any summary sits on a battery or
// selection axis. A separate group so sweeps that never touch the
// battery axes (including pre-battery extended sweeps) keep their
// exact CSV bytes.
var csvHeaderBattery = []string{
	"battery", "selection",
	"participation_jain_mean", "participation_jain_stddev",
	"battery_mean_frac_mean", "battery_mean_frac_stddev",
}

// extended reports whether the summary uses any aggregation or
// population extension axis.
func (s Summary) extended() bool {
	return s.Mode != "" || s.Alpha != "" || s.Devices != "" || s.Sample != ""
}

// batteryExtended reports whether the summary uses a battery axis.
func (s Summary) batteryExtended() bool {
	return s.Battery != "" || s.Selection != ""
}

// WriteCSV writes one row per replicate-group summary.
func (s *ResultStore) WriteCSV(w io.Writer) error {
	sums := s.Summaries()
	ext, battExt := false, false
	for _, sum := range sums {
		ext = ext || sum.extended()
		battExt = battExt || sum.batteryExtended()
	}
	header := csvHeader
	if ext || battExt {
		header = append([]string(nil), csvHeader...)
	}
	if ext {
		header = append(header, csvHeaderExt...)
	}
	if battExt {
		header = append(header, csvHeaderBattery...)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, sum := range sums {
		row := []string{
			sum.Workload, sum.Setting, sum.Data, sum.Env, sum.Policy,
			strconv.Itoa(sum.Replicates), strconv.Itoa(sum.Errors), f(sum.ConvergedFrac),
			f(sum.Rounds.Mean), f(sum.Rounds.Stddev),
			f(sum.TimeToTargetSec.Mean), f(sum.TimeToTargetSec.Stddev),
			f(sum.EnergyToTargetJ.Mean), f(sum.EnergyToTargetJ.Stddev),
			f(sum.GlobalPPW.Mean), f(sum.GlobalPPW.Stddev),
			f(sum.LocalPPW.Mean), f(sum.LocalPPW.Stddev),
			f(sum.FinalAccuracy.Mean), f(sum.FinalAccuracy.Stddev),
		}
		if ext {
			stMean, stStd := "", ""
			if sum.MeanStaleness != nil {
				stMean, stStd = f(sum.MeanStaleness.Mean), f(sum.MeanStaleness.Stddev)
			}
			row = append(row, sum.Mode, sum.Alpha, sum.Devices, sum.Sample, stMean, stStd)
		}
		if battExt {
			jMean, jStd, bMean, bStd := "", "", "", ""
			if sum.ParticipationJain != nil {
				jMean, jStd = f(sum.ParticipationJain.Mean), f(sum.ParticipationJain.Stddev)
			}
			if sum.BatteryMeanFrac != nil {
				bMean, bStd = f(sum.BatteryMeanFrac.Mean), f(sum.BatteryMeanFrac.Stddev)
			}
			row = append(row, sum.Battery, sum.Selection, jMean, jStd, bMean, bStd)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
