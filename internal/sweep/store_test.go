package sweep

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"testing"
)

func cellR(policy string, rep int) Cell {
	return Cell{Workload: "w", Setting: "s", Data: "d", Env: "e", Policy: policy, Replicate: rep}
}

func TestSummariesMeanStddev(t *testing.T) {
	s := NewStore()
	// Three replicates with GlobalPPW 1, 2, 3 → mean 2, sample stddev 1.
	for i, ppw := range []float64{1, 2, 3} {
		s.Add(Result{Cell: cellR("A", i), Outcome: Outcome{
			GlobalPPW: ppw, Rounds: 10 * (i + 1), Converged: i > 0,
		}})
	}
	sums := s.Summaries()
	if len(sums) != 1 {
		t.Fatalf("summaries = %d, want 1", len(sums))
	}
	sum := sums[0]
	if sum.Replicates != 3 || sum.Errors != 0 {
		t.Errorf("replicates/errors = %d/%d, want 3/0", sum.Replicates, sum.Errors)
	}
	if sum.GlobalPPW.Mean != 2 {
		t.Errorf("GlobalPPW mean = %g, want 2", sum.GlobalPPW.Mean)
	}
	if math.Abs(sum.GlobalPPW.Stddev-1) > 1e-12 {
		t.Errorf("GlobalPPW stddev = %g, want 1", sum.GlobalPPW.Stddev)
	}
	if sum.Rounds.Mean != 20 {
		t.Errorf("Rounds mean = %g, want 20", sum.Rounds.Mean)
	}
	if math.Abs(sum.ConvergedFrac-2.0/3.0) > 1e-12 {
		t.Errorf("ConvergedFrac = %g, want 2/3", sum.ConvergedFrac)
	}
}

func TestSummariesSingleReplicateZeroStddev(t *testing.T) {
	s := NewStore()
	s.Add(Result{Cell: cellR("A", 0), Outcome: Outcome{GlobalPPW: 1.5}})
	sum := s.Summaries()[0]
	if sum.GlobalPPW.Stddev != 0 {
		t.Errorf("single replicate stddev = %g, want 0", sum.GlobalPPW.Stddev)
	}
}

func TestSummariesSkipErroredRuns(t *testing.T) {
	s := NewStore()
	s.Add(
		Result{Cell: cellR("A", 0), Outcome: Outcome{GlobalPPW: 4}},
		Result{Cell: cellR("A", 1), Err: "panic: boom"},
	)
	sum := s.Summaries()[0]
	if sum.Replicates != 1 || sum.Errors != 1 {
		t.Fatalf("replicates/errors = %d/%d, want 1/1", sum.Replicates, sum.Errors)
	}
	if sum.GlobalPPW.Mean != 4 {
		t.Errorf("errored run leaked into the mean: %g", sum.GlobalPPW.Mean)
	}
}

func TestResultsSortedRegardlessOfAddOrder(t *testing.T) {
	a := NewStore()
	b := NewStore()
	rs := []Result{
		{Cell: cellR("B", 1)}, {Cell: cellR("A", 10)},
		{Cell: cellR("A", 2)}, {Cell: cellR("B", 0)},
	}
	for _, r := range rs {
		a.Add(r)
	}
	for i := len(rs) - 1; i >= 0; i-- {
		b.Add(rs[i])
	}
	var ja, jb bytes.Buffer
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Error("JSON depends on insertion order")
	}
	got := a.Results()
	if got[0].Cell != cellR("A", 2) || got[1].Cell != cellR("A", 10) ||
		got[2].Cell != cellR("B", 0) || got[3].Cell != cellR("B", 1) {
		t.Errorf("bad sort order: %+v", got)
	}
}

func TestWriteJSONShape(t *testing.T) {
	s := NewStore()
	s.Add(Result{Cell: cellR("A", 0), Seed: 7, Outcome: Outcome{Rounds: 5}})
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results   []Result  `json:"results"`
		Summaries []Summary `json:"summaries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.Results) != 1 || len(doc.Summaries) != 1 {
		t.Fatalf("results/summaries = %d/%d, want 1/1", len(doc.Results), len(doc.Summaries))
	}
	if doc.Results[0].Seed != 7 || doc.Results[0].Outcome.Rounds != 5 {
		t.Errorf("round-trip mismatch: %+v", doc.Results[0])
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewStore()
	s.Add(
		Result{Cell: cellR("A", 0), Outcome: Outcome{GlobalPPW: 1}},
		Result{Cell: cellR("A", 1), Outcome: Outcome{GlobalPPW: 3}},
		Result{Cell: cellR("B", 0), Outcome: Outcome{GlobalPPW: 2}},
	)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 groups
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if len(rows[0]) != len(csvHeader) {
		t.Fatalf("header width = %d, want %d", len(rows[0]), len(csvHeader))
	}
	if rows[1][4] != "A" || rows[2][4] != "B" {
		t.Errorf("groups out of order: %v / %v", rows[1], rows[2])
	}
	if rows[1][14] != "2" { // global_ppw_mean of group A
		t.Errorf("global_ppw_mean = %q, want 2", rows[1][14])
	}
}
