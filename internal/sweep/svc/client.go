package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// APIError is a non-2xx response from the daemon, carrying its status
// code and the server's error message.
type APIError struct {
	Code    int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("svc: server returned %d: %s", e.Code, e.Message)
}

// Client talks to a sweep daemon's v1 API — the cmd/autofl-sweep
// client mode, usable by any Go caller.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7170".
	BaseURL string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// WaitRetries bounds the consecutive transient failures —
	// connection refused, 502/503/504 — Wait rides out with jittered
	// backoff before giving up (default 8, about 30 seconds: a daemon
	// restarting under a process supervisor comes back well inside
	// that). Negative disables retries.
	WaitRetries int
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request; a JSON body in, an optional JSON decode out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.BaseURL, "/")+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeAPIError turns an error response into an *APIError.
func decodeAPIError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e apiError
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return &APIError{Code: resp.StatusCode, Message: e.Error}
	}
	return &APIError{Code: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
}

// Submit posts a sweep spec and returns its queued status.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/sweeps", spec, &st)
	return st, err
}

// Status fetches one job's live status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st)
	return st, err
}

// Jobs lists the daemon's jobs in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/sweeps", nil, &out)
	return out, err
}

// Result fetches a finished job's result bytes — exactly the engine's
// WriteJSON (format "json" or "") or WriteCSV (format "csv") output.
func (c *Client) Result(ctx context.Context, id, format string) ([]byte, error) {
	path := "/v1/sweeps/" + id + "/result"
	if format != "" {
		path += "?format=" + format
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(c.BaseURL, "/")+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/sweeps/"+id, nil, &st)
	return st, err
}

// Workers lists the daemon's registered workers.
func (c *Client) Workers(ctx context.Context) ([]WorkerInfo, error) {
	var out []WorkerInfo
	err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &out)
	return out, err
}

// Wait polls a job until it reaches a terminal state (or ctx is
// done), invoking onUpdate — when non-nil — with each status snapshot
// whose Done count advanced (and with the terminal one).
//
// Transient failures — a refused connection, a 502/503/504 — are
// ridden out with jittered exponential backoff for up to WaitRetries
// consecutive attempts, so a client survives a daemon restart: the
// daemon's journal resumes the job under the same ID, and the next
// successful poll picks up where the last one left off. Anything else
// (404, a decode error) fails immediately.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration, onUpdate func(JobStatus)) (JobStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	retries := c.WaitRetries
	if retries == 0 {
		retries = 8
	}
	lastDone := -1
	failures := 0
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				return JobStatus{}, ctx.Err()
			}
			if failures++; failures > retries || !transientWaitErr(err) {
				return JobStatus{}, err
			}
			// Jittered exponential backoff, capped at 5s: a restarting
			// daemon's clients must not stampede it the instant the
			// port reopens.
			delay := min(poll<<min(failures-1, 8), 5*time.Second)
			delay += time.Duration(rand.Int64N(int64(delay)/2 + 1))
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return JobStatus{}, ctx.Err()
			}
			continue
		}
		failures = 0
		if onUpdate != nil && (st.Done != lastDone || Terminal(st.State)) {
			lastDone = st.Done
			onUpdate(st)
		}
		if Terminal(st.State) {
			return st, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// transientWaitErr classifies a Status failure as worth retrying:
// transport-level errors (the daemon is down or restarting — every
// *url.Error, refused connections included) and gateway-flavored
// status codes. A 404 is NOT transient even across a restart: the
// journal resumes known jobs under their original IDs, so an unknown
// ID is genuinely unknown.
func transientWaitErr(err error) bool {
	var ue *url.Error
	if errors.As(err, &ue) {
		return true
	}
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Code {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
	}
	return false
}
