package svc

// Failure-hardening suite for the control plane: crash recovery
// through the job journal, worker flap cooldowns, registration under
// injected faults, client retry behavior across daemon restarts, and
// the fault counters on /v1/metrics.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"autofl/internal/flnet/chaos"
	"autofl/internal/sweep"
	"autofl/internal/sweep/dist"
)

// copyTree snapshots a directory — the filesystem state a kill -9
// would leave behind, taken while the source daemon is still running.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, raw, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// checkGoroutines polls the goroutine count back to baseline after a
// fault-injection scenario tears down.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestJournalCrashRecovery is the kill -9 acceptance criterion: a
// daemon dies mid-grid, and a fresh daemon over the same state resumes
// the job under its original ID, re-executes only the cells the cache
// never committed, and produces bytes identical to an uninterrupted
// run.
func TestJournalCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	defer close(gate)
	// Workloads is the outermost cell axis: the "CNN-MNIST" half of the
	// grid completes (and commits to the cache) before every pool slot
	// blocks on a gated "slow" cell — a reproducible mid-grid freeze
	// point to crash at.
	g := sweep.Grid{
		Workloads:  []string{"CNN-MNIST", "slow"},
		Settings:   []string{"S3"},
		Data:       []string{"iid"},
		Policies:   []string{"FedAvg-Random", "AutoFL", "Power"},
		Replicates: 2,
		Seed:       91,
	}
	fast := g.Size() / 2

	_, client1 := startDaemon(t, Config{Runners: gatedRunners(gate), CacheDir: dir, LocalParallel: 2})
	st, err := client1.Submit(context.Background(), JobSpec{Grid: g, Rounds: 100, Name: "crashy"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := client1.Status(context.Background(), st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Done >= fast {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached the freeze point (done %d, want %d)", cur.Done, fast)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// "kill -9": snapshot the cache dir (journal included) while the
	// first daemon still holds the job, then bring a second daemon up
	// on the snapshot. The journal has accepted+started and no terminal
	// record, so the job must resume.
	snapshot := t.TempDir()
	copyTree(t, dir, snapshot)

	s2, client2 := startDaemon(t, Config{Runners: fakeRunners, CacheDir: snapshot, LocalParallel: 2})
	if n := s2.ResumedJobs(); n != 1 {
		t.Fatalf("ResumedJobs() = %d, want 1", n)
	}
	jobs := s2.Jobs()
	if len(jobs) != 1 || jobs[0].ID != st.ID || jobs[0].Name != "crashy" {
		t.Fatalf("resumed jobs = %+v, want the original %s", jobs, st.ID)
	}
	final := waitJob(t, client2, st.ID)
	if final.State != StateDone || final.Done != g.Size() {
		t.Fatalf("resumed job = %+v", final)
	}
	if final.CacheHits != fast {
		t.Errorf("resumed job cache hits = %d, want the %d committed cells", final.CacheHits, fast)
	}
	got, err := client2.Result(context.Background(), st.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialJSON(t, g)) {
		t.Error("resumed job result differs from an uninterrupted serial run")
	}

	resp, err := client2.http().Get(client2.BaseURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "autofl_sweepd_journal_resumed_total 1") {
		t.Errorf("metrics missing journal resume counter:\n%s", raw)
	}
}

// TestJournalReplayAndCompaction pins the journal file format: replay
// keeps accepted-but-not-terminal jobs in order, tolerates the torn
// tail a crash leaves, and compaction rewrites the file down to the
// pending set.
func TestJournalReplayAndCompaction(t *testing.T) {
	if jl, pending, err := openJournal(""); jl != nil || pending != nil || err != nil {
		t.Fatalf("no-dir journal = %v %v %v, want all nil", jl, pending, err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	doneSpec := JobSpec{Grid: testGrid(5), Rounds: 100, Name: "finished"}
	pendingSpec := JobSpec{Grid: testGrid(6), Rounds: 100, Name: "survivor"}
	var buf bytes.Buffer
	for _, rec := range []journalRecord{
		{Op: "accepted", ID: "job-000001", Spec: &doneSpec},
		{Op: "started", ID: "job-000001"},
		{Op: "accepted", ID: "job-000002", Spec: &pendingSpec},
		{Op: "started", ID: "job-000002"},
		{Op: "terminal", ID: "job-000001", State: StateDone},
	} {
		raw, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(raw)
		buf.WriteByte('\n')
	}
	buf.WriteString(`{"op":"accepted","id":"job-9`) // torn tail
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	jl, pending, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ID != "job-000002" || pending[0].Spec.Name != "survivor" {
		t.Fatalf("pending = %+v, want just job-000002", pending)
	}
	compacted, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(bytes.TrimSpace(compacted), []byte("\n")) + 1; lines != 1 {
		t.Errorf("compacted journal has %d lines, want 1:\n%s", lines, compacted)
	}
	if !bytes.Contains(compacted, []byte("job-000002")) || bytes.Contains(compacted, []byte("job-000001")) {
		t.Errorf("compacted journal keeps the wrong jobs:\n%s", compacted)
	}

	jl.terminal("job-000002", StateDone)
	jl.Close()
	jl2, pending2, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if len(pending2) != 0 {
		t.Errorf("pending after terminal = %+v, want none", pending2)
	}
}

// TestFlappingWorkerCooldown exercises the registry's health scoring:
// a worker that keeps dying abnormally is benched into a cooldown
// before it can be leased again, the bench lapses on its own, and a
// completed lease clears the record.
func TestFlappingWorkerCooldown(t *testing.T) {
	reg := NewRegistry()
	reg.FlapThreshold = 2
	reg.CooldownBase = 300 * time.Millisecond
	reg.CooldownMax = time.Second
	if _, err := reg.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })

	// Two consecutive abnormal deaths of the same named identity.
	for i := 0; i < 2; i++ {
		w, err := dist.NewDialWorker("flappy", 1, fakeRunners)
		if err != nil {
			t.Fatal(err)
		}
		go w.Register(context.Background(), reg.Addr(), dist.RegisterOptions{MinBackoff: 5 * time.Millisecond})
		waitWorkers(t, reg, 1)
		w.Close()
		deadline := time.Now().Add(10 * time.Second)
		for reg.Len() > 0 {
			if time.Now().After(deadline) {
				t.Fatal("dead worker never dropped")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if n := reg.Evictions(); n != 2 {
		t.Errorf("Evictions() = %d, want 2 (exactly one flap per death)", n)
	}

	// The third connection registers benched: visible, not leasable.
	w := registerWorker(t, reg, "flappy", fakeRunners)
	waitWorkers(t, reg, 1)
	ws := reg.Workers()
	if len(ws) != 1 || ws[0].State != "cooldown" || ws[0].Flaps != 2 {
		t.Fatalf("flapping worker = %+v, want state=cooldown flaps=2", ws)
	}

	// The cooldown lapses on its own; Acquire then leases it, and the
	// completed lease (Release) clears the flap record.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	l, err := reg.Acquire(ctx)
	if err != nil {
		t.Fatalf("benched worker never promoted: %v", err)
	}
	if l.Name() != "flappy" {
		t.Errorf("acquired %q, want the benched worker", l.Name())
	}
	reg.Release(l)
	if ws := reg.Workers(); len(ws) != 1 || ws[0].State != "idle" || ws[0].Flaps != 0 {
		t.Errorf("post-release worker = %+v, want state=idle flaps=0", ws)
	}
	_ = w
}

// TestRegistrySurvivesBlackholedRegistration injects the
// partition-during-registration fault: the first registration
// connection blackholes mid-handshake. The handshake deadline must
// reap it (no stuck accept goroutine), and the worker's re-dial must
// land cleanly.
func TestRegistrySurvivesBlackholedRegistration(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Links = dist.LinkOptions{HandshakeTimeout: 50 * time.Millisecond}
	if err := reg.ListenOn(chaos.NewListener(ln, chaos.Script{{Blackhole: true}})); err != nil {
		t.Fatal(err)
	}

	w := registerWorker(t, reg, "patient", fakeRunners)
	waitWorkers(t, reg, 1) // the second dial, after the blackholed one is reaped

	w.Close()
	reg.Close()
	checkGoroutines(t, baseline)
}

// TestSweepSurvivesChaoticWorkerChurn is the seeded chaos soak: every
// registration connection draws its fault from a fixed seed (drops
// after a few frames read or written, in both directions), workers
// re-dial through the churn, and the finished job is byte-identical to
// a clean serial run. The generous retry budget keeps quarantine out
// of the picture — this test pins completion under churn, not
// containment.
func TestSweepSurvivesChaoticWorkerChurn(t *testing.T) {
	g := testGrid(97, "iid", "noniid50")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.ListenOn(chaos.NewListener(ln, chaos.Seeded(7, 0.5,
		chaos.Plan{DropAfterWrites: 4},
		chaos.Plan{DropAfterReads: 6},
	))); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	registerWorker(t, reg, "c1", fakeRunners)
	registerWorker(t, reg, "c2", fakeRunners)
	waitWorkers(t, reg, 1)

	_, client := startDaemon(t, Config{
		Runners: fakeRunners, Registry: reg, CacheDir: t.TempDir(),
		RetryBudget: 1000,
	})
	st, err := client.Submit(context.Background(), JobSpec{Grid: g, Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, client, st.ID)
	if final.State != StateDone || final.Done != g.Size() {
		t.Fatalf("job under churn = %+v", final)
	}
	if final.FailedCells != 0 || final.Quarantined != 0 {
		t.Errorf("churn must not quarantine with a deep budget: %+v", final)
	}
	got, err := client.Result(context.Background(), st.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialJSON(t, g)) {
		t.Error("result under churn differs from clean serial run")
	}
	t.Logf("churn survived: requeues=%d evictions=%d", final.Requeues, reg.Evictions())
}

// TestClientWaitRidesOutTransientErrors pins the client side of a
// daemon restart: consecutive 503s back off and retry up to the
// budget, a recovered daemon resumes the poll, and an exhausted budget
// surfaces the error.
func TestClientWaitRidesOutTransientErrors(t *testing.T) {
	s, err := New(Config{Runners: fakeRunners})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	inner := s.Handler()
	var fails atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/sweeps/") && fails.Add(-1) >= 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"restarting"}`))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	client := &Client{BaseURL: srv.URL, HTTP: srv.Client()}
	st, err := client.Submit(context.Background(), JobSpec{Grid: testGrid(31), Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}

	fails.Store(3) // three consecutive 503s, then recovery
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := client.Wait(ctx, st.ID, 2*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("Wait must ride out transient 503s: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("final = %+v", final)
	}

	// An outage longer than the budget surfaces the 503.
	fails.Store(1 << 30)
	bounded := &Client{BaseURL: srv.URL, HTTP: srv.Client(), WaitRetries: 2}
	_, err = bounded.Wait(ctx, st.ID, time.Millisecond, nil)
	apiErr := new(APIError)
	if !errors.As(err, &apiErr) || apiErr.Code != 503 {
		t.Fatalf("exhausted retry budget = %v, want the 503", err)
	}
}

// TestTransientWaitErrClassification pins which failures Wait retries.
func TestTransientWaitErrClassification(t *testing.T) {
	if !transientWaitErr(&url.Error{Op: "Get", URL: "http://127.0.0.1:1", Err: errors.New("connection refused")}) {
		t.Error("transport errors must be transient")
	}
	for _, code := range []int{502, 503, 504} {
		if !transientWaitErr(&APIError{Code: code}) {
			t.Errorf("%d must be transient", code)
		}
	}
	if transientWaitErr(&APIError{Code: 404}) {
		t.Error("404 must not be transient: the journal preserves job IDs across restarts")
	}
	if transientWaitErr(errors.New("decode failure")) {
		t.Error("arbitrary errors must not be transient")
	}
}

// TestMetricsExposeFaultCounters asserts the hardening counters are on
// /v1/metrics from the first scrape.
func TestMetricsExposeFaultCounters(t *testing.T) {
	_, client := startDaemon(t, Config{Runners: fakeRunners})
	resp, err := client.http().Get(client.BaseURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, line := range []string{
		"autofl_sweepd_requeues_total 0",
		"autofl_sweepd_quarantined_total 0",
		"autofl_sweepd_failed_cells_total 0",
		"autofl_sweepd_journal_resumed_total 0",
		"autofl_sweepd_evictions_total 0",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics missing %q:\n%s", line, body)
		}
	}
}
