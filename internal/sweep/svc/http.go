package svc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// maxSpecBytes bounds a submitted spec body (a grid declaration is
// tiny; the bound exists so a hostile body cannot balloon memory).
const maxSpecBytes = 1 << 20

// Handler exposes the service's v1 HTTP+JSON API:
//
//	POST   /v1/sweeps             submit a JobSpec          → 202 JobStatus
//	GET    /v1/sweeps             list jobs                 → 200 [JobStatus]
//	GET    /v1/sweeps/{id}        status + live progress    → 200 JobStatus
//	GET    /v1/sweeps/{id}/result finished results          → 200 JSON (?format=csv for CSV)
//	DELETE /v1/sweeps/{id}        cancel queued/running     → 200 JobStatus
//	GET    /v1/workers            registered workers        → 200 [WorkerInfo]
//	GET    /v1/healthz            liveness + drain state    → 200/503
//	GET    /v1/metrics            plain-text counters       → 200
//
// Errors are {"error": "..."} JSON with the obvious codes: 400 bad
// spec, 404 unknown job, 409 result not ready, 429 queue full, 503
// draining. Result bytes are exactly the engine's WriteJSON/WriteCSV
// output — byte-identical to a serial local run of the same grid.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/workers", s.handleWorkers)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return mux
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is the error envelope.
type apiError struct {
	Error string `json:"error"`
}

// writeErr maps a service error to its status code and envelope.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownJob):
		code = http.StatusNotFound
	case errors.Is(err, ErrNotFinished):
		code = http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad spec: %v", err)})
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	store, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		store.WriteJSON(w)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		store.WriteCSV(w)
	default:
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("unknown format %q (json or csv)", format)})
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeErr(w, err)
		return
	}
	st, err := s.Status(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleWorkers(w http.ResponseWriter, r *http.Request) {
	var workers []WorkerInfo
	if s.cfg.Registry != nil {
		workers = s.cfg.Registry.Workers()
	}
	if workers == nil {
		workers = []WorkerInfo{}
	}
	writeJSON(w, http.StatusOK, workers)
}

// healthz reports liveness; a draining daemon answers 503 so load
// balancers stop routing submissions to it while running grids
// finish.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, health{Status: "draining", Draining: true})
		return
	}
	writeJSON(w, http.StatusOK, health{Status: "ok"})
}

// handleMetrics emits plain-text counters in the Prometheus exposition
// idiom (no client library — the format is just lines).
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	states := map[string]int{}
	var cells, hits, prefixHits, misses int
	for _, j := range s.Jobs() {
		states[j.State]++
		cells += j.Done
		hits += j.CacheHits
		prefixHits += j.CachePrefixHits
		misses += j.CacheMisses
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, st := range []string{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "autofl_sweepd_jobs{state=%q} %d\n", st, states[st])
	}
	fmt.Fprintf(w, "autofl_sweepd_cells_done_total %d\n", cells)
	fmt.Fprintf(w, "autofl_sweepd_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "autofl_sweepd_cache_prefix_hits_total %d\n", prefixHits)
	fmt.Fprintf(w, "autofl_sweepd_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "autofl_sweepd_requeues_total %d\n", s.Requeues())
	fmt.Fprintf(w, "autofl_sweepd_quarantined_total %d\n", s.Quarantined())
	fmt.Fprintf(w, "autofl_sweepd_failed_cells_total %d\n", s.FailedCells())
	fmt.Fprintf(w, "autofl_sweepd_journal_resumed_total %d\n", s.ResumedJobs())
	workers, evictions := 0, 0
	if s.cfg.Registry != nil {
		workers = s.cfg.Registry.Len()
		evictions = s.cfg.Registry.Evictions()
	}
	fmt.Fprintf(w, "autofl_sweepd_workers %d\n", workers)
	fmt.Fprintf(w, "autofl_sweepd_evictions_total %d\n", evictions)
	drain := 0
	if s.Draining() {
		drain = 1
	}
	fmt.Fprintf(w, "autofl_sweepd_draining %d\n", drain)
}
