package svc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
)

// journalName is the crash-recovery journal under CacheDir: one JSON
// record per line, append-only (the cache's JSONL idiom — an append
// either lands whole or tears at the tail, and a torn tail is
// skipped, never fatal).
const journalName = "journal.jsonl"

// journalRecord is one job-lifecycle transition. accepted carries the
// spec (it is the record a restart resubmits from); started and
// terminal only reference the ID.
type journalRecord struct {
	Op    string   `json:"op"` // "accepted", "started", "terminal"
	ID    string   `json:"id"`
	State string   `json:"state,omitempty"` // terminal records: done/failed/canceled
	Spec  *JobSpec `json:"spec,omitempty"`  // accepted records
}

// journal is the service's append-only job journal. Every accepted
// job writes an accepted record, transitions append started/terminal
// records, and a daemon that dies mid-job leaves an accepted record
// with no terminal — exactly the set openJournal re-submits on the
// next start. Writes are best-effort: a full disk degrades crash
// recovery, not job execution. A nil *journal (no CacheDir) no-ops
// everywhere.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// resumedJob is one journal entry a restarted daemon must re-run,
// under its original ID — clients polling that ID across the restart
// keep getting answers.
type resumedJob struct {
	ID   string
	Spec JobSpec
}

// openJournal replays the journal under dir, compacts it down to the
// still-pending jobs (their accepted records are re-written; finished
// jobs' history is dropped), and returns the append handle plus the
// pending jobs in acceptance order. dir == "" disables journaling.
func openJournal(dir string) (*journal, []resumedJob, error) {
	if dir == "" {
		return nil, nil, nil
	}
	path := filepath.Join(dir, journalName)
	pending, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	// Compact: rewrite just the pending accepted records, atomically,
	// then append from there. A crash between rename and first append
	// loses nothing — the pending set is already durable.
	var buf bytes.Buffer
	for _, r := range pending {
		spec := r.Spec
		rec, err := json.Marshal(journalRecord{Op: "accepted", ID: r.ID, Spec: &spec})
		if err != nil {
			return nil, nil, err
		}
		buf.Write(rec)
		buf.WriteByte('\n')
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return nil, nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &journal{f: f}, pending, nil
}

// replayJournal reads the journal and returns the jobs accepted but
// never terminal, in acceptance order. A missing file is an empty
// journal; a torn or corrupt line ends the replay at the last good
// record (the crash the journal exists to survive can tear its tail).
func replayJournal(path string) ([]resumedJob, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var order []string
	specs := make(map[string]*JobSpec)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail: everything before it is intact
		}
		switch rec.Op {
		case "accepted":
			if rec.Spec != nil && specs[rec.ID] == nil {
				specs[rec.ID] = rec.Spec
				order = append(order, rec.ID)
			}
		case "terminal":
			delete(specs, rec.ID)
		}
	}
	var pending []resumedJob
	for _, id := range order {
		if spec := specs[id]; spec != nil {
			pending = append(pending, resumedJob{ID: id, Spec: *spec})
		}
	}
	return pending, nil
}

// append writes one record. Best-effort (see journal doc).
func (jl *journal) append(rec journalRecord) {
	if jl == nil {
		return
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return
	}
	jl.f.Write(append(raw, '\n'))
}

// accepted records a job entering the queue (spec included: this is
// the record a restart resubmits from).
func (jl *journal) accepted(id string, spec JobSpec) {
	jl.append(journalRecord{Op: "accepted", ID: id, Spec: &spec})
}

// started records a job taking a grid slot.
func (jl *journal) started(id string) {
	jl.append(journalRecord{Op: "started", ID: id})
}

// terminal records a job finishing in state (done/failed/canceled);
// the job will not be resumed.
func (jl *journal) terminal(id, state string) {
	jl.append(journalRecord{Op: "terminal", ID: id, State: state})
}

// Close releases the journal file. Idempotent; nil-safe.
func (jl *journal) Close() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
}
