package svc

import (
	"context"
	"errors"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autofl/internal/sweep/dist"
)

// ErrRegistryClosed is returned by Acquire after the registry shuts
// down.
var ErrRegistryClosed = errors.New("svc: registry closed")

// WorkerInfo is one registered worker as GET /v1/workers reports it.
type WorkerInfo struct {
	// Name is the worker's self-advertised label ("" when it sent
	// none); Addr is the connection's remote endpoint.
	Name string `json:"name,omitempty"`
	Addr string `json:"addr"`
	// Capacity is the advertised concurrent-job capacity; Served
	// counts results delivered over the connection's lifetime.
	Capacity int `json:"capacity"`
	Served   int `json:"served"`
	// State is "idle", "leased" (driving a sweep right now), or
	// "cooldown" (registered but benched after flapping; see Flaps).
	State       string    `json:"state"`
	ConnectedAt time.Time `json:"connected_at"`
	// Flaps counts this worker's consecutive abnormal disconnects —
	// evictions and transport deaths, not deliberate closes. A lease
	// that runs to completion resets it.
	Flaps int `json:"flaps,omitempty"`
}

// workerEntry is the registry's bookkeeping for one link.
type workerEntry struct {
	key         string // health identity: advertised name, else remote addr
	leased      bool
	benched     bool // held out of the idle pool during a cooldown
	connectedAt time.Time
}

// workerHealth scores one worker identity across connections. Links
// come and go (that is the definition of a flap); the health record
// persists under the worker's stable key so a worker that dies
// seconds after every (re-)registration accumulates flaps instead of
// looking newborn each time.
type workerHealth struct {
	flaps        int
	benchedUntil time.Time
}

// Registry is the daemon's worker pool: the canonical dist.Source.
// Workers arrive over two paths that end in the same place — a
// dist.Worker in register mode dials the registry listener (Serve
// accepts and handshakes it), or the registry itself maintains
// dial-out connections to a static fleet of listening workers
// (Maintain, the PR 5 direction, re-dialed with backoff when they
// drop). Either way the established Link joins the idle pool, wakes
// any sweep blocked on Acquire — that is how a mid-sweep joiner picks
// up queued cells — and is leased to one sweep at a time. A link whose
// connection dies is removed (idle) or evicted by its lease (leased);
// its in-flight cells re-queue through the executor's at-least-once
// path.
//
// Health scoring: abnormal disconnects count as flaps against the
// worker's stable identity (its advertised name, or the remote
// address for unnamed workers — name your workers if you want
// cooldowns to stick across reconnects). A worker at or past the flap
// threshold still registers, but sits out an exponential cooldown
// before it can be leased again, so a crash-looping worker cannot
// keep adopting cells only to kill them — that would burn the cells'
// retry budgets on a peer everyone can see is sick.
type Registry struct {
	// HandshakeTimeout bounds the hello read per connection (default
	// 10s). Set before Serve/Maintain.
	HandshakeTimeout time.Duration
	// Links tunes the liveness machinery of every pooled link — write
	// deadlines, heartbeat interval and timeout (see dist.LinkOptions).
	// The zero value selects the dist defaults, with HandshakeTimeout
	// above as the handshake bound.
	Links dist.LinkOptions
	// FlapThreshold is the consecutive-flap count at which a worker is
	// benched (default 2; a single death is routine fleet churn).
	FlapThreshold int
	// CooldownBase and CooldownMax bound the exponential bench: a
	// worker at the threshold sits out CooldownBase, doubling per
	// further flap up to CooldownMax (defaults 1s, 30s).
	CooldownBase time.Duration
	CooldownMax  time.Duration

	mu     sync.Mutex
	idle   []*dist.Link
	info   map[*dist.Link]*workerEntry
	health map[string]*workerHealth
	notify chan struct{} // closed and replaced on every pool change
	closed bool
	ln     net.Listener

	evictions atomic.Int64

	done chan struct{}
	wg   sync.WaitGroup
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		info:   make(map[*dist.Link]*workerEntry),
		health: make(map[string]*workerHealth),
		notify: make(chan struct{}),
		done:   make(chan struct{}),
	}
}

func (r *Registry) handshakeTimeout() time.Duration {
	if r.HandshakeTimeout > 0 {
		return r.HandshakeTimeout
	}
	return 10 * time.Second
}

// linkOptions resolves the LinkOptions for a new connection.
func (r *Registry) linkOptions() dist.LinkOptions {
	o := r.Links
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = r.handshakeTimeout()
	}
	return o
}

func (r *Registry) flapThreshold() int {
	if r.FlapThreshold > 0 {
		return r.FlapThreshold
	}
	return 2
}

func (r *Registry) cooldown(flaps int) time.Duration {
	base, cap := r.CooldownBase, r.CooldownMax
	if base <= 0 {
		base = time.Second
	}
	if cap <= 0 {
		cap = 30 * time.Second
	}
	shift := min(flaps-r.flapThreshold(), 20)
	return min(base<<shift, cap)
}

// Evictions reports abnormal disconnects (flaps) observed over the
// registry's lifetime — the /v1/metrics eviction counter.
func (r *Registry) Evictions() int { return int(r.evictions.Load()) }

// goTracked runs fn on a registry-tracked goroutine; false once the
// registry closed (Close waits for every tracked goroutine, and the
// Add-under-lock discipline is what makes that wait race-free).
func (r *Registry) goTracked(fn func()) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.wg.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.wg.Done()
		fn()
	}()
	return true
}

// wakeLocked broadcasts a pool change to every Acquire waiter.
// Callers hold r.mu.
func (r *Registry) wakeLocked() {
	close(r.notify)
	r.notify = make(chan struct{})
}

// Listen binds the registration listener at addr (":0" picks a free
// port) and starts accepting worker registrations until Close. It
// returns the bound address — valid immediately, so workers can be
// pointed at it without racing the accept loop.
func (r *Registry) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	if err := r.ListenOn(ln); err != nil {
		ln.Close()
		return "", err
	}
	return ln.Addr().String(), nil
}

// ListenOn is Listen over an already-established listener — the seam
// the fault-injection tests use to put a chaos.Listener under the
// registry, so scripted registration faults (a dialer that freezes
// mid-handshake, a drop right after hello) exercise the genuine
// accept path. The registry owns ln from here on. Each accepted
// connection handshakes on its own goroutine — a silent dialer cannot
// stall later registrations — and joins the pool.
func (r *Registry) ListenOn(ln net.Listener) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRegistryClosed
	}
	r.ln = ln
	r.wg.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // Close closed the listener (or it failed terminally)
			}
			if !r.goTracked(func() {
				l, err := dist.NewLink(conn, r.linkOptions())
				if err != nil {
					conn.Close()
					return
				}
				if !r.add(l, "") {
					l.Close()
				}
			}) {
				conn.Close()
				return
			}
		}
	}()
	return nil
}

// Addr is the registration listener's address ("" before Serve).
func (r *Registry) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Maintain keeps one dial-out connection to a listening worker at addr
// alive for the registry's lifetime: dial, handshake, pool the link,
// and when it dies re-dial with exponential backoff (100ms–5s, reset
// by a connection that served jobs). This is the static-fleet
// bootstrap — the daemon's -workers flag feeds it — so one deployment
// can mix legacy listen-mode workers with register-mode ones.
func (r *Registry) Maintain(addr string) {
	r.goTracked(func() {
		const minBackoff, maxBackoff = 100 * time.Millisecond, 5 * time.Second
		backoff := minBackoff
		for {
			if r.isClosed() {
				return
			}
			if l := r.dialWorker(addr); l != nil {
				served := l.Served()
				select {
				case <-l.Dead():
				case <-r.done:
					r.drop(l, false)
					return
				}
				r.drop(l, !errors.Is(l.Err(), dist.ErrLinkClosed))
				if l.Served() > served {
					backoff = minBackoff
				}
			}
			select {
			case <-time.After(backoff):
			case <-r.done:
				return
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	})
}

// dialWorker dials and handshakes one static worker, pooling the link;
// nil when any step fails (the Maintain loop backs off and retries).
// The dialed address is the worker's health identity — stable across
// reconnects by construction.
func (r *Registry) dialWorker(addr string) *dist.Link {
	conn, err := net.DialTimeout("tcp", addr, r.handshakeTimeout())
	if err != nil {
		return nil
	}
	l, err := dist.NewLink(conn, r.linkOptions())
	if err != nil {
		conn.Close()
		return nil
	}
	if !r.add(l, addr) {
		l.Close()
		return nil
	}
	return l
}

// add pools an established link under the health identity key (""
// derives it: the advertised name, else the remote address) and
// starts its death watcher; false once the registry closed. A link
// whose identity is in cooldown registers benched: present in the
// pool's books, invisible to Acquire until the cooldown lapses.
func (r *Registry) add(l *dist.Link, key string) bool {
	if key == "" {
		if key = l.Name(); key == "" {
			key = l.RemoteAddr()
		}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	e := &workerEntry{key: key, connectedAt: time.Now()}
	r.info[l] = e
	wait := time.Duration(0)
	if h := r.health[key]; h != nil {
		wait = time.Until(h.benchedUntil)
	}
	if wait > 0 {
		e.benched = true
		r.wg.Add(1)
		go func() {
			// The unbench timer promotes the benched link to the idle
			// pool once the cooldown lapses — unless the link died (its
			// watcher dropped it from info) or the registry closed.
			defer r.wg.Done()
			t := time.NewTimer(wait)
			defer t.Stop()
			select {
			case <-t.C:
			case <-r.done:
				return
			}
			r.mu.Lock()
			defer r.mu.Unlock()
			if _, ok := r.info[l]; !ok || r.closed {
				return
			}
			e.benched = false
			r.idle = append(r.idle, l)
			r.wakeLocked()
		}()
	} else {
		r.idle = append(r.idle, l)
		r.wakeLocked()
	}
	r.wg.Add(1)
	r.mu.Unlock()
	go func() {
		// The watcher drops a link that dies while idle (a leased
		// link's death is observed by its lease, which Evicts). drop
		// tolerates either order, charging at most one flap per link.
		defer r.wg.Done()
		select {
		case <-l.Dead():
			r.drop(l, !errors.Is(l.Err(), dist.ErrLinkClosed))
		case <-r.done:
		}
	}()
	return true
}

// noteFlapLocked charges one abnormal disconnect against a worker
// identity, benching it once it crosses the threshold. Callers hold
// r.mu and have verified the link was still in the registry's books —
// that presence check is what makes flap accounting exactly-once when
// the watcher, a lease eviction, and Acquire's dead-idle sweep race
// to report the same death.
func (r *Registry) noteFlapLocked(key string) {
	r.evictions.Add(1)
	h := r.health[key]
	if h == nil {
		h = &workerHealth{}
		r.health[key] = h
	}
	h.flaps++
	if h.flaps >= r.flapThreshold() {
		h.benchedUntil = time.Now().Add(r.cooldown(h.flaps))
	}
}

// drop forgets a link entirely (idle slice and info map) and closes
// it, charging a flap when the death was abnormal. Safe to call for
// an already-removed link (a no-op then, including the flap).
func (r *Registry) drop(l *dist.Link, flap bool) {
	l.Close()
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.info[l]
	if !ok {
		return
	}
	delete(r.info, l)
	for i, il := range r.idle {
		if il == l {
			r.idle = append(r.idle[:i], r.idle[i+1:]...)
			break
		}
	}
	if flap && !r.closed {
		r.noteFlapLocked(e.key)
	}
}

// Acquire implements dist.Source: it leases an idle worker link,
// blocking until one is available (a worker registering mid-sweep
// satisfies the wait) or ctx is done. Dead idle links are skipped and
// dropped on the way.
func (r *Registry) Acquire(ctx context.Context) (*dist.Link, error) {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return nil, ErrRegistryClosed
		}
		for len(r.idle) > 0 {
			l := r.idle[len(r.idle)-1]
			r.idle = r.idle[:len(r.idle)-1]
			select {
			case <-l.Dead():
				if e, ok := r.info[l]; ok {
					if !errors.Is(l.Err(), dist.ErrLinkClosed) {
						r.noteFlapLocked(e.key)
					}
					delete(r.info, l)
				}
				continue
			default:
			}
			r.info[l].leased = true
			r.mu.Unlock()
			return l, nil
		}
		wait := r.notify
		r.mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-r.done:
			return nil, ErrRegistryClosed
		}
	}
}

// Release implements dist.Source: a healthy link returns to the idle
// pool (waking waiters), and its identity's flap record clears — a
// lease that ran to completion is the definition of a recovered
// worker. A dead one is dropped.
func (r *Registry) Release(l *dist.Link) {
	select {
	case <-l.Dead():
		r.drop(l, !errors.Is(l.Err(), dist.ErrLinkClosed))
		return
	default:
	}
	r.mu.Lock()
	if e, ok := r.info[l]; ok && !r.closed {
		e.leased = false
		delete(r.health, e.key)
		r.idle = append(r.idle, l)
		r.wakeLocked()
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	l.Close()
}

// Evict implements dist.Source: a link whose lease observed a
// connection failure is closed, forgotten, and charged a flap. The
// worker behind it re-registers on its own (register mode) or is
// re-dialed (Maintain) — into a cooldown bench if it has been
// flapping.
func (r *Registry) Evict(l *dist.Link, err error) { r.drop(l, true) }

// Workers snapshots the registry for GET /v1/workers, sorted by label
// then address.
func (r *Registry) Workers() []WorkerInfo {
	r.mu.Lock()
	out := make([]WorkerInfo, 0, len(r.info))
	for l, e := range r.info {
		state := "idle"
		switch {
		case e.leased:
			state = "leased"
		case e.benched:
			state = "cooldown"
		}
		flaps := 0
		if h := r.health[e.key]; h != nil {
			flaps = h.flaps
		}
		out = append(out, WorkerInfo{
			Name:        l.Name(),
			Addr:        l.RemoteAddr(),
			Capacity:    l.Capacity(),
			Served:      l.Served(),
			State:       state,
			ConnectedAt: e.connectedAt,
			Flaps:       flaps,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Len reports the number of registered workers (idle and leased).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.info)
}

func (r *Registry) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Close shuts the registry down: the listener stops accepting, every
// pooled link closes (a leased link's death re-queues its cells to
// nobody — callers should drain sweeps first), Acquire waiters get
// ErrRegistryClosed, and Close waits for the watcher/maintainer
// goroutines. Idempotent.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.done)
	links := make([]*dist.Link, 0, len(r.info))
	for l := range r.info {
		links = append(links, l)
	}
	r.info = make(map[*dist.Link]*workerEntry)
	r.idle = nil
	ln := r.ln
	r.wakeLocked()
	r.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, l := range links {
		l.Close()
	}
	r.wg.Wait()
	return err
}
