package svc

import (
	"context"
	"errors"
	"net"
	"sort"
	"sync"
	"time"

	"autofl/internal/sweep/dist"
)

// ErrRegistryClosed is returned by Acquire after the registry shuts
// down.
var ErrRegistryClosed = errors.New("svc: registry closed")

// WorkerInfo is one registered worker as GET /v1/workers reports it.
type WorkerInfo struct {
	// Name is the worker's self-advertised label ("" when it sent
	// none); Addr is the connection's remote endpoint.
	Name string `json:"name,omitempty"`
	Addr string `json:"addr"`
	// Capacity is the advertised concurrent-job capacity; Served
	// counts results delivered over the connection's lifetime.
	Capacity int `json:"capacity"`
	Served   int `json:"served"`
	// State is "idle" or "leased" (driving a sweep right now).
	State       string    `json:"state"`
	ConnectedAt time.Time `json:"connected_at"`
}

// workerEntry is the registry's bookkeeping for one link.
type workerEntry struct {
	leased      bool
	connectedAt time.Time
}

// Registry is the daemon's worker pool: the canonical dist.Source.
// Workers arrive over two paths that end in the same place — a
// dist.Worker in register mode dials the registry listener (Serve
// accepts and handshakes it), or the registry itself maintains
// dial-out connections to a static fleet of listening workers
// (Maintain, the PR 5 direction, re-dialed with backoff when they
// drop). Either way the established Link joins the idle pool, wakes
// any sweep blocked on Acquire — that is how a mid-sweep joiner picks
// up queued cells — and is leased to one sweep at a time. A link whose
// connection dies is removed (idle) or evicted by its lease (leased);
// its in-flight cells re-queue through the executor's at-least-once
// path.
type Registry struct {
	// HandshakeTimeout bounds the hello read per connection (default
	// 10s). Set before Serve/Maintain.
	HandshakeTimeout time.Duration

	mu     sync.Mutex
	idle   []*dist.Link
	info   map[*dist.Link]*workerEntry
	notify chan struct{} // closed and replaced on every pool change
	closed bool
	ln     net.Listener

	done chan struct{}
	wg   sync.WaitGroup
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		info:   make(map[*dist.Link]*workerEntry),
		notify: make(chan struct{}),
		done:   make(chan struct{}),
	}
}

func (r *Registry) handshakeTimeout() time.Duration {
	if r.HandshakeTimeout > 0 {
		return r.HandshakeTimeout
	}
	return 10 * time.Second
}

// goTracked runs fn on a registry-tracked goroutine; false once the
// registry closed (Close waits for every tracked goroutine, and the
// Add-under-lock discipline is what makes that wait race-free).
func (r *Registry) goTracked(fn func()) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.wg.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.wg.Done()
		fn()
	}()
	return true
}

// wakeLocked broadcasts a pool change to every Acquire waiter.
// Callers hold r.mu.
func (r *Registry) wakeLocked() {
	close(r.notify)
	r.notify = make(chan struct{})
}

// Listen binds the registration listener at addr (":0" picks a free
// port) and starts accepting worker registrations until Close. It
// returns the bound address — valid immediately, so workers can be
// pointed at it without racing the accept loop. Each accepted
// connection handshakes on its own goroutine — a silent dialer cannot
// stall later registrations — and joins the pool.
func (r *Registry) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		ln.Close()
		return "", ErrRegistryClosed
	}
	r.ln = ln
	r.wg.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // Close closed the listener (or it failed terminally)
			}
			if !r.goTracked(func() {
				l, err := dist.NewLink(conn, r.handshakeTimeout())
				if err != nil {
					conn.Close()
					return
				}
				if !r.add(l) {
					l.Close()
				}
			}) {
				conn.Close()
				return
			}
		}
	}()
	return ln.Addr().String(), nil
}

// Addr is the registration listener's address ("" before Serve).
func (r *Registry) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Maintain keeps one dial-out connection to a listening worker at addr
// alive for the registry's lifetime: dial, handshake, pool the link,
// and when it dies re-dial with exponential backoff (100ms–5s, reset
// by a connection that served jobs). This is the static-fleet
// bootstrap — the daemon's -workers flag feeds it — so one deployment
// can mix legacy listen-mode workers with register-mode ones.
func (r *Registry) Maintain(addr string) {
	r.goTracked(func() {
		const minBackoff, maxBackoff = 100 * time.Millisecond, 5 * time.Second
		backoff := minBackoff
		for {
			if r.isClosed() {
				return
			}
			if l := r.dialWorker(addr); l != nil {
				served := l.Served()
				select {
				case <-l.Dead():
				case <-r.done:
					r.remove(l)
					return
				}
				r.remove(l)
				if l.Served() > served {
					backoff = minBackoff
				}
			}
			select {
			case <-time.After(backoff):
			case <-r.done:
				return
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	})
}

// dialWorker dials and handshakes one static worker, pooling the link;
// nil when any step fails (the Maintain loop backs off and retries).
func (r *Registry) dialWorker(addr string) *dist.Link {
	conn, err := net.DialTimeout("tcp", addr, r.handshakeTimeout())
	if err != nil {
		return nil
	}
	l, err := dist.NewLink(conn, r.handshakeTimeout())
	if err != nil {
		conn.Close()
		return nil
	}
	if !r.add(l) {
		l.Close()
		return nil
	}
	return l
}

// add pools an established link and starts its death watcher; false
// once the registry closed.
func (r *Registry) add(l *dist.Link) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.info[l] = &workerEntry{connectedAt: time.Now()}
	r.idle = append(r.idle, l)
	r.wakeLocked()
	r.wg.Add(1)
	r.mu.Unlock()
	go func() {
		// The watcher drops a link that dies while idle (a leased
		// link's death is observed by its lease, which Evicts). remove
		// tolerates either order.
		defer r.wg.Done()
		select {
		case <-l.Dead():
			r.remove(l)
		case <-r.done:
		}
	}()
	return true
}

// remove forgets a link entirely (idle slice and info map) and closes
// it. Safe to call for an already-removed link.
func (r *Registry) remove(l *dist.Link) {
	l.Close()
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.info, l)
	for i, il := range r.idle {
		if il == l {
			r.idle = append(r.idle[:i], r.idle[i+1:]...)
			break
		}
	}
}

// Acquire implements dist.Source: it leases an idle worker link,
// blocking until one is available (a worker registering mid-sweep
// satisfies the wait) or ctx is done. Dead idle links are skipped and
// dropped on the way.
func (r *Registry) Acquire(ctx context.Context) (*dist.Link, error) {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return nil, ErrRegistryClosed
		}
		for len(r.idle) > 0 {
			l := r.idle[len(r.idle)-1]
			r.idle = r.idle[:len(r.idle)-1]
			select {
			case <-l.Dead():
				delete(r.info, l)
				continue
			default:
			}
			r.info[l].leased = true
			r.mu.Unlock()
			return l, nil
		}
		wait := r.notify
		r.mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-r.done:
			return nil, ErrRegistryClosed
		}
	}
}

// Release implements dist.Source: a healthy link returns to the idle
// pool (waking waiters); a dead one is dropped.
func (r *Registry) Release(l *dist.Link) {
	select {
	case <-l.Dead():
		r.remove(l)
		return
	default:
	}
	r.mu.Lock()
	if e, ok := r.info[l]; ok && !r.closed {
		e.leased = false
		r.idle = append(r.idle, l)
		r.wakeLocked()
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	l.Close()
}

// Evict implements dist.Source: a link whose lease observed a
// connection failure is closed and forgotten. The worker behind it
// re-registers on its own (register mode) or is re-dialed (Maintain).
func (r *Registry) Evict(l *dist.Link, err error) { r.remove(l) }

// Workers snapshots the registry for GET /v1/workers, sorted by label
// then address.
func (r *Registry) Workers() []WorkerInfo {
	r.mu.Lock()
	out := make([]WorkerInfo, 0, len(r.info))
	for l, e := range r.info {
		state := "idle"
		if e.leased {
			state = "leased"
		}
		out = append(out, WorkerInfo{
			Name:        l.Name(),
			Addr:        l.RemoteAddr(),
			Capacity:    l.Capacity(),
			Served:      l.Served(),
			State:       state,
			ConnectedAt: e.connectedAt,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Len reports the number of registered workers (idle and leased).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.info)
}

func (r *Registry) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Close shuts the registry down: the listener stops accepting, every
// pooled link closes (a leased link's death re-queues its cells to
// nobody — callers should drain sweeps first), Acquire waiters get
// ErrRegistryClosed, and Close waits for the watcher/maintainer
// goroutines. Idempotent.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.done)
	links := make([]*dist.Link, 0, len(r.info))
	for l := range r.info {
		links = append(links, l)
	}
	r.info = make(map[*dist.Link]*workerEntry)
	r.idle = nil
	ln := r.ln
	r.wakeLocked()
	r.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, l := range links {
		l.Close()
	}
	r.wg.Wait()
	return err
}
