// Package svc is the sweep control plane: a long-running service that
// accepts experiment grids over an HTTP+JSON API, runs them through
// the sweep engine on a registry of workers (or an in-process pool),
// and serves results from a shared persistent cache — the
// service-boundary form of the one-shot coordinator cmd/autofl-sweep
// has always been.
//
// The design leans on the invariants the lower layers already
// guarantee. Cell outcomes are pure functions of (cell, seed,
// horizon), so a grid served by any mix of cache hits, local
// execution, and remote workers is byte-identical to a cold serial
// run. The cache's content addressing makes the shared store safe for
// overlapping grids from concurrent clients: each job opens its own
// handle under the grid's seed, reads every commit earlier jobs
// appended, and executes only its non-overlapping cells. And the
// dist layer's at-least-once lease discipline means worker death,
// re-registration, and mid-sweep join are registry events, not job
// failures.
//
// Jobs move queued → running → done/failed/canceled through a bounded
// queue and a fixed number of grid slots; Drain stops intake (503),
// lets running grids finish (or cancels them at the deadline), and
// persists still-queued specs so a restarted daemon resumes them.
package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"autofl/internal/sim"
	"autofl/internal/sweep"
	"autofl/internal/sweep/cache"
	"autofl/internal/sweep/dist"
)

// Job states. A job is terminal in StateDone, StateFailed, or
// StateCanceled.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Terminal reports whether a job state is final.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// Submission failure modes the HTTP layer maps to status codes.
var (
	// ErrDraining rejects submissions during shutdown (503).
	ErrDraining = errors.New("svc: draining, not accepting submissions")
	// ErrQueueFull rejects submissions past the queue bound (429).
	ErrQueueFull = errors.New("svc: job queue full")
	// ErrUnknownJob names a job ID the service has never seen (404).
	ErrUnknownJob = errors.New("svc: unknown job")
	// ErrNotFinished guards result fetches of unfinished jobs (409).
	ErrNotFinished = errors.New("svc: job not finished")
)

// JobSpec is one submitted sweep: the grid, the round horizon (0
// selects the paper's default), and an optional client label.
type JobSpec struct {
	Grid   sweep.Grid `json:"grid"`
	Rounds int        `json:"rounds,omitempty"`
	Name   string     `json:"name,omitempty"`
}

// JobStatus is the wire view of one job, live while it runs: Done
// counts cells as the executor's emit path delivers them, the cache
// counters come from the job's shared-store handle, and Workers is
// the per-worker completed-cell audit trail.
type JobStatus struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	State  string `json:"state"`
	Rounds int    `json:"rounds"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`

	CacheHits       int `json:"cache_hits"`
	CachePrefixHits int `json:"cache_prefix_hits,omitempty"`
	CacheMisses     int `json:"cache_misses"`

	// Requeues counts cells returned to the queue after worker faults;
	// Quarantined counts cells abandoned past the retry budget; and
	// FailedCells counts results that finished with a per-cell error
	// (quarantined cells included) — the job completed with explicit
	// holes, not silently thin summaries.
	Requeues    int `json:"requeues,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	FailedCells int `json:"failed_cells,omitempty"`

	Workers map[string]int `json:"workers,omitempty"`
	Error   string         `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// job is the service-side record behind a JobStatus.
type job struct {
	id   string
	spec JobSpec

	mu          sync.Mutex
	state       string
	rounds      int
	total       int
	done        int
	stats       cache.Stats
	counts      map[string]int
	requeues    int
	quarantined int
	failedCells int
	store       *sweep.ResultStore
	err         string
	cancel      context.CancelFunc
	submitted   time.Time
	started     time.Time
	finished    time.Time
}

// status snapshots the job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID: j.id, Name: j.spec.Name, State: j.state,
		Rounds: j.rounds, Total: j.total, Done: j.done,
		CacheHits: j.stats.Hits, CachePrefixHits: j.stats.PrefixHits, CacheMisses: j.stats.Misses,
		Requeues: j.requeues, Quarantined: j.quarantined, FailedCells: j.failedCells,
		Error: j.err, SubmittedAt: j.submitted,
	}
	if len(j.counts) > 0 {
		s.Workers = make(map[string]int, len(j.counts))
		for k, v := range j.counts {
			s.Workers[k] = v
		}
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	return s
}

// Config assembles a Service. Runners is required — svc cannot import
// the root package, so the daemon injects the scenario-execution
// bridge (autofl.SweepRunners) the same way workers do.
type Config struct {
	// Runners maps (rounds, traced) to the runner executing one cell.
	// With a Registry it is unused locally (cells run on workers); in
	// local mode it is the execution path, wrapped by the cache.
	Runners dist.RunnerFor
	// Registry, when non-nil, executes every non-cached cell on
	// registered workers through a dist.PoolExecutor. Nil selects
	// in-process execution.
	Registry *Registry
	// LocalParallel is the in-process pool size for local mode
	// (values < 1 select GOMAXPROCS).
	LocalParallel int
	// CacheDir is the shared result store root; each grid seed gets
	// its own subdirectory (the cache pins a directory to one seed).
	// "" disables caching — every submission executes cold.
	CacheDir string
	// QueueLimit bounds queued (not yet running) jobs; default 64.
	QueueLimit int
	// MaxConcurrent bounds grids running at once; default 1, which
	// also serializes overlapping submissions so the second is served
	// from the first's cache commits.
	MaxConcurrent int
	// CellTimeout, RetryBudget, and RequeueBackoff tune the registry
	// executor's failure containment (see dist.PoolExecutor). Zero
	// values select the dist defaults.
	CellTimeout    time.Duration
	RetryBudget    int
	RequeueBackoff time.Duration
}

// queuedSpecsName is the drain-persistence file under CacheDir.
const queuedSpecsName = "queued-jobs.json"

// Service is the control plane: submit/status/result/cancel over a
// bounded queue of jobs and a fixed number of concurrent grid slots.
// Create with New, expose with Handler, stop with Drain (graceful)
// or Close (immediate).
type Service struct {
	cfg Config

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	seq      int
	draining bool
	queue    chan *job

	journal *journal
	resumed int // journal-recovered jobs re-submitted at startup

	// Lifetime fault totals across jobs, for /v1/metrics.
	requeues    atomic.Int64
	quarantined atomic.Int64
	failedCells atomic.Int64

	runners sync.WaitGroup
}

// ResumedJobs reports how many journal-recovered jobs this daemon
// re-submitted at startup (the journal_resumed_total metric).
func (s *Service) ResumedJobs() int { return s.resumed }

// Requeues, Quarantined, and FailedCells report fault totals summed
// over every job this daemon has finished.
func (s *Service) Requeues() int    { return int(s.requeues.Load()) }
func (s *Service) Quarantined() int { return int(s.quarantined.Load()) }
func (s *Service) FailedCells() int { return int(s.failedCells.Load()) }

// New starts a service: MaxConcurrent grid-runner goroutines over a
// QueueLimit-bounded queue. Job specs a previous daemon persisted on
// drain (under CacheDir) are re-submitted immediately, ahead of any
// new intake.
func New(cfg Config) (*Service, error) {
	if cfg.Runners == nil {
		return nil, errors.New("svc: Config.Runners is required")
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 64
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	drained, err := loadQueuedSpecs(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	// The journal holds jobs the previous daemon accepted but never
	// finished — including one it was killed mid-grid on. Drained
	// queued jobs live in the legacy queued-jobs file instead (Drain
	// writes them a terminal record), so the two sources never overlap.
	jl, crashed, err := openJournal(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		jobs:    make(map[string]*job),
		journal: jl,
		resumed: len(crashed),
		// Resumed specs ride ahead of the bound so a full persisted
		// queue never fails the restart that is trying to honor it.
		queue: make(chan *job, cfg.QueueLimit+len(crashed)+len(drained)),
	}
	s.mu.Lock()
	// Crash-recovered jobs keep their original IDs: a client that
	// submitted before the crash polls the same ID across the restart
	// and gets its answer. Re-execution is cheap, not wasteful — every
	// cell the cache committed before the crash is served as a hit, so
	// the resumed run executes only the genuinely unfinished cells and
	// its output is byte-identical to an uninterrupted run.
	for _, r := range crashed {
		s.queue <- s.resumeJobLocked(r.ID, r.Spec)
	}
	for _, spec := range drained {
		s.queue <- s.newJobLocked(spec)
	}
	s.mu.Unlock()
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.runners.Add(1)
		go func() {
			defer s.runners.Done()
			for {
				select {
				case j, ok := <-s.queue:
					if !ok {
						return
					}
					s.runJob(j)
				case <-s.ctx.Done():
					return
				}
			}
		}()
	}
	return s, nil
}

// newJobLocked registers a fresh queued job record and journals its
// acceptance. Callers hold s.mu.
func (s *Service) newJobLocked(spec JobSpec) *job {
	s.seq++
	j := s.recordJobLocked(fmt.Sprintf("job-%06d", s.seq), spec)
	s.journal.accepted(j.id, spec)
	return j
}

// resumeJobLocked registers a journal-recovered job under its original
// ID, advancing the sequence counter past it so fresh submissions
// never collide. The acceptance record is already in the compacted
// journal — openJournal rewrote it — so nothing is appended here.
func (s *Service) resumeJobLocked(id string, spec JobSpec) *job {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > s.seq {
		s.seq = n
	}
	return s.recordJobLocked(id, spec)
}

// recordJobLocked is the shared queued-job constructor behind
// newJobLocked and resumeJobLocked.
func (s *Service) recordJobLocked(id string, spec JobSpec) *job {
	j := &job{
		id:        id,
		spec:      spec,
		state:     StateQueued,
		rounds:    normalizeRounds(spec.Rounds),
		total:     spec.Grid.Size(),
		submitted: time.Now(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	return j
}

// normalizeRounds maps the spec's horizon to the effective one (0
// selects the paper's default), mirroring the root package so
// "default" and "explicit 1000" share cache entries.
func normalizeRounds(r int) int {
	if r <= 0 {
		return sim.DefaultMaxRounds
	}
	return r
}

// Submit enqueues a sweep, returning its queued status. It fails fast
// with ErrDraining during shutdown and ErrQueueFull past the bound —
// backpressure, not buffering, is the contract.
func (s *Service) Submit(spec JobSpec) (JobStatus, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return JobStatus{}, ErrDraining
	}
	// Queue sends happen only here, under s.mu with draining false;
	// Drain closes the queue under the same lock after flipping the
	// flag — the pair is what makes close racing a send impossible.
	if len(s.queue) >= s.cfg.QueueLimit {
		s.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
	j := s.newJobLocked(spec)
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
	s.mu.Unlock()
	return j.status(), nil
}

// Status reports one job.
func (s *Service) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return j.status(), nil
}

// Jobs lists every job in submission order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Result returns a finished job's store (ErrNotFinished before
// StateDone; a failed or canceled job has no servable result).
func (s *Service) Result(id string) (*sweep.ResultStore, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.store == nil {
		return nil, fmt.Errorf("%w (state %s)", ErrNotFinished, j.state)
	}
	return j.store, nil
}

// Cancel stops a job: a queued one is marked canceled in place (the
// runner skips it on dequeue), a running one has its context
// canceled. Canceling a terminal job is a no-op.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrUnknownJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.finished = time.Now()
		s.journal.terminal(j.id, StateCanceled)
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return nil
}

// Draining reports whether the service has stopped accepting
// submissions.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// runJob executes one dequeued job on the caller's grid slot.
func (s *Service) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	rounds := j.rounds
	spec := j.spec
	j.mu.Unlock()
	defer cancel()
	s.journal.started(j.id)

	var c *cache.Cache
	if s.cfg.CacheDir != "" {
		// Per-seed subdirectory: the cache pins a directory to one
		// grid seed (a mismatch invalidates it), and overlap reuse
		// only exists within a seed anyway. A fresh handle per job
		// reads every commit concurrent earlier jobs appended — the
		// shared-store mechanism behind cross-client reuse.
		dir := filepath.Join(s.cfg.CacheDir, fmt.Sprintf("seed-%d", spec.Grid.Seed))
		var err error
		c, err = cache.Open(dir, cache.Signature{GridSeed: spec.Grid.Seed, Rounds: rounds})
		if err != nil {
			s.finishJob(j, nil, nil, cache.Stats{}, [2]int{}, err)
			return
		}
		defer c.Close()
	}

	runOpts := sweep.Options{
		OnProgress: func(p sweep.Progress) {
			j.mu.Lock()
			j.done = p.Done
			if c != nil {
				j.stats = c.Stats()
			}
			j.mu.Unlock()
		},
	}
	var run sweep.Runner
	var pe *dist.PoolExecutor
	if s.cfg.Registry != nil {
		pe = &dist.PoolExecutor{
			Source: s.cfg.Registry, Rounds: rounds, Traced: c != nil, Cache: c,
			CellTimeout: s.cfg.CellTimeout, RetryBudget: s.cfg.RetryBudget,
			RequeueBackoff: s.cfg.RequeueBackoff,
		}
		runOpts.Executor = pe
		run = func(context.Context, sweep.Cell, uint64) (sweep.Outcome, error) {
			return sweep.Outcome{}, errors.New("svc: local execution disabled in registry mode")
		}
	} else {
		run = s.cfg.Runners(rounds, c != nil)
		if c != nil {
			run = c.Runner(run)
		}
		runOpts.Parallel = s.cfg.LocalParallel
	}

	store, err := sweep.Run(ctx, spec.Grid, run, runOpts)
	var counts map[string]int
	if pe != nil {
		counts = pe.Counts()
	}
	var stats cache.Stats
	if c != nil {
		stats = c.Stats()
	}
	var faults [2]int
	if pe != nil {
		faults = [2]int{pe.Requeues(), pe.Quarantined()}
	}
	s.finishJob(j, store, counts, stats, faults, err)
}

// finishJob records a job's terminal state, folds its fault counters
// into the service totals, and journals the transition.
func (s *Service) finishJob(j *job, store *sweep.ResultStore, counts map[string]int, stats cache.Stats, faults [2]int, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	j.counts = counts
	j.stats = stats
	j.requeues, j.quarantined = faults[0], faults[1]
	if store != nil {
		j.done = store.Len()
		j.failedCells = store.Failed()
	}
	switch {
	case err == nil:
		j.state = StateDone
		j.store = store
	case errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.err = "canceled"
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	state, failed := j.state, j.failedCells
	j.mu.Unlock()
	s.requeues.Add(int64(faults[0]))
	s.quarantined.Add(int64(faults[1]))
	s.failedCells.Add(int64(failed))
	s.journal.terminal(j.id, state)
}

// Drain shuts the service down gracefully: intake stops (Submit
// returns ErrDraining, the HTTP layer 503), still-queued specs are
// persisted under CacheDir for the next daemon to resume, and running
// grids are given until ctx's deadline to finish before being
// canceled. Drain returns once every grid slot has stopped.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	// Pull every not-yet-running job off the queue: those specs are
	// persisted, not executed — a drain should end promptly even with
	// a deep queue. Still under s.mu, so no Submit can send between
	// the drain and the close.
	var queued []*job
drain:
	for {
		select {
		case j := <-s.queue:
			queued = append(queued, j)
		default:
			break drain
		}
	}
	close(s.queue)
	s.mu.Unlock()

	var specs []JobSpec
	for _, j := range queued {
		j.mu.Lock()
		if j.state == StateQueued {
			specs = append(specs, j.spec)
			j.state = StateCanceled
			j.err = "drained: spec persisted for restart"
			j.finished = time.Now()
			// Terminal in the journal, alive in the legacy drain file:
			// the restart resumes drained specs from exactly one place.
			s.journal.terminal(j.id, StateCanceled)
		}
		j.mu.Unlock()
	}
	err := persistQueuedSpecs(s.cfg.CacheDir, specs)

	stopped := make(chan struct{})
	go func() {
		s.runners.Wait()
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-ctx.Done():
		// Deadline: cancel the running grids and wait for the slots
		// to observe it.
		s.cancel()
		<-stopped
	}
	s.cancel()
	s.journal.Close()
	return err
}

// Close stops the service immediately: running grids are canceled and
// nothing is persisted beyond what Drain already wrote. Idempotent.
func (s *Service) Close() error {
	s.cancel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return s.Drain(ctx)
}

// persistQueuedSpecs writes drained job specs for the next daemon; no
// specs (or no cache dir to write under) removes any stale file.
func persistQueuedSpecs(cacheDir string, specs []JobSpec) error {
	if cacheDir == "" {
		return nil
	}
	path := filepath.Join(cacheDir, queuedSpecsName)
	if len(specs) == 0 {
		err := os.Remove(path)
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(specs, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadQueuedSpecs reads and removes the drain-persistence file.
func loadQueuedSpecs(cacheDir string) ([]JobSpec, error) {
	if cacheDir == "" {
		return nil, nil
	}
	path := filepath.Join(cacheDir, queuedSpecsName)
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("svc: reading persisted queue: %w", err)
	}
	var specs []JobSpec
	if err := json.Unmarshal(raw, &specs); err != nil {
		return nil, fmt.Errorf("svc: corrupt persisted queue %s: %w", path, err)
	}
	if err := os.Remove(path); err != nil {
		return nil, err
	}
	return specs, nil
}
